// Analytics: the paper's DBMS scenario (§5.1). A TPC-H-style database lives
// in disaggregated memory; Q6 runs on three platforms — local, base DDC,
// TELEPORT with pushed operators — producing identical answers at very
// different costs, with a per-operator profile like Figure 10.
//
//	go run ./examples/analytics
package main

import (
	"fmt"

	"teleport"
	"teleport/internal/coldb"
	"teleport/internal/profile"
	"teleport/internal/tpch"
)

func main() {
	type result struct {
		name   string
		sum    float64
		time   teleport.Time
		ostats []profile.OpStat
	}
	runOn := func(name string, m *teleport.Machine, push bool) result {
		p := m.NewProcess()
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: 2, Seed: 1})
		if m.Cfg.Disaggregated {
			// Cache = 2% of the database, the paper's 1 GB : 50 GB ratio.
			p.ResizeCache(d.DB.Bytes() / 50)
		}
		th := teleport.NewThread(name)
		var rt *teleport.Runtime
		if push {
			rt = teleport.NewRuntime(p, 1)
		}
		ex := profile.NewExec(th, p, rt)
		if push {
			ex.Push(tpch.OpSelection, tpch.OpExpression, tpch.OpAggregation)
		}
		sum := tpch.Q6(ex, d, 730)
		return result{name: name, sum: sum, time: ex.Total(), ostats: ex.Profile()}
	}

	results := []result{
		runOn("local execution", teleport.NewLocalMachine(), false),
		runOn("base DDC", teleport.NewDDCMachine(1<<20), false),
		runOn("TELEPORT", teleport.NewDDCMachine(1<<20), true),
	}
	fmt.Println("TPC-H Q6 (forecast revenue change), scale 2:")
	for _, r := range results {
		fmt.Printf("  %-16s revenue=%.2f  time=%v\n", r.name, r.sum, r.time)
	}
	fmt.Printf("\nTELEPORT speedup over base DDC: %.1fx\n",
		float64(results[1].time)/float64(results[2].time))

	fmt.Println("\nper-operator profile on the base DDC:")
	for _, o := range results[1].ostats {
		fmt.Printf("  %-12s %10v  remote=%6.1f KB\n",
			o.Name, o.Time, float64(o.RemoteByte)/1024)
	}
}
