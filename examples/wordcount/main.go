// MapReduce: the paper's Phoenix scenario (§5.3). WordCount over a
// Zipf-distributed corpus in disaggregated memory; only the data-intensive
// map-shuffle sub-phase is Teleported (28 lines of pushed code in the
// paper; similarly small here — see Figure 11 / internal/loc).
//
//	go run ./examples/wordcount
package main

import (
	"fmt"

	"teleport"
	"teleport/internal/mapreduce"
	"teleport/internal/profile"
)

func main() {
	run := func(name string, m *teleport.Machine, push bool) ([]mapreduce.KV, teleport.Time) {
		p := m.NewProcess()
		c, _ := mapreduce.GenerateCorpus(p, mapreduce.CorpusConfig{
			Words: 250000, Vocab: 4000, Seed: 5,
		})
		if m.Cfg.Disaggregated {
			p.ResizeCache(p.Space.Allocated() / 20)
		}
		eng := mapreduce.NewEngine(c, mapreduce.WordCount{}, 4, 8)
		th := teleport.NewThread(name)
		var rt *teleport.Runtime
		if push {
			rt = teleport.NewRuntime(p, 1)
		}
		ex := profile.NewExec(th, p, rt)
		if push {
			ex.Push(mapreduce.OpMapShuffle)
		}
		eng.Run(ex)
		fmt.Printf("  %-10s distinct-words=%-6d time=%v\n", name, len(eng.Results()), ex.Total())
		return eng.Results(), ex.Total()
	}

	fmt.Println("WordCount over a 250k-token corpus:")
	resL, tL := run("local", teleport.NewLocalMachine(), false)
	resB, tB := run("base-ddc", teleport.NewDDCMachine(1<<20), false)
	resT, tT := run("teleport", teleport.NewDDCMachine(1<<20), true)

	for i := range resL {
		if resL[i] != resB[i] || resL[i] != resT[i] {
			panic("platforms disagree")
		}
	}
	fmt.Printf("\ncost of scaling: base %.1fx, TELEPORT %.1fx (speedup %.1fx)\n",
		float64(tB)/float64(tL), float64(tT)/float64(tL), float64(tB)/float64(tT))
	fmt.Println("\ntop five words:")
	top := append([]mapreduce.KV(nil), resL...)
	for i := 0; i < 5 && i < len(top); i++ {
		best := i
		for j := i + 1; j < len(top); j++ {
			if top[j].V > top[best].V {
				best = j
			}
		}
		top[i], top[best] = top[best], top[i]
		fmt.Printf("  w%-6d %d occurrences\n", top[i].K, top[i].V)
	}
}
