// Graph processing: the paper's PowerGraph scenario (§5.2).
// Single-source shortest paths over a power-law graph held in disaggregated
// memory; the data-intensive phases (finalize, scatter, gather) are
// Teleported while apply stays in the compute pool.
//
//	go run ./examples/graphsssp
package main

import (
	"fmt"

	"teleport"
	"teleport/internal/graph"
	"teleport/internal/profile"
)

func main() {
	run := func(name string, m *teleport.Machine, push bool) (int64, teleport.Time) {
		p := m.NewProcess()
		g, _ := graph.Generate(p, graph.GenConfig{NV: 60000, AvgDegree: 6, Seed: 11})
		if m.Cfg.Disaggregated {
			p.ResizeCache(540 << 10)
		}
		eng := graph.NewEngine(g, graph.SSSP(0), 4)
		th := teleport.NewThread(name)
		var rt *teleport.Runtime
		if push {
			rt = teleport.NewRuntime(p, 1)
		}
		ex := profile.NewExec(th, p, rt)
		if push {
			ex.Push(graph.OpFinalize, graph.OpScatter, graph.OpGather)
		}
		eng.Run(ex)
		// Checksum of reachable distances proves the platforms agree.
		var sum int64
		env := ex.Env
		for v := 0; v < g.NV; v++ {
			if d := eng.Value(env, v); d < graph.Inf {
				sum += d
			}
		}
		fmt.Printf("  %-12s iterations=%-3d distance-checksum=%-12d time=%v\n",
			name, eng.Iters, sum, ex.Total())
		return sum, ex.Total()
	}

	fmt.Println("SSSP on a 60k-vertex power-law graph:")
	sumL, tL := run("local", teleport.NewLocalMachine(), false)
	sumB, tB := run("base-ddc", teleport.NewDDCMachine(1<<20), false)
	sumT, tT := run("teleport", teleport.NewDDCMachine(1<<20), true)
	if sumL != sumB || sumL != sumT {
		panic("platforms disagree")
	}
	fmt.Printf("\ncost of scaling: base %.1fx, TELEPORT %.1fx (speedup %.1fx)\n",
		float64(tB)/float64(tL), float64(tT)/float64(tL), float64(tB)/float64(tT))
}
