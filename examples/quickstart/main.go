// Quickstart: the TELEPORT pushdown primitive in ~60 lines.
//
// A process's address space lives in the memory pool; the compute pool's
// local memory is only a cache. A memory-bound loop runs an order of
// magnitude faster when Teleported next to the data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"teleport"
)

func main() {
	// A disaggregated machine whose compute-local cache is 1 MB — a small
	// slice of the 32 MB working set below (the paper's 1 GB against 50 GB).
	m := teleport.NewDDCMachine(1 << 20)
	p := m.NewProcess()
	rt := teleport.NewRuntime(p, 1)
	th := teleport.NewThread("worker")

	// 32 MB of data, born in the memory pool.
	const n = 4 << 20 // int64 count
	base := p.Space.Alloc(8*n, "table")
	for i := 0; i < n; i++ {
		p.Space.WriteI64(base+teleport.Addr(i*8), int64(i%1000))
	}

	// A memory-bound function: random probes over the whole array.
	probe := func(env *teleport.Env) int64 {
		var sum int64
		x := uint64(42)
		for i := 0; i < 200000; i++ {
			x = x*6364136223846793005 + 1
			sum += env.ReadI64(base + teleport.Addr(x%n)*8)
		}
		return sum
	}

	// 1) Run it in the compute pool: every cache miss pages over the fabric.
	env := p.NewEnv(th)
	start := th.Now()
	local := probe(env)
	baseTime := th.Now() - start

	// 2) Teleport it: one syscall ships the call to the memory pool, where
	// the same pointers dereference local DRAM.
	var pushed int64
	stats, err := rt.Pushdown(th, func(env *teleport.Env) {
		pushed = probe(env)
	}, teleport.Options{})
	if err != nil {
		panic(err)
	}
	if local != pushed {
		panic("answers diverged")
	}

	fmt.Printf("compute-pool execution: %v\n", baseTime)
	fmt.Printf("pushdown execution:     %v  (%.1fx speedup)\n",
		stats.Total(), float64(baseTime)/float64(stats.Total()))
	fmt.Printf("pushdown breakdown:     %v\n", stats)
	fmt.Printf("resident pages shipped: %d (%d runs, %d-byte request)\n",
		stats.ResidentPages, stats.RLERuns, stats.RequestBytes)
}
