// Advisor: the paper's future work (§5.1/§7.4), implemented. A DBA-style
// flow: profile TPC-H Q9 on the base DDC, let the advisor decide which
// operators to Teleport from the profiled memory intensity (RM/s) and the
// hardware cost model, then run with that plan and compare against the base
// DDC and against pushing everything.
//
//	go run ./examples/advisor
package main

import (
	"fmt"

	"teleport"
	"teleport/internal/advisor"
	"teleport/internal/coldb"
	"teleport/internal/profile"
	"teleport/internal/tpch"
)

func main() {
	load := func(m *teleport.Machine) (*tpch.Data, *teleport.Process) {
		p := m.NewProcess()
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: 2, Seed: 1})
		p.ResizeCache(d.DB.Bytes() / 50)
		return d, p
	}
	runQ9 := func(push []string) teleport.Time {
		d, p := load(teleport.NewDDCMachine(1 << 20))
		var rt *teleport.Runtime
		if len(push) > 0 {
			rt = teleport.NewRuntime(p, 1)
		}
		ex := profile.NewExec(teleport.NewThread("q9"), d.DB.P, rt)
		ex.Push(push...)
		tpch.Q9(ex, d, tpch.GreenPart)
		return ex.Total()
	}

	// 1) Profiling run on the base DDC.
	d, p := load(teleport.NewDDCMachine(1 << 20))
	ex := profile.NewExec(teleport.NewThread("profile"), d.DB.P, nil)
	tpch.Q9(ex, d, tpch.GreenPart)
	prof := ex.Profile()

	// 2) The advisor prices each operator against the hardware model.
	cfg := advisor.DefaultConfig()
	cfg.TableEntries = p.Space.Pages()
	hwCfg := teleport.Testbed()
	chosen, decisions := advisor.Recommend(prof, cfg, &hwCfg)
	fmt.Println("advisor decisions (profiled on the base DDC):")
	for _, dec := range decisions {
		fmt.Println(" ", dec)
	}

	// 3) Execute the advised plan.
	base := runQ9(nil)
	advised := runQ9(chosen)
	everything := make([]string, 0, len(prof))
	for _, o := range prof {
		everything = append(everything, o.Name)
	}
	all := runQ9(everything)

	fmt.Printf("\nQ9 base DDC:        %v\n", base)
	fmt.Printf("Q9 advisor plan:    %v (%.1fx, %d of %d operators pushed)\n",
		advised, float64(base)/float64(advised), len(chosen), len(prof))
	fmt.Printf("Q9 push everything: %v (%.1fx)\n", all, float64(base)/float64(all))
}
