package teleport_test

import (
	"io"
	"testing"

	"teleport/internal/bench"
	"teleport/internal/mem"
	"teleport/internal/sim"

	"teleport"
)

// benchOpts keeps the full figure suite runnable in one `go test -bench=.`
// invocation; cmd/teleport-bench regenerates the figures at the committed
// EXPERIMENTS.md scale.
func benchOpts() bench.Options {
	return bench.Options{
		Scale:     0.5,
		GraphNV:   15000,
		Words:     60000,
		Seed:      1,
		CacheFrac: 0.02,
	}
}

// benchFigure runs one paper figure per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := bench.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			tab.Fprint(io.Discard)
		}
	}
}

// One benchmark per evaluation figure/table (Figures 1a–22).
func BenchmarkFig01a(b *testing.B) { benchFigure(b, "1a") }
func BenchmarkFig01b(b *testing.B) { benchFigure(b, "1b") }
func BenchmarkFig03(b *testing.B)  { benchFigure(b, "3") }
func BenchmarkFig06(b *testing.B)  { benchFigure(b, "6") }
func BenchmarkFig07(b *testing.B)  { benchFigure(b, "7") }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "10") }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "11") }
func BenchmarkFig12(b *testing.B)  { benchFigure(b, "12") }
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "13") }
func BenchmarkFig14(b *testing.B)  { benchFigure(b, "14") }
func BenchmarkFig15(b *testing.B)  { benchFigure(b, "15") }
func BenchmarkFig16(b *testing.B)  { benchFigure(b, "16") }
func BenchmarkFig17(b *testing.B)  { benchFigure(b, "17") }
func BenchmarkFig18(b *testing.B)  { benchFigure(b, "18") }
func BenchmarkFig19(b *testing.B)  { benchFigure(b, "19") }
func BenchmarkFig20(b *testing.B)  { benchFigure(b, "20") }
func BenchmarkFig21(b *testing.B)  { benchFigure(b, "21") }
func BenchmarkFig22(b *testing.B)  { benchFigure(b, "22") }

// Simulator micro-benchmarks: the real-time cost of the building blocks.

func BenchmarkPushdownCall(b *testing.B) {
	m := teleport.NewDDCMachine(256 * teleport.PageSize)
	p := m.NewProcess()
	rt := teleport.NewRuntime(p, 1)
	th := teleport.NewThread("bench")
	a := p.Space.AllocPages(64*teleport.PageSize, "buf")
	env := p.NewEnv(th)
	for pg := 0; pg < 64; pg++ {
		env.WriteI64(a+teleport.Addr(pg*teleport.PageSize), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Pushdown(th, func(env *teleport.Env) {
			env.ReadI64(a)
		}, teleport.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvSequentialRead(b *testing.B) {
	m := teleport.NewLocalMachine()
	p := m.NewProcess()
	env := p.NewEnv(teleport.NewThread("bench"))
	const size = 1 << 20
	a := p.Space.AllocPages(size, "buf")
	b.SetBytes(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.ReadU64(a + teleport.Addr(i*8%size))
	}
}

func BenchmarkEnvRandomReadDDC(b *testing.B) {
	m := teleport.NewDDCMachine(128 * teleport.PageSize)
	p := m.NewProcess()
	env := p.NewEnv(teleport.NewThread("bench"))
	const size = 8 << 20
	a := p.Space.AllocPages(size, "buf")
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1
		env.ReadU64(a + teleport.Addr(x%(size/8))*8)
	}
}

func BenchmarkSchedulerSwitch(b *testing.B) {
	s := sim.NewScheduler()
	s.SetQuantum(0)
	n := b.N
	for t := 0; t < 2; t++ {
		s.Spawn("t", 0, func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				th.Advance(1)
			}
		})
	}
	b.ResetTimer()
	s.Run()
}

func BenchmarkPageTableEnsureLookup(b *testing.B) {
	pt := mem.NewPageTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Ensure(mem.PageID(i % 4096)).Dirty = true
		pt.Lookup(mem.PageID(i % 4096))
	}
}
