package teleport_test

import (
	"errors"
	"testing"

	"teleport"
)

// TestFacadeQuickstart exercises the README's quickstart flow end to end.
func TestFacadeQuickstart(t *testing.T) {
	m := teleport.NewDDCMachine(64 * teleport.PageSize)
	p := m.NewProcess()
	rt := teleport.NewRuntime(p, 1)
	th := teleport.NewThread("worker")

	const n = 100000
	base := p.Space.Alloc(8*n, "vec")
	env := p.NewEnv(th)
	for i := 0; i < 1000; i++ { // touch a little from the compute pool
		env.WriteI64(base+teleport.Addr(i*8), int64(i))
	}

	var sum int64
	stats, err := rt.Pushdown(th, func(env *teleport.Env) {
		for i := 0; i < 1000; i++ {
			sum += env.ReadI64(base + teleport.Addr(i*8))
		}
	}, teleport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 999*1000/2 {
		t.Fatalf("sum = %d", sum)
	}
	if stats.Total() <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if m := teleport.NewLocalMachine(); m.Cfg.Disaggregated {
		t.Fatal("local machine must be monolithic")
	}
	if m := teleport.NewLinuxSSDMachine(1 << 20); m.Cfg.LocalMemBytes != 1<<20 {
		t.Fatal("ssd machine config")
	}
	cfg := teleport.Testbed()
	if cfg.ComputeClockGHz != 2.1 {
		t.Fatal("testbed clock")
	}
	if _, err := teleport.NewMachine(teleport.MachineConfig{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestFacadeErrorsExported(t *testing.T) {
	m := teleport.NewLocalMachine()
	p := m.NewProcess()
	rt := teleport.NewRuntime(p, 1)
	_, err := rt.Pushdown(teleport.NewThread("t"), func(*teleport.Env) {}, teleport.Options{})
	if !errors.Is(err, teleport.ErrNotDisaggregated) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeSchedulerAndFlags(t *testing.T) {
	s := teleport.NewScheduler()
	var end teleport.Time
	s.Spawn("a", 0, func(th *teleport.Thread) {
		th.Advance(5)
		end = th.Now()
	})
	s.Run()
	if end != 5 {
		t.Fatal("scheduler facade broken")
	}
	// The flag set must be distinct bits (FlagDefault is zero).
	flags := []teleport.Flags{
		teleport.FlagPSO, teleport.FlagNoCoherence, teleport.FlagEagerSync,
		teleport.FlagMigrateProcess, teleport.FlagEvictRanges,
	}
	seen := teleport.FlagDefault
	for _, f := range flags {
		if f == 0 || seen&f != 0 {
			t.Fatalf("flags overlap: %b", f)
		}
		seen |= f
	}
}
