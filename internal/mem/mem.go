// Package mem implements the paged virtual memory that a disaggregated
// process lives in: 4 KB pages, page-table entries with present/writable/
// dirty bits, and a ground-truth address space holding the actual bytes.
//
// The bytes in a Space are the single physical copy of the process's data
// (conceptually, the frames in the memory pool). Residency layers — the
// compute-local page cache, the memory pool's DRAM-vs-storage residency, and
// TELEPORT's temporary-context page table — are cost/permission models
// maintained by internal/ddc and internal/core on top of this package.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// Addr is a virtual address in a simulated process.
type Addr uint64

// PageID identifies one virtual page.
type PageID uint64

// PageOf returns the page containing a.
func PageOf(a Addr) PageID { return PageID(a >> PageShift) }

// PageBase returns the first address of page p.
func PageBase(p PageID) Addr { return Addr(p) << PageShift }

// PageSpan returns the pages [first, last] covered by the byte range
// [addr, addr+n).
func PageSpan(addr Addr, n int) (first, last PageID) {
	if n <= 0 {
		p := PageOf(addr)
		return p, p
	}
	return PageOf(addr), PageOf(addr + Addr(n) - 1)
}

// PTE is a page-table entry. Present and Writable drive the coherence
// protocol; Dirty tracks pending write-back state (§4.1: "Evictions ...
// preserve the correct page table entry dirty bits").
type PTE struct {
	Present  bool
	Writable bool
	Dirty    bool
}

// PageTable maps pages to entries. Pages without an entry are absent (∅ in
// the paper's state notation).
type PageTable struct {
	m map[PageID]*PTE
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable { return &PageTable{m: make(map[PageID]*PTE)} }

// Lookup returns the entry for p, or (nil, false).
func (pt *PageTable) Lookup(p PageID) (*PTE, bool) {
	e, ok := pt.m[p]
	return e, ok
}

// Ensure returns the entry for p, creating an all-false entry if absent.
func (pt *PageTable) Ensure(p PageID) *PTE {
	if e, ok := pt.m[p]; ok {
		return e
	}
	e := &PTE{}
	pt.m[p] = e
	return e
}

// Remove deletes the entry for p.
func (pt *PageTable) Remove(p PageID) { delete(pt.m, p) }

// Len returns the number of entries.
func (pt *PageTable) Len() int { return len(pt.m) }

// Range calls f for every entry until f returns false. Iteration order is
// unspecified; callers that need determinism must sort.
func (pt *PageTable) Range(f func(PageID, *PTE) bool) {
	for p, e := range pt.m {
		if !f(p, e) {
			return
		}
	}
}

// Clone deep-copies the table (Figure 8 line 7: "Clone of the caller's full
// page table").
func (pt *PageTable) Clone() *PageTable {
	c := &PageTable{m: make(map[PageID]*PTE, len(pt.m))}
	for p, e := range pt.m {
		cp := *e
		c.m[p] = &cp
	}
	return c
}

// Region records one named allocation for diagnostics.
type Region struct {
	Name string
	Base Addr
	Size int64
}

// Space is a process's ground-truth address space: a bump allocator over
// demand-created 4 KB frames.
type Space struct {
	next Addr
	// frames is the page-indexed frame table: frames[p] is page p's backing
	// bytes, nil until first touch. The space is a dense bump allocator
	// starting just above address 0, so direct indexing replaces the hash
	// map a sparse space would need — the frame lookup on the simulator's
	// access fast path is a bounds check and a load. Entries are created
	// once and never replaced (RestorePage copies in place), so borrowed
	// frame slices (Frame) stay valid and current for the Space's lifetime.
	frames    [][]byte
	allocated int64
	regions   []Region
}

// spaceBase leaves the low addresses unused so that Addr(0) can mean "nil".
const spaceBase Addr = 1 << 20

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: spaceBase}
}

// Alloc reserves n bytes, 64-byte aligned (so scalar fields never straddle
// cache lines and 8-byte values never straddle pages), and returns the base
// address. Frames materialise lazily on first touch.
func (s *Space) Alloc(n int64, name string) Addr {
	return s.alloc(n, 64, name)
}

// AllocPages reserves n bytes aligned to a page boundary. Used when distinct
// data structures must not share pages (the inverse of the false-sharing
// setup in Figure 7).
func (s *Space) AllocPages(n int64, name string) Addr {
	return s.alloc(n, PageSize, name)
}

func (s *Space) alloc(n, align int64, name string) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d) of %q", n, name))
	}
	base := (Addr(s.next) + Addr(align-1)) &^ Addr(align-1)
	s.next = base + Addr(n)
	s.allocated += n
	s.regions = append(s.regions, Region{Name: name, Base: base, Size: n})
	return base
}

// Allocated returns the total bytes allocated so far.
func (s *Space) Allocated() int64 { return s.allocated }

// Regions returns the allocation map.
func (s *Space) Regions() []Region { return s.regions }

// Pages returns the number of distinct pages spanned by allocations.
func (s *Space) Pages() int64 {
	if s.next == spaceBase {
		return 0
	}
	return int64(PageOf(s.next-1)-PageOf(spaceBase)) + 1
}

// Extent returns the first and last allocated pages. ok is false when
// nothing has been allocated yet.
func (s *Space) Extent() (first, last PageID, ok bool) {
	if s.next == spaceBase {
		return 0, 0, false
	}
	return PageOf(spaceBase), PageOf(s.next - 1), true
}

// frame returns (creating if needed) the backing bytes of page p.
func (s *Space) frame(p PageID) []byte {
	if p < PageID(len(s.frames)) {
		if f := s.frames[p]; f != nil {
			return f
		}
	}
	return s.newFrame(p)
}

// newFrame is the cold path of frame: grow the table and materialise p.
func (s *Space) newFrame(p PageID) []byte {
	if p >= PageID(len(s.frames)) {
		// Size the table to the allocation extent (with doubling as a
		// floor) so touching pages in ascending order grows it O(log n)
		// times, not once per page.
		n := int(p) + 1
		if s.next > spaceBase {
			if ext := int(PageOf(s.next-1)) + 1; ext > n {
				n = ext
			}
		}
		if d := 2 * len(s.frames); d > n {
			n = d
		}
		grown := make([][]byte, n)
		copy(grown, s.frames)
		s.frames = grown
	}
	f := make([]byte, PageSize)
	s.frames[p] = f
	return f
}

// Frame returns the live backing bytes of page p — a zero-copy borrow of
// the single physical copy. The slice stays valid (and current) for the
// lifetime of the Space: frames are never reallocated, and RestorePage
// copies in place. Callers borrowing a frame bypass the paging and cost
// models entirely; internal/ddc's fast paths use this only for accesses
// their own validity checks prove would charge nothing.
func (s *Space) Frame(p PageID) []byte { return s.frame(p) }

// SnapshotPage returns a copy of page p's current bytes — the pre-image the
// pushdown undo journal captures before a page's first write. A page never
// touched reads as zeroes, exactly as ReadAt would see it.
func (s *Space) SnapshotPage(p PageID) []byte {
	return s.SnapshotPageInto(p, nil)
}

// SnapshotPageInto captures page p into buf when buf has page capacity,
// allocating only when it does not. The undo journal recycles its pre-image
// buffers through this to keep capture allocation-free in steady state.
func (s *Space) SnapshotPageInto(p PageID, buf []byte) []byte {
	if cap(buf) < PageSize {
		buf = make([]byte, PageSize)
	}
	img := buf[:PageSize]
	copy(img, s.frame(p))
	return img
}

// RestorePage overwrites page p with a previously captured snapshot,
// rolling every byte of the page back to its SnapshotPage state.
func (s *Space) RestorePage(p PageID, img []byte) {
	copy(s.frame(p), img)
}

// ReadAt copies len(buf) bytes starting at addr into buf, crossing page
// boundaries as needed.
func (s *Space) ReadAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		f := s.frame(PageOf(addr))
		off := int(addr & (PageSize - 1))
		n := copy(buf, f[off:])
		buf = buf[n:]
		addr += Addr(n)
	}
}

// WriteAt copies buf into the space starting at addr.
func (s *Space) WriteAt(addr Addr, buf []byte) {
	for len(buf) > 0 {
		f := s.frame(PageOf(addr))
		off := int(addr & (PageSize - 1))
		n := copy(f[off:], buf)
		buf = buf[n:]
		addr += Addr(n)
	}
}

// within reports whether an access of size n starting at addr stays inside
// one page (the fast path for scalar accessors).
func within(addr Addr, n int) bool {
	return int(addr&(PageSize-1))+n <= PageSize
}

// ReadU64 reads a little-endian uint64 at addr.
func (s *Space) ReadU64(addr Addr) uint64 {
	if within(addr, 8) {
		f := s.frame(PageOf(addr))
		off := addr & (PageSize - 1)
		return binary.LittleEndian.Uint64(f[off:])
	}
	var b [8]byte
	s.ReadAt(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64 at addr.
func (s *Space) WriteU64(addr Addr, v uint64) {
	if within(addr, 8) {
		f := s.frame(PageOf(addr))
		off := addr & (PageSize - 1)
		binary.LittleEndian.PutUint64(f[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.WriteAt(addr, b[:])
}

// ReadU32 reads a little-endian uint32 at addr.
func (s *Space) ReadU32(addr Addr) uint32 {
	if within(addr, 4) {
		f := s.frame(PageOf(addr))
		off := addr & (PageSize - 1)
		return binary.LittleEndian.Uint32(f[off:])
	}
	var b [4]byte
	s.ReadAt(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32 at addr.
func (s *Space) WriteU32(addr Addr, v uint32) {
	if within(addr, 4) {
		f := s.frame(PageOf(addr))
		off := addr & (PageSize - 1)
		binary.LittleEndian.PutUint32(f[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.WriteAt(addr, b[:])
}

// ReadU8 reads one byte.
func (s *Space) ReadU8(addr Addr) byte {
	return s.frame(PageOf(addr))[addr&(PageSize-1)]
}

// WriteU8 writes one byte.
func (s *Space) WriteU8(addr Addr, v byte) {
	s.frame(PageOf(addr))[addr&(PageSize-1)] = v
}

// ReadI64 reads an int64.
func (s *Space) ReadI64(addr Addr) int64 { return int64(s.ReadU64(addr)) }

// WriteI64 writes an int64.
func (s *Space) WriteI64(addr Addr, v int64) { s.WriteU64(addr, uint64(v)) }

// ReadF64 reads a float64.
func (s *Space) ReadF64(addr Addr) float64 { return math.Float64frombits(s.ReadU64(addr)) }

// WriteF64 writes a float64.
func (s *Space) WriteF64(addr Addr, v float64) { s.WriteU64(addr, math.Float64bits(v)) }

// ReadI32 reads an int32.
func (s *Space) ReadI32(addr Addr) int32 { return int32(s.ReadU32(addr)) }

// WriteI32 writes an int32.
func (s *Space) WriteI32(addr Addr, v int32) { s.WriteU32(addr, uint32(v)) }
