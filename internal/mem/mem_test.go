package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageArithmetic(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf broken")
	}
	if PageBase(3) != 3*PageSize {
		t.Fatal("PageBase broken")
	}
	f, l := PageSpan(PageSize-1, 2)
	if f != 0 || l != 1 {
		t.Fatalf("PageSpan crossing = (%d,%d)", f, l)
	}
	f, l = PageSpan(100, 0)
	if f != 0 || l != 0 {
		t.Fatalf("PageSpan empty = (%d,%d)", f, l)
	}
}

func TestPageTableBasics(t *testing.T) {
	pt := NewPageTable()
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("fresh table should be empty")
	}
	e := pt.Ensure(5)
	e.Present, e.Writable = true, true
	if e2, ok := pt.Lookup(5); !ok || !e2.Writable {
		t.Fatal("Ensure/Lookup mismatch")
	}
	if pt.Ensure(5) != e {
		t.Fatal("Ensure must return the same entry")
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d", pt.Len())
	}
	pt.Remove(5)
	if pt.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestPageTableCloneIsDeep(t *testing.T) {
	pt := NewPageTable()
	pt.Ensure(1).Present = true
	pt.Ensure(2).Writable = true
	c := pt.Clone()
	ce, _ := c.Lookup(1)
	ce.Present = false
	if oe, _ := pt.Lookup(1); !oe.Present {
		t.Fatal("Clone shares entries with original")
	}
	if c.Len() != 2 {
		t.Fatalf("clone Len = %d", c.Len())
	}
}

func TestPageTableRange(t *testing.T) {
	pt := NewPageTable()
	for i := PageID(0); i < 10; i++ {
		pt.Ensure(i)
	}
	n := 0
	pt.Range(func(PageID, *PTE) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("Range early-stop visited %d", n)
	}
}

func TestAllocAlignmentAndAccounting(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, "a")
	b := s.Alloc(8, "b")
	if a%64 != 0 || b%64 != 0 {
		t.Fatalf("allocations not 64B aligned: %x %x", a, b)
	}
	if b <= a || b < a+100 {
		t.Fatalf("allocations overlap: a=%x b=%x", a, b)
	}
	p := s.AllocPages(PageSize*2, "p")
	if p%PageSize != 0 {
		t.Fatalf("AllocPages not page aligned: %x", p)
	}
	if s.Allocated() != 100+8+2*PageSize {
		t.Fatalf("Allocated = %d", s.Allocated())
	}
	if len(s.Regions()) != 3 {
		t.Fatalf("Regions = %d", len(s.Regions()))
	}
	if s.Pages() <= 0 {
		t.Fatal("Pages must be positive after allocation")
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace().Alloc(0, "zero")
}

func TestScalarRoundTrips(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(64, "scalars")
	s.WriteU64(a, 0xdeadbeefcafef00d)
	if s.ReadU64(a) != 0xdeadbeefcafef00d {
		t.Fatal("u64 round trip")
	}
	s.WriteU32(a+8, 42)
	if s.ReadU32(a+8) != 42 {
		t.Fatal("u32 round trip")
	}
	s.WriteI64(a+16, -7)
	if s.ReadI64(a+16) != -7 {
		t.Fatal("i64 round trip")
	}
	s.WriteF64(a+24, 3.5)
	if s.ReadF64(a+24) != 3.5 {
		t.Fatal("f64 round trip")
	}
	s.WriteI32(a+32, -9)
	if s.ReadI32(a+32) != -9 {
		t.Fatal("i32 round trip")
	}
	s.WriteU8(a+36, 0xAB)
	if s.ReadU8(a+36) != 0xAB {
		t.Fatal("u8 round trip")
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace()
	base := s.AllocPages(2*PageSize, "x")
	// Write a buffer straddling the page boundary.
	edge := base + PageSize - 3
	in := []byte{1, 2, 3, 4, 5, 6}
	s.WriteAt(edge, in)
	out := make([]byte, 6)
	s.ReadAt(edge, out)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("cross-page ReadAt: %v vs %v", in, out)
		}
	}
	// Scalar straddling the boundary must still round trip (slow path).
	s.WriteU64(edge, 0x1122334455667788)
	if s.ReadU64(edge) != 0x1122334455667788 {
		t.Fatal("cross-page u64 round trip")
	}
}

func TestZeroInitialised(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(PageSize, "z")
	if s.ReadU64(a+128) != 0 {
		t.Fatal("fresh memory must read as zero")
	}
}

// Property: allocations never overlap and data written to distinct
// allocations never interferes.
func TestAllocIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace()
		type slot struct {
			addr Addr
			val  uint64
		}
		var slots []slot
		for i := 0; i < 50; i++ {
			a := s.Alloc(int64(r.Intn(300)+8), "s")
			v := r.Uint64()
			s.WriteU64(a, v)
			slots = append(slots, slot{a, v})
		}
		for _, sl := range slots {
			if s.ReadU64(sl.addr) != sl.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteAt/ReadAt round-trips arbitrary buffers at arbitrary
// offsets.
func TestReadWriteAtProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s := NewSpace()
		base := s.AllocPages(PageSize*20, "buf")
		addr := base + Addr(off)
		s.WriteAt(addr, data)
		out := make([]byte, len(data))
		s.ReadAt(addr, out)
		for i := range data {
			if data[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtent(t *testing.T) {
	s := NewSpace()
	if _, _, ok := s.Extent(); ok {
		t.Fatal("empty space has no extent")
	}
	a := s.AllocPages(3*PageSize, "x")
	first, last, ok := s.Extent()
	if !ok {
		t.Fatal("extent missing after allocation")
	}
	if first > PageOf(a) || last < PageOf(a+3*PageSize-1) {
		t.Fatalf("extent [%d,%d] does not cover allocation", first, last)
	}
	if s.Pages() != int64(last-first)+1 {
		t.Fatalf("Pages() = %d, extent span %d", s.Pages(), last-first+1)
	}
}

func TestCrossPageU32(t *testing.T) {
	s := NewSpace()
	base := s.AllocPages(2*PageSize, "x")
	edge := base + PageSize - 2 // straddles the boundary
	s.WriteU32(edge, 0xA1B2C3D4)
	if s.ReadU32(edge) != 0xA1B2C3D4 {
		t.Fatal("cross-page u32 round trip")
	}
	s.WriteI32(edge, -5)
	if s.ReadI32(edge) != -5 {
		t.Fatal("cross-page i32 round trip")
	}
}
