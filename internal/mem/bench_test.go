package mem

import "testing"

// BenchmarkPageLookup measures the per-access cost of resolving a page's
// frame — the operation every simulated load/store bottoms out in. The
// page-indexed frame table makes this a bounds check and a slice load, not
// a hash-map probe.
func BenchmarkPageLookup(b *testing.B) {
	s := NewSpace()
	const pages = 4096
	base := s.AllocPages(pages*PageSize, "bench")
	first := PageOf(base)
	// Touch every page once so the frames exist.
	for p := int64(0); p < pages; p++ {
		s.Frame(first + PageID(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		f := s.Frame(first + PageID(i%pages))
		sink ^= f[0]
	}
	_ = sink
}

// BenchmarkSnapshotPageInto measures pre-image capture with a recycled
// buffer (the undo journal's steady state): one page copy, zero
// allocations.
func BenchmarkSnapshotPageInto(b *testing.B) {
	s := NewSpace()
	base := s.AllocPages(PageSize, "bench")
	pg := PageOf(base)
	s.Frame(pg)
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.SnapshotPageInto(pg, buf)
	}
}
