// Package bench regenerates every table and figure of the paper's
// evaluation (§7, Figures 1, 3, 6, 7, 10–22). Each runner builds the
// platforms it compares — monolithic Linux, Linux with an NVMe swap path,
// the base DDC (LegoOS stand-in), and TELEPORT — runs the workload on each,
// and emits the same rows or series the paper reports. Absolute numbers
// reflect the scaled-down datasets; the shapes (who wins, by what factor,
// where crossovers fall) are the reproduction targets, recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// Options holds the workload knobs shared by all figures.
type Options struct {
	// Scale is the TPC-H micro scale factor (lineitem = 60,000·Scale).
	Scale float64
	// GraphNV is the graph vertex count.
	GraphNV int
	// Words is the MapReduce corpus token count.
	Words int
	// Seed drives all generators.
	Seed int64
	// CacheFrac sizes the compute-local cache as a fraction of the loaded
	// working set (the paper's 1 GB against a 50 GB database ≈ 2%).
	CacheFrac float64
	// TraceCap, when positive, attaches an event ring of that capacity to
	// the machine (see internal/trace); RunWorkload returns its contents.
	TraceCap int

	// Metrics, when true, attaches a metrics registry to the machine;
	// RunWorkload returns its snapshot. Like tracing, recording costs no
	// virtual time — a run with Metrics on and off is bit-identical.
	Metrics bool

	// Profiling folds the retained trace into a virtual-time profile
	// (self/total time per span-kind path; see internal/obs). It implies an
	// event ring: when TraceCap is zero a default-capacity ring is attached.
	Profiling bool

	// Percentiles extracts per-operation latency percentiles from the
	// metrics histograms (implies a registry). ExactQuantiles, when
	// positive, additionally retains up to that many raw samples per
	// histogram so operations with bounded sample counts report exact
	// quantiles instead of bucket-interpolated ones.
	Percentiles    bool
	ExactQuantiles int

	// IncidentEvents, when positive, arms the forensic flight recorder: each
	// degrade-class event (rollback, shed, breaker-open, shard-down,
	// fallback-local) snapshots the last IncidentEvents trace events plus a
	// counter delta into an incident record (see internal/obs). Implies an
	// event ring, like Profiling. All three knobs are passive: same-seed
	// runs with them on and off are bit-identical.
	IncidentEvents int

	// ChaosProfile names a fault-injection profile (see internal/fault;
	// "" or "none" disables injection). Faults perturb virtual time, never
	// answers: lost messages are retransmitted, failed reads re-read, and
	// pushdowns that hit a crash retry and then fall back to compute-side
	// execution.
	ChaosProfile string

	// ChaosSeed seeds the fault plan's RNG streams; 0 reuses Seed. Two runs
	// with the same options and chaos seed inject the identical fault
	// sequence and report bit-identical timings.
	ChaosSeed int64

	// PoolShards splits the disaggregated memory pool into this many
	// independent crash-domain shards (0 or 1 = single controller), and
	// Replicas keeps every page on that many shards so reads fail over to
	// a live replica during a single-shard outage (see internal/ddc).
	// Monolithic platforms ignore both.
	PoolShards int
	Replicas   int

	// WriteQuorum is W, the number of replica acks a page write needs to
	// commit on a replicated sharded pool; unreachable replicas get hinted
	// handoff records and failover reads detect and repair staleness via
	// version tags (see internal/ddc). 0 or 1 keeps the legacy synchronous
	// fan-out. Requires W ≤ Replicas.
	WriteQuorum int

	// PushQueueCap bounds the memory pool's pushdown workqueue: beyond it,
	// admission control sheds requests with ErrQueueFull (recovered by the
	// retry policy). 0 keeps the unbounded FIFO.
	PushQueueCap int

	// PushDeadline is the per-attempt virtual-time budget for every
	// pushdown call; a call that cannot finish in budget aborts (rolling
	// back any partial writes) instead of stalling. 0 means no budget.
	PushDeadline sim.Time

	// BreakerThreshold overrides the runtime circuit breaker's
	// consecutive-failure threshold: 0 keeps the default, a negative value
	// disables the breaker.
	BreakerThreshold int

	// BreakerCooldown overrides the breaker's open → half-open cooldown
	// (0 keeps the default).
	BreakerCooldown sim.Time

	// Parallel bounds how many figure data points simulate concurrently on
	// the host: 0 uses one worker per host core (GOMAXPROCS), 1 forces
	// sequential execution, n>1 uses n workers. Every run is hermetic, so
	// parallelism affects host wall-clock only — tables, virtual times and
	// counters are bit-identical at any setting (see parallel.go).
	Parallel int

	// SimWorkers bounds how many host goroutines drain the domains of one
	// multi-machine simulation (RunCluster) inside a conservative lookahead
	// window: 0 uses one worker per host core (GOMAXPROCS), 1 forces
	// sequential window draining, n>1 uses n workers. Like Parallel it is
	// host-only: virtual times are bit-identical at any setting, enforced
	// by TestParallelDeterminism.
	SimWorkers int

	// pool is the shared worker-token channel; Options is copied by value,
	// so every figure and leaf job sees the same channel. Created by
	// withPool at the Run/RunAll entry points.
	pool chan struct{}
}

// Defaults returns the options used by the committed EXPERIMENTS.md run.
func Defaults() Options {
	return Options{
		Scale:     2,
		GraphNV:   60000,
		Words:     250000,
		Seed:      1,
		CacheFrac: 0.02,
	}
}

// Table is one figure's regenerated output.
type Table struct {
	Figure string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Figure, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	// Rune count, not byte length: cell text may hold multi-byte runes
	// ("µs") and byte-width padding would misalign those columns.
	w := utf8.RuneCountInString(s)
	if w >= n {
		return s
	}
	return s + strings.Repeat(" ", n-w)
}

// Runner regenerates one figure.
type Runner func(opts Options) *Table

// registry maps figure ids ("1a", "13", ...) to runners.
var registry = map[string]Runner{}

var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate figure " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// Figures returns the registered figure ids in registration order.
func Figures() []string { return append([]string(nil), registryOrder...) }

// Run regenerates one figure by id.
func Run(id string, opts Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		sorted := Figures()
		sort.Strings(sorted)
		return nil, fmt.Errorf("bench: unknown figure %q (have %s)", id, strings.Join(sorted, ", "))
	}
	return r(opts.withPool()), nil
}

// RunAll regenerates every figure. Figures execute concurrently when the
// options allow parallelism (their data points share one bounded worker
// pool), but the returned slice is always in registration order, and every
// table is bit-identical to a sequential run.
func RunAll(opts Options) []*Table {
	opts = opts.withPool()
	out := make([]*Table, len(registryOrder))
	if opts.pool == nil {
		for i, id := range registryOrder {
			out[i] = registry[id](opts)
		}
		return out
	}
	var wg sync.WaitGroup
	for i, id := range registryOrder {
		wg.Add(1)
		go func(i int, r Runner) {
			defer wg.Done()
			out[i] = r(opts)
		}(i, registry[id])
	}
	wg.Wait()
	return out
}

// cacheBytes sizes the compute cache for a working set, honouring a sane
// floor (a cache below a handful of pages is thrashing noise, not a
// platform).
func cacheBytes(workingSet int64, frac float64) int64 {
	b := int64(float64(workingSet) * frac)
	if min := int64(48 * mem.PageSize); b < min {
		b = min
	}
	return b
}

// ddcWithCache returns a BaseDDC config with the cache sized to the
// workload.
func ddcWithCache(workingSet int64, frac float64) ddc.Config {
	return ddc.BaseDDC(cacheBytes(workingSet, frac))
}

// fm formats a virtual duration in seconds with 3 decimals.
func fm(t sim.Time) string { return fmt.Sprintf("%.4f", t.Seconds()) }

// fx formats a ratio like "12.3x".
func fx(r float64) string { return fmt.Sprintf("%.1fx", r) }

// ratio guards divide-by-zero.
func ratio(num, den sim.Time) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
