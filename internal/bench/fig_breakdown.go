package bench

import (
	"fmt"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/loc"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

func init() {
	register("10", fig10)
	register("11", fig11)
	register("19", fig19)
	register("20", fig20)
}

// fig10 reproduces Figure 10: the per-operator/phase breakdown of the query
// with the greatest cost of scaling in each system (Q9, SSSP, WordCount):
// local and DDC execution times plus the remote traffic each operator
// caused. The paper's pattern — one or two operators dominating — is the
// reproduction target.
func fig10(opts Options) *Table {
	t := &Table{
		Figure: "Fig 10",
		Title:  "Per-operator breakdown: local vs base DDC, with remote traffic",
		Header: []string{"system", "operator", "local(s)", "ddc(s)", "remote(MB)", "wire(s)"},
	}
	names := []string{"Q9", "SSSP", "WC"}
	var jobs []func() runOut
	for _, name := range names {
		w := findWorkload(name)
		for _, p := range []platform{platLocal, platBase} {
			jobs = append(jobs, func() runOut {
				return run(w, opts, runSpec{platform: p})
			})
		}
	}
	outs := parmap(opts, jobs)
	for i, name := range names {
		w := findWorkload(name)
		local := newReport(name, "local", outs[i*2])
		base := newReport(name, "base-ddc", outs[i*2+1])
		localBy := map[string]int64{}
		for _, o := range local.Ops {
			localBy[o.Name] = o.Ns
		}
		for _, o := range base.Ops {
			t.AddRow(w.System+"/"+name, o.Name, fm(sim.Time(localBy[o.Name])), fm(sim.Time(o.Ns)),
				fmt.Sprintf("%.1f", float64(o.RemoteBytes)/(1<<20)),
				fm(sim.Time(o.Comps.LayerNs("net"))))
		}
	}
	t.Notes = append(t.Notes,
		"paper: Q9 dominated by Projection (189GB) and HashJoin (87GB); SSSP by Finalize (249GB) and Scatter (42GB); WC by the map phase (181GB)",
		"wire(s) is the operator's fabric-transfer share from the attribution report")
	return t
}

// fig11 reproduces Figure 11: per-operator code-change and pushed-code line
// counts, measured from this repository's sources with go/parser.
func fig11(Options) *Table {
	t := &Table{
		Figure: "Fig 11",
		Title:  "Pushdown integration effort (lines of code, measured from this repo)",
		Header: []string{"system", "operator", "code-change", "pushed-code"},
	}
	root, err := loc.ModuleRoot(".")
	if err != nil {
		t.Notes = append(t.Notes, "module root not found: "+err.Error())
		return t
	}
	rows, err := loc.Count(root, loc.DefaultEntries())
	if err != nil {
		t.Notes = append(t.Notes, "count failed: "+err.Error())
		return t
	}
	for _, r := range rows {
		t.AddRow(r.System, r.Operator, fmt.Sprintf("%d", r.CodeChange), fmt.Sprintf("%d", r.PushedCode))
	}
	t.Notes = append(t.Notes,
		"paper: changes 75-302 lines per operator, pushed code under 100 lines, against systems of 2K-400K LoC")
	return t
}

// fig19 reproduces Figure 19: the components of a pushdown call and what
// determines each. The rows are definitional (the table in the paper is
// descriptive); the measured values appear in Figure 20.
func fig19(Options) *Table {
	t := &Table{
		Figure: "Fig 19",
		Title:  "Components of executing a pushdown request",
		Header: []string{"#", "component", "determined by"},
	}
	t.AddRow("1", "Pre-pushdown sync time", "synchronisation method, cache size")
	t.AddRow("2", "Request transfer time", "message size, the network")
	t.AddRow("3", "Context setup time", "synchronisation method, cache size")
	t.AddRow("4", "Function execution / online sync", "user function; sync method, cache size")
	t.AddRow("5", "Response transfer time", "message size, the network")
	t.AddRow("6", "Post-pushdown sync time", "synchronisation method, cache size")
	t.Notes = append(t.Notes, "realised as core.Stats; Figure 20 reports the measured values")
	return t
}

// fig20 reproduces Figure 20: the cost breakdown of one pushdown call under
// eager versus on-demand synchronisation, with the user-function time
// excluded (paper: ≈3.5 s vs ≈0.3 s per call at 1 GB cache; pre/post sync
// dominate eager, context setup dominates on-demand).
func fig20(opts Options) *Table {
	t := &Table{
		Figure: "Fig 20",
		Title:  "Pushdown overhead breakdown (user function time excluded), ms",
		Header: []string{"method", "pre", "request", "setup", "online-sync", "response", "post", "total-overhead"},
	}
	runMethod := func(flags core.Flags) core.RuntimeStats {
		m := ddc.MustMachine(ddc.BaseDDC(1 << 30))
		p := m.NewProcess()
		// A working set scaled like the paper's 50 GB against a 1 GB cache:
		// the cache is ~2% of the space and fully resident + dirty.
		const spacePages = 24000
		const cachePages = 512
		a := p.Space.AllocPages(spacePages*mem.PageSize, "ws")
		p.ResizeCache(cachePages * mem.PageSize)
		warm := sim.NewThread("warm")
		wenv := p.NewEnv(warm)
		for pg := 0; pg < cachePages; pg++ {
			wenv.WriteI64(a+mem.Addr(pg)*mem.PageSize, int64(pg))
		}
		rt := core.NewRuntime(p, 1)
		th := sim.NewThread("caller")
		_, err := rt.Pushdown(th, func(env *ddc.Env) {
			// A modest function: scan a slice of the space, including some
			// pages the compute pool holds dirty (online coherence work).
			for pg := 0; pg < 64; pg++ {
				env.ReadI64(a + mem.Addr(pg)*mem.PageSize)
			}
			for pg := cachePages; pg < cachePages+256; pg++ {
				env.ReadI64(a + mem.Addr(pg)*mem.PageSize)
			}
		}, core.Options{Flags: flags})
		if err != nil {
			panic(err)
		}
		return rt.Stats()
	}
	// The runtime's aggregated phase sums equal the single call's Stats, so
	// the figure now reads the run-level observability surface that
	// RunWorkload reports instead of a value threaded out of one call.
	add := func(name string, rs core.RuntimeStats) {
		st := core.Stats{
			PreSync: rs.PreSyncTime, Request: rs.RequestTime,
			Queue: rs.QueueTime, CtxSetup: rs.CtxSetupTime,
			Exec: rs.ExecTime, OnlineSync: rs.OnlineSyncTime,
			Response: rs.ResponseTime, PostSync: rs.PostSyncTime,
		}
		msf := func(d sim.Time) string { return fmt.Sprintf("%.3f", d.Millis()) }
		t.AddRow(name, msf(st.PreSync), msf(st.Request), msf(st.Queue+st.CtxSetup),
			msf(st.OnlineSync), msf(st.Response), msf(st.PostSync), msf(st.Overhead()))
	}
	stats := parmap(opts, []func() core.RuntimeStats{
		func() core.RuntimeStats { return runMethod(core.FlagEagerSync) },
		func() core.RuntimeStats { return runMethod(core.FlagDefault) },
	})
	add("Eager sync", stats[0])
	add("On-demand sync", stats[1])
	t.Notes = append(t.Notes,
		"paper: eager ≈3.5s dominated by pre/post page-by-page transfers; on-demand ≈0.3s dominated by page-table setup")
	return t
}
