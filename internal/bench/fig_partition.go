package bench

import (
	"fmt"
	"math"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
)

func init() {
	register("A7", figPartition)
}

// partPoint is one partition cell: Q6 on a replicated sharded pool under
// asymmetric link partitions, with the answer retained for the correctness
// column.
type partPoint struct {
	ans      uint64
	elapsed  sim.Time
	handoffs int64
	replays  int64
	repairs  int64
	stale    int64
	qstalls  int64
	qlost    int64
	cut      sim.Time // union of all link-outage windows through the run
}

// figPartition is an extension for partition tolerance: Q6 on TELEPORT over
// a 4-shard, 3-replica pool, sweeping the write quorum W against the link
// partition rate. Every cell must produce the fault-free answer; what varies
// is the price of consistency — W=1 commits on any reachable copy and leans
// on hinted handoff and read-repair to converge, while W≥2 stalls writes
// below quorum and sheds pushdowns with ErrQuorumLost until links heal.
func figPartition(opts Options) *Table {
	t := &Table{
		Figure: "Ext A7",
		Title:  "Partition tolerance: Q6 on a 4-shard 3-replica pool, write quorum × partition rate",
		Header: []string{"write-quorum", "partition", "correct", "handoffs", "replays", "read-repairs", "stale-averted", "quorum-stalls", "quorum-lost", "partitioned", "slowdown"},
	}
	const shards, replicas = 4, 3
	rates := []struct {
		name   string
		meanUp sim.Time
	}{
		{"light (~4.8%)", 3 * sim.Millisecond},
		{"heavy (~16.7%)", 750 * sim.Microsecond},
	}
	quorums := []int{1, 2, 3}

	runCell := func(w int, prof *fault.Profile) partPoint {
		cfg := ddc.BaseDDC(1 << 20)
		cfg.PoolShards = shards
		cfg.Replicas = replicas
		cfg.WriteQuorum = w
		m := ddc.MustMachine(cfg)
		if prof != nil {
			m.AttachFault(fault.NewPlan(*prof, opts.Seed))
		}
		p := m.NewProcess()
		th := sim.NewThread("A7")
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: opts.Scale / 4, Seed: opts.Seed})
		ws := p.Space.Allocated()
		p.ResizeCache(cacheBytes(ws, 0.02))
		p.ResizePool(ws / 2)
		rt := core.NewRuntime(p, 1)
		ex := profile.NewExec(th, p, rt)
		ex.Push(q6Push...)
		ans := tpch.Q6(ex, d, 730)
		end := th.Now()
		pt := partPoint{
			ans:     math.Float64bits(ans),
			elapsed: ex.Total(),
			qlost:   rt.Stats().QuorumLostObserved,
		}
		var cuts []fault.Window
		for s := 0; s < shards; s++ {
			if m.ShardStats != nil {
				st := m.ShardStats[s]
				pt.handoffs += st.HandoffRecords
				pt.replays += st.HandoffReplays
				pt.repairs += st.ReadRepairs
				pt.stale += st.StaleReadsAverted
				pt.qstalls += st.QuorumStalls
			}
		}
		// The partitioned column folds every directed link the pool has —
		// compute↔shard both ways and shard↔shard both ways — into one
		// union, in a fixed endpoint order so the figure is deterministic.
		ends := make([]int, 0, shards+1)
		ends = append(ends, fault.EndpointCompute)
		for s := 0; s < shards; s++ {
			ends = append(ends, s)
		}
		for _, from := range ends {
			for _, to := range ends {
				if from == to {
					continue
				}
				cuts = append(cuts, m.Fault.LinkWindowsThrough(from, to, end)...)
			}
		}
		pt.cut = fault.UnionDowntime(cuts, end)
		return pt
	}

	jobs := []func() partPoint{func() partPoint { return runCell(1, nil) }}
	for _, rate := range rates {
		prof := fault.Profile{
			Name:         fmt.Sprintf("partition-%v", rate.meanUp),
			LinkMeanUp:   rate.meanUp,
			LinkMeanDown: 150 * sim.Microsecond,
		}
		for _, w := range quorums {
			prof := prof
			w := w
			jobs = append(jobs, func() partPoint { return runCell(w, &prof) })
		}
	}
	pts := parmap(opts, jobs)
	base := pts[0]
	i := 1
	for _, rate := range rates {
		for _, w := range quorums {
			pt := pts[i]
			i++
			correct := "yes"
			if pt.ans != base.ans {
				correct = "NO"
			}
			t.AddRow(fmt.Sprintf("%d", w), rate.name, correct,
				fmt.Sprintf("%d", pt.handoffs), fmt.Sprintf("%d", pt.replays),
				fmt.Sprintf("%d", pt.repairs), fmt.Sprintf("%d", pt.stale),
				fmt.Sprintf("%d", pt.qstalls), fmt.Sprintf("%d", pt.qlost),
				fmt.Sprintf("%.1f%%", 100*float64(pt.cut)/float64(pt.elapsed)),
				fx(ratio(pt.elapsed, base.elapsed)))
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: answers are identical in every cell (partitions never change answers); version tags turn would-be stale reads into read-repairs",
		"partitioned = fraction of virtual time at least one directed link was severed; slowdown vs the fault-free W=1 run")
	return t
}
