package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// TestChaosSoak is the long-running chaos soak: every fault profile crossed
// with many seeds on every chaos workload, checking the robustness
// invariant at scale — answers bit-identical to the fault-free run, and
// same-seed reruns bit-identical in every observable. It is opt-in
// (CHAOS_SOAK=1, `make chaos-soak`) because it runs hundreds of
// executions; when CHAOS_SOAK_ARTIFACTS names a directory, a per-profile
// fault-report summary is written there for CI upload.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("chaos soak is opt-in: set CHAOS_SOAK=1 (or run `make chaos-soak`)")
	}
	const seeds = 16
	artifactDir := os.Getenv("CHAOS_SOAK_ARTIFACTS")
	if artifactDir != "" {
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			t.Fatalf("artifacts dir: %v", err)
		}
	}

	type profAgg struct {
		injected  fault.Counters
		rt        core.RuntimeStats
		stalls    int64
		retries   int64
		failovers int64
		resync    int64
		shStalls  int64
		handoffs  int64
		replays   int64
		repairs   int64
		stale     int64
		qstalls   int64
		shardDown [maxChaosShards]sim.Time
		lines     []string
	}
	agg := map[string]*profAgg{}

	for _, w := range chaosWorkloads() {
		baseline := runChaos(t, w, "none", 1)
		for _, prof := range fault.ProfileNames() {
			a := agg[prof]
			if a == nil {
				a = &profAgg{}
				agg[prof] = a
			}
			for seed := int64(1); seed <= seeds; seed++ {
				got := runChaos(t, w, prof, seed)
				if got.Answer != baseline.Answer {
					t.Errorf("%s under %q seed %d: answer %#x, fault-free %#x",
						w.name, prof, seed, got.Answer, baseline.Answer)
				}
				rerun := runChaos(t, w, prof, seed)
				if got != rerun {
					t.Errorf("%s under %q seed %d: rerun differs:\n  a=%+v\n  b=%+v",
						w.name, prof, seed, got, rerun)
				}
				a.injected = addCounters(a.injected, got.Plan)
				a.rt = addRuntimeStats(a.rt, got.RT)
				a.stalls += got.Stalls
				a.retries += got.Fabric.Retries
				a.failovers += got.Failovers
				a.resync += got.ResyncPages
				a.shStalls += got.ShardStalls
				a.handoffs += got.Handoffs
				a.replays += got.Replays
				a.repairs += got.Repairs
				a.stale += got.StaleCaught
				a.qstalls += got.QuorumStall
				for s := range a.shardDown {
					a.shardDown[s] += got.ShardDown[s]
				}
				a.lines = append(a.lines, fmt.Sprintf(
					"%-8s seed=%-3d elapsed=%-14v injected={%v} rollbacks=%d shed=%d deadline-aborts=%d breaker-opens=%d fallbacks=%d failovers=%d resync-pages=%d shard-stalls=%d handoffs=%d replays=%d read-repairs=%d quorum-stalls=%d quorum-lost=%d",
					w.name, seed, got.Elapsed, got.Plan, got.RT.Rollbacks, got.RT.Shed,
					got.RT.DeadlineAborts, got.RT.BreakerOpens, got.RT.LocalFallbacks,
					got.Failovers, got.ResyncPages, got.ShardStalls,
					got.Handoffs, got.Replays, got.Repairs, got.QuorumStall, got.RT.QuorumLostObserved))
			}
		}
	}

	// The soak proves nothing about a path it never took: the profile set as
	// a whole must exercise mid-execution rollback.
	var totalMid int64
	for _, a := range agg {
		totalMid += a.injected.CtxMidCrashes
	}
	if totalMid == 0 {
		t.Error("no profile armed a mid-execution crash across the whole soak")
	}

	if artifactDir != "" {
		for prof, a := range agg {
			fr := &FaultReport{
				Profile: prof, Seed: -1, Injected: a.injected,
				FabricRetries: a.retries, PoolStalls: a.stalls,
				SSDReadRetries:       a.injected.SSDReadErrors,
				FailoverReads:        a.failovers,
				ResyncPages:          a.resync,
				ShardStalls:          a.shStalls,
				PoolDownObserved:     a.rt.PoolDownObserved,
				ShardDownObserved:    a.rt.ShardDownObserved,
				CtxCrashes:           a.rt.CtxCrashes,
				PushRetries:          a.rt.Retries,
				LocalFallbacks:       a.rt.LocalFallbacks,
				Shed:                 a.rt.Shed,
				DeadlineAborts:       a.rt.DeadlineAborts,
				Rollbacks:            a.rt.Rollbacks,
				RolledBackPages:      a.rt.RolledBackPages,
				BreakerOpens:         a.rt.BreakerOpens,
				BreakerCloses:        a.rt.BreakerCloses,
				BreakerShortCircuits: a.rt.BreakerShortCircuits,
				HandoffRecords:       a.handoffs,
				HandoffReplays:       a.replays,
				ReadRepairs:          a.repairs,
				StaleReadsAverted:    a.stale,
				QuorumStalls:         a.qstalls,
				QuorumLostObserved:   a.rt.QuorumLostObserved,
				QuorumAborts:         a.rt.QuorumAborts,
			}
			// Per-shard availability: aggregate downtime per shard index
			// across the profile's runs (trailing all-zero shards trimmed).
			last := -1
			for s, d := range a.shardDown {
				if d > 0 {
					last = s
				}
			}
			if last >= 0 {
				fr.ShardDowntime = append(fr.ShardDowntime, a.shardDown[:last+1]...)
			}
			body := fmt.Sprintf("aggregate over %d runs\n%s\n\n%s\n",
				len(a.lines), fr, strings.Join(a.lines, "\n"))
			name := filepath.Join(artifactDir, "soak-"+prof+".txt")
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Errorf("artifact %s: %v", name, err)
			}
		}
	}
}

func addCounters(a, b fault.Counters) fault.Counters {
	a.Drops += b.Drops
	a.Corruptions += b.Corruptions
	a.Spikes += b.Spikes
	a.CtxCrashes += b.CtxCrashes
	a.CtxMidCrashes += b.CtxMidCrashes
	a.SSDReadErrors += b.SSDReadErrors
	a.PoolWindows += b.PoolWindows
	a.ShardWindows += b.ShardWindows
	a.LinkWindows += b.LinkWindows
	a.SplitWindows += b.SplitWindows
	return a
}

func addRuntimeStats(a, b core.RuntimeStats) core.RuntimeStats {
	a.PoolDownObserved += b.PoolDownObserved
	a.ShardDownObserved += b.ShardDownObserved
	a.CtxCrashes += b.CtxCrashes
	a.Retries += b.Retries
	a.LocalFallbacks += b.LocalFallbacks
	a.Shed += b.Shed
	a.DeadlineAborts += b.DeadlineAborts
	a.Rollbacks += b.Rollbacks
	a.RolledBackPages += b.RolledBackPages
	a.BreakerOpens += b.BreakerOpens
	a.BreakerCloses += b.BreakerCloses
	a.BreakerShortCircuits += b.BreakerShortCircuits
	a.QuorumLostObserved += b.QuorumLostObserved
	a.QuorumAborts += b.QuorumAborts
	return a
}

// soakObserved is everything the path-coverage scenario can compare across
// reruns.
type soakObserved struct {
	Elapsed   sim.Time
	Stats     core.RuntimeStats
	VecHash   uint64
	Rollback  int
	Shed      int
	BrOpen    int
	BrHalf    int
	BrClose   int
	QueueFull int
}

// soakScenario drives one runtime through every crash-consistency path in a
// single deterministic schedule: a mid-execution crash pair that rolls back
// and opens the breaker, a short-circuited call while open, a half-open
// probe that closes it, and an admission-control shed under queue pressure.
func soakScenario(t *testing.T) soakObserved {
	t.Helper()
	const pages = 520
	m := ddc.MustMachine(ddc.BaseDDC(1 << 20))
	ring := trace.New(1 << 16)
	m.AttachTrace(ring)
	p := m.NewProcess()
	rt := core.NewRuntime(p, 1)
	rt.QueueCap = 1
	// The cooldown must outlast phase 1's own multi-millisecond execution,
	// or the open breaker would already admit a probe at phase 2.
	rt.Breaker = core.BreakerConfig{Threshold: 2, Cooldown: 50 * sim.Millisecond}

	th := sim.NewThread("driver")
	a := p.Space.AllocPages(pages*mem.PageSize, "vec")
	env := p.NewEnv(th)
	for i := 0; i < pages; i++ {
		env.WriteI64(a+mem.Addr(i)*mem.PageSize, int64(i))
	}
	inc := func(env *ddc.Env) {
		for i := 0; i < pages; i++ {
			addr := a + mem.Addr(i)*mem.PageSize
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
	pol := core.DefaultRetryThenLocal()

	// Phase 1 — rollback: every pushdown attempt crashes mid-execution, so
	// the policy rolls back twice and falls back locally; two consecutive
	// failures open the breaker.
	m.AttachFault(fault.NewPlan(fault.Profile{Name: "mid", CtxCrashMidProb: 1}, 3))
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || ran {
		t.Fatalf("phase 1: ran=%v err=%v, want rollback + local fallback", ran, err)
	}

	// Phase 2 — open breaker short-circuits straight to local execution.
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || ran {
		t.Fatalf("phase 2: ran=%v err=%v, want short-circuit", ran, err)
	}

	// Phase 3 — faults cleared, cooldown elapsed: the half-open probe
	// succeeds and closes the breaker.
	m.AttachFault(nil)
	th.Advance(60 * sim.Millisecond)
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || !ran {
		t.Fatalf("phase 3: ran=%v err=%v, want a successful probe", ran, err)
	}

	// Phase 4 — shed: one context, queue capacity one, three concurrent
	// pushers; the last to arrive is rejected by admission control.
	errs := make([]error, 3)
	s := sim.NewScheduler()
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("pusher", sim.Time(i)*10*sim.Microsecond, func(pt *sim.Thread) {
			_, errs[i] = rt.Pushdown(pt, func(env *ddc.Env) {
				env.Compute(2_000_000) // ~1 ms
			}, core.Options{})
		})
	}
	s.Run()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("phase 4: first two pushers failed: %v, %v", errs[0], errs[1])
	}
	queueFull := 0
	if errors.Is(errs[2], core.ErrQueueFull) {
		queueFull++
	}

	// The three increment calls (two local, one pushed) applied exactly
	// once each despite two mid-execution crashes.
	var h uint64
	for i := 0; i < pages; i++ {
		if got := env.ReadI64(a + mem.Addr(i)*mem.PageSize); got != int64(i)+3 {
			t.Fatalf("slot %d = %d, want %d (exactly-once violated across the scenario)", i, got, i+3)
		}
		h = h*1099511628211 + uint64(i)
	}

	counts := map[trace.Kind]int{}
	for _, e := range ring.Events() {
		if e.Phase != trace.PhaseEnd {
			counts[e.Kind]++
		}
	}
	return soakObserved{
		Elapsed:   th.Now(),
		Stats:     rt.Stats(),
		VecHash:   h,
		Rollback:  counts[trace.KindPushRollback],
		Shed:      counts[trace.KindShed],
		BrOpen:    counts[trace.KindBreakerOpen],
		BrHalf:    counts[trace.KindBreakerHalfOpen],
		BrClose:   counts[trace.KindBreakerClose],
		QueueFull: queueFull,
	}
}

// partObserved is everything the partition scenario can compare across
// reruns.
type partObserved struct {
	Elapsed      sim.Time
	Stats        core.RuntimeStats
	Sum          int64
	Hinted       int // hinted-handoff instants traced
	AntiEntropy  int // shard-anti-entropy sweep spans
	Heal         int // partition-heal instants
	Repair       int // read-repair spans
	QuorumEvents int // shard-down events flagged as quorum losses
	Stat1        ddc.ShardStat
	QStalls0     int64
}

// partitionScenario drives one machine through the full partition
// tolerance cycle in a single deterministic schedule: a quorum write that
// journals hinted handoffs for a severed replica, a failover read that
// detects the stale copy via its version tag and read-repairs it, an
// anti-entropy sweep that replays the surviving record when the link heals,
// and a pushdown that sheds with ErrQuorumLost while the working set is
// below its write quorum, then succeeds once the partition lifts.
func partitionScenario(t *testing.T) partObserved {
	t.Helper()
	const n = 2048 // 4 data pages: primaries cover every shard
	cfg := ddc.BaseDDC(16 * mem.PageSize)
	cfg.PoolShards, cfg.Replicas, cfg.WriteQuorum = 4, 3, 2
	m := ddc.MustMachine(cfg)
	ring := trace.New(1 << 16)
	m.AttachTrace(ring)
	plan := fault.NewPlan(fault.Profile{Name: "part"}, 0)
	m.AttachFault(plan)
	p := m.NewProcess()
	rt := core.NewRuntime(p, 1)
	th := sim.NewThread("driver")

	a := p.Space.Alloc(int64(n)*8, "vec")
	env := p.NewEnv(th)
	for i := 0; i < n; i++ {
		env.WriteI64(a+mem.Addr(i*8), int64(i))
	}

	// Pages A and B stripe to shard 0 (replica set {0,1,2}); page C strips
	// to shard 1. They are metadata-only page IDs outside the allocated
	// space: AccessPage/ReplicatePage model routing cost, not bytes.
	const pgA, pgB, pgC = mem.PageID(1004), mem.PageID(1008), mem.PageID(1001)
	base := th.Now()
	us := func(d int64) sim.Time { return base + sim.Time(d)*sim.Microsecond }
	// Shard 0 cannot push copies to shard 1 for a long stretch; shard 2 can
	// after t+80; the compute node loses shard 0 during [40,80) and shards
	// 2 and 3 during [300,600).
	plan.SetLinkWindows(0, 1, fault.Window{Down: us(10), Up: us(200)})
	plan.SetLinkWindows(2, 1, fault.Window{Down: us(10), Up: us(80)})
	plan.SetLinkWindows(fault.EndpointCompute, 0, fault.Window{Down: us(40), Up: us(80)})
	plan.SetLinkWindows(fault.EndpointCompute, 2, fault.Window{Down: us(300), Up: us(600)})
	plan.SetLinkWindows(fault.EndpointCompute, 3, fault.Window{Down: us(300), Up: us(600)})

	// Phase 1 — hinted handoff: two quorum writes commit on {0,2} and
	// journal hinted records for the severed shard 1.
	th.AdvanceTo(us(10))
	m.ReplicatePage(th, pgA, 0)
	m.ReplicatePage(th, pgB, 0)

	// Phase 2 — read-repair: with shard 0 partitioned from compute, a read
	// of A fails over to shard 1, whose copy is stale and unrepairable
	// until the 2→1 link heals; the version check catches it and the
	// repair stalls for the heal instead of serving stale bytes.
	th.AdvanceTo(us(40))
	if s := m.AccessPage(th, pgA, false); s != 1 {
		t.Fatalf("partitioned read served by shard %d, want failover to 1", s)
	}
	if th.Now() < us(80) {
		t.Fatalf("stale read served at %v, before any fresh replica could reach shard 1 (%v)", th.Now(), us(80))
	}

	// Phase 3 — anti-entropy: traffic touching shard 1 over the healed 2→1
	// link drains B's surviving record (A's was superseded by the repair).
	if s := m.AccessPage(th, pgC, false); s != 1 {
		t.Fatalf("post-heal read served by shard %d, want primary 1", s)
	}

	// Phase 4 — quorum loss: with compute severed from shards 2 and 3,
	// pages primaried on 1 and 2 have one usable replica < W=2. The bare
	// pushdown sheds with ErrQuorumLost; the policy waits for the heal.
	th.AdvanceTo(us(310))
	var out int64
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		var s int64
		for i := 0; i < n; i++ {
			s += env.ReadI64(a + mem.Addr(i*8))
		}
		out = s
	}, core.Options{}); !errors.Is(err, core.ErrQuorumLost) {
		t.Fatalf("pushdown below write quorum: err = %v, want ErrQuorumLost", err)
	}
	_, ran, err := rt.PushdownWithPolicy(th, func(env *ddc.Env) {
		var s int64
		for i := 0; i < n; i++ {
			s += env.ReadI64(a + mem.Addr(i*8))
		}
		out = s
	}, core.Options{}, core.DefaultRetryThenLocal())
	if err != nil || !ran {
		t.Fatalf("policy: ran=%v err=%v, want a successful retry after the partition heals", ran, err)
	}
	if th.Now() < us(600) {
		t.Fatalf("retry succeeded at %v, before the partition lifted at %v", th.Now(), us(600))
	}

	obs := partObserved{
		Elapsed:  th.Now(),
		Stats:    rt.Stats(),
		Sum:      out,
		Stat1:    m.ShardStats[1],
		QStalls0: m.ShardStats[0].QuorumStalls,
	}
	for _, e := range ring.Events() {
		if e.Phase == trace.PhaseEnd {
			continue
		}
		switch e.Kind {
		case trace.KindHintedHandoff:
			obs.Hinted++
		case trace.KindShardAntiEntropy:
			obs.AntiEntropy++
		case trace.KindPartitionHeal:
			obs.Heal++
		case trace.KindReadRepair:
			obs.Repair++
		case trace.KindShardDown:
			if e.Arg == 1 {
				obs.QuorumEvents++
			}
		}
	}
	return obs
}

// TestSoakPartitionPathCoverage is the partition analogue of the path
// coverage test: one deterministic schedule provably exercises hinted
// handoff, version-tag staleness detection with read-repair, the
// anti-entropy replay after a link heal, and the ErrQuorumLost shed/retry
// cycle — asserted through trace-kind counts — and a rerun of the identical
// schedule is bit-identical.
func TestSoakPartitionPathCoverage(t *testing.T) {
	got := partitionScenario(t)

	if got.Sum != int64(2048)*2047/2 {
		t.Errorf("pushdown sum = %d, want %d", got.Sum, int64(2048)*2047/2)
	}
	if got.Hinted != 2 || got.Stat1.HandoffRecords != 2 {
		t.Errorf("hinted handoffs: trace=%d stats=%d, want 2 and 2", got.Hinted, got.Stat1.HandoffRecords)
	}
	if got.AntiEntropy != 1 || got.Heal != 1 || got.Stat1.PartitionHeals != 1 || got.Stat1.HandoffReplays != 1 {
		t.Errorf("anti-entropy: spans=%d heals=%d stat-heals=%d replays=%d, want 1/1/1/1",
			got.AntiEntropy, got.Heal, got.Stat1.PartitionHeals, got.Stat1.HandoffReplays)
	}
	if got.Repair != 1 || got.Stat1.ReadRepairs != 1 || got.Stat1.StaleReadsAverted != 1 {
		t.Errorf("read-repair: spans=%d repairs=%d stale-averted=%d, want 1/1/1",
			got.Repair, got.Stat1.ReadRepairs, got.Stat1.StaleReadsAverted)
	}
	if got.QStalls0 == 0 {
		t.Error("the blocked read-repair charged no quorum stall on the primary")
	}
	if got.QuorumEvents != 2 || got.Stats.QuorumLostObserved != 2 {
		t.Errorf("quorum losses: trace=%d stats=%d, want 2 and 2 (bare + policy first attempt)",
			got.QuorumEvents, got.Stats.QuorumLostObserved)
	}
	if got.Stats.Retries != 1 || got.Stats.LocalFallbacks != 0 {
		t.Errorf("Retries=%d LocalFallbacks=%d, want one scheduled-wait retry and no fallback",
			got.Stats.Retries, got.Stats.LocalFallbacks)
	}

	rerun := partitionScenario(t)
	if got != rerun {
		t.Errorf("identical schedules differ:\n  a=%+v\n  b=%+v", got, rerun)
	}
}

// TestSoakPathCoverage is the always-on distillation of the soak: one
// deterministic configuration provably exercises undo-log rollback,
// admission-control shedding, and a full breaker open → half-open → close
// cycle, asserted through trace-kind counts — and a rerun of the identical
// schedule is bit-identical.
func TestSoakPathCoverage(t *testing.T) {
	got := soakScenario(t)

	if got.Rollback != 2 || got.Stats.Rollbacks != 2 {
		t.Errorf("rollbacks: trace=%d stats=%d, want 2 and 2", got.Rollback, got.Stats.Rollbacks)
	}
	if got.Stats.RolledBackPages == 0 {
		t.Error("RolledBackPages = 0, want > 0")
	}
	if got.Shed != 1 || got.Stats.Shed != 1 || got.QueueFull != 1 {
		t.Errorf("shed: trace=%d stats=%d queue-full-errors=%d, want 1/1/1",
			got.Shed, got.Stats.Shed, got.QueueFull)
	}
	if got.BrOpen != 1 || got.BrHalf != 1 || got.BrClose != 1 {
		t.Errorf("breaker cycle: open=%d half=%d close=%d, want 1/1/1",
			got.BrOpen, got.BrHalf, got.BrClose)
	}
	if got.Stats.BreakerShortCircuits != 1 {
		t.Errorf("BreakerShortCircuits = %d, want 1", got.Stats.BreakerShortCircuits)
	}
	if got.Stats.LocalFallbacks != 2 {
		t.Errorf("LocalFallbacks = %d, want 2 (crash fallback + short-circuit)", got.Stats.LocalFallbacks)
	}

	rerun := soakScenario(t)
	if got != rerun {
		t.Errorf("identical schedules differ:\n  a=%+v\n  b=%+v", got, rerun)
	}
}
