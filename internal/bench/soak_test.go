package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// TestChaosSoak is the long-running chaos soak: every fault profile crossed
// with many seeds on every chaos workload, checking the robustness
// invariant at scale — answers bit-identical to the fault-free run, and
// same-seed reruns bit-identical in every observable. It is opt-in
// (CHAOS_SOAK=1, `make chaos-soak`) because it runs hundreds of
// executions; when CHAOS_SOAK_ARTIFACTS names a directory, a per-profile
// fault-report summary is written there for CI upload.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("chaos soak is opt-in: set CHAOS_SOAK=1 (or run `make chaos-soak`)")
	}
	const seeds = 16
	artifactDir := os.Getenv("CHAOS_SOAK_ARTIFACTS")
	if artifactDir != "" {
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			t.Fatalf("artifacts dir: %v", err)
		}
	}

	type profAgg struct {
		injected  fault.Counters
		rt        core.RuntimeStats
		stalls    int64
		retries   int64
		failovers int64
		resync    int64
		shStalls  int64
		shardDown [maxChaosShards]sim.Time
		lines     []string
	}
	agg := map[string]*profAgg{}

	for _, w := range chaosWorkloads() {
		baseline := runChaos(t, w, "none", 1)
		for _, prof := range fault.ProfileNames() {
			a := agg[prof]
			if a == nil {
				a = &profAgg{}
				agg[prof] = a
			}
			for seed := int64(1); seed <= seeds; seed++ {
				got := runChaos(t, w, prof, seed)
				if got.Answer != baseline.Answer {
					t.Errorf("%s under %q seed %d: answer %#x, fault-free %#x",
						w.name, prof, seed, got.Answer, baseline.Answer)
				}
				rerun := runChaos(t, w, prof, seed)
				if got != rerun {
					t.Errorf("%s under %q seed %d: rerun differs:\n  a=%+v\n  b=%+v",
						w.name, prof, seed, got, rerun)
				}
				a.injected = addCounters(a.injected, got.Plan)
				a.rt = addRuntimeStats(a.rt, got.RT)
				a.stalls += got.Stalls
				a.retries += got.Fabric.Retries
				a.failovers += got.Failovers
				a.resync += got.ResyncPages
				a.shStalls += got.ShardStalls
				for s := range a.shardDown {
					a.shardDown[s] += got.ShardDown[s]
				}
				a.lines = append(a.lines, fmt.Sprintf(
					"%-8s seed=%-3d elapsed=%-14v injected={%v} rollbacks=%d shed=%d deadline-aborts=%d breaker-opens=%d fallbacks=%d failovers=%d resync-pages=%d shard-stalls=%d",
					w.name, seed, got.Elapsed, got.Plan, got.RT.Rollbacks, got.RT.Shed,
					got.RT.DeadlineAborts, got.RT.BreakerOpens, got.RT.LocalFallbacks,
					got.Failovers, got.ResyncPages, got.ShardStalls))
			}
		}
	}

	// The soak proves nothing about a path it never took: the profile set as
	// a whole must exercise mid-execution rollback.
	var totalMid int64
	for _, a := range agg {
		totalMid += a.injected.CtxMidCrashes
	}
	if totalMid == 0 {
		t.Error("no profile armed a mid-execution crash across the whole soak")
	}

	if artifactDir != "" {
		for prof, a := range agg {
			fr := &FaultReport{
				Profile: prof, Seed: -1, Injected: a.injected,
				FabricRetries: a.retries, PoolStalls: a.stalls,
				SSDReadRetries:       a.injected.SSDReadErrors,
				FailoverReads:        a.failovers,
				ResyncPages:          a.resync,
				ShardStalls:          a.shStalls,
				PoolDownObserved:     a.rt.PoolDownObserved,
				ShardDownObserved:    a.rt.ShardDownObserved,
				CtxCrashes:           a.rt.CtxCrashes,
				PushRetries:          a.rt.Retries,
				LocalFallbacks:       a.rt.LocalFallbacks,
				Shed:                 a.rt.Shed,
				DeadlineAborts:       a.rt.DeadlineAborts,
				Rollbacks:            a.rt.Rollbacks,
				RolledBackPages:      a.rt.RolledBackPages,
				BreakerOpens:         a.rt.BreakerOpens,
				BreakerCloses:        a.rt.BreakerCloses,
				BreakerShortCircuits: a.rt.BreakerShortCircuits,
			}
			// Per-shard availability: aggregate downtime per shard index
			// across the profile's runs (trailing all-zero shards trimmed).
			last := -1
			for s, d := range a.shardDown {
				if d > 0 {
					last = s
				}
			}
			if last >= 0 {
				fr.ShardDowntime = append(fr.ShardDowntime, a.shardDown[:last+1]...)
			}
			body := fmt.Sprintf("aggregate over %d runs\n%s\n\n%s\n",
				len(a.lines), fr, strings.Join(a.lines, "\n"))
			name := filepath.Join(artifactDir, "soak-"+prof+".txt")
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Errorf("artifact %s: %v", name, err)
			}
		}
	}
}

func addCounters(a, b fault.Counters) fault.Counters {
	a.Drops += b.Drops
	a.Corruptions += b.Corruptions
	a.Spikes += b.Spikes
	a.CtxCrashes += b.CtxCrashes
	a.CtxMidCrashes += b.CtxMidCrashes
	a.SSDReadErrors += b.SSDReadErrors
	a.PoolWindows += b.PoolWindows
	a.ShardWindows += b.ShardWindows
	return a
}

func addRuntimeStats(a, b core.RuntimeStats) core.RuntimeStats {
	a.PoolDownObserved += b.PoolDownObserved
	a.ShardDownObserved += b.ShardDownObserved
	a.CtxCrashes += b.CtxCrashes
	a.Retries += b.Retries
	a.LocalFallbacks += b.LocalFallbacks
	a.Shed += b.Shed
	a.DeadlineAborts += b.DeadlineAborts
	a.Rollbacks += b.Rollbacks
	a.RolledBackPages += b.RolledBackPages
	a.BreakerOpens += b.BreakerOpens
	a.BreakerCloses += b.BreakerCloses
	a.BreakerShortCircuits += b.BreakerShortCircuits
	return a
}

// soakObserved is everything the path-coverage scenario can compare across
// reruns.
type soakObserved struct {
	Elapsed   sim.Time
	Stats     core.RuntimeStats
	VecHash   uint64
	Rollback  int
	Shed      int
	BrOpen    int
	BrHalf    int
	BrClose   int
	QueueFull int
}

// soakScenario drives one runtime through every crash-consistency path in a
// single deterministic schedule: a mid-execution crash pair that rolls back
// and opens the breaker, a short-circuited call while open, a half-open
// probe that closes it, and an admission-control shed under queue pressure.
func soakScenario(t *testing.T) soakObserved {
	t.Helper()
	const pages = 520
	m := ddc.MustMachine(ddc.BaseDDC(1 << 20))
	ring := trace.New(1 << 16)
	m.AttachTrace(ring)
	p := m.NewProcess()
	rt := core.NewRuntime(p, 1)
	rt.QueueCap = 1
	// The cooldown must outlast phase 1's own multi-millisecond execution,
	// or the open breaker would already admit a probe at phase 2.
	rt.Breaker = core.BreakerConfig{Threshold: 2, Cooldown: 50 * sim.Millisecond}

	th := sim.NewThread("driver")
	a := p.Space.AllocPages(pages*mem.PageSize, "vec")
	env := p.NewEnv(th)
	for i := 0; i < pages; i++ {
		env.WriteI64(a+mem.Addr(i)*mem.PageSize, int64(i))
	}
	inc := func(env *ddc.Env) {
		for i := 0; i < pages; i++ {
			addr := a + mem.Addr(i)*mem.PageSize
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
	pol := core.DefaultRetryThenLocal()

	// Phase 1 — rollback: every pushdown attempt crashes mid-execution, so
	// the policy rolls back twice and falls back locally; two consecutive
	// failures open the breaker.
	m.AttachFault(fault.NewPlan(fault.Profile{Name: "mid", CtxCrashMidProb: 1}, 3))
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || ran {
		t.Fatalf("phase 1: ran=%v err=%v, want rollback + local fallback", ran, err)
	}

	// Phase 2 — open breaker short-circuits straight to local execution.
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || ran {
		t.Fatalf("phase 2: ran=%v err=%v, want short-circuit", ran, err)
	}

	// Phase 3 — faults cleared, cooldown elapsed: the half-open probe
	// succeeds and closes the breaker.
	m.AttachFault(nil)
	th.Advance(60 * sim.Millisecond)
	if _, ran, err := rt.PushdownWithPolicy(th, inc, core.Options{}, pol); err != nil || !ran {
		t.Fatalf("phase 3: ran=%v err=%v, want a successful probe", ran, err)
	}

	// Phase 4 — shed: one context, queue capacity one, three concurrent
	// pushers; the last to arrive is rejected by admission control.
	errs := make([]error, 3)
	s := sim.NewScheduler()
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("pusher", sim.Time(i)*10*sim.Microsecond, func(pt *sim.Thread) {
			_, errs[i] = rt.Pushdown(pt, func(env *ddc.Env) {
				env.Compute(2_000_000) // ~1 ms
			}, core.Options{})
		})
	}
	s.Run()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("phase 4: first two pushers failed: %v, %v", errs[0], errs[1])
	}
	queueFull := 0
	if errors.Is(errs[2], core.ErrQueueFull) {
		queueFull++
	}

	// The three increment calls (two local, one pushed) applied exactly
	// once each despite two mid-execution crashes.
	var h uint64
	for i := 0; i < pages; i++ {
		if got := env.ReadI64(a + mem.Addr(i)*mem.PageSize); got != int64(i)+3 {
			t.Fatalf("slot %d = %d, want %d (exactly-once violated across the scenario)", i, got, i+3)
		}
		h = h*1099511628211 + uint64(i)
	}

	counts := map[trace.Kind]int{}
	for _, e := range ring.Events() {
		if e.Phase != trace.PhaseEnd {
			counts[e.Kind]++
		}
	}
	return soakObserved{
		Elapsed:   th.Now(),
		Stats:     rt.Stats(),
		VecHash:   h,
		Rollback:  counts[trace.KindPushRollback],
		Shed:      counts[trace.KindShed],
		BrOpen:    counts[trace.KindBreakerOpen],
		BrHalf:    counts[trace.KindBreakerHalfOpen],
		BrClose:   counts[trace.KindBreakerClose],
		QueueFull: queueFull,
	}
}

// TestSoakPathCoverage is the always-on distillation of the soak: one
// deterministic configuration provably exercises undo-log rollback,
// admission-control shedding, and a full breaker open → half-open → close
// cycle, asserted through trace-kind counts — and a rerun of the identical
// schedule is bit-identical.
func TestSoakPathCoverage(t *testing.T) {
	got := soakScenario(t)

	if got.Rollback != 2 || got.Stats.Rollbacks != 2 {
		t.Errorf("rollbacks: trace=%d stats=%d, want 2 and 2", got.Rollback, got.Stats.Rollbacks)
	}
	if got.Stats.RolledBackPages == 0 {
		t.Error("RolledBackPages = 0, want > 0")
	}
	if got.Shed != 1 || got.Stats.Shed != 1 || got.QueueFull != 1 {
		t.Errorf("shed: trace=%d stats=%d queue-full-errors=%d, want 1/1/1",
			got.Shed, got.Stats.Shed, got.QueueFull)
	}
	if got.BrOpen != 1 || got.BrHalf != 1 || got.BrClose != 1 {
		t.Errorf("breaker cycle: open=%d half=%d close=%d, want 1/1/1",
			got.BrOpen, got.BrHalf, got.BrClose)
	}
	if got.Stats.BreakerShortCircuits != 1 {
		t.Errorf("BreakerShortCircuits = %d, want 1", got.Stats.BreakerShortCircuits)
	}
	if got.Stats.LocalFallbacks != 2 {
		t.Errorf("LocalFallbacks = %d, want 2 (crash fallback + short-circuit)", got.Stats.LocalFallbacks)
	}

	rerun := soakScenario(t)
	if got != rerun {
		t.Errorf("identical schedules differ:\n  a=%+v\n  b=%+v", got, rerun)
	}
}
