package bench

import (
	"strconv"
	"strings"
	"testing"
)

// smallOpts keeps the figure regressions fast.
func smallOpts() Options {
	return Options{
		Scale:     0.5,
		GraphNV:   15000,
		Words:     60000,
		Seed:      1,
		CacheFrac: 0.02,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"1a", "1b", "3", "6", "7", "10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20", "21", "22", "A1", "A2", "A3", "A4", "A5", "A6", "A7"}
	have := map[string]bool{}
	for _, id := range Figures() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("figure %s not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registered %d figures, want %d", len(have), len(want))
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("99", smallOpts()); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Figure: "Fig X", Title: "demo",
		Header: []string{"a", "long-header"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Fig X", "demo", "long-header", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// parse a "12.3x" cell.
func parseX(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

// parse a "0.123" seconds cell.
func parseS(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad seconds cell %q: %v", cell, err)
	}
	return v
}

func TestFig6Ordering(t *testing.T) {
	tab, err := Run("6", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	times := map[string]float64{}
	for _, r := range tab.Rows {
		times[r[0]] = parseS(t, r[1])
	}
	// The paper's ordering: local < coherence < per-thread < per-process <
	// base DDC.
	if !(times["Local execution"] < times["TELEPORT (coherence)"] &&
		times["TELEPORT (coherence)"] < times["TELEPORT (per thread)"] &&
		times["TELEPORT (per thread)"] < times["TELEPORT (per process)"] &&
		times["TELEPORT (per process)"] < times["Base DDC"]) {
		t.Fatalf("Figure 6 ordering broken: %v", times)
	}
}

func TestFig7SyncmemBeatsCoherenceUnderFalseSharing(t *testing.T) {
	tab, err := Run("7", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var coh, syn float64
	for _, r := range tab.Rows {
		switch r[0] {
		case "TELEPORT (coherence)":
			coh = parseX(t, r[2])
		case "TELEPORT (syncmem)":
			syn = parseX(t, r[2])
		}
	}
	if !(syn > coh && coh > 1) {
		t.Fatalf("false-sharing shape broken: coherence %.1fx, syncmem %.1fx", coh, syn)
	}
}

func TestFig20EagerDominatedByPrePost(t *testing.T) {
	tab, err := Run("20", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	eager, onDemand := tab.Rows[0], tab.Rows[1]
	if parseS(t, eager[7]) <= 3*parseS(t, onDemand[7]) {
		t.Fatalf("eager overhead (%s) must dwarf on-demand (%s)", eager[7], onDemand[7])
	}
	// On-demand is dominated by context setup (column 3), eager by pre+post.
	if parseS(t, onDemand[3]) <= parseS(t, onDemand[1]) {
		t.Fatal("on-demand setup should dominate its pre-sync")
	}
	if parseS(t, eager[1])+parseS(t, eager[6]) <= parseS(t, eager[3]) {
		t.Fatal("eager pre+post should dominate its setup")
	}
}

func TestFig22RelaxedIsFlat(t *testing.T) {
	tab, err := Run("22", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	defFirst, _ := strconv.ParseInt(first[1], 10, 64)
	defLast, _ := strconv.ParseInt(last[1], 10, 64)
	relFirst, _ := strconv.ParseInt(first[2], 10, 64)
	relLast, _ := strconv.ParseInt(last[2], 10, 64)
	if defLast <= defFirst {
		t.Fatalf("default coherence messages must grow with contention: %d → %d", defFirst, defLast)
	}
	if relLast != relFirst {
		t.Fatalf("relaxed coherence messages must stay flat: %d → %d", relFirst, relLast)
	}
}

func TestFig12TeleportBeatsBasePerOperator(t *testing.T) {
	tab, err := Run("12", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if parseX(t, r[4]) <= 1 {
			t.Fatalf("operator %s: pushdown did not beat base DDC (%s)", r[0], r[4])
		}
	}
}

func TestFig13AllWorkloadsBenefit(t *testing.T) {
	tab, err := Run("13", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want the 8 workloads", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		base := parseX(t, r[2])
		tele := parseX(t, r[3])
		speedup := parseX(t, r[4])
		if base < 1 {
			t.Errorf("%s: base DDC faster than local (%.1fx)", r[1], base)
		}
		if tele > base {
			t.Errorf("%s: TELEPORT slower than base DDC", r[1])
		}
		if speedup < 1 {
			t.Errorf("%s: no speedup (%.1fx)", r[1], speedup)
		}
	}
}

func TestFig16SpeedupMonotoneInClock(t *testing.T) {
	tab, err := Run("16", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range tab.Rows {
		s := parseX(t, r[2])
		if s < prev {
			t.Fatalf("speedup decreased with higher memory clock: %v", tab.Rows)
		}
		prev = s
	}
	first := parseX(t, tab.Rows[0][2])
	if first <= 1 {
		t.Fatalf("even a throttled memory pool should win (%.1fx)", first)
	}
}

func TestFig17SpeedupGrowsWithContexts(t *testing.T) {
	tab, err := Run("17", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	one := parseX(t, tab.Rows[0][2])
	two := parseX(t, tab.Rows[1][2])
	four := parseX(t, tab.Rows[3][2])
	if one != 1.0 {
		t.Fatalf("first row must be the baseline, got %.1fx", one)
	}
	if two < 1.5 {
		t.Fatalf("two contexts on two cores should near-double throughput (%.1fx)", two)
	}
	// Diminishing returns: 4 contexts gains less than 2× over 2 contexts.
	if four/two > 1.9 {
		t.Fatalf("no diminishing returns: 2ctx %.1fx, 4ctx %.1fx", two, four)
	}
}

func TestRunWorkloadPublicAPI(t *testing.T) {
	opts := smallOpts()
	res, err := RunWorkload("Q6", "base-ddc", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || len(res.Profile) == 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := RunWorkload("Q6", "nope", opts); err == nil {
		t.Fatal("bad platform accepted")
	}
	if _, err := RunWorkload("nope", "local", opts); err == nil {
		t.Fatal("bad workload accepted")
	}
	if len(WorkloadNames()) != 11 || len(PlatformNames()) != 5 {
		t.Fatal("name lists wrong")
	}
	// The advisor-backed platform must run end to end.
	auto, err := RunWorkload("Q6", "teleport-auto", opts)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Seconds >= res.Seconds {
		t.Fatalf("teleport-auto (%.4fs) should beat base-ddc (%.4fs)", auto.Seconds, res.Seconds)
	}
}

func TestCacheBytesFloor(t *testing.T) {
	if cacheBytes(1<<30, 0.02) != (1<<30)/50 {
		t.Fatal("fraction not applied")
	}
	if cacheBytes(100, 0.02) < 48*4096 {
		t.Fatal("floor not applied")
	}
}

func TestDefaultsSane(t *testing.T) {
	o := Defaults()
	if o.Scale <= 0 || o.GraphNV <= 0 || o.Words <= 0 || o.CacheFrac <= 0 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestExtA3RLEGrowsWithCache(t *testing.T) {
	tab, err := Run("A3", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range tab.Rows {
		red := parseX(t, r[4])
		if red < prev {
			t.Fatalf("RLE reduction should grow with the cache: %v", tab.Rows)
		}
		prev = red
	}
}

func TestExtA4PrefetchPlateausBelowTeleport(t *testing.T) {
	tab, err := Run("A4", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows
	bestPrefetch := 0.0
	for _, r := range rows[:len(rows)-1] {
		if v := parseX(t, r[2]); v > bestPrefetch {
			bestPrefetch = v
		}
	}
	tele := parseX(t, rows[len(rows)-1][2])
	if tele <= bestPrefetch {
		t.Fatalf("TELEPORT (%.1fx) must beat the best prefetch depth (%.1fx)", tele, bestPrefetch)
	}
}

func TestExtA2SpeedupShrinksWithFasterFabric(t *testing.T) {
	tab, err := Run("A2", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, r := range tab.Rows {
		s := parseX(t, r[5])
		if s > prev {
			t.Fatalf("speedup should not grow on faster fabrics: %v", tab.Rows)
		}
		if s <= 1 {
			t.Fatalf("pushdown must still win on %s", r[0])
		}
		prev = s
	}
}

func TestTraceCapReturnsEvents(t *testing.T) {
	opts := smallOpts()
	opts.TraceCap = 32
	res, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("expected trace events")
	}
}

// TestEveryFigureRunsAtTinyScale smoke-tests every registered runner,
// including the slow sweeps, at a minimal scale (skipped with -short).
func TestEveryFigureRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: regenerates every figure")
	}
	tiny := Options{Scale: 0.2, GraphNV: 4000, Words: 15000, Seed: 1, CacheFrac: 0.02}
	for _, id := range Figures() {
		tab, err := Run(id, tiny)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("figure %s produced no rows", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) && len(row) != 0 {
				t.Fatalf("figure %s row width %d vs header %d", id, len(row), len(tab.Header))
			}
		}
	}
}
