package bench

import (
	"fmt"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
)

func init() {
	register("14", fig14)
	register("15", fig15)
	register("16", fig16)
	register("17", fig17)
	register("18", fig18)
}

// fig14 reproduces Figure 14: disaggregated memory pools versus NVMe-SSD
// spill for Q9/Q3/Q6 with constrained local memory (paper: base DDC 10–80×
// faster than Linux+SSD; TELEPORT 210–330×).
func fig14(opts Options) *Table {
	t := &Table{
		Figure: "Fig 14",
		Title:  "Query time with constrained local memory: Linux+SSD vs DDC vs TELEPORT",
		Header: []string{"query", "linux-ssd(s)", "base-ddc(s)", "teleport(s)", "ddc-speedup", "teleport-speedup"},
	}
	queries := []string{"Q9", "Q3", "Q6"}
	var jobs []func() sim.Time
	for _, q := range queries {
		w := findWorkload(q)
		for _, p := range []platform{platLinuxSSD, platBase, platTeleport} {
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: p}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	for i, q := range queries {
		ssd, base, tele := times[i*3], times[i*3+1], times[i*3+2]
		t.AddRow(q, fm(ssd), fm(base), fm(tele),
			fx(ratio(ssd, base)), fx(ratio(ssd, tele)))
	}
	t.Notes = append(t.Notes, "paper: LegoOS 10x/65x/80x faster than SSD; TELEPORT 330x/210x/310x")
	return t
}

// fig15 reproduces Figure 15: sweeping total memory for a workload larger
// than any single machine (Q9 at 4× scale; paper: SF200). Memory fractions
// mirror 1/16/64/128 GB against a 200 GB database; the largest
// configuration exceeds a monolithic server's capacity (N/A for Linux),
// while TELEPORT keeps scaling (paper: 2.3× over the best Linux point,
// 31.7× over LegoOS at 128 GB).
func fig15(opts Options) *Table {
	t := &Table{
		Figure: "Fig 15",
		Title:  "Q9 at 4x scale vs total memory (fraction of the database)",
		Header: []string{"memory", "linux(s)", "base-ddc(s)", "teleport(s)"},
	}
	big := opts
	big.Scale *= 4
	w := findWorkload("Q9")
	points := []struct {
		label string
		frac  float64
		linux bool
	}{
		{"0.5% (1GB)", 0.005, true},
		{"8% (16GB)", 0.08, true},
		{"32% (64GB)", 0.32, true},
		{"64% (128GB)", 0.64, false}, // exceeds the monolithic server
	}
	var jobs []func() sim.Time
	for _, pt := range points {
		if pt.linux {
			jobs = append(jobs, func() sim.Time {
				return run(w, big, runSpec{platform: platLinuxSSD, cacheFrac: pt.frac}).Time
			})
		}
		jobs = append(jobs,
			func() sim.Time {
				return run(w, big, runSpec{platform: platBase, poolFrac: pt.frac}).Time
			},
			func() sim.Time {
				return run(w, big, runSpec{platform: platTeleport, poolFrac: pt.frac}).Time
			})
	}
	times := parmap(opts, jobs)
	i := 0
	for _, pt := range points {
		linuxCell := "N/A"
		if pt.linux {
			linuxCell = fm(times[i])
			i++
		}
		base, tele := times[i], times[i+1]
		i += 2
		t.AddRow(pt.label, linuxCell, fm(base), fm(tele))
	}
	t.Notes = append(t.Notes,
		"compute-local cache fixed at the default fraction; memory pool swept",
		"paper: TELEPORT 2.3x over best Linux, 31.7x over LegoOS at 128GB")
	return t
}

// fig16 reproduces Figure 16: Q9 pushdown speedup over the base DDC as the
// memory pool's CPU clock is throttled (paper: 17× at 0.4 GHz rising to a
// 29× plateau above 1.7 GHz).
func fig16(opts Options) *Table {
	t := &Table{
		Figure: "Fig 16",
		Title:  "Q9 TELEPORT speedup over base DDC vs memory-pool clock",
		Header: []string{"memory-clock(GHz)", "teleport(s)", "speedup-vs-base"},
	}
	w := findWorkload("Q9")
	clocks := []float64{0.4, 0.8, 1.2, 1.7, 2.1}
	jobs := []func() sim.Time{
		func() sim.Time { return run(w, opts, runSpec{platform: platBase}).Time },
	}
	for _, clock := range clocks {
		jobs = append(jobs, func() sim.Time {
			return run(w, opts, runSpec{platform: platTeleport, memClock: clock}).Time
		})
	}
	times := parmap(opts, jobs)
	base := times[0]
	for i, clock := range clocks {
		tele := times[i+1]
		t.AddRow(fmt.Sprintf("%.1f", clock), fm(tele), fx(ratio(base, tele)))
	}
	t.Notes = append(t.Notes, "paper: 17x at 0.4GHz, levelling off at 29x above 1.7GHz")
	return t
}

// fig17 reproduces Figure 17: eight compute threads issue concurrent
// pushdown aggregations; the memory pool has two physical cores; the number
// of parallel user contexts sweeps 1–4 (paper: speedup grows with
// diminishing returns from context switching).
func fig17(opts Options) *Table {
	t := &Table{
		Figure: "Fig 17",
		Title:  "Parallel aggregation: speedup vs number of memory-pool user contexts",
		Header: []string{"contexts", "makespan(s)", "speedup-vs-1ctx"},
	}
	const threads = 8
	runWith := func(contexts int) sim.Time {
		m := ddc.MustMachine(ddc.BaseDDC(1 << 20))
		p := m.NewProcess()
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: opts.Scale, Seed: opts.Seed})
		p.ResizeCache(cacheBytes(p.Space.Allocated(), opts.CacheFrac))
		rt := core.NewRuntime(p, contexts)
		qty := d.DB.Table("lineitem").Col("l_quantity")
		_, makespan, err := coldb.ParallelAggregate(p, rt, threads, qty, coldb.AggSum)
		if err != nil {
			panic(err)
		}
		return makespan
	}
	var jobs []func() sim.Time
	for contexts := 1; contexts <= 4; contexts++ {
		jobs = append(jobs, func() sim.Time { return runWith(contexts) })
	}
	times := parmap(opts, jobs)
	base := times[0]
	for contexts := 1; contexts <= 4; contexts++ {
		tm := times[contexts-1]
		t.AddRow(fmt.Sprintf("%d", contexts), fm(tm), fx(ratio(base, tm)))
	}
	t.Notes = append(t.Notes,
		"memory pool has 2 physical cores; paper: gains flatten beyond 2 contexts (context switching)")
	return t
}

// fig18 reproduces Figure 18: the level of pushdown. Q9's operators are
// ranked by memory intensity (remote accesses per second measured on the
// base DDC, §7.4), and the top-k are pushed with the memory pool's CPU at
// 50% and 25% of the compute pool's clock (paper: pushing the top 4 is
// optimal — 27× / 17.3× — and pushing everything backfires).
func fig18(opts Options) *Table {
	t := &Table{
		Figure: "Fig 18",
		Title:  "Q9 speedup vs level of pushdown (operators ranked by RM/s)",
		Header: []string{"level", "ops-pushed", "50%-clock(s)", "speedup", "25%-clock(s)", "speedup"},
	}
	w := findWorkload("Q9")
	// Profiling run on the base DDC to rank operators by memory intensity.
	// Later data points depend on the ranking, so this one runs first.
	prof := par1(opts, func() runOut { return run(w, opts, runSpec{platform: platBase}) })
	ranked := rankByIntensity(prof.Profile)

	levels := []struct {
		label string
		k     int
	}{{"None", 0}, {"Top 1", 1}, {"Top 4", 4}, {"Top 6", 6}, {"All", len(ranked)}}
	clockFracs := []float64{0.5, 0.25}

	// The "no pushdown" baseline at each clock is a pure run reused for
	// every level's speedup column.
	var jobs []func() sim.Time
	for _, clockFrac := range clockFracs {
		clock := 2.1 * clockFrac
		jobs = append(jobs, func() sim.Time {
			return run(w, opts, runSpec{platform: platBase, memClock: clock}).Time
		})
	}
	for _, lv := range levels {
		if lv.k == 0 {
			continue // the baseline runs above cover the "None" row
		}
		for _, clockFrac := range clockFracs {
			clock := 2.1 * clockFrac
			k := lv.k
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{
					platform: platTeleport, memClock: clock, pushOps: ranked[:k],
				}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	nones := times[:len(clockFracs)]
	rest := times[len(clockFracs):]
	i := 0
	for _, lv := range levels {
		row := []string{lv.label, fmt.Sprintf("%d", lv.k)}
		for ci := range clockFracs {
			var tm sim.Time
			if lv.k == 0 {
				tm = nones[ci]
			} else {
				tm = rest[i]
				i++
			}
			row = append(row, fm(tm), fx(ratio(nones[ci], tm)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper at 50% clock: top-1 3.3x, top-4 27x, top-6 26x, all 24x; being too aggressive backfires")
	return t
}

// rankByIntensity orders operator names by descending RM/s.
func rankByIntensity(prof []profile.OpStat) []string {
	ops := append([]profile.OpStat(nil), prof...)
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].Intensity() > ops[j-1].Intensity(); j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	names := make([]string, len(ops))
	for i, o := range ops {
		names[i] = o.Name
	}
	return names
}
