package bench

import (
	"math"
	"testing"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/graph"
	"teleport/internal/mapreduce"
	"teleport/internal/netmodel"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
	"teleport/internal/trace"
)

// The chaos suite runs representative workloads from all three systems on
// the TELEPORT platform under every fault profile and checks the central
// robustness invariant: faults perturb virtual time (retries, stalls,
// fallbacks) but never answers, and two runs with the same chaos seed are
// bit-for-bit identical — same virtual-time total, same injection counters,
// same recovery counters.

// chaosWorkload is one workload with a bit-exact answer extraction.
type chaosWorkload struct {
	name string
	push []string
	// build loads the dataset into p and returns the runner plus an answer
	// function producing a bit-exact encoding of the workload's output.
	build func(p *ddc.Process, th *sim.Thread) (func(ex *profile.Exec), func() uint64)
}

func chaosWorkloads() []chaosWorkload {
	return []chaosWorkload{
		{
			name: "Q6", push: q6Push,
			build: func(p *ddc.Process, th *sim.Thread) (func(ex *profile.Exec), func() uint64) {
				d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: 0.5, Seed: 1})
				var ans float64
				return func(ex *profile.Exec) { ans = tpch.Q6(ex, d, 730) },
					func() uint64 { return math.Float64bits(ans) }
			},
		},
		{
			name: "QFilter", push: []string{tpch.OpSelection, tpch.OpProjection, tpch.OpAggregation},
			build: func(p *ddc.Process, th *sim.Thread) (func(ex *profile.Exec), func() uint64) {
				d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: 0.5, Seed: 1})
				var ans float64
				return func(ex *profile.Exec) { ans = tpch.QFilter(ex, d, 1460) },
					func() uint64 { return math.Float64bits(ans) }
			},
		},
		{
			name: "SSSP", push: []string{graph.OpFinalize, graph.OpScatter, graph.OpGather},
			build: func(p *ddc.Process, th *sim.Thread) (func(ex *profile.Exec), func() uint64) {
				g, _ := graph.Generate(p, graph.GenConfig{NV: 8000, AvgDegree: 6, Seed: 1})
				eng := graph.NewEngine(g, graph.SSSP(0), 4)
				return func(ex *profile.Exec) { eng.Run(ex) },
					func() uint64 {
						env := p.NewEnv(th)
						var h uint64
						for v := 0; v < 8000; v++ {
							h = h*1099511628211 + uint64(eng.Value(env, v))
						}
						return h
					}
			},
		},
		{
			name: "WC", push: []string{mapreduce.OpMapShuffle},
			build: func(p *ddc.Process, th *sim.Thread) (func(ex *profile.Exec), func() uint64) {
				c, _ := mapreduce.GenerateCorpus(p, mapreduce.CorpusConfig{Words: 30000, Vocab: 4000, Seed: 1})
				eng := mapreduce.NewEngine(c, mapreduce.WordCount{}, 4, 8)
				return func(ex *profile.Exec) { eng.Run(ex) },
					func() uint64 {
						var h uint64
						for _, kv := range eng.Results() {
							h = h*1099511628211 + uint64(kv.K)
							h = h*1099511628211 + uint64(kv.V)
						}
						return h
					}
			},
		},
	}
}

// maxChaosShards bounds the fixed-size per-shard arrays below; chaosResult
// must stay ==-comparable, so slices are out.
const maxChaosShards = 8

// chaosResult is everything one chaos execution observes.
type chaosResult struct {
	Answer      uint64
	Elapsed     sim.Time
	Fabric      netmodel.Stat
	Plan        fault.Counters
	RT          core.RuntimeStats
	Stalls      int64
	Failovers   int64                    // replica-served reads across all shards
	ResyncPages int64                    // pages replayed by shard recoveries
	ShardStalls int64                    // accesses with no usable replica
	Handoffs    int64                    // hinted-handoff records enqueued (partition-caused)
	Replays     int64                    // hinted records delivered after link heals
	Repairs     int64                    // stale copies read-repaired before serving
	StaleCaught int64                    // reads that would have served stale bytes
	QuorumStall int64                    // writes/reads stalled below their quorum
	ShardDown   [maxChaosShards]sim.Time // per-shard downtime through the run
}

// runChaos executes one workload on the TELEPORT platform under the named
// fault profile.
func runChaos(t *testing.T, w chaosWorkload, profName string, seed int64) chaosResult {
	t.Helper()
	prof, err := fault.ByName(profName)
	if err != nil {
		t.Fatalf("ByName(%q): %v", profName, err)
	}
	cfg := ddc.BaseDDC(1 << 20)
	switch {
	case prof.HasPartitions():
		// Partition profiles need links to sever and a write quorum to
		// defend: a 4-shard R=3 W=2 pool exercises quorum commit, hinted
		// handoff, anti-entropy, and read-repair under every profile.
		cfg.PoolShards, cfg.Replicas, cfg.WriteQuorum = 4, 3, 2
	case prof.ShardMeanUp > 0:
		// Shard profiles need a multi-shard pool to have anything to
		// crash; replication keeps single-shard outages off the stall
		// path so answers still flow.
		cfg.PoolShards, cfg.Replicas = 4, 2
	}
	m := ddc.MustMachine(cfg)
	m.AttachTrace(trace.New(512))
	if prof.Name != "none" {
		m.AttachFault(fault.NewPlan(prof, seed))
	}
	p := m.NewProcess()
	th := sim.NewThread(w.name)
	runFn, ansFn := w.build(p, th)
	// Small cache and a bounded pool keep all three fault surfaces busy:
	// remote faults on the fabric, storage in-faults on the SSD.
	ws := p.Space.Allocated()
	p.ResizeCache(cacheBytes(ws, 0.02))
	p.ResizePool(ws / 2)

	rt := core.NewRuntime(p, 1)
	ex := profile.NewExec(th, p, rt)
	ex.Push(w.push...)
	runFn(ex)

	res := chaosResult{
		Answer:  ansFn(),
		Elapsed: ex.Total(),
		Fabric:  m.Fabric.Total(),
		Plan:    m.Fault.Counters(),
		RT:      rt.Stats(),
		Stalls:  m.PoolStalls,
	}
	for s := 0; s < m.Cfg.Shards() && s < maxChaosShards; s++ {
		if m.ShardStats != nil {
			st := m.ShardStats[s]
			res.Failovers += st.FailoverReads
			res.ResyncPages += st.ResyncPages
			res.ShardStalls += st.Stalls
			res.Handoffs += st.HandoffRecords
			res.Replays += st.HandoffReplays
			res.Repairs += st.ReadRepairs
			res.StaleCaught += st.StaleReadsAverted
			res.QuorumStall += st.QuorumStalls
		}
		res.ShardDown[s] = fault.TotalDowntime(m.Fault.ShardWindowsThrough(s, th.Now()), th.Now())
	}
	return res
}

// Faults must never change answers: every profile yields the fault-free
// answer bit for bit, for every system.
func TestChaosAnswersMatchFaultFree(t *testing.T) {
	injectedBy := map[string]int64{}
	for _, w := range chaosWorkloads() {
		baseline := runChaos(t, w, "none", 99)
		for _, prof := range fault.ProfileNames() {
			got := runChaos(t, w, prof, 99)
			if got.Answer != baseline.Answer {
				t.Errorf("%s under %q: answer %#x, fault-free %#x", w.name, prof, got.Answer, baseline.Answer)
			}
			injectedBy[prof] += got.Plan.Drops + got.Plan.Spikes + got.Plan.CtxCrashes +
				got.Plan.CtxMidCrashes + got.Plan.SSDReadErrors + got.Plan.PoolWindows +
				got.Plan.ShardWindows + got.Plan.LinkWindows + got.Plan.SplitWindows
		}
	}
	// Every profile must have actually injected faults somewhere, or the
	// answer comparison proves nothing.
	for prof, n := range injectedBy {
		if n == 0 {
			t.Errorf("profile %q injected no faults across the whole suite", prof)
		}
	}
}

// Determinism: two runs with the same chaos seed are identical in every
// observable — answer, virtual-time total, injection and recovery counters.
func TestChaosSameSeedBitIdentical(t *testing.T) {
	for _, w := range chaosWorkloads() {
		a := runChaos(t, w, "chaos", 7)
		b := runChaos(t, w, "chaos", 7)
		if a != b {
			t.Errorf("%s: same-seed chaos runs differ:\n  a=%+v\n  b=%+v", w.name, a, b)
		}
		c := runChaos(t, w, "chaos", 8)
		if a.Elapsed == c.Elapsed && a.Plan == c.Plan {
			t.Errorf("%s: different chaos seeds produced identical timing and injection", w.name)
		}
		if a.Answer != c.Answer {
			t.Errorf("%s: chaos seed changed the answer: %#x vs %#x", w.name, a.Answer, c.Answer)
		}
	}
}

// The public API: a chaos run through RunWorkload carries a fault report,
// and two same-seed invocations report identical virtual time and counters.
func TestRunWorkloadChaosReport(t *testing.T) {
	opts := Options{Scale: 0.5, GraphNV: 8000, Words: 30000, Seed: 1,
		CacheFrac: 0.02, ChaosProfile: "chaos", ChaosSeed: 7}
	a, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if a.Fault == nil {
		t.Fatalf("chaos run returned no fault report")
	}
	if a.Fault.Profile != "chaos" || a.Fault.Seed != 7 {
		t.Fatalf("fault report header = %s/%d, want chaos/7", a.Fault.Profile, a.Fault.Seed)
	}
	b, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if a.Nanos != b.Nanos {
		t.Errorf("same-seed chaos runs differ in time: %dns vs %dns", a.Nanos, b.Nanos)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("same-seed chaos runs differ in time: %v vs %v", a.Seconds, b.Seconds)
	}
	if a.Nanos <= 0 || sim.Time(a.Nanos).Seconds() != a.Seconds {
		t.Errorf("Nanos (%d) inconsistent with Seconds (%v)", a.Nanos, a.Seconds)
	}
	// FaultReport holds a per-shard slice, so compare the rendered form.
	if a.Fault.String() != b.Fault.String() {
		t.Errorf("same-seed chaos runs differ in fault report:\n  a=%+v\n  b=%+v", *a.Fault, *b.Fault)
	}

	if _, err := RunWorkload("Q6", "teleport", Options{Scale: 0.5, Seed: 1, ChaosProfile: "no-such-profile"}); err == nil {
		t.Errorf("unknown chaos profile accepted")
	}

	clean, err := RunWorkload("Q6", "teleport", Options{Scale: 0.5, Seed: 1, CacheFrac: 0.02})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if clean.Fault != nil {
		t.Errorf("fault report present without a chaos profile")
	}
}
