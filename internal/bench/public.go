package bench

import (
	"fmt"

	"teleport/internal/advisor"
	"teleport/internal/hw"
	"teleport/internal/profile"
	"teleport/internal/trace"
)

// WorkloadNames lists the eight evaluation workloads plus the extras
// (QFilter, Q1, PageRank).
func WorkloadNames() []string {
	ws := publicWorkloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// PlatformNames lists the selectable platforms. "teleport-auto" profiles
// the workload on the base DDC first and lets internal/advisor choose the
// operators to push.
func PlatformNames() []string {
	return []string{"local", "linux-ssd", "base-ddc", "teleport", "teleport-auto"}
}

// WorkloadResult is one workload execution for external tooling (cmd/ddcsim).
type WorkloadResult struct {
	Workload string
	Platform string
	Seconds  float64
	Profile  []profile.OpStat
	// Trace holds the machine's retained events when Options.TraceCap > 0.
	Trace []trace.Event
}

// RunWorkload executes one named workload on one named platform.
func RunWorkload(workloadName, platformName string, opts Options) (WorkloadResult, error) {
	var plat platform
	auto := false
	switch platformName {
	case "local":
		plat = platLocal
	case "linux-ssd":
		plat = platLinuxSSD
	case "base-ddc":
		plat = platBase
	case "teleport":
		plat = platTeleport
	case "teleport-auto":
		plat = platTeleport
		auto = true
	default:
		return WorkloadResult{}, fmt.Errorf("bench: unknown platform %q (have %v)", platformName, PlatformNames())
	}
	var w workload
	found := false
	for _, cand := range publicWorkloads() {
		if cand.Name == workloadName {
			w, found = cand, true
			break
		}
	}
	if !found {
		return WorkloadResult{}, fmt.Errorf("bench: unknown workload %q (have %v)", workloadName, WorkloadNames())
	}
	spec := runSpec{platform: plat}
	if auto {
		baseOut := run(w, opts, runSpec{platform: platBase})
		hwCfg := hw.Testbed()
		cfg := advisor.DefaultConfig()
		cfg.TableEntries = baseOut.Proc.Space.Pages()
		spec.pushOps, _ = advisor.Recommend(baseOut.Profile, cfg, &hwCfg)
		if spec.pushOps == nil {
			spec.pushOps = []string{}
		}
	}
	out := run(w, opts, spec)
	return WorkloadResult{
		Workload: workloadName,
		Platform: platformName,
		Seconds:  out.Time.Seconds(),
		Profile:  out.Profile,
		Trace:    out.Proc.M.Trace.Events(),
	}, nil
}

// Advise profiles a workload on the base DDC and returns the pushdown
// advisor's per-operator decisions (cost-model mode).
func Advise(workloadName string, opts Options) ([]advisor.Decision, error) {
	var w workload
	found := false
	for _, cand := range publicWorkloads() {
		if cand.Name == workloadName {
			w, found = cand, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("bench: unknown workload %q (have %v)", workloadName, WorkloadNames())
	}
	out := run(w, opts, runSpec{platform: platBase})
	hwCfg := hw.Testbed()
	cfg := advisor.DefaultConfig()
	cfg.TableEntries = out.Proc.Space.Pages()
	_, decisions := advisor.Recommend(out.Profile, cfg, &hwCfg)
	return decisions, nil
}
