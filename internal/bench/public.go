package bench

import (
	"fmt"
	"strings"

	"teleport/internal/advisor"
	"teleport/internal/fault"
	"teleport/internal/hw"
	"teleport/internal/metrics"
	"teleport/internal/obs"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// WorkloadNames lists the eight evaluation workloads plus the extras
// (QFilter, Q1, PageRank).
func WorkloadNames() []string {
	ws := publicWorkloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// PlatformNames lists the selectable platforms. "teleport-auto" profiles
// the workload on the base DDC first and lets internal/advisor choose the
// operators to push.
func PlatformNames() []string {
	return []string{"local", "linux-ssd", "base-ddc", "teleport", "teleport-auto"}
}

// WorkloadResult is one workload execution for external tooling (cmd/ddcsim).
type WorkloadResult struct {
	Workload string
	Platform string
	Seconds  float64
	// Nanos is the same duration as an exact integer nanosecond count, for
	// bit-identical comparisons (floating-point seconds can round).
	Nanos   int64
	Profile []profile.OpStat
	// Report breaks the run's virtual time down by attribution component
	// and operator (always produced; costs no virtual time).
	Report *Report
	// Metrics is the registry snapshot when Options.Metrics is set.
	Metrics *metrics.Snapshot
	// Trace holds the machine's retained events when Options.TraceCap > 0.
	Trace []trace.Event
	// Fault summarises injection and recovery when Options.ChaosProfile is
	// set (nil otherwise).
	Fault *FaultReport

	// SpanProfile is the virtual-time profile folded from the trace when
	// Options.Profiling is set (nil otherwise; see internal/obs).
	SpanProfile *obs.Profile
	// Latency holds per-operation latency percentiles when
	// Options.Percentiles is set (nil otherwise).
	Latency []obs.OpLatency
	// Incidents holds the flight recorder's retained records when
	// Options.IncidentEvents > 0; IncidentsTotal counts every trigger, even
	// beyond the retention bound.
	Incidents      []obs.Incident
	IncidentsTotal int
	// DroppedEvents is the trace ring's wraparound loss (0 without a ring).
	DroppedEvents uint64
}

// FaultReport aggregates what a chaos run injected and how each layer
// recovered.
type FaultReport struct {
	Profile string
	Seed    int64

	// Injected is the plan's own count of every fault it produced.
	Injected fault.Counters

	// Recovery, layer by layer.
	FabricRetries  int64 // messages retransmitted by the fabric
	FabricDrops    int64 // messages lost (each one was retransmitted)
	SSDReadRetries int64 // device-level re-reads
	PoolStalls     int64 // paging operations that waited out a pool outage

	// Availability: concrete downtime through the run's end, replacing the
	// opaque window counts, plus the sharded pool's failover activity
	// (multi-shard pools only; zero/empty otherwise).
	PoolDowntime  sim.Time   // total whole-controller downtime
	ShardDowntime []sim.Time // per-shard downtime, indexed by shard
	FailoverReads int64      // accesses served by a replica while a primary was down
	ResyncPages   int64      // journaled pages re-replicated on shard recovery
	ShardStalls   int64      // accesses stalled because no replica was live

	// Partition tolerance (link-partition profiles and/or write-quorum
	// configs; zero otherwise): the union of every directed link's outage
	// windows, and the quorum machinery's activity — hinted handoff
	// records enqueued and replayed, anti-entropy heals, staleness caught
	// and repaired by versioned failover reads, and writes/reads stalled
	// below quorum (see internal/ddc).
	LinkFaults        bool     // the fault plan could partition links at all
	LinkDowntime      sim.Time // union of all directed-link partition windows
	HandoffRecords    int64    // hinted-handoff records enqueued (partition-caused)
	HandoffReplays    int64    // hinted records delivered after a link heal
	PartitionHeals    int64    // anti-entropy sweeps that delivered hinted records
	ReadRepairs       int64    // stale replica copies repaired before serving
	StaleReadsAverted int64    // reads that would have served stale bytes
	QuorumStalls      int64    // writes/reads stalled below their quorum

	// TELEPORT runtime recovery (teleport platforms only; zero elsewhere).
	PoolDownObserved   int64 // heartbeat observations that found the pool down
	ShardDownObserved  int64 // pushdowns shed because a page's replica set was down
	QuorumLostObserved int64 // pushdowns shed below their write quorum
	QuorumAborts       int64 // executing pushdowns aborted (and rolled back) by partition onset
	CtxCrashes         int64 // temporary-context crashes (pre-commit + mid-execution)
	PushRetries        int64 // pushdown re-attempts by the policy
	LocalFallbacks     int64 // pushdowns degraded to compute-side execution

	// Crash-consistency and overload recovery.
	Shed                 int64 // requests rejected by admission control
	DeadlineAborts       int64 // calls aborted over their deadline budget
	Rollbacks            int64 // undo-journal rollbacks performed
	RolledBackPages      int64 // pages restored across all rollbacks
	BreakerOpens         int64 // circuit-breaker open transitions
	BreakerCloses        int64 // circuit-breaker close transitions
	BreakerShortCircuits int64 // calls short-circuited to local while open

	// Tail latency under injection (Options.Percentiles runs only; nil
	// otherwise): the operation classes whose distribution chaos distorts
	// most — end-to-end pushdown (retries, backoff and fallbacks included),
	// remote page faults, and paging stalls waiting out pool outages.
	PushE2E     *obs.Percentiles // push.e2e.ns
	RemoteFault *obs.Percentiles // fault.remote.ns
	PoolStall   *obs.Percentiles // pool.stall.ns
}

// String renders the report as one summary block. A nil report (fault-free
// run) renders as a placeholder instead of panicking, so callers can print
// result.Fault unconditionally.
func (f *FaultReport) String() string {
	if f == nil {
		return "chaos: none"
	}
	// The injected line omits the plan's raw window counts; the
	// availability line reports the outages as concrete downtime instead.
	i := f.Injected
	avail := fmt.Sprintf("pool-downtime=%v", f.PoolDowntime)
	if len(f.ShardDowntime) > 0 {
		per := make([]string, len(f.ShardDowntime))
		for s, d := range f.ShardDowntime {
			per[s] = fmt.Sprintf("s%d=%v", s, d)
		}
		avail += fmt.Sprintf(", shard-downtime=[%s], failover-reads=%d resync-pages=%d shard-stalls=%d",
			strings.Join(per, " "), f.FailoverReads, f.ResyncPages, f.ShardStalls)
	}
	if f.LinkFaults || f.LinkDowntime > 0 || f.HandoffRecords+f.HandoffReplays+f.ReadRepairs+f.QuorumStalls+f.QuorumLostObserved+f.QuorumAborts > 0 {
		avail += fmt.Sprintf("\n  partition: link-downtime=%v handoffs=%d replays=%d heals=%d read-repairs=%d stale-averted=%d quorum-stalls=%d quorum-lost=%d quorum-aborts=%d",
			f.LinkDowntime, f.HandoffRecords, f.HandoffReplays, f.PartitionHeals,
			f.ReadRepairs, f.StaleReadsAverted, f.QuorumStalls, f.QuorumLostObserved, f.QuorumAborts)
	}
	s := fmt.Sprintf(
		"chaos profile=%s seed=%d\n  injected: drops=%d corrupt=%d spikes=%d ctx-crashes=%d ctx-mid-crashes=%d ssd-errs=%d\n  availability: %s\n  recovered: fabric retries=%d drops=%d, ssd re-reads=%d, pool stalls=%d\n  pushdown: pool-down obs=%d shard-down obs=%d ctx crashes=%d retries=%d local fallbacks=%d\n  crash-consistency: rollbacks=%d (pages=%d) shed=%d deadline-aborts=%d breaker opens=%d closes=%d short-circuits=%d",
		f.Profile, f.Seed,
		i.Drops, i.Corruptions, i.Spikes, i.CtxCrashes, i.CtxMidCrashes, i.SSDReadErrors,
		avail,
		f.FabricRetries, f.FabricDrops, f.SSDReadRetries, f.PoolStalls,
		f.PoolDownObserved, f.ShardDownObserved, f.CtxCrashes, f.PushRetries, f.LocalFallbacks,
		f.Rollbacks, f.RolledBackPages, f.Shed, f.DeadlineAborts,
		f.BreakerOpens, f.BreakerCloses, f.BreakerShortCircuits)
	tails := []struct {
		name string
		p    *obs.Percentiles
	}{{"push-e2e", f.PushE2E}, {"remote-fault", f.RemoteFault}, {"pool-stall", f.PoolStall}}
	for _, t := range tails {
		if t.p == nil {
			continue
		}
		s += fmt.Sprintf("\n  tail %s: n=%d p50=%s p99=%s p999=%s max=%s",
			t.name, t.p.Count, fmtNs(t.p.P50), fmtNs(t.p.P99), fmtNs(t.p.P999), fmtNs(float64(t.p.MaxNs)))
	}
	return s
}

// RunWorkload executes one named workload on one named platform.
func RunWorkload(workloadName, platformName string, opts Options) (WorkloadResult, error) {
	chaosProf, err := fault.ByName(opts.ChaosProfile)
	if err != nil {
		return WorkloadResult{}, err
	}
	var plat platform
	auto := false
	switch platformName {
	case "local":
		plat = platLocal
	case "linux-ssd":
		plat = platLinuxSSD
	case "base-ddc":
		plat = platBase
	case "teleport":
		plat = platTeleport
	case "teleport-auto":
		plat = platTeleport
		auto = true
	default:
		return WorkloadResult{}, fmt.Errorf("bench: unknown platform %q (have %v)", platformName, PlatformNames())
	}
	var w workload
	found := false
	for _, cand := range publicWorkloads() {
		if cand.Name == workloadName {
			w, found = cand, true
			break
		}
	}
	if !found {
		return WorkloadResult{}, fmt.Errorf("bench: unknown workload %q (have %v)", workloadName, WorkloadNames())
	}
	spec := runSpec{platform: plat}
	if auto {
		baseOut := run(w, opts, runSpec{platform: platBase})
		hwCfg := hw.Testbed()
		cfg := advisor.DefaultConfig()
		cfg.TableEntries = baseOut.Proc.Space.Pages()
		spec.pushOps, _ = advisor.Recommend(baseOut.Profile, cfg, &hwCfg)
		if spec.pushOps == nil {
			spec.pushOps = []string{}
		}
	}
	out := run(w, opts, spec)
	res := WorkloadResult{
		Workload: workloadName,
		Platform: platformName,
		Seconds:  out.Time.Seconds(),
		Nanos:    int64(out.Time),
		Profile:  out.Profile,
		Report:   newReport(workloadName, platformName, out),
		Trace:    out.Proc.M.Trace.Events(),
	}
	res.DroppedEvents = out.Proc.M.Trace.Dropped()
	if out.Reg != nil {
		res.Metrics = out.Reg.Snapshot()
	}
	if opts.Profiling {
		res.SpanProfile = obs.BuildProfile(res.Trace, res.DroppedEvents)
	}
	if opts.Percentiles && res.Metrics != nil {
		res.Latency = obs.LatencySummary(res.Metrics)
	}
	if out.Rec != nil {
		res.Incidents = out.Rec.Incidents()
		res.IncidentsTotal = out.Rec.Total()
	}
	if chaosProf.Name != "none" {
		m := out.Proc.M
		seed := opts.ChaosSeed
		if seed == 0 {
			seed = opts.Seed
		}
		fr := &FaultReport{
			Profile:        chaosProf.Name,
			Seed:           seed,
			Injected:       m.Fault.Counters(),
			SSDReadRetries: m.SSD.Stats().ReadRetries,
			PoolStalls:     m.PoolStalls,
		}
		fr.PoolDowntime = fault.TotalDowntime(m.Fault.WindowsThrough(out.End), out.End)
		if k := m.Cfg.Shards(); k > 1 {
			fr.ShardDowntime = make([]sim.Time, k)
			for s := 0; s < k; s++ {
				fr.ShardDowntime[s] = fault.TotalDowntime(m.Fault.ShardWindowsThrough(s, out.End), out.End)
				st := m.ShardStats[s]
				fr.FailoverReads += st.FailoverReads
				fr.ResyncPages += st.ResyncPages
				fr.ShardStalls += st.Stalls
				fr.HandoffRecords += st.HandoffRecords
				fr.HandoffReplays += st.HandoffReplays
				fr.PartitionHeals += st.PartitionHeals
				fr.ReadRepairs += st.ReadRepairs
				fr.StaleReadsAverted += st.StaleReadsAverted
				fr.QuorumStalls += st.QuorumStalls
			}
			if m.Fault.HasLinkFaults() {
				fr.LinkFaults = true
				// Union every directed link's windows — compute↔shard
				// and shard↔shard, both directions — into one degraded
				// figure. Endpoint order is fixed, so the schedule
				// extension this forces is deterministic.
				ends := make([]int, 0, k+1)
				ends = append(ends, fault.EndpointCompute)
				for s := 0; s < k; s++ {
					ends = append(ends, s)
				}
				var links []fault.Window
				for _, from := range ends {
					for _, to := range ends {
						if from != to {
							links = append(links, m.Fault.LinkWindowsThrough(from, to, out.End)...)
						}
					}
				}
				fr.LinkDowntime = fault.UnionDowntime(links, out.End)
			}
		}
		tot := m.Fabric.Total()
		fr.FabricRetries = tot.Retries
		fr.FabricDrops = tot.Drops
		if out.RT != nil {
			rs := out.RT.Stats()
			fr.PoolDownObserved = rs.PoolDownObserved
			fr.ShardDownObserved = rs.ShardDownObserved
			fr.QuorumLostObserved = rs.QuorumLostObserved
			fr.QuorumAborts = rs.QuorumAborts
			fr.CtxCrashes = rs.CtxCrashes
			fr.PushRetries = rs.Retries
			fr.LocalFallbacks = rs.LocalFallbacks
			fr.Shed = rs.Shed
			fr.DeadlineAborts = rs.DeadlineAborts
			fr.Rollbacks = rs.Rollbacks
			fr.RolledBackPages = rs.RolledBackPages
			fr.BreakerOpens = rs.BreakerOpens
			fr.BreakerCloses = rs.BreakerCloses
			fr.BreakerShortCircuits = rs.BreakerShortCircuits
		}
		if opts.Percentiles {
			fr.PushE2E = histPercentiles(res.Metrics, "push.e2e.ns")
			fr.RemoteFault = histPercentiles(res.Metrics, "fault.remote.ns")
			fr.PoolStall = histPercentiles(res.Metrics, "pool.stall.ns")
		}
		res.Fault = fr
	}
	return res, nil
}

// histPercentiles extracts one named histogram's percentiles, or nil when
// the histogram is absent or empty.
func histPercentiles(s *metrics.Snapshot, name string) *obs.Percentiles {
	if s == nil {
		return nil
	}
	hs, ok := s.Histograms[name]
	if !ok || hs.Count == 0 {
		return nil
	}
	p := obs.FromHistogram(hs)
	return &p
}

// RunWorkloads executes several named workloads on one named platform —
// concurrently across host cores when opts.Parallel allows — and returns
// the results in input order. Each execution is hermetic, so the results
// are bit-identical to running the workloads one at a time.
func RunWorkloads(names []string, platformName string, opts Options) ([]WorkloadResult, error) {
	opts = opts.withPool()
	type outcome struct {
		res WorkloadResult
		err error
	}
	jobs := make([]func() outcome, len(names))
	for i, name := range names {
		jobs[i] = func() outcome {
			r, err := RunWorkload(name, platformName, opts)
			return outcome{r, err}
		}
	}
	outs := parmap(opts, jobs)
	results := make([]WorkloadResult, len(names))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		results[i] = o.res
	}
	return results, nil
}

// Advise profiles a workload on the base DDC and returns the pushdown
// advisor's per-operator decisions (cost-model mode).
func Advise(workloadName string, opts Options) ([]advisor.Decision, error) {
	var w workload
	found := false
	for _, cand := range publicWorkloads() {
		if cand.Name == workloadName {
			w, found = cand, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("bench: unknown workload %q (have %v)", workloadName, WorkloadNames())
	}
	out := run(w, opts, runSpec{platform: platBase})
	hwCfg := hw.Testbed()
	cfg := advisor.DefaultConfig()
	cfg.TableEntries = out.Proc.Space.Pages()
	_, decisions := advisor.Recommend(out.Profile, cfg, &hwCfg)
	return decisions, nil
}
