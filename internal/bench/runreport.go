package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"teleport/internal/obs"
)

// RunReport is the unified per-run observability report: the attribution
// breakdown, per-operation latency percentiles, the hottest span paths from
// the virtual-time profile, and the run's availability/incident summary —
// one artifact an operator (or CI) reads instead of four. Marshals to JSON
// deterministically; Fprint renders the human form.
type RunReport struct {
	Workload string  `json:"workload"`
	Platform string  `json:"platform"`
	Seconds  float64 `json:"seconds"`
	Nanos    int64   `json:"nanos"`

	// Attribution is the component/operator breakdown (always present).
	Attribution *Report `json:"attribution"`

	// Latency is the per-operation percentile summary (Options.Percentiles
	// runs only).
	Latency []obs.OpLatency `json:"latency,omitempty"`

	// HotPaths is the top-K span paths by self time plus profile coverage
	// (Options.Profiling runs only).
	HotPaths      []obs.PathStat `json:"hot_paths,omitempty"`
	ProfileSelfNs int64          `json:"profile_self_ns,omitempty"`
	SkippedSpans  int            `json:"skipped_spans,omitempty"`
	DroppedEvents uint64         `json:"dropped_events,omitempty"`

	// Incidents summarises the flight recorder (IncidentEvents runs only):
	// total triggers by kind, with the full records left to the JSONL dump.
	IncidentsTotal int            `json:"incidents_total,omitempty"`
	IncidentsKept  int            `json:"incidents_kept,omitempty"`
	IncidentKinds  []IncidentKind `json:"incident_kinds,omitempty"`

	// Fault is the chaos summary (chaos runs only).
	Fault *FaultReport `json:"fault,omitempty"`
}

// IncidentKind is one degrade class's trigger count within a run.
type IncidentKind struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// reportTopK bounds the hot-path table in the unified report; the folded
// dump has every path.
const reportTopK = 12

// NewRunReport assembles the unified report from one workload result.
func NewRunReport(res WorkloadResult) *RunReport {
	rr := &RunReport{
		Workload:      res.Workload,
		Platform:      res.Platform,
		Seconds:       res.Seconds,
		Nanos:         res.Nanos,
		Attribution:   res.Report,
		Latency:       res.Latency,
		DroppedEvents: res.DroppedEvents,
		Fault:         res.Fault,
	}
	if p := res.SpanProfile; p != nil {
		rr.HotPaths = p.TopK(reportTopK)
		rr.ProfileSelfNs = p.TotalSelfNs()
		rr.SkippedSpans = p.SkippedSpans
	}
	if res.IncidentsTotal > 0 {
		rr.IncidentsTotal = res.IncidentsTotal
		rr.IncidentsKept = len(res.Incidents)
		byKind := map[string]int{}
		for _, inc := range res.Incidents {
			byKind[inc.Kind]++
		}
		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			rr.IncidentKinds = append(rr.IncidentKinds, IncidentKind{Kind: k, Count: byKind[k]})
		}
	}
	return rr
}

// WriteJSON writes the report as one indented JSON document. Deterministic:
// struct field order is fixed and every slice is pre-sorted.
func (rr *RunReport) WriteJSON(w io.Writer) error {
	if rr == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rr)
}

// Fprint renders the human form: attribution tables, then the percentile
// table, the hot-path table, and the incident summary, skipping sections the
// run did not collect.
func (rr *RunReport) Fprint(w io.Writer) {
	if rr == nil {
		return
	}
	if rr.Attribution != nil {
		rr.Attribution.Fprint(w)
	}
	if len(rr.Latency) > 0 {
		t := &Table{
			Figure: "report",
			Title:  "latency percentiles (virtual time)",
			Header: []string{"operation", "count", "p50", "p95", "p99", "p999", "max", "mode"},
		}
		for _, ol := range rr.Latency {
			mode := "buckets"
			if ol.Exact {
				mode = "exact"
			}
			t.AddRow(ol.Name, fmt.Sprintf("%d", ol.Count),
				fmtNs(ol.P50), fmtNs(ol.P95), fmtNs(ol.P99), fmtNs(ol.P999),
				fmtNs(float64(ol.MaxNs)), mode)
		}
		t.Fprint(w)
	}
	if len(rr.HotPaths) > 0 {
		t := &Table{
			Figure: "report",
			Title:  fmt.Sprintf("hot span paths (self time; run total %s)", fmtNs(float64(rr.ProfileSelfNs))),
			Header: []string{"path", "count", "self", "total", "share"},
		}
		for _, ps := range rr.HotPaths {
			share := "-"
			if rr.ProfileSelfNs > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(ps.SelfNs)/float64(rr.ProfileSelfNs))
			}
			t.AddRow(ps.Path, fmt.Sprintf("%d", ps.Count),
				fmtNs(float64(ps.SelfNs)), fmtNs(float64(ps.TotalNs)), share)
		}
		if rr.DroppedEvents > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("ring dropped %d events; profile covers a suffix of the run", rr.DroppedEvents))
		}
		if rr.SkippedSpans > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%d spans skipped (endpoint lost to wraparound or still open)", rr.SkippedSpans))
		}
		t.Fprint(w)
	}
	if rr.IncidentsTotal > 0 {
		fmt.Fprintf(w, "incidents: %d triggered, %d retained\n", rr.IncidentsTotal, rr.IncidentsKept)
		for _, ik := range rr.IncidentKinds {
			fmt.Fprintf(w, "  %s: %d\n", ik.Kind, ik.Count)
		}
		fmt.Fprintln(w)
	}
	if rr.Fault != nil {
		fmt.Fprintln(w, rr.Fault.String())
	}
}

// fmtNs renders virtual nanoseconds human-readably (ns/µs/ms/s by
// magnitude).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
