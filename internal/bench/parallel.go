package bench

import (
	"runtime"
	"sync"
)

// Host-parallel execution of figure data points.
//
// Every simulated run is hermetic: it builds its own Machine, Process,
// Scheduler and RNGs, and the sim packages keep no package-level state, so
// two runs never share mutable memory. That makes each data point of a
// figure an independent pure function of (workload, Options, runSpec) — and
// the harness exploits it by fanning data points out across host cores.
// Parallelism changes only host wall-clock time: the virtual-time answers,
// tables, and counters are bit-identical to a sequential run (enforced by
// TestParallelDeterminism).
//
// The design has two levels:
//
//   - Figures run concurrently in RunAll, one goroutine per figure. These
//     goroutines hold no pool token — they mostly block waiting for their
//     data points, and a token here would deadlock the pool.
//   - Data points (the leaf run()/runMicro() calls) go through parmap,
//     which bounds concurrent simulation work with a token pool sized by
//     Options.Parallel (default: GOMAXPROCS). Leaf jobs never spawn
//     further parmap work, so token acquisition never nests.
//
// Results are always delivered in job-index order, so a figure's rows are
// assembled exactly as the sequential loop would have.

// workersFor resolves the Parallel option: 0 means one worker per host
// core, 1 forces sequential execution, n>1 uses n workers.
func workersFor(parallel int) int {
	if parallel == 1 {
		return 1
	}
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// withPool returns a copy of o carrying the shared worker-token pool,
// creating it if the options ask for parallelism. Options is passed by
// value throughout the package; copies share the one channel.
func (o Options) withPool() Options {
	if o.pool == nil {
		if w := workersFor(o.Parallel); w > 1 {
			o.pool = make(chan struct{}, w)
		}
	}
	return o
}

// parmap runs the jobs — concurrently when opts carries a pool — and
// returns their results ordered by job index. Each job acquires one pool
// token for the duration of its execution, bounding the number of
// simulations in flight across all figures.
func parmap[T any](opts Options, jobs []func() T) []T {
	out := make([]T, len(jobs))
	if opts.pool == nil {
		for i, job := range jobs {
			out[i] = job()
		}
		return out
	}
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() T) {
			defer wg.Done()
			opts.pool <- struct{}{}
			defer func() { <-opts.pool }()
			out[i] = job()
		}(i, job)
	}
	wg.Wait()
	return out
}

// par1 runs a single job through the pool: used for data points later
// stages depend on (e.g. a profiling run), so even they respect the bound.
func par1[T any](opts Options, job func() T) T {
	return parmap(opts, []func() T{job})[0]
}
