package bench

import (
	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/graph"
	"teleport/internal/hw"
	"teleport/internal/mapreduce"
	"teleport/internal/metrics"
	"teleport/internal/obs"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
	"teleport/internal/trace"
)

// workload is one of the paper's eight evaluation workloads (Figure 3 /
// Figure 13): three TPC-H queries on the columnar DBMS, three graph
// queries, two MapReduce jobs.
type workload struct {
	Name   string
	System string
	// PushOps is the operator set TELEPORT pushes for this workload
	// (§5's per-system choices).
	PushOps []string
	// CacheFrac overrides the default compute-cache fraction and
	// CacheBytes overrides it absolutely (the graph workloads pin the
	// scaled equivalent of the paper's 1 GB: slightly more than the hot
	// vertex state, so the edge scans and message scatters miss — the
	// regime PowerGraph sits in on the testbed).
	CacheFrac  float64
	CacheBytes int64
	// Build loads the dataset into p and returns the query runner.
	Build func(p *ddc.Process, opts Options) func(ex *profile.Exec)
}

func tpchWorkload(name string, pushOps []string, run func(ex *profile.Exec, d *tpch.Data)) workload {
	return workload{
		Name: name, System: "coldb", PushOps: pushOps,
		Build: func(p *ddc.Process, opts Options) func(ex *profile.Exec) {
			d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: opts.Scale, Seed: opts.Seed})
			return func(ex *profile.Exec) { run(ex, d) }
		},
	}
}

func graphWorkload(name string, prog func(opts Options) graph.Program, undirected bool) workload {
	return workload{
		Name: name, System: "graph",
		PushOps:    []string{graph.OpFinalize, graph.OpScatter, graph.OpGather},
		CacheBytes: 540 << 10,
		Build: func(p *ddc.Process, opts Options) func(ex *profile.Exec) {
			g, _ := graph.Generate(p, graph.GenConfig{
				NV: opts.GraphNV, AvgDegree: 6, Seed: opts.Seed, Undirected: undirected,
			})
			eng := graph.NewEngine(g, prog(opts), 4)
			return func(ex *profile.Exec) { eng.Run(ex) }
		},
	}
}

func mrWorkload(name string, job func(opts Options) mapreduce.Job) workload {
	return workload{
		Name: name, System: "mapreduce",
		PushOps: []string{mapreduce.OpMapShuffle},
		Build: func(p *ddc.Process, opts Options) func(ex *profile.Exec) {
			c, _ := mapreduce.GenerateCorpus(p, mapreduce.CorpusConfig{
				Words: opts.Words, Vocab: 4000, Seed: opts.Seed,
			})
			eng := mapreduce.NewEngine(c, job(opts), 4, 8)
			return func(ex *profile.Exec) { eng.Run(ex) }
		},
	}
}

// dbPush are the bandwidth-intensive operator sets §7.1 pushes per query.
var (
	q9Push = []string{tpch.OpProjection, tpch.OpHashJoin, tpch.OpMergeJoin, tpch.OpExpression}
	q3Push = []string{tpch.OpSelection, tpch.OpHashJoin, tpch.OpExpression, tpch.OpGroup}
	q6Push = []string{tpch.OpSelection, tpch.OpExpression}
)

// allWorkloads returns the eight Figure 3/13 workloads.
func allWorkloads() []workload {
	return []workload{
		tpchWorkload("Q9", q9Push, func(ex *profile.Exec, d *tpch.Data) {
			tpch.Q9(ex, d, tpch.GreenPart)
		}),
		tpchWorkload("Q3", q3Push, func(ex *profile.Exec, d *tpch.Data) {
			tpch.Q3(ex, d, 0, 1100)
		}),
		tpchWorkload("Q6", q6Push, func(ex *profile.Exec, d *tpch.Data) {
			tpch.Q6(ex, d, 730)
		}),
		graphWorkload("SSSP", func(Options) graph.Program { return graph.SSSP(0) }, false),
		graphWorkload("RE", func(Options) graph.Program { return graph.Reachability(0) }, false),
		graphWorkload("CC", func(Options) graph.Program { return graph.CC() }, true),
		mrWorkload("WC", func(Options) mapreduce.Job { return mapreduce.WordCount{} }),
		mrWorkload("Grep", func(Options) mapreduce.Job { return mapreduce.Grep{Pattern: "w1 ", Buckets: 64} }),
	}
}

// extraWorkloads are available through the public API (cmd/ddcsim) beyond
// the paper's evaluation set: Q_filter and Q1 on the DBMS, PageRank on the
// graph engine.
func extraWorkloads() []workload {
	return []workload{
		tpchWorkload("QFilter", []string{tpch.OpSelection, tpch.OpProjection, tpch.OpAggregation},
			func(ex *profile.Exec, d *tpch.Data) { tpch.QFilter(ex, d, 1460) }),
		tpchWorkload("Q1", []string{tpch.OpSelection, tpch.OpExpression, tpch.OpGroup},
			func(ex *profile.Exec, d *tpch.Data) { tpch.Q1(ex, d, 2400) }),
		graphWorkload("PR", func(opts Options) graph.Program {
			return graph.PageRank(10, opts.GraphNV)
		}, false),
	}
}

// publicWorkloads is the evaluation set plus the extras.
func publicWorkloads() []workload {
	return append(allWorkloads(), extraWorkloads()...)
}

// platform selects how a workload runs.
type platform int

const (
	platLocal    platform = iota // monolithic, unlimited DRAM
	platLinuxSSD                 // monolithic, capped DRAM, NVMe swap
	platBase                     // base DDC (LegoOS stand-in)
	platTeleport                 // base DDC + TELEPORT pushdown
)

// runSpec tweaks a single workload execution.
type runSpec struct {
	platform    platform
	cacheFrac   float64 // compute/local cache as fraction of the working set
	cacheBytes  int64   // absolute cache size (overrides cacheFrac when >0)
	poolFrac    float64 // memory pool DRAM fraction (0 = unbounded)
	memClock    float64 // memory-pool clock override (0 = testbed)
	contexts    int     // pushdown contexts (0 = 1)
	prefetch    *int    // base-DDC prefetch depth override (nil = preset)
	pushOps     []string
	pushFlags   core.Flags
	hwMut       func(*hw.Config)
	shards      int            // pool shards (0 = Options.PoolShards)
	replicas    int            // per-page copies (0 = Options.Replicas)
	writeQuorum int            // write quorum W (0 = Options.WriteQuorum)
	chaos       *fault.Profile // fault profile override (nil = Options.ChaosProfile)
	chaosSeed   int64          // seed override for the chaos plan (0 = Options)
}

// runOut is one execution's result.
type runOut struct {
	Time    sim.Time
	Profile []profile.OpStat
	Proc    *ddc.Process
	Exec    *profile.Exec
	RT      *core.Runtime
	// End is the driving thread's clock when the run finished (load +
	// query); downtime accounting clips fault windows to it.
	End sim.Time
	// Attr partitions the driving thread's query-phase time by component
	// (always collected; costs no virtual time).
	Attr metrics.Attribution
	// Reg is the metrics registry, non-nil when Options.Metrics is set.
	Reg *metrics.Registry
	// Rec is the flight recorder, non-nil when Options.IncidentEvents > 0.
	Rec *obs.Recorder
}

// traceCap resolves the event-ring capacity: the explicit TraceCap, or a
// default when profiling or the flight recorder needs a ring anyway.
func (o Options) traceCap() int {
	if o.TraceCap > 0 {
		return o.TraceCap
	}
	if o.Profiling || o.IncidentEvents > 0 {
		return defaultTraceCap
	}
	return 0
}

// defaultTraceCap sizes the implied event ring: large enough that the
// evaluation workloads profile without wraparound, small enough to stay
// cheap (each event is ~80 bytes).
const defaultTraceCap = 1 << 18

// run executes w under spec.
func run(w workload, opts Options, spec runSpec) runOut {
	if spec.cacheBytes == 0 {
		spec.cacheBytes = w.CacheBytes
	}
	if spec.cacheFrac == 0 {
		spec.cacheFrac = w.CacheFrac
	}
	if spec.cacheFrac == 0 {
		spec.cacheFrac = opts.CacheFrac
	}
	var cfg ddc.Config
	switch spec.platform {
	case platLocal:
		cfg = ddc.Linux()
	case platLinuxSSD:
		cfg = ddc.LinuxSSD(1 << 20) // resized to the working set below
	default:
		cfg = ddc.BaseDDC(1 << 20)
	}
	if spec.memClock > 0 {
		cfg.HW.MemoryClockGHz = spec.memClock
	}
	if spec.prefetch != nil && cfg.Disaggregated {
		cfg.PrefetchDepth = *spec.prefetch
	}
	if spec.hwMut != nil {
		spec.hwMut(&cfg.HW)
	}
	if cfg.Disaggregated {
		if cfg.PoolShards = spec.shards; cfg.PoolShards == 0 {
			cfg.PoolShards = opts.PoolShards
		}
		if cfg.Replicas = spec.replicas; cfg.Replicas == 0 {
			cfg.Replicas = opts.Replicas
		}
		if cfg.WriteQuorum = spec.writeQuorum; cfg.WriteQuorum == 0 {
			cfg.WriteQuorum = opts.WriteQuorum
		}
	}
	m := ddc.MustMachine(cfg)
	if cap := opts.traceCap(); cap > 0 {
		m.AttachTrace(trace.New(cap))
	}
	var reg *metrics.Registry
	if opts.Metrics || opts.Percentiles {
		reg = metrics.NewRegistry()
		reg.SetSampleCap(opts.ExactQuantiles)
		m.AttachMetrics(reg)
	}
	var rec *obs.Recorder
	if opts.IncidentEvents > 0 {
		rec = obs.NewRecorder(m.Trace, opts.IncidentEvents, m.CounterSource())
		m.Trace.SetObserver(rec.Observe)
	}
	chaosProf := fault.Profile{Name: "none"}
	if spec.chaos != nil {
		chaosProf = *spec.chaos
	} else if prof, err := fault.ByName(opts.ChaosProfile); err == nil {
		chaosProf = prof
	}
	if chaosProf.Name != "none" {
		seed := spec.chaosSeed
		if seed == 0 {
			seed = opts.ChaosSeed
		}
		if seed == 0 {
			seed = opts.Seed
		}
		m.AttachFault(fault.NewPlan(chaosProf, seed))
	}
	p := m.NewProcess()
	runFn := w.Build(p, opts)

	ws := p.Space.Allocated()
	if spec.cacheBytes > 0 {
		p.ResizeCache(spec.cacheBytes)
	} else {
		p.ResizeCache(cacheBytes(ws, spec.cacheFrac))
	}
	if spec.poolFrac > 0 {
		p.ResizePool(int64(float64(ws) * spec.poolFrac))
	}

	th := sim.NewThread(w.Name)
	var rt *core.Runtime
	ex := profile.NewExec(th, p, nil)
	if spec.platform == platTeleport {
		contexts := spec.contexts
		if contexts == 0 {
			contexts = 1
		}
		rt = core.NewRuntime(p, contexts)
		rt.QueueCap = opts.PushQueueCap
		if opts.BreakerThreshold > 0 {
			rt.Breaker.Threshold = opts.BreakerThreshold
		} else if opts.BreakerThreshold < 0 {
			rt.Breaker.Threshold = 0 // disabled
		}
		if opts.BreakerCooldown > 0 {
			rt.Breaker.Cooldown = opts.BreakerCooldown
		}
		ex = profile.NewExec(th, p, rt)
		push := spec.pushOps
		if push == nil {
			push = w.PushOps
		}
		ex.Push(push...)
		ex.PushFlags = spec.pushFlags
		ex.PushDeadline = opts.PushDeadline
	}
	attrBefore := *m.Times
	tstart := th.Now()
	runFn(ex)
	return runOut{
		Time: ex.Total(), Profile: ex.Profile(), Proc: p, Exec: ex, RT: rt,
		End: th.Now(),
		Attr: metrics.Attribution{
			TotalNs: int64(th.Now() - tstart),
			Comps:   m.Times.Sub(attrBefore),
		},
		Reg: reg,
		Rec: rec,
	}
}

// findWorkload returns a named workload.
func findWorkload(name string) workload {
	for _, w := range allWorkloads() {
		if w.Name == name {
			return w
		}
	}
	panic("bench: unknown workload " + name)
}

// DebugProfile exposes a single workload's per-operator profile for
// calibration tooling.
func DebugProfile(name string, opts Options, push bool) []profile.OpStat {
	p := platBase
	if push {
		p = platTeleport
	}
	return run(findWorkload(name), opts, runSpec{platform: p}).Profile
}

// DebugTriple runs one workload on local/base/teleport with a cache-fraction
// override (calibration tooling).
func DebugTriple(name string, opts Options, frac float64) (local, base, tele sim.Time) {
	w := findWorkload(name)
	local = run(w, opts, runSpec{platform: platLocal}).Time
	base = run(w, opts, runSpec{platform: platBase, cacheFrac: frac}).Time
	tele = run(w, opts, runSpec{platform: platTeleport, cacheFrac: frac}).Time
	return
}

// DebugTripleBytes is DebugTriple with an absolute cache size.
func DebugTripleBytes(name string, opts Options, bytes int64) (local, base, tele sim.Time) {
	w := findWorkload(name)
	frac := func(p *ddc.Process) {}
	_ = frac
	local = run(w, opts, runSpec{platform: platLocal}).Time
	base = run(w, opts, runSpec{platform: platBase, cacheBytes: bytes}).Time
	tele = run(w, opts, runSpec{platform: platTeleport, cacheBytes: bytes}).Time
	return
}
