package bench

import (
	"fmt"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/tpch"
)

func init() {
	register("A2", figFabric)
	register("A3", figRLE)
	register("A4", figPrefetch)
}

// figFabric is an extension: how TELEPORT's benefit depends on the fabric.
// The paper's testbed is 56 Gb/s / 1.2 µs InfiniBand; this sweeps from a
// commodity Ethernet to a CXL-class link. The expectation — and the reason
// pushdown stays relevant on faster fabrics — is that the benefit shrinks
// but does not vanish while per-access latency still dwarfs local DRAM.
func figFabric(opts Options) *Table {
	t := &Table{
		Figure: "Ext A2",
		Title:  "Fabric sensitivity: Q9 on base DDC vs TELEPORT across interconnects",
		Header: []string{"fabric", "latency", "bandwidth", "base-ddc(s)", "teleport(s)", "speedup"},
	}
	fabrics := []struct {
		name  string
		latNs float64
		gbs   float64
	}{
		{"25GbE Ethernet", 10000, 3.1},
		{"56Gb InfiniBand (paper)", 1200, 7.0},
		{"200Gb InfiniBand", 600, 25},
		{"CXL-class", 250, 32},
	}
	w := findWorkload("Q9")
	var jobs []func() sim.Time
	for _, f := range fabrics {
		mut := func(cfg *hw.Config) {
			cfg.NetLatencyNs = f.latNs
			cfg.NetBandwidthGBs = f.gbs
		}
		for _, p := range []platform{platBase, platTeleport} {
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: p, hwMut: mut}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	for i, f := range fabrics {
		base, tele := times[i*2], times[i*2+1]
		t.AddRow(f.name, fmt.Sprintf("%.1fµs", f.latNs/1000), fmt.Sprintf("%.0fGB/s", f.gbs),
			fm(base), fm(tele), fx(ratio(base, tele)))
	}
	t.Notes = append(t.Notes,
		"ablation beyond the paper: pushdown's benefit shrinks with faster fabrics but persists while fabric latency >> DRAM latency")
	return t
}

// figRLE is an extension quantifying §6's run-length encoding of the
// resident-page list: the wire size of the pushdown request with and
// without RLE over the compute cache's actual contents after running Q6,
// as the cache grows. The paper reports a 20× reduction that lets the list
// ride in one RDMA message.
func figRLE(opts Options) *Table {
	t := &Table{
		Figure: "Ext A3",
		Title:  "Resident-page list wire size: raw vs run-length encoded (§6)",
		Header: []string{"cache", "resident-pages", "raw(bytes)", "rle(bytes)", "reduction"},
	}
	w := findWorkload("Q6")
	fracs := []float64{0.02, 0.05, 0.10, 0.25}
	var jobs []func() runOut
	for _, frac := range fracs {
		jobs = append(jobs, func() runOut {
			return run(w, opts, runSpec{platform: platBase, cacheFrac: frac})
		})
	}
	outs := parmap(opts, jobs)
	for i, frac := range fracs {
		out := outs[i]
		var entries []netmodel.PageEntry
		out.Proc.Cache.Range(func(pg mem.PageID, writable, _ bool) bool {
			entries = append(entries, netmodel.PageEntry{ID: uint64(pg), Writable: writable})
			return true
		})
		runs, err := netmodel.EncodeRuns(entries)
		if err != nil {
			panic(err)
		}
		raw := netmodel.RawListWireSize(len(entries))
		rle := netmodel.RunsWireSize(runs)
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", len(entries)),
			fmt.Sprintf("%d", raw),
			fmt.Sprintf("%d", rle),
			fx(float64(raw)/float64(rle)))
	}
	t.Notes = append(t.Notes,
		"paper §6: RLE gives ~20x smaller lists; scan-heavy workloads leave long runs, so the ratio grows with the cache")
	return t
}

// figPrefetch is an extension ablating the base DDC's LegoOS-style
// sequential prefetcher on the scan-heavy Q6: the paper notes that OS-level
// caching and prefetching "on their own are insufficient" (§1); this
// quantifies how much they do help — and how far they remain from TELEPORT.
func figPrefetch(opts Options) *Table {
	t := &Table{
		Figure: "Ext A4",
		Title:  "Base-DDC sequential prefetch depth on scan-heavy Q6",
		Header: []string{"config", "time(s)", "speedup-vs-no-prefetch"},
	}
	w := findWorkload("Q6")
	depths := []int{1, 2, 4, 8}
	jobs := []func() sim.Time{
		func() sim.Time {
			return run(w, opts, runSpec{platform: platBase, prefetch: ptrInt(0)}).Time
		},
		func() sim.Time { return run(w, opts, runSpec{platform: platTeleport}).Time },
	}
	for _, depth := range depths {
		jobs = append(jobs, func() sim.Time {
			return run(w, opts, runSpec{platform: platBase, prefetch: ptrInt(depth)}).Time
		})
	}
	times := parmap(opts, jobs)
	none, tele := times[0], times[1]
	t.AddRow("depth 0 (no prefetch)", fm(none), fx(1))
	for i, depth := range depths {
		t.AddRow(fmt.Sprintf("depth %d", depth), fm(times[i+2]), fx(ratio(none, times[i+2])))
	}
	t.AddRow("TELEPORT (depth 2)", fm(tele), fx(ratio(none, tele)))
	t.Notes = append(t.Notes,
		"prefetching helps scans but plateaus well short of pushdown — the §1 claim that OS optimisations alone are insufficient")
	return t
}

func ptrInt(v int) *int { return &v }

func init() {
	register("A5", figWorkerScaling)
}

// figWorkerScaling is an extension probing §2.1's elasticity claim against
// §7.3's memory-pool compute constraint: a parallel aggregation sweeps the
// number of compute-pool workers on each platform. Local and base-DDC
// execution scale with the workers; TELEPORT scales only until the memory
// pool's user contexts saturate — the trade-off Figure 17 measures from the
// other side.
func figWorkerScaling(opts Options) *Table {
	t := &Table{
		Figure: "Ext A5",
		Title:  "Parallel aggregation makespan vs compute-pool workers",
		Header: []string{"workers", "local", "base-ddc", "teleport-2ctx"},
	}
	runPlat := func(plat platform, workers int) sim.Time {
		var cfg ddc.Config
		if plat == platLocal {
			cfg = ddc.Linux()
		} else {
			cfg = ddc.BaseDDC(1 << 20)
		}
		m := ddc.MustMachine(cfg)
		p := m.NewProcess()
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: opts.Scale, Seed: opts.Seed})
		p.ResizeCache(cacheBytes(p.Space.Allocated(), opts.CacheFrac))
		var rt *core.Runtime
		if plat == platTeleport {
			rt = core.NewRuntime(p, 2)
		}
		qty := d.DB.Table("lineitem").Col("l_quantity")
		_, makespan, err := coldb.ParallelAggregate(p, rt, workers, qty, coldb.AggSum)
		if err != nil {
			panic(err)
		}
		return makespan
	}
	ms := func(d sim.Time) string { return fmt.Sprintf("%.3fms", d.Millis()) }
	workerCounts := []int{1, 2, 4, 8, 16}
	var jobs []func() sim.Time
	for _, workers := range workerCounts {
		for _, p := range []platform{platLocal, platBase, platTeleport} {
			jobs = append(jobs, func() sim.Time { return runPlat(p, workers) })
		}
	}
	times := parmap(opts, jobs)
	for i, workers := range workerCounts {
		t.AddRow(fmt.Sprintf("%d", workers),
			ms(times[i*3]), ms(times[i*3+1]), ms(times[i*3+2]))
	}
	t.Notes = append(t.Notes,
		"compute workers scale freely (§2.1 elasticity); TELEPORT's gain saturates at the memory pool's 2 user contexts (§7.3)")
	return t
}
