package bench

import (
	"fmt"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
)

func init() {
	register("6", fig6)
	register("7", fig7)
	register("21", fig21)
	register("22", fig22)
}

// microParams configures the §4 two-thread microbenchmark: one
// compute-intensive thread (arithmetic) and one memory-intensive thread
// randomly accessing a large array, scaled down from the paper's 50 GB.
type microParams struct {
	arrayPages   int     // the memory-intensive thread's array
	scratchPages int     // the compute thread's private dirty data
	cachePages   int     // compute-local cache
	accesses     int     // memory-thread operations
	writeFrac    float64 // fraction of memory-thread ops that write
	computeOps   float64 // compute-thread arithmetic
	memPoolCores int

	// Shared-page contention (Figures 7, 21, 22): both threads write into
	// sharedPages at rate contention (per op).
	sharedPages int
	contention  float64

	// syncShared makes the pushed thread run with coherence disabled and
	// the caller syncmem the shared+array ranges first (§4.2).
	syncShared bool
	// pso runs the pushed thread under the Partial Store Ordering
	// relaxation instead (§4.2: downgrade instead of invalidate).
	pso bool
}

func defaultMicro() microParams {
	return microParams{
		arrayPages:   1792,
		scratchPages: 320,
		cachePages:   1500,
		accesses:     50000,
		writeFrac:    0.2,
		computeOps:   9_500_000, // ≈4.5 ms at 2.1 GHz
		memPoolCores: 1,
	}
}

// microMode selects the Figure 6 execution strategy.
type microMode int

const (
	microLocal microMode = iota
	microBase
	microMigrateProcess
	microEvictThread
	microCoherence
)

// microResult is one microbenchmark execution.
type microResult struct {
	Makespan      sim.Time
	CoherenceMsgs int64
}

// runMicro executes the two-thread microbenchmark under the given mode.
func runMicro(mode microMode, mp microParams) microResult {
	var cfg ddc.Config
	if mode == microLocal {
		cfg = ddc.Linux()
	} else {
		cfg = ddc.BaseDDC(int64(mp.cachePages) * mem.PageSize)
	}
	cfg.HW.MemoryPoolCores = mp.memPoolCores
	m := ddc.MustMachine(cfg)
	p := m.NewProcess()
	array := p.Space.AllocPages(int64(mp.arrayPages)*mem.PageSize, "micro.array")
	scratch := p.Space.AllocPages(int64(maxI(mp.scratchPages, 1))*mem.PageSize, "micro.scratch")
	var shared mem.Addr
	if mp.sharedPages > 0 {
		shared = p.Space.AllocPages(int64(mp.sharedPages)*mem.PageSize, "micro.shared")
	}
	rt := core.NewRuntime(p, 2)

	// Warm-up: the application has been running — the cache holds a dirty
	// working set from both threads.
	warm := sim.NewThread("warmup")
	wenv := p.NewEnv(warm)
	for pg := 0; pg < mp.arrayPages; pg++ {
		wenv.WriteI64(array+mem.Addr(pg)*mem.PageSize, int64(pg))
	}
	for pg := 0; pg < mp.scratchPages; pg++ {
		wenv.WriteI64(scratch+mem.Addr(pg)*mem.PageSize, 1)
	}

	// The two thread bodies.
	memBody := func(env *ddc.Env) {
		x := uint64(0x9E3779B97F4A7C15)
		writes := int(float64(mp.accesses) * mp.writeFrac)
		contEvery := 0
		if mp.contention > 0 {
			contEvery = int(1 / mp.contention)
		}
		for i := 0; i < mp.accesses; i++ {
			x = x*6364136223846793005 + 1
			addr := array + mem.Addr(x%uint64(mp.arrayPages*mem.PageSize/8))*8
			if contEvery > 0 && i%contEvery == 0 {
				env.WriteI64(shared+mem.Addr(x%uint64(mp.sharedPages*mem.PageSize/8))*8, int64(i))
				continue
			}
			if i < writes {
				env.WriteI64(addr, int64(i))
			} else {
				env.ReadI64(addr)
			}
		}
	}
	computeBody := func(env *ddc.Env) {
		x := uint64(7)
		chunk := mp.computeOps / 100
		for i := 0; i < 100; i++ {
			env.Compute(chunk)
			x = x*2862933555777941757 + 3037000493
			if mp.scratchPages > 0 {
				env.WriteI64(scratch+mem.Addr(x%uint64(mp.scratchPages*mem.PageSize/8))*8, int64(i))
			}
			if mp.contention > 0 && mp.sharedPages > 0 {
				writesPerChunk := mp.contention * mp.computeOps / 100
				for w := 0.0; w < writesPerChunk; w++ {
					x = x*6364136223846793005 + 1
					env.WriteI64(shared+mem.Addr(x%uint64(mp.sharedPages*mem.PageSize/8))*8, int64(i))
				}
			}
		}
	}

	coherenceBefore := m.Fabric.Stats(netmodel.ClassCoherence).Msgs
	s := sim.NewScheduler()
	s.SetQuantum(sim.Microsecond)
	start := warm.Now()

	push := func(th *sim.Thread, body core.Func, opts core.Options) {
		if _, err := rt.Pushdown(th, body, opts); err != nil {
			panic(err)
		}
	}
	switch mode {
	case microLocal, microBase:
		s.Spawn("mem", start, func(th *sim.Thread) { memBody(p.NewEnv(th)) })
		s.Spawn("cpu", start, func(th *sim.Thread) { computeBody(p.NewEnv(th)) })
	case microMigrateProcess:
		s.Spawn("mem", start, func(th *sim.Thread) {
			push(th, memBody, core.Options{Flags: core.FlagMigrateProcess})
		})
		s.Spawn("cpu", start, func(th *sim.Thread) {
			push(th, computeBody, core.Options{Flags: core.FlagMigrateProcess})
		})
	case microEvictThread:
		s.Spawn("mem", start, func(th *sim.Thread) {
			push(th, memBody, core.Options{
				Flags: core.FlagEvictRanges,
				EvictRanges: []core.Range{
					{Base: array, Size: int64(mp.arrayPages) * mem.PageSize},
				},
			})
		})
		s.Spawn("cpu", start, func(th *sim.Thread) { computeBody(p.NewEnv(th)) })
	case microCoherence:
		opts := core.Options{}
		if mp.syncShared {
			opts.Flags = core.FlagNoCoherence
		}
		if mp.pso {
			opts.Flags = core.FlagPSO
		}
		s.Spawn("mem", start, func(th *sim.Thread) {
			if mp.syncShared {
				rt.SyncMem(th, []core.Range{
					{Base: array, Size: int64(mp.arrayPages) * mem.PageSize},
					{Base: shared, Size: int64(maxI(mp.sharedPages, 1)) * mem.PageSize},
				})
			}
			push(th, memBody, opts)
		})
		s.Spawn("cpu", start, func(th *sim.Thread) { computeBody(p.NewEnv(th)) })
	}
	end := s.Run()
	return microResult{
		Makespan:      end - start,
		CoherenceMsgs: m.Fabric.Stats(netmodel.ClassCoherence).Msgs - coherenceBefore,
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fig6 reproduces Figure 6: the data-synchronisation ablation on the
// two-thread microbenchmark (paper: naive per-process 2.9×, per-thread
// 3.8×, on-demand coherence 11× over the base DDC).
func fig6(opts Options) *Table {
	t := &Table{
		Figure: "Fig 6",
		Title:  "Two-thread microbenchmark: data-sync ablation",
		Header: []string{"system", "makespan(s)", "speedup-vs-base"},
	}
	mp := defaultMicro()
	rows := []struct {
		name string
		mode microMode
	}{
		{"Local execution", microLocal},
		{"Base DDC", microBase},
		{"TELEPORT (per process)", microMigrateProcess},
		{"TELEPORT (per thread)", microEvictThread},
		{"TELEPORT (coherence)", microCoherence},
	}
	var jobs []func() microResult
	for _, r := range rows {
		jobs = append(jobs, func() microResult { return runMicro(r.mode, mp) })
	}
	results := parmap(opts, jobs)
	base := results[1] // the Base DDC row doubles as the speedup baseline
	for i, r := range rows {
		res := results[i]
		t.AddRow(r.name, fm(res.Makespan), fx(ratio(base.Makespan, res.Makespan)))
	}
	t.Notes = append(t.Notes, "paper: per-process 2.9x, per-thread 3.8x, coherence 11x")
	return t
}

// fig7 reproduces Figure 7: false sharing between the two threads (writes
// to distinct variables on the same pages). With the default coherence the
// pages ping-pong; disabling coherence and synchronising manually with
// syncmem restores the gains (paper: 4.6× vs 11×).
func fig7(opts Options) *Table {
	t := &Table{
		Figure: "Fig 7",
		Title:  "False sharing: default coherence vs manual syncmem",
		Header: []string{"system", "makespan(s)", "speedup-vs-base"},
	}
	mp := defaultMicro()
	mp.sharedPages = 16
	mp.contention = 0.02 // the threads' variables share pages and are hot
	mpSync := mp
	mpSync.syncShared = true
	results := parmap(opts, []func() microResult{
		func() microResult { return runMicro(microBase, mp) },
		func() microResult { return runMicro(microLocal, mp) },
		func() microResult { return runMicro(microCoherence, mp) },
		func() microResult { return runMicro(microCoherence, mpSync) },
	})
	base, local, coh, syn := results[0], results[1], results[2], results[3]

	t.AddRow("Local execution", fm(local.Makespan), "")
	t.AddRow("Base DDC", fm(base.Makespan), fx(1))
	t.AddRow("TELEPORT (coherence)", fm(coh.Makespan), fx(ratio(base.Makespan, coh.Makespan)))
	t.AddRow("TELEPORT (syncmem)", fm(syn.Makespan), fx(ratio(base.Makespan, syn.Makespan)))
	t.Notes = append(t.Notes, "paper: coherence 4.6x, syncmem 11x over base DDC")
	return t
}

// contentionRates are Figure 21/22's sweep points.
var contentionRates = []float64{0.000001, 0.00001, 0.0001, 0.001, 0.01}

// fig21 reproduces Figure 21: application performance as the contention
// rate between the compute-pool thread and the pushed thread rises (paper:
// local and base DDC flat; TELEPORT default degrades above 0.1%; the Weak
// Ordering relaxation stays flat).
func fig21(opts Options) *Table {
	t := &Table{
		Figure: "Fig 21",
		Title:  "Execution time vs contention rate",
		Header: []string{"contention", "local(s)", "base-ddc(s)", "teleport-default(s)", "teleport-pso(s)", "teleport-relaxed(s)"},
	}
	var jobs []func() microResult
	for _, r := range contentionRates {
		mp := defaultMicro()
		mp.sharedPages = 8
		mp.contention = r
		mpPSO := mp
		mpPSO.pso = true
		mpRel := mp
		mpRel.syncShared = true
		jobs = append(jobs,
			func() microResult { return runMicro(microLocal, mp) },
			func() microResult { return runMicro(microBase, mp) },
			func() microResult { return runMicro(microCoherence, mp) },
			func() microResult { return runMicro(microCoherence, mpPSO) },
			func() microResult { return runMicro(microCoherence, mpRel) })
	}
	results := parmap(opts, jobs)
	for i, r := range contentionRates {
		local, base, def, pso, rel := results[i*5], results[i*5+1], results[i*5+2], results[i*5+3], results[i*5+4]
		t.AddRow(fmt.Sprintf("%.4f%%", r*100),
			fm(local.Makespan), fm(base.Makespan), fm(def.Makespan), fm(pso.Makespan), fm(rel.Makespan))
	}
	t.Notes = append(t.Notes,
		"paper: default coherence 2.1s at low contention, 3.7s at 1%; relaxed flat")
	return t
}

// fig22 reproduces Figure 22: the number of coherence messages under the
// same sweep (paper: default grows with contention; relaxed constant).
func fig22(opts Options) *Table {
	t := &Table{
		Figure: "Fig 22",
		Title:  "Coherence messages vs contention rate",
		Header: []string{"contention", "default-msgs", "relaxed-msgs"},
	}
	var jobs []func() microResult
	for _, r := range contentionRates {
		mp := defaultMicro()
		mp.sharedPages = 8
		mp.contention = r
		mpRel := mp
		mpRel.syncShared = true
		jobs = append(jobs,
			func() microResult { return runMicro(microCoherence, mp) },
			func() microResult { return runMicro(microCoherence, mpRel) })
	}
	results := parmap(opts, jobs)
	for i, r := range contentionRates {
		def, rel := results[i*2], results[i*2+1]
		t.AddRow(fmt.Sprintf("%.4f%%", r*100),
			fmt.Sprintf("%d", def.CoherenceMsgs), fmt.Sprintf("%d", rel.CoherenceMsgs))
	}
	t.Notes = append(t.Notes, "paper: default rises to ~10^6 messages at 1%; relaxed flat")
	return t
}
