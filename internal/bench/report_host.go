package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"
)

// Host-performance reporting: how long the figure suite takes on the host,
// figure by figure, in real nanoseconds and heap allocations. This is the
// one place the bench package legitimately reads the wall clock — it
// measures the simulator, never the simulation (virtual-time answers are
// produced elsewhere and are independent of all of this).

// FigureHostStat is one figure's host cost.
type FigureHostStat struct {
	Figure  string `json:"figure"`
	WallNs  int64  `json:"wall_ns"`
	Mallocs uint64 `json:"mallocs"`
}

// HostReport is the tracked benchmark baseline (BENCH_10.json): the options
// that shaped the workloads, the parallelism the suite ran with, and the
// per-figure host costs. Cluster, when present, records the multi-machine
// workload's intra-run parallel scaling; older baselines without the field
// still parse and compare (only the figure totals gate regressions).
type HostReport struct {
	GoMaxProcs   int              `json:"gomaxprocs"`
	Workers      int              `json:"workers"`
	Scale        float64          `json:"scale"`
	GraphNV      int              `json:"graph_nv"`
	Words        int              `json:"words"`
	Seed         int64            `json:"seed"`
	TotalWallNs  int64            `json:"total_wall_ns"`
	TotalMallocs uint64           `json:"total_mallocs"`
	Figures      []FigureHostStat `json:"figures"`
	Cluster      *ClusterHostStat `json:"cluster,omitempty"`
}

// ClusterHostStat is the host cost of the multi-machine cluster workload
// (RunCluster) at one versus many sim workers. The virtual results of the
// two runs are verified identical before this is recorded; Speedup is
// bounded by GoMaxProcs — on a single-core host it sits at ~1.0 no matter
// how parallel the simulation is.
type ClusterHostStat struct {
	Machines   int     `json:"machines"`
	Rounds     int     `json:"rounds"`
	SimWorkers int     `json:"sim_workers"`
	SeqWallNs  int64   `json:"seq_wall_ns"`
	ParWallNs  int64   `json:"par_wall_ns"`
	Speedup    float64 `json:"speedup"`
}

// RunAllTimed regenerates every figure in registration order, timing each.
// Figures run one at a time so the wall-clock and allocation deltas are
// attributable, but each figure's data points still fan out across the
// worker pool per opts.Parallel.
func RunAllTimed(opts Options) ([]*Table, HostReport) {
	opts = opts.withPool()
	rep := HostReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workersFor(opts.Parallel),
		Scale:      opts.Scale,
		GraphNV:    opts.GraphNV,
		Words:      opts.Words,
		Seed:       opts.Seed,
	}
	tables := make([]*Table, 0, len(registryOrder))
	var before, after runtime.MemStats
	for _, id := range registryOrder {
		runtime.ReadMemStats(&before)
		start := time.Now() //lint:allow walltime host benchmark measures the simulator, not the simulation
		tbl := registry[id](opts)
		wall := time.Since(start) //lint:allow walltime host benchmark measures the simulator, not the simulation
		runtime.ReadMemStats(&after)
		tables = append(tables, tbl)
		rep.Figures = append(rep.Figures, FigureHostStat{
			Figure:  id,
			WallNs:  wall.Nanoseconds(),
			Mallocs: after.Mallocs - before.Mallocs,
		})
	}
	for _, f := range rep.Figures {
		rep.TotalWallNs += f.WallNs
		rep.TotalMallocs += f.Mallocs
	}
	if cl, err := timeCluster(opts); err == nil {
		rep.Cluster = cl
	}
	return tables, rep
}

// clusterBenchMachines/Rounds shape the timed multi-machine workload.
const (
	clusterBenchMachines = 8
	clusterBenchRounds   = 4
)

// timeCluster runs the multi-machine workload sequentially and then with
// the full worker complement, verifies the virtual results are identical,
// and reports both host walls. Figure totals deliberately exclude it so
// BENCH_10.json stays comparable with pre-cluster baselines.
func timeCluster(opts Options) (*ClusterHostStat, error) {
	seq := opts
	seq.SimWorkers = 1
	start := time.Now() //lint:allow walltime host benchmark measures the simulator, not the simulation
	r1, err := RunCluster(seq, clusterBenchMachines, clusterBenchRounds)
	if err != nil {
		return nil, err
	}
	seqWall := time.Since(start) //lint:allow walltime host benchmark measures the simulator, not the simulation
	par := opts
	if par.SimWorkers == 1 {
		par.SimWorkers = 0 // the point is to measure the parallel core
	}
	workers := workersFor(par.SimWorkers)
	start = time.Now() //lint:allow walltime host benchmark measures the simulator, not the simulation
	rn, err := RunCluster(par, clusterBenchMachines, clusterBenchRounds)
	if err != nil {
		return nil, err
	}
	parWall := time.Since(start) //lint:allow walltime host benchmark measures the simulator, not the simulation
	if !reflect.DeepEqual(r1, rn) {
		return nil, fmt.Errorf("bench: cluster virtual results diverged between 1 and %d sim workers", workers)
	}
	stat := &ClusterHostStat{
		Machines: clusterBenchMachines, Rounds: clusterBenchRounds,
		SimWorkers: workers,
		SeqWallNs:  seqWall.Nanoseconds(),
		ParWallNs:  parWall.Nanoseconds(),
	}
	if parWall > 0 {
		stat.Speedup = float64(seqWall) / float64(parWall)
	}
	return stat, nil
}

// WriteJSON writes the report as indented JSON.
func (r HostReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadHostReport loads a report written by WriteJSON.
func ReadHostReport(path string) (HostReport, error) {
	var r HostReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// CompareBaseline checks r against a tracked baseline: an error is returned
// when the suite's total wall clock regressed by more than tol (0.25 = 25%),
// or when the two reports measured different workloads and are therefore
// incomparable. Faster-than-baseline is never an error.
func (r HostReport) CompareBaseline(base HostReport, tol float64) error {
	if r.Scale != base.Scale || r.GraphNV != base.GraphNV ||
		r.Words != base.Words || r.Seed != base.Seed {
		return fmt.Errorf("bench: baseline measured different workloads (scale=%g graph-nv=%d words=%d seed=%d vs scale=%g graph-nv=%d words=%d seed=%d); regenerate it",
			base.Scale, base.GraphNV, base.Words, base.Seed,
			r.Scale, r.GraphNV, r.Words, r.Seed)
	}
	if base.TotalWallNs <= 0 {
		return fmt.Errorf("bench: baseline has no wall-clock total")
	}
	limit := float64(base.TotalWallNs) * (1 + tol)
	if float64(r.TotalWallNs) > limit {
		return fmt.Errorf("bench: wall-clock regression: suite took %.2fs vs baseline %.2fs (>%.0f%% tolerance)",
			float64(r.TotalWallNs)/1e9, float64(base.TotalWallNs)/1e9, tol*100)
	}
	return nil
}
