package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// Host-performance reporting: how long the figure suite takes on the host,
// figure by figure, in real nanoseconds and heap allocations. This is the
// one place the bench package legitimately reads the wall clock — it
// measures the simulator, never the simulation (virtual-time answers are
// produced elsewhere and are independent of all of this).

// FigureHostStat is one figure's host cost.
type FigureHostStat struct {
	Figure  string `json:"figure"`
	WallNs  int64  `json:"wall_ns"`
	Mallocs uint64 `json:"mallocs"`
}

// HostReport is the tracked benchmark baseline (BENCH_5.json): the options
// that shaped the workloads, the parallelism the suite ran with, and the
// per-figure host costs.
type HostReport struct {
	GoMaxProcs   int              `json:"gomaxprocs"`
	Workers      int              `json:"workers"`
	Scale        float64          `json:"scale"`
	GraphNV      int              `json:"graph_nv"`
	Words        int              `json:"words"`
	Seed         int64            `json:"seed"`
	TotalWallNs  int64            `json:"total_wall_ns"`
	TotalMallocs uint64           `json:"total_mallocs"`
	Figures      []FigureHostStat `json:"figures"`
}

// RunAllTimed regenerates every figure in registration order, timing each.
// Figures run one at a time so the wall-clock and allocation deltas are
// attributable, but each figure's data points still fan out across the
// worker pool per opts.Parallel.
func RunAllTimed(opts Options) ([]*Table, HostReport) {
	opts = opts.withPool()
	rep := HostReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workersFor(opts.Parallel),
		Scale:      opts.Scale,
		GraphNV:    opts.GraphNV,
		Words:      opts.Words,
		Seed:       opts.Seed,
	}
	tables := make([]*Table, 0, len(registryOrder))
	var before, after runtime.MemStats
	for _, id := range registryOrder {
		runtime.ReadMemStats(&before)
		start := time.Now() //lint:allow walltime host benchmark measures the simulator, not the simulation
		tbl := registry[id](opts)
		wall := time.Since(start) //lint:allow walltime host benchmark measures the simulator, not the simulation
		runtime.ReadMemStats(&after)
		tables = append(tables, tbl)
		rep.Figures = append(rep.Figures, FigureHostStat{
			Figure:  id,
			WallNs:  wall.Nanoseconds(),
			Mallocs: after.Mallocs - before.Mallocs,
		})
	}
	for _, f := range rep.Figures {
		rep.TotalWallNs += f.WallNs
		rep.TotalMallocs += f.Mallocs
	}
	return tables, rep
}

// WriteJSON writes the report as indented JSON.
func (r HostReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadHostReport loads a report written by WriteJSON.
func ReadHostReport(path string) (HostReport, error) {
	var r HostReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// CompareBaseline checks r against a tracked baseline: an error is returned
// when the suite's total wall clock regressed by more than tol (0.25 = 25%),
// or when the two reports measured different workloads and are therefore
// incomparable. Faster-than-baseline is never an error.
func (r HostReport) CompareBaseline(base HostReport, tol float64) error {
	if r.Scale != base.Scale || r.GraphNV != base.GraphNV ||
		r.Words != base.Words || r.Seed != base.Seed {
		return fmt.Errorf("bench: baseline measured different workloads (scale=%g graph-nv=%d words=%d seed=%d vs scale=%g graph-nv=%d words=%d seed=%d); regenerate it",
			base.Scale, base.GraphNV, base.Words, base.Seed,
			r.Scale, r.GraphNV, r.Words, r.Seed)
	}
	if base.TotalWallNs <= 0 {
		return fmt.Errorf("bench: baseline has no wall-clock total")
	}
	limit := float64(base.TotalWallNs) * (1 + tol)
	if float64(r.TotalWallNs) > limit {
		return fmt.Errorf("bench: wall-clock regression: suite took %.2fs vs baseline %.2fs (>%.0f%% tolerance)",
			float64(r.TotalWallNs)/1e9, float64(base.TotalWallNs)/1e9, tol*100)
	}
	return nil
}
