package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"teleport/internal/trace"
)

func obsOpts() Options {
	return Options{Scale: 0.5, GraphNV: 8000, Words: 30000, Seed: 1, CacheFrac: 0.02}
}

// The golden observability guarantee: attaching the full observability
// surface (trace ring + metrics registry) to a run changes nothing about
// the simulation — same-seed runs with and without it are bit-identical in
// virtual time, on clean and chaos runs alike.
func TestObservabilityDoesNotPerturbVirtualTime(t *testing.T) {
	for _, tc := range []struct {
		name     string
		workload string
		platform string
		chaos    string
	}{
		{"clean-teleport", "Q6", "teleport", ""},
		{"clean-base", "SSSP", "base-ddc", ""},
		{"chaos-teleport", "Q6", "teleport", "chaos"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := obsOpts()
			plain.ChaosProfile = tc.chaos
			instrumented := plain
			instrumented.TraceCap = 1 << 16
			instrumented.Metrics = true

			a, err := RunWorkload(tc.workload, tc.platform, plain)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunWorkload(tc.workload, tc.platform, instrumented)
			if err != nil {
				t.Fatal(err)
			}
			if a.Nanos != b.Nanos {
				t.Fatalf("observability perturbed virtual time: %dns (off) vs %dns (on)",
					a.Nanos, b.Nanos)
			}
			if len(b.Trace) == 0 || b.Metrics == nil {
				t.Fatalf("instrumented run returned no trace/metrics")
			}
		})
	}
}

// The attribution report partitions the run: every component is
// non-negative, the compute residual is non-negative, and on a DDC platform
// the wire components are non-zero. Per operator, attributed time can never
// exceed the operator's elapsed time.
func TestReportComponentsSumToTotal(t *testing.T) {
	res, err := RunWorkload("Q6", "teleport", obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r == nil {
		t.Fatal("no report")
	}
	if r.TotalNs <= 0 {
		t.Fatalf("report total = %d", r.TotalNs)
	}
	for c, v := range r.Comps {
		if v < 0 {
			t.Fatalf("component %d negative: %d", c, v)
		}
	}
	if r.ComputeNs() < 0 {
		t.Fatalf("compute residual negative: %d (total %d, attributed %d)",
			r.ComputeNs(), r.TotalNs, r.Comps.TotalNs())
	}
	if r.Comps.LayerNs("net") == 0 {
		t.Fatal("teleport run attributed no wire time")
	}
	if len(r.Ops) == 0 {
		t.Fatal("report has no operator rows")
	}
	var opNs int64
	for _, o := range r.Ops {
		if o.Comps.TotalNs() > o.Ns {
			t.Fatalf("operator %s attributed %dns of %dns elapsed",
				o.Name, o.Comps.TotalNs(), o.Ns)
		}
		opNs += o.Ns
	}
	// Operators run inside the measured window; engine glue between
	// operators is the only gap.
	if opNs > r.TotalNs {
		t.Fatalf("operator time %dns exceeds run total %dns", opNs, r.TotalNs)
	}
	if res.Nanos != opNs {
		t.Fatalf("Nanos (%d) should equal summed operator time (%d)", res.Nanos, opNs)
	}

	// The rendered report must not be empty and must carry the totals.
	var buf bytes.Buffer
	r.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("report rendered empty")
	}
}

// Two same-seed instrumented runs must produce byte-identical metrics
// snapshots and valid, nesting Chrome trace JSON.
func TestMetricsAndTraceExportDeterministic(t *testing.T) {
	opts := obsOpts()
	opts.TraceCap = 1 << 16
	opts.Metrics = true
	a, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	var aj, bj bytes.Buffer
	if err := a.Metrics.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Fatal("same-seed metrics snapshots differ")
	}
	if len(a.Metrics.Counters) == 0 || len(a.Metrics.Histograms) == 0 {
		t.Fatalf("teleport run published no metrics: %v", a.Metrics)
	}

	var cj bytes.Buffer
	if err := trace.WriteChromeTrace(&cj, a.Trace); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(cj.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	spans := trace.PairSpans(a.Trace)
	var sawPushChild, sawFault bool
	for _, s := range spans {
		if s.Parent != 0 && (s.Kind == trace.KindPushQueue || s.Kind == trace.KindPushExec ||
			s.Kind == trace.KindPushSetup || s.Kind == trace.KindPushSync) {
			sawPushChild = true
		}
		if s.Kind == trace.KindRemoteFault && s.Complete {
			sawFault = true
		}
	}
	if !sawPushChild || !sawFault {
		t.Fatalf("trace lacks nested pushdown phases (%v) or fault spans (%v)",
			sawPushChild, sawFault)
	}
}

// A fault-free run has a nil *FaultReport; printing it must not panic.
func TestFaultReportNilString(t *testing.T) {
	var f *FaultReport
	if got := f.String(); got != "chaos: none" {
		t.Fatalf("nil FaultReport.String() = %q", got)
	}
	res, err := RunWorkload("Q6", "teleport", obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault != nil {
		t.Fatal("fault report present without chaos")
	}
	if got := res.Fault.String(); got != "chaos: none" {
		t.Fatalf("res.Fault.String() = %q", got)
	}
}
