package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"teleport/internal/obs"
	"teleport/internal/trace"
)

func obsOpts() Options {
	return Options{Scale: 0.5, GraphNV: 8000, Words: 30000, Seed: 1, CacheFrac: 0.02}
}

// The golden observability guarantee: attaching the full observability
// surface (trace ring + metrics registry) to a run changes nothing about
// the simulation — same-seed runs with and without it are bit-identical in
// virtual time, on clean and chaos runs alike.
func TestObservabilityDoesNotPerturbVirtualTime(t *testing.T) {
	for _, tc := range []struct {
		name     string
		workload string
		platform string
		chaos    string
	}{
		{"clean-teleport", "Q6", "teleport", ""},
		{"clean-base", "SSSP", "base-ddc", ""},
		{"chaos-teleport", "Q6", "teleport", "chaos"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := obsOpts()
			plain.ChaosProfile = tc.chaos
			instrumented := plain
			instrumented.TraceCap = 1 << 16
			instrumented.Metrics = true

			a, err := RunWorkload(tc.workload, tc.platform, plain)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunWorkload(tc.workload, tc.platform, instrumented)
			if err != nil {
				t.Fatal(err)
			}
			if a.Nanos != b.Nanos {
				t.Fatalf("observability perturbed virtual time: %dns (off) vs %dns (on)",
					a.Nanos, b.Nanos)
			}
			if len(b.Trace) == 0 || b.Metrics == nil {
				t.Fatalf("instrumented run returned no trace/metrics")
			}
		})
	}
}

// The attribution report partitions the run: every component is
// non-negative, the compute residual is non-negative, and on a DDC platform
// the wire components are non-zero. Per operator, attributed time can never
// exceed the operator's elapsed time.
func TestReportComponentsSumToTotal(t *testing.T) {
	res, err := RunWorkload("Q6", "teleport", obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r == nil {
		t.Fatal("no report")
	}
	if r.TotalNs <= 0 {
		t.Fatalf("report total = %d", r.TotalNs)
	}
	for c, v := range r.Comps {
		if v < 0 {
			t.Fatalf("component %d negative: %d", c, v)
		}
	}
	if r.ComputeNs() < 0 {
		t.Fatalf("compute residual negative: %d (total %d, attributed %d)",
			r.ComputeNs(), r.TotalNs, r.Comps.TotalNs())
	}
	if r.Comps.LayerNs("net") == 0 {
		t.Fatal("teleport run attributed no wire time")
	}
	if len(r.Ops) == 0 {
		t.Fatal("report has no operator rows")
	}
	var opNs int64
	for _, o := range r.Ops {
		if o.Comps.TotalNs() > o.Ns {
			t.Fatalf("operator %s attributed %dns of %dns elapsed",
				o.Name, o.Comps.TotalNs(), o.Ns)
		}
		opNs += o.Ns
	}
	// Operators run inside the measured window; engine glue between
	// operators is the only gap.
	if opNs > r.TotalNs {
		t.Fatalf("operator time %dns exceeds run total %dns", opNs, r.TotalNs)
	}
	if res.Nanos != opNs {
		t.Fatalf("Nanos (%d) should equal summed operator time (%d)", res.Nanos, opNs)
	}

	// The rendered report must not be empty and must carry the totals.
	var buf bytes.Buffer
	r.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("report rendered empty")
	}
}

// Two same-seed instrumented runs must produce byte-identical metrics
// snapshots and valid, nesting Chrome trace JSON.
func TestMetricsAndTraceExportDeterministic(t *testing.T) {
	opts := obsOpts()
	opts.TraceCap = 1 << 16
	opts.Metrics = true
	a, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	var aj, bj bytes.Buffer
	if err := a.Metrics.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Fatal("same-seed metrics snapshots differ")
	}
	if len(a.Metrics.Counters) == 0 || len(a.Metrics.Histograms) == 0 {
		t.Fatalf("teleport run published no metrics: %v", a.Metrics)
	}

	var cj bytes.Buffer
	if err := trace.WriteChromeTrace(&cj, a.Trace); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(cj.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	spans := trace.PairSpans(a.Trace)
	var sawPushChild, sawFault bool
	for _, s := range spans {
		if s.Parent != 0 && (s.Kind == trace.KindPushQueue || s.Kind == trace.KindPushExec ||
			s.Kind == trace.KindPushSetup || s.Kind == trace.KindPushSync) {
			sawPushChild = true
		}
		if s.Kind == trace.KindRemoteFault && s.Complete {
			sawFault = true
		}
	}
	if !sawPushChild || !sawFault {
		t.Fatalf("trace lacks nested pushdown phases (%v) or fault spans (%v)",
			sawPushChild, sawFault)
	}
}

// The extended golden guarantee: arming the whole analysis layer —
// profiler, percentile extractor (exact-quantile mode included), and the
// flight recorder — changes nothing about the simulation. Same-seed runs
// with and without it report identical answers, virtual times, and fault
// counters, on clean and chaos profiles alike.
func TestAnalysisLayerDoesNotPerturbRuns(t *testing.T) {
	for _, tc := range []struct {
		name     string
		workload string
		platform string
		chaos    string
	}{
		{"clean-teleport", "Q6", "teleport", ""},
		{"clean-base", "SSSP", "base-ddc", ""},
		{"chaos-teleport", "Q6", "teleport", "chaos"},
		{"midcrash-teleport", "Q6", "teleport", "mid-crash"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := obsOpts()
			plain.ChaosProfile = tc.chaos
			armed := plain
			armed.Profiling = true
			armed.Percentiles = true
			armed.ExactQuantiles = 4096
			armed.IncidentEvents = 32

			a, err := RunWorkload(tc.workload, tc.platform, plain)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunWorkload(tc.workload, tc.platform, armed)
			if err != nil {
				t.Fatal(err)
			}
			if a.Nanos != b.Nanos {
				t.Fatalf("analysis layer perturbed virtual time: %dns (off) vs %dns (on)",
					a.Nanos, b.Nanos)
			}
			aj, _ := json.Marshal(a.Report)
			bj, _ := json.Marshal(b.Report)
			if !bytes.Equal(aj, bj) {
				t.Fatalf("attribution diverged:\noff: %s\non:  %s", aj, bj)
			}
			if tc.chaos != "" {
				if a.Fault == nil || b.Fault == nil {
					t.Fatal("chaos run missing a fault report")
				}
				// Fault counters must match; the armed run additionally
				// carries tail percentiles, so compare with those cleared.
				bf := *b.Fault
				bf.PushE2E, bf.RemoteFault, bf.PoolStall = nil, nil, nil
				af, _ := json.Marshal(a.Fault)
				bfj, _ := json.Marshal(&bf)
				if !bytes.Equal(af, bfj) {
					t.Fatalf("fault counters diverged:\noff: %s\non:  %s", af, bfj)
				}
			}
			if b.SpanProfile == nil || len(b.SpanProfile.Paths) == 0 {
				t.Fatal("armed run produced no span profile")
			}
			if len(b.Latency) == 0 {
				t.Fatal("armed run produced no latency summary")
			}
		})
	}
}

// Same-seed reruns with the full analysis layer must serialise
// byte-identical artifacts: folded stacks, incident JSONL, and the unified
// run-report JSON.
func TestAnalysisArtifactsDeterministic(t *testing.T) {
	opts := obsOpts()
	opts.ChaosProfile = "chaos"
	opts.Profiling = true
	opts.Percentiles = true
	opts.ExactQuantiles = 4096
	opts.IncidentEvents = 32

	render := func() (folded, jsonl, report []byte) {
		res, err := RunWorkload("Q6", "teleport", opts)
		if err != nil {
			t.Fatal(err)
		}
		var fb, ib, rb bytes.Buffer
		if err := res.SpanProfile.WriteFolded(&fb); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteIncidentsJSONL(&ib, res.Incidents); err != nil {
			t.Fatal(err)
		}
		if err := NewRunReport(res).WriteJSON(&rb); err != nil {
			t.Fatal(err)
		}
		return fb.Bytes(), ib.Bytes(), rb.Bytes()
	}
	f1, i1, r1 := render()
	f2, i2, r2 := render()
	if !bytes.Equal(f1, f2) {
		t.Fatal("folded stacks differ across same-seed reruns")
	}
	if !bytes.Equal(i1, i2) {
		t.Fatal("incident JSONL differs across same-seed reruns")
	}
	if !bytes.Equal(r1, r2) {
		t.Fatal("run-report JSON differs across same-seed reruns")
	}
	if len(f1) == 0 || len(r1) == 0 {
		t.Fatal("artifacts empty")
	}
	// The chaos profile's mid-run crash must have tripped the recorder.
	if len(i1) == 0 {
		t.Fatal("chaos run recorded no incidents")
	}
	// Every folded line is "path selfNs".
	for _, line := range bytes.Split(bytes.TrimSpace(f1), []byte("\n")) {
		if len(bytes.Fields(line)) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}

// The percentile surface is wired through: exact mode engages under a
// sample cap, the FaultReport carries tail pointers on chaos runs, and the
// profile's hot path agrees with the attribution report's dominant
// component.
func TestPercentileAndProfileWiring(t *testing.T) {
	opts := obsOpts()
	opts.ChaosProfile = "chaos"
	opts.Profiling = true
	opts.Percentiles = true
	opts.ExactQuantiles = 1 << 16
	opts.IncidentEvents = 16
	res, err := RunWorkload("Q6", "teleport", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latency) == 0 {
		t.Fatal("no latency summary")
	}
	sawE2E := false
	for _, ol := range res.Latency {
		if !ol.Exact {
			t.Fatalf("%s not exact despite a %d sample cap (n=%d)", ol.Name, opts.ExactQuantiles, ol.Count)
		}
		if ol.P50 > ol.P999 || ol.P999 > float64(ol.MaxNs) {
			t.Fatalf("%s quantiles inconsistent: %+v", ol.Name, ol.Percentiles)
		}
		if ol.Name == "push.e2e.ns" {
			sawE2E = true
		}
	}
	if !sawE2E {
		t.Fatal("teleport run published no push.e2e.ns histogram")
	}
	if res.Fault == nil || res.Fault.PushE2E == nil || res.Fault.RemoteFault == nil {
		t.Fatalf("fault report missing tail percentiles: %+v", res.Fault)
	}
	if res.IncidentsTotal == 0 || len(res.Incidents) == 0 {
		t.Fatal("chaos run tripped no incidents")
	}
	rr := NewRunReport(res)
	if len(rr.HotPaths) == 0 || rr.ProfileSelfNs <= 0 {
		t.Fatalf("run report has no hot paths: %+v", rr)
	}
	var buf bytes.Buffer
	rr.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("run report rendered empty")
	}
}

// A fault-free run has a nil *FaultReport; printing it must not panic.
func TestFaultReportNilString(t *testing.T) {
	var f *FaultReport
	if got := f.String(); got != "chaos: none" {
		t.Fatalf("nil FaultReport.String() = %q", got)
	}
	res, err := RunWorkload("Q6", "teleport", obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault != nil {
		t.Fatal("fault report present without chaos")
	}
	if got := res.Fault.String(); got != "chaos: none" {
		t.Fatalf("res.Fault.String() = %q", got)
	}
}
