package bench

import (
	"fmt"
	"math"

	"teleport/internal/dist"
	"teleport/internal/hw"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
)

func init() {
	register("1a", fig1a)
	register("1b", fig1b)
	register("3", fig3)
	register("12", fig12)
	register("13", fig13)
}

// fig1a reproduces Figure 1a: the benefit of a disaggregated memory pool
// over spilling to a local NVMe SSD, for memory-intensive TPC-H queries
// (paper: base DDC 9.3×, TELEPORT 39.5× speedup over the SSD baseline).
func fig1a(opts Options) *Table {
	t := &Table{
		Figure: "Fig 1a",
		Title:  "Query speedup over NVMe-SSD spill (geomean of Q9/Q3/Q6)",
		Header: []string{"platform", "geomean-speedup"},
	}
	queries := []string{"Q9", "Q3", "Q6"}
	plats := []platform{platLinuxSSD, platBase, platTeleport}
	var jobs []func() sim.Time
	for _, q := range queries {
		w := findWorkload(q)
		for _, p := range plats {
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: p}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	geo := func(off int) float64 {
		prod := 1.0
		for qi := range queries {
			prod *= ratio(times[qi*len(plats)], times[qi*len(plats)+off])
		}
		return math.Cbrt(prod)
	}
	t.AddRow("NVMe SSD (Linux)", fx(1))
	t.AddRow("Base DDC", fx(geo(1)))
	t.AddRow("TELEPORT", fx(geo(2)))
	t.Notes = append(t.Notes, "paper: Base DDC 9.3x, TELEPORT 39.5x")
	return t
}

// fig1b reproduces Figure 1b: the cost of scaling — average TPC-H execution
// time normalised to a monolithic server with the same resources (paper:
// SparkSQL 1.2×, Vertica 2.3×, MonetDB on base DDC 5.4×, TELEPORT 1.8×).
// Compute-local memory is 10% of the working set, as in the paper's setup.
func fig1b(opts Options) *Table {
	t := &Table{
		Figure: "Fig 1b",
		Title:  "Cost of scaling (avg TPC-H execution time, normalised to local)",
		Header: []string{"system", "cost-of-scaling"},
	}
	queries := []string{"Q9", "Q3", "Q6"}
	var jobs []func() runOut
	for _, q := range queries {
		w := findWorkload(q)
		specs := []runSpec{
			{platform: platLocal},
			{platform: platBase, cacheFrac: 0.10},
			{platform: platTeleport, cacheFrac: 0.10},
		}
		for _, spec := range specs {
			jobs = append(jobs, func() runOut { return run(w, opts, spec) })
		}
	}
	outs := parmap(opts, jobs)
	var sumLocal, sumBase, sumTele sim.Time
	var bytes int64
	for qi := range queries {
		local, base, tele := outs[qi*3], outs[qi*3+1], outs[qi*3+2]
		sumLocal += local.Time
		sumBase += base.Time
		sumTele += tele.Time
		bytes = local.Proc.Space.Allocated()
	}
	cfg := hw.Testbed()
	wl := dist.Workload{Bytes: bytes, LocalSeconds: (sumLocal / 3).Seconds()}
	t.AddRow("SparkSQL (distributed model)", fmt.Sprintf("%.1fx", dist.SparkSQL().CostOfScaling(wl, &cfg)))
	t.AddRow("Vertica (distributed model)", fmt.Sprintf("%.1fx", dist.Vertica().CostOfScaling(wl, &cfg)))
	t.AddRow("coldb (Base DDC)", fmt.Sprintf("%.1fx", ratio(sumBase, sumLocal)))
	t.AddRow("coldb (TELEPORT)", fmt.Sprintf("%.1fx", ratio(sumTele, sumLocal)))
	t.Notes = append(t.Notes, "paper: SparkSQL 1.2x, Vertica 2.3x, MonetDB base DDC 5.4x, TELEPORT 1.8x")
	return t
}

// fig3 reproduces Figure 3: the DDC performance overhead of all eight
// workloads against a monolithic server (paper: 5×–52.4×).
func fig3(opts Options) *Table {
	t := &Table{
		Figure: "Fig 3",
		Title:  "Base-DDC overhead vs local execution",
		Header: []string{"system", "workload", "local(s)", "ddc(s)", "slowdown"},
	}
	workloads := allWorkloads()
	var jobs []func() sim.Time
	for _, w := range workloads {
		for _, p := range []platform{platLocal, platBase} {
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: p}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	for i, w := range workloads {
		local, base := times[i*2], times[i*2+1]
		t.AddRow(w.System, w.Name, fm(local), fm(base), fx(ratio(base, local)))
	}
	t.Notes = append(t.Notes, "paper: slowdowns range 5x to 52.4x; Q9 worst")
	return t
}

// fig12 reproduces Figure 12: pushing Q_filter's three operators (paper:
// projection 5.5×, selection 2.4×, aggregation 2.1× over base DDC).
func fig12(opts Options) *Table {
	t := &Table{
		Figure: "Fig 12",
		Title:  "Q_filter per-operator times (push all three operators)",
		Header: []string{"operator", "local(s)", "base-ddc(s)", "teleport(s)", "speedup-vs-base"},
	}
	w := tpchWorkload("QFilter", tpch.QFilterOps, func(ex *profile.Exec, d *tpch.Data) {
		tpch.QFilter(ex, d, 1460)
	})
	outs := parmap(opts, []func() runOut{
		func() runOut { return run(w, opts, runSpec{platform: platLocal}) },
		func() runOut { return run(w, opts, runSpec{platform: platBase}) },
		func() runOut { return run(w, opts, runSpec{platform: platTeleport}) },
	})
	local, base, tele := outs[0], outs[1], outs[2]

	find := func(prof []profile.OpStat, name string) sim.Time {
		for _, o := range prof {
			if o.Name == name {
				return o.Time
			}
		}
		return 0
	}
	for _, op := range tpch.QFilterOps {
		lt, bt, tt := find(local.Profile, op), find(base.Profile, op), find(tele.Profile, op)
		t.AddRow(op, fm(lt), fm(bt), fm(tt), fx(ratio(bt, tt)))
	}
	t.Notes = append(t.Notes, "paper: projection 5.5x, selection 2.4x, aggregation 2.1x over base DDC")
	return t
}

// fig13 reproduces Figure 13: TELEPORT's end-to-end speedups over the base
// DDC for all eight workloads (paper: Q9 29.1×, Q3 3.2×, Q6 3.8×, SSSP 3×,
// RE 2.8×, CC 2×, WC 2.5×, Grep 4.7×).
func fig13(opts Options) *Table {
	t := &Table{
		Figure: "Fig 13",
		Title:  "Execution time normalised to local; TELEPORT speedup over base DDC",
		Header: []string{"system", "workload", "base/local", "teleport/local", "speedup"},
	}
	workloads := allWorkloads()
	var jobs []func() sim.Time
	for _, w := range workloads {
		for _, p := range []platform{platLocal, platBase, platTeleport} {
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: p}).Time
			})
		}
	}
	times := parmap(opts, jobs)
	for i, w := range workloads {
		local, base, tele := times[i*3], times[i*3+1], times[i*3+2]
		t.AddRow(w.System, w.Name,
			fx(ratio(base, local)),
			fx(ratio(tele, local)),
			fx(ratio(base, tele)))
	}
	t.Notes = append(t.Notes,
		"paper speedups: Q9 29.1x, Q3 3.2x, Q6 3.8x, SSSP 3x, RE 2.8x, CC 2x, WC 2.5x, Grep 4.7x")
	return t
}
