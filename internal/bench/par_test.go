package bench

import (
	"reflect"
	"strings"
	"testing"
)

// renderTable flattens a table to one comparable string.
func renderTable(t *Table) string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// TestParallelDeterminism is the contract behind the host-parallel harness:
// a figure regenerated with data points fanned out across host workers is
// byte-identical to the sequential run — tables, virtual times, and fault
// counters — both fault-free and under chaos injection. Run it with -race
// to also certify the runs share no mutable state.
func TestParallelDeterminism(t *testing.T) {
	for _, chaos := range []string{"", "crashy-pool"} {
		name := "clean"
		if chaos != "" {
			name = "chaos-" + chaos
		}
		t.Run(name, func(t *testing.T) {
			opts := smallOpts()
			opts.ChaosProfile = chaos

			seqOpts := opts
			seqOpts.Parallel = 1
			parOpts := opts
			parOpts.Parallel = 4

			// One full figure: Q_filter across local / base DDC / TELEPORT
			// exercises paging, pushdown, and the per-operator profile.
			seqTab, err := Run("12", seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			parTab, err := Run("12", parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if s, p := renderTable(seqTab), renderTable(parTab); s != p {
				t.Errorf("figure 12 differs between sequential and parallel runs:\n--- sequential\n%s--- parallel\n%s", s, p)
			}

			// Workload-level check: exact virtual nanoseconds and the full
			// fault-recovery counter set.
			seqRes, err := RunWorkload("Q6", "teleport", seqOpts)
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := RunWorkloads([]string{"Q6", "Q6"}, "teleport", parOpts)
			if err != nil {
				t.Fatal(err)
			}
			for i, pr := range parRes {
				if pr.Nanos != seqRes.Nanos {
					t.Errorf("parallel run %d: %d virtual ns, sequential %d", i, pr.Nanos, seqRes.Nanos)
				}
				if !reflect.DeepEqual(pr.Fault, seqRes.Fault) {
					t.Errorf("parallel run %d fault counters diverge:\n%v\nvs\n%v", i, pr.Fault, seqRes.Fault)
				}
			}

			// Intra-run parallelism: the same multi-machine simulation with
			// its domains drained by 1 vs 4 vs 8 host workers must produce a
			// deep-equal result — makespan, per-node clocks, fault counters,
			// even the baton-handoff count.
			clOpts := opts
			clOpts.SimWorkers = 1
			base, err := RunCluster(clOpts, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{4, 8} {
				clOpts.SimWorkers = w
				got, err := RunCluster(clOpts, 4, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("cluster run with %d sim workers diverged from sequential:\n%+v\nvs\n%+v", w, got, base)
				}
			}
		})
	}
}

// TestRunAllParallelOrder checks RunAll's ordering contract: with figures
// racing on the worker pool, the returned slice still follows registration
// order. Workloads are tiny — this certifies plumbing, not numbers.
func TestRunAllParallelOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	opts := Options{Scale: 0.1, GraphNV: 2000, Words: 8000, Seed: 1, CacheFrac: 0.02, Parallel: 4}
	tables := RunAll(opts)
	ids := Figures()
	if len(tables) != len(ids) {
		t.Fatalf("got %d tables, want %d", len(tables), len(ids))
	}
	for i, tab := range tables {
		if tab == nil {
			t.Fatalf("table %d (figure %s) is nil", i, ids[i])
		}
		if !strings.Contains(tab.Figure, ids[i]) {
			t.Errorf("table %d is %q, want figure %s", i, tab.Figure, ids[i])
		}
	}
}
