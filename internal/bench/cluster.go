package bench

import (
	"fmt"

	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
)

// Multi-machine cluster workload: a BSP-style distributed scan-aggregate
// across n disaggregated machines, one sim.Domain each, exercising the
// scheduler's conservative parallel execution. Every machine scans its own
// partition through the full paging stack (remote faults, pool stalls,
// chaos faults), then the partials converge on machine 0, which merges and
// broadcasts the next superstep. All cross-machine interaction goes through
// ddc.Cluster.Send — a fabric charge plus a lookahead-respecting Post — so
// virtual times are bit-identical at every Options.SimWorkers setting.

// ClusterSyncLatency is the declared minimum cross-machine message latency
// of the cluster workload: one BSP exchange, software path included. It is
// well above the fabric's 1.2µs wire floor (ddc.NewCluster checks), which
// buys wide conservative windows — few barriers per superstep — without
// affecting fidelity for a workload that only communicates at supersteps.
const ClusterSyncLatency = 50 * sim.Microsecond

// clusterRowFactor scales the per-machine partition: rows = factor·Scale.
const clusterRowFactor = 240000

// ClusterResult is the deterministic outcome of a cluster run: every field
// is a pure function of (Options, machines, rounds) — host worker counts
// never leak in. TestParallelDeterminism compares it across SimWorkers.
type ClusterResult struct {
	Machines int
	Rounds   int
	Rows     int // per-machine partition rows

	Nanos     int64   // virtual makespan
	NodeNanos []int64 // per-machine coordinator thread finish times
	Sum       uint64  // the distributed aggregate (verified against host)

	Switches    int64 // scheduler baton handoffs
	SyncMsgs    int64 // cross-machine messages (ClassSync), all machines
	SyncRetries int64 // chaos-induced retransmissions of those
	PoolStalls  int64 // paging operations that waited out a pool outage
}

// RunCluster executes the distributed scan-aggregate on `machines` machines
// for `rounds` supersteps. Chaos options apply per machine with seeds
// derived from the machine index, so every machine has an independent but
// deterministic fault schedule.
func RunCluster(opts Options, machines, rounds int) (ClusterResult, error) {
	if machines < 1 || rounds < 1 {
		return ClusterResult{}, fmt.Errorf("bench: cluster needs machines ≥ 1 and rounds ≥ 1, got %d/%d", machines, rounds)
	}
	rows := int(clusterRowFactor * opts.Scale)
	if rows < 4096 {
		rows = 4096
	}
	frac := opts.CacheFrac
	if frac == 0 {
		frac = Defaults().CacheFrac
	}
	var chaosProf fault.Profile
	if opts.ChaosProfile != "" && opts.ChaosProfile != "none" {
		var err error
		if chaosProf, err = fault.ByName(opts.ChaosProfile); err != nil {
			return ClusterResult{}, err
		}
	}

	s := sim.NewScheduler()
	s.SetWorkers(workersFor(opts.SimWorkers))
	c, err := ddc.NewCluster(s, machines, ClusterSyncLatency, func(i int) ddc.Config {
		cfg := ddc.BaseDDC(cacheBytes(int64(rows)*8, frac))
		cfg.PoolShards = opts.PoolShards
		cfg.Replicas = opts.Replicas
		cfg.WriteQuorum = opts.WriteQuorum
		return cfg
	})
	if err != nil {
		return ClusterResult{}, err
	}
	if chaosProf.Name != "" {
		chaosSeed := opts.ChaosSeed
		if chaosSeed == 0 {
			chaosSeed = opts.Seed
		}
		for i, m := range c.Machines {
			m.AttachFault(fault.NewPlan(chaosProf, chaosSeed+int64(i)*1000003))
		}
	}

	// Build each machine's partition with free generator writes, and
	// compute the expected per-superstep aggregate host-side for the
	// end-to-end answer check.
	addrs := make([]mem.Addr, machines)
	var expRound uint64
	for i, p := range c.Procs {
		rng := sim.NewRNG(opts.Seed).Derive(uint64(i + 1))
		a := p.Space.Alloc(int64(rows)*8, "partition")
		addrs[i] = a
		for r := 0; r < rows; r++ {
			v := rng.Uint64() >> 16 // keep sums far from overflow
			p.Space.WriteU64(a+mem.Addr(r)*8, v)
			if v&7 != 0 {
				expRound += v
			}
		}
		p.ResizeCache(cacheBytes(p.Space.Allocated(), frac))
	}

	nodes := make([]*sim.Thread, machines)
	slots := make([]uint64, machines) // worker partials, HB via the barrier
	var total uint64
	for i := range nodes {
		i := i
		nodes[i] = c.Domains[i].Spawn(fmt.Sprintf("node-%d", i), 0, func(th *sim.Thread) {
			env := c.Procs[i].NewEnv(th)
			var buf [64]uint64
			for r := 0; r < rounds; r++ {
				var part uint64
				for off := 0; off < rows; off += len(buf) {
					n := len(buf)
					if rows-off < n {
						n = rows - off
					}
					env.ReadU64s(addrs[i]+mem.Addr(off)*8, buf[:n])
					for _, v := range buf[:n] {
						if v&7 != 0 {
							part += v
						}
					}
				}
				if i == 0 {
					// Collect the other machines' partials, merge, then
					// broadcast the next superstep.
					for k := 1; k < machines; k++ {
						th.Block()
					}
					round := part
					for k := 1; k < machines; k++ {
						round += slots[k]
					}
					total += round
					for k := 1; k < machines; k++ {
						c.Send(th, 0, nodes[k], 16)
					}
				} else {
					slots[i] = part
					c.Send(th, i, nodes[0], 16)
					th.Block() // superstep barrier: wait for the broadcast
				}
			}
		})
	}

	end := s.Run()
	if want := expRound * uint64(rounds); total != want {
		return ClusterResult{}, fmt.Errorf("bench: cluster aggregate %d, want %d — paging stack corrupted data", total, want)
	}
	res := ClusterResult{
		Machines: machines, Rounds: rounds, Rows: rows,
		Nanos: int64(end), Sum: total, Switches: s.Switches(),
	}
	for i, m := range c.Machines {
		res.NodeNanos = append(res.NodeNanos, int64(nodes[i].Now()))
		st := m.Fabric.Stats(netmodel.ClassSync)
		res.SyncMsgs += st.Msgs
		res.SyncRetries += st.Retries
		res.PoolStalls += m.PoolStalls
	}
	return res, nil
}

// Fprint renders the deterministic cluster report. Host-side measurements
// (wall clock, worker count) are deliberately absent: the bytes written
// here must be identical at every -sim-workers setting, and CI compares
// them.
func (r ClusterResult) Fprint(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "cluster: %d machines × %d rounds × %d rows\n", r.Machines, r.Rounds, r.Rows)
	fmt.Fprintf(w, "  makespan   %.6f s (virtual)\n", float64(r.Nanos)/1e9)
	fmt.Fprintf(w, "  aggregate  %d\n", r.Sum)
	for i, ns := range r.NodeNanos {
		fmt.Fprintf(w, "  node-%-2d    %.6f s\n", i, float64(ns)/1e9)
	}
	fmt.Fprintf(w, "  switches   %d\n", r.Switches)
	fmt.Fprintf(w, "  sync msgs  %d (%d retries)\n", r.SyncMsgs, r.SyncRetries)
	fmt.Fprintf(w, "  pool stalls %d\n", r.PoolStalls)
}
