package bench

import (
	"fmt"
	"math"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/profile"
	"teleport/internal/sim"
	"teleport/internal/tpch"
)

func init() {
	register("A6", figAvailability)
}

// availPoint is one availability cell: Q6 on a sharded pool under per-shard
// outages, with the answer retained for the correctness column.
type availPoint struct {
	ans       uint64
	elapsed   sim.Time
	failovers int64
	resync    int64
	stalls    int64
	fallbacks int64
	degraded  sim.Time // union of all outage windows through the run
}

// figAvailability is an extension for the sharded pool: Q6 on TELEPORT over
// a 4-shard memory pool, sweeping the replication factor against the
// per-shard outage rate. Every cell must produce the fault-free answer; what
// varies is how — replicas ≥ 2 absorb single-shard outages as failover reads
// in degraded mode, while an unreplicated pool must stall for restarts (or
// shed pushdowns to local execution) whenever a shard holding resident
// pages is down.
func figAvailability(opts Options) *Table {
	t := &Table{
		Figure: "Ext A6",
		Title:  "Availability under shard outages: Q6 on a 4-shard pool, replicas × outage rate",
		Header: []string{"replicas", "shard-outage", "correct", "failover-reads", "resync-pages", "stalls", "fallbacks", "degraded", "slowdown"},
	}
	const shards = 4
	rates := []struct {
		name   string
		meanUp sim.Time
	}{
		{"light (~2.4%)", 2 * sim.Millisecond},
		{"heavy (~9.1%)", 500 * sim.Microsecond},
	}
	replicas := []int{1, 2, 3}

	runCell := func(reps int, prof *fault.Profile) availPoint {
		cfg := ddc.BaseDDC(1 << 20)
		cfg.PoolShards = shards
		cfg.Replicas = reps
		m := ddc.MustMachine(cfg)
		if prof != nil {
			m.AttachFault(fault.NewPlan(*prof, opts.Seed))
		}
		p := m.NewProcess()
		th := sim.NewThread("A6")
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: opts.Scale / 4, Seed: opts.Seed})
		ws := p.Space.Allocated()
		p.ResizeCache(cacheBytes(ws, 0.02))
		p.ResizePool(ws / 2)
		rt := core.NewRuntime(p, 1)
		ex := profile.NewExec(th, p, rt)
		ex.Push(q6Push...)
		ans := tpch.Q6(ex, d, 730)
		end := th.Now()
		pt := availPoint{
			ans:       math.Float64bits(ans),
			elapsed:   ex.Total(),
			fallbacks: rt.Stats().LocalFallbacks,
		}
		var all []fault.Window
		for s := 0; s < shards; s++ {
			if m.ShardStats != nil {
				st := m.ShardStats[s]
				pt.failovers += st.FailoverReads
				pt.resync += st.ResyncPages
				pt.stalls += st.Stalls
			}
			all = append(all, m.Fault.ShardWindowsThrough(s, end)...)
		}
		all = append(all, m.Fault.WindowsThrough(end)...)
		pt.degraded = fault.UnionDowntime(all, end)
		return pt
	}

	jobs := []func() availPoint{func() availPoint { return runCell(1, nil) }}
	for _, rate := range rates {
		prof := fault.Profile{
			Name:          fmt.Sprintf("shard-flap-%v", rate.meanUp),
			ShardMeanUp:   rate.meanUp,
			ShardMeanDown: 50 * sim.Microsecond,
		}
		for _, reps := range replicas {
			prof := prof
			reps := reps
			jobs = append(jobs, func() availPoint { return runCell(reps, &prof) })
		}
	}
	pts := parmap(opts, jobs)
	base := pts[0]
	i := 1
	for _, rate := range rates {
		for _, reps := range replicas {
			pt := pts[i]
			i++
			correct := "yes"
			if pt.ans != base.ans {
				correct = "NO"
			}
			t.AddRow(fmt.Sprintf("%d", reps), rate.name, correct,
				fmt.Sprintf("%d", pt.failovers), fmt.Sprintf("%d", pt.resync),
				fmt.Sprintf("%d", pt.stalls), fmt.Sprintf("%d", pt.fallbacks),
				fmt.Sprintf("%.1f%%", 100*float64(pt.degraded)/float64(pt.elapsed)),
				fx(ratio(pt.elapsed, base.elapsed)))
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: answers are identical in every cell (faults never change answers); replication converts shard-outage stalls into failover reads",
		"degraded = fraction of virtual time at least one shard (or the controller) was down; slowdown vs the fault-free run")
	return t
}
