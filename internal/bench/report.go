package bench

import (
	"fmt"
	"io"
	"sort"

	"teleport/internal/metrics"
	"teleport/internal/sim"
)

// Report is the per-run time-attribution breakdown: where the run's virtual
// time went — compute versus fault stalls versus wire versus controller
// queueing versus the SSD — per layer and per operator. It is derived from
// the machine's always-on TimeSet, so producing it costs no virtual time and
// does not perturb the run.
type Report struct {
	Workload string `json:"workload"`
	Platform string `json:"platform"`

	// TotalNs is the virtual time the driving thread spent executing the
	// workload (load/build excluded). Comps partitions it exactly:
	// TotalNs − Comps.TotalNs() is pure CPU/DRAM compute.
	TotalNs int64           `json:"total_ns"`
	Comps   metrics.TimeSet `json:"components_ns"`

	Ops []OpRow `json:"ops"`
}

// OpRow is one operator's share of the run.
type OpRow struct {
	Name        string          `json:"name"`
	Ns          int64           `json:"ns"`
	RemoteBytes int64           `json:"remote_bytes"`
	Pushed      bool            `json:"pushed"`
	Comps       metrics.TimeSet `json:"components_ns"`
}

// ComputeNs returns the run's compute residual.
func (r *Report) ComputeNs() int64 { return r.TotalNs - r.Comps.TotalNs() }

// newReport assembles the attribution report for one execution.
func newReport(workload, platform string, out runOut) *Report {
	r := &Report{
		Workload: workload,
		Platform: platform,
		TotalNs:  out.Attr.TotalNs,
		Comps:    out.Attr.Comps,
	}
	for _, o := range out.Profile {
		r.Ops = append(r.Ops, OpRow{
			Name:        o.Name,
			Ns:          int64(o.Time),
			RemoteBytes: o.RemoteByte,
			Pushed:      o.Pushed,
			Comps:       o.Attr,
		})
	}
	return r
}

// Fprint renders the report as two tables: the run-level component
// breakdown (compute first, then every non-zero component grouped by layer)
// and the per-operator rows.
func (r *Report) Fprint(w io.Writer) {
	secs := func(ns int64) string { return fmt.Sprintf("%.4f", sim.Time(ns).Seconds()) }
	share := func(ns int64) string {
		if r.TotalNs <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(ns)/float64(r.TotalNs))
	}

	t := &Table{
		Figure: "report",
		Title:  fmt.Sprintf("time attribution: %s on %s (total %ss)", r.Workload, r.Platform, secs(r.TotalNs)),
		Header: []string{"layer", "component", "time(s)", "share"},
	}
	t.AddRow("cpu", "compute (residual)", secs(r.ComputeNs()), share(r.ComputeNs()))
	layers := []string{"net", "ssd", "paging", "pushdown"}
	for _, layer := range layers {
		for c := metrics.Comp(0); c < metrics.NumComps; c++ {
			if c.Layer() != layer || r.Comps[c] == 0 {
				continue
			}
			t.AddRow(layer, c.String(), secs(r.Comps[c]), share(r.Comps[c]))
		}
		if n := r.Comps.LayerNs(layer); n > 0 {
			t.AddRow(layer, "(total)", secs(n), share(n))
		}
	}
	t.Fprint(w)

	if len(r.Ops) == 0 {
		return
	}
	ot := &Table{
		Figure: "report",
		Title:  "per-operator attribution",
		Header: []string{"operator", "time(s)", "pushed", "remote(MB)", "compute(s)", "net(s)", "ssd(s)", "paging(s)", "pushdown(s)"},
	}
	for _, o := range r.Ops {
		pushed := ""
		if o.Pushed {
			pushed = "push"
		}
		ot.AddRow(o.Name, secs(o.Ns), pushed,
			fmt.Sprintf("%.1f", float64(o.RemoteBytes)/(1<<20)),
			secs(o.Ns-o.Comps.TotalNs()),
			secs(o.Comps.LayerNs("net")), secs(o.Comps.LayerNs("ssd")),
			secs(o.Comps.LayerNs("paging")), secs(o.Comps.LayerNs("pushdown")))
	}
	ot.Fprint(w)
}

// SortedComps returns the non-zero components by descending time (handy for
// summaries and tests).
func (r *Report) SortedComps() []metrics.Comp {
	var comps []metrics.Comp
	for c := metrics.Comp(0); c < metrics.NumComps; c++ {
		if r.Comps[c] != 0 {
			comps = append(comps, c)
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if r.Comps[comps[i]] != r.Comps[comps[j]] {
			return r.Comps[comps[i]] > r.Comps[comps[j]]
		}
		return comps[i] < comps[j]
	})
	return comps
}
