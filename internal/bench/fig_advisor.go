package bench

import (
	"strings"

	"teleport/internal/advisor"
	"teleport/internal/hw"
)

func init() {
	register("A1", figAdvisor)
}

// figAdvisor is an extension beyond the paper: §5.1/§7.4 leave automatic
// pushdown selection as future work; internal/advisor implements it. This
// ablation compares, for each TPC-H query, the hand-picked operator sets
// the paper's methodology produces against the advisor's threshold rule
// and cost model, and against pushing everything.
func figAdvisor(opts Options) *Table {
	t := &Table{
		Figure: "Ext A1",
		Title:  "Automatic pushdown selection (extension; paper future work §5.1)",
		Header: []string{"query", "strategy", "ops-pushed", "time(s)", "speedup-vs-base"},
	}
	hwCfg := hw.Testbed()
	for _, q := range []string{"Q9", "Q3", "Q6"} {
		w := findWorkload(q)
		base := run(w, opts, runSpec{platform: platBase})

		// The advisor profiles the base-DDC run, like a DBA would.
		threshCfg := advisor.DefaultConfig()
		threshCfg.ThresholdRMps = 80_000 // the paper's 80K RM/s split (§7.4)
		threshPush, _ := advisor.Recommend(base.Profile, threshCfg, &hwCfg)

		costCfg := advisor.DefaultConfig()
		costCfg.TableEntries = base.Proc.Space.Pages()
		costPush, _ := advisor.Recommend(base.Profile, costCfg, &hwCfg)

		allOps := make([]string, 0, len(base.Profile))
		for _, o := range base.Profile {
			allOps = append(allOps, o.Name)
		}

		strategies := []struct {
			name string
			ops  []string
		}{
			{"hand-picked (paper §7.1)", w.PushOps},
			{"advisor threshold", threshPush},
			{"advisor cost model", costPush},
			{"push everything", allOps},
		}
		t.AddRow(q, "base DDC (none)", "0", fm(base.Time), fx(1))
		for _, s := range strategies {
			var tm = base.Time
			if len(s.ops) > 0 {
				tm = run(w, opts, runSpec{platform: platTeleport, pushOps: s.ops}).Time
			}
			t.AddRow("", s.name,
				strings.Join(shorten(s.ops), ","), fm(tm), fx(ratio(base.Time, tm)))
		}
	}
	t.Notes = append(t.Notes,
		"the advisor selects from the base-DDC profile using §7.4's RM/s metric or the hardware cost model")
	return t
}

// shorten abbreviates operator names for the table.
func shorten(ops []string) []string {
	out := make([]string, len(ops))
	for i, o := range ops {
		if len(o) > 4 {
			o = o[:4]
		}
		out[i] = o
	}
	return out
}
