package bench

import (
	"strings"

	"teleport/internal/advisor"
	"teleport/internal/hw"
	"teleport/internal/sim"
)

func init() {
	register("A1", figAdvisor)
}

// figAdvisor is an extension beyond the paper: §5.1/§7.4 leave automatic
// pushdown selection as future work; internal/advisor implements it. This
// ablation compares, for each TPC-H query, the hand-picked operator sets
// the paper's methodology produces against the advisor's threshold rule
// and cost model, and against pushing everything.
func figAdvisor(opts Options) *Table {
	t := &Table{
		Figure: "Ext A1",
		Title:  "Automatic pushdown selection (extension; paper future work §5.1)",
		Header: []string{"query", "strategy", "ops-pushed", "time(s)", "speedup-vs-base"},
	}
	hwCfg := hw.Testbed()
	queries := []string{"Q9", "Q3", "Q6"}

	// Stage 1: the base-DDC profiling runs (the advisor profiles these,
	// like a DBA would). Everything downstream depends on the profiles.
	var baseJobs []func() runOut
	for _, q := range queries {
		w := findWorkload(q)
		baseJobs = append(baseJobs, func() runOut {
			return run(w, opts, runSpec{platform: platBase})
		})
	}
	bases := parmap(opts, baseJobs)

	// Stage 2: derive each query's strategies and fan their runs out.
	type strategy struct {
		name string
		ops  []string
	}
	perQuery := make([][]strategy, len(queries))
	var jobs []func() sim.Time
	jobIdx := make([][]int, len(queries)) // index into times, -1 = reuse base
	for qi, q := range queries {
		w := findWorkload(q)
		base := bases[qi]

		threshCfg := advisor.DefaultConfig()
		threshCfg.ThresholdRMps = 80_000 // the paper's 80K RM/s split (§7.4)
		threshPush, _ := advisor.Recommend(base.Profile, threshCfg, &hwCfg)

		costCfg := advisor.DefaultConfig()
		costCfg.TableEntries = base.Proc.Space.Pages()
		costPush, _ := advisor.Recommend(base.Profile, costCfg, &hwCfg)

		allOps := make([]string, 0, len(base.Profile))
		for _, o := range base.Profile {
			allOps = append(allOps, o.Name)
		}

		perQuery[qi] = []strategy{
			{"hand-picked (paper §7.1)", w.PushOps},
			{"advisor threshold", threshPush},
			{"advisor cost model", costPush},
			{"push everything", allOps},
		}
		for _, s := range perQuery[qi] {
			if len(s.ops) == 0 {
				jobIdx[qi] = append(jobIdx[qi], -1)
				continue
			}
			ops := s.ops
			jobIdx[qi] = append(jobIdx[qi], len(jobs))
			jobs = append(jobs, func() sim.Time {
				return run(w, opts, runSpec{platform: platTeleport, pushOps: ops}).Time
			})
		}
	}
	times := parmap(opts, jobs)

	for qi, q := range queries {
		base := bases[qi]
		t.AddRow(q, "base DDC (none)", "0", fm(base.Time), fx(1))
		for si, s := range perQuery[qi] {
			tm := base.Time
			if j := jobIdx[qi][si]; j >= 0 {
				tm = times[j]
			}
			t.AddRow("", s.name,
				strings.Join(shorten(s.ops), ","), fm(tm), fx(ratio(base.Time, tm)))
		}
	}
	t.Notes = append(t.Notes,
		"the advisor selects from the base-DDC profile using §7.4's RM/s metric or the hardware cost model")
	return t
}

// shorten abbreviates operator names for the table.
func shorten(ops []string) []string {
	out := make([]string, len(ops))
	for i, o := range ops {
		if len(o) > 4 {
			o = o[:4]
		}
		out[i] = o
	}
	return out
}
