package netmodel

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the concrete wire format of the pushdown RPC (§3.2 ❷):
// the function pointer, the argument pointer, the flags word, the inline
// argument bytes, and the compressed resident-page list (RLE or, when
// permissions fragment badly, a dense bitmap — see resident.go), all packed
// into one message. §6's observation — that compressing the list makes the
// whole request fit a single RDMA message — is checked against
// MaxRDMAMessage below.

// MaxRDMAMessage is the registered RPC buffer size (the LITE-style
// framework pre-allocates fixed buffers; one message must fit).
const MaxRDMAMessage = 64 << 10

// PushdownRequest is the request the compute kernel sends to the memory
// controller.
type PushdownRequest struct {
	Fn    uint64 // function pointer in the shared address space
	Arg   uint64 // argument-vector pointer
	Flags uint32
	// ArgInline carries small by-value arguments (the arg pointer's
	// transitive closure stays in the shared space).
	ArgInline []byte
	// Resident is the RLE-compressed resident-page list with permissions.
	Resident []PageRun
}

const pushReqFixedBytes = 8 + 8 + 4 + 4 // fn, arg, flags, inline length

// Marshal packs the request.
func (r *PushdownRequest) Marshal() ([]byte, error) {
	if len(r.ArgInline) > MaxRDMAMessage/2 {
		return nil, fmt.Errorf("netmodel: inline argument too large (%d bytes)", len(r.ArgInline))
	}
	buf := make([]byte, pushReqFixedBytes, pushReqFixedBytes+len(r.ArgInline)+ResidentWireSize(r.Resident))
	binary.LittleEndian.PutUint64(buf[0:], r.Fn)
	binary.LittleEndian.PutUint64(buf[8:], r.Arg)
	binary.LittleEndian.PutUint32(buf[16:], r.Flags)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(r.ArgInline)))
	buf = append(buf, r.ArgInline...)
	buf = append(buf, MarshalResident(r.Resident)...)
	if len(buf) > MaxRDMAMessage {
		return nil, fmt.Errorf("netmodel: pushdown request %d bytes exceeds the %d-byte RDMA buffer",
			len(buf), MaxRDMAMessage)
	}
	return buf, nil
}

// UnmarshalPushdownRequest parses a request.
func UnmarshalPushdownRequest(buf []byte) (*PushdownRequest, error) {
	if len(buf) < pushReqFixedBytes {
		return nil, errors.New("netmodel: short pushdown request")
	}
	r := &PushdownRequest{
		Fn:    binary.LittleEndian.Uint64(buf[0:]),
		Arg:   binary.LittleEndian.Uint64(buf[8:]),
		Flags: binary.LittleEndian.Uint32(buf[16:]),
	}
	inlineLen := int(binary.LittleEndian.Uint32(buf[20:]))
	rest := buf[pushReqFixedBytes:]
	if len(rest) < inlineLen {
		return nil, errors.New("netmodel: truncated inline argument")
	}
	if inlineLen > 0 {
		r.ArgInline = append([]byte(nil), rest[:inlineLen]...)
	}
	runs, err := UnmarshalResident(rest[inlineLen:])
	if err != nil {
		return nil, err
	}
	r.Resident = runs
	return r, nil
}

// PushdownResponse is the completion the memory controller returns (§3.2
// ❼): status, an optional rethrown-exception payload.
type PushdownResponse struct {
	Status    uint32 // 0 = ok, 1 = exception, 2 = killed
	Exception []byte
}

// Response status codes.
const (
	StatusOK uint32 = iota
	StatusException
	StatusKilled
)

// Marshal packs the response.
func (r *PushdownResponse) Marshal() []byte {
	buf := make([]byte, 8+len(r.Exception))
	binary.LittleEndian.PutUint32(buf[0:], r.Status)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(r.Exception)))
	copy(buf[8:], r.Exception)
	return buf
}

// UnmarshalPushdownResponse parses a response.
func UnmarshalPushdownResponse(buf []byte) (*PushdownResponse, error) {
	if len(buf) < 8 {
		return nil, errors.New("netmodel: short pushdown response")
	}
	r := &PushdownResponse{Status: binary.LittleEndian.Uint32(buf[0:])}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if len(buf) < 8+n {
		return nil, errors.New("netmodel: truncated exception payload")
	}
	if n > 0 {
		r.Exception = append([]byte(nil), buf[8:8+n]...)
	}
	return r, nil
}
