package netmodel

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"teleport/internal/hw"
	"teleport/internal/sim"
)

func testFabric() (*Fabric, *sim.Thread) {
	cfg := hw.Testbed()
	return New(&cfg), sim.NewThread("net-test")
}

func TestSendChargesLatencyPlusBandwidth(t *testing.T) {
	f, th := testFabric()
	f.Send(th, 4096, ClassPageFault)
	want := f.Config().MsgTime(4096)
	if th.Now() != want {
		t.Fatalf("Send charged %v, want %v", th.Now(), want)
	}
	if s := f.Stats(ClassPageFault); s.Msgs != 1 || s.Bytes != 4096 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRoundTripCountsBothMessages(t *testing.T) {
	f, th := testFabric()
	f.RoundTrip(th, 100, 4096, ClassPushdown)
	if s := f.Stats(ClassPushdown); s.Msgs != 2 || s.Bytes != 4196 {
		t.Fatalf("stats = %+v", s)
	}
	if th.Now() <= 0 {
		t.Fatal("round trip charged nothing")
	}
}

func TestAsyncCountsButDoesNotCharge(t *testing.T) {
	f, th := testFabric()
	cost := f.Async(4096, ClassWriteback)
	if th.Now() != 0 {
		t.Fatal("Async must not charge the thread")
	}
	if cost != f.Config().MsgTime(4096) {
		t.Fatalf("Async cost = %v", cost)
	}
	if s := f.Stats(ClassWriteback); s.Msgs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTotalAndReset(t *testing.T) {
	f, th := testFabric()
	f.Send(th, 10, ClassCoherence)
	f.Send(th, 20, ClassSync)
	if tot := f.Total(); tot.Msgs != 2 || tot.Bytes != 30 {
		t.Fatalf("total = %+v", tot)
	}
	f.Reset()
	if tot := f.Total(); tot.Msgs != 0 || tot.Bytes != 0 {
		t.Fatalf("after reset total = %+v", tot)
	}
}

// scriptedInjector replays a fixed fate sequence, one entry per
// transmission-attempt check.
type scriptedInjector struct {
	lost  []bool
	extra []float64
	i     int
}

func (s *scriptedInjector) SendFault(class int) (bool, float64) {
	if s.i >= len(s.lost) {
		return false, 0
	}
	l := s.lost[s.i]
	var e float64
	if s.i < len(s.extra) {
		e = s.extra[s.i]
	}
	s.i++
	return l, e
}

func TestSendRetransmitsOnLoss(t *testing.T) {
	f, th := testFabric()
	// First attempt lost, retransmission delivered.
	f.SetInjector(&scriptedInjector{lost: []bool{true, false}})
	f.Send(th, 4096, ClassPageFault)
	s := f.Stats(ClassPageFault)
	if s.Msgs != 2 || s.Bytes != 8192 {
		t.Fatalf("stats = %+v, want 2 msgs / 8192 bytes (original + retransmit)", s)
	}
	if s.Retries != 1 || s.Drops != 1 {
		t.Fatalf("retries/drops = %d/%d, want 1/1", s.Retries, s.Drops)
	}
	// Charged: two transmissions plus at least the retry backoff.
	min := 2*f.Config().MsgTime(4096) + sim.FromNs(retryBackoffRTTs*f.Config().NetLatencyNs)
	if th.Now() < min {
		t.Fatalf("charged %v, want ≥ %v", th.Now(), min)
	}
}

func TestSendLatencySpikeChargesButDoesNotRetry(t *testing.T) {
	f, th := testFabric()
	f.SetInjector(&scriptedInjector{lost: []bool{false}, extra: []float64{50000}})
	f.Send(th, 100, ClassCoherence)
	s := f.Stats(ClassCoherence)
	if s.Msgs != 1 || s.Retries != 0 || s.Drops != 0 {
		t.Fatalf("stats = %+v, want a single spiked delivery", s)
	}
	want := f.Config().MsgTime(100) + sim.FromNs(50000)
	if th.Now() != want {
		t.Fatalf("charged %v, want %v", th.Now(), want)
	}
}

func TestRoundTripRetransmitsWholeRPC(t *testing.T) {
	f, th := testFabric()
	// Response leg of the first attempt lost; second attempt clean.
	f.SetInjector(&scriptedInjector{lost: []bool{false, true, false, false}})
	f.RoundTrip(th, 100, 4096, ClassPushdown)
	s := f.Stats(ClassPushdown)
	if s.Msgs != 4 || s.Bytes != 2*4196 {
		t.Fatalf("stats = %+v, want both legs counted twice", s)
	}
	if s.Retries != 1 || s.Drops != 1 {
		t.Fatalf("retries/drops = %d/%d, want 1/1", s.Retries, s.Drops)
	}
}

func TestRetryCapDelivers(t *testing.T) {
	f, th := testFabric()
	// Injector loses everything: the transport must still terminate and
	// count maxSendAttempts-1 retries.
	all := make([]bool, 64)
	for i := range all {
		all[i] = true
	}
	f.SetInjector(&scriptedInjector{lost: all})
	f.Send(th, 64, ClassSync)
	s := f.Stats(ClassSync)
	if s.Retries != maxSendAttempts-1 {
		t.Fatalf("retries = %d, want %d", s.Retries, maxSendAttempts-1)
	}
	if s.Msgs != maxSendAttempts {
		t.Fatalf("msgs = %d, want %d", s.Msgs, maxSendAttempts)
	}
}

// TestTotalAndResetAllClasses drives every class, including the retry/drop
// counters, and checks Total aggregates and Reset clears all of them.
func TestTotalAndResetAllClasses(t *testing.T) {
	f, th := testFabric()
	classes := []Class{ClassPageFault, ClassWriteback, ClassCoherence, ClassPushdown, ClassStorage, ClassSync, ClassReplica}
	if len(classes) != NumClasses() {
		t.Fatalf("test covers %d classes, fabric has %d", len(classes), NumClasses())
	}
	for _, c := range classes {
		f.SetInjector(&scriptedInjector{lost: []bool{true, false}})
		f.Send(th, 100, c) // 2 msgs, 1 retry, 1 drop per class
		s := f.Stats(c)
		if s.Msgs != 2 || s.Bytes != 200 || s.Retries != 1 || s.Drops != 1 {
			t.Fatalf("class %v stats = %+v", c, s)
		}
	}
	tot := f.Total()
	n := int64(len(classes))
	if tot.Msgs != 2*n || tot.Bytes != 200*n || tot.Retries != n || tot.Drops != n {
		t.Fatalf("total = %+v, want aggregates over %d classes", tot, n)
	}
	f.Reset()
	if f.Total() != (Stat{}) {
		t.Fatalf("after reset total = %+v", f.Total())
	}
	for _, c := range classes {
		if f.Stats(c) != (Stat{}) {
			t.Fatalf("after reset class %v = %+v", c, f.Stats(c))
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassCoherence.String() != "coherence" {
		t.Fatalf("got %q", ClassCoherence.String())
	}
	if Class(99).String() != "class(99)" {
		t.Fatalf("got %q", Class(99).String())
	}
}

func TestEncodeRunsBasic(t *testing.T) {
	entries := []PageEntry{
		{0, true}, {1, true}, {2, true}, // one writable run
		{3, false}, {4, false}, // permission change splits the run
		{10, false}, // gap splits the run
	}
	runs, err := EncodeRuns(entries)
	if err != nil {
		t.Fatal(err)
	}
	want := []PageRun{{0, 3, true}, {3, 2, false}, {10, 1, false}}
	if !reflect.DeepEqual(runs, want) {
		t.Fatalf("runs = %+v, want %+v", runs, want)
	}
}

func TestEncodeRunsUnsortedInput(t *testing.T) {
	runs, err := EncodeRuns([]PageEntry{{5, false}, {3, false}, {4, false}})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Start != 3 || runs[0].Count != 3 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestEncodeRunsDuplicateRejected(t *testing.T) {
	if _, err := EncodeRuns([]PageEntry{{1, true}, {1, false}}); err == nil {
		t.Fatal("expected error for duplicate page")
	}
}

func TestEncodeRunsEmpty(t *testing.T) {
	runs, err := EncodeRuns(nil)
	if err != nil || runs != nil {
		t.Fatalf("EncodeRuns(nil) = %v, %v", runs, err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	runs := []PageRun{{0, 3, true}, {100, 1, false}}
	buf := MarshalRuns(runs)
	if len(buf) != RunsWireSize(runs) {
		t.Fatalf("wire size mismatch: %d vs %d", len(buf), RunsWireSize(runs))
	}
	got, err := UnmarshalRuns(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, runs) {
		t.Fatalf("round trip: %+v vs %+v", got, runs)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalRuns([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := UnmarshalRuns([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Fatal("truncated run accepted")
	}
}

// Property: encode → decode is the identity on duplicate-free page sets.
func TestRLERoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		seen := map[uint64]bool{}
		var entries []PageEntry
		for i := 0; i < int(n); i++ {
			id := uint64(r.Intn(2000))
			if seen[id] {
				continue
			}
			seen[id] = true
			entries = append(entries, PageEntry{ID: id, Writable: r.Intn(2) == 0})
		}
		runs, err := EncodeRuns(entries)
		if err != nil {
			return false
		}
		got := DecodeRuns(runs)
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		if len(entries) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRLECompressionOnDenseList confirms the §6 observation: a dense
// resident set compresses by far more than 20×.
func TestRLECompressionOnDenseList(t *testing.T) {
	entries := make([]PageEntry, 262144) // 1 GB of resident 4 KB pages
	for i := range entries {
		entries[i] = PageEntry{ID: uint64(i), Writable: i%4096 < 2048}
	}
	runs, err := EncodeRuns(entries)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(RawListWireSize(len(entries))) / float64(RunsWireSize(runs))
	if ratio < 20 {
		t.Fatalf("compression ratio = %.1f, want ≥ 20 (paper §6)", ratio)
	}
}
