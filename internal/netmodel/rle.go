package netmodel

import (
	"encoding/binary"
	"errors"
	"sort"
)

// PageEntry is one resident page in the compute pool together with its write
// permission, as transmitted at the start of a pushdown call (§4.1:
// "the compute pool begins by building a list of memory pages ... and their
// write permissions").
type PageEntry struct {
	ID       uint64
	Writable bool
}

// PageRun is a run-length-encoded range of consecutive pages sharing a
// permission (§6: RLE gives ~20× smaller resident-page lists, letting the
// whole list ride in a single RDMA message).
type PageRun struct {
	Start    uint64
	Count    uint32
	Writable bool
}

// runWireBytes is the marshalled size of one run: 8 (start) + 4 (count) + 1
// (flags).
const runWireBytes = 13

// EncodeRuns compresses a page list into runs. The input is sorted by page
// ID internally; duplicate IDs are invalid and trigger an error.
func EncodeRuns(entries []PageEntry) ([]PageRun, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	sorted := make([]PageEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	runs := make([]PageRun, 0, 8)
	cur := PageRun{Start: sorted[0].ID, Count: 1, Writable: sorted[0].Writable}
	for _, e := range sorted[1:] {
		switch {
		case e.ID == cur.Start+uint64(cur.Count) && e.Writable == cur.Writable:
			cur.Count++
		case e.ID < cur.Start+uint64(cur.Count):
			return nil, errors.New("netmodel: duplicate page in list")
		default:
			runs = append(runs, cur)
			cur = PageRun{Start: e.ID, Count: 1, Writable: e.Writable}
		}
	}
	return append(runs, cur), nil
}

// DecodeRuns expands runs back into an explicit, sorted page list.
func DecodeRuns(runs []PageRun) []PageEntry {
	var n int
	for _, r := range runs {
		n += int(r.Count)
	}
	out := make([]PageEntry, 0, n)
	for _, r := range runs {
		for i := uint32(0); i < r.Count; i++ {
			out = append(out, PageEntry{ID: r.Start + uint64(i), Writable: r.Writable})
		}
	}
	return out
}

// MarshalRuns serialises runs into the on-wire format used to size the
// pushdown request message.
func MarshalRuns(runs []PageRun) []byte {
	buf := make([]byte, 4+len(runs)*runWireBytes)
	binary.LittleEndian.PutUint32(buf, uint32(len(runs)))
	off := 4
	for _, r := range runs {
		binary.LittleEndian.PutUint64(buf[off:], r.Start)
		binary.LittleEndian.PutUint32(buf[off+8:], r.Count)
		if r.Writable {
			buf[off+12] = 1
		}
		off += runWireBytes
	}
	return buf
}

// UnmarshalRuns parses the on-wire format.
func UnmarshalRuns(buf []byte) ([]PageRun, error) {
	if len(buf) < 4 {
		return nil, errors.New("netmodel: short run list")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+n*runWireBytes {
		return nil, errors.New("netmodel: run list length mismatch")
	}
	runs := make([]PageRun, n)
	off := 4
	for i := range runs {
		runs[i].Start = binary.LittleEndian.Uint64(buf[off:])
		runs[i].Count = binary.LittleEndian.Uint32(buf[off+8:])
		runs[i].Writable = buf[off+12] == 1
		off += runWireBytes
	}
	return runs, nil
}

// RunsWireSize returns the marshalled size without allocating.
func RunsWireSize(runs []PageRun) int { return 4 + len(runs)*runWireBytes }

// RawListWireSize is the size the list would have without RLE (9 bytes per
// page: ID + permission), used to report the compression ratio from §6.
func RawListWireSize(numPages int) int { return 4 + numPages*9 }
