package netmodel

import (
	"reflect"
	"testing"
)

// Alternating permissions on consecutive pages are RLE's worst case —
// one 13-byte run per page — and exactly where the bitmap must win.
func TestResidentBitmapBeatsDegenerateRLE(t *testing.T) {
	var entries []PageEntry
	for i := 0; i < 64; i++ {
		entries = append(entries, PageEntry{ID: 1000 + uint64(i), Writable: i%2 == 0})
	}
	runs, err := EncodeRuns(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 64 {
		t.Fatalf("expected 64 degenerate runs, got %d", len(runs))
	}
	wire := MarshalResident(runs)
	if bmp := BitmapWireSize(runs); len(wire) != bmp {
		t.Fatalf("degenerate list should marshal as a %d-byte bitmap, got %d bytes", bmp, len(wire))
	}
	if rle := RunsWireSize(runs); len(wire) >= rle {
		t.Fatalf("bitmap (%d bytes) should beat RLE (%d bytes)", len(wire), rle)
	}
	got, err := UnmarshalResident(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, runs) {
		t.Fatalf("bitmap round trip changed runs:\n got %v\nwant %v", got, runs)
	}
}

// Run-friendly lists must keep producing the historical RLE bytes, so
// cost accounting for every existing workload is unchanged.
func TestResidentKeepsRLEBytesWhenSmaller(t *testing.T) {
	runs := []PageRun{{Start: 10, Count: 500, Writable: true}, {Start: 4096, Count: 300}}
	wire := MarshalResident(runs)
	if want := MarshalRuns(runs); !reflect.DeepEqual(wire, want) {
		t.Fatal("compact lists must marshal byte-identically to plain RLE")
	}
	if ResidentWireSize(runs) != RunsWireSize(runs) {
		t.Fatal("ResidentWireSize should equal RLE size for compact lists")
	}
	got, err := UnmarshalResident(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, runs) {
		t.Fatalf("RLE round trip changed runs: %v", got)
	}
}

func TestResidentBitmapRejectsCorruption(t *testing.T) {
	entries := make([]PageEntry, 8)
	for i := range entries {
		entries[i] = PageEntry{ID: uint64(2 * i), Writable: i%2 == 0} // gaps + alternation
	}
	runs, err := EncodeRuns(entries)
	if err != nil {
		t.Fatal(err)
	}
	wire := MarshalResident(runs)
	if len(wire) == RunsWireSize(runs) {
		t.Skip("fixture unexpectedly chose RLE; corruption cases covered by fuzzing")
	}
	// Truncation.
	if _, err := UnmarshalResident(wire[:len(wire)-1]); err == nil {
		t.Error("truncated bitmap should fail")
	}
	// Writable-but-not-resident bit pattern.
	bad := append([]byte(nil), wire...)
	bad[bitmapFixedBytes] |= 2 << 2 // second slot: writable without resident
	if _, err := UnmarshalResident(bad); err == nil {
		t.Error("writable bit on non-resident page should fail")
	}
}

// FuzzResidentRoundTrip is the §6 resident-list codec fuzzer: encode a
// synthesized page list, then check (1) RLE round-trips through
// encode/decode, (2) the chosen wire encoding round-trips through
// marshal/unmarshal to canonical runs, and (3) the encoding is never
// longer than the bitmap (nor than plain RLE) — the size guarantee the
// pushdown message relies on.
func FuzzResidentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 2, 0})
	f.Add([]byte{255, 1, 254, 0, 253, 1, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []PageEntry
		id := uint64(0)
		for i := 0; i+1 < len(data) && len(entries) < 4096; i += 2 {
			id += 1 + uint64(data[i]%37) // strictly increasing: no duplicates
			entries = append(entries, PageEntry{ID: id, Writable: data[i+1]&1 == 1})
		}
		runs, err := EncodeRuns(entries)
		if err != nil {
			t.Fatalf("EncodeRuns on duplicate-free input: %v", err)
		}
		if len(runs) > len(entries) {
			t.Fatalf("%d runs exceed %d entries", len(runs), len(entries))
		}
		if dec := DecodeRuns(runs); !reflect.DeepEqual(dec, entries) && !(len(dec) == 0 && len(entries) == 0) {
			t.Fatalf("RLE round trip changed the page list:\n got %v\nwant %v", dec, entries)
		}

		wire := MarshalResident(runs)
		if bmp := BitmapWireSize(runs); bmp >= 0 && len(wire) > bmp {
			t.Fatalf("encoding is %d bytes, longer than its %d-byte bitmap", len(wire), bmp)
		}
		if rle := RunsWireSize(runs); len(wire) > rle {
			t.Fatalf("encoding is %d bytes, longer than plain RLE's %d", len(wire), rle)
		}
		got, err := UnmarshalResident(wire)
		if err != nil {
			t.Fatalf("unmarshalling our own encoding: %v", err)
		}
		if len(got) == 0 && len(runs) == 0 {
			return
		}
		if !reflect.DeepEqual(got, runs) {
			t.Fatalf("wire round trip changed runs:\n got %v\nwant %v", got, runs)
		}
	})
}

// FuzzUnmarshalResident faces arbitrary bytes: it must never panic, and
// whatever it accepts must re-marshal to an encoding no larger than what
// was parsed (canonicalisation may shrink, never grow).
func FuzzUnmarshalResident(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalRuns([]PageRun{{Start: 3, Count: 2, Writable: true}}))
	f.Add(MarshalResident(mustRuns(f, alternating(16))))
	f.Fuzz(func(t *testing.T, data []byte) {
		runs, err := UnmarshalResident(data)
		if err != nil {
			return
		}
		out := MarshalResident(runs)
		if len(out) > len(data) {
			t.Fatalf("re-marshal grew: %d bytes from %d accepted bytes", len(out), len(data))
		}
		back, err := UnmarshalResident(out)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !reflect.DeepEqual(back, runs) && !(len(back) == 0 && len(runs) == 0) {
			t.Fatalf("canonical encoding unstable:\n got %v\nwant %v", back, runs)
		}
	})
}

func alternating(n int) []PageEntry {
	entries := make([]PageEntry, n)
	for i := range entries {
		entries[i] = PageEntry{ID: uint64(i), Writable: i%2 == 0}
	}
	return entries
}

func mustRuns(f *testing.F, entries []PageEntry) []PageRun {
	runs, err := EncodeRuns(entries)
	if err != nil {
		f.Fatal(err)
	}
	return runs
}
