package netmodel

import (
	"encoding/binary"
	"errors"
)

// This file adds the second resident-page-list wire encoding §6 weighs
// RLE against: a dense permission bitmap over the list's page span. RLE
// wins when residency clusters into few runs (the common case — §6
// reports ~20× vs the raw list); the bitmap wins when permissions
// alternate page by page and every page becomes its own 13-byte run. The
// request carries whichever is smaller, so the resident list is never
// longer than its bitmap encoding, and existing RLE-encoded bytes remain
// valid: the format discriminator is the top bit of the leading word,
// which a run count never sets.

// bitmapFlag marks the leading uint32 of a bitmap-encoded list. Run
// counts are bounded by the RDMA buffer (a few thousand), so the bit is
// unambiguous.
const bitmapFlag = 1 << 31

// bitmapFixedBytes is the bitmap header: flagged span word + start page.
const bitmapFixedBytes = 4 + 8

// pagesPerByte is the bitmap density: two bits per page in the span —
// bit 0 resident, bit 1 writable.
const pagesPerByte = 4

// bitmapSpan returns the number of page slots a bitmap over runs must
// cover, and whether a bitmap encoding is representable: a non-empty,
// strictly ascending, non-overlapping list (wire input may be neither)
// whose span fits the flagged word.
func bitmapSpan(runs []PageRun) (uint64, bool) {
	if len(runs) == 0 {
		return 0, false
	}
	end := runs[0].Start // exclusive end of the previous run
	for _, r := range runs {
		if r.Count == 0 || r.Start < end {
			return 0, false
		}
		next := r.Start + uint64(r.Count)
		if next < r.Start {
			return 0, false // page-ID overflow
		}
		end = next
	}
	span := end - runs[0].Start
	if span == 0 || span >= bitmapFlag {
		return 0, false
	}
	return span, true
}

// BitmapWireSize returns the size of the bitmap encoding of runs, or -1
// if the span is unrepresentable. Runs must be sorted, as EncodeRuns
// produces them.
func BitmapWireSize(runs []PageRun) int {
	span, ok := bitmapSpan(runs)
	if !ok {
		return -1
	}
	return bitmapFixedBytes + int((span+pagesPerByte-1)/pagesPerByte)
}

// ResidentWireSize returns the marshalled size of the resident list: the
// smaller of the RLE and bitmap encodings.
func ResidentWireSize(runs []PageRun) int {
	rle := RunsWireSize(runs)
	if bmp := BitmapWireSize(runs); bmp >= 0 && bmp < rle {
		return bmp
	}
	return rle
}

// MarshalResident serialises the resident list in whichever encoding is
// smaller; ties keep RLE, so lists that compress well produce exactly the
// bytes MarshalRuns always produced.
func MarshalResident(runs []PageRun) []byte {
	rle := RunsWireSize(runs)
	bmp := BitmapWireSize(runs)
	if bmp < 0 || bmp >= rle {
		return MarshalRuns(runs)
	}
	span, _ := bitmapSpan(runs)
	buf := make([]byte, bmp)
	binary.LittleEndian.PutUint32(buf, bitmapFlag|uint32(span))
	binary.LittleEndian.PutUint64(buf[4:], runs[0].Start)
	for _, r := range runs {
		for i := uint64(0); i < uint64(r.Count); i++ {
			off := r.Start + i - runs[0].Start
			bits := byte(1)
			if r.Writable {
				bits |= 2
			}
			buf[bitmapFixedBytes+off/pagesPerByte] |= bits << (2 * (off % pagesPerByte))
		}
	}
	return buf
}

// UnmarshalResident parses either resident-list encoding back into
// canonical (maximally merged, sorted) runs.
func UnmarshalResident(buf []byte) ([]PageRun, error) {
	if len(buf) < 4 {
		return nil, errors.New("netmodel: short resident list")
	}
	head := binary.LittleEndian.Uint32(buf)
	if head&bitmapFlag == 0 {
		return UnmarshalRuns(buf)
	}
	span := uint64(head &^ uint32(bitmapFlag))
	want := bitmapFixedBytes + int((span+pagesPerByte-1)/pagesPerByte)
	if span == 0 || len(buf) != want {
		return nil, errors.New("netmodel: resident bitmap length mismatch")
	}
	start := binary.LittleEndian.Uint64(buf[4:])
	if start+span < start {
		return nil, errors.New("netmodel: resident bitmap span overflow")
	}
	var runs []PageRun
	for off := uint64(0); off < span; off++ {
		bits := buf[bitmapFixedBytes+off/pagesPerByte] >> (2 * (off % pagesPerByte)) & 3
		if bits&1 == 0 {
			if bits != 0 {
				return nil, errors.New("netmodel: writable bit on non-resident page")
			}
			continue
		}
		writable := bits&2 != 0
		if n := len(runs); n > 0 {
			last := &runs[n-1]
			if last.Start+uint64(last.Count) == start+off && last.Writable == writable {
				last.Count++
				continue
			}
		}
		runs = append(runs, PageRun{Start: start + off, Count: 1, Writable: writable})
	}
	if len(runs) == 0 {
		return nil, errors.New("netmodel: resident bitmap has no resident pages")
	}
	// Reject padding noise in the final partial byte.
	for off := span; off%pagesPerByte != 0; off++ {
		if buf[bitmapFixedBytes+off/pagesPerByte]>>(2*(off%pagesPerByte))&3 != 0 {
			return nil, errors.New("netmodel: resident bitmap padding bits set")
		}
	}
	return runs, nil
}
