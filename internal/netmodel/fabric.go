// Package netmodel models the data center fabric that connects resource
// pools: an RDMA-like network with per-message latency, bandwidth-
// proportional transfer time, a LITE-style RPC handler cost, FIFO ordering,
// and per-class message accounting. It also implements the run-length
// encoding of resident-page lists that TELEPORT uses to fit the pushdown
// request into a single RDMA message (§6).
package netmodel

import (
	"fmt"

	"teleport/internal/hw"
	"teleport/internal/sim"
)

// Class labels traffic so experiments can report, e.g., the number of
// coherence messages (Figure 22) separately from page-fault traffic.
type Class int

// Traffic classes.
const (
	ClassPageFault Class = iota // demand paging compute←memory
	ClassWriteback              // dirty page eviction compute→memory
	ClassCoherence              // invalidations/downgrades during pushdown
	ClassPushdown               // pushdown request/response RPCs
	ClassStorage                // memory pool ↔ storage pool paging
	ClassSync                   // syncmem / eager synchronization transfers
	numClasses
)

var classNames = [numClasses]string{
	"pagefault", "writeback", "coherence", "pushdown", "storage", "sync",
}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Stat is a message/byte counter pair.
type Stat struct {
	Msgs  int64
	Bytes int64
}

// Fabric is the shared network connecting the pools of one machine. All
// methods charge virtual time to the calling simulated thread; because the
// scheduler runs one simulated thread at a time, no locking is needed.
type Fabric struct {
	cfg   *hw.Config
	stats [numClasses]Stat
}

// New returns a fabric using the given hardware parameters.
func New(cfg *hw.Config) *Fabric { return &Fabric{cfg: cfg} }

// Send models a one-way message of the given size: latency + transfer time,
// charged to t.
func (f *Fabric) Send(t *sim.Thread, bytes int, class Class) {
	f.count(class, bytes)
	t.AdvanceNs(f.cfg.MsgNs(bytes))
}

// RoundTrip models a request/response RPC including remote handler
// processing, charged to t.
func (f *Fabric) RoundTrip(t *sim.Thread, reqBytes, respBytes int, class Class) {
	f.count(class, reqBytes)
	f.count(class, respBytes)
	t.AdvanceNs(f.cfg.RoundTripNs(reqBytes, respBytes))
}

// Async counts a message and returns its cost without charging any thread;
// callers use it when the transfer overlaps with other work (e.g. a
// write-back that the evicting thread does not wait for beyond posting).
func (f *Fabric) Async(bytes int, class Class) sim.Time {
	f.count(class, bytes)
	return f.cfg.MsgTime(bytes)
}

func (f *Fabric) count(class Class, bytes int) {
	f.stats[class].Msgs++
	f.stats[class].Bytes += int64(bytes)
}

// Stats returns the counters for one class.
func (f *Fabric) Stats(class Class) Stat { return f.stats[class] }

// Total returns the aggregate counters across all classes.
func (f *Fabric) Total() Stat {
	var s Stat
	for _, st := range f.stats {
		s.Msgs += st.Msgs
		s.Bytes += st.Bytes
	}
	return s
}

// Reset clears all counters (used between experiment phases).
func (f *Fabric) Reset() { f.stats = [numClasses]Stat{} }

// Config exposes the underlying hardware parameters.
func (f *Fabric) Config() *hw.Config { return f.cfg }
