// Package netmodel models the data center fabric that connects resource
// pools: an RDMA-like network with per-message latency, bandwidth-
// proportional transfer time, a LITE-style RPC handler cost, FIFO ordering,
// and per-class message accounting. It also implements the run-length
// encoding of resident-page lists that TELEPORT uses to fit the pushdown
// request into a single RDMA message (§6), and — when a fault injector is
// attached — transparent recovery from transient message loss/corruption by
// retransmission with capped exponential backoff, all charged to virtual
// time.
package netmodel

import (
	"fmt"

	"teleport/internal/hw"
	"teleport/internal/metrics"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Class labels traffic so experiments can report, e.g., the number of
// coherence messages (Figure 22) separately from page-fault traffic.
type Class int

// Traffic classes.
const (
	ClassPageFault Class = iota // demand paging compute←memory
	ClassWriteback              // dirty page eviction compute→memory
	ClassCoherence              // invalidations/downgrades during pushdown
	ClassPushdown               // pushdown request/response RPCs
	ClassStorage                // memory pool ↔ storage pool paging
	ClassSync                   // syncmem / eager synchronization transfers
	ClassReplica                // shard replication + recovery re-sync transfers
	numClasses
)

var classNames = [numClasses]string{
	"pagefault", "writeback", "coherence", "pushdown", "storage", "sync", "replica",
}

// String returns the class name.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// NumClasses returns the number of traffic classes (for per-class tables in
// other packages).
func NumClasses() int { return int(numClasses) }

// Comp maps the class to its attribution component. The metrics package
// declares its wire components in class order, which compCheck pins.
func (c Class) Comp() metrics.Comp { return metrics.CompWirePageFault + metrics.Comp(c) }

// compCheck fails to compile if the wire components drift out of alignment
// with the traffic classes.
var _ = [1]struct{}{}[int(ClassReplica)+int(metrics.CompWirePageFault)-int(metrics.CompWireReplica)]

// Stat is a per-class counter set: delivered traffic plus the transient
// faults survived getting it there.
type Stat struct {
	Msgs  int64
	Bytes int64
	// Retries counts retransmissions performed after a lost or corrupted
	// transmission attempt; Drops counts the lost attempts themselves.
	// They differ only if the retry cap is hit (the attempt is then
	// treated as delivered by the reliable transport).
	Retries int64
	Drops   int64
}

// Injector decides transient-fault outcomes for transmission attempts. It is
// implemented by *fault.Plan; netmodel sees classes as plain ints to keep
// the dependency one-way.
type Injector interface {
	// SendFault returns whether one transmission attempt of the given
	// class was lost (retransmit needed) and any extra latency in ns.
	SendFault(class int) (lost bool, extraNs float64)
}

// Retransmission policy: the first retry waits roughly a detection timeout
// (a few network RTTs), doubling up to the cap. Eight attempts at ~1%
// injected loss makes an unrecoverable loss astronomically unlikely; if the
// cap is ever hit the transport delivers anyway (it is reliable — the
// injector models transient faults, not partitions).
const (
	maxSendAttempts  = 8
	retryBackoffCap  = 64
	retryBackoffRTTs = 4
)

// Fabric is the shared network connecting the pools of one machine. All
// methods charge virtual time to the calling simulated thread; because the
// scheduler runs one simulated thread at a time, no locking is needed.
type Fabric struct {
	cfg   *hw.Config
	stats [numClasses]Stat
	inj   Injector
	ring  *trace.Ring
	times *metrics.TimeSet // machine-wide wire-time attribution (nil-safe)
	tr    *trace.Tracer    // span layer (nil = spans off)
	mx    [numClasses]fabricMetrics
}

// fabricMetrics caches one class's registry handles (all nil-safe).
type fabricMetrics struct {
	msgs, bytes *metrics.Counter
	ns          *metrics.Histogram
}

// New returns a fabric using the given hardware parameters.
func New(cfg *hw.Config) *Fabric { return &Fabric{cfg: cfg} }

// SetInjector attaches (or detaches, with nil) a transient-fault injector.
func (f *Fabric) SetInjector(inj Injector) { f.inj = inj }

// SetTrace attaches an event ring that receives fault-injected/rpc-retry
// events (nil-safe, like the ring itself).
func (f *Fabric) SetTrace(r *trace.Ring) { f.ring = r }

// SetTracer attaches a span tracer: every Send/RoundTrip becomes an "rpc"
// span (Arg: class), nesting under whatever operation issued it.
func (f *Fabric) SetTracer(tr *trace.Tracer) { f.tr = tr }

// SetTimes attaches the machine-wide attribution accumulator; each
// operation's elapsed virtual time is charged to its class's wire component.
func (f *Fabric) SetTimes(ts *metrics.TimeSet) { f.times = ts }

// SetMetrics attaches (or detaches, with nil) a metrics registry and caches
// the per-class handles.
func (f *Fabric) SetMetrics(reg *metrics.Registry) {
	for c := Class(0); c < numClasses; c++ {
		if reg == nil {
			f.mx[c] = fabricMetrics{}
			continue
		}
		name := "net." + c.String()
		f.mx[c] = fabricMetrics{
			msgs:  reg.Counter(name + ".msgs"),
			bytes: reg.Counter(name + ".bytes"),
			ns:    reg.Histogram(name + ".ns"),
		}
	}
}

// MinLatency returns the fabric's minimum cross-machine message latency:
// the per-message wire latency before any payload, queueing, or fault
// charges. It is the conservative lookahead bound for parallel multi-domain
// simulation (sim.Scheduler.SetLookahead) — no message between machines on
// this fabric can arrive sooner than MinLatency after it was sent.
func (f *Fabric) MinLatency() sim.Time { return sim.FromNs(f.cfg.NetLatencyNs) }

// Send models a one-way message of the given size: latency + transfer time,
// charged to t, plus any injected transient faults and their retransmissions.
func (f *Fabric) Send(t *sim.Thread, bytes int, class Class) {
	start := t.Now()
	sp := f.tr.Begin(t, trace.KindRPC, 0, int64(class))
	f.send(t, bytes, class)
	f.tr.End(t, sp)
	f.observe(t, class, start)
}

// observe attributes one completed operation's elapsed time.
func (f *Fabric) observe(t *sim.Thread, class Class, start sim.Time) {
	f.times.Add(class.Comp(), t.Now()-start)
	f.mx[class].ns.Observe(t.Now() - start)
}

func (f *Fabric) send(t *sim.Thread, bytes int, class Class) {
	f.count(class, bytes)
	t.AdvanceNs(f.cfg.MsgNs(bytes))
	if f.inj == nil {
		return
	}
	backoff := retryBackoffRTTs * f.cfg.NetLatencyNs
	for attempt := 1; attempt < maxSendAttempts; attempt++ {
		lost, extraNs := f.inj.SendFault(int(class))
		if extraNs > 0 {
			f.ring.Add(trace.Event{At: t.Now(), Kind: trace.KindFaultInjected, Arg: int64(class), Who: t.Name()})
			t.AdvanceNs(extraNs)
		}
		if !lost {
			return
		}
		// Lost in flight: wait out the detection timeout and retransmit.
		f.stats[class].Drops++
		f.stats[class].Retries++
		f.ring.Add(trace.Event{At: t.Now(), Kind: trace.KindRPCRetry, Arg: int64(class), Who: t.Name()})
		t.AdvanceNs(backoff)
		if backoff < retryBackoffCap*f.cfg.NetLatencyNs {
			backoff *= 2
		}
		f.count(class, bytes)
		t.AdvanceNs(f.cfg.MsgNs(bytes))
	}
}

// RoundTrip models a request/response RPC including remote handler
// processing, charged to t. With an injector attached, a fault on either leg
// retransmits the whole RPC after a backoff (the requester cannot tell which
// leg died).
func (f *Fabric) RoundTrip(t *sim.Thread, reqBytes, respBytes int, class Class) {
	start := t.Now()
	sp := f.tr.Begin(t, trace.KindRPC, 0, int64(class))
	f.roundTrip(t, reqBytes, respBytes, class)
	f.tr.End(t, sp)
	f.observe(t, class, start)
}

func (f *Fabric) roundTrip(t *sim.Thread, reqBytes, respBytes int, class Class) {
	f.count(class, reqBytes)
	f.count(class, respBytes)
	t.AdvanceNs(f.cfg.RoundTripNs(reqBytes, respBytes))
	if f.inj == nil {
		return
	}
	backoff := retryBackoffRTTs * f.cfg.NetLatencyNs
	for attempt := 1; attempt < maxSendAttempts; attempt++ {
		reqLost, reqExtra := f.inj.SendFault(int(class))
		respLost, respExtra := f.inj.SendFault(int(class))
		if extra := reqExtra + respExtra; extra > 0 {
			f.ring.Add(trace.Event{At: t.Now(), Kind: trace.KindFaultInjected, Arg: int64(class), Who: t.Name()})
			t.AdvanceNs(extra)
		}
		if !reqLost && !respLost {
			return
		}
		f.stats[class].Drops++
		f.stats[class].Retries++
		f.ring.Add(trace.Event{At: t.Now(), Kind: trace.KindRPCRetry, Arg: int64(class), Who: t.Name()})
		t.AdvanceNs(backoff)
		if backoff < retryBackoffCap*f.cfg.NetLatencyNs {
			backoff *= 2
		}
		f.count(class, reqBytes)
		f.count(class, respBytes)
		t.AdvanceNs(f.cfg.RoundTripNs(reqBytes, respBytes))
	}
}

// Async counts a message and returns its cost without charging any thread;
// callers use it when the transfer overlaps with other work (e.g. a
// write-back that the evicting thread does not wait for beyond posting).
// Fault injection does not apply: the poster never observes the fate of an
// asynchronous transfer, so retransmission is the transport's own business
// and costs the poster nothing.
func (f *Fabric) Async(bytes int, class Class) sim.Time {
	f.count(class, bytes)
	return f.cfg.MsgTime(bytes)
}

func (f *Fabric) count(class Class, bytes int) {
	f.stats[class].Msgs++
	f.stats[class].Bytes += int64(bytes)
	f.mx[class].msgs.Inc()
	f.mx[class].bytes.Add(int64(bytes))
}

// Stats returns the counters for one class.
func (f *Fabric) Stats(class Class) Stat { return f.stats[class] }

// Total returns the aggregate counters across all classes.
func (f *Fabric) Total() Stat {
	var s Stat
	for _, st := range f.stats {
		s.Msgs += st.Msgs
		s.Bytes += st.Bytes
		s.Retries += st.Retries
		s.Drops += st.Drops
	}
	return s
}

// Reset clears all counters (used between experiment phases). The injector
// and trace attachments are kept.
func (f *Fabric) Reset() { f.stats = [numClasses]Stat{} }

// Config exposes the underlying hardware parameters.
func (f *Fabric) Config() *hw.Config { return f.cfg }
