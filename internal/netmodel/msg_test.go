package netmodel

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPushdownRequestRoundTrip(t *testing.T) {
	req := &PushdownRequest{
		Fn:        0xDEAD0000BEEF,
		Arg:       0x1000,
		Flags:     7,
		ArgInline: []byte{1, 2, 3},
		Resident:  []PageRun{{Start: 10, Count: 5, Writable: true}, {Start: 100, Count: 1}},
	}
	buf, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPushdownRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fn != req.Fn || got.Arg != req.Arg || got.Flags != req.Flags {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.ArgInline, req.ArgInline) {
		t.Fatal("inline arg mismatch")
	}
	if !reflect.DeepEqual(got.Resident, req.Resident) {
		t.Fatalf("runs mismatch: %+v", got.Resident)
	}
}

func TestPushdownRequestEmptyFields(t *testing.T) {
	req := &PushdownRequest{Fn: 1}
	buf, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPushdownRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ArgInline != nil || len(got.Resident) != 0 {
		t.Fatalf("empty fields round-tripped wrong: %+v", got)
	}
}

func TestPushdownRequestRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPushdownRequest([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	// Claim a huge inline length.
	req := &PushdownRequest{Fn: 1, ArgInline: []byte{9}}
	buf, _ := req.Marshal()
	buf[20] = 0xFF
	if _, err := UnmarshalPushdownRequest(buf); err == nil {
		t.Fatal("truncated inline accepted")
	}
}

func TestPushdownRequestSizeLimits(t *testing.T) {
	req := &PushdownRequest{ArgInline: make([]byte, MaxRDMAMessage)}
	if _, err := req.Marshal(); err == nil {
		t.Fatal("oversized inline accepted")
	}
	// A dense 1 GB resident set must fit thanks to RLE (§6).
	entries := make([]PageEntry, 262144)
	for i := range entries {
		entries[i] = PageEntry{ID: uint64(i), Writable: i%2048 < 1024}
	}
	runs, err := EncodeRuns(entries)
	if err != nil {
		t.Fatal(err)
	}
	req = &PushdownRequest{Resident: runs}
	if _, err := req.Marshal(); err != nil {
		t.Fatalf("RLE-compressed 1GB resident set must fit one RDMA message: %v", err)
	}
}

func TestPushdownResponseRoundTrip(t *testing.T) {
	for _, r := range []*PushdownResponse{
		{Status: StatusOK},
		{Status: StatusException, Exception: []byte("segfault at 0x0")},
		{Status: StatusKilled},
	} {
		got, err := UnmarshalPushdownResponse(r.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != r.Status || !bytes.Equal(got.Exception, r.Exception) {
			t.Fatalf("round trip: %+v vs %+v", got, r)
		}
	}
	if _, err := UnmarshalPushdownResponse([]byte{0}); err == nil {
		t.Fatal("short response accepted")
	}
	bad := (&PushdownResponse{Exception: []byte("x")}).Marshal()
	bad[4] = 0xFF
	if _, err := UnmarshalPushdownResponse(bad); err == nil {
		t.Fatal("truncated exception accepted")
	}
}

// Property: request marshalling round-trips arbitrary contents.
func TestPushdownRequestProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := &PushdownRequest{
			Fn:    r.Uint64(),
			Arg:   r.Uint64(),
			Flags: r.Uint32(),
		}
		if n := r.Intn(64); n > 0 {
			req.ArgInline = make([]byte, n)
			r.Read(req.ArgInline)
		}
		start := uint64(0)
		for i := 0; i < r.Intn(20); i++ {
			start += uint64(r.Intn(1000) + 1)
			req.Resident = append(req.Resident, PageRun{
				Start: start, Count: uint32(r.Intn(100) + 1), Writable: r.Intn(2) == 0,
			})
			start += uint64(req.Resident[len(req.Resident)-1].Count)
		}
		buf, err := req.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalPushdownRequest(buf)
		if err != nil {
			return false
		}
		if got.Fn != req.Fn || got.Arg != req.Arg || got.Flags != req.Flags {
			return false
		}
		if !bytes.Equal(got.ArgInline, req.ArgInline) {
			return false
		}
		if len(got.Resident) != len(req.Resident) {
			return false
		}
		for i := range got.Resident {
			if got.Resident[i] != req.Resident[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
