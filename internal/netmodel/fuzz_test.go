package netmodel

import "testing"

// Fuzzers: the unmarshallers face bytes from the wire and must never panic
// (run with `go test -fuzz=FuzzUnmarshalRuns ./internal/netmodel`).

func FuzzUnmarshalRuns(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(MarshalRuns([]PageRun{{Start: 3, Count: 2, Writable: true}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		runs, err := UnmarshalRuns(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-marshal to the same bytes.
		out := MarshalRuns(runs)
		if len(out) != len(data) {
			t.Fatalf("round trip length changed: %d vs %d", len(out), len(data))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("round trip byte %d changed", i)
			}
		}
	})
}

func FuzzUnmarshalPushdownRequest(f *testing.F) {
	seed, _ := (&PushdownRequest{Fn: 1, ArgInline: []byte{2}, Resident: []PageRun{{Start: 1, Count: 1}}}).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalPushdownRequest(data)
		if err != nil {
			return
		}
		if _, err := req.Marshal(); err != nil {
			// Oversized reconstructions may exceed the RDMA buffer; that is
			// a valid rejection, not a crash.
			return
		}
	})
}

func FuzzUnmarshalPushdownResponse(f *testing.F) {
	f.Add((&PushdownResponse{Status: StatusException, Exception: []byte("x")}).Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := UnmarshalPushdownResponse(data)
		if err != nil {
			return
		}
		_ = resp.Marshal()
	})
}
