package tpch

import (
	"math"
	"testing"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

func loadLocal(t *testing.T, scale float64) (*Data, *profile.Exec) {
	t.Helper()
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	d := Load(coldb.NewDB(p), Config{Scale: scale, Seed: 42, KeepRaw: true})
	return d, profile.NewExec(sim.NewThread("q"), p, nil)
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

func TestLoadCardinalities(t *testing.T) {
	d, _ := loadLocal(t, 0.1)
	if d.L != 6000 || d.O != 1500 || d.C != 150 || d.P != 200 || d.PS != 800 {
		t.Fatalf("cardinalities: %+v", d)
	}
	if d.S < 10 {
		t.Fatalf("suppliers = %d", d.S)
	}
	if d.DB.Bytes() <= 0 {
		t.Fatal("empty database")
	}
	// lineitem must be sorted by orderkey for the merge join.
	for i := 1; i < d.L; i++ {
		if d.Raw.LOrderkey[i] < d.Raw.LOrderkey[i-1] {
			t.Fatal("lineitem not sorted by orderkey")
		}
	}
	// Every lineitem's (partkey, suppkey) must exist in partsupp.
	psSet := map[int64]bool{}
	for _, k := range d.Raw.PSKey {
		psSet[k] = true
	}
	for i := 0; i < d.L; i++ {
		if !psSet[CompositeKey(d.Raw.LPartkey[i], d.Raw.LSuppkey[i])] {
			t.Fatalf("lineitem %d has dangling partsupp reference", i)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	d1, _ := loadLocal(t, 0.05)
	d2, _ := loadLocal(t, 0.05)
	for i := range d1.Raw.LShipdate {
		if d1.Raw.LShipdate[i] != d2.Raw.LShipdate[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestQFilterMatchesNaive(t *testing.T) {
	d, ex := loadLocal(t, 0.1)
	const cut = 1200
	got := QFilter(ex, d, cut)
	var want float64
	for i := 0; i < d.L; i++ {
		if d.Raw.LShipdate[i] < cut {
			want += d.Raw.LQuantity[i]
		}
	}
	if !approxEq(got, want) {
		t.Fatalf("QFilter = %v, want %v", got, want)
	}
	prof := ex.Profile()
	if len(prof) != 3 {
		t.Fatalf("QFilter must profile 3 operators, got %v", prof)
	}
}

func TestQ6MatchesNaive(t *testing.T) {
	d, ex := loadLocal(t, 0.1)
	const start = 730
	got := Q6(ex, d, start)
	var want float64
	for i := 0; i < d.L; i++ {
		if d.Raw.LShipdate[i] >= start && d.Raw.LShipdate[i] < start+YearDays &&
			d.Raw.LDisc[i] >= 0.0499 && d.Raw.LDisc[i] <= 0.0701 &&
			d.Raw.LQuantity[i] < 24 {
			want += d.Raw.LExtPrice[i] * d.Raw.LDisc[i]
		}
	}
	if !approxEq(got, want) {
		t.Fatalf("Q6 = %v, want %v", got, want)
	}
}

func naiveQ3(d *Data, segment, day int64) map[int64]float64 {
	want := map[int64]float64{}
	for i := 0; i < d.L; i++ {
		if d.Raw.LShipdate[i] <= day {
			continue
		}
		ok := d.Raw.LOrderkey[i]
		if d.Raw.OOrderdate[ok] >= day {
			continue
		}
		cust := d.Raw.OCustkey[ok]
		if d.Raw.CMktsegment[cust] != segment {
			continue
		}
		want[ok] += d.Raw.LExtPrice[i] * (1 - d.Raw.LDisc[i])
	}
	return want
}

func TestQ3MatchesNaive(t *testing.T) {
	d, ex := loadLocal(t, 0.1)
	const segment, day = 0, 1100
	top := Q3(ex, d, segment, day)
	want := naiveQ3(d, segment, day)
	if len(top) == 0 {
		t.Fatal("Q3 returned nothing")
	}
	for _, row := range top {
		if !approxEq(row.Sum, want[row.Key]) {
			t.Fatalf("Q3 order %d revenue = %v, want %v", row.Key, row.Sum, want[row.Key])
		}
	}
	// The first row must be the global maximum.
	var best float64
	for _, v := range want {
		if v > best {
			best = v
		}
	}
	if !approxEq(top[0].Sum, best) {
		t.Fatalf("Q3 top revenue = %v, want %v", top[0].Sum, best)
	}
}

func naiveQ9(d *Data, color int64) map[int64]float64 {
	cost := map[int64]float64{}
	for i, k := range d.Raw.PSKey {
		cost[k] = d.Raw.PSSupplyCost[i]
	}
	want := map[int64]float64{}
	for i := 0; i < d.L; i++ {
		pk := d.Raw.LPartkey[i]
		if d.Raw.PColor[pk] != color {
			continue
		}
		sk := d.Raw.LSuppkey[i]
		nation := d.Raw.SNationkey[sk]
		year := d.Raw.OOrderdate[d.Raw.LOrderkey[i]] / YearDays
		amount := d.Raw.LExtPrice[i]*(1-d.Raw.LDisc[i]) -
			cost[CompositeKey(pk, sk)]*d.Raw.LQuantity[i]
		want[nation*100+year] += amount
	}
	return want
}

func TestQ9MatchesNaive(t *testing.T) {
	d, ex := loadLocal(t, 0.1)
	rows := Q9(ex, d, GreenPart)
	want := naiveQ9(d, GreenPart)
	if len(rows) != len(want) {
		t.Fatalf("Q9 groups = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if !approxEq(row.Sum, want[row.Key]) {
			t.Fatalf("Q9 group %d = %v, want %v", row.Key, row.Sum, want[row.Key])
		}
	}
	// Exactly the eight named operators must appear in the profile.
	prof := ex.Profile()
	if len(prof) != len(Q9Ops) {
		t.Fatalf("Q9 profiled %d operators, want %d: %+v", len(prof), len(Q9Ops), prof)
	}
	seen := map[string]bool{}
	for _, o := range prof {
		seen[o.Name] = true
	}
	for _, name := range Q9Ops {
		if !seen[name] {
			t.Fatalf("operator %s missing from profile", name)
		}
	}
}

// TestQueriesIdenticalAcrossPlatforms is the core integration check: the
// same query must produce the same answer on Linux, base DDC, and TELEPORT
// — and execution times must order local < TELEPORT < base DDC.
func TestQueriesIdenticalAcrossPlatforms(t *testing.T) {
	type result struct {
		sum  float64
		time sim.Time
	}
	run := func(cfg ddc.Config, push bool) result {
		m := ddc.MustMachine(cfg)
		p := m.NewProcess()
		d := Load(coldb.NewDB(p), Config{Scale: 0.2, Seed: 7})
		th := sim.NewThread("q")
		ex := profile.NewExec(th, p, nil)
		if push {
			ex = profile.NewExec(th, p, core.NewRuntime(p, 1))
			ex.Push(OpSelection, OpProjection, OpAggregation)
		}
		sum := QFilter(ex, d, 1200)
		return result{sum: sum, time: ex.Total()}
	}
	cacheBytes := int64(96 * mem.PageSize) // small slice of the ~1.5MB working set
	local := run(ddc.Linux(), false)
	base := run(ddc.BaseDDC(cacheBytes), false)
	tele := run(ddc.BaseDDC(cacheBytes), true)

	if !approxEq(local.sum, base.sum) || !approxEq(local.sum, tele.sum) {
		t.Fatalf("answers differ: local %v, base %v, teleport %v", local.sum, base.sum, tele.sum)
	}
	if !(local.time < tele.time && tele.time < base.time) {
		t.Fatalf("time ordering broken: local %v, teleport %v, base %v",
			local.time, tele.time, base.time)
	}
}

func TestQ1MatchesNaive(t *testing.T) {
	d, ex := loadLocal(t, 0.1)
	const cut = 2400
	rows := Q1(ex, d, cut)
	type agg struct {
		qty, price, disc, charge float64
		count                    int64
	}
	want := map[int64]*agg{}
	for i := 0; i < d.L; i++ {
		if d.Raw.LShipdate[i] > cut {
			continue
		}
		k := d.Raw.LReturnflag[i]*2 + d.Raw.LLinestatus[i]
		a := want[k]
		if a == nil {
			a = &agg{}
			want[k] = a
		}
		dp := d.Raw.LExtPrice[i] * (1 - d.Raw.LDisc[i])
		a.qty += d.Raw.LQuantity[i]
		a.price += d.Raw.LExtPrice[i]
		a.disc += dp
		a.charge += dp * (1 + d.Raw.LTax[i])
		a.count++
	}
	if len(rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rows), len(want))
	}
	prev := int64(-1)
	for _, r := range rows {
		k := r.ReturnFlag*2 + r.LineStatus
		if k <= prev {
			t.Fatal("rows not sorted by group key")
		}
		prev = k
		w := want[k]
		if w == nil {
			t.Fatalf("unexpected group %d/%d", r.ReturnFlag, r.LineStatus)
		}
		if !approxEq(r.SumQty, w.qty) || !approxEq(r.SumPrice, w.price) ||
			!approxEq(r.SumDisc, w.disc) || !approxEq(r.SumCharge, w.charge) ||
			r.Count != w.count {
			t.Fatalf("group %d/%d = %+v, want %+v", r.ReturnFlag, r.LineStatus, r, w)
		}
	}
}

// TestPushedQueriesMatchUnpushed: every query must produce identical
// answers when its operators are Teleported.
func TestPushedQueriesMatchUnpushed(t *testing.T) {
	build := func(push bool) (*Data, *profile.Exec) {
		m := ddc.MustMachine(ddc.BaseDDC(96 * mem.PageSize))
		p := m.NewProcess()
		d := Load(coldb.NewDB(p), Config{Scale: 0.1, Seed: 3})
		th := sim.NewThread("q")
		var rt *core.Runtime
		if push {
			rt = core.NewRuntime(p, 1)
		}
		ex := profile.NewExec(th, p, rt)
		if push {
			ex.Push(OpSelection, OpProjection, OpAggregation, OpHashJoin,
				OpMergeJoin, OpLookup, OpExpression, OpGroup)
		}
		return d, ex
	}

	// Q9
	dA, exA := build(false)
	dB, exB := build(true)
	a, b := Q9(exA, dA, GreenPart), Q9(exB, dB, GreenPart)
	if len(a) != len(b) {
		t.Fatalf("Q9 pushed group count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || !approxEq(a[i].Sum, b[i].Sum) {
			t.Fatalf("Q9 pushed row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Q3
	dA, exA = build(false)
	dB, exB = build(true)
	ta, tb := Q3(exA, dA, 0, 1100), Q3(exB, dB, 0, 1100)
	for i := range ta {
		if ta[i].Key != tb[i].Key || !approxEq(ta[i].Sum, tb[i].Sum) {
			t.Fatalf("Q3 pushed row %d differs", i)
		}
	}

	// Q6, Q1, QFilter
	dA, exA = build(false)
	dB, exB = build(true)
	if x, y := Q6(exA, dA, 730), Q6(exB, dB, 730); !approxEq(x, y) {
		t.Fatalf("Q6 pushed differs: %v vs %v", x, y)
	}
	dA, exA = build(false)
	dB, exB = build(true)
	if x, y := QFilter(exA, dA, 1200), QFilter(exB, dB, 1200); !approxEq(x, y) {
		t.Fatalf("QFilter pushed differs: %v vs %v", x, y)
	}
	dA, exA = build(false)
	dB, exB = build(true)
	qa, qb := Q1(exA, dA, 2400), Q1(exB, dB, 2400)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("Q1 pushed row %d differs: %+v vs %+v", i, qa[i], qb[i])
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	d, ex := loadLocal(t, 0.05)
	// Q_filter with a cutoff below every shipdate: empty selection.
	if got := QFilter(ex, d, DateMin); got != 0 {
		t.Fatalf("QFilter(empty) = %v", got)
	}
	// Q_filter with a cutoff above every shipdate: all rows.
	var all float64
	for _, q := range d.Raw.LQuantity {
		all += q
	}
	d2, ex2 := loadLocal(t, 0.05)
	if got := QFilter(ex2, d2, DateMax+1); !approxEq(got, all) {
		t.Fatalf("QFilter(all) = %v, want %v", got, all)
	}
	_ = d2
	// Q3 with a day that matches no orders: empty result.
	d3, ex3 := loadLocal(t, 0.05)
	top := Q3(ex3, d3, 0, DateMin)
	if len(top) != 0 {
		t.Fatalf("Q3 with no qualifying orders returned %d rows", len(top))
	}
	// Q9 with a colour no part has (colours are 0..91).
	d4, ex4 := loadLocal(t, 0.05)
	if rows := Q9(ex4, d4, 99); len(rows) != 0 {
		t.Fatalf("Q9 with unmatched colour returned %d groups", len(rows))
	}
}
