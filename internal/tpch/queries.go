package tpch

import (
	"sort"

	"teleport/internal/coldb"
	"teleport/internal/ddc"
	"teleport/internal/profile"
)

// Operator names used across the query plans (these are the names pushdown
// sets and the Figure 10/18 profiles key on).
const (
	OpSelection   = "Selection"
	OpProjection  = "Projection"
	OpAggregation = "Aggregation"
	OpHashJoin    = "HashJoin"
	OpMergeJoin   = "MergeJoin"
	OpLookup      = "Lookup"
	OpExpression  = "Expression"
	OpGroup       = "Group"
)

// QFilterOps are the operators of the §5.1 microbenchmark, in plan order.
var QFilterOps = []string{OpSelection, OpProjection, OpAggregation}

// Q9Ops are Q9's operators in plan order (eight, matching Figure 18's
// "All" level).
var Q9Ops = []string{
	OpSelection, OpHashJoin, OpProjection, OpLookup,
	OpMergeJoin, OpExpression, OpGroup, OpAggregation,
}

// QFilter runs the paper's Q_filter:
//
//	SELECT SUM(quantity) FROM Lineitem WHERE shipdate < $DATE
//
// as a selection, a projection, and an aggregation (§5.1, Figure 12).
func QFilter(ex *profile.Exec, d *Data, cutDay int64) float64 {
	li := d.DB.Table("lineitem")
	var cand *coldb.CandList
	ex.Run(OpSelection, func(env *ddc.Env) {
		cand = coldb.SelectI64(env, li.Col("l_shipdate"), coldb.PredI64{Op: coldb.CmpLT, Lo: cutDay}, nil)
	})
	var qty *coldb.Column
	ex.Run(OpProjection, func(env *ddc.Env) {
		qty = coldb.Project(env, li.Col("l_quantity"), cand)
	})
	var sum float64
	ex.Run(OpAggregation, func(env *ddc.Env) {
		sum = coldb.Aggregate(env, qty, coldb.AggSum, nil)
	})
	return sum
}

// Q6 runs TPC-H Q6: the forecast-revenue-change query —
//
//	SELECT SUM(extendedprice*discount) FROM lineitem
//	WHERE shipdate in [day, day+1y) AND discount BETWEEN 0.05 AND 0.07
//	  AND quantity < 24
func Q6(ex *profile.Exec, d *Data, startDay int64) float64 {
	li := d.DB.Table("lineitem")
	var cand *coldb.CandList
	ex.Run(OpSelection, func(env *ddc.Env) {
		cand = coldb.SelectI64(env, li.Col("l_shipdate"),
			coldb.PredI64{Op: coldb.CmpBetween, Lo: startDay, Hi: startDay + YearDays - 1}, nil)
		cand = coldb.SelectF64(env, li.Col("l_discount"),
			coldb.PredF64{Op: coldb.CmpBetween, Lo: 0.0499, Hi: 0.0701}, cand)
		cand = coldb.SelectF64(env, li.Col("l_quantity"),
			coldb.PredF64{Op: coldb.CmpLT, Lo: 24}, cand)
	})
	var rev *coldb.Column
	ex.Run(OpExpression, func(env *ddc.Env) {
		rev = coldb.ExprMulAddColumns(env, li.Col("l_extendedprice"), li.Col("l_discount"), 1, cand)
	})
	var sum float64
	ex.Run(OpAggregation, func(env *ddc.Env) {
		sum = coldb.Aggregate(env, rev, coldb.AggSum, nil)
	})
	return sum
}

// Q3 runs TPC-H Q3: the shipping-priority query —
//
//	SELECT l_orderkey, SUM(extendedprice*(1-discount)) AS revenue
//	FROM customer, orders, lineitem
//	WHERE c_mktsegment = $SEG AND c_custkey = o_custkey
//	  AND l_orderkey = o_orderkey AND o_orderdate < $DAY AND l_shipdate > $DAY
//	GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10
func Q3(ex *profile.Exec, d *Data, segment, day int64) []coldb.GroupRow {
	db := d.DB
	cust, orders, li := db.Table("customer"), db.Table("orders"), db.Table("lineitem")

	var custCand *coldb.CandList
	ex.Run(OpSelection, func(env *ddc.Env) {
		custCand = coldb.SelectI64(env, cust.Col("c_mktsegment"),
			coldb.PredI64{Op: coldb.CmpEQ, Lo: segment}, nil)
	})

	var custIdx *coldb.HashIndex
	var orderMatch coldb.JoinResult
	ex.Run(OpHashJoin, func(env *ddc.Env) {
		custIdx = coldb.BuildHashIndex(env, cust.Col("c_custkey"), custCand)
		orderCand := coldb.SelectI64(env, orders.Col("o_orderdate"),
			coldb.PredI64{Op: coldb.CmpLT, Lo: day}, nil)
		orderMatch = coldb.HashJoinProbe(env, custIdx, orders.Col("o_custkey"), orderCand)
	})

	var liMatch coldb.JoinResult
	ex.Run(OpHashJoin, func(env *ddc.Env) {
		okCol := coldb.GatherI64(env, orders.Col("o_orderkey"), orderMatch.Outer)
		orderIdx := coldb.BuildHashIndex(env, okCol, nil)
		liCand := coldb.SelectI64(env, li.Col("l_shipdate"),
			coldb.PredI64{Op: coldb.CmpGT, Lo: day}, nil)
		liMatch = coldb.HashJoinProbe(env, orderIdx, li.Col("l_orderkey"), liCand)
	})

	var rev *coldb.Column
	ex.Run(OpExpression, func(env *ddc.Env) {
		price := coldb.GatherF64(env, li.Col("l_extendedprice"), liMatch.Outer)
		disc := coldb.GatherF64(env, li.Col("l_discount"), liMatch.Outer)
		rev = coldb.ExprRevenue(env, price, disc, nil)
	})

	var top []coldb.GroupRow
	ex.Run(OpGroup, func(env *ddc.Env) {
		keys := coldb.GatherI64(env, li.Col("l_orderkey"), liMatch.Outer)
		g := coldb.GroupBySum(env, keys, rev, nil, maxInt(keys.N, 16))
		top = coldb.TopK(env, g.Rows(env), 10)
	})
	return top
}

// Q9 runs TPC-H Q9: the product-type profit-measure query —
//
//	SELECT nation, year, SUM(extendedprice*(1-discount) - supplycost*quantity)
//	FROM part, supplier, lineitem, partsupp, orders, nation
//	WHERE p_name LIKE '%green%' AND <join predicates>
//	GROUP BY nation, year
//
// as eight operators, in MonetDB's full-materialisation style (every
// operator processes complete column vectors; intermediates are
// materialised temporaries — the reason Projection and HashJoin move 189 GB
// and 87 GB of remote data in Figure 10): Projection (lineitem payload),
// HashJoin (lineitem ⋈ partsupp on the composite key, full-size random
// probes), Selection (the part colour filter applied via the part join),
// Lookup (supplier → nation), MergeJoin (lineitem ⋈ orders on the sorted
// orderkey), Expression (amount), Group (nation×year), Aggregation (final
// sweep).
func Q9(ex *profile.Exec, d *Data, color int64) []coldb.GroupRow {
	db := d.DB
	part, supp, ps := db.Table("part"), db.Table("supplier"), db.Table("partsupp")
	orders, li := db.Table("orders"), db.Table("lineitem")

	// Projection: materialise the full lineitem payload (MonetDB evaluates
	// over complete BATs; the filter applies later).
	var lSupp, lPartK *coldb.Column
	var lQty, lPrice, lDisc *coldb.Column
	ex.Run(OpProjection, func(env *ddc.Env) {
		lPartK = coldb.Project(env, li.Col("l_partkey"), nil)
		lSupp = coldb.Project(env, li.Col("l_suppkey"), nil)
		lQty = coldb.Project(env, li.Col("l_quantity"), nil)
		lPrice = coldb.Project(env, li.Col("l_extendedprice"), nil)
		lDisc = coldb.Project(env, li.Col("l_discount"), nil)
	})

	// HashJoin: ⋈ partsupp on the composite (partkey, suppkey) key — the
	// full lineitem randomly probes a partsupp-sized index.
	var supplyCost *coldb.Column
	ex.Run(OpHashJoin, func(env *ddc.Env) {
		idx := coldb.BuildHashIndex(env, ps.Col("ps_key"), nil)
		composite := coldb.NewColumn(env.P, "l_pskey", coldb.I64, maxInt(lPartK.N, 1))
		composite.N = lPartK.N
		for i := 0; i < lPartK.N; i++ {
			env.Compute(2)
			composite.SetI64(env, i, CompositeKey(lPartK.I64At(env, i), lSupp.I64At(env, i)))
		}
		match := coldb.HashJoinProbe(env, idx, composite, nil)
		supplyCost = coldb.GatherF64(env, ps.Col("ps_supplycost"), match.Inner)
	})

	// Selection: the colour predicate, evaluated per lineitem through the
	// part dimension (p_color[l_partkey] == color).
	var keep *coldb.CandList
	ex.Run(OpSelection, func(env *ddc.Env) {
		colors := coldb.LookupJoin(env, part.Col("p_color"), lPartK, nil)
		keep = coldb.SelectI64(env, colors, coldb.PredI64{Op: coldb.CmpEQ, Lo: color}, nil)
	})

	// Lookup: supplier → nation (positional dimension access, full column).
	var nation *coldb.Column
	ex.Run(OpLookup, func(env *ddc.Env) {
		nation = coldb.LookupJoin(env, supp.Col("s_nationkey"), lSupp, nil)
	})

	// MergeJoin: ⋈ orders on the sorted orderkey to fetch the order year.
	var year *coldb.Column
	ex.Run(OpMergeJoin, func(env *ddc.Env) {
		mj := coldb.MergeJoin(env, li.Col("l_orderkey"), orders.Col("o_orderkey"))
		dates := coldb.GatherI64(env, orders.Col("o_orderdate"), mj.Inner)
		year = coldb.NewColumn(env.P, "o_year", coldb.I32, maxInt(dates.N, 1))
		year.N = dates.N
		for i := 0; i < dates.N; i++ {
			env.Compute(2)
			year.SetI64(env, i, dates.I64At(env, i)/YearDays)
		}
	})

	// Expression: amount = price*(1-disc) − supplycost*qty over the full
	// vectors.
	var amount *coldb.Column
	ex.Run(OpExpression, func(env *ddc.Env) {
		revenue := coldb.ExprRevenue(env, lPrice, lDisc, nil)
		cost := coldb.ExprMulAddColumns(env, supplyCost, lQty, 1, nil)
		amount = coldb.NewColumn(env.P, "amount", coldb.F64, maxInt(revenue.N, 1))
		amount.N = revenue.N
		for i := 0; i < revenue.N; i++ {
			env.Compute(2)
			amount.SetF64(env, i, revenue.F64At(env, i)-cost.F64At(env, i))
		}
	})

	// Group: (nation, year) hash aggregation over the selected rows.
	var g *coldb.GroupAgg
	ex.Run(OpGroup, func(env *ddc.Env) {
		keys := coldb.NewColumn(env.P, "nation_year", coldb.I64, maxInt(nation.N, 1))
		keys.N = nation.N
		for i := 0; i < nation.N; i++ {
			env.Compute(2)
			keys.SetI64(env, i, nation.I64At(env, i)*100+year.I64At(env, i))
		}
		g = coldb.GroupBySum(env, keys, amount, keep, Nations*8)
	})

	// Aggregation: final sweep of the group table, sorted for stable output.
	var rows []coldb.GroupRow
	ex.Run(OpAggregation, func(env *ddc.Env) {
		rows = g.Rows(env)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	})
	return rows
}

// Q1Row is one group of Q1's pricing summary.
type Q1Row struct {
	ReturnFlag int64
	LineStatus int64
	SumQty     float64
	SumPrice   float64
	SumDisc    float64 // sum(extendedprice*(1-discount))
	SumCharge  float64 // sum(extendedprice*(1-discount)*(1+tax))
	Count      int64
}

// Q1 runs TPC-H Q1, the pricing summary report —
//
//	SELECT returnflag, linestatus, SUM(quantity), SUM(extendedprice),
//	       SUM(extendedprice*(1-discount)),
//	       SUM(extendedprice*(1-discount)*(1+tax)), COUNT(*)
//	FROM lineitem WHERE shipdate <= $DAY
//	GROUP BY returnflag, linestatus
//
// as a selection, two expression evaluations, and grouped aggregations. It
// is not part of the paper's evaluation set (Q9/Q3/Q6 have the highest
// disaggregation cost) but exercises the scan+group pattern end to end.
func Q1(ex *profile.Exec, d *Data, cutDay int64) []Q1Row {
	li := d.DB.Table("lineitem")
	var cand *coldb.CandList
	ex.Run(OpSelection, func(env *ddc.Env) {
		cand = coldb.SelectI64(env, li.Col("l_shipdate"),
			coldb.PredI64{Op: coldb.CmpLE, Lo: cutDay}, nil)
	})
	var discPrice, charge *coldb.Column
	ex.Run(OpExpression, func(env *ddc.Env) {
		discPrice = coldb.ExprRevenue(env, li.Col("l_extendedprice"), li.Col("l_discount"), cand)
		charge = coldb.NewColumn(env.P, "charge", coldb.F64, maxInt(discPrice.N, 1))
		charge.N = discPrice.N
		i := 0
		cand.ForEach(env, li.N, func(row int) {
			env.Compute(3)
			tax := li.Col("l_tax").F64At(env, row)
			charge.SetF64(env, i, discPrice.F64At(env, i)*(1+tax))
			i++
		})
	})
	// Grouped aggregation: key = returnflag*2 + linestatus; four parallel
	// sums via the group table (one per measure).
	var gQty, gPrice, gDisc, gCharge *coldb.GroupAgg
	ex.Run(OpGroup, func(env *ddc.Env) {
		keys := coldb.NewColumn(env.P, "q1key", coldb.I64, maxInt(cand.Len(li.N), 1))
		keys.N = cand.Len(li.N)
		i := 0
		cand.ForEach(env, li.N, func(row int) {
			env.Compute(3)
			k := li.Col("l_returnflag").I64At(env, row)*2 + li.Col("l_linestatus").I64At(env, row)
			keys.SetI64(env, i, k)
			i++
		})
		qty := coldb.Project(env, li.Col("l_quantity"), cand)
		price := coldb.Project(env, li.Col("l_extendedprice"), cand)
		gQty = coldb.GroupBySum(env, keys, qty, nil, 8)
		gPrice = coldb.GroupBySum(env, keys, price, nil, 8)
		gDisc = coldb.GroupBySum(env, keys, discPrice, nil, 8)
		gCharge = coldb.GroupBySum(env, keys, charge, nil, 8)
	})
	var out []Q1Row
	ex.Run(OpAggregation, func(env *ddc.Env) {
		byKey := map[int64]*Q1Row{}
		for _, r := range gQty.Rows(env) {
			byKey[r.Key] = &Q1Row{
				ReturnFlag: r.Key / 2, LineStatus: r.Key % 2,
				SumQty: r.Sum, Count: r.Count,
			}
		}
		for _, r := range gPrice.Rows(env) {
			byKey[r.Key].SumPrice = r.Sum
		}
		for _, r := range gDisc.Rows(env) {
			byKey[r.Key].SumDisc = r.Sum
		}
		for _, r := range gCharge.Rows(env) {
			byKey[r.Key].SumCharge = r.Sum
		}
		keys := make([]int64, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			out = append(out, *byKey[k])
		}
	})
	return out
}
