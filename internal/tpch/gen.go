// Package tpch generates a TPC-H-style analytical schema at reduced scale
// and implements physical plans for the queries the paper evaluates: the
// §5.1 microbenchmark Q_filter, and TPC-H Q3, Q6, and Q9 (the three queries
// with the highest cost of disaggregation, Figure 3). The scale rule from
// DESIGN.md applies: row counts shrink, the compute cache shrinks with
// them, and hardware costs stay at the paper's absolute values, preserving
// every figure's shape.
package tpch

import (
	"math/rand"

	"teleport/internal/coldb"
)

// Days span the TPC-H date domain 1992-01-01 .. 1998-12-31 as day numbers.
const (
	DateMin   = 0
	DateMax   = 2556
	YearDays  = 365
	GreenPart = 7 // the p_color id Q9 filters ("%green%")
	Segments  = 5 // c_mktsegment domain; Q3 uses segment 0 ("BUILDING")
	Nations   = 25
)

// Config controls generation.
type Config struct {
	// Scale is the micro scale factor: Lineitem has 60,000·Scale rows
	// (Scale 1 ≈ 4 MB database; the paper's SF50 shape is reproduced by
	// scaling the cache with the data).
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
	// KeepRaw retains plain-Go copies of every column for result
	// verification in tests.
	KeepRaw bool
}

// Raw holds plain-Go copies of the generated columns (verification only).
type Raw struct {
	LOrderkey, LPartkey, LSuppkey []int64
	LQuantity, LExtPrice, LDisc   []float64
	LTax                          []float64
	LShipdate                     []int64
	LReturnflag, LLinestatus      []int64
	OCustkey, OOrderdate          []int64
	CMktsegment, CNationkey       []int64
	PColor                        []int64
	SNationkey                    []int64
	PSKey                         []int64
	PSSupplyCost                  []float64
}

// Data is the loaded database plus its cardinalities.
type Data struct {
	DB                *coldb.DB
	L, O, C, P, S, PS int
	Raw               *Raw
}

// CompositeKey packs a (partkey, suppkey) pair into the single int64 key the
// partsupp hash index uses.
func CompositeKey(partkey, suppkey int64) int64 { return partkey*100000 + suppkey }

// Load generates the schema into db. Loading bypasses the compute cache —
// in a DDC the database is born in the memory pool (§2.1).
func Load(db *coldb.DB, cfg Config) *Data {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	L := int(60000 * cfg.Scale)
	O := maxInt(L/4, 1)
	C := maxInt(O/10, 1)
	P := maxInt(L/30, 1)
	S := maxInt(L/600, 10)
	PS := P * 4

	d := &Data{DB: db, L: L, O: O, C: C, P: P, S: S, PS: PS}
	raw := &Raw{}

	// part: dense partkey = row id, a colour id, retail price.
	part := db.CreateTable("part", P,
		coldb.ColumnSpec{Name: "p_partkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "p_color", Type: coldb.I32},
		coldb.ColumnSpec{Name: "p_retailprice", Type: coldb.F64},
	)
	pColor := make([]int64, P)
	pKey := make([]int64, P)
	pPrice := make([]float64, P)
	for i := 0; i < P; i++ {
		pKey[i] = int64(i)
		pColor[i] = int64(r.Intn(92)) // TPC-H has 92 colour words
		pPrice[i] = 900 + float64(r.Intn(1200))
	}
	part.Col("p_partkey").LoadI64(db.P, pKey)
	part.Col("p_color").LoadI64(db.P, pColor)
	part.Col("p_retailprice").LoadF64(db.P, pPrice)
	raw.PColor = pColor

	// supplier: dense suppkey, nation.
	supp := db.CreateTable("supplier", S,
		coldb.ColumnSpec{Name: "s_suppkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "s_nationkey", Type: coldb.I32},
	)
	sKey := make([]int64, S)
	sNation := make([]int64, S)
	for i := 0; i < S; i++ {
		sKey[i] = int64(i)
		sNation[i] = int64(r.Intn(Nations))
	}
	supp.Col("s_suppkey").LoadI64(db.P, sKey)
	supp.Col("s_nationkey").LoadI64(db.P, sNation)
	raw.SNationkey = sNation

	// partsupp: 4 suppliers per part, composite key, supply cost.
	ps := db.CreateTable("partsupp", PS,
		coldb.ColumnSpec{Name: "ps_key", Type: coldb.I64},
		coldb.ColumnSpec{Name: "ps_supplycost", Type: coldb.F64},
	)
	psKey := make([]int64, PS)
	psCost := make([]float64, PS)
	psPart := make([]int64, PS)
	psSupp := make([]int64, PS)
	for i := 0; i < PS; i++ {
		pk := int64(i / 4)
		sk := (pk + int64(i%4)*int64(S/4+1)) % int64(S)
		psPart[i], psSupp[i] = pk, sk
		psKey[i] = CompositeKey(pk, sk)
		psCost[i] = 1 + float64(r.Intn(1000))/10
	}
	ps.Col("ps_key").LoadI64(db.P, psKey)
	ps.Col("ps_supplycost").LoadF64(db.P, psCost)
	raw.PSKey = psKey
	raw.PSSupplyCost = psCost

	// customer: dense custkey, market segment, nation.
	cust := db.CreateTable("customer", C,
		coldb.ColumnSpec{Name: "c_custkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "c_mktsegment", Type: coldb.I32},
		coldb.ColumnSpec{Name: "c_nationkey", Type: coldb.I32},
	)
	cKey := make([]int64, C)
	cSeg := make([]int64, C)
	cNat := make([]int64, C)
	for i := 0; i < C; i++ {
		cKey[i] = int64(i)
		cSeg[i] = int64(r.Intn(Segments))
		cNat[i] = int64(r.Intn(Nations))
	}
	cust.Col("c_custkey").LoadI64(db.P, cKey)
	cust.Col("c_mktsegment").LoadI64(db.P, cSeg)
	cust.Col("c_nationkey").LoadI64(db.P, cNat)
	raw.CMktsegment = cSeg
	raw.CNationkey = cNat

	// orders: dense orderkey = row id (so lineitem sorted by orderkey can
	// merge-join it), customer, date.
	orders := db.CreateTable("orders", O,
		coldb.ColumnSpec{Name: "o_orderkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "o_custkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "o_orderdate", Type: coldb.I32},
	)
	oKey := make([]int64, O)
	oCust := make([]int64, O)
	oDate := make([]int64, O)
	for i := 0; i < O; i++ {
		oKey[i] = int64(i)
		oCust[i] = int64(r.Intn(C))
		oDate[i] = int64(r.Intn(DateMax))
	}
	orders.Col("o_orderkey").LoadI64(db.P, oKey)
	orders.Col("o_custkey").LoadI64(db.P, oCust)
	orders.Col("o_orderdate").LoadI64(db.P, oDate)
	raw.OCustkey = oCust
	raw.OOrderdate = oDate

	// lineitem: sorted by orderkey, FK references into partsupp pairs so
	// Q9's composite probe always finds its supply cost.
	li := db.CreateTable("lineitem", L,
		coldb.ColumnSpec{Name: "l_orderkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "l_partkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "l_suppkey", Type: coldb.I64},
		coldb.ColumnSpec{Name: "l_quantity", Type: coldb.F64},
		coldb.ColumnSpec{Name: "l_extendedprice", Type: coldb.F64},
		coldb.ColumnSpec{Name: "l_discount", Type: coldb.F64},
		coldb.ColumnSpec{Name: "l_tax", Type: coldb.F64},
		coldb.ColumnSpec{Name: "l_shipdate", Type: coldb.I32},
		coldb.ColumnSpec{Name: "l_returnflag", Type: coldb.I32},
		coldb.ColumnSpec{Name: "l_linestatus", Type: coldb.I32},
	)
	lOrder := make([]int64, L)
	lPart := make([]int64, L)
	lSupp := make([]int64, L)
	lQty := make([]float64, L)
	lPrice := make([]float64, L)
	lDisc := make([]float64, L)
	lTax := make([]float64, L)
	lShip := make([]int64, L)
	lFlag := make([]int64, L)
	lStatus := make([]int64, L)
	for i := 0; i < L; i++ {
		lOrder[i] = int64(i * O / L) // non-decreasing: sorted by orderkey
		psRow := r.Intn(PS)
		lPart[i] = psPart[psRow]
		lSupp[i] = psSupp[psRow]
		lQty[i] = float64(1 + r.Intn(50))
		lPrice[i] = 901 + float64(r.Intn(104000))/priceDiv
		lDisc[i] = float64(r.Intn(11)) / 100
		lTax[i] = float64(r.Intn(9)) / 100
		lShip[i] = int64(r.Intn(DateMax))
		lFlag[i] = int64(r.Intn(3))   // A / N / R
		lStatus[i] = int64(r.Intn(2)) // O / F
	}
	li.Col("l_orderkey").LoadI64(db.P, lOrder)
	li.Col("l_partkey").LoadI64(db.P, lPart)
	li.Col("l_suppkey").LoadI64(db.P, lSupp)
	li.Col("l_quantity").LoadF64(db.P, lQty)
	li.Col("l_extendedprice").LoadF64(db.P, lPrice)
	li.Col("l_discount").LoadF64(db.P, lDisc)
	li.Col("l_tax").LoadF64(db.P, lTax)
	li.Col("l_shipdate").LoadI64(db.P, lShip)
	li.Col("l_returnflag").LoadI64(db.P, lFlag)
	li.Col("l_linestatus").LoadI64(db.P, lStatus)
	raw.LOrderkey = lOrder
	raw.LPartkey = lPart
	raw.LSuppkey = lSupp
	raw.LQuantity = lQty
	raw.LExtPrice = lPrice
	raw.LDisc = lDisc
	raw.LTax = lTax
	raw.LShipdate = lShip
	raw.LReturnflag = lFlag
	raw.LLinestatus = lStatus

	if cfg.KeepRaw {
		d.Raw = raw
	}
	return d
}

const priceDiv = 10 // price quantisation divisor

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
