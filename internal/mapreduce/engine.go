package mapreduce

import (
	"sort"

	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
)

// Phase names for pushdown sets and the Figure 10 profile. §5.3 splits the
// map phase: map-shuffle is "95% of map time" in a DDC and is the pushed
// sub-phase.
const (
	OpMapCompute = "MapCompute"
	OpMapShuffle = "MapShuffle"
	OpReduce     = "Reduce"
	OpMerge      = "Merge"
)

// Phases lists the engine's phases in execution order.
var Phases = []string{OpMapCompute, OpMapShuffle, OpReduce, OpMerge}

// Per-element CPU costs.
const (
	opsPerByte   = 0.4 // tokenising / pattern matching per input byte
	opsEmit      = 4
	opsShuffle   = 5
	opsReduceKV  = 6
	opsMergeStep = 5
)

// KV is one key-value record (16 bytes in disaggregated memory).
type KV struct {
	K, V int64
}

// kvBuf is an append-only record buffer in disaggregated memory.
type kvBuf struct {
	base mem.Addr
	n    int
}

func newKVBuf(p *ddc.Process, capacity int, name string) *kvBuf {
	return &kvBuf{base: p.Space.AllocPages(int64(capacity)*16, name)}
}

func (b *kvBuf) append(env *ddc.Env, kv KV) {
	// One batched write of the adjacent (k, v) pair: per-element equivalent
	// to WriteI64(a); WriteI64(a+8), but the second word decodes from the
	// hot line instead of re-entering the access model.
	pair := [2]uint64{uint64(kv.K), uint64(kv.V)}
	env.WriteU64s(b.base+mem.Addr(b.n*16), pair[:])
	b.n++
}

func (b *kvBuf) get(env *ddc.Env, i int) KV {
	var pair [2]uint64
	env.ReadU64s(b.base+mem.Addr(i*16), pair[:])
	return KV{K: int64(pair[0]), V: int64(pair[1])}
}

// Job defines a MapReduce application: Map tokenises one input chunk and
// emits records; values of equal keys are summed by Reduce.
type Job interface {
	Name() string
	Map(env *ddc.Env, chunk []byte, lineBase int, emit func(k, v int64))
}

// Engine runs a Job over a Corpus with M map tasks and R reduce tasks.
type Engine struct {
	C        *Corpus
	Job      Job
	Mappers  int
	Reducers int

	staging    []*kvBuf // per-mapper map-compute output
	partitions []*kvBuf // per-reducer shuffle output
	results    []KV     // merged output (host copy of the final, tiny result)
}

// NewEngine prepares buffers for the given task counts.
func NewEngine(c *Corpus, job Job, mappers, reducers int) *Engine {
	if mappers < 1 {
		mappers = 1
	}
	if reducers < 1 {
		reducers = 1
	}
	return &Engine{C: c, Job: job, Mappers: mappers, Reducers: reducers}
}

// Results returns the merged (key, total) pairs sorted by key.
func (e *Engine) Results() []KV { return e.results }

// Run executes the four phases, recording each in ex.
func (e *Engine) Run(ex *profile.Exec) {
	ex.Run(OpMapCompute, func(env *ddc.Env) { e.mapCompute(env) })
	ex.Run(OpMapShuffle, func(env *ddc.Env) { e.mapShuffle(env) })
	ex.Run(OpReduce, func(env *ddc.Env) { e.reduce(env) })
	ex.Run(OpMerge, func(env *ddc.Env) { e.merge(env) })
}

// mapCompute streams each mapper's input chunk and applies the user map
// function, emitting records sequentially into the mapper's staging buffer.
func (e *Engine) mapCompute(env *ddc.Env) {
	c := e.C
	e.staging = make([]*kvBuf, e.Mappers)
	chunk := c.Len / int64(e.Mappers)
	var scratch []byte
	for m := 0; m < e.Mappers; m++ {
		lo := int64(m) * chunk
		hi := lo + chunk
		if m == e.Mappers-1 {
			hi = c.Len
		}
		// Snap to line boundaries (scan forward for the newline).
		lo = snapToLine(env, c, lo)
		hi = snapToLine(env, c, hi)
		if hi <= lo {
			e.staging[m] = newKVBuf(c.P, 1, "mr.stage")
			continue
		}
		scratch = c.ReadChunk(env, lo, hi, scratch)
		env.Compute(float64(len(scratch)) * opsPerByte)
		buf := newKVBuf(c.P, len(scratch)/3+1, "mr.stage")
		e.Job.Map(env, scratch, int(lo), func(k, v int64) {
			env.Compute(opsEmit)
			buf.append(env, KV{k, v})
		})
		e.staging[m] = buf
	}
}

func snapToLine(env *ddc.Env, c *Corpus, pos int64) int64 {
	if pos == 0 || pos >= c.Len {
		return minI64(pos, c.Len)
	}
	for pos < c.Len && env.ReadU8(c.Base+mem.Addr(pos-1)) != '\n' {
		pos++
	}
	return pos
}

// mapShuffle scatters every staged record to its reducer's partition —
// hash-partitioned writes striding across R distinct buffers, the
// data-intensive sub-component that dominates map time in a DDC (§5.3).
func (e *Engine) mapShuffle(env *ddc.Env) {
	total := 0
	for _, b := range e.staging {
		total += b.n
	}
	e.partitions = make([]*kvBuf, e.Reducers)
	for r := range e.partitions {
		e.partitions[r] = newKVBuf(e.C.P, total+1, "mr.part")
	}
	for _, b := range e.staging {
		for i := 0; i < b.n; i++ {
			env.Compute(opsShuffle)
			kv := b.get(env, i)
			r := int(uint64(kv.K)*0x9E3779B97F4A7C15>>33) % e.Reducers
			e.partitions[r].append(env, kv)
		}
	}
}

// reduce aggregates each partition by key with a growable in-space hash
// table sized by the number of *distinct* keys (like Phoenix, whose reduce
// touches far less data than the shuffle — Figure 10: 13 GB vs 181 GB), and
// rewrites the partition with one record per distinct key.
func (e *Engine) reduce(env *ddc.Env) {
	for r, part := range e.partitions {
		if part.n == 0 {
			continue
		}
		ht := newReduceTable(env, e.C.P, 512)
		for i := 0; i < part.n; i++ {
			env.Compute(opsReduceKV)
			kv := part.get(env, i)
			ht.add(env, kv.K, kv.V)
		}
		out := newKVBuf(e.C.P, ht.distinct+1, "mr.rout")
		ht.drain(env, func(kv KV) { out.append(env, kv) })
		e.partitions[r] = out
	}
}

// reduceTable is an open-addressing sum table that doubles when it passes
// 70% load.
type reduceTable struct {
	p        *ddc.Process
	nSlots   int
	keys     mem.Addr
	sums     mem.Addr
	distinct int
}

func newReduceTable(env *ddc.Env, p *ddc.Process, slots int) *reduceTable {
	t := &reduceTable{p: p}
	t.alloc(env, slots)
	return t
}

func (t *reduceTable) alloc(env *ddc.Env, slots int) {
	t.nSlots = slots
	t.keys = t.p.Space.AllocPages(int64(slots)*8, "mr.rkeys")
	t.sums = t.p.Space.AllocPages(int64(slots)*8, "mr.rsums")
	for i := 0; i < slots; i++ {
		// Table initialisation happens where the reducer runs.
		env.WriteI64(t.keys+mem.Addr(i*8), kvEmpty)
	}
}

func (t *reduceTable) add(env *ddc.Env, key, val int64) {
	if t.distinct*10 > t.nSlots*7 {
		t.grow(env)
	}
	slot := int(uint64(key)*0x9E3779B97F4A7C15>>32) & (t.nSlots - 1)
	for {
		k := env.ReadI64(t.keys + mem.Addr(slot*8))
		if k == key {
			break
		}
		if k == kvEmpty {
			env.WriteI64(t.keys+mem.Addr(slot*8), key)
			t.distinct++
			break
		}
		env.Compute(2)
		slot = (slot + 1) & (t.nSlots - 1)
	}
	a := mem.Addr(slot * 8)
	env.WriteI64(t.sums+a, env.ReadI64(t.sums+a)+val)
}

func (t *reduceTable) grow(env *ddc.Env) {
	oldKeys, oldSums, oldSlots := t.keys, t.sums, t.nSlots
	t.alloc(env, oldSlots*2)
	t.distinct = 0
	for i := 0; i < oldSlots; i++ {
		env.Compute(2)
		k := env.ReadI64(oldKeys + mem.Addr(i*8))
		if k == kvEmpty {
			continue
		}
		t.add(env, k, env.ReadI64(oldSums+mem.Addr(i*8)))
	}
}

func (t *reduceTable) drain(env *ddc.Env, f func(KV)) {
	for i := 0; i < t.nSlots; i++ {
		env.Compute(1)
		k := env.ReadI64(t.keys + mem.Addr(i*8))
		if k == kvEmpty {
			continue
		}
		f(KV{k, env.ReadI64(t.sums + mem.Addr(i*8))})
	}
}

const kvEmpty = int64(-0x7FFFFFFFFFFFFFF7)

// merge collects the reducers' outputs and sorts them by key (the final,
// comparatively small phase of Figure 10).
func (e *Engine) merge(env *ddc.Env) {
	var all []KV
	for _, part := range e.partitions {
		for i := 0; i < part.n; i++ {
			env.Compute(opsMergeStep)
			all = append(all, part.get(env, i))
		}
	}
	n := len(all)
	if n > 1 {
		env.Compute(float64(n) * logishF(n) * opsMergeStep)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].K < all[j].K })
	e.results = all
}

func logishF(n int) float64 {
	f := 1.0
	for n > 1 {
		n >>= 1
		f++
	}
	return f
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
