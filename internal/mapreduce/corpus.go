// Package mapreduce is a shared-memory MapReduce engine in the style of
// Phoenix (§5.3). The input corpus, every intermediate key-value buffer,
// and the results live in the process's disaggregated address space. The
// map phase is split into map-compute (tokenising, CPU-heavy) and
// map-shuffle (scattering key-value records to per-reducer buffers,
// memory-heavy) exactly as §5.3 does, so that only the data-intensive
// sub-phase is Teleported.
package mapreduce

import (
	"fmt"
	"math/rand"

	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// Corpus is a text dataset in disaggregated memory (standing in for the
// paper's 15M-comment Reddit dataset).
type Corpus struct {
	P     *ddc.Process
	Base  mem.Addr
	Len   int64
	Lines int
	Vocab int
}

// CorpusConfig controls generation.
type CorpusConfig struct {
	// Words is the total token count; Vocab the vocabulary size. Word
	// frequencies are Zipf-distributed like natural language.
	Words int
	Vocab int
	// WordsPerLine sets the average comment length.
	WordsPerLine int
	// Seed makes generation deterministic.
	Seed int64
	// KeepRaw retains the generated text for verification.
	KeepRaw bool
}

// GenerateCorpus synthesises the corpus directly into the memory pool.
func GenerateCorpus(p *ddc.Process, cfg CorpusConfig) (*Corpus, []byte) {
	if cfg.Words <= 0 || cfg.Vocab <= 1 {
		panic("mapreduce: bad CorpusConfig")
	}
	if cfg.WordsPerLine <= 0 {
		cfg.WordsPerLine = 12
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, 1.3, 1, uint64(cfg.Vocab-1))
	buf := make([]byte, 0, cfg.Words*6)
	lines := 1
	for i := 0; i < cfg.Words; i++ {
		buf = append(buf, fmt.Sprintf("w%d", zipf.Uint64())...)
		if (i+1)%cfg.WordsPerLine == 0 {
			buf = append(buf, '\n')
			lines++
		} else {
			buf = append(buf, ' ')
		}
	}
	buf = append(buf, '\n')
	base := p.Space.AllocPages(int64(len(buf)), "corpus")
	p.Space.WriteAt(base, buf)
	c := &Corpus{P: p, Base: base, Len: int64(len(buf)), Lines: lines, Vocab: cfg.Vocab}
	if cfg.KeepRaw {
		return c, buf
	}
	return c, nil
}

// ReadChunk copies corpus bytes [lo, hi) through the paging model in
// cache-line-sized units (the streaming read pattern of a scan).
func (c *Corpus) ReadChunk(env *ddc.Env, lo, hi int64, out []byte) []byte {
	n := hi - lo
	if int64(cap(out)) < n {
		out = make([]byte, n)
	}
	out = out[:n]
	const unit = 256
	for off := int64(0); off < n; off += unit {
		end := off + unit
		if end > n {
			end = n
		}
		env.ReadBytes(c.Base+mem.Addr(lo+off), out[off:end])
	}
	return out
}
