package mapreduce

import (
	"strings"
	"testing"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

func localCorpus(t *testing.T, words int) (*Corpus, []byte, *profile.Exec) {
	t.Helper()
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	c, raw := GenerateCorpus(p, CorpusConfig{Words: words, Vocab: 500, Seed: 5, KeepRaw: true})
	return c, raw, profile.NewExec(sim.NewThread("mr"), p, nil)
}

func naiveWordCount(raw []byte) map[int64]int64 {
	want := map[int64]int64{}
	for _, tok := range strings.Fields(string(raw)) {
		var id int64
		for _, ch := range tok[1:] {
			id = id*10 + int64(ch-'0')
		}
		want[id]++
	}
	return want
}

func TestCorpusGeneration(t *testing.T) {
	c, raw, ex := localCorpus(t, 2000)
	if c.Len != int64(len(raw)) {
		t.Fatalf("Len %d vs raw %d", c.Len, len(raw))
	}
	if c.Lines < 2000/13 {
		t.Fatalf("Lines = %d", c.Lines)
	}
	// The stored bytes must equal the raw copy.
	got := make([]byte, len(raw))
	ex.Env.P.Space.ReadAt(c.Base, got)
	for i := range raw {
		if raw[i] != got[i] {
			t.Fatal("stored corpus differs from raw copy")
		}
	}
	// Zipf skew: the most common word should dominate.
	counts := naiveWordCount(raw)
	var max int64
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 2000/20 {
		t.Fatalf("no Zipf skew: max count %d", max)
	}
}

func TestWordCountMatchesNaive(t *testing.T) {
	c, raw, ex := localCorpus(t, 3000)
	eng := NewEngine(c, WordCount{}, 4, 4)
	eng.Run(ex)
	want := naiveWordCount(raw)
	got := eng.Results()
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	prev := int64(-1)
	for _, kv := range got {
		if kv.K <= prev {
			t.Fatal("results not sorted by key")
		}
		prev = kv.K
		if want[kv.K] != kv.V {
			t.Fatalf("word %d count = %d, want %d", kv.K, kv.V, want[kv.K])
		}
	}
}

func TestWordCountTaskCountInvariance(t *testing.T) {
	// The answer must not depend on mapper/reducer counts.
	sum := func(mappers, reducers int) int64 {
		c, _, ex := localCorpus(t, 2500)
		eng := NewEngine(c, WordCount{}, mappers, reducers)
		eng.Run(ex)
		var s int64
		for _, kv := range eng.Results() {
			s += kv.V * (kv.K + 1)
		}
		return s
	}
	a, b, c := sum(1, 1), sum(3, 5), sum(8, 2)
	if a != b || a != c {
		t.Fatalf("results vary with task counts: %d %d %d", a, b, c)
	}
}

func TestGrepCountsMatches(t *testing.T) {
	c, raw, ex := localCorpus(t, 3000)
	eng := NewEngine(c, Grep{Pattern: "w1 ", Buckets: 16}, 4, 2)
	eng.Run(ex)
	var got int64
	for _, kv := range eng.Results() {
		got += kv.V
	}
	want := int64(strings.Count(string(raw), "w1 "))
	if got != want {
		t.Fatalf("grep hits = %d, want %d", got, want)
	}
}

func TestPhasesProfiled(t *testing.T) {
	c, _, ex := localCorpus(t, 1000)
	eng := NewEngine(c, WordCount{}, 2, 2)
	eng.Run(ex)
	prof := ex.Profile()
	if len(prof) != 4 {
		t.Fatalf("profile = %+v", prof)
	}
	for i, name := range Phases {
		if prof[i].Name != name {
			t.Fatalf("phase %d = %s, want %s", i, prof[i].Name, name)
		}
	}
}

// TestWordCountIdenticalAcrossPlatforms: same answer on Linux, base DDC,
// TELEPORT (map-shuffle pushed); local < teleport < base for time.
func TestWordCountIdenticalAcrossPlatforms(t *testing.T) {
	run := func(cfg ddc.Config, push bool) (int64, sim.Time) {
		m := ddc.MustMachine(cfg)
		p := m.NewProcess()
		c, _ := GenerateCorpus(p, CorpusConfig{Words: 60000, Vocab: 2000, Seed: 5})
		th := sim.NewThread("mr")
		var rt *core.Runtime
		if push {
			rt = core.NewRuntime(p, 1)
		}
		ex := profile.NewExec(th, p, rt)
		if push {
			ex.Push(OpMapShuffle)
		}
		eng := NewEngine(c, WordCount{}, 4, 8)
		eng.Run(ex)
		var s int64
		for _, kv := range eng.Results() {
			s += kv.V * (kv.K*7 + 1)
		}
		return s, ex.Total()
	}
	cache := int64(64 * mem.PageSize)
	sumL, tL := run(ddc.Linux(), false)
	sumB, tB := run(ddc.BaseDDC(cache), false)
	sumT, tT := run(ddc.BaseDDC(cache), true)
	if sumL != sumB || sumL != sumT {
		t.Fatalf("answers differ: %d %d %d", sumL, sumB, sumT)
	}
	if !(tL < tT && tT < tB) {
		t.Fatalf("time ordering broken: local %v, teleport %v, base %v", tL, tT, tB)
	}
}

// TestGrepPushedMatchesUnpushed: pushing the map-shuffle must not change
// grep's results.
func TestGrepPushedMatchesUnpushed(t *testing.T) {
	results := make([][]KV, 2)
	for variant := 0; variant < 2; variant++ {
		m := ddc.MustMachine(ddc.BaseDDC(48 * mem.PageSize))
		p := m.NewProcess()
		c, _ := GenerateCorpus(p, CorpusConfig{Words: 20000, Vocab: 300, Seed: 9})
		var rt *core.Runtime
		if variant == 1 {
			rt = core.NewRuntime(p, 1)
		}
		ex := profile.NewExec(sim.NewThread("grep"), p, rt)
		if variant == 1 {
			ex.Push(OpMapShuffle)
		}
		eng := NewEngine(c, Grep{Pattern: "w2 ", Buckets: 32}, 3, 4)
		eng.Run(ex)
		results[variant] = eng.Results()
	}
	if len(results[0]) != len(results[1]) {
		t.Fatalf("result counts differ: %d vs %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, results[0][i], results[1][i])
		}
	}
}

func TestGrepNoMatches(t *testing.T) {
	c, _, ex := localCorpus(t, 1000)
	eng := NewEngine(c, Grep{Pattern: "zzz-not-present"}, 2, 2)
	eng.Run(ex)
	if len(eng.Results()) != 0 {
		t.Fatalf("no-match grep returned %d rows", len(eng.Results()))
	}
}

func TestGrepEmptyPatternAndDefaults(t *testing.T) {
	c, _, ex := localCorpus(t, 500)
	eng := NewEngine(c, Grep{}, 0, 0) // empty pattern, clamped task counts
	eng.Run(ex)
	if eng.Mappers != 1 || eng.Reducers != 1 {
		t.Fatalf("task counts not clamped: %d/%d", eng.Mappers, eng.Reducers)
	}
	if len(eng.Results()) != 0 {
		t.Fatal("empty pattern must match nothing")
	}
}

func TestMoreMappersThanLines(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	c, raw := GenerateCorpus(p, CorpusConfig{Words: 30, Vocab: 10, Seed: 2, KeepRaw: true})
	ex := profile.NewExec(sim.NewThread("mr"), p, nil)
	eng := NewEngine(c, WordCount{}, 16, 4) // chunks smaller than lines
	eng.Run(ex)
	want := naiveWordCount(raw)
	var total, wantTotal int64
	for _, kv := range eng.Results() {
		total += kv.V
	}
	for _, v := range want {
		wantTotal += v
	}
	if total != wantTotal {
		t.Fatalf("token total = %d, want %d", total, wantTotal)
	}
}
