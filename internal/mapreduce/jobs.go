package mapreduce

import (
	"teleport/internal/ddc"
)

// WordCount counts word occurrences (the paper's WC workload). Words in the
// synthetic corpus are "w<id>" tokens; the id is the key.
type WordCount struct{}

// Name implements Job.
func (WordCount) Name() string { return "WordCount" }

// Map tokenises the chunk and emits (wordID, 1) per token.
func (WordCount) Map(env *ddc.Env, chunk []byte, _ int, emit func(k, v int64)) {
	i := 0
	for i < len(chunk) {
		// Skip separators.
		for i < len(chunk) && (chunk[i] == ' ' || chunk[i] == '\n') {
			i++
		}
		if i >= len(chunk) {
			return
		}
		// Parse "w<digits>".
		var id int64
		j := i
		if chunk[j] == 'w' {
			j++
			for j < len(chunk) && chunk[j] >= '0' && chunk[j] <= '9' {
				id = id*10 + int64(chunk[j]-'0')
				j++
			}
			emit(id, 1)
		} else {
			for j < len(chunk) && chunk[j] != ' ' && chunk[j] != '\n' {
				j++
			}
		}
		i = j
	}
}

// Grep counts pattern occurrences per line-bucket (the paper's Grep
// workload): the map side does substring matching over the raw bytes and
// emits one record per hit, so the shuffle is small while the scan is not.
type Grep struct {
	Pattern string
	// Buckets controls how many distinct keys the hits spread over.
	Buckets int64
}

// Name implements Job.
func (g Grep) Name() string { return "Grep" }

// Map emits (line bucket, 1) for every pattern occurrence.
func (g Grep) Map(env *ddc.Env, chunk []byte, lineBase int, emit func(k, v int64)) {
	pat := []byte(g.Pattern)
	if len(pat) == 0 {
		return
	}
	buckets := g.Buckets
	if buckets <= 0 {
		buckets = 64
	}
	line := int64(lineBase)
	for i := 0; i+len(pat) <= len(chunk); i++ {
		if chunk[i] == '\n' {
			line++
			continue
		}
		match := true
		for k := range pat {
			if chunk[i+k] != pat[k] {
				match = false
				break
			}
		}
		if match {
			emit(line%buckets, 1)
		}
	}
}
