package loc

import (
	"os"
	"path/filepath"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestModuleRootFindsGoMod(t *testing.T) {
	root := moduleRoot(t)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatal(err)
	}
}

func TestModuleRootFailsOutsideModule(t *testing.T) {
	if _, err := ModuleRoot(t.TempDir()); err == nil {
		t.Fatal("expected error outside a module")
	}
}

func TestFuncLinesPlainFunction(t *testing.T) {
	dir := t.TempDir()
	src := `package x

// F does something.
func F() int {
	a := 1
	return a
}
`
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := FuncLines(path, "F")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("FuncLines = %d, want 4", n)
	}
}

func TestFuncLinesMethod(t *testing.T) {
	dir := t.TempDir()
	src := `package x

type T struct{}

func (t *T) M() {
	_ = t
}

func M() {}
`
	path := filepath.Join(dir, "m.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, _ := FuncLines(path, "T.M"); n != 3 {
		t.Fatalf("method lines = %d, want 3", n)
	}
	if n, _ := FuncLines(path, "M"); n != 1 {
		t.Fatalf("plain lines = %d, want 1", n)
	}
	if _, err := FuncLines(path, "Missing"); err == nil {
		t.Fatal("expected error for missing function")
	}
}

func TestDefaultEntriesResolveAndStaySmall(t *testing.T) {
	root := moduleRoot(t)
	rows, err := Count(root, DefaultEntries())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (Figure 11)", len(rows))
	}
	for _, r := range rows {
		if r.PushedCode <= 0 || r.CodeChange <= 0 {
			t.Fatalf("row %+v has empty counts", r)
		}
		// The paper's point: pushed code stays under ~100 lines and
		// integration changes stay in the low hundreds.
		if r.PushedCode > 150 {
			t.Fatalf("pushed code for %s = %d lines — too large to claim minimal modification",
				r.Operator, r.PushedCode)
		}
		if r.CodeChange > 400 {
			t.Fatalf("code change for %s = %d lines", r.Operator, r.CodeChange)
		}
	}
}
