// Package loc reproduces Figure 11 — the per-operator "code change" and
// "pushed code" line counts — by statically analysing this repository's own
// sources with go/parser. The paper's point is that applying TELEPORT takes
// negligible modification (tens to a few hundred lines per operator against
// 400K-LoC systems); the same holds here, and this package measures it from
// the code instead of hard-coding numbers.
package loc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// FuncRef names a function (or "Type.Method") in a file relative to the
// module root.
type FuncRef struct {
	File string
	Name string
}

// Entry describes one Figure 11 row: the integration functions on the
// compute side ("code change") and the functions executed in the memory
// pool ("pushed code").
type Entry struct {
	System        string
	Operator      string
	Functionality string
	Change        []FuncRef
	Pushed        []FuncRef
}

// Row is the measured result.
type Row struct {
	System        string
	Operator      string
	Functionality string
	CodeChange    int
	PushedCode    int
}

// ModuleRoot walks up from dir until it finds go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loc: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// FuncLines returns the source-line count of the named function in file.
// Methods are addressed as "Type.Method" (pointer receivers included).
func FuncLines(file, name string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		return 0, err
	}
	wantRecv, wantName := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		wantRecv, wantName = name[:i], name[i+1:]
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != wantName {
			continue
		}
		if wantRecv != recvTypeName(fd) {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		return end - start + 1, nil
	}
	return 0, fmt.Errorf("loc: function %s not found in %s", name, file)
}

// recvTypeName returns the receiver's base type name ("" for plain
// functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Count measures every entry relative to the module root.
func Count(root string, entries []Entry) ([]Row, error) {
	rows := make([]Row, 0, len(entries))
	sum := func(refs []FuncRef) (int, error) {
		total := 0
		for _, r := range refs {
			n, err := FuncLines(filepath.Join(root, r.File), r.Name)
			if err != nil {
				return 0, fmt.Errorf("%s %s: %w", r.File, r.Name, err)
			}
			total += n
		}
		return total, nil
	}
	for _, e := range entries {
		change, err := sum(e.Change)
		if err != nil {
			return nil, err
		}
		pushed, err := sum(e.Pushed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			System: e.System, Operator: e.Operator, Functionality: e.Functionality,
			CodeChange: change, PushedCode: pushed,
		})
	}
	return rows, nil
}

// DefaultEntries maps Figure 11's rows onto this repository: the pushed
// code is the operator implementation that executes in the memory pool; the
// code change is the plan/engine integration that wraps it.
func DefaultEntries() []Entry {
	coldbOps := "internal/coldb/ops.go"
	coldbJoin := "internal/coldb/join.go"
	tpchQ := "internal/tpch/queries.go"
	gEng := "internal/graph/engine.go"
	mrEng := "internal/mapreduce/engine.go"
	return []Entry{
		{
			System: "coldb (MonetDB stand-in)", Operator: "Projection",
			Functionality: "Get a subset of columns from a list of records",
			Change:        []FuncRef{{tpchQ, "QFilter"}},
			Pushed:        []FuncRef{{coldbOps, "Project"}},
		},
		{
			System: "coldb (MonetDB stand-in)", Operator: "Aggregation",
			Functionality: "Apply an aggregate function over tuples",
			Change:        []FuncRef{{tpchQ, "QFilter"}},
			Pushed:        []FuncRef{{coldbOps, "Aggregate"}},
		},
		{
			System: "coldb (MonetDB stand-in)", Operator: "Selection",
			Functionality: "Select tuples with filters into a temporary table",
			Change:        []FuncRef{{tpchQ, "QFilter"}},
			Pushed:        []FuncRef{{coldbOps, "SelectI64"}},
		},
		{
			System: "coldb (MonetDB stand-in)", Operator: "HashJoin",
			Functionality: "Scan outer, probe hash index, generate join results",
			Change:        []FuncRef{{tpchQ, "Q3"}},
			Pushed:        []FuncRef{{coldbJoin, "BuildHashIndex"}, {coldbJoin, "HashJoinProbe"}},
		},
		{
			System: "graph (PowerGraph stand-in)", Operator: "Finalize",
			Functionality: "Partition and shuffle input graph among workers",
			Change:        []FuncRef{{gEng, "Engine.Run"}},
			Pushed:        []FuncRef{{gEng, "Engine.finalize"}},
		},
		{
			System: "graph (PowerGraph stand-in)", Operator: "Scatter",
			Functionality: "Exchange and combine messages between vertices",
			Change:        []FuncRef{{gEng, "Engine.Run"}},
			Pushed:        []FuncRef{{gEng, "Engine.scatter"}},
		},
		{
			System: "graph (PowerGraph stand-in)", Operator: "Gather",
			Functionality: "Aggregate messages and apply a user-defined function",
			Change:        []FuncRef{{gEng, "Engine.Run"}},
			Pushed:        []FuncRef{{gEng, "Engine.gather"}, {gEng, "Engine.apply"}},
		},
		{
			System: "mapreduce (Phoenix stand-in)", Operator: "MapShuffle",
			Functionality: "Shuffle map results to the buffers of reduce tasks",
			Change:        []FuncRef{{mrEng, "Engine.Run"}},
			Pushed:        []FuncRef{{mrEng, "Engine.mapShuffle"}},
		},
	}
}
