package sim

import (
	"fmt"
	"sort"
)

// Conservative parallel discrete-event execution.
//
// A Domain groups the simulated threads of one machine. Threads within a
// domain interleave under the usual one-baton rule; threads in different
// domains interact only through Post, which models a message with a known
// minimum latency L (the lookahead). That bound makes windowed execution
// safe: if G is the smallest clock of any runnable thread, no cross-domain
// message sent from now on can wake anything before G+L, so every domain
// may advance to the horizon H = G+L without hearing from the others.
//
// Run repeats: deliver mail → compute G → run every domain with work below
// H = G+L (concurrently, on up to SetWorkers host goroutines) → collect the
// outboxes. Mail is applied only at the barrier, merged in domain order and
// sorted by (arrival time, target spawn index, sender domain, send seq), so
// the delivery order — and therefore every virtual time — is independent of
// the worker count and of which host goroutine ran which domain. Domains
// never share simulator state inside a window; the barrier is the only
// cross-domain synchronization.
type Domain struct {
	d *domain
}

// domain is the scheduler-internal per-machine execution context. Its heap,
// counters, and outbox are touched only by the domain's own running threads
// (one at a time, baton rule) and by the coordinator between windows; the
// work/ack channel handoff orders the two.
type domain struct {
	s       *Scheduler
	index   int
	name    string
	heap    []*Thread
	horizon Time
	wake    chan struct{} // driver parks here while a thread runs

	outbox []mail // cross-domain wakes produced this window
	outSeq int    // per-domain send counter (mail sort tie-break)

	nLive    int // spawned and not yet done
	nBlocked int // currently blocked (deadlock accounting)

	maxFinish Time  // max clock of retired threads
	switches  int64 // baton handoffs (see Scheduler.Switches)
}

// mail is one buffered cross-domain wake: target becomes runnable at `at`.
type mail struct {
	to  *Thread
	at  Time
	dom int // sender domain index
	seq int // sender domain send counter
}

// windowJob asks a worker to drain one domain up to horizon h.
type windowJob struct {
	d *domain
	h Time
}

// NewDomain adds an execution domain — one simulated machine — to the
// scheduler. Threads spawned on different domains may only interact through
// Post; same-domain threads keep the full Block/Unblock vocabulary.
func (s *Scheduler) NewDomain(name string) *Domain {
	return &Domain{d: s.addDomain(name)}
}

func (s *Scheduler) addDomain(name string) *domain {
	d := &domain{
		s:     s,
		index: len(s.domains),
		name:  name,
		wake:  make(chan struct{}),
	}
	s.domains = append(s.domains, d)
	return d
}

// Spawn registers a new simulated thread in this domain. Semantics match
// Scheduler.Spawn; the spawn index (and so every tie-break) is global
// across domains.
func (dm *Domain) Spawn(name string, start Time, fn func(*Thread)) *Thread {
	return dm.d.spawn(name, start, fn)
}

// Name returns the domain's diagnostic name.
func (dm *Domain) Name() string { return dm.d.name }

// SetLookahead declares the minimum cross-domain message latency L: every
// Post must arrive at least L after the sender's current clock. Multi-domain
// runs require a positive lookahead — it is the window size that lets
// domains advance concurrently while staying deterministic. Use the
// fabric's minimum link latency (netmodel.Fabric.MinLatency) or any larger
// bound the model guarantees, e.g. a BSP sync epoch.
func (s *Scheduler) SetLookahead(l Time) { s.lookahead = l }

// Lookahead returns the declared minimum cross-domain message latency.
func (s *Scheduler) Lookahead() Time { return s.lookahead }

// SetWorkers bounds how many host goroutines drain domains inside one
// window. Values below 2 mean sequential draining. The setting changes only
// host parallelism: virtual times are bit-identical at any worker count,
// because windows and mail delivery are computed identically either way.
func (s *Scheduler) SetWorkers(n int) { s.workers = n }

// Post delivers a cross-domain wake: u becomes runnable at virtual time
// `at` (or at its blocking time, if later). For a same-domain target it is
// identical to Unblock. Cross-domain, `at` must respect the lookahead —
// at ≥ sender.now + L — which is what makes the conservative window safe;
// undercutting it panics. The wake is buffered in the sender domain's
// outbox and applied at the next barrier.
func (t *Thread) Post(u *Thread, at Time) {
	if t.sched == nil || u.sched == nil {
		panic("sim: Post involving standalone thread")
	}
	if t.sched != u.sched {
		panic("sim: Post across schedulers")
	}
	if u.dom == t.dom {
		t.sched.unblock(u, at)
		return
	}
	d := t.dom
	if at < t.now+t.sched.lookahead {
		panic(fmt.Sprintf(
			"sim: Post to %s at %dns undercuts lookahead %dns from sender time %dns: cross-domain messages must take at least the declared minimum latency",
			u.name, int64(at), int64(t.sched.lookahead), int64(t.now)))
	}
	d.outSeq++
	d.outbox = append(d.outbox, mail{to: u, at: at, dom: d.index, seq: d.outSeq})
}

// runWindows is the multi-domain driver: the conservative window barrier
// loop. Each iteration delivers pending mail, computes the global lower
// bound G over all ready heaps, and runs every domain that has work below
// H = G + lookahead. The active-domain set, the horizon, and the mail order
// depend only on virtual state, never on host timing.
func (s *Scheduler) runWindows() {
	if s.lookahead <= 0 {
		panic("sim: multi-domain Run requires a positive SetLookahead (the conservative window needs a minimum cross-domain latency)")
	}
	workers := s.workers
	if workers > len(s.domains) {
		workers = len(s.domains)
	}
	if workers > 1 {
		s.workCh = make(chan windowJob, len(s.domains))
		s.ackCh = make(chan struct{}, len(s.domains))
		for i := 0; i < workers; i++ {
			go s.windowWorker()
		}
		defer close(s.workCh)
	}
	active := make([]*domain, 0, len(s.domains))
	for {
		s.deliverMail()
		glb := horizonMax
		for _, d := range s.domains {
			if n := d.peek(); n != nil && n.now < glb {
				glb = n.now
			}
		}
		if glb == horizonMax {
			// No runnable thread anywhere and no deliverable mail: every
			// live thread (if any) is blocked forever. Run's sweep decides
			// between completion and deadlock.
			return
		}
		h := glb + s.lookahead
		active = active[:0]
		for _, d := range s.domains {
			if n := d.peek(); n != nil && n.now < h {
				active = append(active, d)
			}
		}
		if workers <= 1 || len(active) == 1 {
			for _, d := range active {
				d.runWindow(h)
			}
		} else {
			for _, d := range active {
				s.workCh <- windowJob{d: d, h: h}
			}
			for range active {
				<-s.ackCh
			}
		}
		s.collectMail()
	}
}

// windowWorker drains domains handed to it by the coordinator. Workers
// never touch domain state directly — runWindow resumes the domain's own
// threads, and the ack send publishes the finished window back to the
// coordinator before it reads any heap or outbox.
func (s *Scheduler) windowWorker() {
	for job := range s.workCh {
		job.d.runWindow(job.h)
		s.ackCh <- struct{}{}
	}
}

// collectMail moves every domain outbox into the pending list (domain
// order) and sorts pending by (arrival, target spawn index, sender domain,
// send seq) — a total order over all mail, so delivery is deterministic.
func (s *Scheduler) collectMail() {
	grew := false
	for _, d := range s.domains {
		if len(d.outbox) > 0 {
			s.pending = append(s.pending, d.outbox...)
			d.outbox = d.outbox[:0]
			grew = true
		}
	}
	if !grew {
		return
	}
	sort.Slice(s.pending, func(i, j int) bool {
		a, b := s.pending[i], s.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.to.index != b.to.index {
			return a.to.index < b.to.index
		}
		if a.dom != b.dom {
			return a.dom < b.dom
		}
		return a.seq < b.seq
	})
}

// deliverMail applies pending cross-domain wakes to targets that are
// blocked right now, earliest mail first, at most one per target per
// barrier (delivering one makes the target ready, so later mail for it is
// retained). Mail for a target that has not blocked yet — it was still
// ready or running when the message "arrived" — stays pending until a
// barrier finds it blocked; the wake time is max(block time, arrival), the
// same rendezvous a real receive would produce.
func (s *Scheduler) deliverMail() {
	if len(s.pending) == 0 {
		return
	}
	kept := s.pending[:0]
	for _, m := range s.pending {
		switch m.to.state {
		case stateBlocked:
			s.unblock(m.to, m.at)
		case stateDone:
			panic("sim: Post to finished thread " + m.to.name)
		default:
			kept = append(kept, m)
		}
	}
	tail := s.pending[len(kept):]
	for i := range tail {
		tail[i] = mail{}
	}
	s.pending = kept
}
