package sim

// Indexed binary min-heap of runnable threads, ordered by (virtual clock,
// spawn index). The root is always the thread furthest behind in virtual
// time, with ties broken toward the earliest-spawned thread — exactly the
// pick order the old O(n) pickReady scan produced, at O(log n) per update
// and O(1) per peek. Each thread carries its heap position (hpos) so
// membership needs no search and removal needs no scan.

// heapLess orders threads by (now, spawn index).
func heapLess(a, b *Thread) bool {
	return a.now < b.now || (a.now == b.now && a.index < b.index)
}

// push inserts t into the domain's ready heap.
func (d *domain) push(t *Thread) {
	t.hpos = len(d.heap)
	d.heap = append(d.heap, t)
	d.siftUp(t.hpos)
}

// peek returns the furthest-behind ready thread without removing it, or nil.
func (d *domain) peek() *Thread {
	if len(d.heap) == 0 {
		return nil
	}
	return d.heap[0]
}

// pop removes and returns the furthest-behind ready thread.
func (d *domain) pop() *Thread {
	t := d.heap[0]
	last := len(d.heap) - 1
	d.heap[0] = d.heap[last]
	d.heap[0].hpos = 0
	d.heap[last] = nil
	d.heap = d.heap[:last]
	if last > 0 {
		d.siftDown(0)
	}
	t.hpos = -1
	return t
}

func (d *domain) siftUp(i int) {
	h := d.heap
	t := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(t, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].hpos = i
		i = parent
	}
	h[i] = t
	t.hpos = i
}

func (d *domain) siftDown(i int) {
	h := d.heap
	n := len(h)
	t := h[i]
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && heapLess(h[r], h[kid]) {
			kid = r
		}
		if !heapLess(h[kid], t) {
			break
		}
		h[i] = h[kid]
		h[i].hpos = i
		i = kid
	}
	h[i] = t
	t.hpos = i
}
