package sim

// Thread is a simulated thread of execution. It owns a virtual clock that
// advances as the thread charges costs for the work it performs. A Thread is
// either standalone (created with NewThread, no interleaving) or attached to
// a Scheduler, in which case Advance may yield control so that the scheduler
// can run whichever thread is furthest behind in virtual time.
type Thread struct {
	name  string
	now   Time
	sched *Scheduler

	// Scheduler bookkeeping (nil scheduler ⇒ unused).
	index  int // global spawn index: the deterministic tie-break
	hpos   int // position in the domain's ready heap (-1 = not queued)
	state  threadState
	dom    *domain // owning execution domain
	resume chan struct{}
}

type threadState int

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// NewThread returns a standalone simulated thread starting at virtual time 0.
// Standalone threads never yield; they are the fast path for single-threaded
// workloads.
func NewThread(name string) *Thread {
	return &Thread{name: name}
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Now returns the thread's current virtual time.
func (t *Thread) Now() Time { return t.now }

// Advance charges d of virtual time to the thread. If the thread runs under
// a scheduler and another runnable thread is now behind it, the thread
// yields.
func (t *Thread) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	t.now += d
	if t.sched != nil {
		t.sched.maybeYield(t)
	}
}

// AdvanceTo moves the thread's clock forward to at least ts (it never moves
// the clock backwards). Use it to model waiting for an event that completes
// at a known virtual time.
func (t *Thread) AdvanceTo(ts Time) {
	if ts > t.now {
		t.Advance(ts - t.now)
	}
}

// AdvanceNs charges a floating-point nanosecond cost.
func (t *Thread) AdvanceNs(ns float64) { t.Advance(FromNs(ns)) }

// Block parks the thread until another simulated thread calls Unblock (same
// domain) or Post (any domain). The thread's clock is advanced to the
// wake-up time supplied by the unblocker. Block panics on a standalone
// thread (nothing could ever wake it).
func (t *Thread) Block() {
	if t.sched == nil {
		panic("sim: Block on standalone thread " + t.name)
	}
	t.sched.block(t)
}

// Unblock marks a blocked thread runnable again, with its clock advanced to
// at least `at`. It must be called from another simulated thread (or from
// scheduler-driven code) of the same scheduler and the same domain; use
// Thread.Post for cross-domain wakes.
func (t *Thread) Unblock(at Time) {
	if t.sched == nil {
		panic("sim: Unblock on standalone thread " + t.name)
	}
	t.sched.unblock(t, at)
}

// Attached reports whether the thread runs under a scheduler.
func (t *Thread) Attached() bool { return t.sched != nil }
