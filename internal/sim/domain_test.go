package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// lookL is the cross-domain lookahead used throughout the domain tests.
const lookL = 10 * Microsecond

// buildPingPong wires two domains that ping-pong `rounds` messages and
// returns the scheduler plus the two threads.
func buildPingPong(rounds int, workers int) (*Scheduler, *Thread, *Thread) {
	s := NewScheduler()
	s.SetLookahead(lookL)
	s.SetWorkers(workers)
	da := s.NewDomain("machine-a")
	db := s.NewDomain("machine-b")
	var a, b *Thread
	a = da.Spawn("a", 0, func(th *Thread) {
		for i := 0; i < rounds; i++ {
			th.Post(b, th.Now()+lookL)
			th.Block()
		}
	})
	b = db.Spawn("b", 0, func(th *Thread) {
		for i := 0; i < rounds; i++ {
			th.Block()
			th.Advance(3 * Microsecond)
			th.Post(a, th.Now()+lookL)
		}
	})
	return s, a, b
}

func TestDomainPingPongExactTimes(t *testing.T) {
	// Hand-computed: each round costs 10µs (a→b flight) + 3µs (b's work) +
	// 10µs (b→a flight) = 23µs of a's clock; b retires one flight earlier.
	s, a, b := buildPingPong(3, 1)
	if end := s.Run(); end != 69*Microsecond {
		t.Fatalf("makespan %v, want 69µs", end)
	}
	if a.Now() != 69*Microsecond || b.Now() != 59*Microsecond {
		t.Fatalf("final clocks a=%v b=%v, want 69µs/59µs", a.Now(), b.Now())
	}
}

func TestDomainWorkerCountInvariance(t *testing.T) {
	// The same multi-domain model must produce bit-identical virtual times
	// at every worker count: workers change host parallelism only.
	type outcome struct {
		End    Time
		Clocks []Time
		Switch int64
	}
	run := func(workers int) outcome {
		const domains, hops = 4, 16
		s := NewScheduler()
		s.SetLookahead(lookL)
		s.SetWorkers(workers)
		ring := make([]*Thread, domains)
		var locals []*Thread
		for i := 0; i < domains; i++ {
			i := i
			dm := s.NewDomain(fmt.Sprintf("m%d", i))
			// Token ring: domain i handles every hop h with h%domains == i,
			// charging a per-domain cost before forwarding the token.
			ring[i] = dm.Spawn(fmt.Sprintf("ring-%d", i), 0, func(th *Thread) {
				for h := i; h < hops; h += domains {
					if h > 0 {
						th.Block()
					}
					th.Advance(Time(i+1) * Microsecond)
					if h+1 < hops {
						th.Post(ring[(i+1)%domains], th.Now()+lookL)
					}
				}
			})
			// A local pair exercises same-domain Block/Unblock inside the
			// parallel windows.
			waiter := dm.Spawn(fmt.Sprintf("waiter-%d", i), 0, func(th *Thread) {
				th.Block()
				th.Advance(Microsecond)
			})
			locals = append(locals, waiter,
				dm.Spawn(fmt.Sprintf("waker-%d", i), 0, func(th *Thread) {
					th.Advance(Time(7*(i+1)) * Microsecond)
					waiter.Unblock(th.Now())
				}))
		}
		end := s.Run()
		var clocks []Time
		for _, th := range append(append([]*Thread{}, ring...), locals...) {
			clocks = append(clocks, th.Now())
		}
		return outcome{End: end, Clocks: clocks, Switch: s.Switches()}
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged from workers=1:\n got %+v\nwant %+v", w, got, base)
		}
	}
	// The ring's final hop lands on domain hops%domains; sanity-check the
	// makespan is nonzero and every thread retired.
	if base.End == 0 {
		t.Fatal("ring produced zero makespan")
	}
}

func TestPostToBusyThreadWaitsAtItsBlock(t *testing.T) {
	// Mail can "arrive" while the target is still running: the wake must
	// rendezvous at max(block time, arrival time), exactly like a receive
	// that was posted early. Also exercises window-edge parking: b crosses
	// several horizons before it ever blocks.
	s := NewScheduler()
	s.SetLookahead(lookL)
	s.SetWorkers(2)
	db := s.NewDomain("busy")
	da := s.NewDomain("poster")
	b := db.Spawn("busy", 0, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Advance(10 * Microsecond)
		}
		th.Block() // the early mail wakes us here, at our own clock
	})
	da.Spawn("poster", 0, func(th *Thread) {
		th.Advance(Microsecond)
		th.Post(b, th.Now()+lookL) // arrives at 11µs, long before b blocks
	})
	if end := s.Run(); end != 100*Microsecond {
		t.Fatalf("makespan %v, want 100µs", end)
	}
	if b.Now() != 100*Microsecond {
		t.Fatalf("busy thread woke at %v, want its own block time 100µs", b.Now())
	}
}

func TestPostLookaheadUndercutPanics(t *testing.T) {
	s := NewScheduler()
	s.SetLookahead(lookL)
	da := s.NewDomain("a")
	db := s.NewDomain("b")
	var got any
	tgt := db.Spawn("target", 0, func(th *Thread) {
		th.Advance(Microsecond)
	})
	da.Spawn("cheater", 0, func(th *Thread) {
		defer func() { got = recover() }()
		th.Post(tgt, th.Now()+lookL-1)
	})
	s.Run()
	msg, ok := got.(string)
	if !ok || !strings.Contains(msg, "undercuts lookahead") {
		t.Fatalf("expected lookahead-undercut panic, got %v", got)
	}
}

func TestMultiDomainRequiresLookahead(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic: multi-domain Run without SetLookahead")
		}
	}()
	s := NewScheduler()
	s.NewDomain("a").Spawn("a", 0, func(th *Thread) { th.Advance(Microsecond) })
	s.NewDomain("b").Spawn("b", 0, func(th *Thread) { th.Advance(Microsecond) })
	s.Run()
}

func TestMultiDomainDeadlockListsAllDomains(t *testing.T) {
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "stuck-a") || !strings.Contains(msg, "stuck-b") {
			t.Fatalf("expected deadlock panic naming both threads, got %v", r)
		}
	}()
	s := NewScheduler()
	s.SetLookahead(lookL)
	s.NewDomain("a").Spawn("stuck-a", 0, func(th *Thread) { th.Block() })
	s.NewDomain("b").Spawn("stuck-b", 0, func(th *Thread) { th.Block() })
	s.Run()
}

func TestComputeOnlyDomainsFinish(t *testing.T) {
	// Domains that never exchange mail still window correctly and the
	// makespan is the max across domains.
	s := NewScheduler()
	s.SetLookahead(lookL)
	s.SetWorkers(4)
	for i := 0; i < 4; i++ {
		i := i
		s.NewDomain(fmt.Sprintf("m%d", i)).Spawn(fmt.Sprintf("c%d", i), 0, func(th *Thread) {
			for k := 0; k <= i*10; k++ {
				th.Advance(Microsecond)
			}
		})
	}
	if end := s.Run(); end != 31*Microsecond {
		t.Fatalf("makespan %v, want 31µs", end)
	}
}
