package sim

import "fmt"

// Scheduler interleaves a set of simulated threads in virtual-time order.
//
// Exactly one simulated thread executes real Go code at any moment (baton
// passing over channels), so shared simulator state needs no locking and
// every run is deterministic. Whenever the running thread's clock moves more
// than one quantum ahead of another runnable thread, it yields and the
// scheduler resumes the thread that is furthest behind. Ties break by spawn
// order.
type Scheduler struct {
	threads []*Thread
	quantum Time
	started bool
}

// DefaultQuantum is the scheduling hysteresis: a running thread yields only
// once it is more than this far ahead of another runnable thread. A small
// non-zero quantum keeps interleaving faithful at microsecond granularity
// while avoiding a real context switch per simulated memory access.
const DefaultQuantum = 2 * Microsecond

// NewScheduler returns an empty scheduler with the default quantum.
func NewScheduler() *Scheduler {
	return &Scheduler{quantum: DefaultQuantum}
}

// SetQuantum overrides the scheduling hysteresis. Zero means strict
// virtual-time order.
func (s *Scheduler) SetQuantum(q Time) { s.quantum = q }

// Spawn registers a new simulated thread running fn, starting at virtual
// time `start`. It may be called before Run or by an already-running
// simulated thread (in which case the new thread typically starts at the
// spawner's current time).
func (s *Scheduler) Spawn(name string, start Time, fn func(*Thread)) *Thread {
	t := &Thread{
		name:   name,
		now:    start,
		sched:  s,
		index:  len(s.threads),
		state:  stateReady,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.threads = append(s.threads, t)
	go func() {
		<-t.resume
		fn(t)
		t.state = stateDone
		t.parked <- struct{}{}
	}()
	return t
}

// Run drives all spawned threads to completion and returns the maximum
// finish time (the virtual makespan). It panics if all remaining threads are
// blocked (a simulated deadlock) — that is always a bug in the model.
func (s *Scheduler) Run() Time {
	if s.started {
		panic("sim: Scheduler.Run called twice")
	}
	s.started = true
	for {
		t := s.pickReady()
		if t == nil {
			for _, u := range s.threads {
				if u.state == stateBlocked {
					panic("sim: deadlock, thread blocked forever: " + u.name)
				}
			}
			break
		}
		t.state = stateRunning
		t.resume <- struct{}{}
		<-t.parked
	}
	var end Time
	for _, u := range s.threads {
		end = MaxTime(end, u.now)
	}
	return end
}

// pickReady returns the runnable thread with the smallest clock, or nil.
func (s *Scheduler) pickReady() *Thread {
	var best *Thread
	for _, t := range s.threads {
		if t.state != stateReady {
			continue
		}
		if best == nil || t.now < best.now {
			best = t
		}
	}
	return best
}

// maybeYield parks the running thread if another runnable thread has fallen
// more than a quantum behind it.
func (s *Scheduler) maybeYield(t *Thread) {
	if t.state != stateRunning {
		return
	}
	behind := false
	for _, u := range s.threads {
		if u != t && u.state == stateReady && u.now+s.quantum < t.now {
			behind = true
			break
		}
	}
	if !behind {
		return
	}
	t.state = stateReady
	t.parked <- struct{}{}
	<-t.resume
	t.state = stateRunning
}

// block parks t until some other thread unblocks it.
func (s *Scheduler) block(t *Thread) {
	t.state = stateBlocked
	t.parked <- struct{}{}
	<-t.resume
	t.state = stateRunning
}

// unblock makes u runnable with its clock advanced to at least `at`.
func (s *Scheduler) unblock(u *Thread, at Time) {
	if u.state != stateBlocked {
		panic(fmt.Sprintf("sim: unblock of non-blocked thread %s", u.name))
	}
	if at > u.now {
		u.now = at
	}
	u.state = stateReady
}

// RunParallel is a convenience wrapper: it runs n simulated threads created
// by fn under a fresh scheduler and returns the makespan.
func RunParallel(n int, name string, fn func(i int, t *Thread)) Time {
	s := NewScheduler()
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("%s-%d", name, i), 0, func(t *Thread) { fn(i, t) })
	}
	return s.Run()
}
