package sim

import (
	"fmt"
	"strings"
)

// Scheduler interleaves a set of simulated threads in virtual-time order.
//
// Within a domain exactly one simulated thread executes real Go code at any
// moment (baton passing over channels), so shared simulator state needs no
// locking and every run is deterministic. Whenever the running thread's
// clock moves more than one quantum ahead of another runnable thread, it
// yields and the scheduler resumes the thread that is furthest behind. Ties
// break by spawn order.
//
// The core is event-driven: each domain keeps its runnable threads in an
// indexed min-heap ordered by (clock, spawn index), so the yield check is an
// O(1) comparison against the heap root and picking the next thread is an
// O(log n) pop. The baton passes directly from the yielding thread to the
// next one — two channel operations per switch — without round-tripping
// through Run's loop, and a thread that is the only runnable one just keeps
// running (skip-ahead: the empty-heap check never parks it).
//
// Threads spawned through Scheduler.Spawn share one default domain and
// behave exactly as a single sequential scheduler. NewDomain adds further
// domains — one per simulated machine — which advance concurrently under a
// conservative lookahead window; see domain.go.
type Scheduler struct {
	threads []*Thread
	domains []*domain
	def     *domain // lazily-created target of Scheduler.Spawn
	quantum Time
	started bool

	// Conservative parallel execution (multi-domain runs only).
	lookahead Time // minimum cross-domain message latency
	workers   int  // host goroutines draining domains inside a window
	pending   []mail
	workCh    chan windowJob
	ackCh     chan struct{}
}

// DefaultQuantum is the scheduling hysteresis: a running thread yields only
// once it is more than this far ahead of another runnable thread. A small
// non-zero quantum keeps interleaving faithful at microsecond granularity
// while avoiding a real context switch per simulated memory access.
const DefaultQuantum = 2 * Microsecond

// horizonMax is the open window used for single-domain runs: no thread ever
// parks at the window edge, so the sequential schedule is identical to the
// classic one-baton scheduler.
const horizonMax = Time(1<<63 - 1)

// NewScheduler returns an empty scheduler with the default quantum.
func NewScheduler() *Scheduler {
	return &Scheduler{quantum: DefaultQuantum}
}

// SetQuantum overrides the scheduling hysteresis. Zero means strict
// virtual-time order.
func (s *Scheduler) SetQuantum(q Time) { s.quantum = q }

// Spawn registers a new simulated thread running fn, starting at virtual
// time `start`. It may be called before Run or by an already-running
// simulated thread (in which case the new thread typically starts at the
// spawner's current time). Threads spawned here share the scheduler's
// default domain; use NewDomain for multi-machine parallel runs.
func (s *Scheduler) Spawn(name string, start Time, fn func(*Thread)) *Thread {
	if s.def == nil {
		s.def = s.addDomain("main")
	}
	return s.def.spawn(name, start, fn)
}

// spawn registers a thread in domain d. The heap insert puts it in correct
// virtual-time position immediately, so a thread spawned mid-run with an
// earlier start time preempts at the spawner's next yield check.
func (d *domain) spawn(name string, start Time, fn func(*Thread)) *Thread {
	s := d.s
	t := &Thread{
		name:   name,
		now:    start,
		sched:  s,
		index:  len(s.threads),
		state:  stateReady,
		hpos:   -1,
		dom:    d,
		resume: make(chan struct{}),
	}
	s.threads = append(s.threads, t)
	d.nLive++
	d.push(t)
	go func() {
		<-t.resume
		t.state = stateRunning
		fn(t)
		d.finish(t)
	}()
	return t
}

// finish retires a completed thread and hands the baton onward.
func (d *domain) finish(t *Thread) {
	t.state = stateDone
	d.nLive--
	d.maxFinish = MaxTime(d.maxFinish, t.now)
	d.stop(t, false, true)
}

// stop is the single baton-handoff point, called by the running thread when
// it gives up control: quantum yield, window edge, block, or completion. If
// ready, the thread re-enters the ready heap first (so it is a handoff
// candidate for itself only through heap order). The baton goes directly to
// the next runnable thread inside the window — one channel send — or back
// to the domain driver when none remains. Unless done, the caller then
// parks until some thread (or the driver) passes the baton back.
//
// All heap and state mutations happen before the channel send, and after
// sending the stopping thread only receives on its own resume channel (or
// returns), so the happens-before chain runs entirely through channel
// operations.
func (d *domain) stop(t *Thread, ready, done bool) {
	if ready {
		t.state = stateReady
		d.push(t)
	}
	d.switches++
	if n := d.peek(); n != nil && n.now < d.horizon {
		d.pop()
		n.resume <- struct{}{}
	} else {
		d.wake <- struct{}{}
	}
	if done {
		return
	}
	<-t.resume
	t.state = stateRunning
}

// Run drives all spawned threads to completion and returns the maximum
// finish time (the virtual makespan), tracked per domain as threads retire
// rather than rescanned from the thread table. It panics if all remaining
// threads are blocked (a simulated deadlock) — that is always a bug in the
// model — and the panic lists every blocked thread.
func (s *Scheduler) Run() Time {
	if s.started {
		panic("sim: Scheduler.Run called twice")
	}
	s.started = true
	switch len(s.domains) {
	case 0:
		// Nothing was ever spawned.
	case 1:
		s.domains[0].runWindow(horizonMax)
	default:
		s.runWindows()
	}
	var end Time
	live := 0
	for _, d := range s.domains {
		end = MaxTime(end, d.maxFinish)
		live += d.nLive
	}
	if live > 0 {
		s.deadlock()
	}
	return end
}

// deadlock reports every blocked thread. Cold path: the scan over the
// thread table only happens when the simulation is already broken.
func (s *Scheduler) deadlock() {
	var blocked []string
	for _, t := range s.threads {
		if t.state == stateBlocked {
			blocked = append(blocked, t.name)
		}
	}
	panic("sim: deadlock, threads blocked forever: " + strings.Join(blocked, ", "))
}

// runWindow resumes the domain's threads in virtual-time order until no
// runnable thread remains below horizon h. A running thread may overshoot h
// by the tail of its final Advance before parking at its next yield check —
// bounded overshoot, the same hysteresis the quantum already allows.
func (d *domain) runWindow(h Time) {
	d.horizon = h
	n := d.peek()
	if n == nil || n.now >= h {
		return
	}
	d.pop()
	n.resume <- struct{}{}
	<-d.wake
}

// maybeYield parks the running thread if it crossed the window horizon or
// if another runnable thread has fallen more than a quantum behind it. The
// heap root is the furthest-behind runnable thread, so one comparison
// decides; skip-ahead falls out of the same check — with an empty heap (the
// thread is the only runnable one) it never parks.
func (s *Scheduler) maybeYield(t *Thread) {
	if t.state != stateRunning {
		return
	}
	d := t.dom
	if t.now < d.horizon {
		n := d.peek()
		if n == nil || n.now+s.quantum >= t.now {
			return
		}
	}
	d.stop(t, true, false)
}

// block parks t until some other thread unblocks it.
func (s *Scheduler) block(t *Thread) {
	t.state = stateBlocked
	t.dom.nBlocked++
	t.dom.stop(t, false, false)
}

// unblock makes u runnable with its clock advanced to at least `at`.
func (s *Scheduler) unblock(u *Thread, at Time) {
	if u.state != stateBlocked {
		panic(fmt.Sprintf("sim: unblock of non-blocked thread %s", u.name))
	}
	if at > u.now {
		u.now = at
	}
	u.state = stateReady
	u.dom.nBlocked--
	u.dom.push(u)
}

// Switches returns the total number of baton handoffs performed so far
// (context switches plus terminal parks), summed over all domains. It
// exists for tests and benchmarks that pin down the skip-ahead and direct
// handoff behavior.
func (s *Scheduler) Switches() int64 {
	var n int64
	for _, d := range s.domains {
		n += d.switches
	}
	return n
}

// RunParallel is a convenience wrapper: it runs n simulated threads created
// by fn under a fresh scheduler and returns the makespan.
func RunParallel(n int, name string, fn func(i int, t *Thread)) Time {
	s := NewScheduler()
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("%s-%d", name, i), 0, func(t *Thread) { fn(i, t) })
	}
	return s.Run()
}
