package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.000µs"},
		{1500 * Nanosecond, "1.500µs"},
		{Millisecond, "1.000ms"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
		{-Millisecond, "-1.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromNs(1234.4) != 1234 {
		t.Errorf("FromNs rounding down failed: %d", FromNs(1234.4))
	}
	if FromNs(1234.6) != 1235 {
		t.Errorf("FromNs rounding up failed: %d", FromNs(1234.6))
	}
	if FromNs(-5) != 0 {
		t.Errorf("FromNs negative should clamp to 0")
	}
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (3 * Microsecond).Micros() != 3.0 {
		t.Errorf("Micros() = %v", (3 * Microsecond).Micros())
	}
}

func TestMaxMinTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime wrong")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime wrong")
	}
}

func TestStandaloneThread(t *testing.T) {
	th := NewThread("solo")
	if th.Now() != 0 {
		t.Fatal("fresh thread should start at 0")
	}
	th.Advance(5 * Microsecond)
	th.AdvanceNs(500)
	if th.Now() != 5*Microsecond+500 {
		t.Fatalf("Now() = %v", th.Now())
	}
	th.AdvanceTo(4 * Microsecond) // must not move backwards
	if th.Now() != 5*Microsecond+500 {
		t.Fatalf("AdvanceTo moved clock backwards: %v", th.Now())
	}
	th.AdvanceTo(10 * Microsecond)
	if th.Now() != 10*Microsecond {
		t.Fatalf("AdvanceTo(10µs) = %v", th.Now())
	}
	if th.Attached() {
		t.Fatal("standalone thread must not be attached")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewThread("x").Advance(-1)
}

func TestBlockOnStandalonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Block of standalone thread")
		}
	}()
	NewThread("x").Block()
}

func TestSchedulerMakespanIsMax(t *testing.T) {
	s := NewScheduler()
	s.Spawn("fast", 0, func(t *Thread) { t.Advance(1 * Millisecond) })
	s.Spawn("slow", 0, func(t *Thread) { t.Advance(7 * Millisecond) })
	if got := s.Run(); got != 7*Millisecond {
		t.Fatalf("makespan = %v, want 7ms", got)
	}
}

// TestSchedulerInterleaving verifies threads execute in virtual-time order:
// with a zero quantum, events recorded by two threads must appear in
// non-decreasing virtual-time order.
func TestSchedulerInterleaving(t *testing.T) {
	type ev struct {
		ts   Time
		name string
	}
	var log []ev
	s := NewScheduler()
	s.SetQuantum(0)
	for _, spec := range []struct {
		name string
		step Time
		n    int
	}{{"a", 3, 100}, {"b", 7, 50}} {
		spec := spec
		s.Spawn(spec.name, 0, func(th *Thread) {
			for i := 0; i < spec.n; i++ {
				th.Advance(spec.step)
				log = append(log, ev{th.Now(), spec.name})
			}
		})
	}
	s.Run()
	if len(log) != 150 {
		t.Fatalf("expected 150 events, got %d", len(log))
	}
	// With strict ordering, when a thread records an event its clock must
	// not be more than one step ahead of any other thread's clock at record
	// time; the simplest observable property: per-thread timestamps are
	// increasing and globally the sequence never jumps backwards by more
	// than the largest step.
	for i := 1; i < len(log); i++ {
		if log[i].ts+7 < log[i-1].ts {
			t.Fatalf("event %d at %v after event %d at %v: interleaving broken",
				i, log[i].ts, i-1, log[i-1].ts)
		}
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []Time {
		var out []Time
		s := NewScheduler()
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn("t", 0, func(th *Thread) {
				r := rand.New(rand.NewSource(int64(i)))
				for j := 0; j < 1000; j++ {
					th.Advance(Time(r.Intn(100) + 1))
				}
				out = append(out, th.Now())
			})
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic schedule: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	s := NewScheduler()
	var waiter *Thread
	order := []string{}
	waiter = s.Spawn("waiter", 0, func(th *Thread) {
		order = append(order, "wait-start")
		th.Block()
		order = append(order, "woken")
		if th.Now() != 5*Millisecond {
			t.Errorf("woken at %v, want 5ms", th.Now())
		}
	})
	s.Spawn("waker", 0, func(th *Thread) {
		th.Advance(5 * Millisecond)
		order = append(order, "wake")
		waiter.Unblock(th.Now())
	})
	s.Run()
	want := []string{"wait-start", "wake", "woken"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := NewScheduler()
	s.Spawn("stuck", 0, func(th *Thread) { th.Block() })
	s.Run()
}

func TestSpawnDuringRun(t *testing.T) {
	s := NewScheduler()
	var childEnd Time
	s.Spawn("parent", 0, func(th *Thread) {
		th.Advance(Millisecond)
		s.Spawn("child", th.Now(), func(c *Thread) {
			c.Advance(2 * Millisecond)
			childEnd = c.Now()
		})
		th.Advance(Millisecond)
	})
	end := s.Run()
	if childEnd != 3*Millisecond {
		t.Fatalf("child ended at %v, want 3ms", childEnd)
	}
	if end != 3*Millisecond {
		t.Fatalf("makespan %v, want 3ms", end)
	}
}

func TestRunParallel(t *testing.T) {
	end := RunParallel(8, "w", func(i int, th *Thread) {
		th.Advance(Time(i+1) * Microsecond)
	})
	if end != 8*Microsecond {
		t.Fatalf("makespan = %v, want 8µs", end)
	}
}

// Property: makespan equals the maximum of per-thread totals, for arbitrary
// per-thread step sequences.
func TestMakespanProperty(t *testing.T) {
	f := func(steps [][]uint16) bool {
		if len(steps) == 0 || len(steps) > 8 {
			return true
		}
		s := NewScheduler()
		var max Time
		for _, seq := range steps {
			seq := seq
			var total Time
			for _, d := range seq {
				total += Time(d)
			}
			if total > max {
				max = total
			}
			s.Spawn("p", 0, func(th *Thread) {
				for _, d := range seq {
					th.Advance(Time(d))
				}
			})
		}
		return s.Run() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
