// Package sim provides the deterministic virtual-time substrate used by the
// disaggregated data center simulator.
//
// All performance results in this repository are expressed in virtual
// nanoseconds: simulated threads never sleep, they merely account for the
// time their operations would have taken on the modelled hardware. A
// cooperative scheduler interleaves simulated threads in virtual-time order,
// on a single OS thread, so every run is bit-for-bit reproducible regardless
// of the Go runtime's own scheduling or garbage collection (the property the
// paper's wall-clock testbed gets from bare-metal hardware).
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the duration as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the duration as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns the duration as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the duration with a human-friendly unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromNs converts a floating-point nanosecond count to a Time, rounding to
// the nearest nanosecond. Cost models compute in float64 and convert once.
func FromNs(ns float64) Time {
	if ns <= 0 {
		return 0
	}
	return Time(ns + 0.5)
}

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return FromNs(s * 1e9) }

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
