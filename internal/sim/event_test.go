package sim

import (
	"fmt"
	"strings"
	"testing"
)

// Edge-case coverage for the event-driven core: heap placement of mid-run
// spawns, strict ordering at zero quantum, spawn-index tie-breaking on
// equal-time wakes, and skip-ahead never parking a lone runnable thread.

func TestSpawnDuringRunHeapPosition(t *testing.T) {
	s := NewScheduler()
	var log []string
	// The parent is already at 10µs when it spawns one child behind it (2µs)
	// and one ahead of it (20µs). The behind-child must preempt the parent at
	// its next yield check; the ahead-child must run only once the clock
	// catches up.
	s.Spawn("parent", 0, func(th *Thread) {
		th.Advance(10 * Microsecond)
		s.Spawn("behind", 2*Microsecond, func(c *Thread) {
			log = append(log, fmt.Sprintf("behind@%d", c.Now()/Microsecond))
			c.Advance(Microsecond)
		})
		s.Spawn("ahead", 20*Microsecond, func(c *Thread) {
			log = append(log, fmt.Sprintf("ahead@%d", c.Now()/Microsecond))
		})
		th.Advance(Microsecond) // crosses the quantum gap: behind-child preempts here
		log = append(log, fmt.Sprintf("parent@%d", th.Now()/Microsecond))
	})
	end := s.Run()
	want := "behind@2 parent@11 ahead@20"
	if got := strings.Join(log, " "); got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
	if end != 20*Microsecond {
		t.Fatalf("makespan %v, want 20µs", end)
	}
}

func TestZeroQuantumStrictOrder(t *testing.T) {
	s := NewScheduler()
	s.SetQuantum(0)
	type ev struct {
		at Time
		id int
	}
	var log []ev
	steps := []Time{5 * Microsecond, 3 * Microsecond, 7 * Microsecond}
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("t%d", i), 0, func(th *Thread) {
			for k := 0; k < 20; k++ {
				// Record before advancing: at quantum zero no thread may act
				// at time T while another runnable thread is strictly behind
				// T, so the observation sequence is globally non-decreasing.
				log = append(log, ev{th.Now(), i})
				th.Advance(steps[i])
			}
		})
	}
	s.Run()
	if len(log) != 60 {
		t.Fatalf("got %d events, want 60", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].at < log[i-1].at {
			t.Fatalf("event %d at %v precedes event %d at %v: zero-quantum order violated",
				i, log[i].at, i-1, log[i-1].at)
		}
	}
}

func TestUnblockEqualTimeTieBreaksBySpawnIndex(t *testing.T) {
	s := NewScheduler()
	var log []string
	var a, b *Thread
	a = s.Spawn("a", 0, func(th *Thread) {
		th.Block()
		log = append(log, "a")
	})
	b = s.Spawn("b", 0, func(th *Thread) {
		th.Block()
		log = append(log, "b")
	})
	s.Spawn("waker", 0, func(th *Thread) {
		th.Advance(5 * Microsecond)
		// Wake in reverse spawn order at the same instant: the heap must
		// still resume a (spawn index 0) before b (spawn index 1).
		b.Unblock(th.Now())
		a.Unblock(th.Now())
	})
	s.Run()
	if got := strings.Join(log, " "); got != "a b" {
		t.Fatalf("wake order %q, want \"a b\" (spawn-index tie-break)", got)
	}
	if a.Now() != 5*Microsecond || b.Now() != 5*Microsecond {
		t.Fatalf("woken clocks a=%v b=%v, want 5µs each", a.Now(), b.Now())
	}
}

func TestSkipAheadLoneThreadNeverParks(t *testing.T) {
	s := NewScheduler()
	s.SetQuantum(0)
	s.Spawn("solo", 0, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Advance(Microsecond)
		}
	})
	if end := s.Run(); end != 1000*Microsecond {
		t.Fatalf("makespan %v, want 1000µs", end)
	}
	// The only baton handoff is the terminal park back to the driver: every
	// one of the 1000 yield checks took the empty-heap skip-ahead path.
	if got := s.Switches(); got != 1 {
		t.Fatalf("got %d baton handoffs, want 1 (skip-ahead must not park a lone runnable thread)", got)
	}
}

func TestSkipAheadWithBlockedCompanion(t *testing.T) {
	s := NewScheduler()
	s.SetQuantum(0)
	var woken *Thread
	runner := func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Advance(Microsecond)
		}
		woken.Unblock(th.Now())
	}
	s.Spawn("runner", 0, runner)
	woken = s.Spawn("sleeper", 0, func(th *Thread) {
		th.Block()
		th.Advance(Microsecond)
	})
	if end := s.Run(); end != 1001*Microsecond {
		t.Fatalf("makespan %v, want 1001µs", end)
	}
	// Exactly four handoffs: runner yields to the not-yet-blocked sleeper
	// once, sleeper blocks, runner finishes (handoff to woken sleeper),
	// sleeper finishes. A blocked thread must not force parking per advance.
	if got := s.Switches(); got != 4 {
		t.Fatalf("got %d baton handoffs, want 4", got)
	}
}

func TestDeadlockPanicListsAllBlockedThreads(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v, want string", r)
		}
		for _, name := range []string{"stuck-a", "stuck-b", "stuck-c"} {
			if !strings.Contains(msg, name) {
				t.Fatalf("deadlock panic %q does not list %s", msg, name)
			}
		}
	}()
	s := NewScheduler()
	for _, name := range []string{"stuck-a", "stuck-b", "stuck-c"} {
		s.Spawn(name, 0, func(th *Thread) { th.Block() })
	}
	s.Run()
}

func TestSwitchPathAllocBounded(t *testing.T) {
	// Two threads ping-ponging 5000 advances each at quantum zero: ~10k
	// baton handoffs. The steady-state switch path (heap update + channel
	// handoff) must not allocate; the bound leaves room only for the fixed
	// spawn-time setup (threads, channels, goroutines).
	allocs := testing.AllocsPerRun(1, func() {
		s := NewScheduler()
		s.SetQuantum(0)
		for i := 0; i < 2; i++ {
			s.Spawn(fmt.Sprintf("t%d", i), 0, func(th *Thread) {
				for k := 0; k < 5000; k++ {
					th.Advance(Microsecond)
				}
			})
		}
		s.Run()
	})
	if allocs > 100 {
		t.Fatalf("%v allocs for a 10k-switch run: switch path is allocating", allocs)
	}
}
