package sim

// RNG is a small, fast, seeded pseudo-random generator (splitmix64). The
// simulator cannot use math/rand's global source: every random decision in a
// run must derive from an explicit seed so that two runs with the same seed
// are bit-for-bit identical — the same property the virtual clock gives
// timings. Generators are cheap; subsystems that draw independently (fault
// injection per layer, workload generators) should each own one, derived
// with Derive, so extra draws in one subsystem never perturb another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed. Distinct seeds give
// uncorrelated streams; the same seed always gives the same stream.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Derive returns a new generator whose stream is a pure function of this
// generator's seed and the salt — independent of how many values have been
// drawn from either. Use it to give each subsystem its own stream.
func (r *RNG) Derive(salt uint64) *RNG {
	return &RNG{state: splitmix(r.state ^ (salt * 0x9E3779B97F4A7C15))}
}

// splitmix is the splitmix64 output function.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Duration returns a uniform virtual duration in [min, max].
func (r *RNG) Duration(min, max Time) Time {
	if max <= min {
		return min
	}
	return min + Time(r.Uint64()%uint64(max-min+1))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
