package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// Microbenchmarks for the event-driven core. BenchmarkSchedulerSwitch times
// the direct baton handoff (two channel ops per switch), BenchmarkSkipAhead
// the lone-runnable fast path (no channel ops at all), and
// BenchmarkParallelWindow the conservative window barrier at 1/4/16
// domains. All report allocs: the steady-state paths must not allocate.

func BenchmarkSchedulerSwitch(b *testing.B) {
	s := NewScheduler()
	s.SetQuantum(0)
	for i := 0; i < 2; i++ {
		s.Spawn(fmt.Sprintf("t%d", i), 0, func(th *Thread) {
			for k := 0; k < b.N; k++ {
				th.Advance(Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

func BenchmarkSkipAhead(b *testing.B) {
	s := NewScheduler()
	s.SetQuantum(0)
	s.Spawn("solo", 0, func(th *Thread) {
		for k := 0; k < b.N; k++ {
			th.Advance(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	b.StopTimer()
	if got := s.Switches(); got != 1 {
		b.Fatalf("lone thread parked: %d handoffs, want 1", got)
	}
}

func BenchmarkParallelWindow(b *testing.B) {
	for _, domains := range []int{1, 4, 16} {
		domains := domains
		b.Run(fmt.Sprintf("domains=%d", domains), func(b *testing.B) {
			s := NewScheduler()
			s.SetQuantum(0)
			s.SetLookahead(100 * Microsecond)
			s.SetWorkers(runtime.GOMAXPROCS(0))
			sink := make([]uint64, domains)
			for i := 0; i < domains; i++ {
				i := i
				dm := s.NewDomain(fmt.Sprintf("m%d", i))
				dm.Spawn(fmt.Sprintf("c%d", i), 0, func(th *Thread) {
					acc := uint64(i + 1)
					for k := 0; k < b.N; k++ {
						// A dash of host CPU per simulated microsecond so
						// the window scaling has real work to parallelize.
						for w := 0; w < 64; w++ {
							acc ^= acc << 13
							acc ^= acc >> 7
							acc ^= acc << 17
						}
						th.Advance(Microsecond)
					}
					sink[i] = acc
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			s.Run()
		})
	}
}
