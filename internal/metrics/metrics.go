// Package metrics is the simulator's quantitative observability layer: a
// named registry of counters, gauges, and fixed-bucket virtual-time
// histograms that the paging, network, storage, and pushdown paths publish
// into. Like internal/trace it is strictly passive — recording a metric
// never advances a virtual clock — and every handle is nil-safe, so call
// sites need no guards and a machine without a registry pays nothing.
//
// Iteration order is deterministic (sorted names), so two same-seed runs
// produce byte-identical snapshot JSON — the property the determinism suite
// pins.
package metrics

import (
	"encoding/json"
	"io"
	"sort"

	"teleport/internal/sim"
)

// Counter is a monotonically increasing named value.
type Counter struct{ v int64 }

// Add increases the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a named value that can move both ways.
type Gauge struct{ v int64 }

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram of virtual durations. An observation
// lands in the first bucket whose upper bound (in nanoseconds, inclusive) is
// ≥ the value; anything beyond the last bound lands in the overflow bucket.
type Histogram struct {
	bounds []int64 // upper bounds, ascending
	counts []int64 // len(bounds)+1, last is overflow
	sum    int64
	n      int64
	min    int64 // smallest observation (valid when n > 0)
	max    int64 // largest observation (valid when n > 0)

	// samples retains up to sampleCap raw observations in arrival order so
	// quantiles are exact for bounded sample counts; once an observation is
	// not retained, sampleOver marks the exact mode unavailable and readers
	// fall back to bucket interpolation.
	samples    []int64
	sampleCap  int
	sampleOver bool
}

// Observe records one duration (no-op on nil). The bucket scan is a binary
// search: this runs on every latency observation on the hot paging paths.
func (h *Histogram) Observe(d sim.Time) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.n++
	h.sum += ns
	if h.n == 1 || ns < h.min {
		h.min = ns
	}
	if h.n == 1 || ns > h.max {
		h.max = ns
	}
	if h.sampleCap > 0 {
		if len(h.samples) < h.sampleCap {
			h.samples = append(h.samples, ns)
		} else {
			h.sampleOver = true
		}
	}
	h.counts[sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= ns })]++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the summed observations in nanoseconds (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// DefaultLatencyBuckets returns the 1-2-5 decade ladder from 100 ns to 1 s
// used by every latency histogram unless a caller supplies its own bounds.
func DefaultLatencyBuckets() []int64 {
	var b []int64
	for _, base := range []int64{100, 1000, 10 * 1000, 100 * 1000,
		1000 * 1000, 10 * 1000 * 1000, 100 * 1000 * 1000} {
		b = append(b, base, 2*base, 5*base)
	}
	return append(b, int64(sim.Second))
}

// Registry is a named metric namespace. The zero value of *Registry (nil) is
// the disabled state: every accessor returns a nil handle whose methods are
// no-ops, mirroring trace.Ring's contract. Methods are not synchronised —
// the virtual-time scheduler runs one simulated thread at a time.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// sampleCap, when > 0, is applied to every histogram created after
	// SetSampleCap: each retains up to that many raw observations for exact
	// quantile extraction (see Histogram.samples).
	sampleCap int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the default
// latency buckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramWithBuckets(name, nil)
}

// HistogramWithBuckets returns the named histogram, creating it with the
// given ascending upper bounds (nil = DefaultLatencyBuckets). Bounds are
// fixed at creation; later calls ignore the argument.
func (r *Registry) HistogramWithBuckets(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1), sampleCap: r.sampleCap}
		r.hists[name] = h
	}
	return h
}

// SetSampleCap makes every histogram created from now on retain up to n raw
// observations (0 disables retention). Call it before the run starts so all
// histograms share the mode; retention is passive and never advances a
// virtual clock.
func (r *Registry) SetSampleCap(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.sampleCap = n
}

// CounterValues copies every counter's current value. The map is fresh on
// each call, so callers may diff two snapshots of it; key iteration is up to
// the caller (encoding/json sorts map keys on marshal).
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.v
	}
	return out
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	BoundsNs []int64 `json:"bounds_ns"`
	Counts   []int64 `json:"counts"` // len(BoundsNs)+1; last is overflow
	Count    int64   `json:"count"`
	SumNs    int64   `json:"sum_ns"`
	MinNs    int64   `json:"min_ns"` // valid when Count > 0
	MaxNs    int64   `json:"max_ns"` // valid when Count > 0

	// SamplesNs holds the retained raw observations in arrival order when
	// the histogram was created under a sample cap. SampleOverflow reports
	// that at least one observation was not retained, so SamplesNs is a
	// prefix and exact quantiles are unavailable.
	SamplesNs      []int64 `json:"samples_ns,omitempty"`
	SampleOverflow bool    `json:"sample_overflow,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Marshal
// order is deterministic: encoding/json sorts map keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state (nil registry → nil).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			BoundsNs: append([]int64(nil), h.bounds...),
			Counts:   append([]int64(nil), h.counts...),
			Count:    h.n,
			SumNs:    h.sum,
			MinNs:    h.min,
			MaxNs:    h.max,
		}
		if h.sampleCap > 0 {
			hs.SamplesNs = append([]int64(nil), h.samples...)
			hs.SampleOverflow = h.sampleOver
		}
		s.Histograms[name] = hs
	}
	return s
}

// Names returns every metric name, sorted, with its type prefixed — the
// registry's deterministic iteration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, "counter/"+n)
	}
	for n := range r.gauges {
		names = append(names, "gauge/"+n)
	}
	for n := range r.hists {
		names = append(names, "histogram/"+n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON. A nil snapshot writes an
// empty one. Byte-identical across same-seed runs: encoding/json sorts map
// keys.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	if s == nil {
		s = &Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return (*Snapshot)(nil).WriteJSON(w)
	}
	return r.Snapshot().WriteJSON(w)
}
