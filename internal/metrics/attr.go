package metrics

import "teleport/internal/sim"

// This file defines the virtual-time attribution substrate. Every layer that
// charges virtual time outside plain CPU/DRAM work — the fabric, the SSD,
// the paging software paths, the pushdown runtime — adds its own charges to
// one machine-wide TimeSet under a leaf component, measured as clock deltas
// so the partition is exact. The components are disjoint by construction
// (each layer attributes only the advances it performs itself; nested calls
// into lower layers are attributed there), so for a single-threaded run
//
//	elapsed = Σ components + compute residual
//
// holds to the nanosecond. With parallel simulated threads the component
// sums are CPU time (summed across threads) and can exceed the makespan;
// the standard evaluation workloads drive the machine from one thread.

// Comp identifies one leaf attribution component.
type Comp int

// Leaf components. The seven wire components mirror netmodel's traffic
// classes in order (pagefault, writeback, coherence, pushdown, storage,
// sync, replica), which internal/netmodel relies on when mapping a Class to
// a Comp.
const (
	CompWirePageFault Comp = iota // demand-paging transfers compute↔memory
	CompWireWriteback             // dirty-page eviction transfers
	CompWireCoherence             // invalidation/downgrade round trips
	CompWirePushdown              // pushdown request/response RPCs
	CompWireStorage               // memory pool ↔ storage pool transfers
	CompWireSync                  // syncmem / eager synchronisation transfers
	CompWireReplica               // shard replication and recovery re-sync transfers
	CompSSDRead                   // device page-in time
	CompSSDWrite                  // device page-out time
	CompFaultSW                   // page-fault handler software path
	CompPrefetch                  // base-DDC sequential prefetch transfers
	CompPoolStall                 // waits for a crashed memory controller
	CompPushQueue                 // pushdown workqueue wait
	CompPushProto                 // pushdown protocol CPU: page lists, table clone/merge, reaps, tiebreak waits
	CompPushRetry                 // recovery-policy backoff waits
	NumComps
)

var compNames = [NumComps]string{
	"wire/pagefault", "wire/writeback", "wire/coherence", "wire/pushdown",
	"wire/storage", "wire/sync", "wire/replica",
	"ssd/read", "ssd/write",
	"paging/fault-handler", "paging/prefetch", "paging/pool-stall",
	"pushdown/queue", "pushdown/protocol", "pushdown/retry-wait",
}

var compLayers = [NumComps]string{
	"net", "net", "net", "net", "net", "net", "net",
	"ssd", "ssd",
	"paging", "paging", "paging",
	"pushdown", "pushdown", "pushdown",
}

// String names the component ("wire/pagefault", ...).
func (c Comp) String() string {
	if c < 0 || c >= NumComps {
		return "comp(?)"
	}
	return compNames[c]
}

// Layer returns the component's layer ("net", "ssd", "paging", "pushdown").
func (c Comp) Layer() string {
	if c < 0 || c >= NumComps {
		return "?"
	}
	return compLayers[c]
}

// TimeSet accumulates virtual nanoseconds per component. The zero value is
// ready to use; a nil *TimeSet ignores adds, so detached structures (a
// Fabric built outside a Machine) need no guards.
type TimeSet [NumComps]int64

// Add charges d of virtual time to component c.
func (ts *TimeSet) Add(c Comp, d sim.Time) {
	if ts == nil || d <= 0 {
		return
	}
	ts[c] += int64(d)
}

// AddSet folds another TimeSet into the receiver (nil-safe).
func (ts *TimeSet) AddSet(d TimeSet) {
	if ts == nil {
		return
	}
	for i, v := range d {
		ts[i] += v
	}
}

// Sub returns the component-wise difference a − b (delta between two
// snapshots of the same accumulator).
func (a TimeSet) Sub(b TimeSet) TimeSet {
	var out TimeSet
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// TotalNs sums every component.
func (a TimeSet) TotalNs() int64 {
	var n int64
	for _, v := range a {
		n += v
	}
	return n
}

// LayerNs sums the components of one layer.
func (a TimeSet) LayerNs(layer string) int64 {
	var n int64
	for c, v := range a {
		if Comp(c).Layer() == layer {
			n += v
		}
	}
	return n
}

// Attribution is a TimeSet paired with the elapsed virtual time it
// partitions; the unattributed remainder is CPU/DRAM compute.
type Attribution struct {
	TotalNs int64   `json:"total_ns"`
	Comps   TimeSet `json:"components_ns"`
}

// ComputeNs returns the compute residual: elapsed time not attributed to
// any leaf component.
func (a Attribution) ComputeNs() int64 { return a.TotalNs - a.Comps.TotalNs() }
