package metrics

import (
	"bytes"
	"strings"
	"testing"

	"teleport/internal/sim"
)

// A nil registry hands out nil handles whose methods are all no-ops — the
// disabled state costs nothing and needs no call-site guards.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("x")
	h.Observe(sim.Microsecond)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot non-nil")
	}
	if r.Names() != nil {
		t.Fatalf("nil registry names non-nil")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}

	var ts *TimeSet
	ts.Add(CompSSDRead, sim.Second) // must not panic
	ts.AddSet(TimeSet{})
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.HistogramWithBuckets("h", []int64{10, 100})
	h.Observe(5)   // first bucket (≤10)
	h.Observe(10)  // first bucket (inclusive)
	h.Observe(50)  // second
	h.Observe(999) // overflow
	s := r.Snapshot().Histograms["h"]
	if want := []int64{2, 1, 1}; len(s.Counts) != 3 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 4 || s.SumNs != 5+10+50+999 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.SumNs)
	}
}

func TestNamesSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Gauge("m")
	r.Histogram("k")
	got := strings.Join(r.Names(), ",")
	want := "counter/a,counter/z,gauge/m,histogram/k"
	if got != want {
		t.Fatalf("names = %s, want %s", got, want)
	}
}

// Two registries fed the same sequence must serialise byte-identically —
// the property that makes same-seed runs comparable file-to-file.
func TestSnapshotJSONDeterministic(t *testing.T) {
	feed := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"net.pagefault.msgs", "ssd.read", "fault.remote", "a", "z"} {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("push.running").Set(2)
		for i := 0; i < 40; i++ {
			r.Histogram("lat").Observe(sim.Time(i * 997))
		}
		return r
	}
	var a, b bytes.Buffer
	if err := feed().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestTimeSetAttribution(t *testing.T) {
	var ts TimeSet
	ts.Add(CompWirePageFault, 100)
	ts.Add(CompWirePageFault, 50)
	ts.Add(CompSSDRead, 30)
	ts.Add(CompPushQueue, -5) // non-positive charges are dropped
	if ts.TotalNs() != 180 {
		t.Fatalf("total = %d, want 180", ts.TotalNs())
	}
	if ts.LayerNs("net") != 150 || ts.LayerNs("ssd") != 30 || ts.LayerNs("pushdown") != 0 {
		t.Fatalf("layer sums wrong: net=%d ssd=%d push=%d",
			ts.LayerNs("net"), ts.LayerNs("ssd"), ts.LayerNs("pushdown"))
	}

	before := ts
	ts.Add(CompSSDRead, 20)
	d := ts.Sub(before)
	if d.TotalNs() != 20 || d[CompSSDRead] != 20 {
		t.Fatalf("delta = %v", d)
	}

	a := Attribution{TotalNs: 500, Comps: ts}
	if a.ComputeNs() != 500-ts.TotalNs() {
		t.Fatalf("compute residual = %d", a.ComputeNs())
	}

	// Every component names itself and belongs to a layer.
	for c := Comp(0); c < NumComps; c++ {
		if c.String() == "comp(?)" || c.Layer() == "?" {
			t.Fatalf("component %d unnamed", c)
		}
	}
}
