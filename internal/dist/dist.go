// Package dist models the cost of scaling of distributed in-memory DBMSs —
// the SparkSQL and Vertica reference bars of Figure 1b. The paper uses them
// only as calibration points ("distributed data processing systems ...
// achieve a reasonable cost of scaling: 1.2× and 2.3×"), so this is an
// analytic model, not an engine: a query that takes T seconds on one
// monolithic server with R resources is spread over W workers that together
// also have R resources, paying per-worker inefficiency, shuffle transfer,
// and coordination overhead. DESIGN.md records this substitution.
package dist

import "teleport/internal/hw"

// Profile characterises one distributed engine.
type Profile struct {
	Name string
	// Workers is the cluster size the resources are spread over.
	Workers int
	// Efficiency is the per-worker execution efficiency relative to the
	// monolithic engine (runtime layers, row formats, JVM, ...).
	Efficiency float64
	// ShuffleFraction is the fraction of the input that crosses the network
	// per pipeline stage.
	ShuffleFraction float64
	// Stages is the number of shuffle stages in a typical analytical query.
	Stages int
	// CoordFraction is planning/scheduling/stage-barrier overhead as a
	// fraction of execution time.
	CoordFraction float64
}

// SparkSQL returns a profile calibrated to the paper's 1.2× average cost of
// scaling on TPC-H.
func SparkSQL() Profile {
	return Profile{
		Name:            "SparkSQL",
		Workers:         8,
		Efficiency:      0.95,
		ShuffleFraction: 0.30,
		Stages:          3,
		CoordFraction:   0.04,
	}
}

// Vertica returns a profile calibrated to the paper's 2.3× average cost of
// scaling.
func Vertica() Profile {
	return Profile{
		Name:            "Vertica",
		Workers:         8,
		Efficiency:      0.55,
		ShuffleFraction: 0.45,
		Stages:          4,
		CoordFraction:   0.08,
	}
}

// Workload summarises a query for the model.
type Workload struct {
	// Bytes is the input working set.
	Bytes int64
	// LocalSeconds is the query's single-machine in-memory execution time
	// with the full resource budget.
	LocalSeconds float64
}

// CostOfScaling returns distributed_time / local_time for the workload on
// the given fabric. The normalisation matches Figure 1b: the cluster as a
// whole has the same resources as the monolithic baseline, so perfect
// scaling would be 1.0.
func (p Profile) CostOfScaling(w Workload, cfg *hw.Config) float64 {
	if w.LocalSeconds <= 0 {
		return 1
	}
	compute := 1 / p.Efficiency
	shuffleBytes := float64(w.Bytes) * p.ShuffleFraction * float64(p.Stages)
	// Workers shuffle in parallel; each link runs at the fabric bandwidth.
	shuffleSeconds := shuffleBytes / float64(p.Workers) / (cfg.NetBandwidthGBs * 1e9)
	return compute + shuffleSeconds/w.LocalSeconds + p.CoordFraction
}

// Time returns the modelled distributed execution time in seconds.
func (p Profile) Time(w Workload, cfg *hw.Config) float64 {
	return w.LocalSeconds * p.CostOfScaling(w, cfg)
}
