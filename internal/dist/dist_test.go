package dist

import (
	"testing"

	"teleport/internal/hw"
)

// A TPC-H-ish reference point: tens of GB scanned in tens of seconds.
var refWorkload = Workload{Bytes: 50 << 30, LocalSeconds: 30}

func TestSparkSQLNearPaperRatio(t *testing.T) {
	cfg := hw.Testbed()
	r := SparkSQL().CostOfScaling(refWorkload, &cfg)
	if r < 1.05 || r > 1.45 {
		t.Fatalf("SparkSQL cost of scaling = %.2f, want ≈1.2 (Figure 1b)", r)
	}
}

func TestVerticaNearPaperRatio(t *testing.T) {
	cfg := hw.Testbed()
	r := Vertica().CostOfScaling(refWorkload, &cfg)
	if r < 1.9 || r > 2.7 {
		t.Fatalf("Vertica cost of scaling = %.2f, want ≈2.3 (Figure 1b)", r)
	}
}

func TestCostMonotonicInShuffle(t *testing.T) {
	cfg := hw.Testbed()
	p := SparkSQL()
	base := p.CostOfScaling(refWorkload, &cfg)
	p.ShuffleFraction *= 3
	if p.CostOfScaling(refWorkload, &cfg) <= base {
		t.Fatal("more shuffle must cost more")
	}
}

func TestCostDecreasesWithWorkers(t *testing.T) {
	cfg := hw.Testbed()
	few, many := SparkSQL(), SparkSQL()
	few.Workers, many.Workers = 2, 32
	w := Workload{Bytes: 200 << 30, LocalSeconds: 10} // shuffle-bound
	if many.CostOfScaling(w, &cfg) >= few.CostOfScaling(w, &cfg) {
		t.Fatal("parallel shuffle should reduce the scaling cost")
	}
}

func TestTimeIsRatioTimesLocal(t *testing.T) {
	cfg := hw.Testbed()
	p := SparkSQL()
	ratio := p.CostOfScaling(refWorkload, &cfg)
	if got := p.Time(refWorkload, &cfg); got != ratio*refWorkload.LocalSeconds {
		t.Fatalf("Time = %v", got)
	}
}

func TestDegenerateWorkload(t *testing.T) {
	cfg := hw.Testbed()
	if SparkSQL().CostOfScaling(Workload{}, &cfg) != 1 {
		t.Fatal("zero workload should normalise to 1")
	}
}
