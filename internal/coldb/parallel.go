package coldb

import (
	"fmt"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/sim"
)

// This file implements multi-worker query execution: §2.1's elasticity
// promise ("spawn any number of query execution workers in the compute
// pool") combined with concurrent pushdown (§3.2, Figure 17). Each worker
// is a simulated thread owning a row partition; with a runtime attached,
// every worker Teleports its partition and the memory pool's user contexts
// arbitrate the concurrency.

// PartialAgg is one worker's partition aggregate.
type PartialAgg struct {
	Sum   float64
	Count int64
	Min   float64
	Max   float64
	valid bool
}

// merge folds another partial in.
func (a *PartialAgg) merge(b PartialAgg) {
	if !b.valid {
		return
	}
	if !a.valid {
		*a = b
		return
	}
	a.Sum += b.Sum
	a.Count += b.Count
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// Final extracts the requested aggregate.
func (a PartialAgg) Final(kind AggKind) float64 {
	switch kind {
	case AggSum:
		return a.Sum
	case AggCount:
		return float64(a.Count)
	case AggMin:
		return a.Min
	default:
		return a.Max
	}
}

// aggregateRange folds rows [lo, hi) of col into a partial.
func aggregateRange(env *ddc.Env, col *Column, lo, hi int) PartialAgg {
	var out PartialAgg
	for row := lo; row < hi; row++ {
		env.Compute(opsAggregate)
		v := col.F64At(env, row)
		if !out.valid {
			out = PartialAgg{Sum: v, Count: 1, Min: v, Max: v, valid: true}
			continue
		}
		out.Sum += v
		out.Count++
		if v < out.Min {
			out.Min = v
		}
		if v > out.Max {
			out.Max = v
		}
	}
	return out
}

// ParallelAggregate aggregates col with `workers` compute-pool threads,
// each owning a contiguous row partition. With rt non-nil every worker
// pushes its partition down; concurrent requests share the memory pool's
// user contexts (Figure 17's setup). It returns the aggregate and the
// virtual makespan.
func ParallelAggregate(p *ddc.Process, rt *core.Runtime, workers int, col *Column, kind AggKind) (float64, sim.Time, error) {
	if workers < 1 {
		workers = 1
	}
	partials := make([]PartialAgg, workers)
	errs := make([]error, workers)
	chunk := (col.N + workers - 1) / workers

	s := sim.NewScheduler()
	for i := 0; i < workers; i++ {
		i := i
		lo := i * chunk
		hi := lo + chunk
		if hi > col.N {
			hi = col.N
		}
		if lo >= hi {
			continue
		}
		s.Spawn(fmt.Sprintf("agg-worker-%d", i), 0, func(th *sim.Thread) {
			if rt == nil {
				partials[i] = aggregateRange(p.NewEnv(th), col, lo, hi)
				return
			}
			_, errs[i] = rt.Pushdown(th, func(env *ddc.Env) {
				partials[i] = aggregateRange(env, col, lo, hi)
			}, core.Options{})
		})
	}
	makespan := s.Run()
	var agg PartialAgg
	for i, part := range partials {
		if errs[i] != nil {
			return 0, makespan, errs[i]
		}
		agg.merge(part)
	}
	return agg.Final(kind), makespan, nil
}

// ParallelSelect evaluates pred over col with `workers` threads, each
// materialising its partition's matches into a private candidate list;
// the lists are concatenated in partition order so the result equals the
// serial SelectI64. Returns the combined candidate list and the makespan.
func ParallelSelect(p *ddc.Process, rt *core.Runtime, workers int, col *Column, pred PredI64) (*CandList, sim.Time, error) {
	if workers < 1 {
		workers = 1
	}
	parts := make([]*CandList, workers)
	errs := make([]error, workers)
	chunk := (col.N + workers - 1) / workers

	s := sim.NewScheduler()
	for i := 0; i < workers; i++ {
		i := i
		lo := i * chunk
		hi := lo + chunk
		if hi > col.N {
			hi = col.N
		}
		if lo >= hi {
			continue
		}
		body := func(env *ddc.Env) {
			out := NewCandList(env.P, hi-lo)
			for row := lo; row < hi; row++ {
				env.Compute(opsSelect)
				if pred.Eval(col.I64At(env, row)) {
					out.Append(env, row)
				}
			}
			parts[i] = out
		}
		s.Spawn(fmt.Sprintf("sel-worker-%d", i), 0, func(th *sim.Thread) {
			if rt == nil {
				body(p.NewEnv(th))
				return
			}
			_, errs[i] = rt.Pushdown(th, body, core.Options{})
		})
	}
	makespan := s.Run()

	// Concatenate in partition order (a cheap compute-side pass over the
	// already-materialised index lists).
	th := sim.NewThread("sel-concat")
	env := p.NewEnv(th)
	total := 0
	for i, part := range parts {
		if errs[i] != nil {
			return nil, makespan, errs[i]
		}
		if part != nil {
			total += part.N
		}
	}
	out := NewCandList(p, maxInt(total, 1))
	for _, part := range parts {
		if part == nil {
			continue
		}
		for j := 0; j < part.N; j++ {
			out.Append(env, part.Get(env, j))
		}
	}
	return out, makespan + th.Now(), nil
}
