package coldb

import (
	"fmt"
	"sort"

	"teleport/internal/ddc"
)

// Table is a named set of equal-length columns.
type Table struct {
	Name string
	N    int
	cols map[string]*Column
}

// DB owns the tables of one database inside one process.
type DB struct {
	P      *ddc.Process
	tables map[string]*Table
}

// NewDB returns an empty database bound to p.
func NewDB(p *ddc.Process) *DB {
	return &DB{P: p, tables: make(map[string]*Table)}
}

// CreateTable allocates a table with the given column specs.
func (db *DB) CreateTable(name string, n int, specs ...ColumnSpec) *Table {
	if _, dup := db.tables[name]; dup {
		panic("coldb: duplicate table " + name)
	}
	t := &Table{Name: name, N: n, cols: make(map[string]*Column, len(specs))}
	for _, s := range specs {
		t.cols[s.Name] = NewColumn(db.P, name+"."+s.Name, s.Type, n)
	}
	db.tables[name] = t
	return t
}

// ColumnSpec declares one column of a new table.
type ColumnSpec struct {
	Name string
	Type Type
}

// Table returns a table by name, panicking on unknown names (schema errors
// are programming errors here, not runtime conditions).
func (db *DB) Table(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic("coldb: unknown table " + name)
	}
	return t
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bytes returns the total size of all columns of all tables.
func (db *DB) Bytes() int64 {
	var n int64
	for _, t := range db.tables {
		for _, c := range t.cols {
			n += c.Bytes()
		}
	}
	return n
}

// Col returns a column by name, panicking on unknown names.
func (t *Table) Col(name string) *Column {
	c, ok := t.cols[name]
	if !ok {
		panic(fmt.Sprintf("coldb: table %s has no column %s", t.Name, name))
	}
	return c
}

// Columns returns the column names in sorted order.
func (t *Table) Columns() []string {
	names := make([]string, 0, len(t.cols))
	for n := range t.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
