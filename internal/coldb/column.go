// Package coldb is a columnar in-memory DBMS in the style of MonetDB, the
// system the paper optimises in §5.1. Tables are sets of typed column
// vectors whose bytes live in the process's disaggregated address space, so
// every operator's access pattern — sequential scans for selection and
// projection, random probes for hash joins — flows through the paging and
// coherence models. Each relational operator has a plain implementation and
// a TELEPORT pushdown wrapper (Exec), mirroring the paper's "selective
// wrapping of existing function calls".
package coldb

import (
	"fmt"

	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// Type is a column's storage type.
type Type int

// Column types.
const (
	I64 Type = iota // 8-byte signed integer (keys, counts)
	F64             // 8-byte float (prices, quantities)
	I32             // 4-byte signed integer (dates as day numbers, enums)
)

// Width returns the storage width in bytes.
func (t Type) Width() int {
	if t == I32 {
		return 4
	}
	return 8
}

// String names the type.
func (t Type) String() string {
	switch t {
	case I64:
		return "i64"
	case F64:
		return "f64"
	default:
		return "i32"
	}
}

// Column is a fixed-width typed vector in disaggregated memory.
type Column struct {
	Name string
	Type Type
	Base mem.Addr
	N    int
}

// NewColumn allocates a column of n values in the process's address space.
func NewColumn(p *ddc.Process, name string, t Type, n int) *Column {
	if n <= 0 {
		panic(fmt.Sprintf("coldb: column %q with %d rows", name, n))
	}
	base := p.Space.AllocPages(int64(n)*int64(t.Width()), "col:"+name)
	return &Column{Name: name, Type: t, Base: base, N: n}
}

// Addr returns the address of element i.
func (c *Column) Addr(i int) mem.Addr {
	return c.Base + mem.Addr(i*c.Type.Width())
}

// Bytes returns the column's total size.
func (c *Column) Bytes() int64 { return int64(c.N) * int64(c.Type.Width()) }

// I64At reads element i as int64 through the paging model.
func (c *Column) I64At(env *ddc.Env, i int) int64 {
	if c.Type == I32 {
		return int64(env.ReadI32(c.Addr(i)))
	}
	return env.ReadI64(c.Addr(i))
}

// F64At reads element i as float64.
func (c *Column) F64At(env *ddc.Env, i int) float64 {
	switch c.Type {
	case F64:
		return env.ReadF64(c.Addr(i))
	case I32:
		return float64(env.ReadI32(c.Addr(i)))
	default:
		return float64(env.ReadI64(c.Addr(i)))
	}
}

// SetI64 writes element i from an int64.
func (c *Column) SetI64(env *ddc.Env, i int, v int64) {
	if c.Type == I32 {
		env.WriteI32(c.Addr(i), int32(v))
		return
	}
	env.WriteI64(c.Addr(i), v)
}

// SetF64 writes element i from a float64.
func (c *Column) SetF64(env *ddc.Env, i int, v float64) {
	switch c.Type {
	case F64:
		env.WriteF64(c.Addr(i), v)
	case I32:
		env.WriteI32(c.Addr(i), int32(v))
	default:
		env.WriteI64(c.Addr(i), int64(v))
	}
}

// LoadI64 bulk-writes vals into the column directly through the ground-truth
// space. Loading models the initial population of the buffer pool in the
// memory pool (data is *born remote* in a DDC), so it bypasses the compute
// cache and charges nothing.
func (c *Column) LoadI64(p *ddc.Process, vals []int64) {
	if len(vals) != c.N {
		panic("coldb: LoadI64 length mismatch")
	}
	for i, v := range vals {
		if c.Type == I32 {
			p.Space.WriteI32(c.Addr(i), int32(v))
		} else {
			p.Space.WriteI64(c.Addr(i), v)
		}
	}
}

// LoadF64 bulk-writes float values, bypassing the compute cache.
func (c *Column) LoadF64(p *ddc.Process, vals []float64) {
	if len(vals) != c.N {
		panic("coldb: LoadF64 length mismatch")
	}
	for i, v := range vals {
		p.Space.WriteF64(c.Addr(i), v)
	}
}

// Range is a contiguous row interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// AddrRange returns the column's byte range for rows [lo, hi) — used to
// build core.Range eviction/sync hints.
func (c *Column) AddrRange(lo, hi int) (mem.Addr, int64) {
	return c.Addr(lo), int64(hi-lo) * int64(c.Type.Width())
}
