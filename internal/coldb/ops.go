package coldb

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// Per-tuple CPU costs (abstract operations). Relational operators are
// computationally lightweight relative to their memory traffic (§2.2);
// these costs make compute time visible without dominating.
const (
	opsSelect    = 2
	opsProject   = 2
	opsAggregate = 2
	opsHashBuild = 8
	opsHashProbe = 6
	opsChainStep = 2
	opsMerge     = 4
	opsExpr      = 4
	opsGroup     = 8
	opsSortStep  = 5
)

// CmpOp is a comparison predicate operator.
type CmpOp int

// Predicate operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpBetween // Lo ≤ v ≤ Hi
)

// PredI64 is an integer predicate (dates are day-number integers).
type PredI64 struct {
	Op     CmpOp
	Lo, Hi int64
}

// Eval applies the predicate.
func (p PredI64) Eval(v int64) bool {
	switch p.Op {
	case CmpLT:
		return v < p.Lo
	case CmpLE:
		return v <= p.Lo
	case CmpGT:
		return v > p.Lo
	case CmpGE:
		return v >= p.Lo
	case CmpEQ:
		return v == p.Lo
	default:
		return v >= p.Lo && v <= p.Hi
	}
}

// PredF64 is a float predicate.
type PredF64 struct {
	Op     CmpOp
	Lo, Hi float64
}

// Eval applies the predicate.
func (p PredF64) Eval(v float64) bool {
	switch p.Op {
	case CmpLT:
		return v < p.Lo
	case CmpLE:
		return v <= p.Lo
	case CmpGT:
		return v > p.Lo
	case CmpGE:
		return v >= p.Lo
	case CmpEQ:
		return v == p.Lo
	default:
		return v >= p.Lo && v <= p.Hi
	}
}

// SelectI64 scans col (restricted to cand if non-nil), applies pred, and
// materialises qualifying rows into a fresh candidate list — MonetDB's
// selection (§2.3: scan, filter, materialise to a temporary table).
func SelectI64(env *ddc.Env, col *Column, pred PredI64, cand *CandList) *CandList {
	out := NewCandList(env.P, cand.Len(col.N))
	cand.ForEach(env, col.N, func(row int) {
		env.Compute(opsSelect)
		if pred.Eval(col.I64At(env, row)) {
			out.Append(env, row)
		}
	})
	return out
}

// SelectF64 is SelectI64 for float columns.
func SelectF64(env *ddc.Env, col *Column, pred PredF64, cand *CandList) *CandList {
	out := NewCandList(env.P, cand.Len(col.N))
	cand.ForEach(env, col.N, func(row int) {
		env.Compute(opsSelect)
		if pred.Eval(col.F64At(env, row)) {
			out.Append(env, row)
		}
	})
	return out
}

// Project materialises the candidate rows of col into a fresh, dense column
// (a projected temporary), the operator with the highest memory intensity in
// Q9's profile (Figure 10).
func Project(env *ddc.Env, col *Column, cand *CandList) *Column {
	n := cand.Len(col.N)
	out := NewColumn(env.P, col.Name+"#proj", col.Type, maxInt(n, 1))
	out.N = n
	i := 0
	cand.ForEach(env, col.N, func(row int) {
		env.Compute(opsProject)
		if col.Type == F64 {
			out.SetF64(env, i, col.F64At(env, row))
		} else {
			out.SetI64(env, i, col.I64At(env, row))
		}
		i++
	})
	return out
}

// AggKind selects an aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
)

// Aggregate reduces col over the candidate rows.
func Aggregate(env *ddc.Env, col *Column, kind AggKind, cand *CandList) float64 {
	var acc float64
	first := true
	cand.ForEach(env, col.N, func(row int) {
		env.Compute(opsAggregate)
		v := col.F64At(env, row)
		switch kind {
		case AggSum:
			acc += v
		case AggCount:
			acc++
		case AggMin:
			if first || v < acc {
				acc = v
			}
		case AggMax:
			if first || v > acc {
				acc = v
			}
		}
		first = false
	})
	return acc
}

// ExprMulAddColumns evaluates a*b*scale + c (c optional) over the candidate
// rows into a fresh F64 column — the expression-evaluation operator
// (Figure 10 "Express.").
func ExprMulAddColumns(env *ddc.Env, a, b *Column, scale float64, cand *CandList) *Column {
	n := cand.Len(a.N)
	out := NewColumn(env.P, a.Name+"*"+b.Name, F64, maxInt(n, 1))
	out.N = n
	i := 0
	cand.ForEach(env, a.N, func(row int) {
		env.Compute(opsExpr)
		out.SetF64(env, i, a.F64At(env, row)*b.F64At(env, row)*scale)
		i++
	})
	return out
}

// ExprRevenue computes price*(1-discount) over candidate rows.
func ExprRevenue(env *ddc.Env, price, discount *Column, cand *CandList) *Column {
	n := cand.Len(price.N)
	out := NewColumn(env.P, "revenue", F64, maxInt(n, 1))
	out.N = n
	i := 0
	cand.ForEach(env, price.N, func(row int) {
		env.Compute(opsExpr)
		out.SetF64(env, i, price.F64At(env, row)*(1-discount.F64At(env, row)))
		i++
	})
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addrPages converts a column-backed byte range into whole pages (hint
// helper used when building eviction/sync ranges).
func addrPages(base mem.Addr, size int64) (mem.Addr, int64) {
	first, last := mem.PageSpan(base, int(size))
	return mem.PageBase(first), int64(last-first+1) * mem.PageSize
}
