package coldb

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// GroupAgg is an open-addressing hash aggregation table in disaggregated
// memory: group keys and running sums, linear probing.
type GroupAgg struct {
	nSlots int
	keys   mem.Addr // int64 per slot; sentinel emptyKey
	sums   mem.Addr // float64 per slot
	counts mem.Addr // int64 per slot
	Groups int
}

const emptyKey = int64(-0x7FFFFFFFFFFFFFFF)

// NewGroupAgg allocates a table for up to maxGroups distinct keys.
func NewGroupAgg(p *ddc.Process, maxGroups int) *GroupAgg {
	n := 16
	for n < maxGroups*2 {
		n <<= 1
	}
	g := &GroupAgg{
		nSlots: n,
		keys:   p.Space.AllocPages(int64(n)*8, "group.keys"),
		sums:   p.Space.AllocPages(int64(n)*8, "group.sums"),
		counts: p.Space.AllocPages(int64(n)*8, "group.counts"),
	}
	for i := 0; i < n; i++ {
		p.Space.WriteI64(g.keys+mem.Addr(i*8), emptyKey)
	}
	return g
}

// Add accumulates v into key's group.
func (g *GroupAgg) Add(env *ddc.Env, key int64, v float64) {
	env.Compute(opsGroup)
	slot := int(uint64(key)*0x9E3779B97F4A7C15>>32) & (g.nSlots - 1)
	for {
		k := env.ReadI64(g.keys + mem.Addr(slot*8))
		if k == key {
			break
		}
		if k == emptyKey {
			env.WriteI64(g.keys+mem.Addr(slot*8), key)
			g.Groups++
			break
		}
		env.Compute(opsChainStep)
		slot = (slot + 1) & (g.nSlots - 1)
	}
	a := mem.Addr(slot * 8)
	env.WriteF64(g.sums+a, env.ReadF64(g.sums+a)+v)
	env.WriteI64(g.counts+a, env.ReadI64(g.counts+a)+1)
}

// GroupRow is one group's result.
type GroupRow struct {
	Key   int64
	Sum   float64
	Count int64
}

// Rows scans the table and returns all groups (order unspecified).
func (g *GroupAgg) Rows(env *ddc.Env) []GroupRow {
	out := make([]GroupRow, 0, g.Groups)
	for i := 0; i < g.nSlots; i++ {
		env.Compute(2)
		k := env.ReadI64(g.keys + mem.Addr(i*8))
		if k == emptyKey {
			continue
		}
		out = append(out, GroupRow{
			Key:   k,
			Sum:   env.ReadF64(g.sums + mem.Addr(i*8)),
			Count: env.ReadI64(g.counts + mem.Addr(i*8)),
		})
	}
	return out
}

// GroupBySum aggregates vals by keys over candidate rows and returns the
// group table (the Group/Aggr. operators of Figure 10).
func GroupBySum(env *ddc.Env, keys, vals *Column, cand *CandList, maxGroups int) *GroupAgg {
	g := NewGroupAgg(env.P, maxGroups)
	cand.ForEach(env, keys.N, func(row int) {
		g.Add(env, keys.I64At(env, row), vals.F64At(env, row))
	})
	return g
}

// SortRowsByKey sorts a materialised key column's row indices ascending and
// returns the permutation as a candidate list (used for order-by and to
// prepare merge joins). The sort runs where the env runs, charging
// n·log n·opsSortStep plus its memory traffic.
func SortRowsByKey(env *ddc.Env, key *Column) *CandList {
	n := key.N
	perm := NewCandList(env.P, n)
	for i := 0; i < n; i++ {
		perm.Append(env, i)
	}
	// In-place heapsort over the candidate list: deterministic, O(n log n),
	// all traffic through the paging model.
	get := func(i int) int { return perm.Get(env, i) }
	set := func(i, v int) { env.WriteU32(perm.Base+mem.Addr(i*4), uint32(v)) }
	less := func(a, b int) bool {
		env.Compute(opsSortStep)
		return key.I64At(env, a) < key.I64At(env, b)
	}
	var down func(root, n int)
	down = func(root, n int) {
		for {
			child := 2*root + 1
			if child >= n {
				return
			}
			if child+1 < n && less(get(child), get(child+1)) {
				child++
			}
			if !less(get(root), get(child)) {
				return
			}
			a, b := get(root), get(child)
			set(root, b)
			set(child, a)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	for i := n - 1; i > 0; i-- {
		a, b := get(0), get(i)
		set(0, b)
		set(i, a)
		down(0, i)
	}
	return perm
}

// TopK returns the k groups with the largest sums (descending), a small
// compute-side post-processing step (the "top 10" of TPC-H Q3).
func TopK(env *ddc.Env, rows []GroupRow, k int) []GroupRow {
	out := append([]GroupRow(nil), rows...)
	// Simple selection of the top k; result sets here are small.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			env.Compute(2)
			if out[j].Sum > out[best].Sum {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}
