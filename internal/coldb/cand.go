package coldb

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// CandList is a materialised list of qualifying row indices — MonetDB's
// candidate list, the optional third input of its selection operator
// (§2.3). It lives in disaggregated memory like everything else.
type CandList struct {
	Base mem.Addr
	N    int
}

// NewCandList allocates a candidate list with capacity cap.
func NewCandList(p *ddc.Process, cap int) *CandList {
	if cap <= 0 {
		cap = 1
	}
	return &CandList{Base: p.Space.AllocPages(int64(cap)*4, "cand")}
}

// Get reads entry i.
func (cl *CandList) Get(env *ddc.Env, i int) int {
	return int(env.ReadU32(cl.Base + mem.Addr(i*4)))
}

// Append writes the next entry.
func (cl *CandList) Append(env *ddc.Env, row int) {
	env.WriteU32(cl.Base+mem.Addr(cl.N*4), uint32(row))
	cl.N++
}

// Bytes returns the list's materialised size.
func (cl *CandList) Bytes() int64 { return int64(cl.N) * 4 }

// ForEach iterates the candidate rows; with a nil receiver it iterates the
// full range [0, n) instead, so operators treat "no candidate list" and "all
// rows" uniformly.
func (cl *CandList) ForEach(env *ddc.Env, n int, f func(row int)) {
	if cl == nil {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	for i := 0; i < cl.N; i++ {
		f(cl.Get(env, i))
	}
}

// Len returns the number of candidates, or n when the list is nil.
func (cl *CandList) Len(n int) int {
	if cl == nil {
		return n
	}
	return cl.N
}
