package coldb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teleport/internal/ddc"
	"teleport/internal/sim"
)

func localDB() (*DB, *ddc.Env) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	return NewDB(p), p.NewEnv(sim.NewThread("t"))
}

func loadI64Col(db *DB, t *Table, name string, vals []int64) *Column {
	c := t.Col(name)
	c.LoadI64(db.P, vals)
	return c
}

func TestTableSchema(t *testing.T) {
	db, _ := localDB()
	tab := db.CreateTable("r", 10,
		ColumnSpec{"a", I64}, ColumnSpec{"b", F64}, ColumnSpec{"c", I32})
	if tab.N != 10 {
		t.Fatal("row count")
	}
	if got := tab.Columns(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("Columns = %v", got)
	}
	if db.Table("r") != tab {
		t.Fatal("Table lookup")
	}
	if db.Bytes() != 10*8+10*8+10*4 {
		t.Fatalf("Bytes = %d", db.Bytes())
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestColumnTypedAccess(t *testing.T) {
	db, env := localDB()
	tab := db.CreateTable("r", 4, ColumnSpec{"i", I64}, ColumnSpec{"f", F64}, ColumnSpec{"d", I32})
	tab.Col("i").SetI64(env, 0, -5)
	tab.Col("f").SetF64(env, 1, 2.25)
	tab.Col("d").SetI64(env, 2, 12345)
	if tab.Col("i").I64At(env, 0) != -5 {
		t.Fatal("i64")
	}
	if tab.Col("f").F64At(env, 1) != 2.25 {
		t.Fatal("f64")
	}
	if tab.Col("d").I64At(env, 2) != 12345 || tab.Col("d").F64At(env, 2) != 12345 {
		t.Fatal("i32")
	}
}

func TestSelectMatchesNaiveFilter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500) + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(100))
		}
		db, env := localDB()
		tab := db.CreateTable("r", n, ColumnSpec{"v", I64})
		col := loadI64Col(db, tab, "v", vals)
		cut := int64(r.Intn(100))
		got := SelectI64(env, col, PredI64{Op: CmpLT, Lo: cut}, nil)
		var want []int
		for i, v := range vals {
			if v < cut {
				want = append(want, i)
			}
		}
		if got.N != len(want) {
			return false
		}
		for i, w := range want {
			if got.Get(env, i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectWithCandidateListComposes(t *testing.T) {
	db, env := localDB()
	n := 100
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := db.CreateTable("r", n, ColumnSpec{"v", I64})
	col := loadI64Col(db, tab, "v", vals)
	c1 := SelectI64(env, col, PredI64{Op: CmpGE, Lo: 20}, nil)
	c2 := SelectI64(env, col, PredI64{Op: CmpLT, Lo: 30}, c1)
	if c2.N != 10 {
		t.Fatalf("composed selection N = %d, want 10", c2.N)
	}
	if c2.Get(env, 0) != 20 || c2.Get(env, 9) != 29 {
		t.Fatal("composed selection rows wrong")
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		p    PredI64
		v    int64
		want bool
	}{
		{PredI64{Op: CmpLT, Lo: 5}, 4, true},
		{PredI64{Op: CmpLT, Lo: 5}, 5, false},
		{PredI64{Op: CmpLE, Lo: 5}, 5, true},
		{PredI64{Op: CmpGT, Lo: 5}, 6, true},
		{PredI64{Op: CmpGE, Lo: 5}, 5, true},
		{PredI64{Op: CmpEQ, Lo: 5}, 5, true},
		{PredI64{Op: CmpEQ, Lo: 5}, 4, false},
		{PredI64{Op: CmpBetween, Lo: 2, Hi: 4}, 3, true},
		{PredI64{Op: CmpBetween, Lo: 2, Hi: 4}, 5, false},
	}
	for i, c := range cases {
		if c.p.Eval(c.v) != c.want {
			t.Errorf("case %d: PredI64 %+v on %d", i, c.p, c.v)
		}
	}
	if !(PredF64{Op: CmpBetween, Lo: 0.05, Hi: 0.07}).Eval(0.06) {
		t.Error("PredF64 between")
	}
	if (PredF64{Op: CmpLT, Lo: 1.5}).Eval(2.0) {
		t.Error("PredF64 lt")
	}
	if !(PredF64{Op: CmpGE, Lo: 1.5}).Eval(1.5) || !(PredF64{Op: CmpGT, Lo: 1.0}).Eval(1.5) ||
		!(PredF64{Op: CmpLE, Lo: 1.5}).Eval(1.5) || !(PredF64{Op: CmpEQ, Lo: 1.5}).Eval(1.5) {
		t.Error("PredF64 ops")
	}
}

func TestProjectAndAggregate(t *testing.T) {
	db, env := localDB()
	n := 50
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := db.CreateTable("r", n, ColumnSpec{"v", I64})
	col := loadI64Col(db, tab, "v", vals)
	cand := SelectI64(env, col, PredI64{Op: CmpLT, Lo: 10}, nil)
	proj := Project(env, col, cand)
	if proj.N != 10 || proj.I64At(env, 3) != 3 {
		t.Fatalf("projection wrong: N=%d", proj.N)
	}
	if got := Aggregate(env, col, AggSum, cand); got != 45 {
		t.Fatalf("sum = %v", got)
	}
	if got := Aggregate(env, col, AggCount, cand); got != 10 {
		t.Fatalf("count = %v", got)
	}
	if got := Aggregate(env, col, AggMin, cand); got != 0 {
		t.Fatalf("min = %v", got)
	}
	if got := Aggregate(env, col, AggMax, cand); got != 9 {
		t.Fatalf("max = %v", got)
	}
}

func TestExpressions(t *testing.T) {
	db, env := localDB()
	tab := db.CreateTable("r", 3, ColumnSpec{"p", F64}, ColumnSpec{"d", F64})
	tab.Col("p").LoadF64(db.P, []float64{10, 20, 30})
	tab.Col("d").LoadF64(db.P, []float64{0.1, 0.2, 0.5})
	rev := ExprRevenue(env, tab.Col("p"), tab.Col("d"), nil)
	if rev.F64At(env, 0) != 9 || rev.F64At(env, 2) != 15 {
		t.Fatal("revenue expression wrong")
	}
	mul := ExprMulAddColumns(env, tab.Col("p"), tab.Col("d"), 2, nil)
	if mul.F64At(env, 1) != 8 {
		t.Fatalf("mul expression = %v", mul.F64At(env, 1))
	}
}

// TestHashJoinMatchesNestedLoop is the property test: hash join equals the
// naive O(n·m) join on random inputs.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb, np := r.Intn(80)+1, r.Intn(200)+1
		build := make([]int64, nb)
		for i := range build {
			build[i] = int64(r.Intn(40))
		}
		probe := make([]int64, np)
		for i := range probe {
			probe[i] = int64(r.Intn(60))
		}
		// Unique-ify build keys (the join is FK→PK style).
		seen := map[int64]bool{}
		for i := range build {
			for seen[build[i]] {
				build[i]++
			}
			seen[build[i]] = true
		}
		db, env := localDB()
		bt := db.CreateTable("b", nb, ColumnSpec{"k", I64})
		bk := loadI64Col(db, bt, "k", build)
		pt := db.CreateTable("p", np, ColumnSpec{"k", I64})
		pk := loadI64Col(db, pt, "k", probe)

		idx := BuildHashIndex(env, bk, nil)
		res := HashJoinProbe(env, idx, pk, nil)

		want := 0
		for i := 0; i < np; i++ {
			for j := 0; j < nb; j++ {
				if probe[i] == build[j] {
					want++
				}
			}
		}
		if res.Outer.N != want {
			return false
		}
		for i := 0; i < res.Outer.N; i++ {
			o, in := res.Outer.Get(env, i), res.Inner.Get(env, i)
			if probe[o] != build[in] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, nr := r.Intn(100)+1, r.Intn(100)+1
		left := make([]int64, nl)
		right := make([]int64, nr)
		for i := range left {
			left[i] = int64(r.Intn(30))
		}
		for i := range right {
			right[i] = int64(r.Intn(30))
		}
		sortI64(left)
		sortI64(right)
		// Keep left unique so one-to-many emission is well-defined.
		left = uniqueI64(left)
		nl = len(left)

		db, env := localDB()
		lt := db.CreateTable("l", nl, ColumnSpec{"k", I64})
		lk := loadI64Col(db, lt, "k", left)
		rt := db.CreateTable("r", nr, ColumnSpec{"k", I64})
		rk := loadI64Col(db, rt, "k", right)
		res := MergeJoin(env, lk, rk)

		want := 0
		for _, lv := range left {
			for _, rv := range right {
				if lv == rv {
					want++
				}
			}
		}
		return res.Outer.N == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sortI64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func uniqueI64(v []int64) []int64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func TestLookupJoin(t *testing.T) {
	db, env := localDB()
	dim := db.CreateTable("dim", 4, ColumnSpec{"v", I64})
	dv := loadI64Col(db, dim, "v", []int64{100, 200, 300, 400})
	fact := db.CreateTable("fact", 5, ColumnSpec{"fk", I64})
	fk := loadI64Col(db, fact, "fk", []int64{3, 0, 1, 1, 2})
	out := LookupJoin(env, dv, fk, nil)
	want := []int64{400, 100, 200, 200, 300}
	for i, w := range want {
		if out.I64At(env, i) != w {
			t.Fatalf("LookupJoin[%d] = %d, want %d", i, out.I64At(env, i), w)
		}
	}
}

func TestGroupBySumMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(400) + 1
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(r.Intn(20))
			vals[i] = int64(r.Intn(100))
		}
		db, env := localDB()
		tab := db.CreateTable("r", n, ColumnSpec{"k", I64}, ColumnSpec{"v", I64})
		kc := loadI64Col(db, tab, "k", keys)
		vc := loadI64Col(db, tab, "v", vals)
		g := GroupBySum(env, kc, vc, nil, 32)
		want := map[int64]float64{}
		wantN := map[int64]int64{}
		for i := range keys {
			want[keys[i]] += float64(vals[i])
			wantN[keys[i]]++
		}
		rows := g.Rows(env)
		if len(rows) != len(want) {
			return false
		}
		for _, row := range rows {
			if want[row.Key] != row.Sum || wantN[row.Key] != row.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortRowsByKey(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		iv := make([]int64, len(vals))
		for i, v := range vals {
			iv[i] = int64(v)
		}
		db, env := localDB()
		tab := db.CreateTable("r", len(iv), ColumnSpec{"v", I64})
		col := loadI64Col(db, tab, "v", iv)
		perm := SortRowsByKey(env, col)
		prev := int64(-1 << 62)
		seen := map[int]bool{}
		for i := 0; i < perm.N; i++ {
			row := perm.Get(env, i)
			if seen[row] {
				return false
			}
			seen[row] = true
			v := col.I64At(env, row)
			if v < prev {
				return false
			}
			prev = v
		}
		return perm.N == len(iv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	_, env := localDB()
	rows := []GroupRow{{1, 5, 1}, {2, 9, 1}, {3, 1, 1}, {4, 7, 1}}
	top := TopK(env, rows, 2)
	if len(top) != 2 || top[0].Key != 2 || top[1].Key != 4 {
		t.Fatalf("TopK = %+v", top)
	}
	if got := TopK(env, rows, 10); len(got) != 4 {
		t.Fatal("TopK with k>len must return all")
	}
}

func TestEmptyInputOperators(t *testing.T) {
	db, env := localDB()
	tab := db.CreateTable("r", 4, ColumnSpec{"k", I64}, ColumnSpec{"v", F64})
	tab.Col("k").LoadI64(db.P, []int64{1, 2, 3, 4})
	tab.Col("v").LoadF64(db.P, []float64{1, 2, 3, 4})
	// An always-false selection yields an empty candidate list...
	empty := SelectI64(env, tab.Col("k"), PredI64{Op: CmpLT, Lo: -100}, nil)
	if empty.N != 0 {
		t.Fatalf("empty selection N = %d", empty.N)
	}
	// ... which every downstream operator must tolerate.
	if p := Project(env, tab.Col("v"), empty); p.N != 0 {
		t.Fatal("projection over empty candidates")
	}
	if got := Aggregate(env, tab.Col("v"), AggSum, empty); got != 0 {
		t.Fatalf("empty aggregate = %v", got)
	}
	idx := BuildHashIndex(env, GatherI64(env, tab.Col("k"), empty), nil)
	res := HashJoinProbe(env, idx, tab.Col("k"), nil)
	if res.Outer.N != 0 {
		t.Fatal("probe into an empty index matched rows")
	}
	g := GroupBySum(env, tab.Col("k"), tab.Col("v"), empty, 4)
	if g.Groups != 0 || len(g.Rows(env)) != 0 {
		t.Fatal("group over empty candidates")
	}
	if rev := ExprRevenue(env, tab.Col("v"), tab.Col("v"), empty); rev.N != 0 {
		t.Fatal("expression over empty candidates")
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	db, env := localDB()
	a := db.CreateTable("a", 3, ColumnSpec{"k", I64})
	a.Col("k").LoadI64(db.P, []int64{1, 2, 3})
	b := db.CreateTable("b", 1, ColumnSpec{"k", I64})
	b.Col("k").LoadI64(db.P, []int64{9})
	if res := MergeJoin(env, a.Col("k"), b.Col("k")); res.Outer.N != 0 {
		t.Fatal("disjoint merge join matched")
	}
	zero := GatherI64(env, a.Col("k"), NewCandList(db.P, 1))
	if res := MergeJoin(env, zero, b.Col("k")); res.Outer.N != 0 {
		t.Fatal("empty-left merge join matched")
	}
}
