package coldb

import (
	"testing"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

func buildAggFixture(t *testing.T, cfg ddc.Config, n int) (*ddc.Process, *Column) {
	t.Helper()
	m := ddc.MustMachine(cfg)
	p := m.NewProcess()
	db := NewDB(p)
	tab := db.CreateTable("r", n, ColumnSpec{"v", F64})
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%977) + 0.5
	}
	tab.Col("v").LoadF64(p, vals)
	return p, tab.Col("v")
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	p, col := buildAggFixture(t, ddc.Linux(), 50000)
	serialEnv := p.NewEnv(sim.NewThread("serial"))
	for _, kind := range []AggKind{AggSum, AggCount, AggMin, AggMax} {
		want := Aggregate(serialEnv, col, kind, nil)
		for _, workers := range []int{1, 3, 8} {
			got, _, err := ParallelAggregate(p, nil, workers, col, kind)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("kind %d workers %d: %v vs %v", kind, workers, got, want)
			}
		}
	}
}

func TestParallelAggregateScalesDown(t *testing.T) {
	p, col := buildAggFixture(t, ddc.Linux(), 200000)
	_, one, err := ParallelAggregate(p, nil, 1, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	_, eight, err := ParallelAggregate(p, nil, 8, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if float64(eight) > 0.35*float64(one) {
		t.Fatalf("8 workers (%v) should be much faster than 1 (%v)", eight, one)
	}
}

func TestParallelAggregatePushdownSharesContexts(t *testing.T) {
	p, col := buildAggFixture(t, ddc.BaseDDC(64*mem.PageSize), 100000)
	wantGot, _, err := ParallelAggregate(p, nil, 4, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(p, 2)
	got, _, err := ParallelAggregate(p, rt, 4, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantGot {
		t.Fatalf("pushed parallel aggregate differs: %v vs %v", got, wantGot)
	}
	if rt.Stats().Calls != 4 {
		t.Fatalf("expected 4 pushdown calls, got %d", rt.Stats().Calls)
	}
	// Two-context runtime, four workers: at least two calls must have
	// queued behind the pool (serialisation is observable, not silent).
	_, two, err := ParallelAggregate(p, core.NewRuntime(p, 2), 4, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	_, four, err := ParallelAggregate(p, core.NewRuntime(p, 4), 4, col, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if four > two {
		t.Fatalf("more contexts should not be slower: 2ctx %v, 4ctx %v", two, four)
	}
}

func TestParallelSelectMatchesSerial(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	db := NewDB(p)
	n := 30000
	tab := db.CreateTable("r", n, ColumnSpec{"v", I64})
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 251)
	}
	tab.Col("v").LoadI64(p, vals)
	col := tab.Col("v")
	pred := PredI64{Op: CmpLT, Lo: 50}

	env := p.NewEnv(sim.NewThread("serial"))
	want := SelectI64(env, col, pred, nil)
	for _, workers := range []int{1, 2, 5} {
		got, _, err := ParallelSelect(p, nil, workers, col, pred)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N {
			t.Fatalf("workers %d: N = %d, want %d", workers, got.N, want.N)
		}
		checkEnv := p.NewEnv(sim.NewThread("check"))
		for i := 0; i < want.N; i++ {
			if got.Get(checkEnv, i) != want.Get(checkEnv, i) {
				t.Fatalf("workers %d: row order differs at %d", workers, i)
			}
		}
	}
}

func TestParallelSelectPushdown(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	db := NewDB(p)
	n := 60000
	tab := db.CreateTable("r", n, ColumnSpec{"v", I64})
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	tab.Col("v").LoadI64(p, vals)
	col := tab.Col("v")
	pred := PredI64{Op: CmpEQ, Lo: 7}

	plain, plainTime, err := ParallelSelect(p, nil, 4, col, pred)
	if err != nil {
		t.Fatal(err)
	}
	pushed, pushedTime, err := ParallelSelect(p, core.NewRuntime(p, 2), 4, col, pred)
	if err != nil {
		t.Fatal(err)
	}
	if plain.N != pushed.N {
		t.Fatalf("pushed select differs: %d vs %d", pushed.N, plain.N)
	}
	if pushedTime >= plainTime {
		t.Fatalf("pushdown should beat faulting scans: %v vs %v", pushedTime, plainTime)
	}
}
