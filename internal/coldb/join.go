package coldb

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// HashIndex is a chained hash table over a key column, stored entirely in
// disaggregated memory: a bucket-head array plus a per-row chain array.
// Probing it is the random-access pattern that makes hash join "severely
// memory-bound" in a DDC (§5.1).
type HashIndex struct {
	Keys     *Column
	nBuckets int
	buckets  mem.Addr // uint32 head per bucket; 0 = empty, else row+1
	next     mem.Addr // uint32 chain per row; 0 = end, else row+1
}

// BuildHashIndex builds the index over key (restricted to cand if non-nil).
// Rows outside cand are absent from the index.
func BuildHashIndex(env *ddc.Env, key *Column, cand *CandList) *HashIndex {
	n := key.N
	nBuckets := 16
	for nBuckets < n*2 {
		nBuckets <<= 1
	}
	h := &HashIndex{
		Keys:     key,
		nBuckets: nBuckets,
		buckets:  env.P.Space.AllocPages(int64(nBuckets)*4, "hash.buckets"),
		next:     env.P.Space.AllocPages(int64(maxInt(n, 1))*4, "hash.next"),
	}
	cand.ForEach(env, n, func(row int) {
		env.Compute(opsHashBuild)
		b := h.bucket(key.I64At(env, row))
		head := env.ReadU32(h.buckets + mem.Addr(b*4))
		env.WriteU32(h.next+mem.Addr(row*4), head)
		env.WriteU32(h.buckets+mem.Addr(b*4), uint32(row+1))
	})
	return h
}

func (h *HashIndex) bucket(k int64) int {
	x := uint64(k) * 0x9E3779B97F4A7C15
	return int(x>>32) & (h.nBuckets - 1)
}

// Probe walks the chain for key k and returns the first matching row, or
// -1. Each chain step is a dependent random access.
func (h *HashIndex) Probe(env *ddc.Env, k int64) int {
	env.Compute(opsHashProbe)
	cur := env.ReadU32(h.buckets + mem.Addr(h.bucket(k)*4))
	for cur != 0 {
		row := int(cur - 1)
		env.Compute(opsChainStep)
		if h.Keys.I64At(env, row) == k {
			return row
		}
		cur = env.ReadU32(h.next + mem.Addr(row*4))
	}
	return -1
}

// JoinResult pairs probe-side rows with the matched build-side rows.
type JoinResult struct {
	Outer *CandList // probe-side row indices
	Inner *CandList // matched build-side row indices (parallel to Outer)
}

// HashJoinProbe scans probeKey over cand, probes the index, and materialises
// matching (outer, inner) row pairs — steps (1)–(3) of the binary hash join
// described in §2.2.
func HashJoinProbe(env *ddc.Env, idx *HashIndex, probeKey *Column, cand *CandList) JoinResult {
	capHint := cand.Len(probeKey.N)
	res := JoinResult{
		Outer: NewCandList(env.P, capHint),
		Inner: NewCandList(env.P, capHint),
	}
	cand.ForEach(env, probeKey.N, func(row int) {
		if m := idx.Probe(env, probeKey.I64At(env, row)); m >= 0 {
			res.Outer.Append(env, row)
			res.Inner.Append(env, m)
		}
	})
	return res
}

// GatherI64 materialises col[rows[i]] for a row-index list — the payload
// fetch that follows a join.
func GatherI64(env *ddc.Env, col *Column, rows *CandList) *Column {
	out := NewColumn(env.P, col.Name+"#g", col.Type, maxInt(rows.N, 1))
	out.N = rows.N
	for i := 0; i < rows.N; i++ {
		env.Compute(opsProject)
		out.SetI64(env, i, col.I64At(env, rows.Get(env, i)))
	}
	return out
}

// GatherF64 is GatherI64 for float payloads.
func GatherF64(env *ddc.Env, col *Column, rows *CandList) *Column {
	out := NewColumn(env.P, col.Name+"#g", F64, maxInt(rows.N, 1))
	out.N = rows.N
	for i := 0; i < rows.N; i++ {
		env.Compute(opsProject)
		out.SetF64(env, i, col.F64At(env, rows.Get(env, i)))
	}
	return out
}

// MergeJoin joins two key columns that are both sorted ascending, returning
// matched row pairs. One-to-many matches are emitted pairwise; both inputs
// are consumed sequentially (the pattern that makes merge join tolerable in
// a DDC, Figure 10).
func MergeJoin(env *ddc.Env, left, right *Column) JoinResult {
	res := JoinResult{
		Outer: NewCandList(env.P, left.N),
		Inner: NewCandList(env.P, left.N),
	}
	i, j := 0, 0
	for i < left.N && j < right.N {
		env.Compute(opsMerge)
		lv := left.I64At(env, i)
		rv := right.I64At(env, j)
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Emit the run of equal right keys for this left row.
			for jj := j; jj < right.N; jj++ {
				env.Compute(opsMerge)
				if right.I64At(env, jj) != lv {
					break
				}
				res.Outer.Append(env, i)
				res.Inner.Append(env, jj)
			}
			i++
		}
	}
	return res
}

// LookupJoin probes a unique-key index column where keys are dense
// 0..N-1 identifiers (dimension tables like supplier or nation): a direct
// positional gather.
func LookupJoin(env *ddc.Env, dim *Column, fk *Column, cand *CandList) *Column {
	n := cand.Len(fk.N)
	out := NewColumn(env.P, dim.Name+"#lk", dim.Type, maxInt(n, 1))
	out.N = n
	i := 0
	cand.ForEach(env, fk.N, func(row int) {
		env.Compute(opsHashProbe)
		k := int(fk.I64At(env, row))
		if dim.Type == F64 {
			out.SetF64(env, i, dim.F64At(env, k))
		} else {
			out.SetI64(env, i, dim.I64At(env, k))
		}
		i++
	})
	return out
}
