package hw

import (
	"math"
	"testing"
)

func TestTestbedValid(t *testing.T) {
	c := Testbed()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpNs(t *testing.T) {
	if got := OpNs(2.0, 10); got != 5.0 {
		t.Fatalf("OpNs(2,10) = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero clock")
		}
	}()
	OpNs(0, 1)
}

func TestMsgNs(t *testing.T) {
	c := Testbed()
	// A 4 KB page at 7 GB/s plus 1.2 µs latency.
	want := 1200 + 4096/7.0
	if got := c.MsgNs(4096); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MsgNs(4096) = %v, want %v", got, want)
	}
	if got := c.MsgNs(0); got != 1200 {
		t.Fatalf("MsgNs(0) = %v, want pure latency", got)
	}
}

func TestRoundTripNs(t *testing.T) {
	c := Testbed()
	want := c.MsgNs(100) + c.NetHandlerNs + c.MsgNs(4096)
	if got := c.RoundTripNs(100, 4096); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RoundTripNs = %v, want %v", got, want)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	base := Testbed()
	cases := []func(*Config){
		func(c *Config) { c.ComputeClockGHz = 0 },
		func(c *Config) { c.MemoryClockGHz = -1 },
		func(c *Config) { c.MemoryPoolCores = 0 },
		func(c *Config) { c.NetBandwidthGBs = 0 },
		func(c *Config) { c.SSDSeqGBs = 0 },
		func(c *Config) { c.DRAMLineBytes = 0 },
	}
	for i, mutate := range cases {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken config", i)
		}
	}
}

func TestClockRatioShapesCost(t *testing.T) {
	// Throttling the memory clock (§7.3) must make memory-pool ops slower
	// proportionally.
	full := OpNs(2.1, 1000)
	throttled := OpNs(0.4, 1000)
	if ratio := throttled / full; math.Abs(ratio-2.1/0.4) > 1e-9 {
		t.Fatalf("throttle ratio = %v", ratio)
	}
}
