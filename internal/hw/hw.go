// Package hw defines the hardware cost model for the simulated disaggregated
// data center: CPU clocks per resource pool, DRAM access costs, the RDMA
// fabric, and the NVMe SSD. The default values mirror the paper's testbed
// (§7: Xeon E5-2630L compute nodes, ConnectX-3 / EDR InfiniBand at 56 Gbps
// and 1.2 µs latency, a 3 GB/s / 600K-IOPS NVMe SSD).
package hw

import "teleport/internal/sim"

// Config holds every tunable hardware parameter. The zero value is not
// usable; start from Testbed() and override.
type Config struct {
	// CPU clocks, in GHz. One abstract "operation" costs 1/clock ns, so a
	// 2.1 GHz core executes 2.1 abstract ops per nanosecond. §7.3 throttles
	// MemoryClockGHz to emulate a weak memory-pool controller.
	ComputeClockGHz float64
	MemoryClockGHz  float64

	// MemoryPoolCores is the number of physical cores the memory pool
	// dedicates to pushdown user contexts (§7.3 uses two).
	MemoryPoolCores int

	// DRAM. A random access that misses the last-touched line pays
	// DRAMRandNs; sequential accesses within or adjacent to the last line
	// pay DRAMSeqLineNs per new 64-byte line (hardware prefetch). Lines
	// recently touched by the same core hit the modelled L2/LLC instead
	// (CacheHitNs per access, CacheLines capacity, direct-mapped).
	DRAMRandNs    float64
	DRAMSeqLineNs float64
	DRAMLineBytes int
	CacheHitNs    float64
	CacheLines    int

	// Fabric (RDMA). A message costs NetLatencyNs + bytes/NetBandwidthGBs.
	// NetHandlerNs is the controller-side processing cost per RPC.
	NetLatencyNs    float64
	NetBandwidthGBs float64
	NetHandlerNs    float64

	// FaultHandleNs is the software cost of one remote page fault beyond
	// the raw network time: trap, splitkernel fault handling on both
	// sides, page-table update, TLB work. Calibrated so a 4 KB remote
	// fault lands at ≈6.5 µs end to end, LegoOS's reported latency.
	FaultHandleNs float64

	// SSD. Random 4 KB reads/writes pay the latency; sequential pages pay
	// bandwidth only (detected by consecutive page IDs).
	SSDRandReadNs  float64
	SSDRandWriteNs float64
	SSDSeqGBs      float64

	// CtxSwitchNs is the cost of a context switch in the memory pool,
	// charged when more user contexts are runnable than physical cores
	// (§7.3, Figure 17).
	CtxSwitchNs float64

	// PTEVisitOps is the per-entry CPU cost (in abstract operations, so it
	// scales with the local clock) of cloning/checking a page-table entry
	// during temporary-context setup (§7.5 shows this dominating on-demand
	// sync's setup phase).
	PTEVisitOps float64

	// PageListEntryOps is the compute-side CPU cost of gathering one
	// resident page entry before RLE encoding (§6).
	PageListEntryOps float64
}

// Testbed returns the paper's hardware configuration (§7 experimental
// setup). All experiments start from this and override what they sweep.
func Testbed() Config {
	return Config{
		ComputeClockGHz: 2.1,
		MemoryClockGHz:  2.1,
		MemoryPoolCores: 2,

		DRAMRandNs:    90,  // uncached DRAM access
		DRAMSeqLineNs: 4.5, // streaming: ~14 GB/s per core
		DRAMLineBytes: 64,
		CacheHitNs:    3,    // on-chip cache hit
		CacheLines:    8192, // 512 KB of modelled L2/LLC per core

		NetLatencyNs:    1200, // 1.2 µs EDR InfiniBand
		NetBandwidthGBs: 7.0,  // 56 Gb/s
		NetHandlerNs:    400,  // LITE-style kernel RPC handling
		FaultHandleNs:   2900, // trap + splitkernel handlers + TLB

		SSDRandReadNs:  90e3, // sync 4 KB random read on NVMe flash
		SSDRandWriteNs: 30e3,
		SSDSeqGBs:      3.0,

		CtxSwitchNs:      2000,
		PTEVisitOps:      38, // ≈18 ns per entry at 2.1 GHz
		PageListEntryOps: 12,
	}
}

// OpNs returns the cost in nanoseconds of n abstract CPU operations at the
// given clock.
func OpNs(clockGHz, n float64) float64 {
	if clockGHz <= 0 {
		panic("hw: non-positive clock")
	}
	return n / clockGHz
}

// MsgNs returns the fabric cost of a single message of the given size.
func (c *Config) MsgNs(bytes int) float64 {
	return c.NetLatencyNs + float64(bytes)/c.NetBandwidthGBs
}

// MsgTime is MsgNs as a sim.Time.
func (c *Config) MsgTime(bytes int) sim.Time { return sim.FromNs(c.MsgNs(bytes)) }

// RoundTripNs returns the cost of a request/response pair including the
// remote handler.
func (c *Config) RoundTripNs(reqBytes, respBytes int) float64 {
	return c.MsgNs(reqBytes) + c.NetHandlerNs + c.MsgNs(respBytes)
}

// Validate reports obviously broken configurations early.
func (c *Config) Validate() error {
	switch {
	case c.ComputeClockGHz <= 0 || c.MemoryClockGHz <= 0:
		return errConfig("CPU clock must be positive")
	case c.MemoryPoolCores <= 0:
		return errConfig("MemoryPoolCores must be positive")
	case c.NetBandwidthGBs <= 0 || c.SSDSeqGBs <= 0:
		return errConfig("bandwidth must be positive")
	case c.DRAMLineBytes <= 0:
		return errConfig("DRAMLineBytes must be positive")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "hw: invalid config: " + string(e) }
