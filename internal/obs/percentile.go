package obs

import (
	"sort"

	"teleport/internal/metrics"
)

// Percentiles is one operation class's end-to-end latency distribution,
// extracted from a metrics histogram. Values are virtual nanoseconds.
type Percentiles struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	MinNs  int64   `json:"min_ns"`
	MaxNs  int64   `json:"max_ns"`
	P50    float64 `json:"p50_ns"`
	P95    float64 `json:"p95_ns"`
	P99    float64 `json:"p99_ns"`
	P999   float64 `json:"p999_ns"`

	// Exact reports the quantiles were computed from the full retained raw
	// sample set (bounded sample counts under a sample cap); false means
	// linear interpolation inside the fixed histogram buckets, whose error
	// is bounded by the bucket width (see DESIGN.md §9).
	Exact bool `json:"exact"`
}

// FromHistogram extracts percentiles from one histogram snapshot. When the
// snapshot retains its complete raw sample set the quantiles are exact;
// otherwise they are interpolated linearly within the fixed buckets and
// clamped to the observed [min, max] envelope. Deterministic either way: the
// same snapshot always yields the same values.
func FromHistogram(hs metrics.HistogramSnapshot) Percentiles {
	p := Percentiles{Count: hs.Count, MinNs: hs.MinNs, MaxNs: hs.MaxNs}
	if hs.Count == 0 {
		return p
	}
	p.MeanNs = float64(hs.SumNs) / float64(hs.Count)
	if int64(len(hs.SamplesNs)) == hs.Count && !hs.SampleOverflow {
		sorted := append([]int64(nil), hs.SamplesNs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p.Exact = true
		p.P50 = quantileExact(sorted, 0.50)
		p.P95 = quantileExact(sorted, 0.95)
		p.P99 = quantileExact(sorted, 0.99)
		p.P999 = quantileExact(sorted, 0.999)
		return p
	}
	p.P50 = quantileBuckets(hs, 0.50)
	p.P95 = quantileBuckets(hs, 0.95)
	p.P99 = quantileBuckets(hs, 0.99)
	p.P999 = quantileBuckets(hs, 0.999)
	return p
}

// quantileExact is the standard linear-interpolation quantile over a sorted
// sample set (the definition numpy calls "linear"): rank q·(n−1) split into
// its integer and fractional parts.
func quantileExact(sorted []int64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return float64(sorted[0])
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return float64(sorted[n-1])
	}
	frac := pos - float64(i)
	return float64(sorted[i]) + frac*(float64(sorted[i+1])-float64(sorted[i]))
}

// quantileBuckets interpolates the q-quantile from fixed bucket counts: find
// the bucket holding observation rank q·n, assume observations spread
// uniformly inside it, and interpolate between the bucket's bounds. The
// first bucket's lower bound is the observed minimum and the overflow
// bucket's upper bound is the observed maximum, so the estimate never leaves
// the [min, max] envelope.
func quantileBuckets(hs metrics.HistogramSnapshot, q float64) float64 {
	n := hs.Count
	if n == 0 {
		return 0
	}
	target := q * float64(n)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range hs.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := float64(hs.MinNs)
			if i > 0 {
				lo = float64(hs.BoundsNs[i-1])
			}
			hi := float64(hs.MaxNs)
			if i < len(hs.BoundsNs) {
				hi = float64(hs.BoundsNs[i])
			}
			if lo < float64(hs.MinNs) {
				lo = float64(hs.MinNs)
			}
			if hi > float64(hs.MaxNs) {
				hi = float64(hs.MaxNs)
			}
			if hi <= lo {
				return lo
			}
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return float64(hs.MaxNs)
}

// OpLatency is one operation class (one named histogram) with its extracted
// percentiles.
type OpLatency struct {
	Name string `json:"name"`
	Percentiles
}

// LatencySummary extracts percentiles for every histogram in a snapshot,
// sorted by name — each histogram is one operation class (per-operator
// "op.<name>.ns", pushdown "push.*.ns", paging "fault.remote.ns", recovery
// "pool.stall.ns", wire "net.*.ns", device "ssd.*.ns"). Nil-safe: a nil
// snapshot yields nil.
func LatencySummary(s *metrics.Snapshot) []OpLatency {
	if s == nil || len(s.Histograms) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]OpLatency, 0, len(names))
	for _, name := range names {
		hs := s.Histograms[name]
		if hs.Count == 0 {
			continue
		}
		out = append(out, OpLatency{Name: name, Percentiles: FromHistogram(hs)})
	}
	return out
}
