// Package obs is the analysis layer on top of the simulator's passive
// observability substrate (internal/trace, internal/metrics). Where those
// packages record, this one answers: it folds span trees into a virtual-time
// profile (self/total time per span-kind path, exported as
// flamegraph-compatible folded stacks), extracts latency percentiles from
// histograms (interpolated, or exact for bounded sample counts), and runs a
// forensic flight recorder that snapshots the trace window and a counter
// delta whenever the simulation degrades (rollback, shed, breaker trip,
// shard outage, local fallback).
//
// Everything here shares the substrate's contract: analysis is strictly
// passive (no method advances a virtual clock), every handle is nil-safe,
// and all iteration orders are deterministic, so same-seed runs produce
// byte-identical artifacts.
package obs

import (
	"fmt"
	"io"
	"sort"

	"teleport/internal/trace"
)

// PathStat aggregates every span that occurred at one span-kind path — the
// thread name followed by the kind chain from root span to the span itself,
// ";"-joined, the folded-stack frame format flamegraph tooling consumes.
type PathStat struct {
	Path    string `json:"path"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"` // summed durations (children included)
	SelfNs  int64  `json:"self_ns"`  // summed durations minus child time
}

// Profile is a run's virtual-time profile: where the time went, by span
// path. Paths are sorted, so iterating (and marshalling) is deterministic.
type Profile struct {
	Paths []PathStat `json:"paths"`

	// SkippedSpans counts spans left out of the profile because one of
	// their endpoints was missing from the retained window (open at
	// capture, or lost to ring wraparound).
	SkippedSpans int `json:"skipped_spans,omitempty"`

	// DroppedEvents is the ring's wraparound loss at capture time; non-zero
	// means the profile covers a suffix of the run, not all of it.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// maxPathDepth bounds the ancestor walk; real span trees are ~4 deep, so
// hitting the bound means a malformed parent chain, which we truncate
// rather than loop on.
const maxPathDepth = 64

// BuildProfile folds a retained event window (oldest-first, as returned by
// Ring.Events) into a Profile. Only complete spans — both endpoints
// retained — contribute; dropped is the ring's Dropped() at capture, kept on
// the profile so consumers can tell a truncated profile from a full one.
func BuildProfile(events []trace.Event, dropped uint64) *Profile {
	spans := trace.PairSpans(events)
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}

	// Child time per span, so self = duration − childNs.
	childNs := make([]int64, len(spans))
	for _, s := range spans {
		if !s.Complete || s.Parent == 0 {
			continue
		}
		if j, ok := byID[s.Parent]; ok && spans[j].Complete {
			childNs[j] += int64(s.Duration())
		}
	}

	p := &Profile{DroppedEvents: dropped}
	agg := make(map[string]*PathStat)
	for i, s := range spans {
		if !s.Complete {
			p.SkippedSpans++
			continue
		}
		path := pathOf(spans, byID, i)
		ps := agg[path]
		if ps == nil {
			ps = &PathStat{Path: path}
			agg[path] = ps
		}
		dur := int64(s.Duration())
		ps.Count++
		ps.TotalNs += dur
		if self := dur - childNs[i]; self > 0 {
			ps.SelfNs += self
		}
	}

	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	p.Paths = make([]PathStat, len(keys))
	for i, k := range keys {
		p.Paths[i] = *agg[k]
	}
	return p
}

// pathOf renders span i's folded-stack frame: thread name, then the kind
// chain from the outermost retained ancestor down to the span itself. A
// parent lost to ring wraparound truncates the chain at the oldest ancestor
// still retained.
func pathOf(spans []trace.Span, byID map[uint64]int, i int) string {
	var kinds []string
	for depth := 0; depth < maxPathDepth; depth++ {
		kinds = append(kinds, spans[i].Kind.String())
		if spans[i].Parent == 0 {
			break
		}
		j, ok := byID[spans[i].Parent]
		if !ok || j == i {
			break
		}
		i = j
	}
	// kinds is innermost-first; fold root-first under the thread name.
	frames := make([]string, 0, len(kinds)+1)
	frames = append(frames, spans[i].Who)
	for k := len(kinds) - 1; k >= 0; k-- {
		frames = append(frames, kinds[k])
	}
	return joinFrames(frames)
}

// joinFrames joins folded-stack frames with ";", the separator flamegraph.pl
// and speedscope expect.
func joinFrames(frames []string) string {
	out := ""
	for i, f := range frames {
		if i > 0 {
			out += ";"
		}
		out += f
	}
	return out
}

// WriteFolded writes the profile as folded stacks — one "path selfNs" line
// per span path, sorted — the input format of flamegraph.pl
// (--countname=ns) and speedscope. Paths with zero self time are kept: a
// pure-dispatch frame is information, not noise.
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	for _, ps := range p.Paths {
		if _, err := fmt.Fprintf(w, "%s %d\n", ps.Path, ps.SelfNs); err != nil {
			return err
		}
	}
	return nil
}

// TopK returns the k hottest paths by self time (ties broken by path, so
// the cut is deterministic). k <= 0 or beyond the path count returns all.
func (p *Profile) TopK(k int) []PathStat {
	if p == nil {
		return nil
	}
	out := append([]PathStat(nil), p.Paths...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Path < out[j].Path
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// TotalSelfNs sums self time across every path — the profile's denominator
// for share-of-run columns.
func (p *Profile) TotalSelfNs() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for _, ps := range p.Paths {
		n += ps.SelfNs
	}
	return n
}
