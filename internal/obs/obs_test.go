package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"teleport/internal/metrics"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// buildSpans records main→[child×2, other] style nesting:
//
//	main: push (40ns total) containing exec (10ns) and exec (5ns)
func buildSpans(t *testing.T) (*trace.Ring, *trace.Tracer, *sim.Thread) {
	t.Helper()
	ring := trace.New(1 << 10)
	tr := trace.NewTracer(ring)
	th := sim.NewThread("main")
	return ring, tr, th
}

func TestBuildProfileSelfTotal(t *testing.T) {
	ring, tr, th := buildSpans(t)
	outer := tr.Begin(th, trace.KindPushdown, 0, 1)
	th.Advance(10)
	inner := tr.Begin(th, trace.KindPushExec, 0, 1)
	th.Advance(10)
	tr.End(th, inner)
	th.Advance(5)
	inner2 := tr.Begin(th, trace.KindPushExec, 0, 2)
	th.Advance(5)
	tr.End(th, inner2)
	th.Advance(10)
	tr.End(th, outer)

	p := BuildProfile(ring.Events(), ring.Dropped())
	if p.DroppedEvents != 0 || p.SkippedSpans != 0 {
		t.Fatalf("unexpected truncation: %+v", p)
	}
	want := map[string]struct{ count, total, self int64 }{
		"main;pushdown":           {1, 40, 25},
		"main;pushdown;push-exec": {2, 15, 15},
	}
	if len(p.Paths) != len(want) {
		t.Fatalf("paths = %+v", p.Paths)
	}
	for _, ps := range p.Paths {
		w, ok := want[ps.Path]
		if !ok {
			t.Fatalf("unexpected path %q", ps.Path)
		}
		if ps.Count != w.count || ps.TotalNs != w.total || ps.SelfNs != w.self {
			t.Fatalf("path %q = count %d total %d self %d, want %+v",
				ps.Path, ps.Count, ps.TotalNs, ps.SelfNs, w)
		}
	}

	// Folded export: sorted, balanced, "path value" per line.
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded lines: %q", lines)
	}
	for _, l := range lines {
		if parts := strings.Fields(l); len(parts) != 2 {
			t.Fatalf("malformed folded line %q", l)
		}
	}
	if !strings.HasPrefix(lines[0], "main;pushdown ") {
		t.Fatalf("folded not sorted: %q", lines)
	}
}

func TestBuildProfileSkipsIncompleteAndKeepsDropped(t *testing.T) {
	ring, tr, th := buildSpans(t)
	open := tr.Begin(th, trace.KindRPC, 0, 0)
	th.Advance(10)
	done := tr.Begin(th, trace.KindSSDRead, 0, 0)
	th.Advance(10)
	tr.End(th, done)
	_ = open // never ended: must be skipped, not counted with zero duration

	p := BuildProfile(ring.Events(), 7)
	if p.DroppedEvents != 7 {
		t.Fatalf("dropped = %d", p.DroppedEvents)
	}
	if p.SkippedSpans != 1 {
		t.Fatalf("skipped = %d (want the still-open rpc span)", p.SkippedSpans)
	}
	if len(p.Paths) != 1 || p.Paths[0].Path != "main;rpc;ssd-read" {
		t.Fatalf("paths = %+v", p.Paths)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	p := &Profile{Paths: []PathStat{
		{Path: "b", SelfNs: 10},
		{Path: "a", SelfNs: 10},
		{Path: "c", SelfNs: 30},
	}}
	top := p.TopK(2)
	if len(top) != 2 || top[0].Path != "c" || top[1].Path != "a" {
		t.Fatalf("topK = %+v", top)
	}
	if got := p.TopK(0); len(got) != 3 {
		t.Fatalf("topK(0) should return all, got %d", len(got))
	}
}

func TestNilProfileHandles(t *testing.T) {
	var p *Profile
	if err := p.WriteFolded(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if p.TopK(3) != nil || p.TotalSelfNs() != 0 {
		t.Fatal("nil profile must be inert")
	}
}

func observeAll(h *metrics.Histogram, vals ...int64) {
	for _, v := range vals {
		h.Observe(sim.Time(v))
	}
}

func TestPercentilesExactMode(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.SetSampleCap(100)
	h := reg.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		h.Observe(sim.Time(i * 1000))
	}
	hs := reg.Snapshot().Histograms["lat"]
	p := FromHistogram(hs)
	if !p.Exact {
		t.Fatal("expected exact mode with all samples retained")
	}
	if p.Count != 100 || p.MinNs != 1000 || p.MaxNs != 100000 {
		t.Fatalf("envelope: %+v", p)
	}
	// Linear interpolation over 1k..100k: p50 = 50.5k, p99 = 99.01k.
	if math.Abs(p.P50-50500) > 1e-9 || math.Abs(p.P99-99010) > 1e-9 {
		t.Fatalf("p50=%v p99=%v", p.P50, p.P99)
	}
	if p.P999 > float64(p.MaxNs) || p.P50 < float64(p.MinNs) {
		t.Fatalf("quantiles left the [min,max] envelope: %+v", p)
	}
}

func TestPercentilesInterpolatedWithinBucketBounds(t *testing.T) {
	reg := metrics.NewRegistry() // no sample cap: interpolation mode
	h := reg.Histogram("lat")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(sim.Time(i * 100)) // 100ns..100µs, spread across buckets
	}
	hs := reg.Snapshot().Histograms["lat"]
	p := FromHistogram(hs)
	if p.Exact {
		t.Fatal("should be interpolated without samples")
	}
	// The true p50 is ~50µs; the containing bucket is (20µs, 50µs], so the
	// estimate must stay within it (interpolation error ≤ bucket width).
	if p.P50 < 20000 || p.P50 > 50000 {
		t.Fatalf("p50=%v outside its bucket", p.P50)
	}
	if p.P999 > float64(p.MaxNs)+1e-9 {
		t.Fatalf("p999=%v above max %d", p.P999, p.MaxNs)
	}
	// Monotone in q.
	if !(p.P50 <= p.P95 && p.P95 <= p.P99 && p.P99 <= p.P999) {
		t.Fatalf("quantiles not monotone: %+v", p)
	}
}

func TestPercentilesSampleOverflowFallsBack(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.SetSampleCap(10)
	h := reg.Histogram("lat")
	observeAll(h, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100)
	hs := reg.Snapshot().Histograms["lat"]
	if !hs.SampleOverflow {
		t.Fatal("expected sample overflow at cap 10 with 11 observations")
	}
	if p := FromHistogram(hs); p.Exact {
		t.Fatal("overflowed samples must fall back to interpolation")
	}
}

func TestPercentilesEdgeCases(t *testing.T) {
	if p := FromHistogram(metrics.HistogramSnapshot{}); p.Count != 0 || p.P999 != 0 {
		t.Fatalf("empty: %+v", p)
	}
	reg := metrics.NewRegistry()
	reg.SetSampleCap(4)
	h := reg.Histogram("one")
	h.Observe(sim.Time(4242))
	p := FromHistogram(reg.Snapshot().Histograms["one"])
	if !p.Exact || p.P50 != 4242 || p.P999 != 4242 {
		t.Fatalf("single sample: %+v", p)
	}
}

func TestLatencySummarySortedAndNilSafe(t *testing.T) {
	if LatencySummary(nil) != nil {
		t.Fatal("nil snapshot")
	}
	reg := metrics.NewRegistry()
	observeAll(reg.Histogram("op.b.ns"), 10)
	observeAll(reg.Histogram("op.a.ns"), 20)
	reg.Histogram("op.empty.ns") // zero observations: omitted
	sum := LatencySummary(reg.Snapshot())
	if len(sum) != 2 || sum[0].Name != "op.a.ns" || sum[1].Name != "op.b.ns" {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRecorderTriggersOnDegradeEvents(t *testing.T) {
	ring := trace.New(8)
	counters := map[string]int64{"push.shed": 0}
	rec := NewRecorder(ring, 4, func() map[string]int64 {
		out := make(map[string]int64, len(counters))
		for k, v := range counters {
			out[k] = v
		}
		return out
	})
	ring.SetObserver(rec.Observe)

	th := sim.NewThread("w")
	ring.Add(trace.Event{At: th.Now(), Kind: trace.KindRemoteFault, Who: "w"})
	if rec.Total() != 0 {
		t.Fatal("non-degrade event tripped the recorder")
	}
	counters["push.shed"] = 1
	ring.Add(trace.Event{At: 100, Kind: trace.KindShed, Arg: 7, Who: "w"})
	if rec.Total() != 1 {
		t.Fatal("shed event did not trip the recorder")
	}
	incs := rec.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d", len(incs))
	}
	inc := incs[0]
	if inc.Kind != "shed" || inc.Seq != 1 || inc.AtNs != 100 || inc.Arg != 7 {
		t.Fatalf("incident = %+v", inc)
	}
	if inc.Delta["push.shed"] != 1 {
		t.Fatalf("delta = %+v", inc.Delta)
	}
	// The window includes the trigger itself as its last event.
	if n := len(inc.Events); n != 2 || inc.Events[n-1].Kind != "shed" {
		t.Fatalf("events = %+v", inc.Events)
	}

	// Second incident: delta is relative to the first, not the run start.
	counters["push.shed"] = 3
	ring.Add(trace.Event{At: 200, Kind: trace.KindPushRollback, Arg: 2, Who: "w"})
	incs = rec.Incidents()
	if len(incs) != 2 || incs[1].Delta["push.shed"] != 2 {
		t.Fatalf("second delta = %+v", incs[1].Delta)
	}

	// A degrade-class span must trigger once (begin), not twice.
	ring.Add(trace.Event{At: 300, Kind: trace.KindFallbackLocal, Phase: trace.PhaseBegin, Span: 9, Who: "w"})
	ring.Add(trace.Event{At: 310, Kind: trace.KindFallbackLocal, Phase: trace.PhaseEnd, Span: 9, Who: "w"})
	if rec.Total() != 3 {
		t.Fatalf("span endpoints mis-triggered: total=%d", rec.Total())
	}
}

func TestRecorderWindowBoundAndJSONL(t *testing.T) {
	ring := trace.New(64)
	rec := NewRecorder(ring, 3, nil)
	ring.SetObserver(rec.Observe)
	for i := 0; i < 10; i++ {
		ring.Add(trace.Event{At: sim.Time(i), Kind: trace.KindRemoteFault, Who: "w"})
	}
	ring.Add(trace.Event{At: 99, Kind: trace.KindBreakerOpen, Who: "w"})
	incs := rec.Incidents()
	if len(incs) != 1 || len(incs[0].Events) != 3 {
		t.Fatalf("window not bounded: %+v", incs)
	}

	var a, b bytes.Buffer
	if err := rec.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL not deterministic")
	}
	for _, line := range strings.Split(strings.TrimSpace(a.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

func TestRecorderKeepsMostRecentWhenFull(t *testing.T) {
	ring := trace.New(8)
	rec := NewRecorder(ring, 2, nil)
	rec.maxKept = 3
	ring.SetObserver(rec.Observe)
	for i := 0; i < 5; i++ {
		ring.Add(trace.Event{At: sim.Time(i), Kind: trace.KindShed, Arg: int64(i), Who: "w"})
	}
	if rec.Total() != 5 {
		t.Fatalf("total = %d", rec.Total())
	}
	incs := rec.Incidents()
	if len(incs) != 3 || incs[0].Seq != 3 || incs[2].Seq != 5 {
		t.Fatalf("retained = %+v", incs)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var rec *Recorder
	rec.Observe(trace.Event{Kind: trace.KindShed})
	if rec.Incidents() != nil || rec.Total() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if err := rec.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
