package obs

import (
	"encoding/json"
	"io"

	"teleport/internal/trace"
)

// DegradeEvent reports whether k is a degrade-class event — one of the
// moments a cluster operator asks "what happened right before this?": an
// undo-journal rollback, an admission-control shed, a circuit-breaker trip,
// a replica-set outage, or a pushdown degraded to compute-side execution.
func DegradeEvent(k trace.Kind) bool {
	switch k {
	case trace.KindPushRollback, trace.KindShed, trace.KindBreakerOpen,
		trace.KindShardDown, trace.KindFallbackLocal:
		return true
	}
	return false
}

// IncidentEvent is one trace event inside an incident record, flattened to
// strings so the JSONL is self-describing without the trace package's enums.
type IncidentEvent struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Phase  string `json:"phase"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Page   uint64 `json:"page,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
	Who    string `json:"who"`
}

// Incident is one flight-recorder record: the degrade-class event that
// tripped it, the last-N trace events leading up to (and including) it, and
// the named-counter delta since the previous incident (or since the run
// started, for the first).
type Incident struct {
	Seq  int    `json:"seq"` // 1-based trigger ordinal across the run
	AtNs int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Who  string `json:"who"`
	Page uint64 `json:"page,omitempty"`
	Arg  int64  `json:"arg,omitempty"`

	// Delta holds every named counter that moved since the previous
	// incident. encoding/json sorts the keys, so marshalled incidents are
	// deterministic.
	Delta map[string]int64 `json:"delta,omitempty"`

	Events []IncidentEvent `json:"events"`
}

// DefaultIncidentEvents is the trace-window size per incident when the
// caller does not choose one.
const DefaultIncidentEvents = 64

// DefaultMaxIncidents bounds retained incidents; like a hardware flight
// recorder the newest overwrite the oldest, and Total() keeps the true
// trigger count.
const DefaultMaxIncidents = 256

// Recorder is the forensic flight recorder. Install it on a trace ring with
// ring.SetObserver(rec.Observe); every degrade-class event then snapshots
// the ring's tail and the counter delta. A nil Recorder is inert, matching
// the substrate's nil-safe contract.
type Recorder struct {
	ring     *trace.Ring
	lastN    int
	maxKept  int
	counters func() map[string]int64

	prev      map[string]int64
	incidents []Incident
	total     int
}

// NewRecorder builds a flight recorder over ring. lastN bounds the trace
// window per incident (<=0 uses DefaultIncidentEvents); counters, which may
// be nil, supplies the named-counter snapshot diffed into each incident's
// delta.
func NewRecorder(ring *trace.Ring, lastN int, counters func() map[string]int64) *Recorder {
	if lastN <= 0 {
		lastN = DefaultIncidentEvents
	}
	return &Recorder{
		ring:     ring,
		lastN:    lastN,
		maxKept:  DefaultMaxIncidents,
		counters: counters,
	}
}

// Observe is the ring-observer hook: called for every trace event, it
// records an incident when the event is degrade-class. Spans trigger on
// their begin endpoint only, so one degradation is one incident. Passive by
// construction — it reads the ring and counters but never advances a clock.
func (rc *Recorder) Observe(e trace.Event) {
	if rc == nil || e.Phase == trace.PhaseEnd || !DegradeEvent(e.Kind) {
		return
	}
	rc.total++
	inc := Incident{
		Seq:  rc.total,
		AtNs: int64(e.At),
		Kind: e.Kind.String(),
		Who:  e.Who,
		Page: e.Page,
		Arg:  e.Arg,
	}
	if rc.counters != nil {
		cur := rc.counters()
		inc.Delta = counterDelta(rc.prev, cur)
		rc.prev = cur
	}
	events := rc.ring.Events()
	if len(events) > rc.lastN {
		events = events[len(events)-rc.lastN:]
	}
	inc.Events = make([]IncidentEvent, len(events))
	for i, ev := range events {
		inc.Events[i] = IncidentEvent{
			AtNs: int64(ev.At), Kind: ev.Kind.String(), Phase: ev.Phase.String(),
			Span: ev.Span, Parent: ev.Parent, Page: ev.Page, Arg: ev.Arg, Who: ev.Who,
		}
	}
	if len(rc.incidents) >= rc.maxKept {
		// Flight-recorder semantics: keep the most recent window.
		copy(rc.incidents, rc.incidents[1:])
		rc.incidents = rc.incidents[:len(rc.incidents)-1]
	}
	rc.incidents = append(rc.incidents, inc)
}

// counterDelta returns the keys of cur that changed relative to prev (all of
// cur when prev is nil and the value is non-zero). Map-to-map, so iteration
// order cannot leak; marshalling sorts the keys.
func counterDelta(prev, cur map[string]int64) map[string]int64 {
	if len(cur) == 0 {
		return nil
	}
	delta := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			delta[k] = d
		}
	}
	if len(delta) == 0 {
		return nil
	}
	return delta
}

// Incidents returns the retained incident records, oldest first.
func (rc *Recorder) Incidents() []Incident {
	if rc == nil {
		return nil
	}
	return append([]Incident(nil), rc.incidents...)
}

// Total returns how many incidents ever triggered (retained or not).
func (rc *Recorder) Total() int {
	if rc == nil {
		return 0
	}
	return rc.total
}

// WriteJSONL writes every retained incident as one compact JSON object per
// line — the dump format behind -incident-out. Byte-identical across
// same-seed runs: field order is fixed and map keys marshal sorted.
func (rc *Recorder) WriteJSONL(w io.Writer) error {
	if rc == nil {
		return nil
	}
	return WriteIncidentsJSONL(w, rc.incidents)
}

// WriteIncidentsJSONL writes incident records as JSONL (one object per
// line).
func WriteIncidentsJSONL(w io.Writer, incidents []Incident) error {
	for i := range incidents {
		b, err := json.Marshal(&incidents[i])
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
