package fault

import (
	"testing"

	"teleport/internal/sim"
)

// Boundary semantics of the window algebra: every schedule is a list of
// half-open [Down, Up) windows, zero-length windows are inert, and
// UnionDowntime merges overlapping and exactly-adjacent windows from any mix
// of schedules (shards, links, the controller) without double counting.

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

func TestUnionDowntimeBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		ws      []Window
		through sim.Time
		want    sim.Time
	}{
		{"empty", nil, us(100), 0},
		{"disjoint", []Window{{us(10), us(20)}, {us(40), us(50)}}, us(100), us(20)},
		{"overlapping across shards", []Window{{us(10), us(30)}, {us(20), us(40)}}, us(100), us(30)},
		{"exactly adjacent merge", []Window{{us(10), us(20)}, {us(20), us(30)}}, us(100), us(20)},
		{"contained", []Window{{us(10), us(50)}, {us(20), us(30)}}, us(100), us(40)},
		{"identical twice", []Window{{us(10), us(20)}, {us(10), us(20)}}, us(100), us(10)},
		{"zero-length inert", []Window{{us(10), us(10)}}, us(100), 0},
		{"zero-length inside a window", []Window{{us(10), us(30)}, {us(20), us(20)}}, us(100), us(20)},
		{"zero-length bridges nothing", []Window{{us(10), us(20)}, {us(20), us(20)}, {us(25), us(30)}}, us(100), us(15)},
		{"clipped at through", []Window{{us(10), us(50)}}, us(30), us(20)},
		{"entirely past through", []Window{{us(50), us(60)}}, us(30), 0},
		{"unsorted input", []Window{{us(40), us(50)}, {us(10), us(20)}, {us(15), us(45)}}, us(100), us(40)},
	}
	for _, tc := range cases {
		if got := UnionDowntime(tc.ws, tc.through); got != tc.want {
			t.Errorf("%s: UnionDowntime = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The input slice is not modified (UnionDowntime sorts a copy).
	ws := []Window{{us(40), us(50)}, {us(10), us(20)}}
	UnionDowntime(ws, us(100))
	if ws[0].Down != us(40) || ws[1].Down != us(10) {
		t.Error("UnionDowntime reordered its input slice")
	}
}

func TestLinkWindowsHalfOpenBoundaries(t *testing.T) {
	p := NewPlan(Profile{Name: "t"}, 0)
	p.SetLinkWindows(0, 1,
		Window{Down: us(10), Up: us(20)},
		Window{Down: us(20), Up: us(30)}, // exactly adjacent: one continuous outage
		Window{Down: us(40), Up: us(40)}, // zero-length: inert
	)
	cases := []struct {
		at   sim.Time
		down bool
		rec  sim.Time
	}{
		{0, false, 0},
		{us(10) - 1, false, 0},
		{us(10), true, us(20)},
		{us(20) - 1, true, us(20)},
		{us(20), true, us(30)}, // adjacency: the second window covers Up of the first
		{us(30) - 1, true, us(30)},
		{us(30), false, 0}, // half-open: up at exactly Up
		{us(40), false, 0}, // zero-length window covers no instant
		{us(40) + 1, false, 0},
	}
	for _, tc := range cases {
		rec, down := p.LinkDownAt(0, 1, tc.at)
		if down != tc.down || rec != tc.rec {
			t.Fatalf("LinkDownAt(0,1,%v) = (%v, %v), want (%v, %v)", tc.at, rec, down, tc.rec, tc.down)
		}
	}
	// Directions are independent: the reverse link never went down.
	if _, down := p.LinkDownAt(1, 0, us(15)); down {
		t.Fatal("pinning 0→1 windows partitioned the 1→0 direction")
	}
	// Degenerate endpoints are never partitioned.
	if _, down := p.LinkDownAt(1, 1, us(15)); down {
		t.Fatal("self-link reported down")
	}
	if got := p.Counters().LinkWindows; got != 3 {
		t.Fatalf("LinkWindows = %d, want 3", got)
	}
}

func TestSetLinkWindowsRejectsOverlap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping link windows did not panic")
		}
	}()
	p := NewPlan(Profile{Name: "t"}, 0)
	p.SetLinkWindows(EndpointCompute, 0,
		Window{Down: us(10), Up: us(30)},
		Window{Down: us(20), Up: us(40)},
	)
}

// LinkWindowsThrough returns exactly the windows LinkDownAt reports down
// for: pinned windows beginning before the horizon, and — when the endpoints
// sit on opposite sides of the split-brain cut — the split windows too.
func TestLinkWindowsThroughIncludesSplit(t *testing.T) {
	p := NewPlan(Profile{Name: "split", SplitMeanUp: sim.Millisecond, SplitMeanDown: 100 * sim.Microsecond}, 11)
	const horizon = 20 * sim.Millisecond
	// Compute (side 0) ↔ shard 1 (side 1) crosses the cut.
	cross := p.LinkWindowsThrough(EndpointCompute, 1, horizon)
	if len(cross) == 0 {
		t.Fatal("split profile generated no windows across the cut")
	}
	for _, w := range cross {
		if w.Down >= horizon {
			t.Fatalf("window [%v,%v) begins past the horizon %v", w.Down, w.Up, horizon)
		}
		mid := w.Down + (w.Up-w.Down)/2
		if _, down := p.LinkDownAt(EndpointCompute, 1, mid); !down {
			t.Fatalf("LinkDownAt up at %v inside reported window [%v,%v)", mid, w.Down, w.Up)
		}
	}
	// Shards 0 and 2 share a side: the cut never severs them.
	if same := p.LinkWindowsThrough(0, 2, horizon); len(same) != 0 {
		t.Fatalf("same-side link got %d split windows", len(same))
	}
	// Both directions of a cut-crossing link see the identical correlated
	// schedule.
	rev := p.LinkWindowsThrough(1, EndpointCompute, horizon)
	if len(rev) != len(cross) {
		t.Fatalf("cut windows differ by direction: %d vs %d", len(rev), len(cross))
	}
	for i := range rev {
		if rev[i] != cross[i] {
			t.Fatalf("cut window %d differs by direction: %+v vs %+v", i, rev[i], cross[i])
		}
	}
}

// WindowsThrough-style horizons are exclusive of later windows but keep ones
// that straddle the horizon; TotalDowntime then clips at the horizon. The
// same algebra backs the shard and link variants.
func TestShardWindowsThroughBoundaries(t *testing.T) {
	p := NewPlan(Profile{Name: "t"}, 0)
	p.SetShardWindows(2,
		Window{Down: us(10), Up: us(20)},
		Window{Down: us(30), Up: us(90)},  // straddles the horizon below
		Window{Down: us(95), Up: us(100)}, // begins past it
	)
	ws := p.ShardWindowsThrough(2, us(50))
	if len(ws) != 2 {
		t.Fatalf("ShardWindowsThrough returned %d windows, want 2 (past-horizon window excluded)", len(ws))
	}
	if got := TotalDowntime(ws, us(50)); got != us(30) {
		t.Fatalf("TotalDowntime = %v, want %v (10 full + 20 clipped)", got, us(30))
	}
	if got := UnionDowntime(ws, us(50)); got != us(30) {
		t.Fatalf("UnionDowntime = %v, want %v", got, us(30))
	}
}
