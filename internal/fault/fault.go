// Package fault is the simulator's deterministic chaos layer: a seeded
// schedule of transient network faults (message loss, corruption, latency
// spikes), memory-controller crash/restart epochs, pushdown-context crashes,
// and SSD read errors. Every decision is drawn from sim.RNG streams derived
// from one seed and every induced delay is charged to virtual time, so a
// chaos run is exactly as reproducible as a fault-free one: the same seed
// always yields the same faults, the same recovery actions, and the same
// virtual-time totals.
//
// The plan is consulted from three layers: internal/netmodel retransmits
// dropped/corrupted messages with capped exponential backoff, internal/storage
// re-reads failed SSD pages, and internal/core observes the crash epochs as a
// heartbeat and surfaces ErrMemoryPoolDown / ErrContextCrashed to its
// recovery policy. Because faults only ever add virtual time or force a
// retry/fallback that re-executes work exactly once, workload answers are
// identical to the fault-free run by construction.
package fault

import (
	"fmt"
	"sort"

	"teleport/internal/sim"
)

// MaxClasses bounds the per-traffic-class fault tables. It must be at least
// netmodel's class count; fault does not import netmodel (netmodel imports
// fault's consumer layers), so classes are plain ints here.
const MaxClasses = 8

// NetFaults is the transient-fault behaviour of one traffic class.
type NetFaults struct {
	// DropProb is the probability one message (or RPC leg) is lost in
	// flight and must be retransmitted after a timeout.
	DropProb float64
	// CorruptProb is the probability a message arrives but fails its
	// integrity check — same recovery as a drop.
	CorruptProb float64
	// SpikeProb is the probability a message is delayed by a congestion
	// spike of Uniform[SpikeMinNs, SpikeMaxNs] without needing a retry.
	SpikeProb  float64
	SpikeMinNs float64
	SpikeMaxNs float64
}

// Profile is a named fault mix. The zero value injects nothing.
type Profile struct {
	Name        string
	Description string

	// Net holds per-class transient network faults, indexed by
	// int(netmodel.Class).
	Net [MaxClasses]NetFaults

	// PoolMeanUp and PoolMeanDown drive the memory-controller crash
	// schedule: uptime between crashes is Uniform[½·MeanUp, 1½·MeanUp],
	// each outage lasts Uniform[½·MeanDown, 1½·MeanDown]. MeanUp == 0
	// disables crashes.
	PoolMeanUp   sim.Time
	PoolMeanDown sim.Time

	// ShardMeanUp and ShardMeanDown drive the per-shard crash schedules of
	// a sharded memory pool (ddc.Config.PoolShards > 1): each shard gets
	// its own independent schedule with these means, derived from its own
	// RNG stream so the number of shards queried never shifts the
	// whole-controller schedule above. ShardMeanUp == 0 disables per-shard
	// crashes.
	ShardMeanUp   sim.Time
	ShardMeanDown sim.Time

	// LinkMeanUp and LinkMeanDown drive per-directed-link partition
	// schedules between pool endpoints (the compute node and each shard):
	// each ordered (from, to) pair gets its own independent outage
	// schedule with these means, derived from its own RNG stream so
	// querying links never shifts any crash schedule above — and the two
	// directions of a pair fail independently, so partitions are
	// asymmetric (A can reach B while B cannot reach A). LinkMeanUp == 0
	// disables per-link partitions.
	LinkMeanUp   sim.Time
	LinkMeanDown sim.Time

	// SplitMeanUp and SplitMeanDown drive one correlated split-brain
	// schedule: during each split window, every link whose endpoints sit
	// on opposite sides of a fixed parity cut (compute with the
	// even-numbered shards, odd-numbered shards on the far side) is down
	// in both directions. SplitMeanUp == 0 disables splits.
	SplitMeanUp   sim.Time
	SplitMeanDown sim.Time

	// CtxCrashProb is the probability one pushdown's temporary user
	// context crashes before the pushed function commits.
	CtxCrashProb float64

	// CtxCrashMidProb is the probability one pushdown's temporary user
	// context crashes mid-execution — after the pushed function has begun
	// dirtying pages in the memory pool. The runtime rolls the call's undo
	// journal back before reporting the crash, so retries still observe
	// pristine state (see internal/core and DESIGN.md §8).
	CtxCrashMidProb float64

	// SSDReadErrProb is the probability one SSD page read fails and is
	// retried by the device layer.
	SSDReadErrProb float64
}

// SetNetAll applies nf to every traffic class.
func (p *Profile) SetNetAll(nf NetFaults) {
	for i := range p.Net {
		p.Net[i] = nf
	}
}

// Counters tallies every injected fault, by kind. Two runs with the same
// seed and workload must report identical counters.
type Counters struct {
	Drops         int64 // messages lost in flight
	Corruptions   int64 // messages failing integrity checks
	Spikes        int64 // latency spikes applied
	CtxCrashes    int64 // pushdown context crashes injected (pre-commit)
	CtxMidCrashes int64 // mid-execution context crashes armed
	SSDReadErrors int64 // SSD read errors injected
	PoolWindows   int64 // whole-controller crash windows generated so far
	ShardWindows  int64 // per-shard crash windows generated so far (all shards)
	LinkWindows   int64 // per-directed-link partition windows generated so far (all links)
	SplitWindows  int64 // correlated split-brain windows generated so far
}

// String summarises the counters.
func (c Counters) String() string {
	return fmt.Sprintf("drops=%d corrupt=%d spikes=%d ctx-crashes=%d ctx-mid-crashes=%d ssd-errs=%d crash-windows=%d shard-windows=%d link-windows=%d split-windows=%d",
		c.Drops, c.Corruptions, c.Spikes, c.CtxCrashes, c.CtxMidCrashes, c.SSDReadErrors, c.PoolWindows, c.ShardWindows, c.LinkWindows, c.SplitWindows)
}

// Map flattens the counters into named values, for merging into a run-wide
// counter snapshot (the flight recorder diffs consecutive snapshots into the
// per-incident delta). Keys are fixed, so marshalled output is deterministic.
func (c Counters) Map() map[string]int64 {
	return map[string]int64{
		"fault.drops":         c.Drops,
		"fault.corruptions":   c.Corruptions,
		"fault.spikes":        c.Spikes,
		"fault.ctx-crashes":   c.CtxCrashes,
		"fault.ctx-mid-crash": c.CtxMidCrashes,
		"fault.ssd-read-errs": c.SSDReadErrors,
		"fault.pool-windows":  c.PoolWindows,
		"fault.shard-windows": c.ShardWindows,
		"fault.link-windows":  c.LinkWindows,
		"fault.split-windows": c.SplitWindows,
	}
}

// window is one memory-controller outage: down at [Down, Up).
type window struct {
	Down, Up sim.Time
}

// Window is one explicit memory-controller outage for NewWindowPlan: the
// controller is down at every instant in [Down, Up) and back up at exactly
// Up. A zero-length window (Down == Up) is inert: no instant falls inside
// the half-open interval.
type Window struct {
	Down, Up sim.Time
}

// Plan is an instantiated fault schedule. A nil *Plan is inert: every method
// reports "no fault", so call sites need no guards. Methods are not
// synchronised — like the rest of the simulator, they run under the
// single-threaded virtual-time scheduler.
type Plan struct {
	Prof Profile
	Seed int64

	// Independent streams per layer, so the number of draws in one layer
	// (say, a retry storm on the fabric) never shifts another layer's
	// schedule. Mid-execution crashes draw from their own stream so that
	// enabling them never shifts the pre-commit crash schedule either.
	net, crash, ctx, ctxMid, ssd *sim.RNG

	// Crash schedule, generated lazily but deterministically: window k is
	// a pure function of (seed, k), so it does not matter in what order —
	// or at what virtual times — the schedule is queried.
	windows []window
	cursor  sim.Time // end of the generated schedule
	static  bool     // explicit NewWindowPlan schedule; never extended

	// root is retained to derive per-shard crash streams lazily; Derive is
	// a pure function of (seed, salt), so deriving shard streams on first
	// use never shifts the layer streams above, and a run that never
	// queries a shard draws nothing for it.
	root   *sim.RNG
	shards map[int]*shardSched

	// Per-directed-link partition schedules and the correlated split-brain
	// schedule, also derived lazily on pure salts so enabling partitions
	// never shifts the crash schedules above.
	links map[linkKey]*shardSched
	split *shardSched

	c Counters
}

// EndpointCompute is the link-endpoint index of the compute node; pool shards
// are endpoints 0..K-1. Link schedules are keyed by ordered endpoint pairs,
// so (EndpointCompute, 2) is the compute→shard-2 direction and (2,
// EndpointCompute) the reverse.
const EndpointCompute = -1

// linkKey identifies one direction of one endpoint pair.
type linkKey struct{ from, to int }

// shardSched is one shard's independent crash schedule, with the same lazy
// generation model as the whole-controller schedule.
type shardSched struct {
	rng     *sim.RNG
	windows []window
	cursor  sim.Time
	static  bool // explicit SetShardWindows schedule; never extended
}

// shardSaltBase offsets shard stream salts past the fixed layer salts (1–5).
const shardSaltBase = 0x100

// splitSalt and linkSaltBase place the split-brain and per-link streams far
// past the shard salts, so partition schedules never collide with a shard
// stream no matter how many shards exist. A link salt is a pure function of
// the ordered (from, to) endpoint pair — independent of the shard count —
// so link (a, b)'s schedule is identical no matter how many other links or
// shards are queried, and (a, b) and (b, a) draw from distinct streams
// (asymmetric partitions).
const (
	splitSalt    = 0x8000
	linkSaltBase = 0x10000
)

func linkSalt(k linkKey) uint64 {
	return linkSaltBase + uint64(k.from+1)*0x200 + uint64(k.to+1)
}

// splitSide maps a link endpoint onto its side of the fixed split-brain cut:
// the compute node sits with the even-numbered shards; odd-numbered shards
// are on the far side. A split window only severs links that cross the cut.
func splitSide(endpoint int) int {
	if endpoint == EndpointCompute {
		return 0
	}
	return endpoint & 1
}

// NewPlan instantiates prof with the given seed.
func NewPlan(prof Profile, seed int64) *Plan {
	root := sim.NewRNG(seed)
	return &Plan{
		Prof:   prof,
		Seed:   seed,
		net:    root.Derive(1),
		crash:  root.Derive(2),
		ctx:    root.Derive(3),
		ctxMid: root.Derive(5),
		ssd:    root.Derive(4),
		root:   root,
	}
}

// NewWindowPlan returns a plan whose crash schedule is exactly the given
// windows — which must be sorted by Down and non-overlapping — and which
// injects no other faults. Boundary-condition tests use it to place an
// outage edge at an exact virtual-time instant, which the randomised
// schedules cannot.
func NewWindowPlan(ws ...Window) *Plan {
	p := NewPlan(Profile{Name: "windows", Description: "explicit crash windows"}, 0)
	p.static = true
	var prev sim.Time
	for _, w := range ws {
		if w.Up < w.Down || w.Down < prev {
			panic(fmt.Sprintf("fault: NewWindowPlan windows must be sorted and non-overlapping, got [%v,%v) after %v",
				w.Down, w.Up, prev))
		}
		prev = w.Up
		p.windows = append(p.windows, window{Down: w.Down, Up: w.Up})
		p.c.PoolWindows++
	}
	p.cursor = prev
	return p
}

// Counters returns the injected-fault tallies so far.
func (p *Plan) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return p.c
}

// SendFault decides the fate of one message (or RPC) transmission attempt of
// the given traffic class. It returns whether the attempt was lost (dropped
// or corrupted — the caller must retransmit after a timeout) and any extra
// latency to charge for a congestion spike.
func (p *Plan) SendFault(class int) (lost bool, extraNs float64) {
	if p == nil || class < 0 || class >= MaxClasses {
		return false, 0
	}
	nf := &p.Prof.Net[class]
	if nf.DropProb > 0 && p.net.Bernoulli(nf.DropProb) {
		p.c.Drops++
		return true, 0
	}
	if nf.CorruptProb > 0 && p.net.Bernoulli(nf.CorruptProb) {
		p.c.Corruptions++
		return true, 0
	}
	if nf.SpikeProb > 0 && p.net.Bernoulli(nf.SpikeProb) {
		p.c.Spikes++
		span := nf.SpikeMaxNs - nf.SpikeMinNs
		return false, nf.SpikeMinNs + p.net.Float64()*span
	}
	return false, 0
}

// PoolDownAt reports whether the memory controller is crashed at virtual
// time at; if it is, recoverAt is when the controller restarts.
func (p *Plan) PoolDownAt(at sim.Time) (recoverAt sim.Time, down bool) {
	if p == nil || (p.Prof.PoolMeanUp <= 0 && !p.static) {
		return 0, false
	}
	p.extendSchedule(at)
	i := sort.Search(len(p.windows), func(i int) bool { return p.windows[i].Up > at })
	if i < len(p.windows) && p.windows[i].Down <= at {
		return p.windows[i].Up, true
	}
	return 0, false
}

// extendSchedule generates crash windows until the schedule covers at.
func (p *Plan) extendSchedule(at sim.Time) {
	if p.static {
		return
	}
	mu, md := p.Prof.PoolMeanUp, p.Prof.PoolMeanDown
	if md <= 0 {
		md = sim.Millisecond
	}
	for p.cursor <= at {
		down := p.cursor + p.crash.Duration(mu/2, mu+mu/2)
		up := down + p.crash.Duration(md/2, md+md/2)
		p.windows = append(p.windows, window{Down: down, Up: up})
		p.cursor = up
		p.c.PoolWindows++
	}
}

// shardSchedule returns shard's schedule, creating it on first use. The
// stream is derived from the root RNG with a salt that is a pure function of
// the shard index, so shard k's schedule is identical no matter how many
// other shards exist or in what order they are queried.
func (p *Plan) shardSchedule(shard int) *shardSched {
	if p.shards == nil {
		p.shards = make(map[int]*shardSched)
	}
	sc := p.shards[shard]
	if sc == nil {
		sc = &shardSched{rng: p.root.Derive(shardSaltBase + uint64(shard))}
		p.shards[shard] = sc
	}
	return sc
}

// ShardDownAt reports whether pool shard shard is crashed at virtual time at;
// if it is, recoverAt is when the shard restarts. Shards crash independently
// of the whole controller (PoolDownAt) and of each other.
func (p *Plan) ShardDownAt(shard int, at sim.Time) (recoverAt sim.Time, down bool) {
	if p == nil || shard < 0 {
		return 0, false
	}
	sc := p.shards[shard]
	if sc == nil {
		if p.Prof.ShardMeanUp <= 0 {
			return 0, false
		}
		sc = p.shardSchedule(shard)
	}
	p.extendShard(sc, at)
	i := sort.Search(len(sc.windows), func(i int) bool { return sc.windows[i].Up > at })
	if i < len(sc.windows) && sc.windows[i].Down <= at {
		return sc.windows[i].Up, true
	}
	return 0, false
}

// extendShard generates shard crash windows until sc covers at.
func (p *Plan) extendShard(sc *shardSched, at sim.Time) {
	extendSched(sc, at, p.Prof.ShardMeanUp, p.Prof.ShardMeanDown, &p.c.ShardWindows)
}

// extendSched generates outage windows on sc's own stream until the schedule
// covers at: uptime Uniform[½·mu, 1½·mu], outage Uniform[½·md, 1½·md], md
// defaulting to 1 ms. Window k is a pure function of (sc's salt, mu, md, k).
func extendSched(sc *shardSched, at sim.Time, mu, md sim.Time, generated *int64) {
	if sc.static || mu <= 0 {
		return
	}
	if md <= 0 {
		md = sim.Millisecond
	}
	for sc.cursor <= at {
		down := sc.cursor + sc.rng.Duration(mu/2, mu+mu/2)
		up := down + sc.rng.Duration(md/2, md+md/2)
		sc.windows = append(sc.windows, window{Down: down, Up: up})
		sc.cursor = up
		*generated++
	}
}

// downAt reports whether an extended schedule has an outage covering at.
func (sc *shardSched) downAt(at sim.Time) (recoverAt sim.Time, down bool) {
	i := sort.Search(len(sc.windows), func(i int) bool { return sc.windows[i].Up > at })
	if i < len(sc.windows) && sc.windows[i].Down <= at {
		return sc.windows[i].Up, true
	}
	return 0, false
}

// SetShardWindows pins shard's crash schedule to exactly the given windows —
// sorted by Down, non-overlapping — overriding any randomised schedule the
// profile would generate for it. Availability tests use it to place a shard
// outage at exact virtual-time instants.
func (p *Plan) SetShardWindows(shard int, ws ...Window) {
	if p == nil || shard < 0 {
		return
	}
	sc := p.shardSchedule(shard)
	sc.static = true
	sc.windows = nil
	var prev sim.Time
	for _, w := range ws {
		if w.Up < w.Down || w.Down < prev {
			panic(fmt.Sprintf("fault: SetShardWindows windows must be sorted and non-overlapping, got [%v,%v) after %v",
				w.Down, w.Up, prev))
		}
		prev = w.Up
		sc.windows = append(sc.windows, window{Down: w.Down, Up: w.Up})
		p.c.ShardWindows++
	}
	sc.cursor = prev
}

// linkSchedule returns the (from, to) direction's partition schedule,
// creating it on first use from a salt that is a pure function of the ordered
// pair, so one link's schedule never depends on which other links exist or in
// what order they are queried.
func (p *Plan) linkSchedule(key linkKey) *shardSched {
	if p.links == nil {
		p.links = make(map[linkKey]*shardSched)
	}
	sc := p.links[key]
	if sc == nil {
		sc = &shardSched{rng: p.root.Derive(linkSalt(key))}
		p.links[key] = sc
	}
	return sc
}

// splitSchedule returns the correlated split-brain schedule, creating it on
// first use.
func (p *Plan) splitSchedule() *shardSched {
	if p.split == nil {
		p.split = &shardSched{rng: p.root.Derive(splitSalt)}
	}
	return p.split
}

// LinkDownAt reports whether the directed link from endpoint from to endpoint
// to (EndpointCompute or a shard index) is partitioned at virtual time at; if
// it is, recoverAt is when that direction heals. A link is down when its own
// per-direction schedule has an outage, or when a split-brain window is open
// and the endpoints sit on opposite sides of the cut; when both apply,
// recoverAt is the later heal. Link faults are independent of the endpoint
// crash schedules: a shard can be up yet unreachable.
func (p *Plan) LinkDownAt(from, to int, at sim.Time) (recoverAt sim.Time, down bool) {
	if p == nil || from == to || from < EndpointCompute || to < EndpointCompute {
		return 0, false
	}
	key := linkKey{from: from, to: to}
	if sc := p.links[key]; sc != nil || p.Prof.LinkMeanUp > 0 {
		if sc == nil {
			sc = p.linkSchedule(key)
		}
		extendSched(sc, at, p.Prof.LinkMeanUp, p.Prof.LinkMeanDown, &p.c.LinkWindows)
		recoverAt, down = sc.downAt(at)
	}
	if p.Prof.SplitMeanUp > 0 && splitSide(from) != splitSide(to) {
		sc := p.splitSchedule()
		extendSched(sc, at, p.Prof.SplitMeanUp, p.Prof.SplitMeanDown, &p.c.SplitWindows)
		if rec, d := sc.downAt(at); d {
			if !down || rec > recoverAt {
				recoverAt = rec
			}
			down = true
		}
	}
	return recoverAt, down
}

// SetLinkWindows pins the (from, to) direction's partition schedule to
// exactly the given windows — sorted by Down, non-overlapping — overriding
// any randomised schedule the profile would generate for it. Partition tests
// use it to sever one link direction at exact virtual-time instants.
func (p *Plan) SetLinkWindows(from, to int, ws ...Window) {
	if p == nil || from == to || from < EndpointCompute || to < EndpointCompute {
		return
	}
	sc := p.linkSchedule(linkKey{from: from, to: to})
	sc.static = true
	sc.windows = nil
	var prev sim.Time
	for _, w := range ws {
		if w.Up < w.Down || w.Down < prev {
			panic(fmt.Sprintf("fault: SetLinkWindows windows must be sorted and non-overlapping, got [%v,%v) after %v",
				w.Down, w.Up, prev))
		}
		prev = w.Up
		sc.windows = append(sc.windows, window{Down: w.Down, Up: w.Up})
		p.c.LinkWindows++
	}
	sc.cursor = prev
}

// LinkWindowsThrough returns the (from, to) direction's partition windows
// that begin before at, oldest first, extending a randomised schedule as
// needed. Split-brain windows are included when the endpoints cross the cut,
// so the result is the full set of instants LinkDownAt reports down for.
func (p *Plan) LinkWindowsThrough(from, to int, at sim.Time) []Window {
	if p == nil || from == to || from < EndpointCompute || to < EndpointCompute {
		return nil
	}
	var out []Window
	key := linkKey{from: from, to: to}
	if sc := p.links[key]; sc != nil || p.Prof.LinkMeanUp > 0 {
		if sc == nil {
			sc = p.linkSchedule(key)
		}
		extendSched(sc, at, p.Prof.LinkMeanUp, p.Prof.LinkMeanDown, &p.c.LinkWindows)
		out = copyWindows(sc.windows, at)
	}
	if p.Prof.SplitMeanUp > 0 && splitSide(from) != splitSide(to) {
		sc := p.splitSchedule()
		extendSched(sc, at, p.Prof.SplitMeanUp, p.Prof.SplitMeanDown, &p.c.SplitWindows)
		out = append(out, copyWindows(sc.windows, at)...)
	}
	return out
}

// HasLinkFaults reports whether the plan can partition links at all — the
// profile enables per-link or split-brain schedules, or a test pinned
// explicit link windows. Callers use it to skip per-link bookkeeping on
// crash-only plans.
func (p *Plan) HasLinkFaults() bool {
	return p != nil && (p.Prof.LinkMeanUp > 0 || p.Prof.SplitMeanUp > 0 || len(p.links) > 0)
}

// WindowsThrough returns the whole-controller crash windows that begin before
// at, oldest first, extending a randomised schedule as needed. Reports use it
// to turn the schedule into concrete downtime (TotalDowntime) instead of an
// opaque window count.
func (p *Plan) WindowsThrough(at sim.Time) []Window {
	if p == nil || (p.Prof.PoolMeanUp <= 0 && !p.static) {
		return nil
	}
	p.extendSchedule(at)
	return copyWindows(p.windows, at)
}

// ShardWindowsThrough is WindowsThrough for one pool shard's schedule.
func (p *Plan) ShardWindowsThrough(shard int, at sim.Time) []Window {
	if p == nil || shard < 0 {
		return nil
	}
	sc := p.shards[shard]
	if sc == nil {
		if p.Prof.ShardMeanUp <= 0 {
			return nil
		}
		sc = p.shardSchedule(shard)
	}
	p.extendShard(sc, at)
	return copyWindows(sc.windows, at)
}

func copyWindows(ws []window, at sim.Time) []Window {
	var out []Window
	for _, w := range ws {
		if w.Down >= at {
			break
		}
		out = append(out, Window(w))
	}
	return out
}

// TotalDowntime sums each window's overlap with [0, through). The windows
// need not be clipped: overlap past through is excluded.
func TotalDowntime(ws []Window, through sim.Time) sim.Time {
	var total sim.Time
	for _, w := range ws {
		up := w.Up
		if up > through {
			up = through
		}
		if up > w.Down {
			total += up - w.Down
		}
	}
	return total
}

// UnionDowntime returns the length of the union of the windows' overlap with
// [0, through) — the virtual time during which at least one of the schedules
// the windows came from was down ("degraded mode" when fed every shard's
// windows). The input may be unsorted and overlapping; it is not modified.
func UnionDowntime(ws []Window, through sim.Time) sim.Time {
	if len(ws) == 0 {
		return 0
	}
	sorted := make([]Window, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Down != sorted[j].Down {
			return sorted[i].Down < sorted[j].Down
		}
		return sorted[i].Up < sorted[j].Up
	})
	var total sim.Time
	cur := sorted[0]
	for _, w := range sorted[1:] {
		if w.Down <= cur.Up {
			if w.Up > cur.Up {
				cur.Up = w.Up
			}
			continue
		}
		total += TotalDowntime([]Window{cur}, through)
		cur = w
	}
	total += TotalDowntime([]Window{cur}, through)
	return total
}

// CtxCrash decides whether one pushdown's temporary context crashes before
// the pushed function commits.
func (p *Plan) CtxCrash() bool {
	if p == nil || p.Prof.CtxCrashProb <= 0 {
		return false
	}
	if p.ctx.Bernoulli(p.Prof.CtxCrashProb) {
		p.c.CtxCrashes++
		return true
	}
	return false
}

// CtxCrashMid decides whether one pushdown's temporary context crashes
// mid-execution, after the pushed function has begun dirtying pages; frac
// in [0,1) positions the crash point within the call (the runtime maps it
// onto a page-access ordinal). A crash armed here may still not fire — the
// function can finish before reaching the crash point — so CtxMidCrashes
// counts armings; the runtime's Rollbacks counter counts actual fires.
func (p *Plan) CtxCrashMid() (frac float64, crash bool) {
	if p == nil || p.Prof.CtxCrashMidProb <= 0 {
		return 0, false
	}
	if !p.ctxMid.Bernoulli(p.Prof.CtxCrashMidProb) {
		return 0, false
	}
	p.c.CtxMidCrashes++
	return p.ctxMid.Float64(), true
}

// SSDReadError decides whether one SSD page read fails.
func (p *Plan) SSDReadError() bool {
	if p == nil || p.Prof.SSDReadErrProb <= 0 {
		return false
	}
	if p.ssd.Bernoulli(p.Prof.SSDReadErrProb) {
		p.c.SSDReadErrors++
		return true
	}
	return false
}
