package fault

import (
	"testing"

	"teleport/internal/sim"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if lost, extra := p.SendFault(0); lost || extra != 0 {
		t.Fatal("nil plan injected a net fault")
	}
	if _, down := p.PoolDownAt(sim.Second); down {
		t.Fatal("nil plan crashed the pool")
	}
	if p.CtxCrash() || p.SSDReadError() {
		t.Fatal("nil plan injected a crash")
	}
	if c := p.Counters(); c != (Counters{}) {
		t.Fatalf("nil plan counters = %v", c)
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	p := NewPlan(Profile{}, 7)
	for i := 0; i < 1000; i++ {
		if lost, extra := p.SendFault(i % MaxClasses); lost || extra != 0 {
			t.Fatal("zero profile injected a net fault")
		}
	}
	if _, down := p.PoolDownAt(10 * sim.Second); down {
		t.Fatal("zero profile crashed the pool")
	}
	if p.CtxCrash() || p.SSDReadError() {
		t.Fatal("zero profile injected a crash")
	}
}

func TestSendFaultRatesRoughlyMatch(t *testing.T) {
	p := NewPlan(FlakyNet(), 42)
	const n = 200000
	var lost, spiked int
	for i := 0; i < n; i++ {
		l, extra := p.SendFault(0)
		if l {
			lost++
		}
		if extra > 0 {
			spiked++
			if extra < 5e3 || extra > 20e3 {
				t.Fatalf("spike %v ns outside [5000, 20000]", extra)
			}
		}
	}
	c := p.Counters()
	if int(c.Drops+c.Corruptions) != lost || int(c.Spikes) != spiked {
		t.Fatalf("counters %v disagree with observations lost=%d spiked=%d", c, lost, spiked)
	}
	lossRate := float64(lost) / n
	if lossRate < 0.008 || lossRate > 0.016 {
		t.Fatalf("loss rate %.4f, want ≈0.012", lossRate)
	}
}

func TestSameSeedSameStream(t *testing.T) {
	a, b := NewPlan(Chaos(), 99), NewPlan(Chaos(), 99)
	for i := 0; i < 5000; i++ {
		la, ea := a.SendFault(i % MaxClasses)
		lb, eb := b.SendFault(i % MaxClasses)
		if la != lb || ea != eb {
			t.Fatalf("streams diverge at draw %d", i)
		}
		if a.CtxCrash() != b.CtxCrash() || a.SSDReadError() != b.SSDReadError() {
			t.Fatalf("crash streams diverge at draw %d", i)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters diverge: %v vs %v", a.Counters(), b.Counters())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := NewPlan(FlakyNet(), 1), NewPlan(FlakyNet(), 2)
	same := true
	for i := 0; i < 2000; i++ {
		la, _ := a.SendFault(0)
		lb, _ := b.SendFault(0)
		if la != lb {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault streams")
	}
}

// TestCrashScheduleQueryOrderIndependent: the crash schedule must be a pure
// function of the seed, no matter in what order virtual times are probed —
// threads with different clocks interleave their queries arbitrarily.
func TestCrashScheduleQueryOrderIndependent(t *testing.T) {
	probe := []sim.Time{
		500 * sim.Millisecond, sim.Millisecond, 90 * sim.Millisecond,
		3 * sim.Millisecond, 200 * sim.Millisecond, 40 * sim.Millisecond,
	}
	type obs struct {
		rec  sim.Time
		down bool
	}
	run := func(order []sim.Time) map[sim.Time]obs {
		p := NewPlan(CrashyPool(), 11)
		out := map[sim.Time]obs{}
		for _, at := range order {
			rec, down := p.PoolDownAt(at)
			out[at] = obs{rec, down}
		}
		return out
	}
	fwd := run(probe)
	rev := make([]sim.Time, len(probe))
	for i, v := range probe {
		rev[len(probe)-1-i] = v
	}
	bwd := run(rev)
	for at, o := range fwd {
		if bwd[at] != o {
			t.Fatalf("schedule differs at %v: %v vs %v", at, o, bwd[at])
		}
	}
}

func TestCrashWindowsAlternateAndRecover(t *testing.T) {
	p := NewPlan(CrashyPool(), 5)
	// Find a down window by scanning; every outage must report a recovery
	// time strictly in the future, after which the pool is up again.
	found := false
	for at := sim.Time(0); at < 2*sim.Second; at += 100 * sim.Microsecond {
		rec, down := p.PoolDownAt(at)
		if !down {
			continue
		}
		found = true
		if rec <= at {
			t.Fatalf("recovery %v not after crash observation %v", rec, at)
		}
		if _, still := p.PoolDownAt(rec); still {
			t.Fatalf("pool still down at its own recovery time %v", rec)
		}
	}
	if !found {
		t.Fatal("no crash window in 2s of virtual time under crashy-pool")
	}
	if p.Counters().PoolWindows == 0 {
		t.Fatal("no windows counted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if p, err := ByName(""); err != nil || p != (Profile{Name: "none"}) {
		t.Fatalf("ByName(\"\") = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	root := sim.NewRNG(123)
	a := root.Derive(1)
	b := root.Derive(2)
	// Drawing from a must not change b's future stream.
	b2 := sim.NewRNG(123).Derive(2)
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	for i := 0; i < 100; i++ {
		if b.Uint64() != b2.Uint64() {
			t.Fatal("derived streams are not independent")
		}
	}
}
