package fault

import (
	"fmt"
	"strings"

	"teleport/internal/sim"
)

// Shipped profiles. Probabilities are deliberately aggressive for a cost
// model — the point of a chaos run is to exercise every recovery path, not
// to estimate production error rates.

// FlakyNet drops ~1% of messages, corrupts ~0.2%, and delays ~2% by a
// 5–20 µs congestion spike, on every traffic class.
func FlakyNet() Profile {
	p := Profile{
		Name:        "flaky-net",
		Description: "1% loss, 0.2% corruption, 2% latency spikes on all classes",
	}
	p.SetNetAll(NetFaults{
		DropProb:    0.01,
		CorruptProb: 0.002,
		SpikeProb:   0.02,
		SpikeMinNs:  5e3,
		SpikeMaxNs:  20e3,
	})
	return p
}

// CrashyPool crashes the memory controller roughly every 20 ms of virtual
// time for ~1 ms, with a trickle of message loss so retry paths overlap.
func CrashyPool() Profile {
	p := Profile{
		Name:         "crashy-pool",
		Description:  "memory controller crashes ~every 20ms for ~1ms, 0.2% loss",
		PoolMeanUp:   20 * sim.Millisecond,
		PoolMeanDown: sim.Millisecond,
	}
	p.SetNetAll(NetFaults{DropProb: 0.002})
	return p
}

// FlakySSD fails ~5% of storage-pool page reads, forcing device-level
// re-reads, and crashes ~2% of pushdown contexts.
func FlakySSD() Profile {
	return Profile{
		Name:           "flaky-ssd",
		Description:    "5% SSD read errors, 2% pushdown-context crashes",
		SSDReadErrProb: 0.05,
		CtxCrashProb:   0.02,
	}
}

// MidCrash crashes ~25% of pushdown contexts mid-execution, after they have
// begun dirtying pages in the memory pool, forcing the undo-journal rollback
// path before every retry or fallback.
func MidCrash() Profile {
	return Profile{
		Name:            "mid-crash",
		Description:     "25% of pushdown contexts crash mid-execution (undo-log rollback)",
		CtxCrashMidProb: 0.25,
	}
}

// Chaos combines every fault kind at once.
func Chaos() Profile {
	p := FlakyNet()
	p.Name = "chaos"
	p.Description = "flaky-net + controller crashes + context crashes (pre-commit and mid-execution) + SSD errors"
	p.PoolMeanUp = 25 * sim.Millisecond
	p.PoolMeanDown = sim.Millisecond
	p.CtxCrashProb = 0.03
	p.CtxCrashMidProb = 0.05
	p.SSDReadErrProb = 0.03
	return p
}

// ShardFlap crashes individual pool shards roughly every 2 ms of virtual
// time for ~200 µs each (~9% per-shard downtime), with the whole controller
// staying up — the pure partial-failure regime that replication and
// failover reads exist for. The cadence is deliberately much faster than
// the whole-controller profiles so even millisecond-scale workloads cross
// several outages per shard.
func ShardFlap() Profile {
	return Profile{
		Name:          "shard-flap",
		Description:   "each pool shard crashes ~every 2ms for ~200µs (controller stays up)",
		ShardMeanUp:   2 * sim.Millisecond,
		ShardMeanDown: 200 * sim.Microsecond,
	}
}

// ShardChaos layers per-shard crashes on top of the full chaos mix, so shard
// failover runs concurrently with message loss, whole-controller outages,
// context crashes, and SSD errors.
func ShardChaos() Profile {
	p := Chaos()
	p.Name = "shard-chaos"
	p.Description = "chaos + each pool shard crashes ~every 3ms for ~200µs"
	p.ShardMeanUp = 3 * sim.Millisecond
	p.ShardMeanDown = 200 * sim.Microsecond
	return p
}

// PartitionFlap partitions individual link directions between the compute
// node and pool shards (and between shards) roughly every 1 ms of virtual
// time for ~150 µs each, with every endpoint staying up — the pure
// network-partition regime that quorum writes, hinted handoff, and
// read-repair exist for. Directions fail independently, so most outages are
// asymmetric. The cadence is fast enough that even millisecond-scale
// workloads cross at least one outage per link direction.
func PartitionFlap() Profile {
	return Profile{
		Name:         "partition-flap",
		Description:  "each link direction partitions ~every 1ms for ~150µs (endpoints stay up)",
		LinkMeanUp:   sim.Millisecond,
		LinkMeanDown: 150 * sim.Microsecond,
	}
}

// SplitPool opens correlated split-brain windows roughly every 800 µs for
// ~150 µs each: the compute node and even-numbered shards on one side,
// odd-numbered shards on the other, every cut-crossing link down in both
// directions. With R ≥ 2 replicas straddling the cut, every write during a
// split exercises quorum commit plus hinted handoff for the far side.
func SplitPool() Profile {
	return Profile{
		Name:          "split-pool",
		Description:   "split-brain ~every 800µs for ~150µs: odd shards partitioned from compute + even shards",
		SplitMeanUp:   800 * sim.Microsecond,
		SplitMeanDown: 150 * sim.Microsecond,
	}
}

// PartitionChaos layers asymmetric link flaps, split-brain windows, and
// per-shard crashes on top of the full chaos mix, so hinted handoff and
// read-repair run concurrently with failover, message loss, whole-controller
// outages, context crashes, and SSD errors.
func PartitionChaos() Profile {
	p := Chaos()
	p.Name = "partition-chaos"
	p.Description = "chaos + shard crashes + link flaps + split-brain windows"
	p.ShardMeanUp = 3 * sim.Millisecond
	p.ShardMeanDown = 200 * sim.Microsecond
	p.LinkMeanUp = 1500 * sim.Microsecond
	p.LinkMeanDown = 100 * sim.Microsecond
	p.SplitMeanUp = 2 * sim.Millisecond
	p.SplitMeanDown = 120 * sim.Microsecond
	return p
}

// HasPartitions reports whether the profile can sever links (per-link or
// split-brain schedules enabled).
func (p Profile) HasPartitions() bool {
	return p.LinkMeanUp > 0 || p.SplitMeanUp > 0
}

// Params renders the profile's active fault knobs on one line, for the CLI
// profile listing. A profile that injects nothing reports "no faults".
func (p Profile) Params() string {
	var parts []string
	if nf := p.Net[0]; nf.DropProb > 0 || nf.CorruptProb > 0 || nf.SpikeProb > 0 {
		s := fmt.Sprintf("net drop=%.3g corrupt=%.3g spike=%.3g", nf.DropProb, nf.CorruptProb, nf.SpikeProb)
		if nf.SpikeProb > 0 {
			s += fmt.Sprintf("×[%v,%v]", sim.Time(nf.SpikeMinNs), sim.Time(nf.SpikeMaxNs))
		}
		parts = append(parts, s)
	}
	if p.PoolMeanUp > 0 {
		parts = append(parts, fmt.Sprintf("pool mean-up=%v mean-down=%v", p.PoolMeanUp, p.PoolMeanDown))
	}
	if p.ShardMeanUp > 0 {
		parts = append(parts, fmt.Sprintf("shard mean-up=%v mean-down=%v", p.ShardMeanUp, p.ShardMeanDown))
	}
	if p.LinkMeanUp > 0 {
		parts = append(parts, fmt.Sprintf("link mean-up=%v mean-down=%v", p.LinkMeanUp, p.LinkMeanDown))
	}
	if p.SplitMeanUp > 0 {
		parts = append(parts, fmt.Sprintf("split mean-up=%v mean-down=%v", p.SplitMeanUp, p.SplitMeanDown))
	}
	if p.CtxCrashProb > 0 {
		parts = append(parts, fmt.Sprintf("ctx-crash=%.3g", p.CtxCrashProb))
	}
	if p.CtxCrashMidProb > 0 {
		parts = append(parts, fmt.Sprintf("ctx-mid-crash=%.3g", p.CtxCrashMidProb))
	}
	if p.SSDReadErrProb > 0 {
		parts = append(parts, fmt.Sprintf("ssd-read-err=%.3g", p.SSDReadErrProb))
	}
	if len(parts) == 0 {
		return "no faults"
	}
	return strings.Join(parts, ", ")
}

// Profiles returns every shipped profile.
func Profiles() []Profile {
	return []Profile{FlakyNet(), CrashyPool(), FlakySSD(), MidCrash(), Chaos(), ShardFlap(), ShardChaos(),
		PartitionFlap(), SplitPool(), PartitionChaos()}
}

// ProfileNames lists the shipped profile names.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ByName resolves a shipped profile. "" and "none" resolve to a zero profile
// that injects nothing.
func ByName(name string) (Profile, error) {
	if name == "" || name == "none" {
		return Profile{Name: "none"}, nil
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("fault: unknown profile %q (have none, %s)",
		name, strings.Join(ProfileNames(), ", "))
}
