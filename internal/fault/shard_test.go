package fault

import (
	"testing"

	"teleport/internal/sim"
)

// Same seed, same per-shard crash schedule — regardless of query order or
// how many other shards were queried in between.
func TestShardDownAtSameSeedIdentical(t *testing.T) {
	prof := Profile{Name: "t", ShardMeanUp: sim.Millisecond, ShardMeanDown: 100 * sim.Microsecond}
	type probe struct {
		rec  sim.Time
		down bool
	}
	draw := func(order []int) map[int][]probe {
		p := NewPlan(prof, 42)
		out := map[int][]probe{}
		for step := 0; step < 200; step++ {
			at := sim.Time(step) * 50 * sim.Microsecond
			for _, s := range order {
				rec, down := p.ShardDownAt(s, at)
				out[s] = append(out[s], probe{rec, down})
			}
		}
		return out
	}
	a := draw([]int{0, 1, 2, 3})
	b := draw([]int{3, 1, 0, 2}) // different creation/query order
	for s := 0; s < 4; s++ {
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatalf("shard %d probe %d differs across query orders: %+v vs %+v", s, i, a[s][i], b[s][i])
			}
		}
	}
}

// Distinct shards get distinct schedules (independent derived streams).
func TestShardSchedulesIndependent(t *testing.T) {
	prof := Profile{Name: "t", ShardMeanUp: sim.Millisecond, ShardMeanDown: 100 * sim.Microsecond}
	p := NewPlan(prof, 7)
	horizon := 50 * sim.Millisecond
	w0 := p.ShardWindowsThrough(0, horizon)
	w1 := p.ShardWindowsThrough(1, horizon)
	if len(w0) == 0 || len(w1) == 0 {
		t.Fatalf("expected windows on both shards, got %d and %d", len(w0), len(w1))
	}
	same := len(w0) == len(w1)
	if same {
		for i := range w0 {
			if w0[i] != w1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("shard 0 and shard 1 drew identical schedules")
	}
}

// Querying shard schedules must not shift the whole-controller crash
// schedule: the pool stream and the shard streams are independent, so
// existing profiles' draws are unshifted by the sharding extension.
func TestShardDrawsDoNotShiftPoolSchedule(t *testing.T) {
	prof := Profile{
		Name:       "t",
		PoolMeanUp: 5 * sim.Millisecond, PoolMeanDown: 500 * sim.Microsecond,
		ShardMeanUp: sim.Millisecond, ShardMeanDown: 100 * sim.Microsecond,
	}
	poolOnly := NewPlan(prof, 11)
	mixed := NewPlan(prof, 11)
	for step := 0; step < 400; step++ {
		at := sim.Time(step) * 100 * sim.Microsecond
		// Interleave shard draws on the mixed plan only.
		for s := 0; s < 4; s++ {
			mixed.ShardDownAt(s, at)
		}
		ra, da := poolOnly.PoolDownAt(at)
		rb, db := mixed.PoolDownAt(at)
		if ra != rb || da != db {
			t.Fatalf("PoolDownAt(%v) shifted by shard draws: (%v,%v) vs (%v,%v)", at, ra, da, rb, db)
		}
	}
}

// A profile without shard crashes never reports a shard down, and a nil
// plan is inert.
func TestShardDownAtDisabled(t *testing.T) {
	p := NewPlan(Profile{Name: "t", PoolMeanUp: sim.Millisecond}, 1)
	for step := 0; step < 100; step++ {
		if _, down := p.ShardDownAt(0, sim.Time(step)*sim.Millisecond); down {
			t.Fatal("shard down with ShardMeanUp == 0")
		}
	}
	if p.Counters().ShardWindows != 0 {
		t.Fatalf("ShardWindows = %d, want 0", p.Counters().ShardWindows)
	}
	var nilPlan *Plan
	if _, down := nilPlan.ShardDownAt(0, sim.Second); down {
		t.Fatal("nil plan reported a shard down")
	}
	if ws := nilPlan.ShardWindowsThrough(0, sim.Second); ws != nil {
		t.Fatalf("nil plan returned shard windows %v", ws)
	}
}

// SetShardWindows pins exact half-open outage windows on one shard without
// touching the others.
func TestSetShardWindowsExact(t *testing.T) {
	const d, u = 10 * sim.Microsecond, 20 * sim.Microsecond
	p := NewPlan(Profile{Name: "t"}, 0)
	p.SetShardWindows(1, Window{Down: d, Up: u})

	cases := []struct {
		at   sim.Time
		down bool
		rec  sim.Time
	}{
		{0, false, 0},
		{d - 1, false, 0},
		{d, true, u},
		{u - 1, true, u},
		{u, false, 0}, // half-open: up at exactly Up
	}
	for _, tc := range cases {
		rec, down := p.ShardDownAt(1, tc.at)
		if down != tc.down || rec != tc.rec {
			t.Fatalf("ShardDownAt(1, %v) = (%v, %v), want (%v, %v)", tc.at, rec, down, tc.rec, tc.down)
		}
	}
	if _, down := p.ShardDownAt(0, d); down {
		t.Fatal("window pinned on shard 1 leaked to shard 0")
	}
	if got := p.Counters().ShardWindows; got != 1 {
		t.Fatalf("ShardWindows = %d, want 1", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("overlapping shard windows did not panic")
		}
	}()
	p.SetShardWindows(2,
		Window{Down: 10 * sim.Microsecond, Up: 30 * sim.Microsecond},
		Window{Down: 20 * sim.Microsecond, Up: 40 * sim.Microsecond},
	)
}

// WindowsThrough exposes the generated schedule: every returned window's
// half-open boundaries must agree with PoolDownAt, and a later horizon only
// appends windows.
func TestWindowsThroughMatchesProbing(t *testing.T) {
	p := NewPlan(Profile{Name: "t", PoolMeanUp: sim.Millisecond, PoolMeanDown: 200 * sim.Microsecond}, 3)
	const through = 20 * sim.Millisecond
	ws := p.WindowsThrough(through)
	if len(ws) == 0 {
		t.Fatal("no windows generated through 20ms with 1ms mean uptime")
	}
	for i, w := range ws {
		if rec, down := p.PoolDownAt(w.Down); !down || rec != w.Up {
			t.Fatalf("window %d: PoolDownAt(Down=%v) = (%v, %v), want (%v, true)", i, w.Down, rec, down, w.Up)
		}
		if rec, down := p.PoolDownAt(w.Up - 1); !down || rec != w.Up {
			t.Fatalf("window %d: PoolDownAt(Up-1=%v) = (%v, %v), want (%v, true)", i, w.Up-1, rec, down, w.Up)
		}
		if _, down := p.PoolDownAt(w.Down - 1); down {
			t.Fatalf("window %d: down just before Down=%v", i, w.Down)
		}
	}
	// A later horizon can only append windows, never rewrite earlier ones.
	more := p.WindowsThrough(2 * through)
	if len(more) < len(ws) {
		t.Fatalf("later horizon returned fewer windows: %d < %d", len(more), len(ws))
	}
	for i := range ws {
		if more[i] != ws[i] {
			t.Fatalf("window %d rewritten by later horizon: %+v vs %+v", i, more[i], ws[i])
		}
	}
}

func TestTotalDowntimeClipsToThrough(t *testing.T) {
	ws := []Window{
		{Down: 10, Up: 20},
		{Down: 30, Up: 50},
	}
	cases := []struct {
		through sim.Time
		want    sim.Time
	}{
		{0, 0},
		{15, 5},
		{25, 10},
		{40, 20},
		{100, 30},
	}
	for _, tc := range cases {
		if got := TotalDowntime(ws, tc.through); got != tc.want {
			t.Fatalf("TotalDowntime(through=%v) = %v, want %v", tc.through, got, tc.want)
		}
	}
}

func TestUnionDowntimeMergesOverlaps(t *testing.T) {
	// Unsorted, with an overlap, a containment, an adjacency, and a gap:
	// union is [10,40) ∪ [50,60) = 40.
	ws := []Window{
		{Down: 20, Up: 40},
		{Down: 10, Up: 25},
		{Down: 12, Up: 18}, // contained
		{Down: 40, Up: 40}, // zero-length, adjacent
		{Down: 50, Up: 60},
	}
	if got := UnionDowntime(ws, 100); got != 40 {
		t.Fatalf("UnionDowntime = %v, want 40", got)
	}
	if got := UnionDowntime(ws, 55); got != 35 {
		t.Fatalf("UnionDowntime(through=55) = %v, want 35", got)
	}
	if got := UnionDowntime(nil, 100); got != 0 {
		t.Fatalf("UnionDowntime(nil) = %v, want 0", got)
	}
	// Disjoint schedules sum like TotalDowntime.
	dj := []Window{{Down: 0, Up: 5}, {Down: 10, Up: 15}}
	if UnionDowntime(dj, 100) != TotalDowntime(dj, 100) {
		t.Fatal("disjoint union differs from plain sum")
	}
}

// Params renders every active knob and the shipped shard profiles are listed.
func TestProfilesIncludeShardProfiles(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		names[p.Name] = true
		if p.Params() == "no faults" {
			t.Errorf("shipped profile %q renders as injecting nothing", p.Name)
		}
	}
	for _, want := range []string{"shard-flap", "shard-chaos"} {
		if !names[want] {
			t.Errorf("profile %q not shipped", want)
		}
	}
	if (Profile{}).Params() != "no faults" {
		t.Errorf("zero profile Params() = %q, want \"no faults\"", Profile{}.Params())
	}
}
