package fault

import (
	"strings"
	"testing"

	"teleport/internal/sim"
)

func TestWindowPlanHalfOpenBoundaries(t *testing.T) {
	const d1, u1 = 10 * sim.Microsecond, 20 * sim.Microsecond
	const d2, u2 = 50 * sim.Microsecond, 60 * sim.Microsecond
	p := NewWindowPlan(Window{Down: d1, Up: u1}, Window{Down: d2, Up: u2})

	cases := []struct {
		at   sim.Time
		down bool
		rec  sim.Time
	}{
		{0, false, 0},
		{d1 - 1, false, 0},
		{d1, true, u1},
		{u1 - 1, true, u1},
		{u1, false, 0}, // half-open: up at exactly Up
		{d2, true, u2},
		{u2, false, 0},
		{u2 + sim.Second, false, 0}, // static schedule never extends
	}
	for _, tc := range cases {
		rec, down := p.PoolDownAt(tc.at)
		if down != tc.down || rec != tc.rec {
			t.Fatalf("PoolDownAt(%v) = (%v, %v), want (%v, %v)", tc.at, rec, down, tc.rec, tc.down)
		}
	}
	if got := p.Counters().PoolWindows; got != 2 {
		t.Fatalf("PoolWindows = %d, want 2", got)
	}
}

func TestWindowPlanRejectsUnsortedWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping windows did not panic")
		}
	}()
	NewWindowPlan(
		Window{Down: 10 * sim.Microsecond, Up: 30 * sim.Microsecond},
		Window{Down: 20 * sim.Microsecond, Up: 40 * sim.Microsecond},
	)
}

// Same seed, same sequence of mid-execution crash decisions and fractions.
func TestCtxCrashMidSameSeedIdentical(t *testing.T) {
	draw := func() (fracs []float64, crashes []bool) {
		p := NewPlan(Profile{Name: "t", CtxCrashMidProb: 0.4}, 99)
		for i := 0; i < 500; i++ {
			f, c := p.CtxCrashMid()
			fracs = append(fracs, f)
			crashes = append(crashes, c)
		}
		return
	}
	f1, c1 := draw()
	f2, c2 := draw()
	for i := range f1 {
		if f1[i] != f2[i] || c1[i] != c2[i] {
			t.Fatalf("draw %d differs across same-seed plans: (%v,%v) vs (%v,%v)", i, f1[i], c1[i], f2[i], c2[i])
		}
	}
}

// The mid-crash stream is independent of the pre-commit crash stream:
// enabling CtxCrashMidProb must not shift the CtxCrash sequence (and vice
// versa), so adding mid-crashes to a profile leaves existing draws intact.
func TestCtxCrashMidStreamIndependent(t *testing.T) {
	const seed = 7
	plain := NewPlan(Profile{Name: "a", CtxCrashProb: 0.5}, seed)
	mixed := NewPlan(Profile{Name: "b", CtxCrashProb: 0.5, CtxCrashMidProb: 0.5}, seed)
	for i := 0; i < 1000; i++ {
		// Interleave mid-crash draws on the mixed plan only.
		if i%3 == 0 {
			mixed.CtxCrashMid()
		}
		if plain.CtxCrash() != mixed.CtxCrash() {
			t.Fatalf("CtxCrash draw %d shifted when mid-crash draws were interleaved", i)
		}
	}
}

// A zero-probability profile never arms a mid-crash and counts nothing.
func TestCtxCrashMidDisabled(t *testing.T) {
	p := NewPlan(Profile{Name: "t"}, 1)
	for i := 0; i < 100; i++ {
		if _, crash := p.CtxCrashMid(); crash {
			t.Fatal("CtxCrashMid armed with probability 0")
		}
	}
	if p.Counters().CtxMidCrashes != 0 {
		t.Fatalf("CtxMidCrashes = %d, want 0", p.Counters().CtxMidCrashes)
	}
	var nilPlan *Plan
	if _, crash := nilPlan.CtxCrashMid(); crash {
		t.Fatal("nil plan armed a mid-crash")
	}
}

func TestCountersStringIncludesAllFields(t *testing.T) {
	c := Counters{
		Drops: 1, Corruptions: 2, Spikes: 3, CtxCrashes: 4,
		CtxMidCrashes: 5, SSDReadErrors: 6, PoolWindows: 7, ShardWindows: 8,
	}
	s := c.String()
	for _, want := range []string{
		"drops=1", "corrupt=2", "spikes=3", "ctx-crashes=4",
		"ctx-mid-crashes=5", "ssd-errs=6", "crash-windows=7", "shard-windows=8",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("Counters.String() = %q, missing %q", s, want)
		}
	}
}
