package ddc

import (
	"fmt"

	"teleport/internal/netmodel"
	"teleport/internal/sim"
)

// Cluster assembles n independent machines — one sim.Domain each — under a
// single scheduler for conservative parallel execution. Machines share no
// simulator state: each has its own fabric, pool, SSD, and fault plan, so
// its domain may advance concurrently with the others inside the
// scheduler's lookahead window. The only cross-machine interaction is
// Send, which charges the sender's fabric and posts a wake to the target
// thread one SyncLatency later.
//
// SyncLatency is the declared minimum cross-machine message latency. It
// must be at least the fabric's per-message wire latency (MinLatency) —
// the physical floor — and is typically much larger: rack-scale data
// systems exchange state in collective/BSP steps whose software path
// (serialization, syscall, NIC doorbell, completion polling) dwarfs the
// wire time, and a larger bound means wider windows, fewer barriers, and
// better host parallelism at zero cost to fidelity for such workloads.
type Cluster struct {
	S        *sim.Scheduler
	Machines []*Machine
	Procs    []*Process
	Domains  []*sim.Domain
	SyncLat  sim.Time
}

// NewCluster builds n machines under s, one per domain, each configured by
// mk(i) (called in machine order, so per-machine variation — fault seeds,
// cache sizes — stays deterministic). The scheduler's lookahead is set to
// syncLat.
func NewCluster(s *sim.Scheduler, n int, syncLat sim.Time, mk func(i int) Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("ddc: cluster needs at least 1 machine, got %d", n)
	}
	c := &Cluster{S: s, SyncLat: syncLat}
	for i := 0; i < n; i++ {
		m, err := NewMachine(mk(i))
		if err != nil {
			return nil, fmt.Errorf("ddc: cluster machine %d: %w", i, err)
		}
		if min := m.Fabric.MinLatency(); syncLat < min {
			return nil, fmt.Errorf("ddc: cluster sync latency %v below fabric minimum %v: the lookahead would admit impossible messages", syncLat, min)
		}
		c.Machines = append(c.Machines, m)
		c.Procs = append(c.Procs, m.NewProcess())
		c.Domains = append(c.Domains, s.NewDomain(fmt.Sprintf("machine-%d", i)))
	}
	s.SetLookahead(syncLat)
	return c, nil
}

// Send models machine `from` sending a message of `bytes` to a thread on
// another machine: the transfer is charged to the sender's fabric (latency,
// bandwidth, injected faults and retries) and the target becomes runnable
// one SyncLatency after the send completes. The payload itself travels
// through host memory the caller owns; the barrier's happens-before edge
// makes that safe to read after the wake.
func (c *Cluster) Send(t *sim.Thread, from int, target *sim.Thread, bytes int) {
	c.Machines[from].Fabric.Send(t, bytes, netmodel.ClassSync)
	t.Post(target, t.Now()+c.SyncLat)
}
