package ddc

import (
	"fmt"

	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/storage"
	"teleport/internal/trace"
)

// Wire sizes for the paging protocol.
const (
	faultReqBytes  = 48                // page-fault request header
	pageRespBytes  = mem.PageSize + 32 // page payload + response header
	ctrlMsgBytes   = 48                // permission/invalidation control message
	writebackBytes = mem.PageSize + 32
)

// Machine is one (possibly disaggregated) machine: the fabric, the storage
// device, and the configuration shared by its processes.
type Machine struct {
	Cfg    Config
	Fabric *netmodel.Fabric
	SSD    *storage.SSD

	// Trace, when non-nil, receives paging/coherence/pushdown events (see
	// internal/trace). Tracing costs no virtual time. Attach with
	// AttachTrace so the fabric's fault events land in the same ring.
	Trace *trace.Ring

	// Fault, when non-nil, is the machine's deterministic chaos plan (see
	// internal/fault). Attach with AttachFault so every layer — fabric,
	// SSD, TELEPORT runtime — consults the same plan.
	Fault *fault.Plan

	// Times is the machine-wide virtual-time attribution accumulator:
	// every layer charges its own advances to a disjoint component, so
	// elapsed − Times.TotalNs() is pure compute. Always allocated; reads
	// and writes cost no virtual time.
	Times *metrics.TimeSet

	// Metrics, when non-nil, is the machine's quantitative registry.
	// Attach with AttachMetrics so fabric and SSD publish into it too.
	Metrics *metrics.Registry

	// PoolStalls counts paging operations that had to wait out a
	// memory-controller outage.
	PoolStalls int64

	// ShardStats aggregates per-shard fault-domain activity (failover
	// reads, re-sync replays, no-replica stalls) on multi-shard pools,
	// indexed by shard. Nil on single-shard pools.
	ShardStats []ShardStat

	// resync holds, per shard, the journal of pages whose copy on that
	// shard missed a write during an outage or partition; drainHandoff
	// replays it before the shard serves traffic again. Nil on
	// single-shard pools.
	resync []resyncQueue

	// pageVer tags every page's latest committed version and shardVer[s]
	// the version of shard s's copy, so failover reads detect staleness
	// (see shard.go). Pure metadata — reads and writes cost no virtual
	// time. Nil unless the pool is both sharded and replicated.
	pageVer  map[mem.PageID]uint64
	shardVer []map[mem.PageID]uint64

	// handoffDepth counts queued handoff/re-sync records across all
	// shards, mirrored into the "shard.handoff.depth" gauge.
	handoffDepth int64

	spans *trace.Tracer // lazily built over Trace; see Tracer()
}

// NewMachine validates cfg and assembles the machine.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, Times: &metrics.TimeSet{}}
	m.Fabric = netmodel.New(&m.Cfg.HW)
	m.SSD = storage.New(&m.Cfg.HW, mem.PageSize)
	m.Fabric.SetTimes(m.Times)
	m.SSD.SetTimes(m.Times)
	if k := cfg.Shards(); k > 1 {
		m.ShardStats = make([]ShardStat, k)
		m.resync = make([]resyncQueue, k)
		if cfg.EffReplicas() > 1 {
			m.pageVer = make(map[mem.PageID]uint64)
			m.shardVer = make([]map[mem.PageID]uint64, k)
			for s := range m.shardVer {
				m.shardVer[s] = make(map[mem.PageID]uint64)
			}
		}
	}
	return m, nil
}

// MustMachine is NewMachine for known-good configs (presets and tests).
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// AttachTrace installs an event ring on the machine and on the fabric, so
// paging, coherence, pushdown, and fault events interleave in one timeline,
// and builds the span tracer over it so faults, RPCs, SSD accesses, and
// pushdowns record begin/end intervals with parentage.
func (m *Machine) AttachTrace(r *trace.Ring) {
	m.Trace = r
	m.Fabric.SetTrace(r)
	m.spans = trace.NewTracer(r)
	m.Fabric.SetTracer(m.spans)
	m.SSD.SetTracer(m.spans)
}

// Tracer returns the machine's span tracer, building one on demand when a
// test installed a ring on m.Trace directly instead of via AttachTrace. Nil
// when tracing is off (and nil is safe to call Begin/End on).
func (m *Machine) Tracer() *trace.Tracer {
	if m.Trace == nil {
		return nil
	}
	if m.spans == nil || m.spans.Ring() != m.Trace {
		m.spans = trace.NewTracer(m.Trace)
		m.Fabric.SetTracer(m.spans)
		m.SSD.SetTracer(m.spans)
	}
	return m.spans
}

// AttachMetrics installs (or, with nil, detaches) a metrics registry on the
// machine and on the layers that publish into one.
func (m *Machine) AttachMetrics(reg *metrics.Registry) {
	m.Metrics = reg
	m.Fabric.SetMetrics(reg)
	m.SSD.SetMetrics(reg)
}

// AttachFault installs a chaos plan on every layer of the machine: the
// fabric retransmits lost messages, the SSD re-reads failed pages, and the
// TELEPORT runtime (internal/core) observes the crash epochs through
// Machine.Fault. Passing nil detaches everything.
func (m *Machine) AttachFault(p *fault.Plan) {
	m.Fault = p
	if p == nil {
		m.Fabric.SetInjector(nil)
		m.SSD.SetInjector(nil)
		return
	}
	m.Fabric.SetInjector(p)
	m.SSD.SetInjector(p)
}

// CounterSource returns a closure producing a machine-wide named counter
// snapshot: every metrics counter, the chaos plan's injection counters, and
// the machine's own recovery tallies (pool stalls, per-shard failover and
// re-sync activity). The flight recorder (internal/obs) diffs consecutive
// snapshots into per-incident deltas. Reading is passive — it never advances
// a virtual clock — and every key is fixed, so marshalled deltas are
// deterministic.
func (m *Machine) CounterSource() func() map[string]int64 {
	return func() map[string]int64 {
		out := m.Metrics.CounterValues()
		if out == nil {
			out = make(map[string]int64, 16)
		}
		if m.Fault != nil {
			for k, v := range m.Fault.Counters().Map() {
				out[k] = v
			}
		}
		out["pool.stalls"] = m.PoolStalls
		tot := m.Fabric.Total()
		out["fabric.retries"] = tot.Retries
		out["fabric.drops"] = tot.Drops
		out["ssd.read-retries"] = m.SSD.Stats().ReadRetries
		for s := range m.ShardStats {
			st := &m.ShardStats[s]
			out[fmt.Sprintf("shard.%d.failover-reads", s)] = st.FailoverReads
			out[fmt.Sprintf("shard.%d.resync-pages", s)] = st.ResyncPages
			out[fmt.Sprintf("shard.%d.stalls", s)] = st.Stalls
			out[fmt.Sprintf("shard.%d.handoff-records", s)] = st.HandoffRecords
			out[fmt.Sprintf("shard.%d.handoff-replays", s)] = st.HandoffReplays
			out[fmt.Sprintf("shard.%d.read-repairs", s)] = st.ReadRepairs
			out[fmt.Sprintf("shard.%d.stale-averted", s)] = st.StaleReadsAverted
			out[fmt.Sprintf("shard.%d.quorum-stalls", s)] = st.QuorumStalls
		}
		out["shard.handoff.queued"] = m.handoffDepth
		return out
	}
}

// WaitPoolUp stalls t through a memory-controller outage: a paging
// operation issued while the controller is crashed blocks until the
// controller restarts (the compute pool has nowhere else to get the page
// from). It reports whether a stall happened.
func (m *Machine) WaitPoolUp(t *sim.Thread) bool {
	recoverAt, down := m.Fault.PoolDownAt(t.Now())
	if !down {
		//lint:allow timecharge healthy-controller probe reads the fault schedule only: zero cost by design
		return false
	}
	m.PoolStalls++
	start := t.Now()
	// Back-to-back windows ([a,b) directly followed by [b,c)) chain: the
	// wake instant of one outage may land inside the next, so re-check
	// until the controller is genuinely up. One stall is counted per call
	// however many windows it spans.
	for down {
		t.AdvanceTo(recoverAt)
		recoverAt, down = m.Fault.PoolDownAt(t.Now())
	}
	m.Times.Add(metrics.CompPoolStall, t.Now()-start)
	m.Metrics.Counter("pool.stall").Inc()
	m.Metrics.Histogram("pool.stall.ns").Observe(t.Now() - start)
	//lint:allow timecharge the stall loop always runs at least once (down holds on entry) and AdvanceTo charges it
	return true
}

// PushHooks is implemented by the TELEPORT runtime (internal/core). While a
// pushdown executes, the compute pool's fault path calls these so the
// coherence protocol can keep the temporary context's page table consistent
// (Figure 9, lines 3–10 and 18–25).
type PushHooks interface {
	// ComputeFaulted runs after the compute pool obtained page p with the
	// given permission via the normal fault path (the memory controller
	// piggybacks the temporary-context invalidation on the fault reply).
	ComputeFaulted(t *sim.Thread, p mem.PageID, write bool)

	// ComputeUpgrade runs when the compute pool holds p read-only and wants
	// write permission; the hook performs the coherence round trip and
	// invalidates the temporary context's copy. It returns once the compute
	// pool may write.
	ComputeUpgrade(t *sim.Thread, p mem.PageID)
}

// Process is a user process whose address space lives in the memory pool.
type Process struct {
	M     *Machine
	Space *mem.Space

	// Cache is the compute pool's local page cache (disaggregated) or the
	// monolithic page cache over the SSD (LocalMemBytes > 0); nil when
	// local memory is unlimited.
	Cache *PageCache

	// PoolRes is the memory pool's DRAM residency in front of the storage
	// pool; nil when the pool is unbounded.
	PoolRes *PageCache

	// Epoch increments whenever residency or permission state changes, so
	// Env fast paths can cache "this page is fine" safely.
	Epoch uint64

	hooks PushHooks

	// Recent fault pages: the controller's sequential-stream detector for
	// prefetching (tracks a few concurrent streams, like the DRAM model).
	faultStreams [4]mem.PageID
	nFaultStream int

	stats ProcStats
}

// ProcStats aggregates per-process paging activity.
type ProcStats struct {
	CacheHits      int64
	CacheMisses    int64
	RemoteFaults   int64 // pages demand-fetched from the memory pool
	Prefetched     int64
	Writebacks     int64 // dirty evictions written back over the fabric
	StorageInFault int64 // memory pool pages faulted in from storage
	StorageEvicts  int64
	SSDFaults      int64 // monolithic swap-ins
	Upgrades       int64 // read→write permission upgrades
}

// NewProcess creates a process on m with an empty address space.
func (m *Machine) NewProcess() *Process {
	p := &Process{M: m, Space: mem.NewSpace()}
	switch {
	case m.Cfg.Disaggregated:
		p.Cache = NewPageCache(m.Cfg.CachePages())
		if m.Cfg.MemoryPoolBytes > 0 {
			p.PoolRes = NewPageCache(int(m.Cfg.MemoryPoolBytes / mem.PageSize))
		}
	case m.Cfg.LocalMemBytes > 0:
		p.Cache = NewPageCache(int(m.Cfg.LocalMemBytes / mem.PageSize))
	}
	return p
}

// SetPushHooks installs (or clears, with nil) the TELEPORT coherence hooks.
func (p *Process) SetPushHooks(h PushHooks) {
	p.hooks = h
	p.Epoch++
}

// Hooks returns the installed coherence hooks, if any.
func (p *Process) Hooks() PushHooks { return p.hooks }

// Stats returns the accumulated paging statistics.
func (p *Process) Stats() ProcStats { return p.stats }

// ResetStats clears the paging statistics (used between experiment phases).
func (p *Process) ResetStats() { p.stats = ProcStats{} }

// seqFault reports whether pg directly extends one of the recent fault
// streams (prefetch trigger). Prefetched pages themselves extend the stream
// (pg matching stream+k for the prefetch window still counts via noteFault
// updates on demand faults only).
func (p *Process) seqFault(pg mem.PageID) bool {
	for i := 0; i < p.nFaultStream; i++ {
		d := int64(pg) - int64(p.faultStreams[i])
		if d >= 1 && d <= 8 {
			return true
		}
	}
	return false
}

// noteFault records a demand fault in the stream tracker.
func (p *Process) noteFault(pg mem.PageID) {
	for i := 0; i < p.nFaultStream; i++ {
		d := int64(pg) - int64(p.faultStreams[i])
		if d >= 0 && d <= 8 {
			p.faultStreams[i] = pg
			return
		}
	}
	if p.nFaultStream < len(p.faultStreams) {
		p.faultStreams[p.nFaultStream] = pg
		p.nFaultStream++
		return
	}
	copy(p.faultStreams[:], p.faultStreams[1:])
	p.faultStreams[len(p.faultStreams)-1] = pg
}

// ResizeCache rebounds the compute-local cache (or the monolithic page
// cache) to the given byte budget, typically after loading a dataset so a
// platform's cache is a fixed fraction of the working set. It is a no-op on
// machines with unlimited local memory.
func (p *Process) ResizeCache(bytes int64) {
	if p.Cache == nil {
		return
	}
	pages := int(bytes / mem.PageSize)
	if pages < 1 {
		pages = 1
	}
	p.Cache.SetCapacity(pages)
	if p.M.Cfg.Disaggregated {
		p.M.Cfg.ComputeCacheBytes = int64(pages) * mem.PageSize
	} else {
		p.M.Cfg.LocalMemBytes = int64(pages) * mem.PageSize
	}
	p.Epoch++
}

// ResizePool rebounds the memory pool's DRAM (Figure 15's sweep).
func (p *Process) ResizePool(bytes int64) {
	if !p.M.Cfg.Disaggregated {
		return
	}
	pages := int(bytes / mem.PageSize)
	if pages < 1 {
		pages = 1
	}
	if p.PoolRes == nil {
		p.PoolRes = NewPageCache(pages)
	} else {
		p.PoolRes.SetCapacity(pages)
	}
	p.M.Cfg.MemoryPoolBytes = int64(pages) * mem.PageSize
	p.Epoch++
}

// EnsureInPool makes page pg resident in the memory pool's DRAM, paging it
// in from the storage pool if necessary and charging t for the I/O. Write
// marks the pool copy dirty (it will need a storage write-back on eviction).
func (p *Process) EnsureInPool(t *sim.Thread, pg mem.PageID, write bool) {
	p.ensureInPool(t, pg, write, -1)
	//lint:allow timecharge delegates to ensureInPool: every pool-miss path charges, DRAM hits are free by design
}

// ensureInPool is EnsureInPool with optional pre-routing: served ≥ 0 means
// the caller already routed this logical access through AccessPage (a remote
// fault routes once for its whole compute→pool→storage chain), so the
// pool-miss path reuses that shard instead of routing — and counting a
// failover — a second time for the same read. The whole-controller outage
// stall still applies either way: the storage fault needs the controller up.
func (p *Process) ensureInPool(t *sim.Thread, pg mem.PageID, write bool, served int) {
	if p.PoolRes == nil {
		return // unbounded pool is always resident: there is no fault to charge
	}
	if _, _, ok := p.PoolRes.Lookup(pg); ok {
		if write {
			p.PoolRes.MarkDirty(pg)
		}
		return // pool DRAM hit is free by design: only faults charge I/O
	}
	// Recursive fault to the storage pool (§2.1): controller message plus
	// the device access. A crashed controller stalls the fault until it
	// restarts; on a sharded pool the fault is served by the page's shard,
	// failing over to a live replica during the shard's outage.
	if served < 0 {
		served = p.M.AccessPage(t, pg, write)
	} else {
		p.M.WaitPoolUp(t)
	}
	p.stats.StorageInFault++
	sp := p.M.Tracer().Begin(t, trace.KindStorageFault, uint64(pg), b2i(write))
	p.M.Fabric.RoundTrip(t, faultReqBytes, pageRespBytes, netmodel.ClassStorage)
	hs := t.Now()
	t.AdvanceNs(p.M.Cfg.HW.FaultHandleNs)
	p.M.Times.Add(metrics.CompFaultSW, t.Now()-hs)
	p.M.SSD.ReadPage(t, uint64(pg))
	for _, v := range p.PoolRes.Insert(pg, true, write) {
		p.stats.StorageEvicts++
		if v.Dirty {
			p.M.Fabric.Send(t, writebackBytes, netmodel.ClassStorage)
			p.M.SSD.WritePage(t, uint64(v.Page))
		}
	}
	p.M.ReplicatePage(t, pg, served)
	p.M.Tracer().End(t, sp)
	p.M.Metrics.Counter("fault.storage").Inc()
	p.Epoch++
}

// WritebackPage models the compute pool flushing one dirty page to the
// memory pool (eviction write-back, syncmem, eager sync).
func (p *Process) WritebackPage(t *sim.Thread, pg mem.PageID) {
	served := p.M.AccessPage(t, pg, true)
	p.stats.Writebacks++
	sp := p.M.Tracer().Begin(t, trace.KindWriteback, uint64(pg), 0)
	p.M.Fabric.Send(t, writebackBytes, netmodel.ClassWriteback)
	p.M.Tracer().End(t, sp)
	p.M.Metrics.Counter("writeback").Inc()
	p.M.ReplicatePage(t, pg, served)
	p.Cache.ClearDirty(pg)
	p.Epoch++
}
