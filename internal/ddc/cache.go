package ddc

import "teleport/internal/mem"

// PageCache is an LRU set of resident pages with per-page permission and
// dirty bits. It serves three roles, configured by capacity:
//   - the compute pool's local cache (the DDC's "compute-local memory"),
//   - a monolithic server's page cache over its swap device,
//   - the memory pool's DRAM residency in front of the storage pool.
//
// It tracks state and cost-relevant bits only; page contents stay in the
// process's ground-truth mem.Space.
type PageCache struct {
	capacity int // in pages; 0 = unlimited
	// nodes is page-indexed (the address space is dense, so direct indexing
	// beats a hash map on the per-access lookup path); count tracks the
	// resident population.
	nodes []*cacheNode
	count int
	head  *cacheNode // most recently used
	tail  *cacheNode // least recently used
}

type cacheNode struct {
	page       mem.PageID
	writable   bool
	dirty      bool
	prev, next *cacheNode
}

// Evicted describes a page pushed out by an insertion.
type Evicted struct {
	Page  mem.PageID
	Dirty bool
}

// NewPageCache returns a cache bounded to capPages pages (0 = unlimited).
func NewPageCache(capPages int) *PageCache {
	return &PageCache{capacity: capPages}
}

// node returns the resident node for p, or nil.
func (c *PageCache) node(p mem.PageID) *cacheNode {
	if p < mem.PageID(len(c.nodes)) {
		return c.nodes[p]
	}
	return nil
}

// setNode installs n as page p's node, growing the table as needed.
func (c *PageCache) setNode(p mem.PageID, n *cacheNode) {
	if p >= mem.PageID(len(c.nodes)) {
		size := int(p) + 1
		if d := 2 * len(c.nodes); d > size {
			size = d
		}
		grown := make([]*cacheNode, size)
		copy(grown, c.nodes)
		c.nodes = grown
	}
	c.nodes[p] = n
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return c.count }

// Capacity returns the page bound (0 = unlimited).
func (c *PageCache) Capacity() int { return c.capacity }

// Contains reports residency without touching LRU order.
func (c *PageCache) Contains(p mem.PageID) bool {
	return c.node(p) != nil
}

// Lookup returns the page's permission bits and bumps it to MRU.
func (c *PageCache) Lookup(p mem.PageID) (writable, dirty, ok bool) {
	n := c.node(p)
	if n == nil {
		return false, false, false
	}
	c.moveToFront(n)
	return n.writable, n.dirty, true
}

// Insert adds (or refreshes) a page with the given bits and returns any
// evicted victims. Inserting an existing page overwrites its bits.
func (c *PageCache) Insert(p mem.PageID, writable, dirty bool) []Evicted {
	if n := c.node(p); n != nil {
		n.writable, n.dirty = writable, dirty
		c.moveToFront(n)
		return nil
	}
	n := &cacheNode{page: p, writable: writable, dirty: dirty}
	c.setNode(p, n)
	c.count++
	c.pushFront(n)
	var out []Evicted
	for c.capacity > 0 && c.count > c.capacity {
		v := c.tail
		c.unlink(v)
		c.nodes[v.page] = nil
		c.count--
		out = append(out, Evicted{Page: v.page, Dirty: v.dirty})
	}
	return out
}

// Remove evicts a specific page (e.g. a coherence invalidation), returning
// its dirty bit.
func (c *PageCache) Remove(p mem.PageID) (dirty, ok bool) {
	n := c.node(p)
	if n == nil {
		return false, false
	}
	c.unlink(n)
	c.nodes[p] = nil
	c.count--
	return n.dirty, true
}

// SetWritable updates the page's write permission (coherence downgrade or
// upgrade); it reports whether the page was resident.
func (c *PageCache) SetWritable(p mem.PageID, w bool) bool {
	n := c.node(p)
	if n == nil {
		return false
	}
	n.writable = w
	return true
}

// MarkDirty sets the dirty bit; it reports whether the page was resident.
func (c *PageCache) MarkDirty(p mem.PageID) bool {
	n := c.node(p)
	if n == nil {
		return false
	}
	n.dirty = true
	return true
}

// ClearDirty resets the dirty bit (after a write-back / sync).
func (c *PageCache) ClearDirty(p mem.PageID) {
	if n := c.node(p); n != nil {
		n.dirty = false
	}
}

// Range calls f for every resident page from MRU to LRU until f returns
// false. f must not mutate the cache.
func (c *PageCache) Range(f func(p mem.PageID, writable, dirty bool) bool) {
	for n := c.head; n != nil; n = n.next {
		if !f(n.page, n.writable, n.dirty) {
			return
		}
	}
}

// SetCapacity rebounds the cache, evicting LRU pages if it shrinks below
// its current population. It returns the evicted pages so callers can
// account for write-backs. Used to size a platform's cache to a freshly
// loaded working set.
func (c *PageCache) SetCapacity(pages int) []Evicted {
	c.capacity = pages
	var out []Evicted
	for c.capacity > 0 && c.count > c.capacity {
		v := c.tail
		c.unlink(v)
		c.nodes[v.page] = nil
		c.count--
		out = append(out, Evicted{Page: v.page, Dirty: v.dirty})
	}
	return out
}

// Clear drops every resident page (whole-cache invalidation, used by the
// naive process-migration mode of Figure 6).
func (c *PageCache) Clear() {
	c.nodes = nil
	c.count = 0
	c.head, c.tail = nil, nil
}

func (c *PageCache) pushFront(n *cacheNode) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *PageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *PageCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
