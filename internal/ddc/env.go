package ddc

import (
	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Place says which resource pool a simulated thread is executing in.
type Place int

// Execution places.
const (
	PlaceCompute Place = iota
	PlaceMemory
)

// String names the place.
func (p Place) String() string {
	if p == PlaceMemory {
		return "memory"
	}
	return "compute"
}

// Pager services accesses that need residency or permission work. The
// default pager implements the monolithic and base-DDC compute-pool paths;
// internal/core installs a memory-place pager for pushdown execution.
type Pager interface {
	EnsurePage(e *Env, page mem.PageID, write bool)
}

// Env is the execution environment of one simulated thread inside one
// process: it knows where the thread runs, at what clock, and routes every
// data access through the paging and cost models. Application code (the
// DBMS, graph engine, MapReduce) performs all reads/writes through an Env.
type Env struct {
	T     *sim.Thread
	P     *Process
	Place Place

	// ClockGHz is the executing CPU's clock; Dilation (optional) scales CPU
	// cost up when user contexts outnumber memory-pool cores (§7.3).
	ClockGHz float64
	Dilation func() float64

	pager Pager

	// Single-page fast path: valid while nothing in the process mutated.
	fpValid bool
	fpWrite bool
	fpPage  mem.PageID
	fpEpoch uint64

	// DRAM line model state: a small set of hardware-prefetch streams,
	// so interleaved sequential accesses (scan a column, append to an
	// output) each stream at full bandwidth like a real prefetcher, plus a
	// direct-mapped on-chip cache so hot small structures (group tables,
	// dimension indexes) do not pay DRAM latency per access.
	streams [dramStreams]uint64
	nStream int
	sClock  int
	l2      []uint64

	// Access counters (per env, i.e. per simulated thread).
	reads, writes int64
}

// NewEnv returns a compute-place environment for t.
func (p *Process) NewEnv(t *sim.Thread) *Env {
	return &Env{
		T: t, P: p, Place: PlaceCompute,
		ClockGHz: p.M.Cfg.HW.ComputeClockGHz,
		pager:    computePager{},
	}
}

// NewMemoryEnv returns a memory-place environment using a caller-supplied
// pager (TELEPORT's temporary-context fault handler).
func (p *Process) NewMemoryEnv(t *sim.Thread, pager Pager) *Env {
	return &Env{
		T: t, P: p, Place: PlaceMemory,
		ClockGHz: p.M.Cfg.HW.MemoryClockGHz,
		pager:    pager,
	}
}

// Accesses returns the environment's read and write access counts.
func (e *Env) Accesses() (reads, writes int64) { return e.reads, e.writes }

// Compute charges n abstract CPU operations at the environment's clock,
// scaled by the dilation factor if one is installed.
func (e *Env) Compute(n float64) {
	ns := hw.OpNs(e.ClockGHz, n)
	if e.Dilation != nil {
		ns *= e.Dilation()
	}
	e.T.AdvanceNs(ns)
}

// touch runs the paging state machine and charges DRAM cost for an access
// of n bytes at addr.
func (e *Env) touch(addr mem.Addr, n int, write bool) {
	if write {
		e.writes++
	} else {
		e.reads++
	}
	first, last := mem.PageSpan(addr, n)
	if first == last && e.fpValid && first == e.fpPage && e.fpEpoch == e.P.Epoch &&
		(!write || e.fpWrite) {
		e.chargeDRAM(addr, n)
		return
	}
	for pg := first; pg <= last; pg++ {
		e.pager.EnsurePage(e, pg, write)
	}
	e.fpValid, e.fpPage, e.fpWrite, e.fpEpoch = true, last, write, e.P.Epoch
	e.chargeDRAM(addr, n)
}

// InvalidateFastPath drops the env's cached page state; the coherence layer
// calls this indirectly by bumping the process epoch.
func (e *Env) InvalidateFastPath() { e.fpValid = false }

// dramStreams is the number of concurrent hardware-prefetch streams the
// DRAM model tracks per thread (real cores track 8–32).
const dramStreams = 8

// chargeDRAM implements the line-granular DRAM model: a line that sits in
// or directly after one of the thread's active access streams is served at
// streaming bandwidth (the hardware prefetcher); anything else pays a full
// random DRAM access and starts a new stream.
func (e *Env) chargeDRAM(addr mem.Addr, n int) {
	cfg := &e.P.M.Cfg.HW
	lb := uint64(cfg.DRAMLineBytes)
	firstLine := uint64(addr) / lb
	lastLine := (uint64(addr) + uint64(n) - 1) / lb
	if e.l2 == nil && cfg.CacheLines > 0 {
		e.l2 = make([]uint64, cfg.CacheLines)
	}
	mask := uint64(len(e.l2) - 1)
	var ns float64
lines:
	for l := firstLine; l <= lastLine; l++ {
		for i := 0; i < e.nStream; i++ {
			switch e.streams[i] {
			case l:
				continue lines // still in this line: effectively L1
			case l - 1:
				ns += cfg.DRAMSeqLineNs
				e.streams[i] = l
				if e.l2 != nil {
					e.l2[l&mask] = l
				}
				continue lines
			}
		}
		// Not on a stream: an on-chip cache hit if the line was touched
		// recently, a full DRAM access otherwise; either way a new stream
		// starts (replace round-robin).
		if e.l2 != nil && e.l2[l&mask] == l {
			ns += cfg.CacheHitNs
		} else {
			ns += cfg.DRAMRandNs
			if e.l2 != nil {
				e.l2[l&mask] = l
			}
		}
		if e.nStream < dramStreams {
			e.streams[e.nStream] = l
			e.nStream++
		} else {
			e.streams[e.sClock] = l
			e.sClock = (e.sClock + 1) % dramStreams
		}
	}
	if ns > 0 {
		if e.Dilation != nil {
			ns *= e.Dilation()
		}
		e.T.AdvanceNs(ns)
	}
}

// ReadU64 reads a uint64 through the paging model.
func (e *Env) ReadU64(a mem.Addr) uint64 {
	e.touch(a, 8, false)
	return e.P.Space.ReadU64(a)
}

// WriteU64 writes a uint64 through the paging model.
func (e *Env) WriteU64(a mem.Addr, v uint64) {
	e.touch(a, 8, true)
	e.P.Space.WriteU64(a, v)
}

// ReadI64 reads an int64.
func (e *Env) ReadI64(a mem.Addr) int64 { return int64(e.ReadU64(a)) }

// WriteI64 writes an int64.
func (e *Env) WriteI64(a mem.Addr, v int64) { e.WriteU64(a, uint64(v)) }

// ReadF64 reads a float64.
func (e *Env) ReadF64(a mem.Addr) float64 {
	e.touch(a, 8, false)
	return e.P.Space.ReadF64(a)
}

// WriteF64 writes a float64.
func (e *Env) WriteF64(a mem.Addr, v float64) {
	e.touch(a, 8, true)
	e.P.Space.WriteF64(a, v)
}

// ReadU32 reads a uint32.
func (e *Env) ReadU32(a mem.Addr) uint32 {
	e.touch(a, 4, false)
	return e.P.Space.ReadU32(a)
}

// WriteU32 writes a uint32.
func (e *Env) WriteU32(a mem.Addr, v uint32) {
	e.touch(a, 4, true)
	e.P.Space.WriteU32(a, v)
}

// ReadI32 reads an int32.
func (e *Env) ReadI32(a mem.Addr) int32 { return int32(e.ReadU32(a)) }

// WriteI32 writes an int32.
func (e *Env) WriteI32(a mem.Addr, v int32) { e.WriteU32(a, uint32(v)) }

// ReadU8 reads one byte.
func (e *Env) ReadU8(a mem.Addr) byte {
	e.touch(a, 1, false)
	return e.P.Space.ReadU8(a)
}

// WriteU8 writes one byte.
func (e *Env) WriteU8(a mem.Addr, v byte) {
	e.touch(a, 1, true)
	e.P.Space.WriteU8(a, v)
}

// ReadBytes copies n bytes at a into buf (len(buf) == n).
func (e *Env) ReadBytes(a mem.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	e.touch(a, len(buf), false)
	e.P.Space.ReadAt(a, buf)
}

// WriteBytes copies buf into the space at a.
func (e *Env) WriteBytes(a mem.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	e.touch(a, len(buf), true)
	e.P.Space.WriteAt(a, buf)
}

// computePager implements the monolithic and base-DDC compute-place paths.
type computePager struct{}

func (computePager) EnsurePage(e *Env, pg mem.PageID, write bool) {
	p := e.P
	if !p.M.Cfg.Disaggregated {
		ensureLocal(e, pg, write)
		return
	}
	if w, _, ok := p.Cache.Lookup(pg); ok {
		p.stats.CacheHits++
		if write {
			if !w {
				upgradeWrite(e, pg)
			}
			p.Cache.MarkDirty(pg)
		}
		return
	}
	p.stats.CacheMisses++
	remoteFault(e, pg, write)
}

// ensureLocal is the monolithic path: free when DRAM is unlimited,
// otherwise an OS page cache over the local SSD.
func ensureLocal(e *Env, pg mem.PageID, write bool) {
	p := e.P
	if p.Cache == nil {
		return
	}
	if _, _, ok := p.Cache.Lookup(pg); ok {
		p.stats.CacheHits++
		if write {
			p.Cache.MarkDirty(pg)
		}
		return
	}
	p.stats.CacheMisses++
	p.stats.SSDFaults++
	hs := e.T.Now()
	e.T.AdvanceNs(p.M.Cfg.HW.FaultHandleNs)
	p.M.Times.Add(metrics.CompFaultSW, e.T.Now()-hs)
	p.M.Metrics.Counter("fault.ssd").Inc()
	p.M.SSD.ReadPage(e.T, uint64(pg))
	for _, v := range p.Cache.Insert(pg, true, write) {
		if v.Dirty {
			p.M.SSD.WritePage(e.T, uint64(v.Page))
		}
	}
	p.Epoch++
}

// upgradeWrite grants the compute pool write permission on a page it holds
// read-only. Outside pushdown the compute pool is the only writer, so the
// upgrade is a local page-table operation; during pushdown the TELEPORT
// hooks perform the coherence round trip (Figure 9, (R,R) → (W,∅)).
func upgradeWrite(e *Env, pg mem.PageID) {
	p := e.P
	p.stats.Upgrades++
	p.M.Metrics.Counter("upgrade").Inc()
	if p.hooks != nil {
		p.hooks.ComputeUpgrade(e.T, pg)
	}
	p.Cache.SetWritable(pg, true)
	p.Epoch++
}

// remoteFault pages pg in from the memory pool (§2.1's fault path),
// applying the pushdown hook and the base-DDC sequential prefetch.
func remoteFault(e *Env, pg mem.PageID, write bool) {
	p := e.P
	cfg := &p.M.Cfg.HW
	// A remote fault issued during a memory-controller outage has nowhere
	// to go: the compute pool stalls until the controller restarts.
	p.M.WaitPoolUp(e.T)
	p.stats.RemoteFaults++
	fstart := e.T.Now()
	sp := p.M.Tracer().Begin(e.T, trace.KindRemoteFault, uint64(pg), b2i(write))
	p.M.Fabric.RoundTrip(e.T, faultReqBytes, pageRespBytes, netmodel.ClassPageFault)
	hs := e.T.Now()
	e.T.AdvanceNs(cfg.FaultHandleNs)
	p.M.Times.Add(metrics.CompFaultSW, e.T.Now()-hs)
	p.EnsureInPool(e.T, pg, write)
	if p.hooks != nil {
		p.hooks.ComputeFaulted(e.T, pg, write)
	}
	evictAll(e, p.Cache.Insert(pg, write, write))

	// Sequential prefetch (base DDC only; suppressed during pushdown, when
	// the coherence protocol owns the page tables). The controller tracks
	// a few fault streams so interleaved scans still prefetch.
	depth := p.M.Cfg.PrefetchDepth
	if depth > 0 && p.hooks == nil && p.seqFault(pg) {
		_, last, ok := p.Space.Extent()
		for i := 1; i <= depth; i++ {
			next := pg + mem.PageID(i)
			if !ok || next > last || p.Cache.Contains(next) {
				break
			}
			if p.PoolRes != nil && !p.PoolRes.Contains(next) {
				break // don't drag the storage pool into a prefetch
			}
			p.stats.Prefetched++
			ps := e.T.Now()
			e.T.AdvanceNs(float64(mem.PageSize) / cfg.NetBandwidthGBs)
			p.M.Times.Add(metrics.CompPrefetch, e.T.Now()-ps)
			p.M.Metrics.Counter("prefetch").Inc()
			evictAll(e, p.Cache.Insert(next, false, false))
		}
	}
	p.M.Tracer().End(e.T, sp)
	p.M.Metrics.Counter("fault.remote").Inc()
	p.M.Metrics.Histogram("fault.remote.ns").Observe(e.T.Now() - fstart)
	p.noteFault(pg)
	p.Epoch++
}

// evictAll charges write-backs for dirty victims.
func evictAll(e *Env, victims []Evicted) {
	for _, v := range victims {
		e.P.M.Trace.Add(trace.Event{At: e.T.Now(), Kind: trace.KindEviction, Page: uint64(v.Page), Arg: b2i(v.Dirty), Who: e.T.Name()})
		e.P.M.Metrics.Counter("eviction").Inc()
		if v.Dirty {
			e.P.stats.Writebacks++
			e.P.M.Fabric.Send(e.T, writebackBytes, netmodel.ClassWriteback)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
