package ddc

import (
	"encoding/binary"
	"math"
	"math/bits"

	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Place says which resource pool a simulated thread is executing in.
type Place int

// Execution places.
const (
	PlaceCompute Place = iota
	PlaceMemory
)

// String names the place.
func (p Place) String() string {
	if p == PlaceMemory {
		return "memory"
	}
	return "compute"
}

// Pager services accesses that need residency or permission work. The
// default pager implements the monolithic and base-DDC compute-pool paths;
// internal/core installs a memory-place pager for pushdown execution.
type Pager interface {
	EnsurePage(e *Env, page mem.PageID, write bool)
}

// Env is the execution environment of one simulated thread inside one
// process: it knows where the thread runs, at what clock, and routes every
// data access through the paging and cost models. Application code (the
// DBMS, graph engine, MapReduce) performs all reads/writes through an Env.
type Env struct {
	T     *sim.Thread
	P     *Process
	Place Place

	// ClockGHz is the executing CPU's clock; Dilation (optional) scales CPU
	// cost up when user contexts outnumber memory-pool cores (§7.3).
	ClockGHz float64
	Dilation func() float64

	pager Pager

	// Single-page fast path: valid while nothing in the process mutated.
	fpValid bool
	fpWrite bool
	fpPage  mem.PageID
	fpEpoch uint64

	// Hot-line memo (the per-thread one-entry software TLB): the DRAM line
	// the last touch ended on, plus a zero-copy borrow of its page frame.
	// A repeat access entirely inside this line, with the process epoch
	// unchanged, is provably free under the models — the fp fast path skips
	// the pager and chargeDRAM serves an in-stream line at zero cost with
	// no state mutation — so the accessors decode straight from the frame.
	// Validity: hot* is (re)anchored by every touch, hotValid implies
	// fpValid with the same page and write grade, and the epoch check
	// catches every pager/coherence event (eviction, rollback, upgrade),
	// exactly as it does for the fp fast path.
	hotValid  bool
	hotWrite  bool
	hotLine   uint64
	hotPage   mem.PageID
	hotFrame  []byte // fetched lazily on first hit; nil until then
	lineB     uint64 // cached HW.DRAMLineBytes
	lineShift uint8  // log2(lineB) when it is a power of two, else 255

	// DRAM line model state: a small set of hardware-prefetch streams,
	// so interleaved sequential accesses (scan a column, append to an
	// output) each stream at full bandwidth like a real prefetcher, plus a
	// direct-mapped on-chip cache so hot small structures (group tables,
	// dimension indexes) do not pay DRAM latency per access.
	streams [dramStreams]uint64
	nStream int
	sClock  int
	l2      []uint64

	// Access counters (per env, i.e. per simulated thread).
	reads, writes int64
}

// NewEnv returns a compute-place environment for t.
func (p *Process) NewEnv(t *sim.Thread) *Env {
	e := &Env{
		T: t, P: p, Place: PlaceCompute,
		ClockGHz: p.M.Cfg.HW.ComputeClockGHz,
		pager:    computePager{},
	}
	e.initLine()
	return e
}

// NewMemoryEnv returns a memory-place environment using a caller-supplied
// pager (TELEPORT's temporary-context fault handler).
func (p *Process) NewMemoryEnv(t *sim.Thread, pager Pager) *Env {
	e := &Env{
		T: t, P: p, Place: PlaceMemory,
		ClockGHz: p.M.Cfg.HW.MemoryClockGHz,
		pager:    pager,
	}
	e.initLine()
	return e
}

// initLine caches the DRAM line geometry (a shift when the configured line
// size is a power of two, which it always is on the shipped configs).
func (e *Env) initLine() {
	e.lineB = uint64(e.P.M.Cfg.HW.DRAMLineBytes)
	e.lineShift = 255
	if e.lineB > 0 && e.lineB&(e.lineB-1) == 0 {
		e.lineShift = uint8(bits.TrailingZeros64(e.lineB))
	}
}

// lineOf maps an address to its DRAM line index.
func (e *Env) lineOf(x uint64) uint64 {
	if e.lineShift != 255 {
		return x >> e.lineShift
	}
	return x / e.lineB
}

// Accesses returns the environment's read and write access counts.
func (e *Env) Accesses() (reads, writes int64) { return e.reads, e.writes }

// Compute charges n abstract CPU operations at the environment's clock,
// scaled by the dilation factor if one is installed.
func (e *Env) Compute(n float64) {
	ns := hw.OpNs(e.ClockGHz, n)
	if e.Dilation != nil {
		ns *= e.Dilation()
	}
	e.T.AdvanceNs(ns)
}

// touch runs the paging state machine and charges DRAM cost for an access
// of n bytes at addr.
func (e *Env) touch(addr mem.Addr, n int, write bool) {
	if write {
		e.writes++
	} else {
		e.reads++
	}
	first, last := mem.PageSpan(addr, n)
	if first == last && e.fpValid && first == e.fpPage && e.fpEpoch == e.P.Epoch &&
		(!write || e.fpWrite) {
		e.chargeDRAM(addr, n, first, first == last)
		return
	}
	for pg := first; pg <= last; pg++ {
		e.pager.EnsurePage(e, pg, write)
	}
	e.fpValid, e.fpPage, e.fpWrite, e.fpEpoch = true, last, write, e.P.Epoch
	e.chargeDRAM(addr, n, first, first == last)
}

// hotR returns the frame bytes at a when a read of n bytes falls entirely
// inside the hot line with the epoch unchanged (then the access is free and
// mutation-free by construction; only the read counter advances).
func (e *Env) hotR(a mem.Addr, n int) ([]byte, bool) {
	if !e.hotValid || e.fpEpoch != e.P.Epoch {
		return nil, false
	}
	if e.lineOf(uint64(a)) != e.hotLine || e.lineOf(uint64(a)+uint64(n)-1) != e.hotLine {
		return nil, false
	}
	if e.hotFrame == nil {
		e.hotFrame = e.P.Space.Frame(e.hotPage)
	}
	e.reads++
	return e.hotFrame[a&(mem.PageSize-1):], true
}

// hotW is hotR for writes: additionally requires the page was anchored with
// write permission (mirroring the fp fast path's fpWrite condition).
func (e *Env) hotW(a mem.Addr, n int) ([]byte, bool) {
	if !e.hotValid || !e.hotWrite || e.fpEpoch != e.P.Epoch {
		return nil, false
	}
	if e.lineOf(uint64(a)) != e.hotLine || e.lineOf(uint64(a)+uint64(n)-1) != e.hotLine {
		return nil, false
	}
	if e.hotFrame == nil {
		e.hotFrame = e.P.Space.Frame(e.hotPage)
	}
	e.writes++
	return e.hotFrame[a&(mem.PageSize-1):], true
}

// InvalidateFastPath drops the env's cached page state; the coherence layer
// calls this indirectly by bumping the process epoch.
func (e *Env) InvalidateFastPath() {
	e.fpValid = false
	e.hotValid = false
}

// dramStreams is the number of concurrent hardware-prefetch streams the
// DRAM model tracks per thread (real cores track 8–32).
const dramStreams = 8

// chargeDRAM implements the line-granular DRAM model: a line that sits in
// or directly after one of the thread's active access streams is served at
// streaming bandwidth (the hardware prefetcher); anything else pays a full
// random DRAM access and starts a new stream.
//
// It also (re)anchors the hot-line memo: its last line always ends up on an
// active prefetch stream, so a repeat access inside that line would charge
// zero and mutate nothing — the condition the hot-path accessors exploit.
// Multi-page accesses don't anchor (the fp page and the line's page must
// agree).
func (e *Env) chargeDRAM(addr mem.Addr, n int, pg mem.PageID, single bool) {
	cfg := &e.P.M.Cfg.HW
	firstLine := e.lineOf(uint64(addr))
	lastLine := e.lineOf(uint64(addr) + uint64(n) - 1)
	if single {
		e.hotValid = true
		e.hotLine = lastLine
		e.hotWrite = e.fpWrite
		if pg != e.hotPage {
			// Defer the frame borrow to the first hit: loops that never
			// repeat a line pay nothing for the memo. Frame identities are
			// stable, so a same-page re-anchor keeps the borrowed slice.
			e.hotPage, e.hotFrame = pg, nil
		}
	} else {
		e.hotValid = false
	}
	if e.l2 == nil && cfg.CacheLines > 0 {
		e.l2 = make([]uint64, cfg.CacheLines)
	}
	mask := uint64(len(e.l2) - 1)
	var ns float64
lines:
	for l := firstLine; l <= lastLine; l++ {
		for i := 0; i < e.nStream; i++ {
			switch e.streams[i] {
			case l:
				continue lines // still in this line: effectively L1
			case l - 1:
				ns += cfg.DRAMSeqLineNs
				e.streams[i] = l
				if e.l2 != nil {
					e.l2[l&mask] = l
				}
				continue lines
			}
		}
		// Not on a stream: an on-chip cache hit if the line was touched
		// recently, a full DRAM access otherwise; either way a new stream
		// starts (replace round-robin).
		if e.l2 != nil && e.l2[l&mask] == l {
			ns += cfg.CacheHitNs
		} else {
			ns += cfg.DRAMRandNs
			if e.l2 != nil {
				e.l2[l&mask] = l
			}
		}
		if e.nStream < dramStreams {
			e.streams[e.nStream] = l
			e.nStream++
		} else {
			e.streams[e.sClock] = l
			e.sClock = (e.sClock + 1) % dramStreams
		}
	}
	if ns > 0 {
		if e.Dilation != nil {
			ns *= e.Dilation()
		}
		e.T.AdvanceNs(ns)
	}
}

// ReadU64 reads a uint64 through the paging model.
func (e *Env) ReadU64(a mem.Addr) uint64 {
	if b, ok := e.hotR(a, 8); ok {
		return binary.LittleEndian.Uint64(b)
	}
	e.touch(a, 8, false)
	return e.P.Space.ReadU64(a)
}

// WriteU64 writes a uint64 through the paging model.
func (e *Env) WriteU64(a mem.Addr, v uint64) {
	if b, ok := e.hotW(a, 8); ok {
		binary.LittleEndian.PutUint64(b, v)
		return
	}
	e.touch(a, 8, true)
	e.P.Space.WriteU64(a, v)
}

// ReadI64 reads an int64.
func (e *Env) ReadI64(a mem.Addr) int64 { return int64(e.ReadU64(a)) }

// WriteI64 writes an int64.
func (e *Env) WriteI64(a mem.Addr, v int64) { e.WriteU64(a, uint64(v)) }

// ReadF64 reads a float64.
func (e *Env) ReadF64(a mem.Addr) float64 {
	if b, ok := e.hotR(a, 8); ok {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	e.touch(a, 8, false)
	return e.P.Space.ReadF64(a)
}

// WriteF64 writes a float64.
func (e *Env) WriteF64(a mem.Addr, v float64) {
	if b, ok := e.hotW(a, 8); ok {
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		return
	}
	e.touch(a, 8, true)
	e.P.Space.WriteF64(a, v)
}

// ReadU32 reads a uint32.
func (e *Env) ReadU32(a mem.Addr) uint32 {
	if b, ok := e.hotR(a, 4); ok {
		return binary.LittleEndian.Uint32(b)
	}
	e.touch(a, 4, false)
	return e.P.Space.ReadU32(a)
}

// WriteU32 writes a uint32.
func (e *Env) WriteU32(a mem.Addr, v uint32) {
	if b, ok := e.hotW(a, 4); ok {
		binary.LittleEndian.PutUint32(b, v)
		return
	}
	e.touch(a, 4, true)
	e.P.Space.WriteU32(a, v)
}

// ReadI32 reads an int32.
func (e *Env) ReadI32(a mem.Addr) int32 { return int32(e.ReadU32(a)) }

// WriteI32 writes an int32.
func (e *Env) WriteI32(a mem.Addr, v int32) { e.WriteU32(a, uint32(v)) }

// ReadU8 reads one byte.
func (e *Env) ReadU8(a mem.Addr) byte {
	if b, ok := e.hotR(a, 1); ok {
		return b[0]
	}
	e.touch(a, 1, false)
	return e.P.Space.ReadU8(a)
}

// WriteU8 writes one byte.
func (e *Env) WriteU8(a mem.Addr, v byte) {
	if b, ok := e.hotW(a, 1); ok {
		b[0] = v
		return
	}
	e.touch(a, 1, true)
	e.P.Space.WriteU8(a, v)
}

// ReadU64s reads len(dst) consecutive uint64s starting at a. It is
// element-for-element equivalent to that many ReadU64 calls — the paging
// state machine and DRAM charges run in the identical order — but runs of
// words inside an already-charged hot line decode straight from the
// borrowed frame without re-entering the model.
func (e *Env) ReadU64s(a mem.Addr, dst []uint64) {
	for i := 0; i < len(dst); {
		dst[i] = e.ReadU64(a)
		i++
		a += 8
		if !e.hotValid || e.fpEpoch != e.P.Epoch {
			continue
		}
		// Nothing below advances virtual time, so no yield can run and the
		// epoch cannot change mid-run: one check covers the whole line.
		if e.hotFrame == nil {
			e.hotFrame = e.P.Space.Frame(e.hotPage)
		}
		end := (e.hotLine + 1) * e.lineB
		for i < len(dst) && uint64(a)+8 <= end {
			dst[i] = binary.LittleEndian.Uint64(e.hotFrame[a&(mem.PageSize-1):])
			e.reads++
			i++
			a += 8
		}
	}
}

// WriteU64s writes src as consecutive uint64s starting at a, with the same
// per-element equivalence as ReadU64s.
func (e *Env) WriteU64s(a mem.Addr, src []uint64) {
	for i := 0; i < len(src); {
		e.WriteU64(a, src[i])
		i++
		a += 8
		if !e.hotValid || !e.hotWrite || e.fpEpoch != e.P.Epoch {
			continue
		}
		if e.hotFrame == nil {
			e.hotFrame = e.P.Space.Frame(e.hotPage)
		}
		end := (e.hotLine + 1) * e.lineB
		for i < len(src) && uint64(a)+8 <= end {
			binary.LittleEndian.PutUint64(e.hotFrame[a&(mem.PageSize-1):], src[i])
			e.writes++
			i++
			a += 8
		}
	}
}

// ReadU32s reads len(dst) consecutive uint32s starting at a (per-element
// equivalent to that many ReadU32 calls).
func (e *Env) ReadU32s(a mem.Addr, dst []uint32) {
	for i := 0; i < len(dst); {
		dst[i] = e.ReadU32(a)
		i++
		a += 4
		if !e.hotValid || e.fpEpoch != e.P.Epoch {
			continue
		}
		if e.hotFrame == nil {
			e.hotFrame = e.P.Space.Frame(e.hotPage)
		}
		end := (e.hotLine + 1) * e.lineB
		for i < len(dst) && uint64(a)+4 <= end {
			dst[i] = binary.LittleEndian.Uint32(e.hotFrame[a&(mem.PageSize-1):])
			e.reads++
			i++
			a += 4
		}
	}
}

// WriteU32s writes src as consecutive uint32s starting at a (per-element
// equivalent to that many WriteU32 calls).
func (e *Env) WriteU32s(a mem.Addr, src []uint32) {
	for i := 0; i < len(src); {
		e.WriteU32(a, src[i])
		i++
		a += 4
		if !e.hotValid || !e.hotWrite || e.fpEpoch != e.P.Epoch {
			continue
		}
		if e.hotFrame == nil {
			e.hotFrame = e.P.Space.Frame(e.hotPage)
		}
		end := (e.hotLine + 1) * e.lineB
		for i < len(src) && uint64(a)+4 <= end {
			binary.LittleEndian.PutUint32(e.hotFrame[a&(mem.PageSize-1):], src[i])
			e.writes++
			i++
			a += 4
		}
	}
}

// ReadBytes copies n bytes at a into buf (len(buf) == n).
func (e *Env) ReadBytes(a mem.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	e.touch(a, len(buf), false)
	e.P.Space.ReadAt(a, buf)
}

// WriteBytes copies buf into the space at a.
func (e *Env) WriteBytes(a mem.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	e.touch(a, len(buf), true)
	e.P.Space.WriteAt(a, buf)
}

// computePager implements the monolithic and base-DDC compute-place paths.
type computePager struct{}

func (computePager) EnsurePage(e *Env, pg mem.PageID, write bool) {
	p := e.P
	if !p.M.Cfg.Disaggregated {
		ensureLocal(e, pg, write)
		return
	}
	if w, _, ok := p.Cache.Lookup(pg); ok {
		p.stats.CacheHits++
		if write {
			if !w {
				upgradeWrite(e, pg)
			}
			p.Cache.MarkDirty(pg)
		}
		return
	}
	p.stats.CacheMisses++
	remoteFault(e, pg, write)
}

// ensureLocal is the monolithic path: free when DRAM is unlimited,
// otherwise an OS page cache over the local SSD.
func ensureLocal(e *Env, pg mem.PageID, write bool) {
	p := e.P
	if p.Cache == nil {
		return
	}
	if _, _, ok := p.Cache.Lookup(pg); ok {
		p.stats.CacheHits++
		if write {
			p.Cache.MarkDirty(pg)
		}
		return
	}
	p.stats.CacheMisses++
	p.stats.SSDFaults++
	hs := e.T.Now()
	e.T.AdvanceNs(p.M.Cfg.HW.FaultHandleNs)
	p.M.Times.Add(metrics.CompFaultSW, e.T.Now()-hs)
	p.M.Metrics.Counter("fault.ssd").Inc()
	p.M.SSD.ReadPage(e.T, uint64(pg))
	for _, v := range p.Cache.Insert(pg, true, write) {
		if v.Dirty {
			p.M.SSD.WritePage(e.T, uint64(v.Page))
		}
	}
	p.Epoch++
}

// upgradeWrite grants the compute pool write permission on a page it holds
// read-only. Outside pushdown the compute pool is the only writer, so the
// upgrade is a local page-table operation; during pushdown the TELEPORT
// hooks perform the coherence round trip (Figure 9, (R,R) → (W,∅)).
func upgradeWrite(e *Env, pg mem.PageID) {
	p := e.P
	p.stats.Upgrades++
	p.M.Metrics.Counter("upgrade").Inc()
	if p.hooks != nil {
		p.hooks.ComputeUpgrade(e.T, pg)
	}
	p.Cache.SetWritable(pg, true)
	p.Epoch++
}

// remoteFault pages pg in from the memory pool (§2.1's fault path),
// applying the pushdown hook and the base-DDC sequential prefetch.
func remoteFault(e *Env, pg mem.PageID, write bool) {
	p := e.P
	cfg := &p.M.Cfg.HW
	// A remote fault issued during a memory-controller outage has nowhere
	// to go: the compute pool stalls until the controller restarts. On a
	// sharded pool the fetch instead fails over to a live replica of the
	// page's shard when the primary alone is unusable. The fault is one
	// logical read, so it routes — and, during an outage, counts a
	// failover — exactly once, and the pool-miss leg below reuses the
	// serving shard instead of routing again.
	served := p.M.AccessPage(e.T, pg, write)
	p.stats.RemoteFaults++
	fstart := e.T.Now()
	sp := p.M.Tracer().Begin(e.T, trace.KindRemoteFault, uint64(pg), b2i(write))
	p.M.Fabric.RoundTrip(e.T, faultReqBytes, pageRespBytes, netmodel.ClassPageFault)
	hs := e.T.Now()
	e.T.AdvanceNs(cfg.FaultHandleNs)
	p.M.Times.Add(metrics.CompFaultSW, e.T.Now()-hs)
	p.ensureInPool(e.T, pg, write, served)
	if p.hooks != nil {
		p.hooks.ComputeFaulted(e.T, pg, write)
	}
	evictAll(e, p.Cache.Insert(pg, write, write))

	// Sequential prefetch (base DDC only; suppressed during pushdown, when
	// the coherence protocol owns the page tables). The controller tracks
	// a few fault streams so interleaved scans still prefetch.
	depth := p.M.Cfg.PrefetchDepth
	if depth > 0 && p.hooks == nil && p.seqFault(pg) {
		_, last, ok := p.Space.Extent()
		for i := 1; i <= depth; i++ {
			next := pg + mem.PageID(i)
			if !ok || next > last || p.Cache.Contains(next) {
				break
			}
			if p.PoolRes != nil && !p.PoolRes.Contains(next) {
				break // don't drag the storage pool into a prefetch
			}
			p.stats.Prefetched++
			ps := e.T.Now()
			e.T.AdvanceNs(float64(mem.PageSize) / cfg.NetBandwidthGBs)
			p.M.Times.Add(metrics.CompPrefetch, e.T.Now()-ps)
			p.M.Metrics.Counter("prefetch").Inc()
			evictAll(e, p.Cache.Insert(next, false, false))
		}
	}
	p.M.Tracer().End(e.T, sp)
	p.M.Metrics.Counter("fault.remote").Inc()
	p.M.Metrics.Histogram("fault.remote.ns").Observe(e.T.Now() - fstart)
	p.noteFault(pg)
	p.Epoch++
}

// evictAll charges write-backs for dirty victims.
func evictAll(e *Env, victims []Evicted) {
	for _, v := range victims {
		e.P.M.Trace.Add(trace.Event{At: e.T.Now(), Kind: trace.KindEviction, Page: uint64(v.Page), Arg: b2i(v.Dirty), Who: e.T.Name()})
		e.P.M.Metrics.Counter("eviction").Inc()
		if v.Dirty {
			e.P.stats.Writebacks++
			e.P.M.Fabric.Send(e.T, writebackBytes, netmodel.ClassWriteback)
			e.P.M.ReplicatePage(e.T, v.Page, e.P.M.serveShard(e.T.Now(), v.Page))
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
