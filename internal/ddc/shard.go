package ddc

// This file is the sharded-pool fault-domain layer: with Config.PoolShards
// K > 1 the memory pool is K controllers, each an independent crash domain
// under the fault plan's per-shard schedules, and pages stripe across them
// by page ID. With Config.Replicas R > 1 every page also lives on R−1
// backup shards, written synchronously in virtual time, so a page access
// whose primary shard is down fails over to a live replica instead of
// stalling. Writes a down shard misses are queued in a deterministic
// re-sync journal and replayed — with the transfer traffic charged — before
// that shard serves traffic again. Every path here is skipped entirely on
// single-shard pools, keeping K=1 machines byte-identical to the
// single-controller model.

import (
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// ShardOf maps a page to its primary shard by striping page IDs across the K
// controllers. It is a pure function, so placement is identical across runs
// and across the layers (paging, pushdown gate, figures) that compute it.
func ShardOf(pg mem.PageID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(uint64(pg) % uint64(shards))
}

// ShardStat aggregates one shard's fault-domain activity.
type ShardStat struct {
	FailoverReads int64 // accesses served by a replica while this primary was down
	ResyncPages   int64 // journaled pages re-replicated on recovery
	Recoveries    int64 // re-sync replays performed
	Stalls        int64 // accesses stalled because no replica was live either
}

// resyncQueue is one shard's pending re-sync journal: the pages whose copy
// on that shard went stale during an outage, in first-miss order.
type resyncQueue struct {
	pages []mem.PageID
	seen  map[mem.PageID]struct{}
}

// AccessPage routes one compute↔pool page operation on pg and returns the
// shard that serves it. On single-shard pools it only performs the
// whole-controller outage stall (WaitPoolUp) and returns 0. On multi-shard
// pools it additionally: replays the serving shard's re-sync journal before
// the shard serves traffic, redirects to a live replica when the primary is
// down (one control round trip of failover latency, a "failover" span, and —
// for writes — a journal entry so the primary is repaired on recovery), and
// stalls to the primary's restart when no replica is live, exactly like a
// whole-controller outage.
func (m *Machine) AccessPage(t *sim.Thread, pg mem.PageID, write bool) int {
	m.WaitPoolUp(t)
	k := m.Cfg.Shards()
	if k <= 1 {
		//lint:allow timecharge single-shard healthy path is free by design: WaitPoolUp above charges any outage stall
		return 0
	}
	primary := ShardOf(pg, k)
	if _, down := m.Fault.ShardDownAt(primary, t.Now()); !down {
		m.resyncShard(t, primary)
		//lint:allow timecharge healthy-primary access is free by design: resyncShard charges replay when the journal is non-empty
		return primary
	}
	for i := 1; i < m.Cfg.EffReplicas(); i++ {
		s := (primary + i) % k
		if _, down := m.Fault.ShardDownAt(s, t.Now()); down {
			continue
		}
		m.resyncShard(t, s)
		sp := m.Tracer().Begin(t, trace.KindFailover, uint64(pg), int64(s))
		m.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassPageFault)
		m.Tracer().End(t, sp)
		m.ShardStats[primary].FailoverReads++
		m.Metrics.Counter("shard.failover").Inc()
		if write {
			m.journalResync(primary, pg)
		}
		return s
	}
	// No live replica: nowhere to get the page — stall to the primary's
	// restart. The wake instant may land inside a directly adjacent window,
	// so loop like WaitPoolUp does.
	m.ShardStats[primary].Stalls++
	start := t.Now()
	for {
		recoverAt, down := m.Fault.ShardDownAt(primary, t.Now())
		if !down {
			break
		}
		t.AdvanceTo(recoverAt)
	}
	m.Times.Add(metrics.CompPoolStall, t.Now()-start)
	m.Metrics.Counter("shard.stall").Inc()
	m.resyncShard(t, primary)
	//lint:allow timecharge the stall loop always runs at least once (primary is down on entry) and AdvanceTo charges it
	return primary
}

// ReplicatePage charges the synchronous replication fan-out of one page of
// data entering the pool on shard served: every other shard in pg's replica
// set receives a copy on the replica traffic class, or — when it is down — a
// re-sync journal entry replayed on its recovery. No-op without replication
// (Replicas ≤ 1), keeping unreplicated machines byte-identical.
func (m *Machine) ReplicatePage(t *sim.Thread, pg mem.PageID, served int) {
	r := m.Cfg.EffReplicas()
	if r <= 1 {
		//lint:allow timecharge unreplicated pools must stay byte-identical: the fan-out is a no-op by contract
		return
	}
	k := m.Cfg.Shards()
	primary := ShardOf(pg, k)
	for i := 0; i < r; i++ {
		s := (primary + i) % k
		if s == served {
			continue
		}
		if _, down := m.Fault.ShardDownAt(s, t.Now()); down {
			m.journalResync(s, pg)
			continue
		}
		m.Fabric.Send(t, writebackBytes, netmodel.ClassReplica)
		m.Metrics.Counter("shard.replica-write").Inc()
	}
} //lint:allow timecharge journal-only fan-out: copies for down replicas become re-sync entries, charged on replay

// serveShard resolves which shard receives page data for pg at ts without
// charging or stalling anything: the primary when up, else the first live
// replica, else the primary (the transfer is buffered by the transport and
// the re-sync journal repairs the rest). Eviction write-backs use it — they
// are fire-and-forget and must not stall the evicting thread.
func (m *Machine) serveShard(ts sim.Time, pg mem.PageID) int {
	k := m.Cfg.Shards()
	if k <= 1 {
		return 0
	}
	primary := ShardOf(pg, k)
	if _, down := m.Fault.ShardDownAt(primary, ts); !down {
		return primary
	}
	for i := 1; i < m.Cfg.EffReplicas(); i++ {
		s := (primary + i) % k
		if _, down := m.Fault.ShardDownAt(s, ts); !down {
			return s
		}
	}
	return primary
}

// journalResync queues pg for re-replication to shard when it recovers.
func (m *Machine) journalResync(shard int, pg mem.PageID) {
	q := &m.resync[shard]
	if q.seen == nil {
		q.seen = make(map[mem.PageID]struct{})
	}
	if _, dup := q.seen[pg]; dup {
		return
	}
	q.seen[pg] = struct{}{}
	q.pages = append(q.pages, pg)
}

// resyncShard replays shard's re-sync journal after it recovered: every
// journaled page is re-replicated to the shard (one page transfer each on
// the replica class) under one "shard-recover" span, before the shard serves
// traffic again. Callers guarantee the shard is up at t.Now(). Free when the
// journal is empty, so healthy runs are unaffected.
func (m *Machine) resyncShard(t *sim.Thread, shard int) {
	q := &m.resync[shard]
	n := len(q.pages)
	if n == 0 {
		return
	}
	sp := m.Tracer().Begin(t, trace.KindShardRecover, uint64(shard), int64(n))
	for range q.pages {
		m.Fabric.Send(t, pageRespBytes, netmodel.ClassReplica)
	}
	m.Tracer().End(t, sp)
	m.ShardStats[shard].Recoveries++
	m.ShardStats[shard].ResyncPages += int64(n)
	m.Metrics.Counter("shard.resync-pages").Add(int64(n))
	m.Metrics.Counter("shard.recovery").Inc()
	q.pages = q.pages[:0]
	clear(q.seen)
}
