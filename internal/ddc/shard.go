package ddc

// This file is the sharded-pool fault-domain layer: with Config.PoolShards
// K > 1 the memory pool is K controllers, each an independent crash domain
// under the fault plan's per-shard schedules, and pages stripe across them
// by page ID. With Config.Replicas R > 1 every page also lives on R−1
// backup shards, and the write path is a quorum protocol: a write commits
// once W reachable replicas hold the copy (Config.WriteQuorum; W ≤ 1 is the
// legacy synchronous fan-out that never stalls), while unreachable replicas
// — crashed shards, or shards severed by an asymmetric link partition —
// receive deterministic hinted-handoff records instead. Every copy carries a
// version tag, so a failover read that lands on a shard that missed writes
// detects the staleness and read-repairs from the freshest reachable copy
// rather than silently serving stale bytes, and an anti-entropy sweep drains
// a shard's handoff queue — with the transfer traffic charged — as soon as
// traffic touches it over a healed link. Every path here is skipped
// entirely on single-shard pools, keeping K=1 machines byte-identical to
// the single-controller model, and version bookkeeping costs no virtual
// time, so healthy replicated runs match the pre-quorum model exactly.

import (
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// ShardOf maps a page to its primary shard by striping page IDs across the K
// controllers. It is a pure function, so placement is identical across runs
// and across the layers (paging, pushdown gate, figures) that compute it.
func ShardOf(pg mem.PageID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(uint64(pg) % uint64(shards))
}

// ShardStat aggregates one shard's fault-domain activity.
type ShardStat struct {
	FailoverReads     int64 // accesses served by a replica while this primary was unusable
	ResyncPages       int64 // crash-journaled pages re-replicated on recovery
	Recoveries        int64 // re-sync replays performed
	Stalls            int64 // accesses stalled because no replica was usable either
	HandoffRecords    int64 // hinted-handoff records enqueued for this shard (partition-caused)
	HandoffReplays    int64 // hinted-handoff records delivered to this shard after a link heal
	PartitionHeals    int64 // anti-entropy sweeps that delivered hinted records to this shard
	ReadRepairs       int64 // stale copies on this shard repaired from a fresher replica
	StaleReadsAverted int64 // reads that would have served stale bytes without the version check
	QuorumStalls      int64 // writes (keyed by primary) stalled below the write quorum
}

// handoffRec is one pending repair for a shard that missed a write: the page,
// the version its copy must reach (0 = unconditional, used by the legacy
// write-failover journal), the shard that held the fresh copy when the record
// was journalled, and whether the miss was partition-caused (the target was
// up but unreachable — a hinted handoff) or crash-caused (plain re-sync).
type handoffRec struct {
	pg     mem.PageID
	ver    uint64
	src    int
	hinted bool
}

// resyncQueue is one shard's pending handoff/re-sync journal, in first-miss
// order with one record per page (a newer miss supersedes an older one).
type resyncQueue struct {
	recs []handoffRec
	seen map[mem.PageID]int // page → index into recs
}

// shardUsable reports whether shard s can serve compute traffic at ts: the
// shard is up and both directions of its compute link are unpartitioned.
func (m *Machine) shardUsable(s int, ts sim.Time) bool {
	if _, down := m.Fault.ShardDownAt(s, ts); down {
		return false
	}
	if _, down := m.Fault.LinkDownAt(fault.EndpointCompute, s, ts); down {
		return false
	}
	if _, down := m.Fault.LinkDownAt(s, fault.EndpointCompute, ts); down {
		return false
	}
	return true
}

// ShardUsableAt returns the earliest instant ≥ at when shard s is up and
// reachable from the compute node in both directions. The loop re-checks
// after every candidate heal because a heal instant can land inside another
// blocking window (adjacent crash windows, or a crash overlapping a
// partition); schedules always heal, so the loop terminates.
func (m *Machine) ShardUsableAt(s int, at sim.Time) sim.Time {
	for {
		next := at
		if rec, down := m.Fault.ShardDownAt(s, at); down && rec > next {
			next = rec
		}
		if rec, down := m.Fault.LinkDownAt(fault.EndpointCompute, s, at); down && rec > next {
			next = rec
		}
		if rec, down := m.Fault.LinkDownAt(s, fault.EndpointCompute, at); down && rec > next {
			next = rec
		}
		if next == at {
			return at
		}
		at = next
	}
}

// replicaReachable reports whether a one-way copy push src→tgt can land at
// ts: the target shard is up and the src→tgt link direction is unpartitioned
// (partitions are asymmetric, so only the sending direction matters).
func (m *Machine) replicaReachable(src, tgt int, ts sim.Time) bool {
	if _, down := m.Fault.ShardDownAt(tgt, ts); down {
		return false
	}
	_, down := m.Fault.LinkDownAt(src, tgt, ts)
	return !down
}

// replicaReachableAt returns the earliest instant ≥ at when a copy push
// src→tgt can land, with the same re-check loop as ShardUsableAt.
func (m *Machine) replicaReachableAt(src, tgt int, at sim.Time) sim.Time {
	for {
		next := at
		if rec, down := m.Fault.ShardDownAt(tgt, at); down && rec > next {
			next = rec
		}
		if rec, down := m.Fault.LinkDownAt(src, tgt, at); down && rec > next {
			next = rec
		}
		if next == at {
			return at
		}
		at = next
	}
}

// bumpPageVer advances pg's committed version and returns it (0 on
// unversioned pools). Version bookkeeping is pure metadata: it costs no
// virtual time, so healthy runs are unchanged by it.
func (m *Machine) bumpPageVer(pg mem.PageID) uint64 {
	if m.pageVer == nil {
		return 0
	}
	v := m.pageVer[pg] + 1
	m.pageVer[pg] = v
	return v
}

// copyVer returns the version of shard s's copy of pg.
func (m *Machine) copyVer(s int, pg mem.PageID) uint64 {
	if m.shardVer == nil {
		return 0
	}
	return m.shardVer[s][pg]
}

// setCopyVer records that shard s's copy of pg reached version v. Versions
// never regress.
func (m *Machine) setCopyVer(s int, pg mem.PageID, v uint64) {
	if m.shardVer == nil || v <= m.shardVer[s][pg] {
		return
	}
	m.shardVer[s][pg] = v
}

// AccessPage routes one compute↔pool page operation on pg and returns the
// shard that serves it. On single-shard pools it only performs the
// whole-controller outage stall (WaitPoolUp) and returns 0. On multi-shard
// pools it additionally: drains the serving shard's handoff/re-sync journal
// before the shard serves traffic, redirects to a usable replica when the
// primary is crashed or partitioned (one control round trip of failover
// latency, a "failover" span, and — for writes — a journal entry so the
// primary is repaired later), consults R′−1 extra replicas on quorum reads,
// read-repairs a stale serving copy from the freshest reachable replica, and
// stalls to the earliest member's heal when no replica is usable, exactly
// like a whole-controller outage.
func (m *Machine) AccessPage(t *sim.Thread, pg mem.PageID, write bool) int {
	m.WaitPoolUp(t)
	k := m.Cfg.Shards()
	if k <= 1 {
		//lint:allow timecharge single-shard healthy path is free by design: WaitPoolUp above charges any outage stall
		return 0
	}
	primary := ShardOf(pg, k)
	r := m.Cfg.EffReplicas()
	if m.shardUsable(primary, t.Now()) {
		m.drainHandoff(t, primary)
		m.serveQuorumRead(t, pg, primary, primary, write)
		//lint:allow timecharge healthy-primary access is free by design: drain/consult/repair charge their own transfers
		return primary
	}
	for i := 1; i < r; i++ {
		s := (primary + i) % k
		if !m.shardUsable(s, t.Now()) {
			continue
		}
		m.drainHandoff(t, s)
		sp := m.Tracer().Begin(t, trace.KindFailover, uint64(pg), int64(s))
		m.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassPageFault)
		m.Tracer().End(t, sp)
		m.ShardStats[primary].FailoverReads++
		m.Metrics.Counter("shard.failover").Inc()
		if write {
			m.journalHandoff(t, primary, pg, 0, s, false)
		}
		m.serveQuorumRead(t, pg, s, primary, write)
		return s
	}
	// No usable member: nowhere to get the page — stall to the earliest
	// instant any member of the replica set is usable again.
	m.ShardStats[primary].Stalls++
	start := t.Now()
	wake := sim.Time(-1)
	for i := 0; i < r; i++ {
		if at := m.ShardUsableAt((primary+i)%k, start); wake < 0 || at < wake {
			wake = at
		}
	}
	t.AdvanceTo(wake)
	served := primary
	for i := 0; i < r; i++ {
		if s := (primary + i) % k; m.shardUsable(s, t.Now()) {
			served = s
			break
		}
	}
	m.Times.Add(metrics.CompPoolStall, t.Now()-start)
	m.Metrics.Counter("shard.stall").Inc()
	m.drainHandoff(t, served)
	if served != primary && write {
		m.journalHandoff(t, primary, pg, 0, served, false)
	}
	m.serveQuorumRead(t, pg, served, primary, write)
	return served
}

// serveQuorumRead runs the read-side quorum protocol after routing resolved
// the serving shard: consult R′−1 other replicas so any committed write
// intersects the read set, then repair the serving copy if the version tags
// expose it as stale. Both steps are no-ops on legacy (R′ ≤ 1) configs and
// on writes (the write's own ReplicatePage commit refreshes the copy), so
// non-quorum runs are byte-identical to the pre-quorum model.
func (m *Machine) serveQuorumRead(t *sim.Thread, pg mem.PageID, served, primary int, write bool) {
	if write {
		return
	}
	m.consultReadQuorum(t, pg, served, primary)
	m.readRepair(t, pg, served, primary)
}

// consultReadQuorum charges the version probes of a quorum read: one control
// round trip on the replica class per extra replica consulted, stalling for
// the earliest heal when fewer than R′−1 other members are reachable (the
// read cannot rule out staleness without quorum overlap).
func (m *Machine) consultReadQuorum(t *sim.Thread, pg mem.PageID, served, primary int) {
	need := m.Cfg.EffReadQuorum() - 1
	if need <= 0 {
		return
	}
	k := m.Cfg.Shards()
	r := m.Cfg.EffReplicas()
	consulted := make([]bool, r)
	got := 0
	for i := 0; i < r && got < need; i++ {
		s := (primary + i) % k
		if s == served || !m.shardUsable(s, t.Now()) {
			continue
		}
		m.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassReplica)
		m.Metrics.Counter("shard.read-consult").Inc()
		consulted[i] = true
		got++
	}
	var stalled sim.Time
	for got < need {
		best, bestAt := -1, sim.Time(0)
		for i := 0; i < r; i++ {
			s := (primary + i) % k
			if s == served || consulted[i] {
				continue
			}
			if at := m.ShardUsableAt(s, t.Now()); best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		before := t.Now()
		t.AdvanceTo(bestAt)
		stalled += t.Now() - before
		m.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassReplica)
		m.Metrics.Counter("shard.read-consult").Inc()
		consulted[best] = true
		got++
	}
	if stalled > 0 {
		m.Times.Add(metrics.CompPoolStall, stalled)
		m.ShardStats[primary].QuorumStalls++
		m.Metrics.Counter("shard.quorum-stall").Inc()
	}
}

// readRepair compares the serving copy's version tag against the page's
// committed version and, when stale, fetches the page from the freshest
// reachable replica under a "read-repair" span before the read is served —
// the read observes committed bytes instead of stale ones. The committed
// writer's shard always holds the latest version, so a fresh source always
// exists; if it is momentarily unreachable the repair stalls for its heal.
func (m *Machine) readRepair(t *sim.Thread, pg mem.PageID, served, primary int) {
	if m.pageVer == nil {
		return
	}
	want := m.pageVer[pg]
	if want == 0 || m.copyVer(served, pg) >= want {
		return
	}
	m.ShardStats[served].StaleReadsAverted++
	m.Metrics.Counter("shard.stale-averted").Inc()
	k := m.Cfg.Shards()
	r := m.Cfg.EffReplicas()
	src := -1
	var stalled sim.Time
	for src < 0 {
		for i := 0; i < r; i++ {
			s := (primary + i) % k
			if s == served || m.copyVer(s, pg) < want {
				continue
			}
			if m.replicaReachable(s, served, t.Now()) {
				src = s
				break
			}
		}
		if src >= 0 {
			break
		}
		wake := sim.Time(-1)
		for i := 0; i < r; i++ {
			s := (primary + i) % k
			if s == served || m.copyVer(s, pg) < want {
				continue
			}
			if at := m.replicaReachableAt(s, served, t.Now()); wake < 0 || at < wake {
				wake = at
			}
		}
		before := t.Now()
		t.AdvanceTo(wake)
		stalled += t.Now() - before
	}
	if stalled > 0 {
		m.Times.Add(metrics.CompPoolStall, stalled)
		m.ShardStats[primary].QuorumStalls++
		m.Metrics.Counter("shard.quorum-stall").Inc()
	}
	sp := m.Tracer().Begin(t, trace.KindReadRepair, uint64(pg), int64(served))
	m.Fabric.RoundTrip(t, ctrlMsgBytes, pageRespBytes, netmodel.ClassReplica)
	m.Tracer().End(t, sp)
	m.setCopyVer(served, pg, m.copyVer(src, pg))
	m.ShardStats[served].ReadRepairs++
	m.Metrics.Counter("shard.read-repair").Inc()
}

// ReplicatePage commits one page of data entering the pool on shard served
// under the write-quorum protocol: every other shard in pg's replica set
// either receives a copy on the replica traffic class (when reachable) or a
// handoff record — hinted when the shard is up but its link is partitioned,
// plain re-sync when it is crashed. With W ≤ 1 (the legacy regime) the write
// never stalls; with W > 1 it stalls until W copies have landed, delivering
// to pending members as their links heal. No-op without replication
// (Replicas ≤ 1), keeping unreplicated machines byte-identical.
func (m *Machine) ReplicatePage(t *sim.Thread, pg mem.PageID, served int) {
	r := m.Cfg.EffReplicas()
	if r <= 1 {
		//lint:allow timecharge unreplicated pools must stay byte-identical: the fan-out is a no-op by contract
		return
	}
	k := m.Cfg.Shards()
	primary := ShardOf(pg, k)
	ver := m.bumpPageVer(pg)
	m.setCopyVer(served, pg, ver)
	acked := 1
	var pending []int
	for i := 0; i < r; i++ {
		s := (primary + i) % k
		if s == served {
			continue
		}
		if m.replicaReachable(served, s, t.Now()) {
			m.Fabric.Send(t, writebackBytes, netmodel.ClassReplica)
			m.Metrics.Counter("shard.replica-write").Inc()
			m.setCopyVer(s, pg, ver)
			acked++
			continue
		}
		_, down := m.Fault.ShardDownAt(s, t.Now())
		m.journalHandoff(t, s, pg, ver, served, !down)
		pending = append(pending, s)
	}
	w := m.Cfg.EffWriteQuorum()
	if acked >= w || len(pending) == 0 {
		//lint:allow timecharge journal-only fan-out: copies for unreachable replicas become handoff records, charged on replay
		return
	}
	// Below the write quorum: the write cannot commit on reachable copies
	// alone, so stall, delivering the copy to the pending member whose
	// path heals first until W acks are in. The handoff record a delivery
	// supersedes is retired by the version check on the next drain.
	m.ShardStats[primary].QuorumStalls++
	m.Metrics.Counter("shard.quorum-stall").Inc()
	var stalled sim.Time
	for acked < w && len(pending) > 0 {
		best, bestAt := -1, sim.Time(0)
		for j, s := range pending {
			if at := m.replicaReachableAt(served, s, t.Now()); best < 0 || at < bestAt {
				best, bestAt = j, at
			}
		}
		before := t.Now()
		t.AdvanceTo(bestAt)
		stalled += t.Now() - before
		s := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		m.Fabric.Send(t, writebackBytes, netmodel.ClassReplica)
		m.Metrics.Counter("shard.replica-write").Inc()
		m.setCopyVer(s, pg, ver)
		acked++
	}
	m.Times.Add(metrics.CompPoolStall, stalled)
	//lint:allow timecharge the stall loop always runs here (acked < W on entry) and AdvanceTo charges it
}

// serveShard resolves which shard receives page data for pg at ts without
// charging or stalling anything: the primary when up and reachable on the
// compute→shard direction, else the first such replica, else the primary
// (the transfer is buffered by the transport and the handoff journal repairs
// the rest). Eviction write-backs use it — they are fire-and-forget and must
// not stall the evicting thread.
func (m *Machine) serveShard(ts sim.Time, pg mem.PageID) int {
	k := m.Cfg.Shards()
	if k <= 1 {
		return 0
	}
	primary := ShardOf(pg, k)
	if m.writeReachable(primary, ts) {
		return primary
	}
	for i := 1; i < m.Cfg.EffReplicas(); i++ {
		if s := (primary + i) % k; m.writeReachable(s, ts) {
			return s
		}
	}
	return primary
}

// writeReachable reports whether a fire-and-forget compute→shard transfer
// can land on shard s at ts: s is up and the compute→s direction is
// unpartitioned (the return direction does not matter).
func (m *Machine) writeReachable(s int, ts sim.Time) bool {
	if _, down := m.Fault.ShardDownAt(s, ts); down {
		return false
	}
	_, down := m.Fault.LinkDownAt(fault.EndpointCompute, s, ts)
	return !down
}

// journalHandoff queues pg for re-replication to shard target once it is
// reachable again: target's copy must reach version ver (0 = unconditional),
// with src holding the fresh copy now. hinted marks partition-caused misses
// (the target was up), which replay under the anti-entropy span rather than
// the crash-recovery one. One record per page: a newer miss supersedes an
// older one.
func (m *Machine) journalHandoff(t *sim.Thread, target int, pg mem.PageID, ver uint64, src int, hinted bool) {
	q := &m.resync[target]
	if q.seen == nil {
		q.seen = make(map[mem.PageID]int)
	}
	if i, dup := q.seen[pg]; dup {
		if rec := &q.recs[i]; ver >= rec.ver {
			rec.ver, rec.src, rec.hinted = ver, src, hinted
		}
		return
	}
	q.seen[pg] = len(q.recs)
	q.recs = append(q.recs, handoffRec{pg: pg, ver: ver, src: src, hinted: hinted})
	m.handoffDepth++
	m.Metrics.Gauge("shard.handoff.depth").Set(m.handoffDepth)
	if hinted {
		m.ShardStats[target].HandoffRecords++
		m.Metrics.Counter("shard.handoff").Inc()
		m.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindHintedHandoff, Page: uint64(pg), Arg: int64(target), Who: t.Name()})
	}
}

// drainHandoff replays shard's pending handoff/re-sync journal before the
// shard serves traffic: records the shard's copy already caught up on are
// retired silently; records whose source (or any fresh-enough replica) can
// push to the shard are delivered — one page transfer each on the replica
// class — crash-origin records under a "shard-recover" span and hinted ones
// under a "shard-anti-entropy" span with a "partition-heal" marker;
// undeliverable records stay queued for a later sweep. Free when the journal
// is empty, so healthy runs are unaffected.
func (m *Machine) drainHandoff(t *sim.Thread, shard int) {
	q := &m.resync[shard]
	if len(q.recs) == 0 {
		return
	}
	now := t.Now()
	var crash, hinted, remain []handoffRec
	for _, rec := range q.recs {
		if rec.ver > 0 && m.copyVer(shard, rec.pg) >= rec.ver {
			m.handoffDepth-- // superseded: a later delivery already caught this copy up
			continue
		}
		src, sv := m.pickHandoffSource(rec, shard, now)
		if src < 0 {
			remain = append(remain, rec)
			continue
		}
		m.setCopyVer(shard, rec.pg, sv)
		if rec.hinted {
			hinted = append(hinted, rec)
		} else {
			crash = append(crash, rec)
		}
		m.handoffDepth--
	}
	if n := int64(len(crash)); n > 0 {
		sp := m.Tracer().Begin(t, trace.KindShardRecover, uint64(shard), n)
		for range crash {
			m.Fabric.Send(t, pageRespBytes, netmodel.ClassReplica)
		}
		m.Tracer().End(t, sp)
		m.ShardStats[shard].Recoveries++
		m.ShardStats[shard].ResyncPages += n
		m.Metrics.Counter("shard.resync-pages").Add(n)
		m.Metrics.Counter("shard.recovery").Inc()
	}
	if n := int64(len(hinted)); n > 0 {
		sp := m.Tracer().Begin(t, trace.KindShardAntiEntropy, uint64(shard), n)
		for range hinted {
			m.Fabric.Send(t, pageRespBytes, netmodel.ClassReplica)
		}
		m.Tracer().End(t, sp)
		m.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindPartitionHeal, Page: uint64(hinted[0].pg), Arg: int64(shard), Who: t.Name()})
		m.ShardStats[shard].HandoffReplays += n
		m.ShardStats[shard].PartitionHeals++
		m.Metrics.Counter("shard.handoff-replays").Add(n)
		m.Metrics.Counter("shard.partition-heal").Inc()
	}
	q.recs = remain
	if q.seen == nil {
		q.seen = make(map[mem.PageID]int)
	} else {
		clear(q.seen)
	}
	for i, rec := range remain {
		q.seen[rec.pg] = i
	}
	m.Metrics.Gauge("shard.handoff.depth").Set(m.handoffDepth)
}

// pickHandoffSource resolves which replica pushes rec's page to shard tgt at
// ts, preferring the journalled source and falling back to any replica whose
// copy is at least as fresh, in ring order; -1 when none is reachable. The
// second result is the version the chosen source delivers.
func (m *Machine) pickHandoffSource(rec handoffRec, tgt int, ts sim.Time) (int, uint64) {
	need := rec.ver
	if v := m.copyVer(rec.src, rec.pg); v > need {
		need = v
	}
	if m.copyVer(rec.src, rec.pg) >= need && m.replicaReachable(rec.src, tgt, ts) {
		// The journalled source is itself up (a reachable crashed shard is
		// impossible) and holds the fresh copy: the common case.
		return rec.src, m.copyVer(rec.src, rec.pg)
	}
	k := m.Cfg.Shards()
	primary := ShardOf(rec.pg, k)
	for i := 0; i < m.Cfg.EffReplicas(); i++ {
		s := (primary + i) % k
		if s == tgt || s == rec.src || m.copyVer(s, rec.pg) < need {
			continue
		}
		if m.replicaReachable(s, tgt, ts) {
			return s, m.copyVer(s, rec.pg)
		}
	}
	return -1, 0
}
