package ddc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teleport/internal/mem"
)

func TestCacheInsertLookup(t *testing.T) {
	c := NewPageCache(2)
	if ev := c.Insert(1, true, false); len(ev) != 0 {
		t.Fatal("unexpected eviction")
	}
	w, d, ok := c.Lookup(1)
	if !ok || !w || d {
		t.Fatalf("Lookup = %v %v %v", w, d, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewPageCache(2)
	c.Insert(1, false, false)
	c.Insert(2, false, true)
	c.Lookup(1) // 1 becomes MRU, 2 is the victim
	ev := c.Insert(3, false, false)
	if len(ev) != 1 || ev[0].Page != 2 || !ev[0].Dirty {
		t.Fatalf("evicted = %+v", ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestCacheUnlimited(t *testing.T) {
	c := NewPageCache(0)
	for i := 0; i < 1000; i++ {
		if ev := c.Insert(mem.PageID(i), false, false); len(ev) != 0 {
			t.Fatal("unlimited cache must never evict")
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheReinsertUpdatesBits(t *testing.T) {
	c := NewPageCache(4)
	c.Insert(7, false, false)
	c.Insert(7, true, true)
	w, d, _ := c.Lookup(7)
	if !w || !d {
		t.Fatal("reinsert did not update bits")
	}
	if c.Len() != 1 {
		t.Fatal("reinsert duplicated entry")
	}
}

func TestCacheRemoveAndBits(t *testing.T) {
	c := NewPageCache(4)
	c.Insert(5, true, false)
	if !c.MarkDirty(5) {
		t.Fatal("MarkDirty on resident page failed")
	}
	if c.MarkDirty(6) {
		t.Fatal("MarkDirty on absent page succeeded")
	}
	if !c.SetWritable(5, false) {
		t.Fatal("SetWritable failed")
	}
	if w, _, _ := c.Lookup(5); w {
		t.Fatal("downgrade did not stick")
	}
	c.ClearDirty(5)
	if _, d, _ := c.Lookup(5); d {
		t.Fatal("ClearDirty did not stick")
	}
	dirty, ok := c.Remove(5)
	if !ok || dirty {
		t.Fatalf("Remove = %v %v", dirty, ok)
	}
	if _, ok := c.Remove(5); ok {
		t.Fatal("double Remove succeeded")
	}
}

func TestCacheRangeMRUOrder(t *testing.T) {
	c := NewPageCache(4)
	c.Insert(1, false, false)
	c.Insert(2, false, false)
	c.Insert(3, false, false)
	c.Lookup(1)
	var order []mem.PageID
	c.Range(func(p mem.PageID, _, _ bool) bool {
		order = append(order, p)
		return true
	})
	want := []mem.PageID{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: cache size never exceeds capacity and residency matches a model
// map, under random insert/lookup/remove traffic.
func TestCacheModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capPages := r.Intn(16) + 1
		c := NewPageCache(capPages)
		model := map[mem.PageID]bool{}
		for i := 0; i < 500; i++ {
			p := mem.PageID(r.Intn(40))
			switch r.Intn(3) {
			case 0:
				for _, v := range c.Insert(p, false, false) {
					delete(model, v.Page)
				}
				model[p] = true
			case 1:
				_, _, got := c.Lookup(p)
				if got != model[p] {
					return false
				}
			case 2:
				c.Remove(p)
				delete(model, p)
			}
			if c.Len() > capPages || c.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
