package ddc

import (
	"testing"

	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

func TestShardOfStripes(t *testing.T) {
	for pg := mem.PageID(0); pg < 100; pg++ {
		if got := ShardOf(pg, 4); got != int(pg)%4 {
			t.Fatalf("ShardOf(%d, 4) = %d, want %d", pg, got, int(pg)%4)
		}
		if ShardOf(pg, 1) != 0 || ShardOf(pg, 0) != 0 {
			t.Fatalf("ShardOf(%d, ≤1) != 0", pg)
		}
	}
}

// shardMachine builds a K-shard, R-replica machine with pinned per-shard
// outage windows on shard 0.
func shardMachine(t *testing.T, shards, replicas int, ws ...fault.Window) (*Machine, *fault.Plan) {
	t.Helper()
	cfg := BaseDDC(64 * mem.PageSize)
	cfg.PoolShards, cfg.Replicas = shards, replicas
	m := MustMachine(cfg)
	plan := fault.NewPlan(fault.Profile{Name: "t"}, 0)
	plan.SetShardWindows(0, ws...)
	m.AttachFault(plan)
	return m, plan
}

// On a single-shard pool AccessPage is exactly WaitPoolUp: shard 0 serves
// everything and no virtual time is charged when the controller is up.
func TestAccessPageSingleShardFree(t *testing.T) {
	m := MustMachine(BaseDDC(64 * mem.PageSize))
	th := sim.NewThread("t")
	if s := m.AccessPage(th, 7, true); s != 0 {
		t.Fatalf("AccessPage on 1-shard pool served by shard %d, want 0", s)
	}
	if th.Now() != 0 {
		t.Fatalf("AccessPage on a healthy 1-shard pool charged %v", th.Now())
	}
	if m.ShardStats != nil {
		t.Fatal("ShardStats allocated for a single-shard machine")
	}
}

// A read whose primary shard is down is served by the next live replica:
// failover latency is charged, the failover span is traced, and the
// per-shard counter attributes the read to the down primary.
func TestAccessPageFailsOverToReplica(t *testing.T) {
	const down, up = 10 * sim.Microsecond, 50 * sim.Microsecond
	m, _ := shardMachine(t, 4, 2, fault.Window{Down: down, Up: up})
	ring := trace.New(64)
	m.AttachTrace(ring)
	th := sim.NewThread("t")
	th.AdvanceTo(down)

	const pg = mem.PageID(4) // primary = shard 0
	before := th.Now()
	if s := m.AccessPage(th, pg, false); s != 1 {
		t.Fatalf("served by shard %d, want replica shard 1", s)
	}
	if th.Now() <= before {
		t.Fatal("failover charged no latency")
	}
	if th.Now() >= up {
		t.Fatalf("failover stalled to the window end (now %v)", th.Now())
	}
	if st := m.ShardStats[0]; st.FailoverReads != 1 || st.Stalls != 0 {
		t.Fatalf("shard 0 stats = %+v, want exactly one failover read", st)
	}
	var spans int
	for _, e := range ring.Events() {
		if e.Kind == trace.KindFailover && e.Phase != trace.PhaseEnd {
			spans++
		}
	}
	if spans != 1 {
		t.Fatalf("failover spans = %d, want 1", spans)
	}
	// With the primary back up the same access is served locally and free.
	th.AdvanceTo(up)
	before = th.Now()
	if s := m.AccessPage(th, pg, false); s != 0 || th.Now() != before {
		t.Fatalf("post-recovery access served by %d at +%v, want shard 0 for free", s, th.Now()-before)
	}
}

// A write during the outage queues a re-sync journal entry; the first
// access after recovery replays it — one page transfer on the replica
// class under a shard-recover span — before the shard serves traffic.
func TestWriteDuringOutageResyncsOnRecovery(t *testing.T) {
	const down, up = 10 * sim.Microsecond, 50 * sim.Microsecond
	m, _ := shardMachine(t, 4, 2, fault.Window{Down: down, Up: up})
	ring := trace.New(64)
	m.AttachTrace(ring)
	th := sim.NewThread("t")
	th.AdvanceTo(down)

	const pg = mem.PageID(8) // primary = shard 0
	if s := m.AccessPage(th, pg, true); s != 1 {
		t.Fatalf("write served by shard %d, want replica shard 1", s)
	}
	// Duplicate writes to the same page journal once.
	m.AccessPage(th, pg, true)
	replicaMsgs := m.Fabric.Stats(netmodel.ClassReplica).Msgs

	th.AdvanceTo(up)
	if s := m.AccessPage(th, pg, false); s != 0 {
		t.Fatalf("post-recovery access served by shard %d, want primary 0", s)
	}
	if st := m.ShardStats[0]; st.Recoveries != 1 || st.ResyncPages != 1 {
		t.Fatalf("shard 0 stats = %+v, want one recovery replaying one page", st)
	}
	if got := m.Fabric.Stats(netmodel.ClassReplica).Msgs - replicaMsgs; got != 1 {
		t.Fatalf("re-sync sent %d replica-class messages, want 1", got)
	}
	var spans int
	for _, e := range ring.Events() {
		if e.Kind == trace.KindShardRecover && e.Phase != trace.PhaseEnd {
			spans++
		}
	}
	if spans != 1 {
		t.Fatalf("shard-recover spans = %d, want 1", spans)
	}
}

// Without replication there is no failover target: an access to a page on a
// down shard stalls to the shard's restart, like a whole-controller outage.
func TestAccessPageUnreplicatedStalls(t *testing.T) {
	const down, up = 10 * sim.Microsecond, 50 * sim.Microsecond
	m, _ := shardMachine(t, 4, 1, fault.Window{Down: down, Up: up})
	th := sim.NewThread("t")
	th.AdvanceTo(down)

	const pg = mem.PageID(4) // primary = shard 0
	if s := m.AccessPage(th, pg, false); s != 0 {
		t.Fatalf("served by shard %d, want the stalled primary 0", s)
	}
	if th.Now() != up {
		t.Fatalf("woke at %v, want exactly %v", th.Now(), up)
	}
	if st := m.ShardStats[0]; st.Stalls != 1 || st.FailoverReads != 0 {
		t.Fatalf("shard 0 stats = %+v, want exactly one stall", st)
	}
}

// Synchronous replication fans one pool write out to the page's R−1 other
// replica-set shards on the replica traffic class.
func TestReplicatePageFanOut(t *testing.T) {
	m, _ := shardMachine(t, 4, 3)
	th := sim.NewThread("t")
	const pg = mem.PageID(4) // replica set {0, 1, 2}
	m.ReplicatePage(th, pg, 0)
	if got := m.Fabric.Stats(netmodel.ClassReplica).Msgs; got != 2 {
		t.Fatalf("replica-class messages = %d, want 2 (R−1 copies)", got)
	}
	// The serving shard is skipped wherever it sits in the set.
	m.ReplicatePage(th, pg, 1)
	if got := m.Fabric.Stats(netmodel.ClassReplica).Msgs; got != 4 {
		t.Fatalf("replica-class messages = %d, want 4", got)
	}
	// Unreplicated machines never touch the replica class.
	m1, _ := shardMachine(t, 4, 1)
	m1.ReplicatePage(th, pg, 0)
	if got := m1.Fabric.Stats(netmodel.ClassReplica).Msgs; got != 0 {
		t.Fatalf("unreplicated machine sent %d replica-class messages", got)
	}
}

// A remote fault is one logical read even when its pool-miss leg recursively
// faults to the storage pool: during a shard outage the whole
// compute→pool→storage chain routes — and counts a failover — exactly once.
// Regression test: the storage leg used to re-route through AccessPage and
// double-count the failover.
func TestRemoteFaultWithStorageLegCountsOneFailover(t *testing.T) {
	m, plan := shardMachine(t, 4, 2)
	p := m.NewProcess()
	th := sim.NewThread("t")
	const pages = 8
	a := p.Space.AllocPages(pages*mem.PageSize, "v")
	env := p.NewEnv(th)
	for i := 0; i < pages; i++ {
		env.WriteI64(a+mem.Addr(i)*mem.PageSize, int64(i))
	}
	// A one-page cache forces the read below to remote-fault, and a one-page
	// pool guarantees the faulted page is not pool-resident, so the fault
	// recurses to the storage pool.
	p.ResizeCache(mem.PageSize)
	p.ResizePool(mem.PageSize)
	down := th.Now() + 10*sim.Microsecond
	plan.SetShardWindows(0, fault.Window{Down: down, Up: down + 10*sim.Millisecond})
	th.AdvanceTo(down + sim.Microsecond)

	// Pick a page whose primary is the crashed shard 0.
	first, _ := mem.PageSpan(a, 1)
	off := (4 - int(first)%4) % 4
	pre := p.Stats().StorageInFault
	env.ReadI64(a + mem.Addr(off)*mem.PageSize)
	if got := p.Stats().StorageInFault - pre; got != 1 {
		t.Fatalf("storage in-faults = %d, want 1 (the read must take the pool-miss leg)", got)
	}
	if st := m.ShardStats[0]; st.FailoverReads != 1 {
		t.Fatalf("FailoverReads = %d, want 1: one logical read routes once", st.FailoverReads)
	}
}

func TestConfigShardValidation(t *testing.T) {
	cfg := BaseDDC(64 * mem.PageSize)
	cfg.PoolShards, cfg.Replicas = 2, 3 // more copies than shards
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("Replicas > PoolShards accepted")
	}
	mono := Linux()
	mono.PoolShards = 4
	if _, err := NewMachine(mono); err == nil {
		t.Fatal("sharded monolithic config accepted")
	}
	ok := BaseDDC(64 * mem.PageSize)
	ok.PoolShards, ok.Replicas = 4, 2
	m := MustMachine(ok)
	if m.Cfg.Shards() != 4 || m.Cfg.EffReplicas() != 2 {
		t.Fatalf("Shards()=%d EffReplicas()=%d, want 4 and 2", m.Cfg.Shards(), m.Cfg.EffReplicas())
	}
}
