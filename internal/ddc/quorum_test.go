package ddc

import (
	"fmt"
	"testing"

	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// Property-style quorum invariant: for every valid (Replicas, W, R′)
// configuration on a 4-shard pool, a read issued after a committed write
// never observes the pre-write copy — the shard that serves the read holds
// the committed version by the time the read is served — under every
// single-partition schedule (each directed link severed in turn), both while
// the partition is open and after it heals. A variant additionally severs
// the compute→primary link during the read, forcing the read through the
// failover + read-repair path. The invariant is exactly what W + R′ > R
// buys: the write's ack set and the read's consult set always intersect, and
// the version tags turn any residual staleness into a repair instead of a
// stale serve.
func TestQuorumReadNeverObservesPreWriteCopy(t *testing.T) {
	const k = 4
	endpoints := []int{fault.EndpointCompute, 0, 1, 2, 3}
	type cut struct{ from, to int }
	var cuts []cut
	for _, from := range endpoints {
		for _, to := range endpoints {
			if from != to {
				cuts = append(cuts, cut{from, to})
			}
		}
	}
	pages := []mem.PageID{8, 9} // primaries on shards 0 and 1

	for r := 2; r <= k; r++ {
		for w := 1; w <= r; w++ {
			for rq := 0; rq <= r; rq++ {
				cfg := BaseDDC(64 * mem.PageSize)
				cfg.PoolShards, cfg.Replicas = k, r
				cfg.WriteQuorum, cfg.ReadQuorum = w, rq
				if _, err := NewMachine(cfg); err != nil {
					continue // not a valid quorum config (e.g. W + R' ≤ R)
				}
				name := fmt.Sprintf("R=%d W=%d R'=%d", r, w, rq)
				for _, c := range cuts {
					for _, forceFailover := range []bool{false, true} {
						for _, pg := range pages {
							m := MustMachine(cfg)
							plan := fault.NewPlan(fault.Profile{Name: "q"}, 0)
							plan.SetLinkWindows(c.from, c.to,
								fault.Window{Down: 10 * sim.Microsecond, Up: 200 * sim.Microsecond})
							primary := ShardOf(pg, k)
							if forceFailover && (c.from != fault.EndpointCompute || c.to != primary) {
								plan.SetLinkWindows(fault.EndpointCompute, primary,
									fault.Window{Down: 30 * sim.Microsecond, Up: 200 * sim.Microsecond})
							}
							m.AttachFault(plan)
							th := sim.NewThread("t")

							check := func(when string) {
								served := m.AccessPage(th, pg, false)
								if want := m.pageVer[pg]; m.copyVer(served, pg) < want {
									t.Fatalf("%s cut=%v→%v failover=%v pg=%d %s: shard %d served version %d, committed %d",
										name, c.from, c.to, forceFailover, pg, when,
										served, m.copyVer(served, pg), want)
								}
							}

							// Commit one write while the partition is open.
							th.AdvanceTo(20 * sim.Microsecond)
							served := m.AccessPage(th, pg, true)
							m.ReplicatePage(th, pg, served)
							// Read during the partition (or as soon as the
							// committed write released, if it stalled past it).
							check("during partition")
							// Read after every link has healed.
							th.AdvanceTo(400 * sim.Microsecond)
							check("after heal")
						}
					}
				}
			}
		}
	}
}
