package ddc

import "teleport/internal/mem"

// PageView is a zero-copy borrow of one page's live bytes (a
// mem.Space.Frame borrow tagged with the process epoch at borrow time).
//
// It is a host-side window for tooling — undo-journal style pre-image
// capture, integrity checks, tests, benchmarks: reading through it costs no
// virtual time and runs no paging state machine, so simulated application
// code must keep using the Env accessors for anything the cost model should
// see. The bytes are always current (frame identities are stable for the
// life of the Space); Valid reports whether the borrow is still "quiescent",
// i.e. no paging or coherence event (eviction, fault, write upgrade,
// rollback) has bumped the process epoch since the borrow.
type PageView struct {
	p     *Process
	page  mem.PageID
	epoch uint64
	data  []byte
}

// ViewPage borrows page pg's frame.
func (p *Process) ViewPage(pg mem.PageID) PageView {
	return PageView{p: p, page: pg, epoch: p.Epoch, data: p.Space.Frame(pg)}
}

// Page returns the viewed page.
func (v PageView) Page() mem.PageID { return v.page }

// Bytes returns the live frame bytes (length mem.PageSize). The slice
// aliases the space's single physical copy: writes through it bypass every
// model and must be confined to host-side tooling.
func (v PageView) Bytes() []byte { return v.data }

// Valid reports whether the process epoch is unchanged since the borrow —
// the same staleness rule the Env fast paths use.
func (v PageView) Valid() bool { return v.p.Epoch == v.epoch }
