package ddc

import (
	"testing"

	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

func TestConfigPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{Linux(), LinuxSSD(1 << 20), BaseDDC(1 << 20)} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{HW: Linux().HW, Disaggregated: true},                                            // no cache bound
		{HW: Linux().HW, Disaggregated: true, ComputeCacheBytes: 4096, LocalMemBytes: 1}, // mixed knobs
		{HW: Linux().HW, ComputeCacheBytes: 4096},                                        // pool knob on monolithic
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLinuxUnlimitedIsCheapDRAM(t *testing.T) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.Alloc(1<<20, "buf")
	// Sequential scan: mostly streaming line fills.
	for i := mem.Addr(0); i < 1<<20; i += 8 {
		env.ReadU64(a + i)
	}
	perByte := float64(th.Now()) / float64(1<<20)
	if perByte > 0.5 { // ≥2 GB/s
		t.Fatalf("local sequential scan too slow: %.3f ns/B", perByte)
	}
	if m.Fabric.Total().Msgs != 0 {
		t.Fatal("local execution must not touch the fabric")
	}
}

func TestDDCMissFaultsOverFabric(t *testing.T) {
	m := MustMachine(BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(4*mem.PageSize, "buf")
	env.ReadU64(a)
	st := p.Stats()
	if st.RemoteFaults != 1 {
		t.Fatalf("RemoteFaults = %d", st.RemoteFaults)
	}
	if m.Fabric.Stats(netmodel.ClassPageFault).Msgs != 2 {
		t.Fatalf("fault msgs = %d", m.Fabric.Stats(netmodel.ClassPageFault).Msgs)
	}
	before := th.Now()
	env.ReadU64(a + 256) // same page, different line: hit, no new fault
	if p.Stats().RemoteFaults != 1 {
		t.Fatal("hit caused a fault")
	}
	hitCost := th.Now() - before
	if hitCost <= 0 || hitCost > sim.Microsecond {
		t.Fatalf("hit cost = %v, want a DRAM access", hitCost)
	}
}

func TestDDCRandomAccessSlowerThanLocal(t *testing.T) {
	// The premise of Figure 3: random access over a working set much larger
	// than the compute cache is an order of magnitude slower in a DDC.
	run := func(cfg Config) sim.Time {
		m := MustMachine(cfg)
		p := m.NewProcess()
		th := sim.NewThread("t")
		env := p.NewEnv(th)
		const size = 4 << 20
		a := p.Space.AllocPages(size, "buf")
		x := uint64(12345)
		for i := 0; i < 20000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			off := mem.Addr(x % (size / 8) * 8)
			env.ReadU64(a + off)
		}
		return th.Now()
	}
	local := run(Linux())
	d := run(BaseDDC(64 * mem.PageSize)) // cache is ~6% of the working set
	slowdown := float64(d) / float64(local)
	if slowdown < 8 {
		t.Fatalf("DDC slowdown = %.1f×, want ≳8× for random access", slowdown)
	}
}

func TestDDCSequentialPrefetchHelps(t *testing.T) {
	run := func(depth int) sim.Time {
		cfg := BaseDDC(64 * mem.PageSize)
		cfg.PrefetchDepth = depth
		m := MustMachine(cfg)
		p := m.NewProcess()
		th := sim.NewThread("t")
		env := p.NewEnv(th)
		const size = 2 << 20
		a := p.Space.AllocPages(size, "buf")
		for i := mem.Addr(0); i < size; i += 8 {
			env.ReadU64(a + i)
		}
		return th.Now()
	}
	without, with := run(0), run(4)
	if with >= without {
		t.Fatalf("prefetch did not help: %v vs %v", with, without)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	m := MustMachine(BaseDDC(2 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(8*mem.PageSize, "buf")
	// Dirty two pages, then touch more pages to force eviction.
	env.WriteU64(a, 1)
	env.WriteU64(a+mem.PageSize, 2)
	env.ReadU64(a + 2*mem.PageSize)
	env.ReadU64(a + 3*mem.PageSize)
	if p.Stats().Writebacks == 0 {
		t.Fatal("dirty eviction produced no write-back")
	}
	if m.Fabric.Stats(netmodel.ClassWriteback).Msgs == 0 {
		t.Fatal("no write-back messages on the fabric")
	}
	// Data must survive eviction (ground truth lives in the Space).
	if got := env.ReadU64(a); got != 1 {
		t.Fatalf("read-after-evict = %d", got)
	}
}

func TestLinuxSSDSpill(t *testing.T) {
	m := MustMachine(LinuxSSD(4 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(16*mem.PageSize, "buf")
	for pg := 0; pg < 16; pg++ {
		env.WriteU64(a+mem.Addr(pg)*mem.PageSize, uint64(pg))
	}
	// Re-read the first page: it was evicted to SSD.
	if got := env.ReadU64(a); got != 0 {
		t.Fatalf("value = %d, want 0", got)
	}
	st := p.Stats()
	if st.SSDFaults < 16 {
		t.Fatalf("SSDFaults = %d", st.SSDFaults)
	}
	if m.SSD.Stats().Writes == 0 {
		t.Fatal("dirty spill must write to SSD")
	}
	if m.Fabric.Total().Msgs != 0 {
		t.Fatal("monolithic machine must not use the fabric")
	}
}

func TestMemoryPoolSpillsToStorage(t *testing.T) {
	cfg := BaseDDC(2 * mem.PageSize)
	cfg.MemoryPoolBytes = 4 * mem.PageSize
	m := MustMachine(cfg)
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(16*mem.PageSize, "buf")
	for pg := 0; pg < 16; pg++ {
		env.WriteU64(a+mem.Addr(pg)*mem.PageSize, uint64(pg))
	}
	// Going back to page 0 must trigger the recursive fault to storage.
	before := p.Stats().StorageInFault
	env.ReadU64(a)
	if p.Stats().StorageInFault <= before {
		t.Fatal("expected a storage-pool fault")
	}
	if m.Fabric.Stats(netmodel.ClassStorage).Msgs == 0 {
		t.Fatal("no storage-pool traffic recorded")
	}
	if got := env.ReadU64(a); got != 0 {
		t.Fatalf("value = %d, want 0", got)
	}
}

func TestUpgradeOutsidePushdownIsLocal(t *testing.T) {
	m := MustMachine(BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(mem.PageSize, "buf")
	env.ReadU64(a) // faults in read-only
	msgs := m.Fabric.Total().Msgs
	env.WriteU64(a, 9) // upgrade: no pushdown active → no fabric traffic
	if m.Fabric.Total().Msgs != msgs {
		t.Fatal("upgrade without pushdown used the fabric")
	}
	if p.Stats().Upgrades != 1 {
		t.Fatalf("Upgrades = %d", p.Stats().Upgrades)
	}
}

func TestEnvComputeChargesClock(t *testing.T) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	env.Compute(2100) // 2100 ops at 2.1 GHz = 1000 ns
	if th.Now() != 1000 {
		t.Fatalf("Compute charged %v", th.Now())
	}
	env.Dilation = func() float64 { return 2 }
	env.Compute(2100)
	if th.Now() != 3000 {
		t.Fatalf("dilated Compute charged total %v", th.Now())
	}
}

func TestEnvTypedAccessorsRoundTrip(t *testing.T) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	env := p.NewEnv(sim.NewThread("t"))
	a := p.Space.Alloc(128, "vals")
	env.WriteI64(a, -42)
	env.WriteF64(a+8, 2.5)
	env.WriteU32(a+16, 7)
	env.WriteI32(a+20, -7)
	env.WriteU8(a+24, 0xFE)
	if env.ReadI64(a) != -42 || env.ReadF64(a+8) != 2.5 || env.ReadU32(a+16) != 7 ||
		env.ReadI32(a+20) != -7 || env.ReadU8(a+24) != 0xFE {
		t.Fatal("typed accessor round trip failed")
	}
	buf := []byte{1, 2, 3, 4, 5}
	env.WriteBytes(a+32, buf)
	out := make([]byte, 5)
	env.ReadBytes(a+32, out)
	for i := range buf {
		if buf[i] != out[i] {
			t.Fatal("bytes round trip failed")
		}
	}
	r, w := env.Accesses()
	if r == 0 || w == 0 {
		t.Fatal("access counters not incremented")
	}
}

func TestSequentialCheaperThanRandomDRAM(t *testing.T) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	const n = 1 << 18
	a := p.Space.AllocPages(n, "buf")

	seqT := sim.NewThread("seq")
	env := p.NewEnv(seqT)
	for i := mem.Addr(0); i < n; i += 8 {
		env.ReadU64(a + i)
	}

	randT := sim.NewThread("rand")
	env2 := p.NewEnv(randT)
	x := uint64(99)
	for i := 0; i < n/8; i++ {
		x = x*6364136223846793005 + 1
		env2.ReadU64(a + mem.Addr(x%(n/8))*8)
	}
	if randT.Now() < 5*seqT.Now() {
		t.Fatalf("random (%v) should be ≫ sequential (%v)", randT.Now(), seqT.Now())
	}
}

func TestResizeCacheShrinksAndGrows(t *testing.T) {
	m := MustMachine(BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(8*mem.PageSize, "buf")
	for pg := 0; pg < 8; pg++ {
		env.ReadU64(a + mem.Addr(pg)*mem.PageSize)
	}
	if p.Cache.Len() != 8 {
		t.Fatalf("Len = %d", p.Cache.Len())
	}
	p.ResizeCache(2 * mem.PageSize)
	if p.Cache.Len() != 2 || p.Cache.Capacity() != 2 {
		t.Fatalf("after shrink: Len=%d Cap=%d", p.Cache.Len(), p.Cache.Capacity())
	}
	if m.Cfg.ComputeCacheBytes != 2*mem.PageSize {
		t.Fatalf("config not updated: %d", m.Cfg.ComputeCacheBytes)
	}
	p.ResizeCache(16 * mem.PageSize)
	if p.Cache.Capacity() != 16 {
		t.Fatal("grow failed")
	}
	// Resize on an unlimited-memory machine is a no-op.
	lp := MustMachine(Linux()).NewProcess()
	lp.ResizeCache(4096)
	if lp.Cache != nil {
		t.Fatal("monolithic unlimited machine must stay cache-less")
	}
	// Monolithic with a cap updates LocalMemBytes instead.
	sp := MustMachine(LinuxSSD(8 * mem.PageSize)).NewProcess()
	sp.ResizeCache(2 * mem.PageSize)
	if sp.M.Cfg.LocalMemBytes != 2*mem.PageSize {
		t.Fatal("LocalMemBytes not updated")
	}
}

func TestResizePoolCreatesAndRebounds(t *testing.T) {
	m := MustMachine(BaseDDC(4 * mem.PageSize))
	p := m.NewProcess()
	if p.PoolRes != nil {
		t.Fatal("unbounded pool should have nil residency")
	}
	p.ResizePool(8 * mem.PageSize)
	if p.PoolRes == nil || p.PoolRes.Capacity() != 8 {
		t.Fatal("ResizePool did not bound the pool")
	}
	p.ResizePool(2 * mem.PageSize)
	if p.PoolRes.Capacity() != 2 {
		t.Fatal("ResizePool did not rebound")
	}
	// Monolithic machines have no pool.
	lp := MustMachine(Linux()).NewProcess()
	lp.ResizePool(4096)
	if lp.PoolRes != nil {
		t.Fatal("monolithic machine must not grow a pool")
	}
}

func TestWritebackPageClearsDirty(t *testing.T) {
	m := MustMachine(BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.AllocPages(mem.PageSize, "buf")
	env.WriteU64(a, 7)
	pg := mem.PageOf(a)
	if _, dirty, _ := p.Cache.Lookup(pg); !dirty {
		t.Fatal("page should be dirty")
	}
	p.WritebackPage(th, pg)
	if _, dirty, _ := p.Cache.Lookup(pg); dirty {
		t.Fatal("write-back should clear the dirty bit")
	}
	if p.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d", p.Stats().Writebacks)
	}
	p.ResetStats()
	if p.Stats().Writebacks != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestPlaceStringAndMemoryEnv(t *testing.T) {
	if PlaceCompute.String() != "compute" || PlaceMemory.String() != "memory" {
		t.Fatal("Place names")
	}
	m := MustMachine(BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewMemoryEnv(th, nopPager{})
	if env.Place != PlaceMemory || env.ClockGHz != m.Cfg.HW.MemoryClockGHz {
		t.Fatalf("memory env misconfigured: %+v", env)
	}
	a := p.Space.Alloc(8, "x")
	env.WriteU64(a, 5)
	if env.ReadU64(a) != 5 {
		t.Fatal("memory env access")
	}
	env.InvalidateFastPath() // must not panic and must force a pager call
	env.ReadU64(a)
}

type nopPager struct{}

func (nopPager) EnsurePage(*Env, mem.PageID, bool) {}

func TestHooksAccessors(t *testing.T) {
	m := MustMachine(BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	if p.Hooks() != nil {
		t.Fatal("fresh process has no hooks")
	}
	h := testHooks{}
	p.SetPushHooks(h)
	if p.Hooks() == nil {
		t.Fatal("hooks not installed")
	}
	p.SetPushHooks(nil)
	if p.Hooks() != nil {
		t.Fatal("hooks not cleared")
	}
}

type testHooks struct{}

func (testHooks) ComputeFaulted(*sim.Thread, mem.PageID, bool) {}
func (testHooks) ComputeUpgrade(*sim.Thread, mem.PageID)       {}

func TestConfigErrorMessage(t *testing.T) {
	cfg := Config{HW: Linux().HW, Disaggregated: true}
	err := cfg.Validate()
	if err == nil || err.Error() == "" {
		t.Fatal("expected a descriptive error")
	}
}

func TestMustMachinePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustMachine(Config{})
}

func TestCrossPageEnvBytes(t *testing.T) {
	m := MustMachine(BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	env := p.NewEnv(sim.NewThread("t"))
	base := p.Space.AllocPages(2*mem.PageSize, "buf")
	edge := base + mem.PageSize - 3
	in := []byte{1, 2, 3, 4, 5, 6}
	env.WriteBytes(edge, in)
	out := make([]byte, 6)
	env.ReadBytes(edge, out)
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("cross-page env bytes")
		}
	}
	env.ReadBytes(edge, nil) // zero-length must be a no-op
	env.WriteBytes(edge, nil)
}

// poolDownInjector reports the pool down until a fixed virtual time.
// (fault.Plan is the production implementation; a scripted fake keeps the
// test independent of any profile's schedule.)

func TestWaitPoolUpStallsPaging(t *testing.T) {
	m := MustMachine(BaseDDC(4 * mem.PageSize))
	plan := fault.NewPlan(fault.Profile{
		PoolMeanUp:   10 * sim.Millisecond,
		PoolMeanDown: sim.Millisecond,
	}, 3)
	m.AttachFault(plan)
	if m.Fault != plan {
		t.Fatal("AttachFault did not install the plan")
	}
	p := m.NewProcess()
	a := p.Space.AllocPages(mem.PageSize, "x")

	// Find a crash window and issue a remote fault from inside it: the
	// faulting thread must stall to at least the recovery time.
	var at, rec sim.Time
	for probe := sim.Time(0); ; probe += 100 * sim.Microsecond {
		if r, down := plan.PoolDownAt(probe); down {
			at, rec = probe, r
			break
		}
		if probe > 5*sim.Second {
			t.Fatal("no crash window found")
		}
	}
	th := sim.NewThread("t")
	th.AdvanceTo(at)
	env := p.NewEnv(th)
	env.ReadU64(a) // remote fault → stall until recovery
	if th.Now() < rec {
		t.Fatalf("fault at %v finished at %v, before recovery %v", at, th.Now(), rec)
	}
	if m.PoolStalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestAttachFaultNilDetaches(t *testing.T) {
	m := MustMachine(BaseDDC(4 * mem.PageSize))
	m.AttachFault(fault.NewPlan(fault.Chaos(), 1))
	m.AttachFault(nil)
	if m.Fault != nil {
		t.Fatal("plan not detached")
	}
	th := sim.NewThread("t")
	if m.WaitPoolUp(th) {
		t.Fatal("detached machine stalled")
	}
}

func TestAttachTraceWiresFabric(t *testing.T) {
	m := MustMachine(BaseDDC(4 * mem.PageSize))
	r := trace.New(16)
	m.AttachTrace(r)
	if m.Trace != r {
		t.Fatal("ring not installed")
	}
	// The fabric shares the ring: force a retry and expect an rpc-retry
	// event in the machine's ring.
	prof := fault.Profile{}
	prof.SetNetAll(fault.NetFaults{DropProb: 1})
	m.AttachFault(fault.NewPlan(prof, 1))
	m.Fabric.Send(sim.NewThread("t"), 64, netmodel.ClassSync)
	if r.CountByKind()[trace.KindRPCRetry] == 0 {
		t.Fatal("fabric retry events did not reach the machine's ring")
	}
}
