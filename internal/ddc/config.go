// Package ddc implements the disaggregated operating system substrate the
// paper builds on (§2.1, LegoOS-style): a compute pool whose local memory is
// nothing more than a page cache, a memory pool holding the process's entire
// address space behind a controller, and a storage pool the memory pool
// spills to. The same Machine, differently configured, also models the
// monolithic-Linux baselines (with and without an SSD swap path), so every
// experiment compares platforms that differ only in configuration.
//
// Application data lives as real bytes in a mem.Space; the ddc layer decides
// what every access costs (DRAM, fabric round trips, SSD paging) and
// maintains the residency/permission state that TELEPORT's coherence
// protocol (internal/core) manipulates during pushdown.
package ddc

import (
	"teleport/internal/hw"
	"teleport/internal/mem"
)

// Config selects a platform.
type Config struct {
	// HW is the hardware cost model.
	HW hw.Config

	// Disaggregated selects the DDC platforms. When false the machine is a
	// monolithic server.
	Disaggregated bool

	// ComputeCacheBytes bounds the compute pool's local memory (the paper
	// uses 1 GB). Only meaningful when Disaggregated. Zero means unlimited,
	// which degenerates to local execution and is rejected by Validate for
	// disaggregated configs.
	ComputeCacheBytes int64

	// MemoryPoolBytes bounds the memory pool's DRAM; pages beyond it spill
	// to the storage pool (Figure 15 sweeps this). Zero means unlimited.
	MemoryPoolBytes int64

	// LocalMemBytes bounds a monolithic server's DRAM; pages beyond it
	// swap to the local SSD (the "Linux with NVMe SSD" baseline of Figures
	// 1a, 14, 15). Zero means unlimited.
	LocalMemBytes int64

	// PrefetchDepth is the number of extra sequential pages the base DDC
	// fetches per miss, modelling LegoOS's caching/prefetching
	// optimisations (§1). Zero disables prefetch.
	PrefetchDepth int

	// PoolShards splits the memory pool across this many controllers, each
	// an independent crash domain under the fault plan's per-shard
	// schedules; pages stripe across shards by page ID (ShardOf). 0 or 1
	// keeps the single-controller pool. Only meaningful when Disaggregated.
	PoolShards int

	// Replicas keeps every page on this many distinct shards — its primary
	// plus R−1 backups, written synchronously (Machine.ReplicatePage) — so
	// reads fail over to a live replica during a single-shard outage. 0 or
	// 1 disables replication. Requires Replicas ≤ PoolShards.
	Replicas int
}

// Linux returns a monolithic server with unlimited local memory (the paper's
// "Local execution" reference).
func Linux() Config {
	return Config{HW: hw.Testbed()}
}

// LinuxSSD returns a monolithic server whose DRAM is capped at localMem
// bytes, spilling to the NVMe SSD.
func LinuxSSD(localMem int64) Config {
	c := Linux()
	c.LocalMemBytes = localMem
	return c
}

// BaseDDC returns the disaggregated platform with the given compute-local
// cache, standing in for LegoOS.
func BaseDDC(cacheBytes int64) Config {
	return Config{
		HW:                hw.Testbed(),
		Disaggregated:     true,
		ComputeCacheBytes: cacheBytes,
		PrefetchDepth:     2,
	}
}

// Validate rejects nonsensical configurations.
func (c *Config) Validate() error {
	if err := c.HW.Validate(); err != nil {
		return err
	}
	if c.Disaggregated && c.ComputeCacheBytes <= 0 {
		return errConfig("disaggregated machine needs a finite compute cache")
	}
	if c.Disaggregated && c.LocalMemBytes != 0 {
		return errConfig("LocalMemBytes applies only to monolithic machines")
	}
	if !c.Disaggregated && (c.ComputeCacheBytes != 0 || c.MemoryPoolBytes != 0) {
		return errConfig("pool sizes apply only to disaggregated machines")
	}
	if c.PoolShards < 0 || c.Replicas < 0 {
		return errConfig("pool shards and replicas cannot be negative")
	}
	if !c.Disaggregated && (c.PoolShards > 1 || c.Replicas > 1) {
		return errConfig("pool shards and replicas apply only to disaggregated machines")
	}
	if c.Replicas > 1 && c.Replicas > c.PoolShards {
		return errConfig("replicas cannot exceed pool shards")
	}
	return nil
}

// Shards returns the effective shard count of the memory pool (≥ 1).
func (c *Config) Shards() int {
	if !c.Disaggregated || c.PoolShards <= 1 {
		return 1
	}
	return c.PoolShards
}

// EffReplicas returns the effective per-page copy count, clamped to
// [1, Shards()].
func (c *Config) EffReplicas() int {
	r := c.Replicas
	if r <= 1 {
		return 1
	}
	if k := c.Shards(); r > k {
		return k
	}
	return r
}

// CachePages converts ComputeCacheBytes into whole pages.
func (c *Config) CachePages() int { return int(c.ComputeCacheBytes / mem.PageSize) }

type errConfig string

func (e errConfig) Error() string { return "ddc: invalid config: " + string(e) }
