// Package ddc implements the disaggregated operating system substrate the
// paper builds on (§2.1, LegoOS-style): a compute pool whose local memory is
// nothing more than a page cache, a memory pool holding the process's entire
// address space behind a controller, and a storage pool the memory pool
// spills to. The same Machine, differently configured, also models the
// monolithic-Linux baselines (with and without an SSD swap path), so every
// experiment compares platforms that differ only in configuration.
//
// Application data lives as real bytes in a mem.Space; the ddc layer decides
// what every access costs (DRAM, fabric round trips, SSD paging) and
// maintains the residency/permission state that TELEPORT's coherence
// protocol (internal/core) manipulates during pushdown.
package ddc

import (
	"teleport/internal/hw"
	"teleport/internal/mem"
)

// Config selects a platform.
type Config struct {
	// HW is the hardware cost model.
	HW hw.Config

	// Disaggregated selects the DDC platforms. When false the machine is a
	// monolithic server.
	Disaggregated bool

	// ComputeCacheBytes bounds the compute pool's local memory (the paper
	// uses 1 GB). Only meaningful when Disaggregated. Zero means unlimited,
	// which degenerates to local execution and is rejected by Validate for
	// disaggregated configs.
	ComputeCacheBytes int64

	// MemoryPoolBytes bounds the memory pool's DRAM; pages beyond it spill
	// to the storage pool (Figure 15 sweeps this). Zero means unlimited.
	MemoryPoolBytes int64

	// LocalMemBytes bounds a monolithic server's DRAM; pages beyond it
	// swap to the local SSD (the "Linux with NVMe SSD" baseline of Figures
	// 1a, 14, 15). Zero means unlimited.
	LocalMemBytes int64

	// PrefetchDepth is the number of extra sequential pages the base DDC
	// fetches per miss, modelling LegoOS's caching/prefetching
	// optimisations (§1). Zero disables prefetch.
	PrefetchDepth int

	// PoolShards splits the memory pool across this many controllers, each
	// an independent crash domain under the fault plan's per-shard
	// schedules; pages stripe across shards by page ID (ShardOf). 0 or 1
	// keeps the single-controller pool. Only meaningful when Disaggregated.
	PoolShards int

	// Replicas keeps every page on this many distinct shards — its primary
	// plus R−1 backups, written synchronously (Machine.ReplicatePage) — so
	// reads fail over to a live replica during a single-shard outage. 0 or
	// 1 disables replication. Requires Replicas ≤ PoolShards.
	Replicas int

	// WriteQuorum is W, the number of replica acks a write needs before it
	// commits. A write that cannot reach a replica (shard crashed, or the
	// link to it partitioned) enqueues a deterministic hinted-handoff
	// record instead, and stalls only when fewer than W copies are
	// reachable. 0 or 1 keeps the legacy synchronous fan-out, which never
	// stalls (unreachable replicas are journalled for re-sync). Requires
	// W ≤ Replicas and W + R′ > Replicas (R′ = ReadQuorum).
	WriteQuorum int

	// ReadQuorum is R′, the number of distinct replicas a failover read
	// consults so that any committed write (W acks) intersects the read
	// set and staleness is detected, triggering read-repair. 0 derives the
	// smallest valid value: Replicas − W + 1 when W > 1, else 1.
	ReadQuorum int
}

// Linux returns a monolithic server with unlimited local memory (the paper's
// "Local execution" reference).
func Linux() Config {
	return Config{HW: hw.Testbed()}
}

// LinuxSSD returns a monolithic server whose DRAM is capped at localMem
// bytes, spilling to the NVMe SSD.
func LinuxSSD(localMem int64) Config {
	c := Linux()
	c.LocalMemBytes = localMem
	return c
}

// BaseDDC returns the disaggregated platform with the given compute-local
// cache, standing in for LegoOS.
func BaseDDC(cacheBytes int64) Config {
	return Config{
		HW:                hw.Testbed(),
		Disaggregated:     true,
		ComputeCacheBytes: cacheBytes,
		PrefetchDepth:     2,
	}
}

// Validate rejects nonsensical configurations.
func (c *Config) Validate() error {
	if err := c.HW.Validate(); err != nil {
		return err
	}
	if c.Disaggregated && c.ComputeCacheBytes <= 0 {
		return errConfig("disaggregated machine needs a finite compute cache")
	}
	if c.Disaggregated && c.LocalMemBytes != 0 {
		return errConfig("LocalMemBytes applies only to monolithic machines")
	}
	if !c.Disaggregated && (c.ComputeCacheBytes != 0 || c.MemoryPoolBytes != 0) {
		return errConfig("pool sizes apply only to disaggregated machines")
	}
	if c.PoolShards < 0 || c.Replicas < 0 {
		return errConfig("pool shards and replicas cannot be negative")
	}
	if !c.Disaggregated && (c.PoolShards > 1 || c.Replicas > 1) {
		return errConfig("pool shards and replicas apply only to disaggregated machines")
	}
	if c.Replicas > 1 && c.Replicas > c.PoolShards {
		return errConfig("replicas cannot exceed pool shards")
	}
	if c.WriteQuorum < 0 || c.ReadQuorum < 0 {
		return errConfig("write and read quorums cannot be negative")
	}
	if !c.Disaggregated && (c.WriteQuorum > 1 || c.ReadQuorum > 1) {
		return errConfig("write and read quorums apply only to disaggregated machines")
	}
	if r := c.EffReplicas(); c.WriteQuorum > 1 || c.ReadQuorum > 1 {
		if r <= 1 {
			return errConfig("write and read quorums require replication (Replicas > 1)")
		}
		if c.WriteQuorum > r {
			return errConfig("write quorum cannot exceed replicas")
		}
		if c.ReadQuorum > r {
			return errConfig("read quorum cannot exceed replicas")
		}
		if c.EffWriteQuorum()+c.EffReadQuorum() <= r {
			return errConfig("write quorum + read quorum must exceed replicas (W + R' > R)")
		}
	}
	return nil
}

// Shards returns the effective shard count of the memory pool (≥ 1).
func (c *Config) Shards() int {
	if !c.Disaggregated || c.PoolShards <= 1 {
		return 1
	}
	return c.PoolShards
}

// EffReplicas returns the effective per-page copy count, clamped to
// [1, Shards()].
func (c *Config) EffReplicas() int {
	r := c.Replicas
	if r <= 1 {
		return 1
	}
	if k := c.Shards(); r > k {
		return k
	}
	return r
}

// EffWriteQuorum returns the effective write quorum W, clamped to
// [1, EffReplicas()]. W == 1 is the legacy regime: a write commits as soon as
// its serving copy lands and every other replica is either written through or
// journalled, with no quorum stall.
func (c *Config) EffWriteQuorum() int {
	w := c.WriteQuorum
	if w <= 1 {
		return 1
	}
	if r := c.EffReplicas(); w > r {
		return r
	}
	return w
}

// EffReadQuorum returns the effective read quorum R′: the explicit ReadQuorum
// when set, otherwise the smallest value satisfying W + R′ > R (so a read set
// always intersects a committed write set), which is 1 in the legacy W ≤ 1
// regime.
func (c *Config) EffReadQuorum() int {
	r := c.EffReplicas()
	if r <= 1 {
		return 1
	}
	if rq := c.ReadQuorum; rq > 0 {
		if rq > r {
			return r
		}
		return rq
	}
	if w := c.EffWriteQuorum(); w > 1 {
		return r - w + 1
	}
	return 1
}

// CachePages converts ComputeCacheBytes into whole pages.
func (c *Config) CachePages() int { return int(c.ComputeCacheBytes / mem.PageSize) }

type errConfig string

func (e errConfig) Error() string { return "ddc: invalid config: " + string(e) }
