package ddc

import (
	"testing"

	"teleport/internal/mem"
	"teleport/internal/sim"
)

// BenchmarkCachedScan measures the host cost of a sequential scan over
// resident memory — the hot loop every workload's operators reduce to. The
// fast path (page TLB + hot-line memo) should keep this to a few ns per
// access with zero allocations.
func BenchmarkCachedScan(b *testing.B) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	th := sim.NewThread("bench")
	env := p.NewEnv(th)
	const bytes = 1 << 20
	a := p.Space.Alloc(bytes, "buf")
	// Warm pass so every frame exists.
	for off := mem.Addr(0); off < bytes; off += 8 {
		env.ReadU64(a + off)
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for off := mem.Addr(0); off < bytes; off += 8 {
			sink ^= env.ReadU64(a + off)
		}
	}
	_ = sink
}

// BenchmarkCachedScanBatched is the same scan through the batched accessor
// used by the engines' paired-value hot loops.
func BenchmarkCachedScanBatched(b *testing.B) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	th := sim.NewThread("bench")
	env := p.NewEnv(th)
	const bytes = 1 << 20
	a := p.Space.Alloc(bytes, "buf")
	var buf [64]uint64
	for off := mem.Addr(0); off < bytes; off += mem.Addr(len(buf) * 8) {
		env.ReadU64s(a+off, buf[:])
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := mem.Addr(0); off < bytes; off += mem.Addr(len(buf) * 8) {
			env.ReadU64s(a+off, buf[:])
		}
	}
}

// TestCachedScanNoAlloc pins the zero-copy fast path: steady-state reads
// through the Env allocate nothing on the host.
func TestCachedScanNoAlloc(t *testing.T) {
	m := MustMachine(Linux())
	p := m.NewProcess()
	th := sim.NewThread("t")
	env := p.NewEnv(th)
	a := p.Space.Alloc(64*mem.PageSize, "buf")
	for off := mem.Addr(0); off < 64*mem.PageSize; off += 8 {
		env.ReadU64(a + off)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for off := mem.Addr(0); off < 64*mem.PageSize; off += 8 {
			env.ReadU64(a + off)
		}
	})
	if allocs > 0 {
		t.Fatalf("cached scan allocates %.1f objects per pass, want 0", allocs)
	}
}
