package profile_test

import (
	"testing"

	"teleport/internal/coldb"
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

func TestExecProfilesAndPushesOperators(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(32 * mem.PageSize))
	p := m.NewProcess()
	rt := core.NewRuntime(p, 1)
	db := coldb.NewDB(p)
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	tab := db.CreateTable("r", n, coldb.ColumnSpec{Name: "v", Type: coldb.I64})
	col := tab.Col("v")
	col.LoadI64(p, vals)

	run := func(pushSelect bool) (sim.Time, []profile.OpStat, float64) {
		th := sim.NewThread("q")
		ex := profile.NewExec(th, p, rt)
		if pushSelect {
			ex.Push("Selection")
		}
		var sum float64
		ex.Run("Selection", func(env *ddc.Env) {
			cand := coldb.SelectI64(env, col, coldb.PredI64{Op: coldb.CmpLT, Lo: 10}, nil)
			sum = coldb.Aggregate(env, col, coldb.AggSum, cand)
		})
		return ex.Total(), ex.Profile(), sum
	}

	baseT, prof, sum1 := run(false)
	pushT, profPush, sum2 := run(true)
	if sum1 != sum2 {
		t.Fatalf("pushdown changed the answer: %v vs %v", sum1, sum2)
	}
	if len(prof) != 1 || prof[0].Name != "Selection" || prof[0].Pushed {
		t.Fatalf("profile = %+v", prof)
	}
	if !profPush[0].Pushed {
		t.Fatal("pushed profile not marked")
	}
	if pushT >= baseT {
		t.Fatalf("pushing the scan did not help: %v vs %v", pushT, baseT)
	}
	if prof[0].Intensity() <= 0 {
		t.Fatal("intensity must be positive on the base DDC")
	}
}

func TestExecAccumulatesRepeatedOperators(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(32 * mem.PageSize))
	p := m.NewProcess()
	th := sim.NewThread("q")
	ex := profile.NewExec(th, p, nil)
	for i := 0; i < 3; i++ {
		ex.Run("Op", func(env *ddc.Env) { env.Compute(1000) })
	}
	prof := ex.Profile()
	if len(prof) != 1 || prof[0].Calls != 3 {
		t.Fatalf("profile = %+v", prof)
	}
	if ex.Total() != prof[0].Time {
		t.Fatal("Total != summed op time")
	}
	if ex.Pushed("Op") {
		t.Fatal("Op was never marked for pushdown")
	}
}

func TestByIntensityRanksMemoryBoundFirst(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(8 * mem.PageSize))
	p := m.NewProcess()
	a := p.Space.AllocPages(256*mem.PageSize, "buf")
	th := sim.NewThread("q")
	ex := profile.NewExec(th, p, nil)
	ex.Run("cpu", func(env *ddc.Env) { env.Compute(1_000_000) })
	ex.Run("mem", func(env *ddc.Env) {
		for i := 0; i < 200; i++ {
			env.ReadI64(a + mem.Addr(i)*mem.PageSize)
		}
	})
	if names := ex.ByIntensity(); names[0] != "mem" {
		t.Fatalf("ByIntensity = %v", names)
	}
}
