// Package profile provides the instrumented operator executor shared by all
// three data-intensive systems (DBMS operators, graph phases, MapReduce
// sub-phases): it runs each named operator either locally or Teleported to
// the memory pool and records a per-operator profile (execution time plus
// remote memory traffic) — the instrumentation behind Figures 10, 12, 13
// and 18.
package profile

import (
	"sort"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/metrics"
	"teleport/internal/sim"
)

// Exec runs operators on one simulated thread, optionally Teleporting named
// operators to the memory pool, and records a per-operator profile.
type Exec struct {
	T   *sim.Thread
	P   *ddc.Process
	RT  *core.Runtime // nil on monolithic platforms
	Env *ddc.Env

	// push holds the operator names to Teleport ("" = none). The level of
	// pushdown (Figure 18) is exactly the size of this set.
	push map[string]bool

	// PushFlags are passed to every pushdown call.
	PushFlags core.Flags

	// PushDeadline is the per-attempt virtual-time budget passed to every
	// pushdown call (core.Options.Deadline); zero means no budget.
	PushDeadline sim.Time

	// Policy is the recovery policy applied to every pushdown: recoverable
	// failures (cancellation, pool crashes, context crashes) are retried and
	// then degraded to local execution, so a chaos run still computes the
	// same answer. Zero values fall back immediately without retrying.
	Policy core.RetryThenLocal

	ops  []OpStat
	byID map[string]int
}

// OpStat is one operator's accumulated profile.
type OpStat struct {
	Name       string
	Time       sim.Time
	RemoteMsgs int64
	RemoteByte int64
	Calls      int
	Pushed     bool

	// Attr breaks Time down by attribution component (wire, SSD, fault
	// handling, pushdown protocol, ...); Time minus Attr's total is the
	// operator's pure compute.
	Attr metrics.TimeSet
}

// Intensity returns remote memory accesses per second of operator time —
// the §7.4 pushdown-decision metric (RM/s).
func (o OpStat) Intensity() float64 {
	if o.Time <= 0 {
		return 0
	}
	return float64(o.RemoteMsgs) / o.Time.Seconds()
}

// NewExec returns an executor for p on t. rt may be nil (no pushdown
// possible, e.g. local execution).
func NewExec(t *sim.Thread, p *ddc.Process, rt *core.Runtime) *Exec {
	return &Exec{
		T:      t,
		P:      p,
		RT:     rt,
		Env:    p.NewEnv(t),
		Policy: core.DefaultRetryThenLocal(),
		push:   make(map[string]bool),
		byID:   make(map[string]int),
	}
}

// Push marks operator names for Teleport pushdown.
func (ex *Exec) Push(names ...string) *Exec {
	for _, n := range names {
		ex.push[n] = true
	}
	return ex
}

// Pushed reports whether an operator name is marked for pushdown.
func (ex *Exec) Pushed(name string) bool { return ex.push[name] }

// Run executes one operator: pushed down if marked (and a runtime exists),
// locally otherwise, accumulating its profile either way.
func (ex *Exec) Run(name string, fn func(env *ddc.Env)) {
	start := ex.T.Now()
	before := ex.P.M.Fabric.Total()
	attrBefore := *ex.P.M.Times
	pushed := ex.push[name] && ex.RT != nil
	if pushed {
		// PushdownWithPolicy absorbs recoverable failures (retry, then
		// compute-side fallback); only non-recoverable errors — a killed
		// function or a remote panic — surface, and those are bugs in the
		// operator, not the platform.
		var err error
		_, pushed, err = ex.RT.PushdownWithPolicy(ex.T, fn,
			core.Options{Flags: ex.PushFlags, Deadline: ex.PushDeadline}, ex.Policy)
		if err != nil {
			panic("profile: pushdown failed: " + err.Error())
		}
	} else {
		fn(ex.Env)
	}
	after := ex.P.M.Fabric.Total()
	i, ok := ex.byID[name]
	if !ok {
		i = len(ex.ops)
		ex.ops = append(ex.ops, OpStat{Name: name})
		ex.byID[name] = i
	}
	o := &ex.ops[i]
	o.Time += ex.T.Now() - start
	o.RemoteMsgs += after.Msgs - before.Msgs
	o.RemoteByte += after.Bytes - before.Bytes
	o.Calls++
	o.Pushed = o.Pushed || pushed
	o.Attr.AddSet(ex.P.M.Times.Sub(attrBefore))
	ex.P.M.Metrics.Counter("op." + name + ".calls").Inc()
	ex.P.M.Metrics.Histogram("op." + name + ".ns").Observe(ex.T.Now() - start)
}

// Profile returns the per-operator stats in first-execution order.
func (ex *Exec) Profile() []OpStat { return append([]OpStat(nil), ex.ops...) }

// Total returns the summed operator time.
func (ex *Exec) Total() sim.Time {
	var t sim.Time
	for _, o := range ex.ops {
		t += o.Time
	}
	return t
}

// ByIntensity returns operator names sorted by descending memory intensity,
// the ranking §7.4 pushes down by.
func (ex *Exec) ByIntensity() []string {
	ops := ex.Profile()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Intensity() > ops[j].Intensity() })
	names := make([]string, len(ops))
	for i, o := range ops {
		names[i] = o.Name
	}
	return names
}
