package advisor

import (
	"strings"
	"testing"

	"teleport/internal/hw"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

func mkOp(name string, t sim.Time, msgs int64) profile.OpStat {
	return profile.OpStat{Name: name, Time: t, RemoteMsgs: msgs, Calls: 1}
}

func TestThresholdRule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdRMps = 80_000
	hwCfg := hw.Testbed()
	prof := []profile.OpStat{
		mkOp("hot", sim.Second, 200_000), // 200K RM/s
		mkOp("cold", sim.Second, 10_000), // 10K RM/s
	}
	push, decisions := Recommend(prof, cfg, &hwCfg)
	if len(push) != 1 || push[0] != "hot" {
		t.Fatalf("push = %v", push)
	}
	if len(decisions) != 2 || !decisions[0].Push || decisions[1].Push {
		t.Fatalf("decisions = %+v", decisions)
	}
	if !strings.Contains(decisions[0].String(), "push hot") {
		t.Fatalf("decision string: %s", decisions[0])
	}
}

func TestCostModelPushesMemoryBoundOps(t *testing.T) {
	cfg := DefaultConfig()
	hwCfg := hw.Testbed()
	// An operator that spent nearly all its time waiting on 50k remote
	// faults: pushing saves almost everything.
	memBound := mkOp("probe", 200*sim.Millisecond, 100_000)
	// A pure-CPU operator with a handful of faults: pushing pays the clock
	// ratio for nothing (make the memory pool slower so it matters).
	hwCfg.MemoryClockGHz = 1.05
	cpuBound := mkOp("eval", 200*sim.Millisecond, 10)

	push, _ := Recommend([]profile.OpStat{memBound, cpuBound}, cfg, &hwCfg)
	if len(push) != 1 || push[0] != "probe" {
		t.Fatalf("push = %v", push)
	}
}

func TestEstimateSavingSigns(t *testing.T) {
	cfg := DefaultConfig()
	hwCfg := hw.Testbed()
	if EstimateSaving(mkOp("x", 100*sim.Millisecond, 20_000), cfg, &hwCfg) <= 0 {
		t.Fatal("heavily remote operator must have positive estimated saving")
	}
	hwCfg.MemoryClockGHz = 0.4
	if EstimateSaving(mkOp("y", 100*sim.Millisecond, 2), cfg, &hwCfg) >= 0 {
		t.Fatal("CPU-bound operator on a slow memory pool must have negative saving")
	}
}

func TestTableEntriesChargeOverhead(t *testing.T) {
	cfg := DefaultConfig()
	hwCfg := hw.Testbed()
	op := mkOp("small", sim.Millisecond, 400)
	without := EstimateSaving(op, cfg, &hwCfg)
	cfg.TableEntries = 10_000_000 // a huge page table makes setup dominate
	with := EstimateSaving(op, cfg, &hwCfg)
	if with >= without {
		t.Fatalf("table-clone overhead ignored: %v vs %v", with, without)
	}
}

func TestDecisionsSortedByIntensity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ThresholdRMps = 1
	hwCfg := hw.Testbed()
	prof := []profile.OpStat{
		mkOp("low", sim.Second, 100),
		mkOp("high", sim.Second, 100_000),
		mkOp("mid", sim.Second, 10_000),
	}
	_, decisions := Recommend(prof, cfg, &hwCfg)
	if decisions[0].Operator != "high" || decisions[2].Operator != "low" {
		t.Fatalf("order = %v", decisions)
	}
}
