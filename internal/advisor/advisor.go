// Package advisor implements the paper's future-work item from §5.1/§7.4:
// automatically deciding which operators to push down. The paper profiles a
// query on the base DDC, ranks operators by *memory intensity* (remote
// memory accesses per second, RM/s) and observes that a fixed threshold —
// 80K RM/s on its testbed — separates the operators worth pushing from the
// ones where pushdown overhead and the memory pool's weaker CPU win
// ("Applying Teleport automatically while accounting for these parameters
// is a promising future direction").
//
// The advisor offers both that threshold rule and a cost-based estimate
// that prices each operator's pushdown against the hardware model: the
// remote traffic it would save versus the pushdown overhead and the clock
// difference it would pay.
package advisor

import (
	"fmt"
	"sort"

	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

// Config tunes the decision.
type Config struct {
	// ThresholdRMps pushes every operator whose profiled intensity exceeds
	// this many remote messages per second. Zero disables the threshold
	// rule in favour of the cost model.
	ThresholdRMps float64

	// MinBenefit is the cost model's floor: operators whose estimated
	// saving is below this are left in the compute pool (guards against
	// pushing trivially small operators whose call overhead dominates).
	MinBenefit sim.Time

	// TableEntries estimates the process's page-table size for the
	// per-call context-setup overhead (pages of the working set).
	TableEntries int64
}

// DefaultConfig mirrors the paper's testbed rule of thumb.
func DefaultConfig() Config {
	return Config{
		MinBenefit: 50 * sim.Microsecond,
	}
}

// Decision explains one operator's verdict.
type Decision struct {
	Operator  string
	Push      bool
	Intensity float64  // RM/s from the profiling run
	Saving    sim.Time // estimated net time saved by pushing (cost model)
	Reason    string
}

// String renders the decision.
func (d Decision) String() string {
	verb := "keep"
	if d.Push {
		verb = "push"
	}
	return fmt.Sprintf("%s %s (RM/s=%.0f, est. saving=%v): %s",
		verb, d.Operator, d.Intensity, d.Saving, d.Reason)
}

// Recommend analyses a base-DDC profile and returns the operators to push
// together with the per-operator reasoning. The profile must come from a
// run on the disaggregated platform (a local profile has no remote
// accesses to reason about).
func Recommend(prof []profile.OpStat, cfg Config, hwCfg *hw.Config) ([]string, []Decision) {
	decisions := make([]Decision, 0, len(prof))
	var push []string
	for _, op := range prof {
		d := decide(op, cfg, hwCfg)
		decisions = append(decisions, d)
		if d.Push {
			push = append(push, op.Name)
		}
	}
	sort.Slice(decisions, func(i, j int) bool {
		return decisions[i].Intensity > decisions[j].Intensity
	})
	return push, decisions
}

func decide(op profile.OpStat, cfg Config, hwCfg *hw.Config) Decision {
	d := Decision{Operator: op.Name, Intensity: op.Intensity()}
	d.Saving = EstimateSaving(op, cfg, hwCfg)
	if cfg.ThresholdRMps > 0 {
		d.Push = d.Intensity >= cfg.ThresholdRMps
		if d.Push {
			d.Reason = fmt.Sprintf("intensity above the %.0f RM/s threshold", cfg.ThresholdRMps)
		} else {
			d.Reason = "intensity below threshold"
		}
		return d
	}
	min := cfg.MinBenefit
	d.Push = d.Saving > min
	if d.Push {
		d.Reason = "estimated saving exceeds pushdown overhead"
	} else {
		d.Reason = fmt.Sprintf("estimated saving %v below the %v floor", d.Saving, min)
	}
	return d
}

// EstimateSaving prices pushing one operator using the hardware model:
//
//	saved  = remote messages it caused × (remote fault cost − local DRAM cost)
//	paid   = CPU share re-run at the memory clock + per-call overhead
//	       (request/response RPC + page-table clone)
//
// The estimate is deliberately simple — a real DDC-aware optimiser is the
// paper's future work — but it is derived from the same quantities the
// paper's RM/s heuristic uses, plus the clock ratio Figure 18 sweeps.
func EstimateSaving(op profile.OpStat, cfg Config, hwCfg *hw.Config) sim.Time {
	faultNs := hwCfg.RoundTripNs(64, mem.PageSize+32) + hwCfg.FaultHandleNs
	saved := float64(op.RemoteMsgs) / 2 * (faultNs - hwCfg.DRAMRandNs)

	// The CPU portion of the operator's time slows by the clock ratio when
	// executed in the memory pool. Approximate the CPU portion as what is
	// left after remote waiting.
	remoteNs := float64(op.RemoteMsgs) / 2 * faultNs
	cpuNs := float64(op.Time) - remoteNs
	if cpuNs < 0 {
		cpuNs = 0
	}
	ratio := hwCfg.ComputeClockGHz / hwCfg.MemoryClockGHz
	paid := cpuNs * (ratio - 1)

	// Per-call overhead: the pushdown RPC pair plus cloning the table.
	paid += hwCfg.MsgNs(512) + hwCfg.MsgNs(96)
	paid += hw.OpNs(hwCfg.MemoryClockGHz, float64(cfg.TableEntries)*hwCfg.PTEVisitOps) * float64(op.Calls)

	net := saved - paid
	if net < 0 {
		return -sim.FromNs(-net)
	}
	return sim.FromNs(net)
}

// AutoPush profiles nothing itself: it wires a recommendation into an
// executor, returning the chosen operator names for reporting.
func AutoPush(ex *profile.Exec, prof []profile.OpStat, cfg Config, hwCfg *hw.Config) []string {
	names, _ := Recommend(prof, cfg, hwCfg)
	ex.Push(names...)
	return names
}
