// Package confine checks that mutable simulator state stays confined to
// its owning scheduler goroutine: goroutine closures must not capture
// it, goroutine calls must not receive it, and channels must not
// transmit it.
//
// The deterministic scheduler serializes all simulator mutation onto
// cooperative threads; a host goroutine that captures a *sim.Thread or a
// *ddc.Machine can interleave mutations with the scheduler arbitrarily,
// producing run-to-run divergence that no seed pins down. These are the
// ground rules the planned conservative parallel DES core relies on:
// workers may exchange values (page ids, byte counts, result slices) but
// never the simulator objects themselves. The check inspects every `go`
// statement's closure free variables, call arguments, and receiver, and
// every channel send, against a registry of confined types. The sim
// package itself is exempt — its scheduler goroutines ARE the
// confinement mechanism.
package confine

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"teleport/internal/analysis"
)

// Analyzer is the confine check.
var Analyzer = &analysis.Analyzer{
	Name: "confine",
	Doc:  "goroutine closures and channel sends must not capture or transmit mutable simulator state (*sim.Thread, *ddc.Machine, pager state, ...)",
	DefaultFilter: func(pkgPath string) bool {
		if !strings.HasPrefix(pkgPath, "teleport/internal/") {
			return false
		}
		// The scheduler owns the confinement mechanism, and the analysis
		// tree manipulates no simulator state.
		return !strings.HasPrefix(pkgPath, "teleport/internal/sim") &&
			!strings.HasPrefix(pkgPath, "teleport/internal/analysis")
	},
	Run: run,
}

// confined registers the mutable simulator types by package base and
// name (fixtures use stand-in packages with the same bases).
var confined = map[string]map[string]bool{
	"sim":   {"Thread": true, "Scheduler": true, "Domain": true},
	"ddc":   {"Machine": true, "Process": true, "Env": true, "PageCache": true},
	"mem":   {"Space": true},
	"core":  {"Runtime": true},
	"trace": {"Tracer": true},
	"fault": {"Plan": true},
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGo(pass, n)
		case *ast.SendStmt:
			if t := confinedType(pass.Info.Types[n.Value].Type); t != "" {
				pass.Reportf(n.Arrow,
					"sending mutable simulator state (%s) across a channel: simulator objects are confined to their owning goroutine; send values, not machinery (or //lint:allow confine <reason>)", t)
			}
		}
		return true
	})
	return nil
}

// checkGo flags confined state flowing into a goroutine: captured by
// the closure, passed as an argument, or used as the call's receiver.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	call := g.Call
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		checkCapture(pass, lit)
	} else if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[sel.X]; ok {
			if t := confinedType(tv.Type); t != "" {
				pass.Reportf(sel.X.Pos(),
					"launching a goroutine on mutable simulator state (%s): its methods mutate state owned by the scheduler goroutine (or //lint:allow confine <reason>)", t)
			}
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok {
			if t := confinedType(tv.Type); t != "" {
				pass.Reportf(arg.Pos(),
					"passing mutable simulator state (%s) to a goroutine: simulator objects are confined to their owning goroutine (or //lint:allow confine <reason>)", t)
			}
		}
	}
}

// checkCapture flags free variables of a goroutine closure whose type is
// confined. A variable is free if it is declared outside the literal.
func checkCapture(pass *analysis.Pass, lit *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || reported[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // parameter or local of the literal itself
		}
		if t := confinedType(obj.Type()); t != "" {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine closure captures mutable simulator state (%q, %s): simulator objects are confined to their owning goroutine; pass values instead (or //lint:allow confine <reason>)",
				obj.Name(), t)
		}
		return true
	})
}

// confinedType reports t's display name if (pointer chains aside) it is
// a registered confined type, or "".
func confinedType(t types.Type) string {
	if t == nil {
		return ""
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	base := path.Base(obj.Pkg().Path())
	if !confined[base][obj.Name()] {
		return ""
	}
	return types.TypeString(named, func(p *types.Package) string {
		return path.Base(p.Path())
	})
}
