package confine_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/confine"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), confine.Analyzer, "confine")
}
