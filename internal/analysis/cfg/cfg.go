// Package cfg builds intraprocedural control-flow graphs over go/ast,
// the substrate for ddclint's all-paths analyzers (spanbalance,
// timecharge). It is stdlib-only — a deliberately small stand-in for
// golang.org/x/tools/go/cfg, which this zero-dependency module does not
// vendor.
//
// A Graph has one basic block per straight-line statement run, plus two
// distinguished empty blocks: Exit collects every normal exit (each
// return statement and falling off the end of the body) and Panic
// collects explicit panic(...) calls. Branches, loops (with labeled
// break/continue), switch/type-switch/select, goto, and fallthrough all
// contribute edges. Defer statements are ordinary block nodes: a defer
// runs at every exit downstream of its registration point, which is
// exactly how path-sensitive analyzers must treat it, so the builder
// leaves them in place rather than splicing them before Exit.
//
// Blocks carry ast.Nodes in evaluation order: leaf statements appear
// whole, and for structured statements only the sub-expressions
// evaluated in that block appear (an if condition, a range operand, a
// switch tag). Nested function literals are separate functions — their
// bodies are NOT flattened into the enclosing graph; analyzers build a
// Graph per FuncDecl and per FuncLit.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block.
type Block struct {
	Index int
	// Kind labels the block's syntactic role for debugging and tests:
	// "entry", "exit", "panic", "if.then", "for.body", "range.body",
	// "case", "label.X", ...
	Kind string
	// Nodes are the statements and evaluated sub-expressions of the
	// block, in execution order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Return returns the block's trailing return statement, if it ends in
// one (its edge then leads to Exit).
func (b *Block) Return() *ast.ReturnStmt {
	if len(b.Nodes) == 0 {
		return nil
	}
	r, _ := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return r
}

// String renders "b3 if.then -> b4 b7" for tests and debugging.
func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d %s ->", b.Index, b.Kind)
	for _, s := range b.Succs {
		fmt.Fprintf(&sb, " b%d", s.Index)
	}
	return sb.String()
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block // Blocks[0] is Entry; Exit and Panic are members too
	Entry  *Block
	Exit   *Block // every return edge and the fall-off-the-end edge
	Panic  *Block // explicit panic(...) edges
}

// New builds the graph of one function body. A nil body (a declaration
// without a definition) yields a trivial Entry→Exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	g := &Graph{}
	b.g = g
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body is a normal exit.
	b.jump(g.Exit)
	b.resolveGotos()
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// builder holds the under-construction graph and the control context.
type builder struct {
	g   *Graph
	cur *Block // nil while the next statement is unreachable

	// loops and switches stack for break/continue resolution.
	targets []target

	labels  map[string]*Block   // label name → jump target block
	gotos   map[string][]*Block // unresolved goto sources per label
	pending string              // label attached to the next loop/switch
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label    string
	brk      *Block // break destination (nil on none)
	cont     *Block // continue destination (nil for switch/select)
	isSwitch bool
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, starting a fresh unreachable one
// after a terminator so trailing dead statements still get parsed nodes.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// jump terminates the current block with an edge to dst.
func (b *builder) jump(dst *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, dst)
	b.cur = nil
}

// branch adds an edge to dst without terminating the block's construction
// (used for multi-way successors built in sequence).
func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a labeled loop/switch.
func (b *builder) takeLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is a join point: goto and labeled continue/break
		// resolve through it.
		lb := b.newBlock("label." + s.Label.Name)
		b.jump(lb)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.block()
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		b.edge(head, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.jump(join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		exit := b.newBlock("for.exit")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, exit)
		}
		b.edge(head, body)
		b.cur = body
		b.targets = append(b.targets, target{label: label, brk: exit, cont: post})
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		exit := b.newBlock("range.exit")
		b.jump(head)
		// The per-iteration key/value assignment happens in the head.
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		b.edge(head, body)
		b.edge(head, exit)
		b.cur = body
		b.targets = append(b.targets, target{label: label, brk: exit, cont: head})
		b.stmtList(s.Body.List)
		b.targets = b.targets[:len(b.targets)-1]
		b.jump(head)
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "case")

	case *ast.TypeSwitchStmt:
		// The guard (`v := x.(type)`) is evaluated once in the head.
		b.switchStmt(s.Init, s.Assign, s.Body, "typecase")

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		join := b.newBlock("select.join")
		b.targets = append(b.targets, target{label: label, brk: join, isSwitch: true})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock("comm")
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(join)
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(s.Body.List) == 0 {
			b.edge(head, join) // empty select blocks forever; keep the graph connected
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.jump(b.g.Panic)
		}

	default:
		// Leaf statements: declarations, assignments, send, inc/dec,
		// defer, go, empty.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: head → each case body
// → join, with fallthrough chaining case bodies and a default case
// absorbing the head's fall-through edge.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, kind string) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.block()
	join := b.newBlock("switch.join")
	b.targets = append(b.targets, target{label: label, brk: join, isSwitch: true})

	// Build every clause block first so fallthrough can reach its
	// successor clause.
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	blocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock(kind)
		blocks = append(blocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fall := false
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && j == len(cc.Body)-1 {
				fall = true
				break
			}
			b.stmt(st)
		}
		if fall && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

// branchStmt wires break/continue/goto edges.
func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.brk != nil && (label == "" || t.label == label) {
				b.add(s)
				b.jump(t.brk)
				return
			}
		}
	case "continue":
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.add(s)
				b.jump(t.cont)
				return
			}
		}
	case "goto":
		b.add(s)
		src := b.cur
		b.cur = nil
		if src != nil {
			if b.gotos == nil {
				b.gotos = make(map[string][]*Block)
			}
			b.gotos[label] = append(b.gotos[label], src)
		}
		return
	}
	// fallthrough is handled by switchStmt; an unmatched break/continue
	// (malformed code) degrades to a plain node.
	b.add(s)
}

// resolveGotos patches goto edges once every label block exists.
func (b *builder) resolveGotos() {
	for label, srcs := range b.gotos {
		dst := b.labels[label]
		if dst == nil {
			dst = b.g.Exit // malformed; keep the graph connected
		}
		for _, src := range srcs {
			b.edge(src, dst)
		}
	}
}

// isPanic reports whether e is a call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
