package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as a file, finds function fn, and builds its graph.
func build(t *testing.T, src, fn string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return New(fd.Body)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// reaches reports whether dst is reachable from src.
func reaches(src, dst *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == dst {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(src)
}

// nodeCount counts nodes matching pred across all blocks.
func nodeCount(g *Graph, pred func(ast.Node) bool) int {
	n := 0
	for _, b := range g.Blocks {
		for _, nd := range b.Nodes {
			if pred(nd) {
				n++
			}
		}
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := build(t, `package p
func f() { x := 1; _ = x }`, "f")
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	if reaches(g.Entry, g.Panic) {
		t.Fatal("panic block should be unreachable")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
}

func TestIfElseBothPathsJoin(t *testing.T) {
	g := build(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, "f")
	// Two returns, each its own edge into Exit.
	if got := len(g.Exit.Preds); got != 2 {
		t.Fatalf("exit preds = %d, want 2", got)
	}
	rets := nodeCount(g, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	if rets != 2 {
		t.Fatalf("return nodes = %d, want 2", rets)
	}
}

func TestEarlyReturnPathSkipsTail(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	if c {
		return
	}
	tail()
}
func tail() {}`, "f")
	// Find the block holding tail() and the block holding the early return.
	var tailB, retB *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				retB = b
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "tail" {
						tailB = b
					}
				}
			}
		}
	}
	if tailB == nil || retB == nil {
		t.Fatal("blocks not found")
	}
	if reaches(retB, tailB) {
		t.Fatal("early-return path must not reach the tail")
	}
	if !reaches(g.Entry, tailB) || !reaches(tailB, g.Exit) {
		t.Fatal("fallthrough path must run the tail and exit")
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	g := build(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
		body()
	}
	after()
}
func body() {}
func after() {}`, "f")
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	// The loop head must be on a cycle (back edge through body or post).
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	onCycle := false
	for _, s := range head.Succs {
		if reaches(s, head) {
			onCycle = true
		}
	}
	if !onCycle {
		t.Fatal("loop head not on a cycle")
	}
}

func TestLabeledBreakLeavesOuterLoop(t *testing.T) {
	g := build(t, `package p
func f(m [][]int) {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
			use(v)
		}
	}
	after()
}
func use(int)   {}
func after()    {}`, "f")
	// The break-outer block must reach Exit without re-entering any
	// range head.
	var brk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if bs, ok := n.(*ast.BranchStmt); ok && bs.Tok.String() == "break" {
				brk = b
			}
		}
	}
	if brk == nil {
		t.Fatal("break block not found")
	}
	if len(brk.Succs) != 1 || brk.Succs[0].Kind != "range.exit" {
		t.Fatalf("break successor = %v", brk.Succs)
	}
	if !reaches(brk, g.Exit) {
		t.Fatal("labeled break must reach exit")
	}
}

func TestPanicEdge(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
	after()
}
func after() {}`, "f")
	if !reaches(g.Entry, g.Panic) {
		t.Fatal("panic block unreachable")
	}
	// The panic path must not fall through to after().
	var panicB *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanic(es.X) {
				panicB = b
			}
		}
	}
	if panicB == nil {
		t.Fatal("panic stmt block not found")
	}
	if reaches(panicB, g.Exit) {
		t.Fatal("panic path must not reach the normal exit")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g := build(t, `package p
func f(x int) int {
	switch x {
	case 1:
		return 1
	case 2:
		fallthrough
	case 3:
		return 3
	}
	return 0
}`, "f")
	if got := len(g.Exit.Preds); got != 3 {
		t.Fatalf("exit preds = %d, want 3 (two returns in cases, one after)", got)
	}
	// No default: the head must have an edge to the join.
	g2 := build(t, `package p
func f(x int) int {
	switch {
	case x > 0:
		return 1
	default:
		return 2
	}
}`, "f")
	// All paths return inside the switch; the implicit fall-off-the-end
	// exit edge comes only from the (unreachable) join.
	if !reaches(g2.Entry, g2.Exit) {
		t.Fatal("exit unreachable")
	}
}

func TestDeferStaysInPlace(t *testing.T) {
	g := build(t, `package p
func f(c bool) {
	if c {
		return
	}
	defer cleanup()
	work()
}
func cleanup() {}
func work()    {}`, "f")
	var deferB, retB *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.DeferStmt:
				deferB = b
			case *ast.ReturnStmt:
				retB = b
			}
		}
	}
	if deferB == nil || retB == nil {
		t.Fatal("blocks not found")
	}
	// The early return does not pass the defer registration.
	if reaches(retB, deferB) {
		t.Fatal("early return must not reach the defer")
	}
	if !reaches(g.Entry, deferB) || !reaches(deferB, g.Exit) {
		t.Fatal("defer path must be on the fallthrough route to exit")
	}
}

func TestGotoResolves(t *testing.T) {
	g := build(t, `package p
func f(n int) {
retry:
	n--
	if n > 0 {
		goto retry
	}
}`, "f")
	var label *Block
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "label.") {
			label = b
		}
	}
	if label == nil {
		t.Fatal("label block missing")
	}
	// goto forms a cycle through the label.
	cyclic := false
	for _, s := range label.Succs {
		if reaches(s, label) {
			cyclic = true
		}
	}
	if !cyclic {
		t.Fatal("goto did not form a cycle")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
}

func TestSelectEachCommIsAPath(t *testing.T) {
	g := build(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 0
	}
}`, "f")
	if got := len(g.Exit.Preds); got < 2 {
		t.Fatalf("exit preds = %d, want >= 2", got)
	}
}

func TestTypeSwitchGuardInHead(t *testing.T) {
	g := build(t, `package p
func f(x any) int {
	switch v := x.(type) {
	case int:
		return v
	default:
		return 0
	}
}`, "f")
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	guards := nodeCount(g, func(n ast.Node) bool { _, ok := n.(*ast.AssignStmt); return ok })
	if guards != 1 {
		t.Fatalf("guard nodes = %d, want 1", guards)
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("trivial graph must connect entry to exit")
	}
}
