// Package maporder flags range loops over maps whose bodies emit
// observable output in iteration order.
//
// Go randomizes map iteration, so a map-range that prints, traces,
// records metrics, sends on a channel, or appends to a slice that
// outlives the loop produces a different observable order every run —
// exactly the nondeterminism the simulator's byte-identical-output
// guarantees cannot tolerate. Order-insensitive bodies (summing,
// inserting into another map) are fine, and the sanctioned fix — collect
// keys, sort, range the slice — never ranges a map at all. A loop that
// appends to an outer slice which is demonstrably sorted later in the
// same function is also accepted, since the order nondeterminism dies in
// the sort.
package maporder

import (
	"go/ast"
	"go/types"
	"path"

	"teleport/internal/analysis"
	"teleport/internal/analysis/load"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map-range loops that emit observable output (fmt/trace/metrics calls, channel sends, appends to outer slices) in nondeterministic order",
	Run:  run,
}

// observablePkgs are package-name bases whose void method calls make
// iteration order observable: trace events and metric records surface to
// the user in emission order. (Getters on these packages' types return a
// value and are order-insensitive, so only result-less methods count.)
var observablePkgs = map[string]bool{"trace": true, "metrics": true}

// fmtEmitters are the fmt functions that write to a stream; Sprintf and
// friends merely build values and are handled by the append rule if the
// built values escape in order.
var fmtEmitters = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func run(pass *analysis.Pass) error {
	// The package call graph backs the one-hop interprocedural check:
	// iteration variables handed to a same-package helper that emits them.
	cg := load.NewCallGraph(pass.Files, pass.Info)
	// Walk per enclosing function so the sorted-afterwards whitelist can
	// inspect statements that follow the loop.
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		checkFunc(pass, cg, body)
		return true
	})
	return nil
}

func checkFunc(pass *analysis.Pass, cg *load.CallGraph, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // visited as its own function by run
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, cg, fn, rng)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, cg *load.CallGraph, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	var appended []types.Object // outer slices grown inside the loop
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Report(rng.Pos(),
				"map iteration order is random: this loop sends on a channel per key; iterate sorted keys instead")
			return true
		case *ast.GoStmt:
			// Worker fan-out from a map range: the goroutines launch — and
			// therefore acquire pool tokens, emit results, and contend —
			// in a different order every run. Deterministic harnesses
			// (internal/bench's parmap) fan out over index-ordered slices.
			pass.Report(rng.Pos(),
				"map iteration order is random: this loop launches a goroutine per key, so spawn and result order change every run; build a sorted job slice first (or //lint:allow maporder <reason>)")
			return true
		case *ast.CallExpr:
			if name, bad := observableCall(pass, n); bad {
				pass.Reportf(rng.Pos(),
					"map iteration order is random: this loop calls %s per key, making the emitted order nondeterministic; iterate sorted keys instead (or //lint:allow maporder <reason>)",
					name)
				return true
			}
			if callee := emitsArgObservably(pass, cg, rng, n); callee != "" {
				pass.Reportf(rng.Pos(),
					"map iteration order is random: this loop passes the iteration variable to %s, which emits it observably; iterate sorted keys instead (or //lint:allow maporder <reason>)",
					callee)
				return true
			}
			if obj := outerAppendTarget(pass, rng, n); obj != nil {
				appended = append(appended, obj)
			}
		}
		return true
	})
	for _, obj := range appended {
		if !sortedAfter(pass, fn, rng, obj) {
			pass.Reportf(rng.Pos(),
				"map iteration order is random: this loop appends to %q, which outlives the loop unsorted; sort it afterwards or iterate sorted keys",
				obj.Name())
		}
	}
}

// observableCall reports whether call emits ordered observable output: a
// call into fmt/trace/metrics, or a method on a value whose type is
// declared in a trace/metrics package.
func observableCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath, ok := pass.PkgPathOf(sel); ok {
		base := path.Base(pkgPath)
		if base == "fmt" && fmtEmitters[sel.Sel.Name] {
			return "fmt." + sel.Sel.Name, true
		}
		if observablePkgs[base] {
			return base + "." + sel.Sel.Name, true
		}
		return "", false
	}
	// Method call: attribute it to the package declaring the method, and
	// count only result-less (recording) methods — getters are
	// order-insensitive.
	if s, ok := pass.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			base := path.Base(fn.Pkg().Path())
			sig, isSig := fn.Type().(*types.Signature)
			if observablePkgs[base] && isSig && sig.Results().Len() == 0 {
				return "(" + base + ") " + sel.Sel.Name, true
			}
		}
	}
	return "", false
}

// outerAppendTarget returns the object a loop-body append grows, if that
// object is declared outside the range statement (so the accumulated
// order escapes the loop).
func outerAppendTarget(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[target]
	if obj == nil || obj.Pos() == 0 {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // loop-local accumulator; its order dies with the loop
	}
	return obj
}

// emitsArgObservably is the one-hop interprocedural check: an iteration
// variable of the map range passed as an argument to a same-package
// function whose body emits the corresponding parameter observably (a
// fmt/trace/metrics call or a channel send). It returns the callee's
// name, or "" when the call launders no iteration order. One hop only:
// deeper flows need the callee's own map-range to be the loop, which
// this analyzer already checks.
func emitsArgObservably(pass *analysis.Pass, cg *load.CallGraph, rng *ast.RangeStmt, call *ast.CallExpr) string {
	iters := rangeVarObjs(pass, rng)
	if len(iters) == 0 {
		return ""
	}
	callee := load.StaticCallee(pass.Info, call)
	if callee == nil {
		return ""
	}
	decl := cg.Decls[callee]
	if decl == nil || decl.Body == nil {
		return ""
	}
	params := paramObjs(pass, decl)
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !iters[obj] {
			continue
		}
		if i >= len(params) || params[i] == nil {
			continue
		}
		if paramEmitted(pass, decl.Body, params[i]) {
			return callee.Name()
		}
	}
	return ""
}

// rangeVarObjs collects the objects bound to the range's key and value.
func rangeVarObjs(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			objs[obj] = true
		}
	}
	return objs
}

// paramObjs flattens a declaration's parameter objects in positional
// order (multi-name fields repeat their type, matching argument order).
func paramObjs(pass *analysis.Pass, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed: nothing can flow through it
			continue
		}
		for _, name := range field.Names {
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}

// paramEmitted reports whether the parameter object reaches an
// observable sink inside body: an emitting call's argument or a channel
// send's value.
func paramEmitted(pass *analysis.Pass, body *ast.BlockStmt, param types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, bad := observableCall(pass, n); !bad {
				return true
			}
			for _, arg := range n.Args {
				if usesObj(pass, arg, param) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObj(pass, n.Value, param) {
				found = true
			}
		}
		return true
	})
	return found
}

// usesObj reports whether expr references obj.
func usesObj(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement within the same function body.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := pass.PkgPathOf(sel)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
