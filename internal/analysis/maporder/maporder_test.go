package maporder_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "maporder")
}
