// Package timecharge checks that exported entry points of the hardware
// models — anything taking a *sim.Thread in internal/netmodel,
// internal/storage, and internal/ddc — advance the calling thread's
// virtual clock on every non-error path.
//
// A modeled operation that returns without charging time makes the
// simulated hardware infinitely fast on that path, silently skewing
// every figure downstream; no test catches it because the run is still
// deterministic, just wrong. The check is an all-paths must-analysis
// over the control-flow graph: a path charges if it executes a charging
// primitive (Advance, AdvanceNs, AdvanceTo, Block on the thread), calls
// a same-package function whose own summary proves it charges on every
// path (computed to a fixpoint over the package call graph), or calls
// into a sibling model package passing the thread (assume-guarantee:
// that package's own lint run enforces the callee's obligation). Paths
// that return a non-nil error and paths that panic are exempt — failed
// operations may bail before touching hardware. Constructor-style
// functions (pointer results) and observability packages are out of
// scope.
package timecharge

import (
	"go/ast"
	"go/types"
	"path"

	"teleport/internal/analysis"
	"teleport/internal/analysis/cfg"
	"teleport/internal/analysis/load"
)

// Analyzer is the timecharge check.
var Analyzer = &analysis.Analyzer{
	Name: "timecharge",
	Doc:  "exported hardware-model entry points taking a *sim.Thread must advance the thread's virtual clock on every non-error path",
	DefaultFilter: func(pkgPath string) bool {
		switch pkgPath {
		case "teleport/internal/netmodel", "teleport/internal/storage", "teleport/internal/ddc":
			return true
		}
		return false
	},
	Run: run,
}

// chargers are the Thread methods that advance virtual time.
var chargers = map[string]bool{
	"Advance": true, "AdvanceNs": true, "AdvanceTo": true, "Block": true,
}

// modelPkgs are the package bases whose thread-taking exported functions
// are assumed to charge (each package's own lint run guarantees it).
var modelPkgs = map[string]bool{
	"netmodel": true, "storage": true, "ddc": true, "core": true, "sim": true,
}

func run(pass *analysis.Pass) error {
	g := load.NewCallGraph(pass.Files, pass.Info)

	// Same-package summaries: does fn charge on every path, regardless of
	// outcome? Monotone fixpoint — summaries only flip false→true, and a
	// true summary only adds charge events to its callers.
	summaries := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for fn, decl := range g.Decls {
			if summaries[fn] {
				continue
			}
			if chargesAllExits(pass, decl, summaries, false) {
				summaries[fn] = true
				changed = true
			}
		}
	}

	for fn, decl := range g.Decls {
		if !isTarget(fn, decl) {
			continue
		}
		chargesAllExits(pass, decl, summaries, true)
	}
	return nil
}

// isTarget reports whether decl is an exported model entry point: an
// exported function or method with a *sim.Thread parameter, excluding
// constructor-style functions (pointer results build models, they do not
// run them).
func isTarget(fn *types.Func, decl *ast.FuncDecl) bool {
	if !fn.Exported() || decl.Body == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if threadParam(sig) == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if _, isPtr := sig.Results().At(i).Type().(*types.Pointer); isPtr {
			return false
		}
	}
	return true
}

// threadParam returns the first parameter of type *sim.Thread, or nil.
func threadParam(sig *types.Signature) *types.Var {
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isThread(p.Type()) {
			return p
		}
	}
	return nil
}

// isThread reports whether t is sim.Thread or *sim.Thread (by package
// base and name: fixtures use a stand-in sim package).
func isThread(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Thread" && obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == "sim"
}

// chargesAllExits runs the must-charge dataflow over decl's body. With
// report unset it computes the summary answer: charged at every normal
// exit. With report set it reports each unexempt uncharged exit: error
// returns and panic paths are excused.
func chargesAllExits(pass *analysis.Pass, decl *ast.FuncDecl, summaries map[*types.Func]bool, report bool) bool {
	if decl.Body == nil {
		return false
	}
	g := cfg.New(decl.Body)
	gen := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if nodeCharges(pass, n, summaries) {
				gen[b.Index] = true
			}
		}
	}

	// Must-analysis, greatest fixpoint: start everything charged, lower
	// until stable. in = AND over preds; entry starts uncharged.
	out := make([]bool, len(g.Blocks))
	for i := range out {
		out[i] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			in := b != g.Entry
			for _, p := range b.Preds {
				in = in && out[p.Index]
			}
			o := in || gen[b.Index]
			if o != out[b.Index] {
				out[b.Index] = o
				changed = true
			}
		}
	}

	sig := pass.Info.Defs[decl.Name].Type().(*types.Signature)
	all := true
	for _, p := range g.Exit.Preds {
		if out[p.Index] {
			continue
		}
		all = false
		if !report {
			continue
		}
		ret := p.Return()
		if errorReturn(pass, sig, ret) {
			continue
		}
		pos := decl.Body.Rbrace
		what := "falls off the end"
		if ret != nil {
			pos = ret.Pos()
			what = "returns"
		}
		pass.Reportf(pos,
			"%s %s without advancing the thread's virtual clock on this path: charge the modeled cost (or //lint:allow timecharge <reason>)",
			decl.Name.Name, what)
	}
	return all
}

// nodeCharges reports whether one block node charges virtual time: a
// charging primitive on a thread, a same-package callee whose summary
// proves the charge, or a thread-passing call into a sibling model
// package. Goroutine launches charge the spawned thread, not the caller.
func nodeCharges(pass *analysis.Pass, n ast.Node, summaries map[*types.Func]bool) bool {
	if _, ok := n.(*ast.GoStmt); ok {
		return false
	}
	charges := false
	ast.Inspect(n, func(m ast.Node) bool {
		if charges {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // separate function: no synchronous guarantee
		case *ast.CallExpr:
			if callCharges(pass, m, summaries) {
				charges = true
				return false
			}
		}
		return true
	})
	return charges
}

func callCharges(pass *analysis.Pass, call *ast.CallExpr, summaries map[*types.Func]bool) bool {
	// t.Advance(...) and friends.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && chargers[sel.Sel.Name] {
		if s, ok := pass.Info.Selections[sel]; ok && isThread(s.Recv()) {
			return true
		}
	}
	callee := load.StaticCallee(pass.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	if callee.Pkg() == pass.Pkg {
		return summaries[callee]
	}
	// Cross-package assume-guarantee: a sibling model entry point that
	// takes the thread is obligated (by its own lint run) to charge it.
	if !modelPkgs[path.Base(callee.Pkg().Path())] {
		return false
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && isThread(tv.Type) {
			return true
		}
	}
	return false
}

// errorReturn reports whether ret exits a function whose last result is
// an error with a visibly non-nil value — a failure path, exempt from
// charging. Naked returns and `return ..., nil` are success paths.
func errorReturn(pass *analysis.Pass, sig *types.Signature, ret *ast.ReturnStmt) bool {
	n := sig.Results().Len()
	if n == 0 || ret == nil || len(ret.Results) == 0 {
		return false
	}
	last := sig.Results().At(n - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return false
	}
	if len(ret.Results) != n {
		return false // single call expression spread: cannot tell
	}
	if id, ok := ret.Results[n-1].(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}
