package timecharge_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/timecharge"
)

func TestTimecharge(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), timecharge.Analyzer, "timecharge")
}
