package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <reason...>
//
// on the flagged line (or the line directly above it) suppresses that
// analyzer's diagnostics for the line. The reason is mandatory — an allow
// without one is itself a diagnostic — and an allow that suppresses
// nothing is flagged as stale, so escapes cannot rot silently.

const allowPrefix = "lint:allow"

// Allow is one parsed //lint:allow comment.
type Allow struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
	used     bool
}

// hygiene is the pseudo-analyzer that owns allow-comment diagnostics.
var hygiene = &Analyzer{
	Name: "lintallow",
	Doc:  "checks //lint:allow comment hygiene (reason present, not stale)",
}

// CollectAllows parses every //lint:allow comment in files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []*Allow {
	var out []*Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, &Allow{
					Pos:      c.Pos(),
					File:     pos.Filename,
					Line:     pos.Line,
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// FilterAllowed drops diagnostics suppressed by an allow comment for the
// same analyzer on the diagnostic's line or the line above, then appends
// hygiene diagnostics: allows with no reason, allows that suppressed
// nothing, and allows naming an analyzer that is not in the registered
// suite at all. checked maps analyzer name → true for every analyzer
// that actually ran on the package; a stale allow for an analyzer that
// did not run is not reported (it may be load-bearing under a different
// configuration). known maps analyzer name → true for every analyzer
// the tool registers, whether or not it ran here — an allow outside
// that set is rot from a renamed or removed analyzer. A nil known skips
// the unknown-name check (single-analyzer harnesses see allows for the
// rest of the suite).
func FilterAllowed(fset *token.FileSet, diags []Diagnostic, allows []*Allow, checked, known map[string]bool) []Diagnostic {
	byKey := make(map[[2]interface{}]*Allow)
	for _, a := range allows {
		byKey[[2]interface{}{a.File + ":" + a.Analyzer, a.Line}] = a
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := pos.Filename + ":" + d.Analyzer.Name
		if a, ok := byKey[[2]interface{}{key, pos.Line}]; ok {
			a.used = true
			continue
		}
		if a, ok := byKey[[2]interface{}{key, pos.Line - 1}]; ok {
			a.used = true
			continue
		}
		out = append(out, d)
	}
	for _, a := range allows {
		if a.Reason == "" {
			out = append(out, Diagnostic{
				Analyzer: hygiene, Pos: a.Pos,
				Message: "//lint:allow " + a.Analyzer + " needs a reason string",
			})
		}
		if !a.used && a.Reason != "" && checked[a.Analyzer] {
			out = append(out, Diagnostic{
				Analyzer: hygiene, Pos: a.Pos,
				Message: "stale //lint:allow " + a.Analyzer + ": nothing to suppress here",
			})
		}
		if known != nil && !known[a.Analyzer] {
			out = append(out, Diagnostic{
				Analyzer: hygiene, Pos: a.Pos,
				Message: "//lint:allow " + a.Analyzer + " names an analyzer that is not in the registered suite (renamed or removed?)",
			})
		}
	}
	SortDiagnostics(fset, out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the multichecker's deterministic output order.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
}
