// Package analysistest runs a single analyzer over fixture packages and
// checks its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under a GOPATH-style source root (testdata/src/<pkg>);
// they are parsed and type-checked for real — fixture imports resolve
// first against sibling fixture packages, then against the standard
// library and the module — so analyzers see exactly the type information
// they get in production. A comment of the form
//
//	// want "regexp" "another regexp"
//
// expects one diagnostic per pattern on that line, matched against the
// diagnostic message; unexpected and missing diagnostics both fail the
// test. The //lint:allow filter runs before matching, so fixtures
// exercise the escape hatch too.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"teleport/internal/analysis"
	"teleport/internal/analysis/load"
)

var (
	sessOnce sync.Once
	sess     *load.Session
	sessErr  error
)

// session returns the process-wide loader session (the standard library
// is type-checked once per test binary).
func session() (*load.Session, error) {
	sessOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			sessErr = err
			return
		}
		root, err := load.ModuleRoot(wd)
		if err != nil {
			sessErr = err
			return
		}
		sess = load.NewSession(root)
	})
	return sess, sessErr
}

// TestData returns the absolute path of the shared fixture root,
// internal/analysis/testdata/src, resolved relative to the calling
// analyzer package's directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run analyzes each fixture package (a directory name under srcdir) with
// a and reports expectation mismatches through t.
func Run(t *testing.T, srcdir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	s, err := session()
	if err != nil {
		t.Fatal(err)
	}
	s.FixtureRoot = srcdir
	for _, name := range pkgs {
		pkg, err := s.CheckFixture(filepath.Join(srcdir, name), name)
		if err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
		diags, err := analysis.Run(a, s.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("fixture %s: analyzer: %v", name, err)
		}
		allows := analysis.CollectAllows(s.Fset, pkg.Files)
		// known is nil: shared fixtures carry allows for other analyzers
		// in the suite, which a single-analyzer harness cannot name.
		diags = analysis.FilterAllowed(s.Fset, diags, allows, map[string]bool{a.Name: true}, nil)
		check(t, s, pkg.Files, name, diags)
	}
}

// want is one expectation: a pattern at a file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRE extracts the quoted patterns of a want comment: double-quoted
// Go strings or backquoted raw strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func check(t *testing.T, s *load.Session, files []*ast.File, fixture string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := s.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat := q
					if q[0] == '"' {
						var err error
						if pat, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					} else {
						pat = q[1 : len(q)-1]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := s.Fset.Position(d.Pos)
		if w := match(wants, pos.Filename, pos.Line, d.Message); w != nil {
			w.met = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic at %s:%d: %s (%s)",
			fixture, filepath.Base(pos.Filename), pos.Line, d.Message, d.Analyzer.Name)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none",
				fixture, w.re, filepath.Base(w.file), w.line)
		}
	}
}

func match(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}
