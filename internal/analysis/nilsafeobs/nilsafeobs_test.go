package nilsafeobs_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/nilsafeobs"
)

func TestNilsafeobs(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nilsafeobs.Analyzer, "nilsafeobs")
}

func TestFilterScopesToObservability(t *testing.T) {
	f := nilsafeobs.Analyzer.DefaultFilter
	for _, in := range []string{"teleport/internal/metrics", "teleport/internal/trace", "teleport/internal/obs"} {
		if !f(in) {
			t.Errorf("filter should include %s", in)
		}
	}
	if f("teleport/internal/core") {
		t.Error("filter should exclude non-observability packages")
	}
}
