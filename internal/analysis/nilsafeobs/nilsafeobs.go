// Package nilsafeobs pins the observability layer's "passive by
// construction" contract: every exported method on a pointer receiver in
// internal/metrics and internal/trace must begin with a nil-receiver
// guard.
//
// Instrumentation sites throughout the simulator call metric and trace
// handles without guards — a machine with no registry or ring attached
// hands them nil — so a single unguarded method turns "observability
// off" into a panic. The guard must be the method's first statement so
// the property is locally checkable: an if statement whose condition
// tests the receiver against nil (== or !=, possibly alongside other
// early-out tests).
package nilsafeobs

import (
	"go/ast"
	"strings"

	"teleport/internal/analysis"
)

// Analyzer is the nilsafeobs check.
var Analyzer = &analysis.Analyzer{
	Name: "nilsafeobs",
	Doc:  "requires exported pointer-receiver methods in observability packages to begin with a nil-receiver guard",
	DefaultFilter: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "/metrics") || strings.HasSuffix(pkgPath, "/trace") ||
			strings.HasSuffix(pkgPath, "/obs")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMethod(pass, fn)
		}
	}
	return nil
}

func checkMethod(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
		return
	}
	if !ast.IsExported(fn.Name.Name) {
		return
	}
	if _, isPtr := fn.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
		return // value receivers cannot be nil
	}
	names := fn.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		pass.Reportf(fn.Pos(),
			"exported method %s has an unnamed pointer receiver and cannot be nil-guarded; name the receiver and guard it",
			fn.Name.Name)
		return
	}
	recv := names[0].Name
	if len(fn.Body.List) > 0 && guards(fn.Body.List[0], recv) {
		return
	}
	pass.Reportf(fn.Pos(),
		"exported method (*%s).%s must begin with a nil-receiver guard: observability handles are passive and may be nil",
		receiverTypeName(fn), fn.Name.Name)
}

// guards reports whether stmt is an if statement whose condition compares
// the receiver against nil.
func guards(stmt ast.Stmt, recv string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op.String() != "==" && be.Op.String() != "!=" {
			return true
		}
		if isIdent(be.X, recv) && isIdent(be.Y, "nil") {
			found = true
		}
		if isIdent(be.Y, recv) && isIdent(be.X, "nil") {
			found = true
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func receiverTypeName(fn *ast.FuncDecl) string {
	star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return "?"
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}
