// Package errcmp forbids comparing errors with == or != in internal
// packages.
//
// The runtime's sentinel errors (core.ErrQueueFull, core.ErrCancelled, …)
// flow through retry policies and fault-injection layers that are free to
// wrap them; a direct == comparison silently stops matching the moment a
// wrapper appears, turning a recoverable failure into an unhandled one.
// errors.Is unwraps, so classification keeps working. Comparisons against
// the nil literal stay idiomatic and are not flagged.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"teleport/internal/analysis"
)

// Analyzer is the errcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "forbids ==/!= between error values in internal packages; wrapped sentinels stop matching — use errors.Is",
	DefaultFilter: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if isNil(pass, bin.X) || isNil(pass, bin.Y) {
			return true // err == nil is the idiomatic presence check
		}
		if !isError(pass, bin.X) && !isError(pass, bin.Y) {
			return true
		}
		op := "=="
		if bin.Op == token.NEQ {
			op = "!="
		}
		pass.Reportf(bin.OpPos,
			"error compared with %s; a wrapped sentinel never matches — use errors.Is", op)
		return true
	})
	return nil
}

// isNil reports whether e is the predeclared nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// isError reports whether e's static type is the error interface. Concrete
// types that merely implement error compare by identity on purpose (typed
// codes, *os.PathError-style tests own their semantics), so only the
// interface — where wrapping hides the dynamic value — is flagged.
func isError(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}
