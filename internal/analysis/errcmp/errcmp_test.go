package errcmp_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errcmp.Analyzer, "errcmp")
}

func TestFilterScopesToInternal(t *testing.T) {
	f := errcmp.Analyzer.DefaultFilter
	if !f("teleport/internal/core") {
		t.Error("filter should include internal packages")
	}
	if f("teleport/cmd/ddcsim") {
		t.Error("filter should exclude cmd packages")
	}
}
