// Package virtualclock flags time arithmetic that leaves the clock's
// type system.
//
// Virtual durations are carried by named int64 types (sim.Time); the
// type is what lets the compiler distinguish "a point in virtual time"
// from "a byte count" and what makes cost-model code auditable. Stripping
// the type with int64(t) and doing raw arithmetic — int64(a) - int64(b),
// int64(t) + 1200 — reintroduces the unit confusion behind classic
// double-charging bugs (a fabric cost added once in the clock domain and
// once as raw nanos). Convert after the arithmetic, not before:
// int64(a-b), t + 1200*sim.Nanosecond.
package virtualclock

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"teleport/internal/analysis"
)

// Analyzer is the virtualclock check.
var Analyzer = &analysis.Analyzer{
	Name: "virtualclock",
	Doc:  "flags arithmetic on int64-stripped virtual-clock values; arithmetic belongs in the clock type (sim.Time)",
	Run:  run,
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.QUO: true, token.REM: true,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !arithOps[be.Op] {
			return true
		}
		xc, x := strippedClock(pass, be.X)
		yc, y := strippedClock(pass, be.Y)
		switch {
		case xc && yc:
			pass.Reportf(be.Pos(),
				"both operands strip a virtual-clock type (%s, %s) to int64 before %s; do the arithmetic in the clock type and convert the result",
				x, y, be.Op)
		case xc && isConstant(pass, be.Y):
			pass.Reportf(be.Pos(),
				"mixing int64-stripped %s with a raw numeric constant hides the time unit; use a typed constant (e.g. sim.Microsecond) and convert after the arithmetic",
				x)
		case yc && isConstant(pass, be.X):
			pass.Reportf(be.Pos(),
				"mixing int64-stripped %s with a raw numeric constant hides the time unit; use a typed constant (e.g. sim.Microsecond) and convert after the arithmetic",
				y)
		}
		return true
	})
	return nil
}

// strippedClock reports whether e is a conversion int64(x) where x has a
// virtual-clock type, returning the clock type's name for the message.
func strippedClock(pass *analysis.Pass, e ast.Expr) (bool, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false, ""
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, ""
	}
	basic, ok := tv.Type.(*types.Basic)
	if !ok || basic.Kind() != types.Int64 {
		return false, ""
	}
	argType := pass.Info.Types[call.Args[0]].Type
	if argType == nil {
		return false, ""
	}
	if named, ok := isClockType(argType); ok {
		return true, named
	}
	return false, ""
}

// isClockType reports whether t is a named integer type declared in a
// virtual-clock package (package basename sim or hw).
func isClockType(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	base := path.Base(obj.Pkg().Path())
	if base != "sim" && base != "hw" {
		return "", false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", false
	}
	return base + "." + obj.Name(), true
}

// isConstant reports whether the expression is a compile-time numeric
// constant (an untyped literal or a named constant of raw integer type).
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	// A constant that already carries a clock type (sim.Microsecond) is
	// unit-safe; only raw numerics hide the unit.
	if _, clock := isClockType(tv.Type); clock {
		return false
	}
	return true
}
