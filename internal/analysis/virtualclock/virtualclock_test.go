package virtualclock_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/virtualclock"
)

func TestVirtualclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), virtualclock.Analyzer, "virtualclock")
}
