package seededrand_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/seededrand"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), seededrand.Analyzer, "seededrand")
}

func TestFilterScopesToInternal(t *testing.T) {
	f := seededrand.Analyzer.DefaultFilter
	if !f("teleport/internal/graph") {
		t.Error("filter should include internal packages")
	}
	if f("teleport/cmd/datagen") {
		t.Error("filter should exclude cmd packages")
	}
}
