// Package seededrand forbids unseeded or nondeterministic randomness in
// internal packages.
//
// Every random decision in a run must derive from an explicit seed so two
// runs with the same seed are bit-for-bit identical. The process-global
// math/rand source is seeded behind the program's back, and crypto/rand
// is nondeterministic by design, so both are banned: randomness flows
// through sim.RNG or an explicitly seeded rand.New(rand.NewSource(seed)).
package seededrand

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"teleport/internal/analysis"
)

// constructors are the math/rand entry points that do not touch the
// global source; everything else at package level does.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbids math/rand global-source functions and crypto/rand in internal packages; randomness must be explicitly seeded",
	DefaultFilter: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "crypto/rand" {
				pass.Report(imp.Pos(),
					"crypto/rand is nondeterministic; derive randomness from sim.RNG or a seeded rand.New(rand.NewSource(seed))")
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, ok := pass.PkgPathOf(sel)
		if !ok || (path != "math/rand" && path != "math/rand/v2") {
			return true
		}
		// Type names (rand.Rand, rand.Source) and the seeded constructors
		// are the sanctioned surface; package-level funcs and vars draw
		// from the hidden global source.
		obj := pass.Info.Uses[sel.Sel]
		if _, isType := obj.(*types.TypeName); isType || constructors[sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"rand.%s uses the unseeded global source; draw from sim.RNG or a seeded rand.New(rand.NewSource(seed))",
			sel.Sel.Name)
		return true
	})
	return nil
}
