// Package analysis is a small, dependency-free static-analysis framework
// modelled on golang.org/x/tools/go/analysis (which this repository
// deliberately does not vendor: the module has zero external dependencies
// and the linter must build offline with the standard toolchain alone).
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The ddclint multichecker (cmd/ddclint) loads every module
// package via internal/analysis/load, runs each analyzer whose
// DefaultFilter admits the package, filters diagnostics through the
// //lint:allow escape hatch (allow.go), and exits non-zero if anything
// survives. The analysistest harness runs a single analyzer over fixture
// packages with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// DefaultFilter reports whether the multichecker should run this
	// analyzer on the package with the given import path. A nil filter
	// means every package. Tests bypass the filter: fixtures are always
	// analyzed.
	DefaultFilter func(pkgPath string) bool

	// Run inspects one package and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Pos
	Message  string
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Report records a diagnostic.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.diags = append(p.diags, Diagnostic{Analyzer: p.Analyzer, Pos: pos, Message: msg})
}

// Reportf records a formatted diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Diagnostics returns what the analyzer reported, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Run executes analyzer a over one type-checked package and returns the
// diagnostics after //lint:allow filtering. Allow-comment hygiene
// diagnostics (missing reason) are appended by the caller via Allows.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	return pass.diags, nil
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// PkgPathOf resolves a selector expression of the form pkgname.Sel to the
// imported package's path. ok is false when sel.X is not a package
// qualifier (for example a variable of struct type).
func (p *Pass) PkgPathOf(sel *ast.SelectorExpr) (path string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pn, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", false
	}
	return pn.Imported().Path(), true
}
