// Package load type-checks packages of the enclosing module — and their
// standard-library dependencies — using only the standard toolchain: `go
// list -deps -json` supplies build-tag-filtered file lists in dependency
// order, and go/types checks them from source. It is a minimal,
// offline-capable stand-in for golang.org/x/tools/go/packages, which this
// zero-dependency module does not vendor.
//
// Dependencies are checked with IgnoreFuncBodies (only their exported
// shape matters); module packages get full bodies plus a populated
// types.Info for the analyzers. Fixture packages (testdata trees the go
// tool does not list) are checked by CheckFixture, which resolves their
// imports first against the fixture root and then against the real world.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// meta is the subset of `go list -json` output the loader consumes.
type meta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// Package is one type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	// Info is populated for module and fixture packages, nil for bare
	// dependencies.
	Info *types.Info
}

// Session caches type-checked packages across calls so the standard
// library is checked at most once per process.
type Session struct {
	ModuleDir string
	Fset      *token.FileSet
	// FixtureRoot, when set, is consulted first for import paths during
	// CheckFixture: an import "x" resolves to FixtureRoot/x if that
	// directory holds Go files.
	FixtureRoot string

	pkgs  map[string]*Package
	metas map[string]*meta
}

// NewSession returns a session rooted at the module directory (where go
// list will run).
func NewSession(moduleDir string) *Session {
	return &Session{
		ModuleDir: moduleDir,
		Fset:      token.NewFileSet(),
		pkgs:      make(map[string]*Package),
		metas:     make(map[string]*meta),
	}
}

// ModuleRoot locates the enclosing module's root directory from dir.
func ModuleRoot(dir string) (string, error) {
	out, err := runGo(dir, "list", "-m", "-f", "{{.Dir}}")
	if err != nil {
		return "", err
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("load: no module found from %s", dir)
	}
	return root, nil
}

// Module lists, parses, and type-checks the module packages matching
// patterns (for example "./..."), returning them in dependency order.
// Standard-library dependencies are checked on the way but not returned.
func (s *Session) Module(patterns ...string) ([]*Package, error) {
	metas, err := s.list(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, m := range metas {
		p, err := s.check(m)
		if err != nil {
			return nil, err
		}
		if !m.Standard {
			out = append(out, p)
		}
	}
	return out, nil
}

// list runs `go list -json` with the given arguments and records the
// resulting metadata, returned in output (dependency) order.
func (s *Session) list(args ...string) ([]*meta, error) {
	out, err := runGo(s.ModuleDir, append([]string{"list", "-json"}, args...)...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var metas []*meta
	for dec.More() {
		m := new(meta)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if _, ok := s.metas[m.ImportPath]; !ok {
			s.metas[m.ImportPath] = m
		}
		metas = append(metas, s.metas[m.ImportPath])
	}
	return metas, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("load: go %s: %v%s", strings.Join(args, " "), err, detail)
	}
	return out, nil
}

// check type-checks one listed package (dependencies first, recursively).
func (s *Session) check(m *meta) (*Package, error) {
	if p, ok := s.pkgs[m.ImportPath]; ok {
		return p, nil
	}
	if m.ImportPath == "unsafe" {
		p := &Package{Path: "unsafe", Types: types.Unsafe}
		s.pkgs["unsafe"] = p
		return p, nil
	}
	files, err := s.parseDir(m.Dir, m.GoFiles)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", m.ImportPath, err)
	}
	return s.typeCheck(m.ImportPath, files, m.Dir, m.Standard)
}

// resolve is the importer callback: fixture-local paths first (when a
// fixture root is set), then anything `go list` can name.
func (s *Session) resolve(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if s.FixtureRoot != "" {
		dir := filepath.Join(s.FixtureRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			p, err := s.CheckFixture(dir, path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	m, ok := s.metas[path]
	if !ok {
		if _, err := s.list("-deps", path); err != nil {
			return nil, err
		}
		if m, ok = s.metas[path]; !ok {
			return nil, fmt.Errorf("load: go list did not yield %q", path)
		}
	}
	p, err := s.check(m)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// CheckFixture parses and fully type-checks the Go files in dir as the
// package importPath. Unlike Module it does not require the go tool to
// know the package, so testdata trees work.
func (s *Session) CheckFixture(dir, importPath string) (*Package, error) {
	if p, ok := s.pkgs[importPath]; ok {
		return p, nil
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	files, err := s.parseDir(dir, names)
	if err != nil {
		return nil, fmt.Errorf("load: fixture %s: %v", importPath, err)
	}
	return s.typeCheck(importPath, files, dir, false)
}

// typeCheck runs go/types over parsed files. Dependencies (std = true)
// skip function bodies and tolerate residual type errors; analyzed
// packages are checked strictly and carry full type info.
func (s *Session) typeCheck(importPath string, files []*ast.File, dir string, std bool) (*Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:         importerFunc(s.resolve),
		FakeImportC:      true,
		IgnoreFuncBodies: std,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	var info *types.Info
	if !std {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	tpkg, err := conf.Check(importPath, s.Fset, files, info)
	if !std && firstErr != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, firstErr)
	}
	if tpkg == nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	s.pkgs[importPath] = p
	return p, nil
}

func (s *Session) parseDir(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(s.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// goFileNames lists the non-test Go files of a fixture directory, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
