package load

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSrc parses and type-checks one in-memory file.
func checkSrc(t *testing.T, src string) ([]*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return []*ast.File{f}, info
}

const callSrc = `package p

type S struct{}

func (s *S) M() {}

type I interface{ N() }

func helper() {}

func caller(s *S, i I, fn func()) {
	helper()
	s.M()
	i.N()
	fn()
	go func() {
		helper()
	}()
}

var sink = initVal()

func initVal() int {
	helper()
	return 0
}
`

func TestCallGraphResolution(t *testing.T) {
	files, info := checkSrc(t, callSrc)
	g := NewCallGraph(files, info)

	lookup := func(name string) *types.Func {
		t.Helper()
		for fn := range g.Decls {
			if fn.Name() == name {
				return fn
			}
		}
		t.Fatalf("declared function %s not in Decls", name)
		return nil
	}
	for _, name := range []string{"M", "helper", "caller", "initVal"} {
		lookup(name)
	}

	edges := g.CallsFrom(lookup("caller"))
	// helper(), s.M(), i.N(), fn(), go func(){}(), and helper() inside the
	// goroutine literal — all attributed to caller.
	if len(edges) != 6 {
		t.Fatalf("CallsFrom(caller) = %d edges, want 6", len(edges))
	}
	callees := make(map[string]int)
	unresolved := 0
	for _, e := range edges {
		if e.Callee == nil {
			unresolved++
			continue
		}
		callees[e.Callee.Name()]++
	}
	if callees["helper"] != 2 {
		t.Errorf("helper resolved %d times, want 2 (direct + inside goroutine)", callees["helper"])
	}
	if callees["M"] != 1 {
		t.Errorf("method M resolved %d times, want 1", callees["M"])
	}
	if callees["N"] != 1 {
		t.Errorf("interface method N resolved %d times, want 1", callees["N"])
	}
	// fn() and the go func(){}() invocation are function-value calls.
	if unresolved != 2 {
		t.Errorf("unresolved callees = %d, want 2 (fn() and the go literal call)", unresolved)
	}
}

func TestCallGraphPackageInitialiser(t *testing.T) {
	files, info := checkSrc(t, callSrc)
	g := NewCallGraph(files, info)

	edges := g.CallsFrom(nil)
	if len(edges) != 1 {
		t.Fatalf("CallsFrom(nil) = %d edges, want 1 (the sink initialiser)", len(edges))
	}
	if edges[0].Callee == nil || edges[0].Callee.Name() != "initVal" {
		t.Fatalf("package-level initialiser callee = %v, want initVal", edges[0].Callee)
	}
}

func TestStaticCalleeInterfaceMethodIsNamed(t *testing.T) {
	files, info := checkSrc(t, callSrc)
	g := NewCallGraph(files, info)
	for _, e := range g.Edges {
		if e.Callee != nil && e.Callee.Name() == "N" {
			// An interface method has no declaration in this package.
			if _, ok := g.Decls[e.Callee]; ok {
				t.Fatal("interface method N must not appear in Decls")
			}
			return
		}
	}
	t.Fatal("no edge resolved to interface method N")
}
