package load

import (
	"go/ast"
	"go/types"
)

// This file adds the package-level call graph the all-paths analyzers
// (spanbalance, timecharge, maporder's one-hop upgrade) layer on top of
// the loader: which functions a package declares, and which statically
// resolvable callees each call site names. It is intraprocedural-friendly
// by design — one package at a time, no whole-program virtual-call
// resolution — because ddclint analyzers treat cross-package callees by
// assume-guarantee (the callee's own package run checks its obligation).

// Edge is one static call site inside a package.
type Edge struct {
	// Caller is the declared function whose body contains the call; nil
	// for calls in package-level variable initialisers.
	Caller *types.Func
	// Callee is the statically resolved target (a declared function, a
	// method — possibly an interface method — or nil when the call is
	// through a function value that cannot be named).
	Callee *types.Func
	Call   *ast.CallExpr
}

// CallGraph is one package's declarations and call sites.
type CallGraph struct {
	// Decls maps every function or method declared in the package (with
	// a body) to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Edges lists every call site, in file/position order.
	Edges []Edge
	// byCaller indexes Edges per caller.
	byCaller map[*types.Func][]Edge
}

// NewCallGraph builds the call graph of one type-checked package.
func NewCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		Decls:    make(map[*types.Func]*ast.FuncDecl),
		byCaller: make(map[*types.Func][]Edge),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	addCalls := func(caller *types.Func, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				e := Edge{Caller: caller, Callee: StaticCallee(info, call), Call: call}
				g.Edges = append(g.Edges, e)
				g.byCaller[caller] = append(g.byCaller[caller], e)
			}
			return true
		})
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := info.Defs[d.Name].(*types.Func)
				// Calls inside nested function literals are attributed
				// to the enclosing declared function.
				addCalls(fn, d.Body)
			case *ast.GenDecl:
				addCalls(nil, d)
			}
		}
	}
	return g
}

// CallsFrom returns the call sites whose enclosing declared function is
// fn (calls inside nested function literals included).
func (g *CallGraph) CallsFrom(fn *types.Func) []Edge { return g.byCaller[fn] }

// StaticCallee resolves the target of a call expression: a plain
// function, a method (value or pointer receiver, including interface
// methods), or nil for calls through unnamed function values, conversions,
// and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
