package load

import (
	"go/types"
	"os"
	"testing"
)

func TestModuleLoadsTypedPackages(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(root)
	pkgs, err := s.Module("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Module returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "teleport/internal/sim" {
		t.Fatalf("path = %q", p.Path)
	}
	if p.Info == nil || len(p.Files) == 0 {
		t.Fatal("module package missing syntax or type info")
	}
	obj := p.Types.Scope().Lookup("Time")
	if obj == nil {
		t.Fatal("sim.Time not found in type-checked package")
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("sim.Time is %T, want named type", obj.Type())
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Int64 {
		t.Fatalf("sim.Time underlying = %v, want int64", named.Underlying())
	}

	// Dependencies are cached: a second load must reuse the session state.
	again, err := s.Module("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Types != p.Types {
		t.Error("second Module call did not reuse the cached package")
	}
}
