package load

import (
	"os"
	"path/filepath"
	"testing"
)

// tempModule writes a throwaway module and returns its root.
func tempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tagmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// Build-tag-excluded files must not reach the type checker: the gated
// file below does not even type-check (it references an undeclared
// identifier), so its mere inclusion would fail the load.
func TestModuleExcludesBuildTaggedFiles(t *testing.T) {
	root := tempModule(t, map[string]string{
		"p/p.go": `package p

const Kept = 1
`,
		"p/gated.go": `//go:build neverbuildme

package p

const Dropped = thisDoesNotExist
`,
		"p/other_goos.go": `//go:build plan9 && !plan9

package p

const AlsoDropped = norDoesThis
`,
	})
	s := NewSession(root)
	pkgs, err := s.Module("./p")
	if err != nil {
		t.Fatalf("Module with gated files: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Module returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the gated ones excluded)", len(p.Files))
	}
	if p.Types.Scope().Lookup("Kept") == nil {
		t.Error("Kept not found in type-checked package")
	}
	if p.Types.Scope().Lookup("Dropped") != nil {
		t.Error("Dropped leaked in from the build-tag-excluded file")
	}
}

// Imports that appear only in _test.go files are invisible to the
// loader: go list's GoFiles excludes tests, so a test-only import of a
// package that does not even exist must not break analysis loads.
func TestModuleIgnoresTestOnlyImports(t *testing.T) {
	root := tempModule(t, map[string]string{
		"q/q.go": `package q

func Double(x int) int { return 2 * x }
`,
		"q/q_test.go": `package q

import (
	"testing"

	"tagmod/doesnotexist"
)

func TestDouble(t *testing.T) {
	_ = doesnotexist.Thing
}
`,
	})
	s := NewSession(root)
	pkgs, err := s.Module("./q")
	if err != nil {
		t.Fatalf("Module with broken test-only import: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("loaded %d packages / %d files, want 1 / 1", len(pkgs), len(pkgs[0].Files))
	}
	if pkgs[0].Types.Scope().Lookup("Double") == nil {
		t.Error("Double not found in type-checked package")
	}
}

// CheckFixture lists files itself (no go list), so it must apply the
// same _test.go exclusion by hand.
func TestCheckFixtureSkipsTestFiles(t *testing.T) {
	root := tempModule(t, map[string]string{
		"fix/f.go": `package fix

var V = 7
`,
		"fix/f_test.go": `package fix

import "nonexistent/junk"

var _ = junk.X
`,
	})
	s := NewSession(root)
	p, err := s.CheckFixture(filepath.Join(root, "fix"), "fix")
	if err != nil {
		t.Fatalf("CheckFixture with broken _test.go present: %v", err)
	}
	if len(p.Files) != 1 {
		t.Fatalf("fixture loaded %d files, want 1", len(p.Files))
	}
	if p.Types.Scope().Lookup("V") == nil {
		t.Error("V not found in fixture package")
	}
}
