// Package walltime forbids wall-clock time in simulator packages.
//
// Every result this repository reports is measured in virtual nanoseconds
// (internal/sim); a single time.Now or time.Sleep couples a run to the
// host scheduler and silently breaks bit-for-bit reproducibility. The
// virtual-clock packages themselves (internal/sim, internal/hw) are
// exempt, and genuinely wall-clock code (for example CLI timing in cmd/)
// can opt out per line with //lint:allow walltime <reason>.
package walltime

import (
	"go/ast"

	"teleport/internal/analysis"
)

// banned are the time-package entry points that read or wait on the wall
// clock. Pure-value helpers (time.Duration, time.Unix arithmetic on
// explicit inputs) stay legal.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbids wall-clock time (time.Now, time.Sleep, ...) in simulator packages; all timing must use the virtual clock",
	DefaultFilter: func(pkgPath string) bool {
		return pkgPath != "teleport/internal/sim" && pkgPath != "teleport/internal/hw"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, ok := pass.PkgPathOf(sel)
		if !ok || path != "time" || !banned[sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"wall-clock time.%s breaks same-seed reproducibility; use the virtual clock (sim.Time) or annotate //lint:allow walltime <reason>",
			sel.Sel.Name)
		return true
	})
	return nil
}
