package walltime_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), walltime.Analyzer, "walltime")
}

func TestFilterExemptsVirtualClockPackages(t *testing.T) {
	f := walltime.Analyzer.DefaultFilter
	for _, exempt := range []string{"teleport/internal/sim", "teleport/internal/hw"} {
		if f(exempt) {
			t.Errorf("filter should exempt %s", exempt)
		}
	}
	for _, checked := range []string{"teleport/internal/core", "teleport/cmd/ddcsim", "teleport"} {
		if !f(checked) {
			t.Errorf("filter should include %s", checked)
		}
	}
}
