// Package spanbalance checks that every trace span opened by
// trace.Tracer.Begin is ended exactly once on every exit path of the
// enclosing function.
//
// The tracer's flight recorder keys spans by id: a Begin whose id never
// reaches End leaves a dangling open span in the forensic dump, and a
// double End closes someone else's span once ids are recycled. Both are
// invisible at runtime — the simulator neither crashes nor diverges — so
// the invariant is enforced statically, over the control-flow graph:
// every path from a Begin to a function exit must pass exactly one End
// for that span. A `defer End` (directly or in a deferred closure)
// closes the span on every exit downstream of its registration point.
// Paths that panic are exempt, and spans whose id escapes the function
// (stored, returned, or passed to anything but End) are skipped — some
// other owner is responsible for them.
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"teleport/internal/analysis"
	"teleport/internal/analysis/cfg"
)

// Analyzer is the spanbalance check.
var Analyzer = &analysis.Analyzer{
	Name: "spanbalance",
	Doc:  "every trace span opened by Begin is ended exactly once on every exit path (defer-aware); flags leaked, discarded, and double-ended spans",
	DefaultFilter: func(pkgPath string) bool {
		// The tracer implements Begin/End; everyone else balances them.
		return pkgPath != "teleport/internal/trace"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkFunc(pass, body)
		}
		return true
	})
	return nil
}

// span is one tracked span variable: the object holding the Begin id and
// the position of the (first) Begin that fills it.
type span struct {
	obj types.Object
	pos token.Pos
}

// Per-path span states, tracked as a may-set.
const (
	unborn = 1 << iota // before any Begin (id is zero: End is a no-op)
	open               // Begin executed, End not yet
	closed             // End executed (or a defer End is registered)
)

type evKind int

const (
	evBegin evKind = iota
	evEnd
	evDeferEnd
)

// event is one Begin/End occurrence inside a basic block.
type event struct {
	kind evKind
	obj  types.Object
	pos  token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	spans, endArgs := collectSpans(pass, body)
	if len(spans) == 0 {
		return
	}
	tracked := make(map[types.Object]bool, len(spans))
	for _, sp := range spans {
		if !escapes(pass, body, sp.obj, endArgs) {
			tracked[sp.obj] = true
		}
	}
	if len(tracked) == 0 {
		return
	}
	g := cfg.New(body)
	events := make(map[*cfg.Block][]event)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			events[b] = append(events[b], nodeEvents(pass, n, tracked)...)
		}
	}
	for _, sp := range spans {
		if tracked[sp.obj] {
			checkSpan(pass, g, events, sp)
		}
	}
}

// collectSpans finds statement-level Begin sites, reporting discarded
// results on the spot, and records every ident that appears in a
// sanctioned position (Begin target, End argument) for the escape check.
func collectSpans(pass *analysis.Pass, body *ast.BlockStmt) ([]span, map[*ast.Ident]bool) {
	sanctioned := make(map[*ast.Ident]bool)
	// End arguments anywhere — deferred closures included — are
	// sanctioned uses of a span variable.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id := endArgIdent(pass, call); id != nil {
				sanctioned[id] = true
			}
		}
		return true
	})

	var spans []span
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own function: analyzed separately
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isTraceCall(pass, call, "Begin") {
				pass.Report(call.Pos(),
					"result of trace Begin is discarded: the span can never be ended; assign the id and End it on every path")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isTraceCall(pass, call, "Begin") {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field/element: some other owner ends it
			}
			if id.Name == "_" {
				pass.Report(call.Pos(),
					"result of trace Begin is discarded: the span can never be ended; assign the id and End it on every path")
				return true
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				sanctioned[id] = true
				if !seen[obj] {
					seen[obj] = true
					spans = append(spans, span{obj: obj, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return spans, sanctioned
}

// escapes reports whether obj is used anywhere outside its Begin
// assignments and End arguments — compared, returned, stored, or passed
// along — in which case span ownership has left this function.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, sanctioned map[*ast.Ident]bool) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || esc {
			return !esc
		}
		// The declaration itself (var sp uint64, sp := Begin) is always
		// sanctioned; other uses must be End arguments or Begin targets.
		if pass.Info.Uses[id] == obj && !sanctioned[id] {
			esc = true
		}
		return true
	})
	return esc
}

// nodeEvents extracts the Begin/End events of one block node in
// evaluation order. A defer registers its End for every downstream exit,
// so it is modelled as closing the span at the registration point; other
// function literals are separate functions and contribute nothing.
func nodeEvents(pass *analysis.Pass, n ast.Node, tracked map[types.Object]bool) []event {
	var evs []event
	if d, ok := n.(*ast.DeferStmt); ok {
		if obj := endArgObj(pass, d.Call); obj != nil && tracked[obj] {
			return []event{{evDeferEnd, obj, d.Call.Pos()}}
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if obj := endArgObj(pass, call); obj != nil && tracked[obj] {
						evs = append(evs, event{evDeferEnd, obj, call.Pos()})
					}
				}
				return true
			})
		}
		return evs
	}
	if _, ok := n.(*ast.GoStmt); ok {
		return nil // runs on another goroutine: no ordering guarantee
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(m.Lhs) == 1 && len(m.Rhs) == 1 {
				if call, ok := m.Rhs[0].(*ast.CallExpr); ok && isTraceCall(pass, call, "Begin") {
					if id, ok := m.Lhs[0].(*ast.Ident); ok {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil && tracked[obj] {
							evs = append(evs, event{evBegin, obj, call.Pos()})
						}
					}
				}
			}
		case *ast.CallExpr:
			if obj := endArgObj(pass, m); obj != nil && tracked[obj] {
				evs = append(evs, event{evEnd, obj, m.Pos()})
			}
		}
		return true
	})
	return evs
}

// checkSpan runs the may-analysis for one span variable and reports
// leaks, double Ends, and re-Begins once the state sets converge.
func checkSpan(pass *analysis.Pass, g *cfg.Graph, events map[*cfg.Block][]event, sp span) {
	transfer := func(b *cfg.Block, state uint8, report bool) uint8 {
		if state == 0 {
			return 0 // no path reaches this block
		}
		for _, e := range events[b] {
			if e.obj != sp.obj {
				continue
			}
			switch e.kind {
			case evBegin:
				if report && state&open != 0 {
					pass.Report(e.pos,
						"span variable re-begun while a previous span is still open: the earlier span leaks (End it first)")
				}
				state = open
			case evEnd, evDeferEnd:
				if report && state&closed != 0 {
					pass.Report(e.pos,
						"span already ended on a path reaching this End: double End corrupts the span ledger")
				}
				state = closed
			}
		}
		return state
	}

	in := make([]uint8, len(g.Blocks))
	out := make([]uint8, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			var st uint8
			if b == g.Entry {
				st = unborn
			}
			for _, p := range b.Preds {
				st |= out[p.Index]
			}
			no := transfer(b, st, false)
			if st != in[b.Index] || no != out[b.Index] {
				in[b.Index], out[b.Index] = st, no
				changed = true
			}
		}
	}
	for _, b := range g.Blocks {
		transfer(b, in[b.Index], true)
	}
	if in[g.Exit.Index]&open != 0 {
		pass.Report(sp.pos,
			"span opened here is not ended on every exit path: use defer End or End before each return (or //lint:allow spanbalance <reason>)")
	}
}

// isTraceCall reports whether call invokes the method named name on a
// type declared in a package whose base is "trace".
func isTraceCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && path.Base(fn.Pkg().Path()) == "trace"
}

// endArgIdent returns the span-id ident of a trace End call, if any.
func endArgIdent(pass *analysis.Pass, call *ast.CallExpr) *ast.Ident {
	if !isTraceCall(pass, call, "End") || len(call.Args) == 0 {
		return nil
	}
	id, _ := call.Args[len(call.Args)-1].(*ast.Ident)
	return id
}

// endArgObj resolves the span-id object of a trace End call, if any.
func endArgObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	id := endArgIdent(pass, call)
	if id == nil {
		return nil
	}
	return pass.Info.Uses[id]
}
