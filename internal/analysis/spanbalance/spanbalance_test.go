package spanbalance_test

import (
	"testing"

	"teleport/internal/analysis/analysistest"
	"teleport/internal/analysis/spanbalance"
)

func TestSpanbalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), spanbalance.Analyzer, "spanbalance")
}
