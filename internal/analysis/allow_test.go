package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() {
	x := 1 //lint:allow demo suppressed on the same line
	_ = x
}

func b() {
	//lint:allow demo suppressed from the line above
	y := 2
	_ = y
}

func c() {
	z := 3 //lint:allow demo
	_ = z
}

func d() {
	//lint:allow demo this one suppresses nothing
	_ = 4
}

func e() {
	//lint:allow otherchecker not ours; must not suppress demo
	w := 5
	_ = w
}
`

// demoDiags reports a diagnostic at every line containing marker.
func demoDiags(t *testing.T, fset *token.FileSet, f *ast.File, a *Analyzer, marker string) []Diagnostic {
	t.Helper()
	var out []Diagnostic
	for lineno, line := range strings.Split(allowSrc, "\n") {
		if strings.Contains(line, marker) {
			file := fset.File(f.Pos())
			out = append(out, Diagnostic{
				Analyzer: a,
				Pos:      file.LineStart(lineno + 1),
				Message:  "demo finding",
			})
		}
	}
	return out
}

func TestAllowFiltering(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	demo := &Analyzer{Name: "demo"}

	allows := CollectAllows(fset, []*ast.File{f})
	if len(allows) != 5 {
		t.Fatalf("CollectAllows = %d allows, want 5", len(allows))
	}

	// Diagnostics on every := line of the fixture (funcs a, b, c, e; func
	// d deliberately has none, which is what makes its allow stale).
	diags := demoDiags(t, fset, f, demo, ":=")
	if len(diags) != 4 {
		t.Fatalf("fixture yields %d raw diagnostics, want 4", len(diags))
	}

	got := FilterAllowed(fset, diags, allows, map[string]bool{"demo": true}, nil)

	var kept, missingReason, stale int
	for _, d := range got {
		switch {
		case d.Analyzer.Name == "demo":
			kept++
		case strings.Contains(d.Message, "needs a reason"):
			missingReason++
		case strings.Contains(d.Message, "stale"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s (%s)", d.Message, d.Analyzer.Name)
		}
	}
	// Same-line and line-above allows suppress (funcs a, b); the
	// reason-less allow in c still suppresses but is flagged; d's allow is
	// stale; e's allow names another checker so the demo finding survives.
	if kept != 1 {
		t.Errorf("kept %d demo diagnostics, want 1 (only func e's)", kept)
	}
	if missingReason != 1 {
		t.Errorf("missing-reason diagnostics = %d, want 1", missingReason)
	}
	// d's allow is stale for demo; e's allow targets a checker that did
	// not run, so it must NOT be reported stale.
	if stale != 1 {
		t.Errorf("stale-allow diagnostics = %d, want 1", stale)
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_fixture.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	demo := &Analyzer{Name: "demo"}
	allows := CollectAllows(fset, []*ast.File{f})
	diags := demoDiags(t, fset, f, demo, ":=")

	// With the registered suite supplied, func e's allow — naming a
	// checker that no longer exists — is reported as rot; the demo allows
	// are fine.
	got := FilterAllowed(fset, diags, allows, map[string]bool{"demo": true}, map[string]bool{"demo": true})
	unknown := 0
	for _, d := range got {
		if strings.Contains(d.Message, "not in the registered suite") {
			unknown++
			if !strings.Contains(d.Message, "otherchecker") {
				t.Errorf("unknown-analyzer diagnostic names the wrong allow: %s", d.Message)
			}
		}
	}
	if unknown != 1 {
		t.Errorf("unknown-analyzer diagnostics = %d, want 1", unknown)
	}

	// A nil known set skips the check entirely.
	got = FilterAllowed(fset, diags, allows, map[string]bool{"demo": true}, nil)
	for _, d := range got {
		if strings.Contains(d.Message, "not in the registered suite") {
			t.Errorf("nil known set must skip the unknown-analyzer check, got: %s", d.Message)
		}
	}
}
