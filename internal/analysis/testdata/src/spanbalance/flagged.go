package spanbalance

import (
	"sim"
	"trace"
)

func leakOnEarlyReturn(tr *trace.Tracer, t *sim.Thread, miss bool) {
	sp := tr.Begin(t, trace.KindAccess, 1, 0) // want `not ended on every exit path`
	if miss {
		return
	}
	tr.End(t, sp)
}

func leakOnSwitchPath(tr *trace.Tracer, t *sim.Thread, mode int) {
	sp := tr.Begin(t, trace.KindAccess, 2, 0) // want `not ended on every exit path`
	switch mode {
	case 0:
		tr.End(t, sp)
	case 1:
		tr.End(t, sp)
	}
	// mode >= 2 falls off the end with the span open.
}

func discarded(tr *trace.Tracer, t *sim.Thread) {
	tr.Begin(t, trace.KindAccess, 3, 0) // want `discarded`
}

func discardedBlank(tr *trace.Tracer, t *sim.Thread) {
	_ = tr.Begin(t, trace.KindAccess, 4, 0) // want `discarded`
}

func doubleEndAfterDefer(tr *trace.Tracer, t *sim.Thread, fast bool) {
	sp := tr.Begin(t, trace.KindAccess, 5, 0)
	defer tr.End(t, sp)
	if fast {
		tr.End(t, sp) // want `double End`
	}
}

func doubleEndTwoPaths(tr *trace.Tracer, t *sim.Thread, retry bool) {
	sp := tr.Begin(t, trace.KindAccess, 6, 0)
	tr.End(t, sp)
	if retry {
		tr.End(t, sp) // want `double End`
	}
}

func rebeginInLoop(tr *trace.Tracer, t *sim.Thread, n int) {
	var sp uint64
	for i := 0; i < n; i++ {
		sp = tr.Begin(t, trace.KindAccess, 7, 0) // want `re-begun`
		if i%2 == 0 {
			continue // leaks this iteration's span
		}
		tr.End(t, sp)
	}
	tr.End(t, sp) // want `double End`
}
