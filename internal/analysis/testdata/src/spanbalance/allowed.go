package spanbalance

import (
	"sim"
	"trace"
)

// The escape hatch: a reasoned allow suppresses the leak report.
func allowedLeak(tr *trace.Tracer, t *sim.Thread, drain bool) {
	sp := tr.Begin(t, trace.KindAccess, 1, 0) //lint:allow spanbalance shutdown path ends this span via the drain loop
	if drain {
		tr.End(t, sp)
	}
}
