package spanbalance

import (
	"sim"
	"trace"
)

// The canonical pattern: defer the End right after the Begin.
func deferEnd(tr *trace.Tracer, t *sim.Thread) {
	sp := tr.Begin(t, trace.KindAccess, 1, 0)
	defer tr.End(t, sp)
	t.Advance(sim.Microsecond)
}

// A deferred closure ending the span also covers every exit.
func deferClosureEnd(tr *trace.Tracer, t *sim.Thread, hit bool) {
	sp := tr.Begin(t, trace.KindAccess, 2, 0)
	defer func() {
		tr.End(t, sp)
	}()
	if hit {
		return
	}
	t.Advance(sim.Microsecond)
}

// Explicit End on every branch balances too.
func endEachPath(tr *trace.Tracer, t *sim.Thread, hit bool) {
	sp := tr.Begin(t, trace.KindAccess, 3, 0)
	if hit {
		tr.End(t, sp)
		return
	}
	t.Advance(sim.Microsecond)
	tr.End(t, sp)
}

// Panic paths are exempt: the recovery machinery owns cleanup there.
func panicPath(tr *trace.Tracer, t *sim.Thread, corrupt bool) {
	sp := tr.Begin(t, trace.KindAccess, 4, 0)
	if corrupt {
		panic("corrupt page")
	}
	tr.End(t, sp)
}

// A zero id is the tracer's documented no-op: conditional Begin with an
// unconditional End balances because End(t, 0) does nothing.
func zeroGuard(tr *trace.Tracer, t *sim.Thread, traced bool) {
	var sp uint64
	if traced {
		sp = tr.Begin(t, trace.KindAccess, 5, 0)
	}
	t.Advance(sim.Microsecond)
	tr.End(t, sp)
}

// A span id handed to another owner is out of scope for this check.
type carrier struct{ sp uint64 }

func escapesToField(tr *trace.Tracer, t *sim.Thread, c *carrier) {
	sp := tr.Begin(t, trace.KindAccess, 6, 0)
	c.sp = sp
}

func escapesToReturn(tr *trace.Tracer, t *sim.Thread) uint64 {
	sp := tr.Begin(t, trace.KindAccess, 7, 0)
	return sp
}

// Per-iteration balance: each loop round closes its span before the next
// Begin.
func loopBalanced(tr *trace.Tracer, t *sim.Thread, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Begin(t, trace.KindAccess, uint64(i), 0)
		t.Advance(sim.Microsecond)
		tr.End(t, sp)
	}
}
