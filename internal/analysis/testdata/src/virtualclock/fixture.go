package virtualclock

import "sim"

func bad(a, b sim.Time) int64 {
	return int64(a) - int64(b) // want `both operands strip a virtual-clock type`
}

func badConst(t sim.Time) int64 {
	return int64(t) + 1200 // want `raw numeric constant hides the time unit`
}

func badConstLeft(t sim.Time) int64 {
	return 2 * int64(t) // want `raw numeric constant hides the time unit`
}

// Convert after the arithmetic: the subtraction happens in sim.Time.
func clean(a, b sim.Time) int64 {
	return int64(a - b)
}

// Scaling with a typed constant keeps the unit visible.
func cleanScale(t sim.Time) sim.Time {
	return t + 3*sim.Microsecond
}

// Arithmetic on plain integers that never were clock values is fine.
func cleanBytes(n int64) int64 {
	return n*13 + 4
}

// Storing a converted value without arithmetic is the sanctioned
// accumulator pattern (metrics counters hold raw int64).
func cleanStore(t sim.Time, acc *int64) {
	*acc += int64(t)
}
