package errcmp

import "errors"

var errSentinel = errors.New("sentinel")

func work() error { return errSentinel }

func bad() bool {
	err := work()
	if err == errSentinel { // want `error compared with ==; a wrapped sentinel never matches — use errors\.Is`
		return true
	}
	if errSentinel != err { // want `error compared with !=; a wrapped sentinel never matches — use errors\.Is`
		return false
	}
	return work() == work() // want `error compared with ==`
}
