package errcmp

import "errors"

var errSentinel = errors.New("sentinel")

func work() error { return errSentinel }

func bad() bool {
	err := work()
	if err == errSentinel { // want `error compared with ==; a wrapped sentinel never matches — use errors\.Is`
		return true
	}
	if errSentinel != err { // want `error compared with !=; a wrapped sentinel never matches — use errors\.Is`
		return false
	}
	return work() == work() // want `error compared with ==`
}

// Shard-outage handling must match the ErrShardDown sentinel with
// errors.Is: the runtime can return it wrapped with call context.
var errShardDown = errors.New("teleport: memory-pool shard down (no live replica)")

func shardGate() error { return errShardDown }

func badShardCheck() bool {
	err := shardGate()
	if err == errShardDown { // want `error compared with ==; a wrapped sentinel never matches — use errors\.Is`
		return true
	}
	return errShardDown != err // want `error compared with !=; a wrapped sentinel never matches — use errors\.Is`
}

// Quorum-loss handling likewise: the pushdown gate returns ErrQuorumLost
// wrapped with call context, so only errors.Is matches it.
var errQuorumLost = errors.New("teleport: write quorum unreachable (partitioned replicas)")

func quorumGate() error { return errQuorumLost }

func badQuorumCheck() bool {
	err := quorumGate()
	if err == errQuorumLost { // want `error compared with ==; a wrapped sentinel never matches — use errors\.Is`
		return true
	}
	return errQuorumLost != err // want `error compared with !=; a wrapped sentinel never matches — use errors\.Is`
}
