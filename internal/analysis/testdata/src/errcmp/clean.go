package errcmp

import "errors"

type code int

func probe() error { return nil }

// Nil checks, errors.Is, and identity on concrete non-interface types are
// all sanctioned.
func clean(a, b code) bool {
	err := probe()
	if err == nil {
		return true
	}
	if nil != err {
		_ = err
	}
	if errors.Is(err, errSentinel) {
		return true
	}
	return a == b
}

// The escape hatch still works for a deliberate identity comparison.
func escaped() bool {
	err := probe()
	return err == errSentinel //lint:allow errcmp identity check on an unwrapped local sentinel
}

// The sanctioned shard-outage check: errors.Is against the sentinel.
func cleanShardCheck() bool {
	err := shardGate()
	return errors.Is(err, errShardDown)
}
