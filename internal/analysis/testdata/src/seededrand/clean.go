package seededrand

import "math/rand"

// Explicitly seeded generators are the sanctioned path: the stream is a
// pure function of the seed.
func clean(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.3, 1, 100)
	return r.Intn(10) + int(z.Uint64())
}

// Type references do not draw randomness.
func cleanSig(r *rand.Rand) rand.Source { return rand.NewSource(1) }
