package seededrand

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic`
	"math/rand"
)

func bad() int {
	rand.Seed(1)                       // want `rand\.Seed uses the unseeded global source`
	_ = rand.Float64()                 // want `rand\.Float64 uses the unseeded global source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle uses the unseeded global source`
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	return rand.Intn(10) // want `rand\.Intn uses the unseeded global source`
}
