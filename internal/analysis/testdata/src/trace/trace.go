// Package trace is a stand-in for the simulator's trace layer in
// maporder and spanbalance fixtures: Emit and Ring.Add record in call
// order, Len is a getter, and Tracer issues paired Begin/End spans.
package trace

import "sim"

var sink string

// Emit records one event.
func Emit(s string) { sink = s }

// Ring mimics a recording handle.
type Ring struct{ n int }

// Add records one event.
func (r *Ring) Add(s string) { sink, r.n = s, r.n+1 }

// Len returns the event count (a getter: order-insensitive).
func (r *Ring) Len() int { return r.n }

// Kind classifies a span.
type Kind int

// KindAccess is a page-access span.
const KindAccess Kind = 0

// Tracer mimics the simulator's span recorder: every Begin must be
// matched by an End on every exit path of the enclosing function.
type Tracer struct{ next uint64 }

// Begin opens a span and returns its id.
func (tr *Tracer) Begin(t *sim.Thread, k Kind, page uint64, arg int64) uint64 {
	tr.next++
	return tr.next
}

// End closes the span with the given id. End(t, 0) is a no-op.
func (tr *Tracer) End(t *sim.Thread, id uint64) {}
