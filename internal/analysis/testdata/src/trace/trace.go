// Package trace is a stand-in for the simulator's trace layer in
// maporder fixtures: Emit and Ring.Add record in call order, Len is a
// getter.
package trace

var sink string

// Emit records one event.
func Emit(s string) { sink = s }

// Ring mimics a recording handle.
type Ring struct{ n int }

// Add records one event.
func (r *Ring) Add(s string) { sink, r.n = s, r.n+1 }

// Len returns the event count (a getter: order-insensitive).
func (r *Ring) Len() int { return r.n }
