// Package ddc is a stand-in for the simulated disaggregated-memory
// machine in confine fixtures: mutable simulator state that must not
// cross host-goroutine boundaries.
package ddc

import "sim"

// Machine mimes one simulated machine: pool shards, pager, fault paths.
type Machine struct {
	Pages map[uint64][]byte
}

// Touch mutates machine state on the calling simulator thread.
func (m *Machine) Touch(t *sim.Thread, page uint64) {
	t.Advance(sim.Microsecond)
	m.Pages[page] = nil
}

// Process mimics one simulated process bound to a machine.
type Process struct{ M *Machine }
