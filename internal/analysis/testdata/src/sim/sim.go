// Package sim is a stand-in for the simulator's virtual clock and thread
// in virtualclock, spanbalance, timecharge, and confine fixtures.
package sim

// Time is a virtual duration in nanoseconds.
type Time int64

// Microsecond is 1000 virtual nanoseconds.
const Microsecond Time = 1000

// Thread mimics the simulator's virtual thread: the only holder of
// virtual time, advanced by the hardware models.
type Thread struct {
	now  Time
	name string
}

// Advance charges d to the thread's virtual clock.
func (t *Thread) Advance(d Time) { t.now += d }

// AdvanceNs charges a float nanosecond cost.
func (t *Thread) AdvanceNs(ns float64) { t.now += Time(ns) }

// AdvanceTo moves the clock forward to ts.
func (t *Thread) AdvanceTo(ts Time) {
	if ts > t.now {
		t.now = ts
	}
}

// Block parks the thread until another event unblocks it.
func (t *Thread) Block() {}

// Now returns the thread's virtual time (a getter: charges nothing).
func (t *Thread) Now() Time { return t.now }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Scheduler mimics the cooperative scheduler that owns all threads.
type Scheduler struct{ threads []*Thread }

// Go launches fn on a fresh simulator thread.
func (s *Scheduler) Go(name string, fn func(*Thread)) {
	t := &Thread{name: name}
	s.threads = append(s.threads, t)
	fn(t)
}

// Domain mimics a simulated machine's thread group in the parallel
// scheduler: its heap and horizon are mutated by the window worker that
// currently owns it, so it is confined state like Thread and Scheduler.
type Domain struct {
	name    string
	horizon Time
}

// Spawn launches fn on a fresh thread inside the domain.
func (d *Domain) Spawn(name string, fn func(*Thread)) *Thread {
	t := &Thread{name: name}
	fn(t)
	return t
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }
