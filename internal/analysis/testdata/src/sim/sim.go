// Package sim is a stand-in for the simulator's virtual clock in
// virtualclock fixtures.
package sim

// Time is a virtual duration in nanoseconds.
type Time int64

// Microsecond is 1000 virtual nanoseconds.
const Microsecond Time = 1000
