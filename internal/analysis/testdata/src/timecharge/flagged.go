package timecharge

import (
	"sim"
)

// Disk mimics a storage model: exported thread-taking methods are the
// modeled operations and must charge on every non-error path.
type Disk struct{ latency sim.Time }

// ReadPage forgets to charge the fast path.
func (d *Disk) ReadPage(t *sim.Thread, page uint64) []byte {
	if page == 0 {
		return nil // want `ReadPage returns without advancing`
	}
	t.Advance(d.latency)
	return make([]byte, 4096)
}

// Probe charges only when the probe hits.
func (d *Disk) Probe(t *sim.Thread, up bool) bool {
	if up {
		t.Advance(d.latency)
		return true
	}
	return false // want `Probe returns without advancing`
}

// Drain charges inside the loop but not when the loop runs zero times.
func (d *Disk) Drain(t *sim.Thread, pending []uint64) {
	for range pending {
		t.Advance(d.latency)
	}
} // want `Drain falls off the end without advancing`

// freeHelper never charges, so calling it earns no credit.
func (d *Disk) freeHelper(t *sim.Thread) {}

// Flush relies on a helper that does not actually charge.
func (d *Disk) Flush(t *sim.Thread) {
	d.freeHelper(t)
} // want `Flush falls off the end without advancing`
