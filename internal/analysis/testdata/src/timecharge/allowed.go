package timecharge

import (
	"sim"
)

// Sensor models a component whose healthy probe is free by design.
type Sensor struct{ latency sim.Time }

// Healthy is a zero-cost status probe: the charge-free fast path is
// deliberate and documented by the allow.
func (s *Sensor) Healthy(t *sim.Thread, up bool) bool {
	if up {
		return true //lint:allow timecharge status probe reads cached state without touching hardware
	}
	t.Advance(s.latency)
	return false
}
