package timecharge

import (
	"errors"
	"netmodel"
	"sim"
)

var errBadPage = errors.New("bad page")

// Rack composes models: charges flow through helpers and siblings.
type Rack struct {
	fabric  *netmodel.Fabric
	latency sim.Time
}

// NewRack is constructor-style (pointer result): out of scope.
func NewRack() *Rack { return &Rack{latency: sim.Microsecond} }

// Depth takes no thread: out of scope.
func (r *Rack) Depth() int { return 1 }

// WritePage charges directly on the only path.
func (r *Rack) WritePage(t *sim.Thread, page uint64) {
	t.Advance(r.latency)
}

// Transfer charges through a sibling model package (assume-guarantee:
// netmodel's own lint run proves Send charges).
func (r *Rack) Transfer(t *sim.Thread, bytes int) {
	r.fabric.Send(t, bytes)
}

// access charges unconditionally: its summary earns callers credit.
func (r *Rack) access(t *sim.Thread) {
	t.Advance(r.latency)
}

// CachedRead charges via the same-package helper's summary on both arms.
func (r *Rack) CachedRead(t *sim.Thread, hit bool) int {
	if hit {
		r.access(t)
		return 1
	}
	r.access(t)
	return 0
}

// TryRead bails with an error before touching hardware: the failure
// path is exempt, the success path charges.
func (r *Rack) TryRead(t *sim.Thread, page uint64) ([]byte, error) {
	if page == 0 {
		return nil, errBadPage
	}
	t.Advance(r.latency)
	return make([]byte, 4096), nil
}

// MustRead panics on corruption: panic paths are exempt.
func (r *Rack) MustRead(t *sim.Thread, corrupt bool) {
	if corrupt {
		panic("corrupt page")
	}
	t.Advance(r.latency)
}

// WaitTurn charges by blocking: Block advances time when the scheduler
// resumes the thread.
func (r *Rack) WaitTurn(t *sim.Thread) {
	t.Block()
}
