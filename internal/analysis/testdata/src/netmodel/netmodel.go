// Package netmodel is a stand-in for the fabric model in timecharge
// fixtures: its exported entry points charge the calling thread, so
// cross-package callers may assume the charge happened (assume-guarantee).
package netmodel

import "sim"

// Fabric mimics the network model.
type Fabric struct{}

// Send charges the wire cost of one message to t.
func (f *Fabric) Send(t *sim.Thread, bytes int) {
	t.Advance(sim.Time(bytes))
}
