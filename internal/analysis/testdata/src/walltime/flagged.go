package walltime

import "time"

func bad() time.Duration {
	start := time.Now()            // want `wall-clock time\.Now breaks same-seed reproducibility`
	time.Sleep(time.Millisecond)   // want `wall-clock time\.Sleep`
	<-time.After(time.Second)      // want `wall-clock time\.After`
	tick := time.Tick(time.Second) // want `wall-clock time\.Tick`
	<-tick
	tm := time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
	tm.Stop()
	return time.Since(start) // want `wall-clock time\.Since`
}

func badValue() func() time.Time {
	return time.Now // want `wall-clock time\.Now`
}
