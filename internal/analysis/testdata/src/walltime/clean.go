package walltime

import "time"

// Pure time-value arithmetic never reads the wall clock and stays legal.
func clean(d time.Duration) time.Duration {
	epoch := time.Unix(0, 0)
	later := epoch.Add(d)
	return later.Sub(epoch) * 2
}
