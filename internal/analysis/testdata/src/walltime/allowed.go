package walltime

import "time"

// wallElapsed times the host-side CLI run; it is genuinely wall-clock and
// opts out per line.
func wallElapsed(f func()) time.Duration {
	start := time.Now() //lint:allow walltime CLI wall-clock timing, not simulated time
	f()
	//lint:allow walltime CLI wall-clock timing, not simulated time
	return time.Since(start)
}
