package nilsafeobs

// Counter mimics a nil-safe observability handle.
type Counter struct{ n int64 }

// Good guards first: the canonical form.
func (c *Counter) Good(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Combined guards still lead with the receiver test.
func (c *Counter) Combined(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.n += d
}

// Inverted wraps the body in a non-nil test; also acceptable.
func (c *Counter) Inverted(d int64) {
	if c != nil {
		c.n += d
	}
}

// YodaGuard is the nil-first spelling.
func (c *Counter) YodaGuard() int64 {
	if nil == c {
		return 0
	}
	return c.n
}

func (c *Counter) Bad(d int64) { // want `\(\*Counter\)\.Bad must begin with a nil-receiver guard`
	c.n += d
}

func (c *Counter) BadLateGuard() { // want `must begin with a nil-receiver guard`
	d := int64(1)
	if c == nil {
		return
	}
	c.n += d
}

func (*Counter) Unnamed() {} // want `unnamed pointer receiver`

// Value receivers cannot be nil: exempt.
func (c Counter) Value() int64 { return c.n }

// Unexported methods are internal plumbing: exempt.
func (c *Counter) bump() { c.n++ }
