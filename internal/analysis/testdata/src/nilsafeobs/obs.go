package nilsafeobs

// The internal/obs analysis layer joins the filter set: its incident
// recorder and profile builder are handed around as possibly-nil handles
// exactly like rings and registries, so the same guard discipline applies.

// Recorder mimics obs.Recorder, the forensic flight recorder.
type Recorder struct {
	total     int
	incidents []string
}

// Observe is the ring-observer hook: the canonical guard-first form.
func (rc *Recorder) Observe(kind string) {
	if rc == nil {
		return
	}
	rc.total++
	rc.incidents = append(rc.incidents, kind)
}

// Total reads through a nil handle safely.
func (rc *Recorder) Total() int {
	if rc == nil {
		return 0
	}
	return rc.total
}

func (rc *Recorder) Flush() []string { // want `\(\*Recorder\)\.Flush must begin with a nil-receiver guard`
	out := rc.incidents
	rc.incidents = nil
	return out
}

// Profile mimics obs.Profile, the virtual-time profile builder output.
type Profile struct {
	paths []string
	self  []int64
}

// TopK guards before ranking.
func (p *Profile) TopK(k int) []string {
	if p == nil {
		return nil
	}
	if k > len(p.paths) {
		k = len(p.paths)
	}
	return p.paths[:k]
}

func (p *Profile) TotalSelfNs() int64 { // want `\(\*Profile\)\.TotalSelfNs must begin with a nil-receiver guard`
	var n int64
	for _, s := range p.self {
		n += s
	}
	return n
}

// addPath is builder-internal plumbing: exempt.
func (p *Profile) addPath(path string, self int64) {
	p.paths = append(p.paths, path)
	p.self = append(p.self, self)
}
