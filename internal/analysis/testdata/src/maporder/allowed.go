package maporder

import "fmt"

// debugDump is intentionally order-free output.
func debugDump(m map[string]int) {
	//lint:allow maporder debug helper; callers never diff the output
	for k := range m {
		fmt.Println(k)
	}
}
