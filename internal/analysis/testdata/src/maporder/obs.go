package maporder

import (
	"fmt"
	"sort"
)

// The internal/obs shapes: a profile builder aggregating span paths in a
// map, and an incident recorder diffing counter snapshots. Artifacts must
// be byte-identical across runs, so any map range that feeds output has to
// go through sorted keys; the counter diff is the sanctioned map-to-map
// rewrite.

type pathStat struct {
	count int64
	self  int64
}

// buildProfile aggregates into a map (order-insensitive) and then emits
// through sorted keys: the clean profile-builder pattern.
func buildProfile(samples []string) []string {
	agg := make(map[string]*pathStat)
	for _, s := range samples {
		ps := agg[s]
		if ps == nil {
			ps = &pathStat{}
			agg[s] = ps
		}
		ps.count++
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// counterDelta is the incident recorder's snapshot diff: map-to-map, so no
// iteration order can leak into the incident record.
func counterDelta(prev, cur map[string]int64) map[string]int64 {
	delta := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			delta[k] = d
		}
	}
	return delta
}

// writeFoldedUnsorted is the bug the analyzer exists to catch: folded
// stacks emitted straight off the map would shuffle between runs.
func writeFoldedUnsorted(agg map[string]*pathStat) {
	for path, ps := range agg { // want `calls fmt\.Printf per key`
		fmt.Printf("%s %d\n", path, ps.self)
	}
}

// incidentKindsUnsorted leaks map order into a retained slice: the
// incident-kind summary would differ run to run.
func incidentKindsUnsorted(byKind map[string]int) []string {
	var kinds []string
	for k := range byKind { // want `appends to "kinds", which outlives the loop unsorted`
		kinds = append(kinds, k)
	}
	return kinds
}
