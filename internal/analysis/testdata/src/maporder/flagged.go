package maporder

import (
	"fmt"
	"trace"
)

func printLoop(m map[string]int) {
	for k, v := range m { // want `calls fmt\.Printf per key`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func traceLoop(m map[string]int) {
	for k := range m { // want `calls trace\.Emit per key`
		trace.Emit(k)
	}
}

func traceMethodLoop(m map[string]int, r *trace.Ring) {
	for k := range m { // want `\(trace\) Add per key`
		r.Add(k)
	}
}

func appendLoop(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys", which outlives the loop unsorted`
		keys = append(keys, k)
	}
	return keys
}

func sendLoop(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func goLoop(m map[string]int, results []string) {
	i := 0
	for k := range m { // want `launches a goroutine per key`
		go func(slot int, key string) {
			results[slot] = key
		}(i, k)
		i++
	}
}
