package maporder

import (
	"fmt"
	"sort"
	"trace"
)

// The sanctioned pattern: collect, sort, then range the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printSorted(m map[string]int) {
	for _, k := range sortedKeys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// Commutative folds and map-to-map rewrites are order-insensitive.
func sum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A loop-local accumulator's order dies with the loop.
func localOnly(m map[string]int) int {
	n := 0
	for k := range m {
		var parts []string
		parts = append(parts, k)
		n += len(parts)
	}
	return n
}

// Getters on observability types are order-insensitive.
func getterLoop(m map[string]*trace.Ring) int {
	n := 0
	for _, r := range m {
		n += r.Len()
	}
	return n
}

// Worker fan-out is fine over an index-ordered job slice: spawn order is
// deterministic and each result lands in its own slot.
func goSorted(m map[string]int) []string {
	keys := sortedKeys(m)
	out := make([]string, len(keys))
	done := make(chan struct{})
	for i, k := range keys {
		go func(slot int, key string) {
			out[slot] = key
			done <- struct{}{}
		}(i, k)
	}
	for range keys {
		<-done
	}
	return out
}
