package maporder

import (
	"fmt"
	"trace"
)

// One call hop between the loop and the sink still launders iteration
// order into observable output.

func emitKey(k string) {
	trace.Emit(k)
}

func printEntry(k string, v int) {
	fmt.Printf("%s=%d\n", k, v)
}

func forward(k string, ch chan string) {
	ch <- k
}

func traceViaHelper(m map[string]int) {
	for k := range m { // want `passes the iteration variable to emitKey`
		emitKey(k)
	}
}

func printViaHelper(m map[string]int) {
	for k, v := range m { // want `passes the iteration variable to printEntry`
		printEntry(k, v)
	}
}

func sendViaHelper(m map[string]int, ch chan string) {
	for k := range m { // want `passes the iteration variable to forward`
		forward(k, ch)
	}
}

// Order-insensitive helpers stay clean: the iteration variable flows in
// but never reaches a sink.

func accumulate(v int, total *int) {
	*total += v
}

func sumViaHelper(m map[string]int) int {
	total := 0
	for _, v := range m {
		accumulate(v, &total)
	}
	return total
}

// A helper that emits something *else* (not the iteration variable) is
// order-insensitive with respect to the map.
func emitConstant(k string) {
	trace.Emit("tick")
}

func constantViaHelper(m map[string]int) {
	for k := range m {
		emitConstant(k)
	}
}
