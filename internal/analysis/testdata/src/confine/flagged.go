package confine

import (
	"ddc"
	"sim"
)

// A goroutine closure capturing simulator state interleaves with the
// scheduler arbitrarily.
func captureLeak(t *sim.Thread, m *ddc.Machine, done chan struct{}) {
	go func() {
		m.Touch(t, 1) // want `captures mutable simulator state \("m", ddc\.Machine\)` `captures mutable simulator state \("t", sim\.Thread\)`
		done <- struct{}{}
	}()
}

// Passing a thread as a goroutine argument smuggles the same state.
func argLeak(t *sim.Thread) {
	go func(worker *sim.Thread) {
		worker.Advance(sim.Microsecond)
	}(t) // want `passing mutable simulator state \(sim\.Thread\) to a goroutine`
}

// Launching a method goroutine on a machine hands over its state.
type pump struct{ m *ddc.Machine }

func (p *pump) run() {}

func methodLeak(p *pump, m *ddc.Machine, t *sim.Thread) {
	go m.Touch(t, 2) // want `launching a goroutine on mutable simulator state \(ddc\.Machine\)` `passing mutable simulator state \(sim\.Thread\)`
}

// Channels must carry values, not machinery.
func sendLeak(ch chan *sim.Thread, t *sim.Thread) {
	ch <- t // want `sending mutable simulator state \(sim\.Thread\) across a channel`
}

func sendMachine(ch chan *ddc.Machine, m *ddc.Machine) {
	ch <- m // want `sending mutable simulator state \(ddc\.Machine\) across a channel`
}

// A domain belongs to whichever window worker currently holds it; a
// goroutine that captures one races the coordinator's barrier state.
func domainCaptureLeak(d *sim.Domain, done chan struct{}) {
	go func() {
		d.Spawn("rogue", func(t *sim.Thread) {}) // want `captures mutable simulator state \("d", sim\.Domain\)`
		done <- struct{}{}
	}()
}

// Shipping domains through a channel builds an ad-hoc worker pool
// outside the scheduler's coordinated window protocol.
func sendDomain(ch chan *sim.Domain, d *sim.Domain) {
	ch <- d // want `sending mutable simulator state \(sim\.Domain\) across a channel`
}

// Handing the whole scheduler to a goroutine is the same leak one
// level up.
func schedulerArgLeak(s *sim.Scheduler) {
	go func(owner *sim.Scheduler) {
		owner.Go("rogue", func(t *sim.Thread) {})
	}(s) // want `passing mutable simulator state \(sim\.Scheduler\) to a goroutine`
}
