package confine

import (
	"sim"
)

// The escape hatch: a reasoned allow for deliberate handoffs (here a
// shutdown path that transfers thread ownership to a drain goroutine).
func allowedHandoff(t *sim.Thread, done chan struct{}) {
	go func() {
		t.Block() //lint:allow confine shutdown drain takes ownership after the scheduler parks
		done <- struct{}{}
	}()
}
