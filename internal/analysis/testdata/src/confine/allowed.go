package confine

import (
	"sim"
)

// The escape hatch: a reasoned allow for deliberate handoffs (here a
// shutdown path that transfers thread ownership to a drain goroutine).
func allowedHandoff(t *sim.Thread, done chan struct{}) {
	go func() {
		t.Block() //lint:allow confine shutdown drain takes ownership after the scheduler parks
		done <- struct{}{}
	}()
}

// The parallel scheduler's one sanctioned crossing: the coordinator
// hands each domain to a window worker, and the barrier (job send →
// ack receive) sequences every access — no two goroutines ever hold a
// domain in the same window. The worker side is clean by construction:
// it only touches domains it received from the jobs channel.
func allowedWindowWorker(jobs chan *sim.Domain, ack chan struct{}) {
	go func() {
		for d := range jobs {
			d.Spawn("drain", func(t *sim.Thread) {})
			ack <- struct{}{}
		}
	}()
}

func dispatchWindows(jobs chan *sim.Domain, ack chan struct{}, d *sim.Domain) {
	jobs <- d //lint:allow confine barrier protocol: receiver owns the domain until it acks
	<-ack
}
