package confine

import (
	"ddc"
	"sim"
)

// Goroutines may exchange plain values: page ids, counts, results.
func fanOut(pages []uint64, results []int, done chan struct{}) {
	for i := range pages {
		go func(slot int, page uint64) {
			results[slot] = int(page)
			done <- struct{}{}
		}(i, pages[i])
	}
}

// Sending derived values (not the machinery) is the sanctioned pattern.
func sendValues(m *ddc.Machine, t *sim.Thread, ch chan uint64) {
	m.Touch(t, 3)
	ch <- 3
}

// Simulator state may flow freely between ordinary function calls.
func ordinaryCalls(m *ddc.Machine, t *sim.Thread) {
	m.Touch(t, 4)
	helper(m, t)
}

func helper(m *ddc.Machine, t *sim.Thread) {
	m.Touch(t, 5)
}

// A closure that runs synchronously (not via go) may capture anything.
func syncClosure(m *ddc.Machine, t *sim.Thread) {
	touch := func() { m.Touch(t, 6) }
	touch()
}
