// Package trace is the simulator's qualitative observability layer: a
// bounded, allocation-light event ring that the paging, coherence, and
// pushdown paths publish into, plus a span layer (Tracer) that records
// begin/end intervals with parentage — a page fault nesting its recursive
// storage fault nesting its SSD read, a pushdown nesting its queue, setup,
// and execution phases. It answers "what actually happened and where the
// virtual time went" questions without perturbing the virtual clock
// (tracing costs no simulated time), and exports to Chrome trace-event
// JSON for Perfetto (WriteChromeTrace).
package trace

import (
	"fmt"
	"io"

	"teleport/internal/sim"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KindRemoteFault  Kind = iota // compute pool demand-fetched a page
	KindStorageFault             // memory pool faulted to the storage pool
	KindWriteback                // dirty page written back
	KindCoherence                // invalidation/downgrade message
	KindPushdownStart
	KindPushdownEnd
	KindEviction
	KindSync          // syncmem / eager / migration flush
	KindFaultInjected // chaos layer injected a fault (Arg: fault detail)
	KindRPCRetry      // fabric retransmitted a lost/corrupted message
	KindPoolCrash     // heartbeat observed the memory controller down
	KindPoolRecover   // heartbeat observed the memory controller back up
	KindFallbackLocal // recovery policy ran a pushdown in the compute pool

	// Crash-consistency and overload events.
	KindPushRollback    // undo journal rolled back after a mid-execution abort (Arg: pages restored)
	KindShed            // admission control rejected a pushdown (workqueue full)
	KindBreakerOpen     // circuit breaker opened (consecutive recoverable failures)
	KindBreakerHalfOpen // breaker cooldown elapsed; one probe allowed through
	KindBreakerClose    // probe succeeded; breaker closed

	// Span kinds recorded by the Tracer (begin/end pairs).
	KindRPC           // one fabric Send/RoundTrip (Arg: traffic class)
	KindSSDRead       // one device page-in
	KindSSDWrite      // one device page-out
	KindPushdown      // one whole pushdown call (Arg: call id)
	KindPushQueue     // workqueue wait inside a pushdown
	KindPushSetup     // temporary-context setup inside a pushdown
	KindPushExec      // pushed-function execution inside a pushdown
	KindPushSync      // pre (Arg 0) / post (Arg 1) pushdown synchronisation
	KindPushRetryWait // recovery-policy backoff between pushdown attempts

	// Sharded-pool fault-domain events.
	KindShardDown        // pushdown shed: a resident page's whole replica set is down
	KindFailover         // span: a page access served by a replica while its primary shard is down
	KindShardRecover     // span: re-sync journal replayed on a recovered shard (Arg: pages)
	KindHintedHandoff    // quorum write enqueued a handoff record for an unreachable replica (Arg: target shard)
	KindReadRepair       // span: failover read detected a stale copy and repaired it from the freshest reachable replica
	KindShardAntiEntropy // span: anti-entropy sweep delivered hinted-handoff records over a healed link (Arg: pages)
	KindPartitionHeal    // first traffic over a healed link drained that shard's handoff queue (Arg: shard)
	numKinds
)

var kindNames = [numKinds]string{
	"remote-fault", "storage-fault", "writeback", "coherence",
	"pushdown-start", "pushdown-end", "eviction", "sync",
	"fault-injected", "rpc-retry", "pool-crash", "pool-recover",
	"fallback-local",
	"push-rollback", "shed", "breaker-open", "breaker-half", "breaker-close",
	"rpc", "ssd-read", "ssd-write", "pushdown", "push-queue",
	"push-setup", "push-exec", "push-sync", "push-retry-wait",
	"shard-down", "failover", "shard-recover",
	"hinted-handoff", "read-repair", "shard-anti-entropy", "partition-heal",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Phase distinguishes instantaneous events from span endpoints.
type Phase uint8

// Phases.
const (
	PhaseInstant Phase = iota // a point event (the pre-span trace model)
	PhaseBegin                // a span opened (Span/Parent are set)
	PhaseEnd                  // a span closed (Span is set)
)

// String renders the phase marker used by Dump.
func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "B"
	case PhaseEnd:
		return "E"
	default:
		return "."
	}
}

// Event is one trace record: an instant, or one endpoint of a span.
type Event struct {
	At     sim.Time
	Kind   Kind
	Phase  Phase
	Span   uint64 // span id (begin/end events; 0 for instants)
	Parent uint64 // enclosing span id at begin time (0 = root)
	Page   uint64 // page id where applicable
	Arg    int64  // kind-specific detail (bytes, write flag, call id, ...)
	Who    string // thread name
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("%12v %s %-14s page=%-8d arg=%-6d %s", e.At, e.Phase, e.Kind, e.Page, e.Arg, e.Who)
}

// Ring is a fixed-capacity event buffer. The zero value is disabled; attach
// one with New. Methods are not synchronised — the virtual-time scheduler
// runs one simulated thread at a time, which is the only writer model the
// simulator has.
type Ring struct {
	events []Event
	next   int
	total  uint64

	// observer, when non-nil, sees every event immediately after it lands
	// in the ring — the hook the flight recorder (internal/obs) uses to
	// trip on degrade-class events with the retained window still warm.
	// Observation is passive: the observer must not advance virtual time.
	observer func(Event)
}

// New returns a ring holding the last capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Add records an event (no-op on a nil ring, so call sites need no guards).
func (r *Ring) Add(e Event) {
	if r == nil {
		return
	}
	r.total++
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
	} else {
		r.events[r.next] = e
		r.next = (r.next + 1) % cap(r.events)
	}
	if r.observer != nil {
		r.observer(e)
	}
}

// SetObserver installs (or, with nil, removes) a per-event callback, invoked
// after each Add with the event just recorded. Observers must be passive:
// they may read the ring but never advance a virtual clock.
func (r *Ring) SetObserver(fn func(Event)) {
	if r == nil {
		return
	}
	r.observer = fn
}

// Total returns the number of events ever recorded (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events were overwritten by ring wraparound
// (total recorded − retained). Non-zero means the retained window is a
// suffix of the run, not the whole story.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(len(r.events))
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// CountByKind tallies retained events. A span counts once (its begin
// endpoint); end endpoints are skipped so converting an instant event into a
// begin/end span pair does not change its count.
func (r *Ring) CountByKind() map[Kind]int {
	if r == nil {
		return make(map[Kind]int)
	}
	m := make(map[Kind]int)
	for _, e := range r.Events() {
		if e.Phase == PhaseEnd {
			continue
		}
		m[e.Kind]++
	}
	return m
}

// Dump writes the retained events to w, oldest first. When the ring wrapped
// it leads with a "# dropped N events" line so a partial trace is never
// mistaken for a complete one.
func (r *Ring) Dump(w io.Writer) {
	if r == nil {
		return
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(w, "# dropped %d events\n", d)
	}
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}
