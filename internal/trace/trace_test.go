package trace

import (
	"strings"
	"testing"

	"teleport/internal/sim"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Add(Event{Kind: KindRemoteFault})
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil ring must be inert")
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.Add(Event{At: sim.Time(i), Kind: KindEviction, Page: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Page != uint64(i+2) {
			t.Fatalf("events = %v (not oldest-first window)", evs)
		}
	}
}

func TestCountByKindAndDump(t *testing.T) {
	r := New(10)
	r.Add(Event{Kind: KindCoherence, Who: "a"})
	r.Add(Event{Kind: KindCoherence, Who: "b"})
	r.Add(Event{Kind: KindPushdownStart, Who: "c"})
	counts := r.CountByKind()
	if counts[KindCoherence] != 2 || counts[KindPushdownStart] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "coherence") || !strings.Contains(out, "pushdown-start") {
		t.Fatalf("dump = %s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("dump lines = %d", strings.Count(out, "\n"))
	}
}

// TestRingWraparound drives the ring through several full wraps and checks
// the retained window, ordering, and totals at every step — including the
// exact-capacity boundary where the append path hands over to the ring path.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	r := New(capacity)
	for i := 0; i < 3*capacity+1; i++ {
		r.Add(Event{At: sim.Time(i), Kind: KindRPCRetry, Page: uint64(i)})
		if want := uint64(i + 1); r.Total() != want {
			t.Fatalf("after %d adds Total = %d, want %d", i+1, r.Total(), want)
		}
		evs := r.Events()
		wantLen := i + 1
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(evs) != wantLen {
			t.Fatalf("after %d adds retained %d, want %d", i+1, len(evs), wantLen)
		}
		first := i + 1 - wantLen
		for j, e := range evs {
			if e.Page != uint64(first+j) {
				t.Fatalf("after %d adds events = %v (want pages %d..%d oldest-first)",
					i+1, evs, first, i)
			}
		}
	}
}

// Dropped is total minus retained, and a wrapped ring's Dump leads with the
// loss so a reader never mistakes a suffix for the whole run. An unwrapped
// ring reports zero and dumps without the banner.
func TestDroppedAndDumpBanner(t *testing.T) {
	r := New(3)
	r.Add(Event{Kind: KindCoherence, Who: "a"})
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d before wraparound", r.Dropped())
	}
	var clean strings.Builder
	r.Dump(&clean)
	if strings.Contains(clean.String(), "# dropped") {
		t.Fatalf("unwrapped dump carries a drop banner: %s", clean.String())
	}
	for i := 0; i < 4; i++ {
		r.Add(Event{Kind: KindCoherence, Who: "b"})
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (5 added, 3 retained)", r.Dropped())
	}
	var sb strings.Builder
	r.Dump(&sb)
	if !strings.HasPrefix(sb.String(), "# dropped 2 events\n") {
		t.Fatalf("dump = %q, want leading drop banner", sb.String())
	}
	var nilRing *Ring
	if nilRing.Dropped() != 0 {
		t.Fatal("nil ring Dropped != 0")
	}
}

// TestRingWraparoundCountByKind: kind tallies must reflect only the retained
// window, not overwritten history.
func TestRingWraparoundCountByKind(t *testing.T) {
	r := New(3)
	r.Add(Event{Kind: KindPoolCrash})
	r.Add(Event{Kind: KindPoolCrash})
	r.Add(Event{Kind: KindPoolRecover})
	r.Add(Event{Kind: KindFallbackLocal}) // overwrites the first pool-crash
	counts := r.CountByKind()
	if counts[KindPoolCrash] != 1 || counts[KindPoolRecover] != 1 || counts[KindFallbackLocal] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindFaultInjected: "fault-injected",
		KindRPCRetry:      "rpc-retry",
		KindPoolCrash:     "pool-crash",
		KindPoolRecover:   "pool-recover",
		KindFallbackLocal: "fallback-local",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindRemoteFault.String() != "remote-fault" || KindSync.String() != "sync" {
		t.Fatal("kind names")
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Fatal("unknown kind")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := New(0)
	r.Add(Event{Kind: KindSync})
	r.Add(Event{Kind: KindWriteback})
	if len(r.Events()) != 1 || r.Events()[0].Kind != KindWriteback {
		t.Fatalf("events = %v", r.Events())
	}
}
