package trace

import (
	"strings"
	"testing"

	"teleport/internal/sim"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Add(Event{Kind: KindRemoteFault})
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil ring must be inert")
	}
}

func TestRingKeepsLastN(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.Add(Event{At: sim.Time(i), Kind: KindEviction, Page: uint64(i)})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Page != uint64(i+2) {
			t.Fatalf("events = %v (not oldest-first window)", evs)
		}
	}
}

func TestCountByKindAndDump(t *testing.T) {
	r := New(10)
	r.Add(Event{Kind: KindCoherence, Who: "a"})
	r.Add(Event{Kind: KindCoherence, Who: "b"})
	r.Add(Event{Kind: KindPushdownStart, Who: "c"})
	counts := r.CountByKind()
	if counts[KindCoherence] != 2 || counts[KindPushdownStart] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "coherence") || !strings.Contains(out, "pushdown-start") {
		t.Fatalf("dump = %s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("dump lines = %d", strings.Count(out, "\n"))
	}
}

func TestKindStrings(t *testing.T) {
	if KindRemoteFault.String() != "remote-fault" || KindSync.String() != "sync" {
		t.Fatal("kind names")
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Fatal("unknown kind")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := New(0)
	r.Add(Event{Kind: KindSync})
	r.Add(Event{Kind: KindWriteback})
	if len(r.Events()) != 1 || r.Events()[0].Kind != KindWriteback {
		t.Fatalf("events = %v", r.Events())
	}
}
