package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// This file exports a retained event window as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// virtual time: the exporter divides virtual nanoseconds by 1000 into the
// format's microsecond unit, so one trace second is one simulated second.

// chromeEvent is one record of the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the containing object ({"traceEvents": [...]}).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace converts events (oldest-first, as returned by
// Ring.Events) to Chrome trace-event JSON. Paired spans become complete "X"
// events, so Perfetto nests them by timestamp on each thread track;
// incomplete spans (open at capture, or begin lost to wraparound) and
// instant events become "i" marks.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tids := make(map[string]int)
	var names []string
	tid := func(who string) int {
		if id, ok := tids[who]; ok {
			return id
		}
		id := len(tids) + 1
		tids[who] = id
		names = append(names, who)
		return id
	}

	var out []chromeEvent
	for _, s := range PairSpans(events) {
		args := map[string]any{"span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Page != 0 {
			args["page"] = s.Page
		}
		if s.Arg != 0 {
			args["arg"] = s.Arg
		}
		ev := chromeEvent{
			Name: s.Kind.String(), Cat: "teleport",
			Ts: float64(s.Start) / 1e3, Pid: 1, Tid: tid(s.Who), Args: args,
		}
		if s.Complete {
			dur := float64(s.Duration()) / 1e3
			ev.Ph, ev.Dur = "X", &dur
		} else {
			ev.Ph, ev.S = "i", "t"
		}
		out = append(out, ev)
	}
	for _, e := range events {
		if e.Phase != PhaseInstant {
			continue
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Cat: "teleport", Ph: "i", S: "t",
			Ts: float64(e.At) / 1e3, Pid: 1, Tid: tid(e.Who),
			Args: map[string]any{"page": e.Page, "arg": e.Arg},
		})
	}
	// Stable output: order by timestamp, then thread, then name.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Name < out[j].Name
	})
	// Thread-name metadata so Perfetto labels the tracks.
	meta := make([]chromeEvent, 0, len(names))
	for _, who := range names {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[who],
			Args: map[string]any{"name": who},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: append(meta, out...), DisplayTimeUnit: "ns"})
}
