package trace

import (
	"teleport/internal/sim"
)

// This file grows the flat event ring into a span layer. A Tracer allocates
// span IDs, tracks one open-span stack per simulated thread (the scheduler
// runs one thread at a time, so no locking), and records each span as a
// PhaseBegin/PhaseEnd event pair in the ring. Parentage is captured at begin
// time from the innermost open span of the same thread, so a remote fault
// nests its storage-fault child, which nests its SSD read, and a pushdown
// nests its queue/setup/exec/sync phases. Recording costs no virtual time.

// Span is one paired begin/end interval reconstructed from ring events.
type Span struct {
	ID     uint64
	Parent uint64 // 0 = root
	Kind   Kind
	Who    string
	Page   uint64
	Arg    int64
	Start  sim.Time
	End    sim.Time
	// Complete reports that both endpoints were retained. An open span (no
	// end yet) has End == Start; an orphan end (begin overwritten by ring
	// wraparound) likewise, anchored at the end timestamp.
	Complete bool
}

// Duration returns End − Start (0 for incomplete spans).
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Tracer records spans into a Ring. A nil Tracer is inert, like a nil Ring:
// Begin returns 0 and End(0) is a no-op, so instrumentation sites need no
// guards and tracing is disabled by default.
type Tracer struct {
	ring   *Ring
	nextID uint64
	stacks map[string][]frame // open spans per thread name, innermost last
}

// frame is one open span on a thread's stack.
type frame struct {
	id   uint64
	kind Kind
}

// NewTracer returns a tracer writing into r.
func NewTracer(r *Ring) *Tracer {
	return &Tracer{ring: r, stacks: make(map[string][]frame)}
}

// Ring returns the ring the tracer writes into (nil on a nil tracer).
func (tr *Tracer) Ring() *Ring {
	if tr == nil {
		return nil
	}
	return tr.ring
}

// Begin opens a span on t's stack and returns its ID (0 on a nil tracer).
func (tr *Tracer) Begin(t *sim.Thread, k Kind, page uint64, arg int64) uint64 {
	if tr == nil {
		return 0
	}
	tr.nextID++
	id := tr.nextID
	who := t.Name()
	var parent uint64
	if st := tr.stacks[who]; len(st) > 0 {
		parent = st[len(st)-1].id
	}
	tr.stacks[who] = append(tr.stacks[who], frame{id: id, kind: k})
	tr.ring.Add(Event{
		At: t.Now(), Kind: k, Phase: PhaseBegin,
		Span: id, Parent: parent, Page: page, Arg: arg, Who: who,
	})
	return id
}

// End closes the span, popping it (and any unclosed inner spans — a
// robustness guard, not an expected path) off t's stack. End(t, 0) is a
// no-op, so a Begin on a nil tracer composes safely.
func (tr *Tracer) End(t *sim.Thread, id uint64) {
	if tr == nil || id == 0 {
		return
	}
	who := t.Name()
	kind := Kind(0)
	st := tr.stacks[who]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].id == id {
			kind = st[i].kind
			tr.stacks[who] = st[:i]
			break
		}
	}
	tr.ring.Add(Event{At: t.Now(), Kind: kind, Phase: PhaseEnd, Span: id, Who: who})
}

// PairSpans reconstructs spans from a retained event window, oldest-first.
// Begin events open spans; end events close them by ID. Ring wraparound is
// tolerated: an end whose begin was overwritten yields a zero-duration span
// anchored at the end timestamp, and a begin whose end is not yet recorded
// (the span was still open) yields a zero-duration span anchored at the
// begin. Spans are returned in open order.
func PairSpans(events []Event) []Span {
	var spans []Span
	index := make(map[uint64]int) // span ID → index in spans
	for _, e := range events {
		switch e.Phase {
		case PhaseBegin:
			index[e.Span] = len(spans)
			spans = append(spans, Span{
				ID: e.Span, Parent: e.Parent, Kind: e.Kind, Who: e.Who,
				Page: e.Page, Arg: e.Arg, Start: e.At, End: e.At,
			})
		case PhaseEnd:
			if i, ok := index[e.Span]; ok {
				spans[i].End = e.At
				spans[i].Complete = true
				if spans[i].Kind == 0 && e.Kind != 0 {
					spans[i].Kind = e.Kind
				}
			} else {
				// Orphan end: the begin fell off the ring.
				spans = append(spans, Span{
					ID: e.Span, Kind: e.Kind, Who: e.Who,
					Start: e.At, End: e.At,
				})
			}
		}
	}
	return spans
}
