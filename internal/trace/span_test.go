package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"teleport/internal/sim"
)

// A nil tracer is inert: Begin returns 0, End(0) is a no-op, and nothing is
// recorded — the disabled-by-default contract.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	th := sim.NewThread("t")
	id := tr.Begin(th, KindRPC, 0, 0)
	if id != 0 {
		t.Fatalf("nil tracer Begin = %d, want 0", id)
	}
	tr.End(th, id)
	if tr.Ring() != nil {
		t.Fatalf("nil tracer ring non-nil")
	}

	// Begin/End on a live tracer over a nil ring must not panic either.
	tr2 := NewTracer(nil)
	id2 := tr2.Begin(th, KindRPC, 0, 0)
	tr2.End(th, id2)
}

func TestSpanNestingAndPairing(t *testing.T) {
	r := New(64)
	tr := NewTracer(r)
	th := sim.NewThread("worker")

	outer := tr.Begin(th, KindRemoteFault, 7, 1)
	th.AdvanceNs(100)
	inner := tr.Begin(th, KindSSDRead, 7, 0)
	th.AdvanceNs(50)
	tr.End(th, inner)
	th.AdvanceNs(25)
	tr.End(th, outer)

	spans := PairSpans(r.Events())
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	o, i := spans[0], spans[1]
	if o.Kind != KindRemoteFault || i.Kind != KindSSDRead {
		t.Fatalf("kinds = %v/%v", o.Kind, i.Kind)
	}
	if i.Parent != o.ID {
		t.Fatalf("inner parent = %d, want %d", i.Parent, o.ID)
	}
	if o.Parent != 0 {
		t.Fatalf("outer parent = %d, want 0 (root)", o.Parent)
	}
	if !o.Complete || !i.Complete {
		t.Fatalf("spans incomplete: %+v %+v", o, i)
	}
	if o.Duration() != 175 || i.Duration() != 50 {
		t.Fatalf("durations = %v/%v, want 175ns/50ns", o.Duration(), i.Duration())
	}

	// Separate threads keep separate stacks: no cross-thread parentage.
	other := sim.NewThread("other")
	root := tr.Begin(other, KindPushdown, 0, 1)
	if got := PairSpans(r.Events()); got[len(got)-1].Parent != 0 {
		t.Fatalf("cross-thread span inherited a parent")
	}
	tr.End(other, root)
}

// CountByKind counts a span once (its begin); converting an instant into a
// begin/end pair keeps the count stable.
func TestCountByKindSkipsEnds(t *testing.T) {
	r := New(16)
	tr := NewTracer(r)
	th := sim.NewThread("t")
	r.Add(Event{At: th.Now(), Kind: KindCoherence, Who: "t"}) // instant
	sp := tr.Begin(th, KindCoherence, 1, 0)
	th.AdvanceNs(10)
	tr.End(th, sp)
	if got := r.CountByKind()[KindCoherence]; got != 2 {
		t.Fatalf("coherence count = %d, want 2 (instant + one span)", got)
	}
}

// Wraparound drops the oldest events; pairing must tolerate ends whose
// begins were overwritten and begins whose ends never arrived.
func TestPairSpansWraparound(t *testing.T) {
	r := New(4) // tiny ring: only the last 4 events survive
	tr := NewTracer(r)
	th := sim.NewThread("t")

	a := tr.Begin(th, KindPushdown, 0, 1)
	th.AdvanceNs(10)
	for i := 0; i < 3; i++ {
		sp := tr.Begin(th, KindRPC, 0, int64(i))
		th.AdvanceNs(5)
		tr.End(th, sp)
	}
	tr.End(th, a)

	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained = %d, want 4", len(events))
	}
	spans := PairSpans(events)
	// The retained window is (end rpc#1, begin rpc#2, end rpc#2, end a):
	// one complete span, one orphan end each for rpc#1 and the pushdown.
	var complete, orphan int
	for _, s := range spans {
		if s.Complete {
			complete++
			if s.Kind != KindRPC {
				t.Fatalf("complete span kind = %v", s.Kind)
			}
		} else {
			orphan++
			if s.Duration() != 0 {
				t.Fatalf("orphan span has duration %v", s.Duration())
			}
		}
	}
	if complete != 1 || orphan != 2 {
		t.Fatalf("complete=%d orphan=%d, want 1/2 (events: %v)", complete, orphan, events)
	}

	// CountByKind on the same window: the one retained begin per kind.
	counts := r.CountByKind()
	if counts[KindRPC] != 1 || counts[KindPushdown] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

// The Chrome export must be valid JSON with complete spans as "X" events
// carrying parentage, and thread-name metadata for Perfetto's track labels.
func TestWriteChromeTrace(t *testing.T) {
	r := New(64)
	tr := NewTracer(r)
	th := sim.NewThread("caller")
	outer := tr.Begin(th, KindPushdown, 0, 1)
	th.AdvanceNs(2000)
	inner := tr.Begin(th, KindPushExec, 0, 1)
	th.AdvanceNs(3000)
	tr.End(th, inner)
	tr.End(th, outer)
	r.Add(Event{At: th.Now(), Kind: KindPoolCrash, Who: "caller"}) // instant

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var xs, is, meta int
	var sawChild bool
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Name == "push-exec" {
				if ev.Dur != 3 { // 3000 ns = 3 µs
					t.Fatalf("push-exec dur = %v µs, want 3", ev.Dur)
				}
				if _, ok := ev.Args["parent"]; !ok {
					t.Fatalf("nested span missing parent arg: %+v", ev)
				}
				sawChild = true
			}
		case "i":
			is++
		case "M":
			meta++
		}
	}
	if xs != 2 || is != 1 || meta != 1 || !sawChild {
		t.Fatalf("X=%d i=%d M=%d child=%v, want 2/1/1/true", xs, is, meta, sawChild)
	}
}

// An end whose begin was overwritten by ring wraparound must not mispair
// with a surviving begin, miscount in CountByKind, or dangle in the Chrome
// export: the orphan keeps its own span ID, counts only as retained begins
// do, and exports as an instant mark, never an unbalanced "X".
func TestWraparoundOrphanEndIsolation(t *testing.T) {
	r := New(3) // retains: (end long#1, begin short#2, end short#2)
	tr := NewTracer(r)
	th := sim.NewThread("t")

	long := tr.Begin(th, KindPushdown, 7, 1)
	th.AdvanceNs(100)
	tr.End(th, long) // begin already evicted once two more events land
	short := tr.Begin(th, KindRPC, 0, 2)
	th.AdvanceNs(5)
	tr.End(th, short)

	events := r.Events()
	if len(events) != 3 || r.Dropped() != 1 {
		t.Fatalf("retained=%d dropped=%d, want 3/1", len(events), r.Dropped())
	}

	spans := PairSpans(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	var orphan, complete *Span
	for i := range spans {
		if spans[i].Complete {
			complete = &spans[i]
		} else {
			orphan = &spans[i]
		}
	}
	if complete == nil || orphan == nil {
		t.Fatalf("want one complete + one orphan, got %+v", spans)
	}
	// No mispair: the orphan end kept its own ID and did not close (or
	// distort) the surviving rpc span.
	if orphan.ID != long || orphan.Duration() != 0 || orphan.Kind != KindPushdown {
		t.Fatalf("orphan = %+v", orphan)
	}
	if complete.ID != short || complete.Kind != KindRPC || complete.Duration() != sim.Time(5) {
		t.Fatalf("complete = %+v", complete)
	}

	// No miscount: only the retained begin counts; the orphan end does not
	// resurrect the pushdown's count.
	counts := r.CountByKind()
	if counts[KindRPC] != 1 || counts[KindPushdown] != 0 {
		t.Fatalf("counts = %v", counts)
	}

	// No dangling end in the Chrome export: exactly one balanced "X" (the
	// complete span) and the orphan as an instant mark.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph   string   `json:"ph"`
			Name string   `json:"name"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var xs, marks int
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Name != "rpc" || ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("dangling or negative X event: %+v", ev)
			}
		case "i":
			marks++
		}
	}
	if xs != 1 || marks != 1 {
		t.Fatalf("X=%d i=%d, want 1 balanced span and 1 orphan mark", xs, marks)
	}
}
