package storage

import (
	"testing"

	"teleport/internal/hw"
	"teleport/internal/sim"
)

func newTestSSD() (*SSD, *sim.Thread) {
	cfg := hw.Testbed()
	return New(&cfg, 4096), sim.NewThread("ssd-test")
}

func TestRandomReadPaysLatency(t *testing.T) {
	d, th := newTestSSD()
	d.ReadPage(th, 100)
	cfg := hw.Testbed()
	want := sim.FromNs(cfg.SSDRandReadNs + 4096/cfg.SSDSeqGBs)
	if th.Now() != want {
		t.Fatalf("random read cost %v, want %v", th.Now(), want)
	}
}

func TestSequentialReadsPayBandwidthOnly(t *testing.T) {
	d, th := newTestSSD()
	d.ReadPage(th, 100)
	first := th.Now()
	d.ReadPage(th, 101)
	seqCost := th.Now() - first
	cfg := hw.Testbed()
	want := sim.FromNs(4096 / cfg.SSDSeqGBs)
	if seqCost != want {
		t.Fatalf("sequential read cost %v, want %v", seqCost, want)
	}
	if s := d.Stats(); s.SeqReads != 1 || s.Reads != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNonConsecutiveBreaksStream(t *testing.T) {
	d, th := newTestSSD()
	d.ReadPage(th, 100)
	d.ReadPage(th, 101)
	before := th.Now()
	d.ReadPage(th, 50) // jump back: random again
	cfg := hw.Testbed()
	if got := th.Now() - before; got < sim.FromNs(cfg.SSDRandReadNs) {
		t.Fatalf("jump read cost %v, want at least the random latency", got)
	}
}

func TestWriteCosts(t *testing.T) {
	d, th := newTestSSD()
	d.WritePage(th, 10)
	d.WritePage(th, 11)
	s := d.Stats()
	if s.Writes != 2 || s.BytesWrite != 8192 {
		t.Fatalf("stats = %+v", s)
	}
	// Reads and writes keep independent streams.
	d.ReadPage(th, 12)
	if d.Stats().SeqReads != 0 {
		t.Fatal("read after write must not count as sequential read")
	}
}

func TestReset(t *testing.T) {
	d, th := newTestSSD()
	d.ReadPage(th, 1)
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.BytesRead != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

// scriptedInjector fails the first n read checks.
type scriptedInjector struct{ failures int }

func (s *scriptedInjector) SSDReadError() bool {
	if s.failures > 0 {
		s.failures--
		return true
	}
	return false
}

func TestInjectedReadErrorRetries(t *testing.T) {
	d, th := newTestSSD()
	d.SetInjector(&scriptedInjector{failures: 1})
	d.ReadPage(th, 100)
	cfg := hw.Testbed()
	once := cfg.SSDRandReadNs + 4096/cfg.SSDSeqGBs
	want := 2 * sim.FromNs(once) // original read + one re-read
	if th.Now() != want {
		t.Fatalf("faulty read cost %v, want %v", th.Now(), want)
	}
	s := d.Stats()
	if s.ReadRetries != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 read / 1 retry", s)
	}
}

func TestReadRetriesAreCapped(t *testing.T) {
	d, th := newTestSSD()
	d.SetInjector(&scriptedInjector{failures: 100})
	d.ReadPage(th, 7)
	if got := d.Stats().ReadRetries; got != maxReadAttempts-1 {
		t.Fatalf("retries = %d, want cap %d", got, maxReadAttempts-1)
	}
	if th.Now() == 0 {
		t.Fatal("capped read charged nothing")
	}
}

func TestResetKeepsInjector(t *testing.T) {
	d, th := newTestSSD()
	d.SetInjector(&scriptedInjector{failures: maxReadAttempts})
	d.ReadPage(th, 1) // consumes maxReadAttempts-1 failures
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.ReadRetries != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	d.ReadPage(th, 2)
	if d.Stats().ReadRetries == 0 {
		t.Fatal("injector lost across Reset")
	}
}

func TestSSDSlowerThanFabricPage(t *testing.T) {
	// The premise of Figure 1a: paging from the remote memory pool must be
	// far cheaper than paging from the SSD.
	cfg := hw.Testbed()
	ssdNs := cfg.SSDRandReadNs + 4096/cfg.SSDSeqGBs
	netNs := cfg.RoundTripNs(64, 4096)
	if ssdNs < 10*netNs {
		t.Fatalf("SSD (%v ns) should be ≳10× remote memory (%v ns)", ssdNs, netNs)
	}
}
