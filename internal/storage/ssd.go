// Package storage models the NVMe SSD that backs both the monolithic-Linux
// swap path (Figure 1a, 14) and the DDC storage pool (§2.1's recursive page
// fault to storage). It is a pure cost model with counters: page contents
// always live in the process's ground-truth address space, so the SSD only
// decides how long each page-in/page-out takes.
package storage

import (
	"teleport/internal/hw"
	"teleport/internal/metrics"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Injector decides whether one device read fails its media/CRC check and
// must be retried. Implemented by *fault.Plan.
type Injector interface {
	SSDReadError() bool
}

// maxReadAttempts bounds device-level read retries; a flash controller that
// fails this many consecutive re-reads would return the block from parity,
// which the model treats as one more (successful) read.
const maxReadAttempts = 4

// SSD models one NVMe device. Consecutive page IDs are detected as a
// sequential stream and pay bandwidth only; anything else pays the random
// access latency. Methods charge virtual time to the calling thread.
type SSD struct {
	cfg      *hw.Config
	pageSize int
	inj      Injector
	times    *metrics.TimeSet // machine-wide attribution (nil-safe)
	tr       *trace.Tracer    // span layer (nil = spans off)
	reg      *metrics.Registry

	lastRead  uint64
	lastWrite uint64
	haveRead  bool
	haveWrite bool

	reads       int64
	writes      int64
	seqReads    int64
	bytesRead   int64
	bytesWrite  int64
	readRetries int64
}

// New returns an SSD with the given hardware parameters and page size.
func New(cfg *hw.Config, pageSize int) *SSD {
	return &SSD{cfg: cfg, pageSize: pageSize}
}

// SetInjector attaches (or detaches, with nil) a read-error injector.
func (d *SSD) SetInjector(inj Injector) { d.inj = inj }

// SetTracer attaches a span tracer: each page-in/page-out becomes an
// ssd-read/ssd-write span nesting under the fault that triggered it.
func (d *SSD) SetTracer(tr *trace.Tracer) { d.tr = tr }

// SetTimes attaches the machine-wide attribution accumulator.
func (d *SSD) SetTimes(ts *metrics.TimeSet) { d.times = ts }

// SetMetrics attaches (or detaches, with nil) a metrics registry.
func (d *SSD) SetMetrics(reg *metrics.Registry) { d.reg = reg }

// ReadPage charges the cost of paging one page in from the device. An
// injected read error re-reads the page at full random-access cost (the
// stream is broken by the seek back).
func (d *SSD) ReadPage(t *sim.Thread, page uint64) {
	start := t.Now()
	sp := d.tr.Begin(t, trace.KindSSDRead, page, 0)
	d.reads++
	d.bytesRead += int64(d.pageSize)
	seq := d.haveRead && page == d.lastRead+1
	d.lastRead, d.haveRead = page, true
	if seq {
		d.seqReads++
		t.AdvanceNs(float64(d.pageSize) / d.cfg.SSDSeqGBs)
	} else {
		t.AdvanceNs(d.cfg.SSDRandReadNs + float64(d.pageSize)/d.cfg.SSDSeqGBs)
	}
	if d.inj != nil {
		for attempt := 1; attempt < maxReadAttempts && d.inj.SSDReadError(); attempt++ {
			d.readRetries++
			t.AdvanceNs(d.cfg.SSDRandReadNs + float64(d.pageSize)/d.cfg.SSDSeqGBs)
		}
	}
	d.tr.End(t, sp)
	d.times.Add(metrics.CompSSDRead, t.Now()-start)
	d.reg.Counter("ssd.read").Inc()
	d.reg.Histogram("ssd.read.ns").Observe(t.Now() - start)
}

// WritePage charges the cost of paging one page out to the device.
func (d *SSD) WritePage(t *sim.Thread, page uint64) {
	start := t.Now()
	sp := d.tr.Begin(t, trace.KindSSDWrite, page, 0)
	d.writes++
	d.bytesWrite += int64(d.pageSize)
	seq := d.haveWrite && page == d.lastWrite+1
	d.lastWrite, d.haveWrite = page, true
	if seq {
		t.AdvanceNs(float64(d.pageSize) / d.cfg.SSDSeqGBs)
	} else {
		t.AdvanceNs(d.cfg.SSDRandWriteNs + float64(d.pageSize)/d.cfg.SSDSeqGBs)
	}
	d.tr.End(t, sp)
	d.times.Add(metrics.CompSSDWrite, t.Now()-start)
	d.reg.Counter("ssd.write").Inc()
	d.reg.Histogram("ssd.write.ns").Observe(t.Now() - start)
}

// Stats describes accumulated device activity.
type Stats struct {
	Reads, Writes         int64
	SeqReads              int64
	BytesRead, BytesWrite int64
	// ReadRetries counts device-level re-reads after injected read errors.
	ReadRetries int64
}

// Stats returns the accumulated counters.
func (d *SSD) Stats() Stats {
	return Stats{
		Reads: d.reads, Writes: d.writes, SeqReads: d.seqReads,
		BytesRead: d.bytesRead, BytesWrite: d.bytesWrite,
		ReadRetries: d.readRetries,
	}
}

// Reset clears counters and stream-detection state, keeping the injector
// and observability attachments.
func (d *SSD) Reset() {
	*d = SSD{cfg: d.cfg, pageSize: d.pageSize, inj: d.inj,
		times: d.times, tr: d.tr, reg: d.reg}
}
