// Package storage models the NVMe SSD that backs both the monolithic-Linux
// swap path (Figure 1a, 14) and the DDC storage pool (§2.1's recursive page
// fault to storage). It is a pure cost model with counters: page contents
// always live in the process's ground-truth address space, so the SSD only
// decides how long each page-in/page-out takes.
package storage

import (
	"teleport/internal/hw"
	"teleport/internal/sim"
)

// SSD models one NVMe device. Consecutive page IDs are detected as a
// sequential stream and pay bandwidth only; anything else pays the random
// access latency. Methods charge virtual time to the calling thread.
type SSD struct {
	cfg      *hw.Config
	pageSize int

	lastRead  uint64
	lastWrite uint64
	haveRead  bool
	haveWrite bool

	reads      int64
	writes     int64
	seqReads   int64
	bytesRead  int64
	bytesWrite int64
}

// New returns an SSD with the given hardware parameters and page size.
func New(cfg *hw.Config, pageSize int) *SSD {
	return &SSD{cfg: cfg, pageSize: pageSize}
}

// ReadPage charges the cost of paging one page in from the device.
func (d *SSD) ReadPage(t *sim.Thread, page uint64) {
	d.reads++
	d.bytesRead += int64(d.pageSize)
	seq := d.haveRead && page == d.lastRead+1
	d.lastRead, d.haveRead = page, true
	if seq {
		d.seqReads++
		t.AdvanceNs(float64(d.pageSize) / d.cfg.SSDSeqGBs)
		return
	}
	t.AdvanceNs(d.cfg.SSDRandReadNs + float64(d.pageSize)/d.cfg.SSDSeqGBs)
}

// WritePage charges the cost of paging one page out to the device.
func (d *SSD) WritePage(t *sim.Thread, page uint64) {
	d.writes++
	d.bytesWrite += int64(d.pageSize)
	seq := d.haveWrite && page == d.lastWrite+1
	d.lastWrite, d.haveWrite = page, true
	if seq {
		t.AdvanceNs(float64(d.pageSize) / d.cfg.SSDSeqGBs)
		return
	}
	t.AdvanceNs(d.cfg.SSDRandWriteNs + float64(d.pageSize)/d.cfg.SSDSeqGBs)
}

// Stats describes accumulated device activity.
type Stats struct {
	Reads, Writes         int64
	SeqReads              int64
	BytesRead, BytesWrite int64
}

// Stats returns the accumulated counters.
func (d *SSD) Stats() Stats {
	return Stats{
		Reads: d.reads, Writes: d.writes, SeqReads: d.seqReads,
		BytesRead: d.bytesRead, BytesWrite: d.bytesWrite,
	}
}

// Reset clears counters and stream-detection state.
func (d *SSD) Reset() { *d = SSD{cfg: d.cfg, pageSize: d.pageSize} }
