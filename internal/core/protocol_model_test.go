package core

import (
	"fmt"
	"math/rand"
	"testing"

	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// This file model-checks the §4.1 coherence protocol: an abstract two-node
// permission machine (the paper's (compute, memory) ∈ {∅, R, W}² states)
// is driven in lockstep with the real implementation by the same random
// operation sequence, and the permission state must agree after every
// operation. This is stronger than the SWMR spot checks: it pins the exact
// Figure 8/9 transitions.

type perm int

const (
	permNone perm = iota // ∅
	permR
	permW
)

func (p perm) String() string { return [...]string{"∅", "R", "W"}[p] }

// modelPage is the reference state machine for one page.
type modelPage struct {
	comp perm
	mem  perm
}

// compute-side access (Figure 9 lines 1–10 as seen from the model).
func (m *modelPage) computeAccess(write bool) {
	if write {
		// Compute obtains W; the temporary context's copy is invalidated
		// (write ⇒ present ← false).
		m.comp, m.mem = permW, permNone
		return
	}
	if m.comp == permNone {
		// Fetch read-only; the memory side is downgraded to R if it held W.
		m.comp = permR
		if m.mem == permW {
			m.mem = permR
		}
	}
	// comp R/W read: no transition.
}

// memory-side access (Figure 9 lines 11–25).
func (m *modelPage) memoryAccess(write bool) {
	if write {
		// Memory obtains W; the compute copy is evicted (write ⇒ evict).
		m.mem, m.comp = permW, permNone
		return
	}
	if m.mem == permNone {
		if m.comp != permNone {
			// Compute holds it: both become readers (line 24).
			m.comp, m.mem = permR, permR
		} else {
			// True fault: the temporary context is the sole (writable)
			// holder, as in the Figure 8 clone default.
			m.mem = permW
		}
	} else if m.mem == permR && m.comp == permW {
		// Cannot happen under SWMR; flagged by the invariant check.
	}
}

// swmrOK checks the Single-Writer-Multiple-Reader invariant.
func (m modelPage) swmrOK() bool {
	if m.comp == permW && m.mem != permNone {
		return false
	}
	if m.mem == permW && m.comp != permNone {
		return false
	}
	return true
}

// realPerms extracts the implementation's permission pair for a page.
func realPerms(p *ddc.Process, ps *pushState, pg mem.PageID) (comp, memPerm perm) {
	if w, _, ok := p.Cache.Lookup(pg); ok {
		comp = permR
		if w {
			comp = permW
		}
	}
	present, writable := ps.temp.peek(pg)
	switch {
	case !present:
		memPerm = permNone
	case writable:
		memPerm = permW
	default:
		memPerm = permR
	}
	return comp, memPerm
}

func TestCoherenceProtocolAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			cfg := ddc.BaseDDC(1 << 20) // big cache: no LRU noise
			cfg.PrefetchDepth = 0       // keep residency exactly op-driven
			m := ddc.MustMachine(cfg)
			p := m.NewProcess()
			rt := NewRuntime(p, 1)
			const pages = 24
			base := p.Space.AllocPages(pages*mem.PageSize, "proto")

			// Warm-up: give the compute pool a mixed set of R and W pages.
			warm := sim.NewThread("warm")
			wenv := p.NewEnv(warm)
			model := make([]modelPage, pages)
			for pg := 0; pg < pages; pg++ {
				switch r.Intn(3) {
				case 0: // absent
				case 1:
					wenv.ReadI64(base + mem.Addr(pg)*mem.PageSize)
					model[pg].comp = permR
				case 2:
					wenv.WriteI64(base+mem.Addr(pg)*mem.PageSize, 1)
					model[pg].comp = permW
				}
			}

			caller := sim.NewThread("caller")
			cenv := p.NewEnv(sim.NewThread("compute"))
			_, err := rt.Pushdown(caller, func(env *ddc.Env) {
				// Figure 8's setup just ran: apply it to the model.
				for pg := range model {
					switch model[pg].comp {
					case permW:
						model[pg].mem = permNone
					case permR:
						model[pg].mem = permR
					default:
						model[pg].mem = permW // clone default
					}
				}
				// Drive both machines with the same operation sequence.
				for step := 0; step < 2000; step++ {
					pg := r.Intn(pages)
					addr := base + mem.Addr(pg)*mem.PageSize + mem.Addr(r.Intn(64)*64)
					write := r.Intn(2) == 0
					onMemory := r.Intn(2) == 0
					if onMemory {
						if write {
							env.WriteI64(addr, int64(step))
						} else {
							env.ReadI64(addr)
						}
						model[pg].memoryAccess(write)
					} else {
						if write {
							cenv.WriteI64(addr, int64(step))
						} else {
							cenv.ReadI64(addr)
						}
						model[pg].computeAccess(write)
					}
					if !model[pg].swmrOK() {
						t.Fatalf("step %d: model itself broke SWMR on page %d: %+v", step, pg, model[pg])
					}
					gotC, gotM := realPerms(p, rt.ps, mem.PageOf(addr))
					if gotC != model[pg].comp || gotM != model[pg].mem {
						t.Fatalf("step %d page %d (%s %s on %s): real (%s,%s) != model (%s,%s)",
							step, pg, opName(write), "access", side(onMemory),
							gotC, gotM, model[pg].comp, model[pg].mem)
					}
				}
			}, Options{})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func opName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

func side(onMemory bool) string {
	if onMemory {
		return "memory"
	}
	return "compute"
}

// PSO transitions (§4.2): when one pool requests write permission, the
// other pool's copy is *downgraded to read-only* instead of removed. Write
// serialization per location is kept (one writer), but write propagation is
// relaxed — the stale read-only copy is permitted, so SWMR deliberately
// does not hold.
func (m *modelPage) computeAccessPSO(write bool) {
	if write {
		m.comp = permW
		if m.mem != permNone {
			m.mem = permR
		}
		return
	}
	if m.comp == permNone {
		m.comp = permR
		if m.mem == permW {
			m.mem = permR
		}
	}
}

func (m *modelPage) memoryAccessPSO(write bool) {
	if write {
		m.mem = permW
		if m.comp != permNone {
			m.comp = permR
		}
		return
	}
	if m.mem == permNone {
		if m.comp != permNone {
			m.comp, m.mem = permR, permR
		} else {
			m.mem = permW
		}
	}
}

// psoOK: write serialization still forbids two simultaneous writers.
func (m modelPage) psoOK() bool {
	return !(m.comp == permW && m.mem == permW)
}

func TestPSOProtocolAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed ^ 0x50))
			cfg := ddc.BaseDDC(1 << 20)
			cfg.PrefetchDepth = 0
			m := ddc.MustMachine(cfg)
			p := m.NewProcess()
			rt := NewRuntime(p, 1)
			const pages = 16
			base := p.Space.AllocPages(pages*mem.PageSize, "pso")

			warm := sim.NewThread("warm")
			wenv := p.NewEnv(warm)
			model := make([]modelPage, pages)
			for pg := 0; pg < pages; pg++ {
				switch r.Intn(3) {
				case 1:
					wenv.ReadI64(base + mem.Addr(pg)*mem.PageSize)
					model[pg].comp = permR
				case 2:
					wenv.WriteI64(base+mem.Addr(pg)*mem.PageSize, 1)
					model[pg].comp = permW
				}
			}

			caller := sim.NewThread("caller")
			cenv := p.NewEnv(sim.NewThread("compute"))
			_, err := rt.Pushdown(caller, func(env *ddc.Env) {
				for pg := range model {
					switch model[pg].comp {
					case permW:
						model[pg].mem = permNone // Figure 8 setup is unchanged under PSO
					case permR:
						model[pg].mem = permR
					default:
						model[pg].mem = permW
					}
				}
				for step := 0; step < 1500; step++ {
					pg := r.Intn(pages)
					addr := base + mem.Addr(pg)*mem.PageSize + mem.Addr(r.Intn(64)*64)
					write := r.Intn(2) == 0
					if r.Intn(2) == 0 {
						if write {
							env.WriteI64(addr, int64(step))
						} else {
							env.ReadI64(addr)
						}
						model[pg].memoryAccessPSO(write)
					} else {
						if write {
							cenv.WriteI64(addr, int64(step))
						} else {
							cenv.ReadI64(addr)
						}
						model[pg].computeAccessPSO(write)
					}
					if !model[pg].psoOK() {
						t.Fatalf("step %d: two writers on page %d", step, pg)
					}
					gotC, gotM := realPerms(p, rt.ps, mem.PageOf(addr))
					if gotC != model[pg].comp || gotM != model[pg].mem {
						t.Fatalf("step %d page %d: real (%s,%s) != model (%s,%s)",
							step, pg, gotC, gotM, model[pg].comp, model[pg].mem)
					}
				}
			}, Options{Flags: FlagPSO})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
