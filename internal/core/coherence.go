package core

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// This file implements the on-demand memory synchronisation of §4.1: the
// page-fault handlers of Figure 9, which maintain the invariant that for
// every page either (a) the compute pool holds the only writable copy,
// (b) the temporary context holds the only writable copy, or (c) all copies
// are read-only (the Single-Writer-Multiple-Reader invariant).

// memPager services the temporary user context's accesses — Figure 9's
// MemoryOnPageFault (lines 11–17) plus the compute-side handler it triggers
// (ComputeOnPageRequest, lines 18–25). It also carries the call's
// crash-consistency state: the undo journal of pre-images, the armed
// mid-execution crash point, and the deadline budget.
type memPager struct {
	ps   *pushState
	st   *Stats
	opts Options

	journal undoJournal
	touches int      // page accesses served so far (the crash-point axis)
	crashAt int      // touch ordinal at which an armed mid-crash fires (0 = unarmed)
	dieAt   sim.Time // absolute deadline (0 = none)
}

// pushAbort is the panic value that tears down a pushed function from
// inside the pager — an armed mid-execution context crash or a blown
// deadline. Pushdown's recover distinguishes it from user panics (which
// become RemoteError) and runs the rollback path.
type pushAbort struct {
	err      error // ErrContextCrashed or ErrDeadlineExceeded
	midCrash bool
}

// precheck runs at every page access of the temporary context: it is where
// an armed mid-execution crash fires (deterministically, at the seeded
// touch ordinal — but only once the call has dirtied at least one page, so
// the crash is genuinely mid-mutation) and where the deadline budget is
// enforced during execution.
func (mp *memPager) precheck(e *ddc.Env) {
	mp.touches++
	if mp.crashAt > 0 && mp.touches >= mp.crashAt && mp.journal.pages() > 0 {
		panic(pushAbort{err: ErrContextCrashed, midCrash: true})
	}
	if mp.dieAt > 0 && e.T.Now() > mp.dieAt {
		panic(pushAbort{err: ErrDeadlineExceeded})
	}
}

// gateQuorum aborts the call when pg's replica set has dropped below the
// write quorum mid-execution — partition onset after the admission gate let
// the call through. The panic unwinds to Pushdown's recover, which rolls the
// undo journal back before the failure is reported (rollback-before-report),
// so the compute side sees a Recoverable ErrQuorumLost against pristine pool
// state. Free on legacy (W ≤ 1) configs.
func (mp *memPager) gateQuorum(e *ddc.Env, pg mem.PageID) {
	rt := mp.ps.rt
	if wake, lost := rt.pageQuorumWait(pg, e.T.Now()); lost {
		rt.shardRecoverAt = wake
		panic(pushAbort{err: ErrQuorumLost})
	}
}

// EnsurePage implements the memory-place access path.
func (mp *memPager) EnsurePage(e *ddc.Env, pg mem.PageID, write bool) {
	ps := mp.ps
	p := ps.rt.P
	mp.precheck(e)
	mp.gateQuorum(e, pg)

	if mp.opts.Flags&(FlagNoCoherence|FlagEagerSync|FlagMigrateProcess|FlagEvictRanges) != 0 {
		// Relaxed / strawman modes: no protocol, only pool residency (and
		// dirty tracking so eager mode knows what changed).
		p.EnsureInPool(e.T, pg, write)
		if write {
			mp.journal.capture(p.Space, pg)
			ps.temp.entry(pg).dirty = true
		}
		return
	}

	tt := ps.temp
	present, writable := tt.peek(pg)
	if present && (!write || writable) {
		// Permission hit. Line 14–15 still applies: the page itself may
		// have been spilled to the storage pool.
		p.EnsureInPool(e.T, pg, write)
		ent := tt.entry(pg)
		if write {
			mp.journal.capture(p.Space, pg)
			ent.dirty = true
		}
		ent.lastMemTouch = e.T.Now()
		return
	}

	// Temporary-context page fault (Figure 9 lines 11–17).
	mp.st.MemoryFaults++
	mark := e.T.Now()
	ent := tt.entry(pg)

	heldW, heldDirty, held := p.Cache.Lookup(pg)
	if held {
		// Line 17: send request to the compute pool. Lines 18–25
		// (ComputeOnPageRequest) run there; if the compute copy is dirty,
		// the data rides back on the reply.
		respBytes := ctrlMsgBytes
		if heldDirty {
			respBytes = pageMsgBytes
			p.Cache.ClearDirty(pg)
		}
		sp := p.M.Tracer().Begin(e.T, trace.KindCoherence, uint64(pg), b2i(write))
		p.M.Fabric.RoundTrip(e.T, ctrlMsgBytes, respBytes, netmodel.ClassCoherence)
		p.M.Tracer().End(e.T, sp)
		p.M.Metrics.Counter("coherence.rounds").Inc()
		mp.st.CoherenceMsgs += 2
		ps.rt.agg.CoherenceMsgs += 2
		if write {
			// Line 22: Evict pte — unless the PSO relaxation keeps a
			// read-only copy in the other pool (§4.2).
			if ps.pso {
				p.Cache.SetWritable(pg, false)
			} else {
				p.Cache.Remove(pg)
			}
		} else {
			// Line 24: pte.writable ← False.
			p.Cache.SetWritable(pg, false)
		}
		p.Epoch++
		ent.present = true
		ent.writable = write
		_ = heldW
	} else {
		// True page fault (lines 14–15): to the storage pool if spilled;
		// afterwards the temporary context is the sole holder.
		p.EnsureInPool(e.T, pg, write)
		ent.present = true
		ent.writable = true
	}
	if write {
		mp.journal.capture(p.Space, pg)
		ent.writable = true
		ent.dirty = true
	}
	ent.lastMemTouch = e.T.Now()
	mp.st.OnlineSync += e.T.Now() - mark
}

// pushHooks services compute-pool faults while a pushdown is active —
// Figure 9's ComputeOnPageFault / MemoryOnPageRequest pair (lines 1–10).
// It is installed on the process for the lifetime of the shared pushdown
// state.
type pushHooks struct {
	ps *pushState
}

var _ ddc.PushHooks = (*pushHooks)(nil)

// ComputeFaulted runs when the compute pool demand-fetched page pg during a
// pushdown: the memory controller serves the page and simultaneously
// applies Invalidate(t_mm[pg], write) to the temporary context (lines
// 8–10) — no additional message is needed because the fault reply carries
// the result.
func (h *pushHooks) ComputeFaulted(t *sim.Thread, pg mem.PageID, write bool) {
	ps := h.ps
	ps.rt.agg.ComputeFaults++
	ent := ps.temp.entry(pg)
	if write {
		h.tiebreak(t, ent)
	}
	if write {
		if ps.pso {
			ent.writable = false
		} else {
			ent.present = false
		}
	} else {
		ent.writable = false
	}
}

// ComputeUpgrade runs when the compute pool holds pg read-only and wants to
// write — the (R,R) → (W,∅) transition that needs an explicit coherence
// round trip to invalidate the temporary context's copy.
func (h *pushHooks) ComputeUpgrade(t *sim.Thread, pg mem.PageID) {
	ps := h.ps
	ps.rt.agg.Upgrades++
	ent := ps.temp.entry(pg)
	h.tiebreak(t, ent)
	sp := ps.rt.P.M.Tracer().Begin(t, trace.KindCoherence, uint64(pg), 1)
	ps.rt.P.M.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassCoherence)
	ps.rt.P.M.Tracer().End(t, sp)
	ps.rt.P.M.Metrics.Counter("coherence.rounds").Inc()
	ps.rt.agg.CoherenceMsgs += 2
	if ps.pso {
		ent.writable = false
	} else {
		ent.present = false
	}
}

// tiebreak models §4.1's concurrent-fault rule: when the compute pool's
// write request races with the temporary context's own activity on the
// page, the memory pool wins — the compute pool satisfies the memory
// pool's request, waits t, and reissues its own (one extra control round
// trip).
func (h *pushHooks) tiebreak(t *sim.Thread, ent *tempPTE) {
	rt := h.ps.rt
	if ent.present && ent.writable && ent.lastMemTouch > 0 &&
		t.Now()-ent.lastMemTouch < rt.ContentionWindow {
		rt.agg.Contentions++
		rt.P.M.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassCoherence)
		rt.agg.CoherenceMsgs += 2
		ws := t.Now()
		t.Advance(rt.TiebreakWait)
		rt.P.M.Times.Add(metrics.CompPushProto, t.Now()-ws)
	}
}

// SyncMem implements the manual, preemptive flush of §4.2: dirty pages in
// the given ranges are written back to the memory pool in one batched
// transfer. Applications use it before or during pushdown when they know
// which pages fn will touch, or to repair false sharing under
// FlagNoCoherence (Figure 7).
func (r *Runtime) SyncMem(t *sim.Thread, ranges []Range) int {
	p := r.P
	if !p.M.Cfg.Disaggregated {
		return 0
	}
	var dirty []mem.PageID
	for _, rg := range ranges {
		rg.Pages(func(pg mem.PageID) {
			if _, d, ok := p.Cache.Lookup(pg); ok && d {
				dirty = append(dirty, pg)
			}
		})
	}
	if len(dirty) == 0 {
		return 0
	}
	p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindSync, Arg: int64(len(dirty)), Who: t.Name()})
	p.M.Fabric.Send(t, len(dirty)*pageMsgBytes, netmodel.ClassSync)
	for _, pg := range dirty {
		p.Cache.ClearDirty(pg)
		if r.ps != nil {
			// The memory pool now has the fresh data; the compute copy
			// stays read-only so the pushed function can read it freely.
			p.Cache.SetWritable(pg, false)
			r.ps.temp.entry(pg).writable = false
		}
	}
	p.Epoch++
	return len(dirty)
}

// b2i encodes a flag in a trace event's Arg field.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
