package core

import (
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// tempTable is the temporary user context's page table. Conceptually it is
// a full clone of the caller's page table (Figure 8 line 7); because a
// clone starts identical to the original — present and writable everywhere
// the process has memory — we represent it as "writable by default" plus
// explicit overrides for the pages the protocol has touched. The clone's
// O(table size) construction cost is still charged (see Runtime.setup), so
// the representation changes nothing observable.
type tempTable struct {
	// overrides is page-indexed (nil = still the cloned default state);
	// the address space is a dense bump allocator, so direct indexing keeps
	// the per-access peek off the hash-map path. n counts materialised
	// entries.
	overrides []*tempPTE
	n         int
}

// tempPTE mirrors the paper's pte fields plus the bookkeeping the
// concurrent-fault tiebreak needs.
type tempPTE struct {
	present  bool
	writable bool
	dirty    bool

	// lastMemTouch is the last virtual time the temporary context accessed
	// the page; a compute-pool write request arriving within the
	// contention window of it counts as a concurrent (R,R)→W fault and is
	// tie-broken in favour of the memory pool (§4.1).
	lastMemTouch sim.Time
}

func newTempTable() *tempTable {
	return &tempTable{}
}

// entry returns the override for p, materialising the default
// (present+writable, i.e. the cloned state) if none exists yet.
func (tt *tempTable) entry(p mem.PageID) *tempPTE {
	if p < mem.PageID(len(tt.overrides)) {
		if e := tt.overrides[p]; e != nil {
			return e
		}
	} else {
		size := int(p) + 1
		if d := 2 * len(tt.overrides); d > size {
			size = d
		}
		grown := make([]*tempPTE, size)
		copy(grown, tt.overrides)
		tt.overrides = grown
	}
	e := &tempPTE{present: true, writable: true}
	tt.overrides[p] = e
	tt.n++
	return e
}

// peek returns the current state without materialising an override.
func (tt *tempTable) peek(p mem.PageID) (present, writable bool) {
	if p < mem.PageID(len(tt.overrides)) {
		if e := tt.overrides[p]; e != nil {
			return e.present, e.writable
		}
	}
	return true, true
}

// invalidate implements Figure 8's Invalidate(pte, write): if the compute
// pool holds the page writable, the temporary context loses it entirely;
// if read-only, the temporary context keeps a read-only mapping.
//
//	1 Function Invalidate(pte, write):
//	2   if write then
//	3     pte.present ← False
//	4   else
//	5     pte.writable ← False
func (tt *tempTable) invalidate(p mem.PageID, computeWritable bool) {
	e := tt.entry(p)
	if computeWritable {
		e.present = false // line 3
	} else {
		e.writable = false // line 5
	}
}

// dirtyPages returns the pages the temporary context dirtied, in ascending
// page order, for the dirty-bit merge at completion (§4.1: "the dirty bits
// of the temporary context's page table should be merged back into the full
// page table"). The page-indexed walk yields the same sorted order the map
// representation had to construct explicitly.
func (tt *tempTable) dirtyPages() []mem.PageID {
	var out []mem.PageID
	for p, e := range tt.overrides {
		if e != nil && e.dirty {
			out = append(out, mem.PageID(p))
		}
	}
	return out
}

// len returns the number of materialised overrides (protocol-touched pages).
func (tt *tempTable) len() int { return tt.n }
