package core

import (
	"errors"
	"testing"

	"fmt"

	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// testProc builds a disaggregated process with the given compute cache size
// (in pages).
func testProc(cachePages int) (*ddc.Process, *Runtime) {
	m := ddc.MustMachine(ddc.BaseDDC(int64(cachePages) * mem.PageSize))
	p := m.NewProcess()
	return p, NewRuntime(p, 1)
}

func TestPushdownRunsFunctionOnMemoryData(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	a := p.Space.Alloc(8*1000, "vec")
	// Fill via compute place (so some pages are cached and dirty).
	cenv := p.NewEnv(th)
	for i := 0; i < 1000; i++ {
		cenv.WriteI64(a+mem.Addr(i*8), int64(i))
	}
	var sum int64
	st, err := rt.Pushdown(th, func(env *ddc.Env) {
		for i := 0; i < 1000; i++ {
			sum += env.ReadI64(a + mem.Addr(i*8))
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(999 * 1000 / 2); sum != want {
		t.Fatalf("sum = %d, want %d (pushed code must see pre-push writes)", sum, want)
	}
	if st.Exec <= 0 || st.Total() <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.ResidentPages == 0 || st.RLERuns == 0 {
		t.Fatalf("resident list missing: %+v", st)
	}
	if rt.Stats().Calls != 1 {
		t.Fatalf("Calls = %d", rt.Stats().Calls)
	}
}

func TestPushdownReadsDirtyComputePagesCoherently(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	a := p.Space.Alloc(8, "x")
	cenv := p.NewEnv(th)
	cenv.WriteI64(a, 41)
	cenv.WriteI64(a, 42) // dirty in compute cache, never flushed

	var got int64
	st, err := rt.Pushdown(th, func(env *ddc.Env) {
		got = env.ReadI64(a)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("pushed read = %d, want 42", got)
	}
	// The compute pool held the page writable, so Figure 8 excluded it from
	// the temporary context; reading it required a coherence round trip
	// that carried the dirty data.
	if st.MemoryFaults == 0 || st.CoherenceMsgs == 0 {
		t.Fatalf("expected coherence traffic, got %+v", st)
	}
	if p.M.Fabric.Stats(netmodel.ClassCoherence).Msgs == 0 {
		t.Fatal("no coherence messages on the fabric")
	}
}

func TestComputeSeesPushedWrites(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	a := p.Space.Alloc(8, "x")
	cenv := p.NewEnv(th)
	cenv.WriteI64(a, 1) // resident + writable in compute

	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.WriteI64(a, 2)
	}, Options{}); err != nil {
		t.Fatal(err)
	}
	// The pushed write invalidated the compute copy; the re-read faults and
	// sees the new value.
	faultsBefore := p.Stats().RemoteFaults
	if got := cenv.ReadI64(a); got != 2 {
		t.Fatalf("read-after-push = %d, want 2", got)
	}
	if p.Stats().RemoteFaults <= faultsBefore {
		t.Fatal("compute read after pushed write should have re-faulted")
	}
}

func TestPushdownFasterThanComputeForRandomAccess(t *testing.T) {
	const size = 2 << 20
	randomSum := func(env *ddc.Env, base mem.Addr) int64 {
		var s int64
		x := uint64(7)
		for i := 0; i < 30000; i++ {
			x = x*6364136223846793005 + 1
			s += env.ReadI64(base + mem.Addr(x%(size/8))*8)
		}
		return s
	}

	p, rt := testProc(32) // cache ≈ 6% of working set
	a := p.Space.AllocPages(size, "buf")

	thBase := sim.NewThread("base")
	baseEnv := p.NewEnv(thBase)
	randomSum(baseEnv, a)
	baseTime := thBase.Now()

	thPush := sim.NewThread("push")
	st, err := rt.Pushdown(thPush, func(env *ddc.Env) {
		randomSum(env, a)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(baseTime) / float64(st.Total())
	if speedup < 5 {
		t.Fatalf("pushdown speedup = %.1f×, want ≳5× for memory-bound work", speedup)
	}
}

func TestSWMRInvariantUnderInterleavedAccess(t *testing.T) {
	// A compute thread and a pushed thread hammer an overlapping page set;
	// after every access the SWMR invariant must hold for every page the
	// protocol has touched.
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	const pages = 16
	a := p.Space.AllocPages(pages*mem.PageSize, "shared")

	check := func(where string) {
		if rt.ps == nil {
			return
		}
		for pg := mem.PageOf(a); pg <= mem.PageOf(a+pages*mem.PageSize-1); pg++ {
			tp, tw := rt.ps.temp.peek(pg)
			cw, _, resident := p.Cache.Lookup(pg)
			if tp && tw && resident {
				t.Fatalf("%s: page %d writable in temp context but resident in compute", where, pg)
			}
			if resident && cw && tp {
				t.Fatalf("%s: page %d writable in compute but present in temp context", where, pg)
			}
		}
	}

	s := sim.NewScheduler()
	s.SetQuantum(sim.Microsecond)
	s.Spawn("compute", 0, func(th *sim.Thread) {
		env := p.NewEnv(th)
		x := uint64(3)
		for i := 0; i < 3000; i++ {
			x = x*2862933555777941757 + 3037000493
			addr := a + mem.Addr(x%(pages*mem.PageSize/8))*8
			if x%3 == 0 {
				env.WriteI64(addr, int64(i))
			} else {
				env.ReadI64(addr)
			}
			check("compute")
		}
	})
	s.Spawn("pusher", 0, func(th *sim.Thread) {
		_, err := rt.Pushdown(th, func(env *ddc.Env) {
			x := uint64(5)
			for i := 0; i < 3000; i++ {
				x = x*6364136223846793005 + 1
				addr := a + mem.Addr(x%(pages*mem.PageSize/8))*8
				if x%3 == 0 {
					env.WriteI64(addr, -int64(i))
				} else {
					env.ReadI64(addr)
				}
				check("memory")
			}
		}, Options{})
		if err != nil {
			t.Errorf("pushdown: %v", err)
		}
	})
	s.Run()
	if rt.Stats().CoherenceMsgs == 0 {
		t.Fatal("contended run produced no coherence messages")
	}
}

func TestConcurrentPushdownsSerializeOnOneContext(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.AllocPages(4*mem.PageSize, "buf")

	var queued [2]sim.Time
	s := sim.NewScheduler()
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("caller", 0, func(th *sim.Thread) {
			st, err := rt.Pushdown(th, func(env *ddc.Env) {
				for j := 0; j < 2000; j++ {
					env.ReadI64(a + mem.Addr(j%512)*8)
				}
				env.Compute(2_000_000) // ~1 ms of CPU
			}, Options{})
			if err != nil {
				t.Errorf("pushdown %d: %v", i, err)
			}
			queued[i] = st.Queue
		})
	}
	s.Run()
	if queued[0] == 0 && queued[1] == 0 {
		t.Fatal("one of the two concurrent pushdowns should have queued")
	}
}

func TestQueuedPushdownCancelsAfterTimeout(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)

	var errSecond error
	var wake sim.Time
	s := sim.NewScheduler()
	s.Spawn("long", 0, func(th *sim.Thread) {
		_, err := rt.Pushdown(th, func(env *ddc.Env) {
			env.Compute(21_000_000) // ~10 ms
		}, Options{})
		if err != nil {
			t.Errorf("long pushdown: %v", err)
		}
	})
	s.Spawn("short", 0, func(th *sim.Thread) {
		th.Advance(10 * sim.Microsecond) // let the long one start first
		start := th.Now()
		_, errSecond = rt.Pushdown(th, func(env *ddc.Env) {}, Options{
			Timeout: sim.Millisecond,
		})
		wake = th.Now() - start
	})
	s.Run()
	if !errors.Is(errSecond, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", errSecond)
	}
	if wake > 2*sim.Millisecond {
		t.Fatalf("cancelled caller resumed after %v, want ≈ the 1 ms timeout", wake)
	}
	if rt.Stats().Cancelled != 1 {
		t.Fatalf("Cancelled = %d", rt.Stats().Cancelled)
	}
}

func TestRunningPushdownDeclinesCancel(t *testing.T) {
	// A timeout on a request that is already running is declined; the
	// caller waits for completion (§3.2).
	_, rt := testProc(16)
	th := sim.NewThread("caller")
	_, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.Compute(21_000_000) // ~10 ms, far beyond the timeout
	}, Options{Timeout: sim.Millisecond})
	if err != nil {
		t.Fatalf("running pushdown must complete, got %v", err)
	}
}

func TestExecLimitKillsBuggyFunction(t *testing.T) {
	_, rt := testProc(16)
	th := sim.NewThread("caller")
	_, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.Compute(210_000_000) // ~100 ms
	}, Options{ExecLimit: sim.Millisecond})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	if rt.Stats().Killed != 1 {
		t.Fatalf("Killed = %d", rt.Stats().Killed)
	}
}

func TestRemotePanicPropagates(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	_, err := rt.Pushdown(th, func(env *ddc.Env) {
		panic("segfault in pushed code")
	}, Options{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Value != "segfault in pushed code" {
		t.Fatalf("value = %v", re.Value)
	}
	// The runtime must recover: a subsequent pushdown works.
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {}, Options{}); err != nil {
		t.Fatalf("pushdown after panic: %v", err)
	}
	_ = p
}

func TestMemoryPoolFailureIsKernelPanic(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	rt.SetMemoryPoolDown(true)
	if rt.Heartbeat() {
		t.Fatal("heartbeat should fail")
	}
	_, err := rt.Pushdown(th, func(env *ddc.Env) {}, Options{})
	if !errors.Is(err, ErrMemoryPoolDown) {
		t.Fatalf("err = %v, want ErrMemoryPoolDown", err)
	}
	rt.SetMemoryPoolDown(false)
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {}, Options{}); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	_ = p
}

func TestPushdownOnMonolithicMachineRejected(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	_, err := rt.Pushdown(sim.NewThread("t"), func(env *ddc.Env) {}, Options{})
	if !errors.Is(err, ErrNotDisaggregated) {
		t.Fatalf("err = %v", err)
	}
}

func TestEagerSyncCostsMoreThanOnDemand(t *testing.T) {
	run := func(flags Flags) Stats {
		p, rt := testProc(256)
		th := sim.NewThread("caller")
		a := p.Space.AllocPages(256*mem.PageSize, "ws")
		cenv := p.NewEnv(th)
		for pg := 0; pg < 200; pg++ { // warm + dirty most of the cache
			cenv.WriteI64(a+mem.Addr(pg)*mem.PageSize, int64(pg))
		}
		st, err := rt.Pushdown(th, func(env *ddc.Env) {
			env.ReadI64(a) // touch a little
		}, Options{Flags: flags})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	eager := run(FlagEagerSync)
	onDemand := run(FlagDefault)
	if eager.Overhead() < 5*onDemand.Overhead() {
		t.Fatalf("eager overhead %v should dwarf on-demand %v (Figure 20)",
			eager.Overhead(), onDemand.Overhead())
	}
	if eager.PreSync <= onDemand.PreSync || eager.PostSync <= onDemand.PostSync {
		t.Fatalf("eager pre/post must dominate: %+v vs %+v", eager, onDemand)
	}
}

func TestPSOKeepsReadOnlyCopies(t *testing.T) {
	countRefaults := func(flags Flags) int64 {
		p, rt := testProc(16)
		th := sim.NewThread("caller")
		a := p.Space.Alloc(8, "x")
		cenv := p.NewEnv(th)
		cenv.ReadI64(a) // resident read-only in compute
		if _, err := rt.Pushdown(th, func(env *ddc.Env) {
			env.WriteI64(a, 9) // memory pool wants W while compute holds R
		}, Options{Flags: flags}); err != nil {
			t.Fatal(err)
		}
		before := p.Stats().RemoteFaults
		cenv.ReadI64(a)
		return p.Stats().RemoteFaults - before
	}
	if n := countRefaults(FlagDefault); n == 0 {
		t.Fatal("default write-invalidate must evict the compute copy")
	}
	if n := countRefaults(FlagPSO); n != 0 {
		t.Fatalf("PSO should keep a read-only compute copy, got %d refaults", n)
	}
}

func TestSyncMemFlushesDirtyRanges(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	a := p.Space.AllocPages(4*mem.PageSize, "buf")
	cenv := p.NewEnv(th)
	cenv.WriteI64(a, 1)
	cenv.WriteI64(a+mem.PageSize, 2)
	n := rt.SyncMem(th, []Range{{Base: a, Size: 2 * mem.PageSize}})
	if n != 2 {
		t.Fatalf("SyncMem flushed %d pages, want 2", n)
	}
	if p.M.Fabric.Stats(netmodel.ClassSync).Msgs != 1 {
		t.Fatal("SyncMem must batch into one transfer")
	}
	// Second call: nothing dirty.
	if n := rt.SyncMem(th, []Range{{Base: a, Size: 2 * mem.PageSize}}); n != 0 {
		t.Fatalf("second SyncMem flushed %d", n)
	}
}

func TestNoCoherenceModeSendsNoCoherenceTraffic(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("caller")
	a := p.Space.Alloc(8, "x")
	cenv := p.NewEnv(th)
	cenv.WriteI64(a, 1)
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		for i := 0; i < 100; i++ {
			env.WriteI64(a, int64(i))
		}
	}, Options{Flags: FlagNoCoherence}); err != nil {
		t.Fatal(err)
	}
	if got := p.M.Fabric.Stats(netmodel.ClassCoherence).Msgs; got != 0 {
		t.Fatalf("coherence msgs = %d, want 0 under FlagNoCoherence", got)
	}
}

func TestContentionTiebreakFavorsMemoryPool(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.Alloc(8, "hot")

	s := sim.NewScheduler()
	s.SetQuantum(sim.Microsecond)
	s.Spawn("compute", 0, func(th *sim.Thread) {
		env := p.NewEnv(th)
		for i := 0; i < 500; i++ {
			env.WriteI64(a, int64(i))
			env.Compute(2100) // 1 µs think time
		}
	})
	s.Spawn("pusher", 0, func(th *sim.Thread) {
		if _, err := rt.Pushdown(th, func(env *ddc.Env) {
			for i := 0; i < 500; i++ {
				env.WriteI64(a, -int64(i))
				env.Compute(2100)
			}
		}, Options{}); err != nil {
			t.Errorf("pushdown: %v", err)
		}
	})
	s.Run()
	if rt.Stats().Contentions == 0 {
		t.Fatal("hot-page write ping-pong should trigger the tiebreak")
	}
}

func TestMigrateProcessClearsCache(t *testing.T) {
	p, rt := testProc(64)
	th := sim.NewThread("caller")
	a := p.Space.AllocPages(32*mem.PageSize, "ws")
	cenv := p.NewEnv(th)
	for pg := 0; pg < 32; pg++ {
		cenv.WriteI64(a+mem.Addr(pg)*mem.PageSize, int64(pg))
	}
	if p.Cache.Len() == 0 {
		t.Fatal("setup: cache should be warm")
	}
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.ReadI64(a)
	}, Options{Flags: FlagMigrateProcess}); err != nil {
		t.Fatal(err)
	}
	if p.Cache.Len() != 0 {
		t.Fatalf("cache has %d pages after process migration, want 0", p.Cache.Len())
	}
}

func TestEvictRangesFlushesOnlyGivenRanges(t *testing.T) {
	p, rt := testProc(64)
	th := sim.NewThread("caller")
	a := p.Space.AllocPages(8*mem.PageSize, "mine")
	b := p.Space.AllocPages(8*mem.PageSize, "other")
	cenv := p.NewEnv(th)
	for pg := 0; pg < 8; pg++ {
		cenv.WriteI64(a+mem.Addr(pg)*mem.PageSize, 1)
		cenv.WriteI64(b+mem.Addr(pg)*mem.PageSize, 2)
	}
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.ReadI64(a)
	}, Options{
		Flags:       FlagEvictRanges,
		EvictRanges: []Range{{Base: a, Size: 8 * mem.PageSize}},
	}); err != nil {
		t.Fatal(err)
	}
	if p.Cache.Contains(mem.PageOf(a)) {
		t.Fatal("evicted range still resident")
	}
	if !p.Cache.Contains(mem.PageOf(b)) {
		t.Fatal("unrelated range was evicted")
	}
}

func TestStatsBreakdownComponentsSumToTotal(t *testing.T) {
	p, rt := testProc(32)
	th := sim.NewThread("caller")
	a := p.Space.AllocPages(16*mem.PageSize, "ws")
	cenv := p.NewEnv(th)
	for pg := 0; pg < 16; pg++ {
		cenv.WriteI64(a+mem.Addr(pg)*mem.PageSize, int64(pg))
	}
	start := th.Now()
	st, err := rt.Pushdown(th, func(env *ddc.Env) {
		for pg := 0; pg < 16; pg++ {
			env.ReadI64(a + mem.Addr(pg)*mem.PageSize)
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Total(), th.Now()-start; got != want {
		t.Fatalf("Total() = %v, wall = %v", got, want)
	}
	if st.Overhead() >= st.Total() && st.OnlineSync == 0 {
		t.Fatalf("Overhead() = %v should exclude pure exec", st.Overhead())
	}
	if st.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestPushdownOrLocalFallsBack(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.Alloc(8, "x")

	var ranLocally bool
	s := sim.NewScheduler()
	s.Spawn("long", 0, func(th *sim.Thread) {
		if _, err := rt.Pushdown(th, func(env *ddc.Env) {
			env.Compute(21_000_000) // ~10 ms
		}, Options{}); err != nil {
			t.Errorf("long: %v", err)
		}
	})
	s.Spawn("short", 0, func(th *sim.Thread) {
		th.Advance(10 * sim.Microsecond)
		_, pushed, err := rt.PushdownOrLocal(th, func(env *ddc.Env) {
			env.WriteI64(a, 7)
			ranLocally = true
		}, Options{Timeout: sim.Millisecond})
		if err != nil {
			t.Errorf("short: %v", err)
		}
		if pushed {
			t.Error("expected local fallback, not a pushdown")
		}
	})
	s.Run()
	if !ranLocally {
		t.Fatal("fallback did not execute")
	}
	if got := p.Space.ReadI64(a); got != 7 {
		t.Fatalf("fallback write lost: %d", got)
	}
}

func TestPushdownOrLocalPushesWhenFree(t *testing.T) {
	_, rt := testProc(16)
	th := sim.NewThread("t")
	_, pushed, err := rt.PushdownOrLocal(th, func(env *ddc.Env) {}, Options{Timeout: sim.Millisecond})
	if err != nil || !pushed {
		t.Fatalf("pushed=%v err=%v", pushed, err)
	}
}

// TestDeterministicReplay: the same contended multi-thread run must produce
// bit-identical timings and counters across executions.
func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (sim.Time, RuntimeStats) {
		m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
		p := m.NewProcess()
		rt := NewRuntime(p, 2)
		a := p.Space.AllocPages(64*mem.PageSize, "shared")
		s := sim.NewScheduler()
		s.SetQuantum(sim.Microsecond)
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn("t", 0, func(th *sim.Thread) {
				if i == 0 {
					env := p.NewEnv(th)
					x := uint64(11)
					for j := 0; j < 2000; j++ {
						x = x*6364136223846793005 + 1
						env.WriteI64(a+mem.Addr(x%(64*512))*8, int64(j))
					}
					return
				}
				_, err := rt.Pushdown(th, func(env *ddc.Env) {
					x := uint64(13 * i)
					for j := 0; j < 2000; j++ {
						x = x*2862933555777941757 + 3037000493
						env.ReadI64(a + mem.Addr(x%(64*512))*8)
					}
				}, Options{})
				if err != nil {
					t.Errorf("pushdown: %v", err)
				}
			})
		}
		return s.Run(), rt.Stats()
	}
	t1, s1 := runOnce()
	t2, s2 := runOnce()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("replay diverged: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}

// TestConcurrentPushdownsShareTempTable: two overlapping pushdowns of the
// same process share the coherence state (§3.2: "these memory-side threads
// share the same page table and context").
func TestConcurrentPushdownsShareTempTable(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 2)
	a := p.Space.Alloc(8, "x")
	th0 := sim.NewThread("warm")
	p.NewEnv(th0).WriteI64(a, 1) // dirty in compute

	sawShared := false
	s := sim.NewScheduler()
	for i := 0; i < 2; i++ {
		s.Spawn("pusher", 0, func(th *sim.Thread) {
			_, err := rt.Pushdown(th, func(env *ddc.Env) {
				env.ReadI64(a)
				env.Compute(2_000_000)
				if rt.ps != nil && rt.ps.refs == 2 {
					sawShared = true
				}
			}, Options{})
			if err != nil {
				t.Errorf("pushdown: %v", err)
			}
		})
	}
	s.Run()
	if !sawShared {
		t.Fatal("overlapping pushdowns never shared the state")
	}
	if rt.ps != nil {
		t.Fatal("shared state must be recycled after the last pushdown")
	}
	if p.Hooks() != nil {
		t.Fatal("hooks must be uninstalled after the last pushdown")
	}
}

func TestPushdownEmitsTraceEvents(t *testing.T) {
	p, rt := testProc(16)
	p.M.Trace = trace.New(64)
	th := sim.NewThread("caller")
	a := p.Space.Alloc(8, "x")
	p.NewEnv(th).WriteI64(a, 1)
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.ReadI64(a) // dirty compute page: coherence event
	}, Options{}); err != nil {
		t.Fatal(err)
	}
	counts := p.M.Trace.CountByKind()
	if counts[trace.KindPushdownStart] != 1 || counts[trace.KindPushdownEnd] != 1 {
		t.Fatalf("pushdown events missing: %v", counts)
	}
	if counts[trace.KindCoherence] == 0 {
		t.Fatalf("coherence event missing: %v", counts)
	}
}

// TestComputeUpgradeDuringPushdown exercises the (R,R) → (W,∅) transition:
// the compute pool holds a page read-only, a pushdown is active, and the
// compute thread writes — an explicit coherence round trip must invalidate
// the temporary context's copy.
func TestComputeUpgradeDuringPushdown(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.AllocPages(mem.PageSize, "x")

	s := sim.NewScheduler()
	s.SetQuantum(sim.Microsecond)
	s.Spawn("compute", 0, func(th *sim.Thread) {
		env := p.NewEnv(th)
		env.ReadI64(a) // resident read-only
		th.Advance(50 * sim.Microsecond)
		env.WriteI64(a, 1) // upgrade while the pushdown runs
	})
	s.Spawn("pusher", 0, func(th *sim.Thread) {
		th.Advance(10 * sim.Microsecond)
		if _, err := rt.Pushdown(th, func(env *ddc.Env) {
			for i := 0; i < 200; i++ {
				env.ReadI64(a)
				env.Compute(2100) // ~1 µs per round: stay alive past the write
			}
		}, Options{}); err != nil {
			t.Errorf("pushdown: %v", err)
		}
	})
	s.Run()
	if rt.Stats().Upgrades == 0 {
		t.Fatal("compute write-upgrade during pushdown never hit the coherence path")
	}
	if m.Fabric.Stats(netmodel.ClassCoherence).Msgs == 0 {
		t.Fatal("upgrade should have produced coherence messages")
	}
}

// TestPushedDirtyBitsMergeIntoPool: pages dirtied by the pushed function are
// merged as dirty into the (bounded) memory pool, so a later pool eviction
// writes them to storage.
func TestPushedDirtyBitsMergeIntoPool(t *testing.T) {
	cfg := ddc.BaseDDC(2 * mem.PageSize)
	cfg.MemoryPoolBytes = 4 * mem.PageSize
	m := ddc.MustMachine(cfg)
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.AllocPages(16*mem.PageSize, "buf")
	th := sim.NewThread("t")
	if _, err := rt.Pushdown(th, func(env *ddc.Env) {
		env.WriteI64(a, 99) // dirties page 0 in the pool
	}, Options{}); err != nil {
		t.Fatal(err)
	}
	writesBefore := m.SSD.Stats().Writes
	// Walk enough other pages through the pool to evict page 0.
	env := p.NewEnv(th)
	for pg := 1; pg < 16; pg++ {
		env.ReadI64(a + mem.Addr(pg)*mem.PageSize)
	}
	if m.SSD.Stats().Writes <= writesBefore {
		t.Fatal("evicting a pushed-dirty page must write it to storage")
	}
}

// --- Failure handling and recovery (robustness PR) ---

// sumFunc returns a Func summing n int64s starting at a, writing the result
// into *out. It works in either pool, so fallback paths compute the same
// answer.
func sumFunc(a mem.Addr, n int, out *int64) Func {
	return func(env *ddc.Env) {
		var s int64
		for i := 0; i < n; i++ {
			s += env.ReadI64(a + mem.Addr(i*8))
		}
		*out = s
	}
}

func fillVec(p *ddc.Process, th *sim.Thread, n int) mem.Addr {
	a := p.Space.Alloc(int64(n)*8, "vec")
	env := p.NewEnv(th)
	for i := 0; i < n; i++ {
		env.WriteI64(a+mem.Addr(i*8), int64(i))
	}
	return a
}

func countKind(r *trace.Ring, k trace.Kind) int {
	n := 0
	for _, ev := range r.Events() {
		if ev.Kind == k && ev.Phase != trace.PhaseEnd {
			n++
		}
	}
	return n
}

// A pushdown issued while the memory pool is down (manual, indefinite
// outage) must complete via the RetryThenLocal fallback: pushed=false,
// nil error, a fallback-local trace event — not a bare ErrMemoryPoolDown.
func TestPushdownWithPolicyFallsBackWhenPoolDown(t *testing.T) {
	p, rt := testProc(16)
	ring := trace.New(128)
	p.M.AttachTrace(ring)
	th := sim.NewThread("caller")
	a := fillVec(p, th, 1000)

	rt.SetMemoryPoolDown(true)
	var sum int64
	pol := RetryThenLocal{MaxRetries: 2, Backoff: sim.Microsecond}
	_, pushed, err := rt.PushdownWithPolicy(th, sumFunc(a, 1000, &sum), Options{}, pol)
	if err != nil {
		t.Fatalf("PushdownWithPolicy: %v", err)
	}
	if pushed {
		t.Fatalf("pushed = true, want false (pool is down)")
	}
	if want := int64(1000 * 999 / 2); sum != want {
		t.Fatalf("fallback sum = %d, want %d", sum, want)
	}
	st := rt.Stats()
	if st.LocalFallbacks != 1 {
		t.Fatalf("LocalFallbacks = %d, want 1", st.LocalFallbacks)
	}
	if st.Retries != int64(pol.MaxRetries) {
		t.Fatalf("Retries = %d, want %d", st.Retries, pol.MaxRetries)
	}
	if st.PoolDownObserved == 0 {
		t.Fatalf("PoolDownObserved = 0, want > 0")
	}
	if countKind(ring, trace.KindFallbackLocal) != 1 {
		t.Fatalf("want exactly one fallback-local trace event, ring: %v", ring.Events())
	}
	if countKind(ring, trace.KindPoolCrash) != 1 {
		t.Fatalf("want one pool-crash trace event (first observation edge)")
	}
}

// A context-crashed pushdown is re-run once; if the rerun crashes too the
// policy degrades to local execution rather than burning retries.
func TestContextCrashRerunOnceThenLocal(t *testing.T) {
	p, rt := testProc(16)
	ring := trace.New(128)
	p.M.AttachTrace(ring)
	prof := fault.Profile{Name: "always-crash-ctx", CtxCrashProb: 1}
	p.M.AttachFault(fault.NewPlan(prof, 7))
	th := sim.NewThread("caller")
	a := fillVec(p, th, 500)

	var sum int64
	_, pushed, err := rt.PushdownWithPolicy(th, sumFunc(a, 500, &sum), Options{}, DefaultRetryThenLocal())
	if err != nil {
		t.Fatalf("PushdownWithPolicy: %v", err)
	}
	if pushed {
		t.Fatalf("pushed = true, want false (every context crashes)")
	}
	if want := int64(500 * 499 / 2); sum != want {
		t.Fatalf("fallback sum = %d, want %d", sum, want)
	}
	st := rt.Stats()
	if st.CtxCrashes != 2 {
		t.Fatalf("CtxCrashes = %d, want 2 (original + one rerun)", st.CtxCrashes)
	}
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 (the single rerun)", st.Retries)
	}
	if st.LocalFallbacks != 1 {
		t.Fatalf("LocalFallbacks = %d, want 1", st.LocalFallbacks)
	}
	if got := p.M.Fault.Counters().CtxCrashes; got != 2 {
		t.Fatalf("plan CtxCrashes = %d, want 2", got)
	}
}

// Pushdown surfaces a bare ErrContextCrashed (with fn not run) when called
// without a policy.
func TestPushdownReturnsErrContextCrashed(t *testing.T) {
	p, rt := testProc(16)
	p.M.AttachFault(fault.NewPlan(fault.Profile{Name: "cc", CtxCrashProb: 1}, 1))
	th := sim.NewThread("caller")
	a := fillVec(p, th, 10)

	ran := false
	_, err := rt.Pushdown(th, func(env *ddc.Env) { ran = true; _ = env.ReadI64(a) }, Options{})
	if !errors.Is(err, ErrContextCrashed) {
		t.Fatalf("err = %v, want ErrContextCrashed", err)
	}
	if ran {
		t.Fatalf("fn ran despite context crash (must not commit)")
	}
	if !Recoverable(err) {
		t.Fatalf("ErrContextCrashed must be Recoverable")
	}
}

// A pushdown issued inside a scheduled controller outage retries after the
// restart time and ultimately runs in the memory pool (pushed=true), with
// pool-crash / pool-recover edges in the trace.
func TestPolicyRetriesThroughScheduledOutage(t *testing.T) {
	p, rt := testProc(16)
	ring := trace.New(256)
	p.M.AttachTrace(ring)
	plan := fault.NewPlan(fault.CrashyPool(), 42)
	p.M.AttachFault(plan)
	th := sim.NewThread("caller")
	a := fillVec(p, th, 200)

	// Probe forward for the first crash window and park the caller inside it.
	var inWindow sim.Time
	for ts := sim.Time(0); ts < 10*sim.Second; ts += 100 * sim.Microsecond {
		if _, down := plan.PoolDownAt(ts); down {
			inWindow = ts
			break
		}
	}
	if inWindow == 0 {
		t.Fatalf("no crash window found in 10s of virtual time")
	}
	th.AdvanceTo(inWindow)

	var sum int64
	_, pushed, err := rt.PushdownWithPolicy(th, sumFunc(a, 200, &sum), Options{}, DefaultRetryThenLocal())
	if err != nil {
		t.Fatalf("PushdownWithPolicy: %v", err)
	}
	if !pushed {
		t.Fatalf("pushed = false, want true (policy should wait out the outage)")
	}
	if want := int64(200 * 199 / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Fatalf("Retries = 0, want >= 1")
	}
	if st.PoolDownObserved == 0 {
		t.Fatalf("PoolDownObserved = 0, want >= 1")
	}
	if countKind(ring, trace.KindPoolCrash) == 0 || countKind(ring, trace.KindPoolRecover) == 0 {
		t.Fatalf("want pool-crash and pool-recover trace edges, ring: %v", ring.Events())
	}
	// The heartbeat must agree with the plan at both probe points.
	if rt.HeartbeatAt(inWindow) {
		t.Fatalf("HeartbeatAt(inWindow) = true, want false")
	}
	if !rt.HeartbeatAt(th.Now()) {
		t.Fatalf("HeartbeatAt(now) = false after successful pushdown, want true")
	}
}

// PushdownOrLocal must match cancellation via errors.Is, so wrapped
// cancellation errors still trigger the local fallback.
func TestRecoverableClassification(t *testing.T) {
	for _, err := range []error{ErrCancelled, ErrMemoryPoolDown, ErrContextCrashed} {
		if !Recoverable(err) {
			t.Errorf("Recoverable(%v) = false, want true", err)
		}
		if !Recoverable(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("Recoverable(wrapped %v) = false, want true", err)
		}
	}
	for _, err := range []error{ErrKilled, ErrNotDisaggregated, &RemoteError{Value: "x"}} {
		if Recoverable(err) {
			t.Errorf("Recoverable(%v) = true, want false", err)
		}
	}
}
