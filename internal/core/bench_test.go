package core

import (
	"runtime"
	"testing"

	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// BenchmarkPushdownSetup measures the host cost of one pushdown call end to
// end — request, context setup, a one-page function, response — on a warm
// runtime. The pooled undo-journal buffers keep the per-call allocation
// count flat regardless of how many pages the function dirties.
func BenchmarkPushdownSetup(b *testing.B) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	a := p.Space.AllocPages(8*mem.PageSize, "v")
	th := sim.NewThread("bench")
	body := func(env *ddc.Env) {
		env.WriteI64(a, env.ReadI64(a)+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Pushdown(th, body, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalCapture measures pre-image capture across pushdown calls
// that each dirty many pages — the crash-consistency hot path the buffer
// pool exists for.
func BenchmarkJournalCapture(b *testing.B) {
	m := ddc.MustMachine(ddc.BaseDDC(256 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	const pages = 64
	a := p.Space.AllocPages(pages*mem.PageSize, "v")
	th := sim.NewThread("bench")
	body := func(env *ddc.Env) {
		for pg := 0; pg < pages; pg++ {
			addr := a + mem.Addr(pg)*mem.PageSize
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Pushdown(th, body, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestJournalCapturePooled pins the buffer pool: once warm, capturing a
// page's pre-image must not allocate a fresh page-sized buffer. The
// assertion is on allocated bytes (runtime.MemStats.TotalAlloc is a
// monotonic allocation counter, immune to GC timing): without the pool each
// captured page costs ≥ mem.PageSize; with it, only the journal's map and
// order bookkeeping remain.
func TestJournalCapturePooled(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(256 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)
	const pages = 64
	a := p.Space.AllocPages(pages*mem.PageSize, "v")
	th := sim.NewThread("t")
	body := func(env *ddc.Env) {
		for pg := 0; pg < pages; pg++ {
			addr := a + mem.Addr(pg)*mem.PageSize
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
	call := func() {
		if _, err := rt.Pushdown(th, body, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool (first call allocates the buffers that then recycle).
	call()
	call()

	const rounds = 8
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		call()
	}
	runtime.ReadMemStats(&after)
	perPage := float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds*pages)
	if perPage >= mem.PageSize/2 {
		t.Fatalf("journal capture allocates %.0f B per captured page; pool not recycling (unpooled cost ≥ %d B)",
			perPage, mem.PageSize)
	}
}
