package core

import (
	"errors"
	"testing"

	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// incVec returns a Func that increments every i64 slot of a vector in
// place — a deliberately non-idempotent read-modify-write: if a partial
// execution's writes survived a crash, re-execution would double-increment
// the prefix. The vector spans enough pages that an armed mid-crash (whose
// crash point lies within the first midCrashTouchSpan page accesses) always
// fires before the function finishes.
func incVec(a mem.Addr, n int) Func {
	return func(env *ddc.Env) {
		for i := 0; i < n; i++ {
			addr := a + mem.Addr(i*8)
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
}

// vecPages sizes a vector at one i64 per page so every slot access is a
// fresh page touch.
const vecPages = 520

func fillVecPages(p *ddc.Process, th *sim.Thread) mem.Addr {
	a := p.Space.AllocPages(vecPages*mem.PageSize, "vec")
	env := p.NewEnv(th)
	for i := 0; i < vecPages; i++ {
		env.WriteI64(a+mem.Addr(i)*mem.PageSize, int64(i))
	}
	return a
}

func incVecPages(a mem.Addr) Func {
	return func(env *ddc.Env) {
		for i := 0; i < vecPages; i++ {
			addr := a + mem.Addr(i)*mem.PageSize
			env.WriteI64(addr, env.ReadI64(addr)+1)
		}
	}
}

func checkVecOnce(t *testing.T, p *ddc.Process, th *sim.Thread, a mem.Addr, where string) {
	t.Helper()
	env := p.NewEnv(th)
	for i := 0; i < vecPages; i++ {
		if got := env.ReadI64(a + mem.Addr(i)*mem.PageSize); got != int64(i)+1 {
			t.Fatalf("%s: slot %d = %d, want %d (exactly-once violated)", where, i, got, i+1)
		}
	}
}

// A mid-execution crash on every attempt: the policy re-runs once, the
// rerun crashes too, and the compute-side fallback executes against the
// rolled-back state — so the non-idempotent increments apply exactly once.
func TestMidCrashRollsBackNonIdempotentWrites(t *testing.T) {
	p, rt := testProc(16)
	ring := trace.New(4096)
	p.M.AttachTrace(ring)
	p.M.AttachFault(fault.NewPlan(fault.Profile{Name: "mid", CtxCrashMidProb: 1}, 3))
	th := sim.NewThread("t")
	a := fillVecPages(p, th)

	st, ran, err := rt.PushdownWithPolicy(th, incVecPages(a), Options{}, DefaultRetryThenLocal())
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	if ran {
		t.Fatal("every attempt crashes mid-execution; fn should have run locally")
	}
	checkVecOnce(t, p, th, a, "after fallback")

	rs := rt.Stats()
	if rs.Rollbacks != 2 || rs.CtxCrashes != 2 {
		t.Fatalf("Rollbacks=%d CtxCrashes=%d, want 2 and 2 (initial attempt + one rerun)", rs.Rollbacks, rs.CtxCrashes)
	}
	if rs.RolledBackPages == 0 {
		t.Fatal("RolledBackPages = 0, want > 0")
	}
	if rs.LocalFallbacks != 1 {
		t.Fatalf("LocalFallbacks = %d, want 1", rs.LocalFallbacks)
	}
	if n := countKind(ring, trace.KindPushRollback); n != 2 {
		t.Fatalf("push-rollback events = %d, want 2", n)
	}
	if st.RollbackPages == 0 {
		t.Fatal("last attempt's Stats.RollbackPages = 0, want > 0")
	}
}

// A bare Pushdown that crashes mid-execution reports ErrContextCrashed and
// leaves the pool's memory byte-identical to the pre-call state.
func TestBarePushdownMidCrashLeavesMemoryPristine(t *testing.T) {
	p, rt := testProc(16)
	p.M.AttachFault(fault.NewPlan(fault.Profile{Name: "mid", CtxCrashMidProb: 1}, 5))
	th := sim.NewThread("t")
	a := fillVecPages(p, th)

	first, last := mem.PageOf(a), mem.PageOf(a+vecPages*mem.PageSize-1)
	before := make(map[mem.PageID][]byte)
	for pg := first; pg <= last; pg++ {
		before[pg] = p.Space.SnapshotPage(pg)
	}

	st, err := rt.Pushdown(th, incVecPages(a), Options{})
	if !errors.Is(err, ErrContextCrashed) {
		t.Fatalf("err = %v, want ErrContextCrashed", err)
	}
	if st.RollbackPages == 0 {
		t.Fatal("Stats.RollbackPages = 0, want > 0 (the crash fired after dirtying pages)")
	}
	for pg := first; pg <= last; pg++ {
		got := p.Space.SnapshotPage(pg)
		for i := range got {
			if got[i] != before[pg][i] {
				t.Fatalf("page %d byte %d = %#x, want %#x (rollback incomplete)", pg, i, got[i], before[pg][i])
			}
		}
	}
	// The rolled-back pages' dirty bits were cleared: a follow-up pushdown
	// must not merge never-committed state.
	if rt.ps != nil {
		t.Fatal("push state leaked after the aborted call")
	}
}

// Mid-execution crashes are deterministic: same seed, same schedule, same
// virtual-time total and counters.
func TestMidCrashSameSeedBitIdentical(t *testing.T) {
	run := func() (sim.Time, RuntimeStats) {
		p, rt := testProc(16)
		p.M.AttachFault(fault.NewPlan(fault.MidCrash(), 11))
		th := sim.NewThread("t")
		a := fillVecPages(p, th)
		for i := 0; i < 6; i++ {
			if _, _, err := rt.PushdownWithPolicy(th, incVecPages(a), Options{}, DefaultRetryThenLocal()); err != nil {
				t.Fatalf("policy: %v", err)
			}
		}
		return th.Now(), rt.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same-seed runs differ:\n  t=%v vs %v\n  s=%+v\n  vs %+v", t1, t2, s1, s2)
	}
}

// Admission control: with one context busy and the queue at capacity, a
// third request is shed with ErrQueueFull instead of waiting.
func TestQueueFullShedsDeterministically(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	ring := trace.New(1024)
	m.AttachTrace(ring)
	rt := NewRuntime(p, 1)
	rt.QueueCap = 1

	errs := make([]error, 3)
	s := sim.NewScheduler()
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("pusher", sim.Time(i)*10*sim.Microsecond, func(th *sim.Thread) {
			_, errs[i] = rt.Pushdown(th, func(env *ddc.Env) {
				env.Compute(2_000_000) // ~1 ms: keep the context busy
			}, Options{})
		})
	}
	s.Run()

	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("first two pushdowns: %v, %v (the queue holds one waiter)", errs[0], errs[1])
	}
	if !errors.Is(errs[2], ErrQueueFull) {
		t.Fatalf("third pushdown err = %v, want ErrQueueFull", errs[2])
	}
	if !Recoverable(errs[2]) {
		t.Fatal("ErrQueueFull must be Recoverable")
	}
	if rt.Stats().Shed != 1 {
		t.Fatalf("Shed = %d, want 1", rt.Stats().Shed)
	}
	if n := countKind(ring, trace.KindShed); n != 1 {
		t.Fatalf("shed events = %d, want 1", n)
	}
}

// Deadline budgets: a queued request whose budget expires before a context
// frees up is aborted at the budget instant with ErrDeadlineExceeded.
func TestDeadlineExpiresInQueue(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	p := m.NewProcess()
	rt := NewRuntime(p, 1)

	var errSecond error
	var waited sim.Time
	s := sim.NewScheduler()
	s.Spawn("long", 0, func(th *sim.Thread) {
		if _, err := rt.Pushdown(th, func(env *ddc.Env) {
			env.Compute(21_000_000) // ~10 ms
		}, Options{}); err != nil {
			t.Errorf("long pushdown: %v", err)
		}
	})
	s.Spawn("budgeted", 0, func(th *sim.Thread) {
		th.Advance(10 * sim.Microsecond)
		start := th.Now()
		_, errSecond = rt.Pushdown(th, func(env *ddc.Env) {}, Options{Deadline: sim.Millisecond})
		waited = th.Now() - start
	})
	s.Run()
	if !errors.Is(errSecond, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", errSecond)
	}
	if !Recoverable(errSecond) {
		t.Fatal("ErrDeadlineExceeded must be Recoverable")
	}
	if waited > 2*sim.Millisecond {
		t.Fatalf("budgeted caller resumed after %v, want ≈ the 1 ms budget", waited)
	}
	if rt.Stats().DeadlineAborts != 1 {
		t.Fatalf("DeadlineAborts = %d, want 1", rt.Stats().DeadlineAborts)
	}
	if rt.Stats().Cancelled != 0 {
		t.Fatalf("Cancelled = %d, want 0 (budget aborts are not try_cancel timeouts)", rt.Stats().Cancelled)
	}
}

// A call that blows its budget mid-execution aborts, rolls its partial
// writes back, and leaves the data untouched.
func TestDeadlineExpiresMidExecutionRollsBack(t *testing.T) {
	p, rt := testProc(16)
	th := sim.NewThread("t")
	a := fillVecPages(p, th)

	st, err := rt.Pushdown(th, incVecPages(a), Options{Deadline: 100 * sim.Microsecond})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if st.RollbackPages == 0 {
		t.Fatal("Stats.RollbackPages = 0, want > 0 (writes happened before the budget expired)")
	}
	rs := rt.Stats()
	if rs.Rollbacks != 1 || rs.DeadlineAborts != 1 {
		t.Fatalf("Rollbacks=%d DeadlineAborts=%d, want 1 and 1", rs.Rollbacks, rs.DeadlineAborts)
	}
	env := p.NewEnv(th)
	for i := 0; i < vecPages; i++ {
		if got := env.ReadI64(a + mem.Addr(i)*mem.PageSize); got != int64(i) {
			t.Fatalf("slot %d = %d, want %d (partial writes survived the abort)", i, got, i)
		}
	}
}

// The circuit breaker walks its full cycle: consecutive failures open it,
// open calls short-circuit to local execution, the cooldown admits one
// half-open probe, and a successful probe closes it.
func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	p, rt := testProc(16)
	ring := trace.New(1024)
	p.M.AttachTrace(ring)
	rt.Breaker = BreakerConfig{Threshold: 2, Cooldown: 300 * sim.Microsecond}
	th := sim.NewThread("t")
	a := fillVec(p, th, 64)
	var out int64
	pol := RetryThenLocal{MaxRetries: 0}

	rt.SetMemoryPoolDown(true)
	for i := 0; i < 2; i++ {
		if _, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, 64, &out), Options{}, pol); err != nil || ran {
			t.Fatalf("call %d: ran=%v err=%v, want local fallback", i, ran, err)
		}
	}
	rs := rt.Stats()
	if rs.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 after two consecutive failures", rs.BreakerOpens)
	}

	// Open: the next call must not even attempt a pushdown.
	calls := rt.Stats().Calls
	if _, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, 64, &out), Options{}, pol); err != nil || ran {
		t.Fatalf("short-circuit call: ran=%v err=%v", ran, err)
	}
	if rt.Stats().Calls != calls {
		t.Fatal("an open breaker still attempted a pushdown")
	}
	if rt.Stats().BreakerShortCircuits != 1 {
		t.Fatalf("BreakerShortCircuits = %d, want 1", rt.Stats().BreakerShortCircuits)
	}

	// Cooldown elapses and the pool recovers: the half-open probe succeeds
	// and closes the breaker.
	th.Advance(400 * sim.Microsecond)
	rt.SetMemoryPoolDown(false)
	if _, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, 64, &out), Options{}, pol); err != nil || !ran {
		t.Fatalf("probe call: ran=%v err=%v, want a successful pushdown", ran, err)
	}
	rs = rt.Stats()
	if rs.BreakerHalfOpens != 1 || rs.BreakerCloses != 1 {
		t.Fatalf("BreakerHalfOpens=%d BreakerCloses=%d, want 1 and 1", rs.BreakerHalfOpens, rs.BreakerCloses)
	}
	for _, k := range []trace.Kind{trace.KindBreakerOpen, trace.KindBreakerHalfOpen, trace.KindBreakerClose} {
		if n := countKind(ring, k); n != 1 {
			t.Fatalf("%v events = %d, want 1", k, n)
		}
	}
	if out != 64*63/2 {
		t.Fatalf("sum = %d, want %d", out, 64*63/2)
	}
}

// A failed half-open probe re-opens the breaker immediately.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	p, rt := testProc(16)
	rt.Breaker = BreakerConfig{Threshold: 1, Cooldown: 100 * sim.Microsecond}
	th := sim.NewThread("t")
	a := fillVec(p, th, 8)
	var out int64
	pol := RetryThenLocal{MaxRetries: 0}

	rt.SetMemoryPoolDown(true)
	rt.PushdownWithPolicy(th, sumFunc(a, 8, &out), Options{}, pol) // opens
	th.Advance(200 * sim.Microsecond)
	rt.PushdownWithPolicy(th, sumFunc(a, 8, &out), Options{}, pol) // probe fails → reopen
	rs := rt.Stats()
	if rs.BreakerOpens != 2 || rs.BreakerHalfOpens != 1 || rs.BreakerCloses != 0 {
		t.Fatalf("opens=%d half=%d closes=%d, want 2/1/0", rs.BreakerOpens, rs.BreakerHalfOpens, rs.BreakerCloses)
	}
}
