package core

import (
	"errors"
	"sort"

	"teleport/internal/ddc"
	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/metrics"
	"teleport/internal/netmodel"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Wire sizes for the coherence protocol (the pushdown request/response
// sizes come from their marshalled forms in internal/netmodel).
const (
	ctrlMsgBytes = 48 // coherence control message
	pageMsgBytes = mem.PageSize + 32

	// midCrashTouchSpan is the page-access-ordinal range the seeded
	// mid-crash fraction maps onto: an armed context dies at its
	// (1 + frac·span)-th page access, once it has dirtied at least one
	// page. Page accesses — not wall progress — are the crash axis because
	// they are the only points where the memory kernel runs on the call's
	// behalf.
	midCrashTouchSpan = 256
)

// Func is a pushed-down function. It runs in the memory pool inside a
// temporary user context that shares the caller's address space: any address
// the caller could dereference, fn can too (§3.1).
type Func func(env *ddc.Env)

// Runtime is the TELEPORT instance pair of one process: the compute-kernel
// side (syscall entry, resident-list construction, heartbeats) and the
// memory-kernel side (RPC server, workqueue, temporary user contexts,
// coherence).
type Runtime struct {
	// P is the process whose address space pushdowns execute in.
	P *ddc.Process

	// Contexts is the number of parallel user contexts the memory pool
	// runs (§3.2 "Handling concurrent pushdown requests"; swept in
	// Figure 17). With one context, concurrent requests serialise FIFO.
	Contexts int

	// TiebreakWait is the paper's t: how long the compute pool waits after
	// satisfying the memory pool's concurrent write request before
	// reissuing its own (§4.1 "Concurrent page faults").
	TiebreakWait sim.Time

	// ContentionWindow bounds how recently the temporary context must have
	// touched a page for a compute-pool write fault on it to count as a
	// concurrent fault.
	ContentionWindow sim.Time

	// CtxSwitchPenalty scales the execution dilation applied when more
	// user contexts run than the memory pool has physical cores.
	CtxSwitchPenalty float64

	// QueueCap bounds the memory pool's workqueue: when every context is
	// busy and QueueCap requests are already waiting, admission control
	// sheds the call with ErrQueueFull instead of queueing it (deterministic
	// load-shedding; overload turns into fast failure, not unbounded wait).
	// Zero keeps the unbounded FIFO.
	QueueCap int

	// Breaker configures the runtime's health-tracking circuit breaker
	// (used by PushdownWithPolicy; bare Pushdown calls bypass it).
	Breaker BreakerConfig

	running int
	queue   []*waiter
	ps      *pushState
	down    bool // manual SetMemoryPoolDown override (indefinite outage)
	downObs bool // last heartbeat observation, for crash/recover trace edges
	agg     RuntimeStats

	// shardRecoverAt is the earliest shard restart that unblocks the last
	// ErrShardDown-shed call, so the recovery policy waits for it instead
	// of blind backoff.
	shardRecoverAt sim.Time

	brState    breakerState
	brStreak   int      // consecutive recoverable failures while closed
	brOpenedAt sim.Time // when the breaker last opened

	// journalBufs recycles undo-journal pre-image buffers across pushdown
	// calls (host-side allocation control only; no simulated effect).
	journalBufs pagePool
}

type waiter struct {
	t         *sim.Thread
	deadline  sim.Time // 0 = no timeout
	budget    bool     // deadline comes from Options.Deadline, not Timeout
	cancelled bool
}

// pushState is the coherence state shared by all pushdowns of one process
// that are in flight simultaneously (they share the borrowed page table,
// §3.2).
type pushState struct {
	rt   *Runtime
	temp *tempTable
	refs int
	pso  bool
}

// RuntimeStats aggregates protocol activity across calls.
type RuntimeStats struct {
	Calls         int64
	Cancelled     int64
	Killed        int64
	ComputeFaults int64 // compute-pool faults handled during pushdowns
	Upgrades      int64 // compute write-upgrades that needed coherence
	CoherenceMsgs int64
	Contentions   int64

	// Failure/recovery counters (§3.2 failure handling).
	PoolDownObserved   int64 // heartbeat observations that found the pool down
	ShardDownObserved  int64 // pushdowns shed because a resident page's replica set was unreachable
	QuorumLostObserved int64 // pushdowns shed because a resident page was below its write quorum
	QuorumAborts       int64 // executing pushdowns aborted (and rolled back) by partition onset
	CtxCrashes         int64 // temporary-context crashes injected (pre-commit + mid-execution)
	Retries            int64 // pushdown re-attempts by the recovery policy
	LocalFallbacks     int64 // pushdowns degraded to compute-side execution

	// Crash-consistency and overload counters.
	Shed                 int64 // requests rejected by admission control (queue full)
	DeadlineAborts       int64 // calls aborted for blowing their Options.Deadline budget
	Rollbacks            int64 // undo-journal rollbacks performed (mid-crash + deadline aborts)
	RolledBackPages      int64 // pages restored across all rollbacks
	BreakerOpens         int64 // circuit-breaker closed/half-open → open transitions
	BreakerHalfOpens     int64 // open → half-open transitions (cooldown elapsed)
	BreakerCloses        int64 // half-open → closed transitions (probe succeeded)
	BreakerShortCircuits int64 // calls sent straight to local execution while open

	// Per-phase virtual-time sums across calls (each call's Stats,
	// accumulated), so a run-level report can break pushdown time down
	// without retaining every per-call breakdown.
	PreSyncTime    sim.Time
	RequestTime    sim.Time
	QueueTime      sim.Time
	CtxSetupTime   sim.Time
	ExecTime       sim.Time
	OnlineSyncTime sim.Time
	ResponseTime   sim.Time
	PostSyncTime   sim.Time
}

// addPhases folds one call's breakdown into the aggregate sums.
func (r *Runtime) addPhases(st *Stats) {
	r.agg.PreSyncTime += st.PreSync
	r.agg.RequestTime += st.Request
	r.agg.QueueTime += st.Queue
	r.agg.CtxSetupTime += st.CtxSetup
	r.agg.ExecTime += st.Exec
	r.agg.OnlineSyncTime += st.OnlineSync
	r.agg.ResponseTime += st.Response
	r.agg.PostSyncTime += st.PostSync
}

// NewRuntime returns a TELEPORT runtime for p with the given number of
// memory-pool user contexts.
func NewRuntime(p *ddc.Process, contexts int) *Runtime {
	if contexts < 1 {
		contexts = 1
	}
	return &Runtime{
		P:                p,
		Contexts:         contexts,
		TiebreakWait:     15 * sim.Microsecond,
		ContentionWindow: 10 * sim.Microsecond,
		CtxSwitchPenalty: 0.05,
		Breaker:          DefaultBreaker(),
	}
}

// Stats returns the aggregate runtime statistics.
func (r *Runtime) Stats() RuntimeStats { return r.agg }

// SetMemoryPoolDown simulates an indefinite memory-pool or network failure,
// which the compute-side heartbeat thread detects (§3.2). Transient,
// scheduled outages come from the machine's fault plan instead
// (ddc.Machine.AttachFault); both feed the same heartbeat observation.
func (r *Runtime) SetMemoryPoolDown(down bool) { r.down = down }

// Heartbeat reports whether the memory pool is reachable ignoring the fault
// plan's crash schedule (which needs a virtual time — see HeartbeatAt).
func (r *Runtime) Heartbeat() bool { return !r.down }

// HeartbeatAt reports whether the memory pool is reachable at the given
// virtual time, consulting both the manual down flag and the machine's
// fault plan.
func (r *Runtime) HeartbeatAt(ts sim.Time) bool {
	_, down := r.poolDownAt(ts)
	return !down
}

// poolDownAt resolves the pool's status at ts; for a scheduled outage it
// also returns the controller's restart time (0 for the indefinite manual
// outage).
func (r *Runtime) poolDownAt(ts sim.Time) (recoverAt sim.Time, down bool) {
	if r.down {
		return 0, true
	}
	return r.P.M.Fault.PoolDownAt(ts)
}

// shardGate checks every resident page's shard reachability on a sharded
// pool. A page whose primary shard and every backup are all unusable —
// crashed, or severed from the compute node by a link partition — sheds the
// call with ErrShardDown (Recoverable); on write-quorum configs (W > 1) a
// page with fewer than W usable replicas sheds it with ErrQuorumLost, since
// the call's writes could not commit. Either way the gate records the
// earliest heal that unblocks the working set, so the retry policy can wait
// for it instead of blind backoff. Free on single-shard pools.
func (r *Runtime) shardGate(t *sim.Thread, entries []netmodel.PageEntry) error {
	m := r.P.M
	k := m.Cfg.Shards()
	if k <= 1 || len(entries) == 0 {
		return nil
	}
	now := t.Now()
	// Resolve each shard's compute-side usability once; the entries stripe
	// across all of them. usableAt folds the crash and link-partition
	// schedules: a shard that is up but partitioned is as unusable as a
	// crashed one.
	usableAt := make([]sim.Time, k)
	for s := 0; s < k; s++ {
		usableAt[s] = m.ShardUsableAt(s, now)
	}
	reps := m.Cfg.EffReplicas()
	w := m.Cfg.EffWriteQuorum()
	heals := make([]sim.Time, 0, reps)
	var downWait, quorumWait sim.Time
	for _, e := range entries {
		primary := ddc.ShardOf(mem.PageID(e.ID), k)
		usable := 0
		heals = heals[:0]
		for i := 0; i < reps; i++ {
			if at := usableAt[(primary+i)%k]; at == now {
				usable++
			} else {
				heals = append(heals, at)
			}
		}
		if usable >= w {
			continue
		}
		sort.Slice(heals, func(i, j int) bool { return heals[i] < heals[j] })
		if usable == 0 {
			// The whole replica set is unreachable: the earliest
			// member heal unblocks the page.
			if downWait == 0 || heals[0] < downWait {
				downWait = heals[0]
			}
			continue
		}
		// Below the write quorum: quorum is restored once W−usable more
		// members heal.
		if wake := heals[w-usable-1]; quorumWait == 0 || wake < quorumWait {
			quorumWait = wake
		}
	}
	if downWait > 0 {
		r.agg.ShardDownObserved++
		r.shardRecoverAt = downWait
		m.Metrics.Counter("push.shard-down").Inc()
		m.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindShardDown, Who: t.Name()})
		return ErrShardDown
	}
	if quorumWait > 0 {
		r.agg.QuorumLostObserved++
		r.shardRecoverAt = quorumWait
		m.Metrics.Counter("push.quorum-lost").Inc()
		m.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindShardDown, Arg: 1, Who: t.Name()})
		return ErrQuorumLost
	}
	return nil
}

// pageQuorumWait reports whether pg's replica set is below the write quorum
// at now — fewer than W members up and unpartitioned from the compute node —
// and, when it is, the instant enough scheduled heals restore quorum. Free
// on legacy (single-shard or W ≤ 1) configs.
func (r *Runtime) pageQuorumWait(pg mem.PageID, now sim.Time) (sim.Time, bool) {
	m := r.P.M
	k := m.Cfg.Shards()
	w := m.Cfg.EffWriteQuorum()
	if k <= 1 || w <= 1 {
		return 0, false
	}
	reps := m.Cfg.EffReplicas()
	primary := ddc.ShardOf(pg, k)
	usable := 0
	heals := make([]sim.Time, 0, reps)
	for i := 0; i < reps; i++ {
		if at := m.ShardUsableAt((primary+i)%k, now); at == now {
			usable++
			if usable >= w {
				return 0, false
			}
		} else {
			heals = append(heals, at)
		}
	}
	sort.Slice(heals, func(i, j int) bool { return heals[i] < heals[j] })
	return heals[w-usable-1], true
}

// observeHeartbeat is one compute-side heartbeat observation at t's current
// time. Transitions are recorded as pool-crash / pool-recover trace events
// so chaos runs are debuggable from the ring.
func (r *Runtime) observeHeartbeat(t *sim.Thread) bool {
	_, down := r.poolDownAt(t.Now())
	if down != r.downObs {
		kind := trace.KindPoolRecover
		if down {
			kind = trace.KindPoolCrash
		}
		r.P.M.Trace.Add(trace.Event{At: t.Now(), Kind: kind, Who: t.Name()})
		r.downObs = down
	}
	if down {
		r.agg.PoolDownObserved++
	}
	return down
}

// PushdownOrLocal attempts a pushdown and, if the request is cancelled
// while still queued (try_cancel succeeded after Options.Timeout), runs fn
// in the compute pool instead — the fallback §3.2 describes ("the
// application is free to execute fn directly in the compute pool"). It
// reports whether the function ultimately ran in the memory pool. For
// recovery from pool crashes and injected faults as well, use
// PushdownWithPolicy.
func (r *Runtime) PushdownOrLocal(t *sim.Thread, fn Func, opts Options) (Stats, bool, error) {
	st, err := r.Pushdown(t, fn, opts)
	if errors.Is(err, ErrCancelled) {
		r.runLocalFallback(t, fn)
		return st, false, nil
	}
	return st, true, err
}

// RetryThenLocal is the pushdown recovery policy: re-attempt a recoverably
// failed pushdown up to MaxRetries times with exponential backoff, then
// degrade gracefully to compute-side execution. A context-crashed pushdown
// is re-run once immediately (the crash does not consume a retry); a pool
// outage with a known restart time waits for the restart instead of blind
// backoff.
type RetryThenLocal struct {
	// MaxRetries bounds re-attempts after ErrCancelled / ErrMemoryPoolDown.
	MaxRetries int
	// Backoff is the first retry delay; it doubles per retry, capped at
	// 64×. Zero retries immediately.
	Backoff sim.Time
}

// DefaultRetryThenLocal is the policy the instrumented executors use.
func DefaultRetryThenLocal() RetryThenLocal {
	return RetryThenLocal{MaxRetries: 3, Backoff: 50 * sim.Microsecond}
}

// PushdownWithPolicy runs fn under the RetryThenLocal recovery policy and
// the runtime's circuit breaker. It returns the last pushdown attempt's
// breakdown, whether fn ultimately ran in the memory pool, and the error for
// non-recoverable failures (ErrKilled, RemoteError, ErrNotDisaggregated —
// recoverable ones are absorbed by the fallback). Every recoverable error is
// raised either before the pushed function commits or after its partial
// writes were rolled back from the undo journal, so fn's effects are applied
// exactly once no matter how many attempts were needed.
//
// While the breaker is open (Runtime.Breaker), calls short-circuit straight
// to compute-side execution without attempting a pushdown; after the
// cooldown one probe attempt is allowed through and its outcome closes or
// re-opens the breaker.
func (r *Runtime) PushdownWithPolicy(t *sim.Thread, fn Func, opts Options, pol RetryThenLocal) (Stats, bool, error) {
	// End-to-end latency of the whole policy call — every attempt, every
	// backoff wait, and any compute-side fallback — the operation class
	// whose tail the SLO analysis (internal/obs percentiles) reads.
	e2eStart := t.Now()
	defer func() {
		r.P.M.Metrics.Histogram("push.e2e.ns").Observe(t.Now() - e2eStart)
	}()
	backoff := pol.Backoff
	ctxRerun := false
	retries := 0
	for {
		if !r.breakerAllow(t) {
			r.agg.BreakerShortCircuits++
			r.P.M.Metrics.Counter("push.breaker.short-circuits").Inc()
			r.runLocalFallback(t, fn)
			return Stats{}, false, nil
		}
		st, err := r.Pushdown(t, fn, opts)
		switch {
		case err == nil:
			r.breakerSuccess(t)
			return st, true, nil

		case errors.Is(err, ErrContextCrashed):
			// §3.2: the controller reaps the dead context; the compute
			// side re-issues the request once, then gives up on the pool.
			r.breakerFailure(t)
			if ctxRerun {
				r.runLocalFallback(t, fn)
				return st, false, nil
			}
			ctxRerun = true
			r.agg.Retries++
			r.P.M.Metrics.Counter("push.retries").Inc()

		case Recoverable(err) && retries < pol.MaxRetries:
			r.breakerFailure(t)
			retries++
			r.agg.Retries++
			r.P.M.Metrics.Counter("push.retries").Inc()
			ws := t.Now()
			wsp := r.P.M.Tracer().Begin(t, trace.KindPushRetryWait, 0, int64(retries))
			if recoverAt, down := r.poolDownAt(t.Now()); down && recoverAt > 0 {
				// Scheduled outage: wait for the controller restart.
				t.AdvanceTo(recoverAt)
			} else if (errors.Is(err, ErrShardDown) || errors.Is(err, ErrQuorumLost)) && r.shardRecoverAt > t.Now() {
				// Scheduled shard outage or link partition: wait for the
				// earliest heal that unblocks the call's working set.
				t.AdvanceTo(r.shardRecoverAt)
			} else if backoff > 0 {
				t.Advance(backoff)
				if backoff < 64*pol.Backoff {
					backoff *= 2
				}
			}
			r.P.M.Tracer().End(t, wsp)
			r.P.M.Times.Add(metrics.CompPushRetry, t.Now()-ws)

		case Recoverable(err):
			// Out of retries: degrade to compute-side execution.
			r.breakerFailure(t)
			r.runLocalFallback(t, fn)
			return st, false, nil

		default:
			return st, true, err
		}
	}
}

// runLocalFallback executes fn in the compute pool and records the
// degradation.
func (r *Runtime) runLocalFallback(t *sim.Thread, fn Func) {
	r.agg.LocalFallbacks++
	r.P.M.Metrics.Counter("push.fallbacks").Inc()
	sp := r.P.M.Tracer().Begin(t, trace.KindFallbackLocal, 0, 0)
	fn(r.P.NewEnv(t))
	r.P.M.Tracer().End(t, sp)
}

// Pushdown ships fn to the memory pool and blocks the calling thread until
// it completes (§3.2, Figure 5). Other simulated threads of the process
// keep running in the compute pool; the coherence protocol keeps both sides
// consistent. It returns the per-call breakdown and an error for
// cancellation, kill, remote panic, or pool failure.
//
// Failure handling: the compute-side heartbeat observes the pool at call
// entry and again at every point where the call has spent virtual time
// before execution commits (request sent, context acquired, context set
// up). A crash observed at any of these points aborts the call with
// ErrMemoryPoolDown and the partial Stats breakdown — fn has not run, so
// the caller (or PushdownWithPolicy) may retry or run it locally. A crash
// after fn commits is indistinguishable from success here: the results
// already live in the pool's memory, which is also the process's only
// memory — the paper's kernel panics in that case.
func (r *Runtime) Pushdown(t *sim.Thread, fn Func, opts Options) (Stats, error) {
	var st Stats
	if r.observeHeartbeat(t) {
		return st, ErrMemoryPoolDown
	}
	if !r.P.M.Cfg.Disaggregated {
		return st, ErrNotDisaggregated
	}
	r.agg.Calls++
	callID := r.agg.Calls
	p := r.P
	defer r.addPhases(&st)
	tr := p.M.Tracer()
	p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindPushdownStart, Arg: callID, Who: t.Name()})
	callStart := t.Now()
	// The deadline budget is per attempt, measured from this entry; it is
	// enforced at every phase below and inside execution by the pager.
	var deadlineAt sim.Time
	if opts.Deadline > 0 {
		deadlineAt = callStart + opts.Deadline
	}
	sp := tr.Begin(t, trace.KindPushdown, 0, callID)
	defer func() {
		tr.End(t, sp)
		p.M.Metrics.Counter("push.calls").Inc()
		p.M.Metrics.Histogram("push.total.ns").Observe(t.Now() - callStart)
	}()

	// ❶–❷ Pre-pushdown synchronisation and request construction.
	mark := t.Now()
	ss := tr.Begin(t, trace.KindPushSync, 0, 0)
	entries, eagerPages := r.preSync(t, opts)
	tr.End(t, ss)
	st.PreSync = t.Now() - mark
	st.ResidentPages = len(entries)

	// On a sharded pool the call only proceeds when every resident page it
	// ships can be served — its primary shard up, or a replica live.
	if err := r.shardGate(t, entries); err != nil {
		return st, err
	}

	mark = t.Now()
	runs, err := netmodel.EncodeRuns(entries)
	if err != nil {
		return st, err
	}
	st.RLERuns = len(runs)
	// The request is a real wire message: fn/arg pointers, flags, any
	// inline argument bytes, and the compressed page list (RLE or dense
	// bitmap, whichever is smaller), which §6's compression keeps within
	// a single RDMA buffer.
	req := netmodel.PushdownRequest{
		Fn:       0x400000, // a code address in the shared space
		Arg:      0x7FFF0000,
		Flags:    uint32(opts.Flags),
		Resident: runs,
	}
	if opts.ArgBytes > 0 {
		req.ArgInline = make([]byte, opts.ArgBytes)
	}
	wire, err := req.Marshal()
	if err != nil {
		return st, err
	}
	st.RequestBytes = len(wire)
	p.M.Fabric.Send(t, st.RequestBytes, netmodel.ClassPushdown)
	st.Request = t.Now() - mark

	// The request transfer (and any fabric retries) took virtual time; a
	// pool crash in that window means the request was never acknowledged.
	if r.observeHeartbeat(t) {
		return st, ErrMemoryPoolDown
	}

	// ❸ Workqueue: wait for a free user context (FIFO; try_cancel applies
	// while queued, admission control sheds when the queue is at capacity).
	mark = t.Now()
	qs := tr.Begin(t, trace.KindPushQueue, 0, callID)
	err = r.acquire(t, opts, deadlineAt)
	tr.End(t, qs)
	st.Queue = t.Now() - mark
	p.M.Times.Add(metrics.CompPushQueue, st.Queue)
	p.M.Metrics.Histogram("push.queue.ns").Observe(st.Queue)
	switch {
	case errors.Is(err, ErrQueueFull):
		r.agg.Shed++
		p.M.Metrics.Counter("push.shed").Inc()
		p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindShed, Arg: callID, Who: t.Name()})
		return st, err
	case errors.Is(err, ErrDeadlineExceeded):
		r.agg.DeadlineAborts++
		p.M.Metrics.Counter("push.deadline-aborts").Inc()
		return st, err
	case err != nil:
		r.agg.Cancelled++
		return st, err
	}

	// A crash while the request sat in the workqueue: the context we were
	// just granted died with the controller.
	if r.observeHeartbeat(t) {
		r.release(t)
		return st, ErrMemoryPoolDown
	}
	// The queue wait alone may have consumed the whole budget.
	if deadlineAt > 0 && t.Now() > deadlineAt {
		r.agg.DeadlineAborts++
		p.M.Metrics.Counter("push.deadline-aborts").Inc()
		r.release(t)
		return st, ErrDeadlineExceeded
	}

	// ❹ Temporary user context setup (Figure 8).
	mark = t.Now()
	cs := tr.Begin(t, trace.KindPushSetup, 0, callID)
	ps := r.enterPush(t, entries, opts, &st)
	tr.End(t, cs)
	st.CtxSetup = t.Now() - mark

	// A crash during context setup, or an injected crash of the temporary
	// context itself, surfaces before fn commits: the compute side detects
	// it by heartbeat timeout, the controller reaps the dead context, and
	// the caller decides whether to retry or fall back.
	if r.observeHeartbeat(t) {
		r.exitPush(ps)
		r.release(t)
		return st, ErrMemoryPoolDown
	}
	if p.M.Fault.CtxCrash() {
		r.agg.CtxCrashes++
		p.M.Metrics.Counter("push.ctx-crashes").Inc()
		p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindFaultInjected, Arg: callID, Who: t.Name()})
		// Reap cost: one context switch in the pool plus the failure
		// notification round trip.
		rs := t.Now()
		t.AdvanceNs(p.M.Cfg.HW.CtxSwitchNs)
		p.M.Times.Add(metrics.CompPushProto, t.Now()-rs)
		p.M.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassPushdown)
		r.exitPush(ps)
		r.release(t)
		return st, ErrContextCrashed
	}
	// Context setup may also have exhausted the budget (nothing is dirty
	// yet, so no rollback is needed).
	if deadlineAt > 0 && t.Now() > deadlineAt {
		r.agg.DeadlineAborts++
		p.M.Metrics.Counter("push.deadline-aborts").Inc()
		r.exitPush(ps)
		r.release(t)
		return st, ErrDeadlineExceeded
	}

	// Function execution with online coherence (Figure 9). The pager keeps
	// the call's undo journal and enforces the armed mid-execution crash
	// point and the deadline at every page access.
	mark = t.Now()
	es := tr.Begin(t, trace.KindPushExec, 0, callID)
	pager := &memPager{ps: ps, st: &st, opts: opts, dieAt: deadlineAt}
	pager.journal.pool = &r.journalBufs
	if frac, mid := p.M.Fault.CtxCrashMid(); mid {
		// Map the seeded fraction onto a page-access ordinal: the context
		// dies at its crashAt-th access — once it has dirtied at least one
		// page — which is deterministic for a given seed and workload.
		pager.crashAt = 1 + int(frac*float64(midCrashTouchSpan))
	}
	env := p.NewMemoryEnv(t, pager)
	env.Dilation = r.dilation
	var remoteErr error
	var abort *pushAbort
	func() {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if pa, ok := v.(pushAbort); ok {
				abort = &pa
				return
			}
			remoteErr = &RemoteError{Value: v}
		}()
		fn(env)
	}()
	tr.End(t, es)
	st.Exec = t.Now() - mark
	p.M.Metrics.Histogram("push.exec.ns").Observe(st.Exec)
	if abort != nil {
		return st, r.abortPush(t, ps, pager, callID, abort)
	}
	killed := opts.ExecLimit > 0 && st.Exec > opts.ExecLimit

	// ❺–❼ Completion response: status plus any tunnelled exception (§3.2's
	// C++-exception rethrow carries the exception structure back).
	mark = t.Now()
	resp := netmodel.PushdownResponse{Status: netmodel.StatusOK}
	if killed {
		resp.Status = netmodel.StatusKilled
	} else if remoteErr != nil {
		resp.Status = netmodel.StatusException
		resp.Exception = []byte(remoteErr.Error())
	}
	p.M.Fabric.Send(t, len(resp.Marshal()), netmodel.ClassPushdown)
	st.Response = t.Now() - mark

	// ❽ Post-pushdown synchronisation.
	mark = t.Now()
	posts := tr.Begin(t, trace.KindPushSync, 0, 1)
	r.postSync(t, ps, opts, eagerPages)
	tr.End(t, posts)
	st.PostSync = t.Now() - mark

	r.exitPush(ps)
	r.release(t)
	pager.journal.discard()
	p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindPushdownEnd, Arg: callID, Who: t.Name()})

	if killed {
		r.agg.Killed++
		return st, ErrKilled
	}
	return st, remoteErr
}

// abortPush tears one call down after the pushed function was stopped
// mid-execution — an armed context crash or a blown deadline budget. The
// controller reaps the dead context, rolls the undo journal back, and only
// then sends the failure notification: by the time the compute side learns
// anything, the pool's memory is pristine again (rollback-before-report),
// so the returned error is Recoverable even though fn partially ran.
func (r *Runtime) abortPush(t *sim.Thread, ps *pushState, pager *memPager, callID int64, ab *pushAbort) error {
	p := r.P
	if ab.midCrash {
		r.agg.CtxCrashes++
		p.M.Metrics.Counter("push.ctx-crashes").Inc()
		p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindFaultInjected, Arg: callID, Who: t.Name()})
		// Reap cost, as for a pre-commit crash.
		rs := t.Now()
		t.AdvanceNs(p.M.Cfg.HW.CtxSwitchNs)
		p.M.Times.Add(metrics.CompPushProto, t.Now()-rs)
	} else if errors.Is(ab.err, ErrQuorumLost) {
		r.agg.QuorumAborts++
		p.M.Metrics.Counter("push.quorum-aborts").Inc()
	} else {
		r.agg.DeadlineAborts++
		p.M.Metrics.Counter("push.deadline-aborts").Inc()
	}
	r.rollbackJournal(t, ps, pager, callID)
	p.M.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassPushdown)
	r.exitPush(ps)
	r.release(t)
	return ab.err
}

// rollbackJournal restores every pre-image the call's undo journal holds,
// clears the rolled-back pages' dirty bits in the temporary page table (so
// a later dirty-bit merge cannot write back state that was never
// committed), and charges the controller's restore walk to virtual time.
func (r *Runtime) rollbackJournal(t *sim.Thread, ps *pushState, pager *memPager, callID int64) {
	n := pager.journal.pages()
	if n == 0 {
		return
	}
	p := r.P
	cfg := &p.M.Cfg.HW
	// The controller walks the journal: a PTE fixup plus a full-page DRAM
	// copy per captured page.
	rs := t.Now()
	lines := float64(mem.PageSize / cfg.DRAMLineBytes)
	t.AdvanceNs(hw.OpNs(cfg.MemoryClockGHz, float64(n)*cfg.PTEVisitOps) + float64(n)*lines*cfg.DRAMSeqLineNs)
	p.M.Times.Add(metrics.CompPushProto, t.Now()-rs)
	pager.journal.rollback(p.Space, func(pg mem.PageID) {
		ps.temp.entry(pg).dirty = false
	})
	p.Epoch++ // rolled-back pages invalidate any env fast-path mapping
	pager.st.RollbackPages = n
	r.agg.Rollbacks++
	r.agg.RolledBackPages += int64(n)
	p.M.Metrics.Counter("push.rollbacks").Inc()
	p.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindPushRollback, Arg: int64(n), Who: t.Name()})
}

// preSync performs the mode-dependent pre-pushdown synchronisation. It
// returns the resident-page list to ship (coherent modes) or, for the eager
// strawman, the page set to re-fetch afterwards.
func (r *Runtime) preSync(t *sim.Thread, opts Options) ([]netmodel.PageEntry, []mem.PageID) {
	p := r.P
	cfg := &p.M.Cfg.HW
	switch {
	case opts.Flags&FlagMigrateProcess != 0:
		// Naive whole-process migration (§4): synchronously transfer every
		// resident page — the naive path does not track dirtiness finer
		// than "the process ran here" — and clear the compute node's
		// memory, page by page through the eviction path.
		var pages []mem.PageID
		p.Cache.Range(func(pg mem.PageID, _, _ bool) bool {
			pages = append(pages, pg)
			return true
		})
		for range pages {
			r.flushPage(t)
		}
		p.Cache.Clear()
		p.Epoch++
		return nil, nil

	case opts.Flags&FlagEvictRanges != 0:
		// Per-thread variant (Figure 6): flush and evict only the pushed
		// computation's pages, page by page through the same eviction path.
		for _, rg := range opts.EvictRanges {
			rg.Pages(func(pg mem.PageID) {
				if p.Cache.Contains(pg) {
					r.flushPage(t)
					p.Cache.Remove(pg)
				}
			})
		}
		p.Epoch++
		return nil, nil

	case opts.Flags&FlagEagerSync != 0:
		// Strawman (Figure 20): synchronise every resident page up front,
		// synchronously and individually.
		var pages []mem.PageID
		p.Cache.Range(func(pg mem.PageID, _, _ bool) bool {
			pages = append(pages, pg)
			return true
		})
		for _, pg := range pages {
			p.M.Fabric.RoundTrip(t, ctrlMsgBytes, 0, netmodel.ClassSync)
			p.M.Fabric.Send(t, pageMsgBytes, netmodel.ClassSync)
			p.Cache.Remove(pg)
		}
		p.Epoch++
		return nil, pages

	case opts.Flags&FlagNoCoherence != 0:
		// Weak ordering: nothing is transmitted; the user syncs manually.
		return nil, nil

	default:
		// On-demand coherence: build the resident list (with permissions)
		// for the request message; no data moves.
		var entries []netmodel.PageEntry
		p.Cache.Range(func(pg mem.PageID, w, _ bool) bool {
			entries = append(entries, netmodel.PageEntry{ID: uint64(pg), Writable: w})
			return true
		})
		as := t.Now()
		t.AdvanceNs(hw.OpNs(cfg.ComputeClockGHz, float64(len(entries))*cfg.PageListEntryOps))
		p.M.Times.Add(metrics.CompPushProto, t.Now()-as)
		return entries, nil
	}
}

// flushPage charges one synchronous page eviction over the fabric: a
// control round trip, the page transfer, and the fault-handling software
// path on both ends.
func (r *Runtime) flushPage(t *sim.Thread) {
	cfg := &r.P.M.Cfg.HW
	r.P.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindSync, Who: t.Name()})
	r.P.M.Fabric.RoundTrip(t, ctrlMsgBytes, ctrlMsgBytes, netmodel.ClassSync)
	r.P.M.Fabric.Send(t, pageMsgBytes, netmodel.ClassSync)
	hs := t.Now()
	t.AdvanceNs(2 * cfg.FaultHandleNs)
	r.P.M.Times.Add(metrics.CompPushProto, t.Now()-hs)
}

// enterPush creates or joins the shared pushdown coherence state and
// performs Figure 8's MemorySetup, charging the table-clone cost.
func (r *Runtime) enterPush(t *sim.Thread, entries []netmodel.PageEntry, opts Options, st *Stats) *pushState {
	p := r.P
	cfg := &p.M.Cfg.HW
	// Cloning the caller's full page table (Figure 8 line 7) visits every
	// PTE of the process.
	as := t.Now()
	t.AdvanceNs(hw.OpNs(cfg.MemoryClockGHz, float64(p.Space.Pages())*cfg.PTEVisitOps))
	p.M.Times.Add(metrics.CompPushProto, t.Now()-as)

	if r.ps == nil {
		r.ps = &pushState{rt: r, temp: newTempTable(), pso: opts.Flags&FlagPSO != 0}
	}
	ps := r.ps
	ps.refs++

	coherent := opts.Flags&(FlagNoCoherence|FlagEagerSync|FlagMigrateProcess|FlagEvictRanges) == 0
	if coherent {
		// Figure 8 lines 8–13: exclude compute-writable pages, downgrade
		// compute-read-only pages.
		for _, e := range entries {
			ps.temp.invalidate(mem.PageID(e.ID), e.Writable)
			st.SetupInvalidations++
		}
		if ps.refs == 1 {
			p.SetPushHooks(&pushHooks{ps: ps})
		}
		p.Epoch++
	}
	return ps
}

// exitPush drops a reference to the shared state, recycling the temporary
// context when the last concurrent pushdown finishes (§3.2 ❺).
func (r *Runtime) exitPush(ps *pushState) {
	ps.refs--
	if ps.refs == 0 {
		r.P.SetPushHooks(nil)
		r.ps = nil
	}
}

// postSync performs the mode-dependent post-pushdown synchronisation.
func (r *Runtime) postSync(t *sim.Thread, ps *pushState, opts Options, eagerPages []mem.PageID) {
	p := r.P
	cfg := &p.M.Cfg.HW
	switch {
	case opts.Flags&FlagEagerSync != 0:
		// Re-fetch the previously resident set page by page so the compute
		// cache is warm again — the strawman's symmetric cost.
		for _, pg := range eagerPages {
			p.M.Fabric.RoundTrip(t, ctrlMsgBytes, pageMsgBytes, netmodel.ClassSync)
			p.Cache.Insert(pg, true, false)
		}
		p.Epoch++

	case opts.Flags&(FlagMigrateProcess|FlagEvictRanges|FlagNoCoherence) != 0:
		// Nothing to do: the cache is cold (migration/evict) or the user
		// owns synchronisation (weak ordering).

	default:
		// §4.1: merge the temporary context's dirty bits into the full page
		// table — a local operation in the memory pool, no communication.
		// Merged dirty pages will need a storage write-back if the pool
		// later evicts them.
		as := t.Now()
		t.AdvanceNs(hw.OpNs(cfg.MemoryClockGHz, float64(ps.temp.len())*cfg.PTEVisitOps))
		p.M.Times.Add(metrics.CompPushProto, t.Now()-as)
		if p.PoolRes != nil {
			for _, pg := range ps.temp.dirtyPages() {
				p.PoolRes.MarkDirty(pg)
			}
		}
	}
}

// acquire waits for a free memory-pool user context, honouring admission
// control (QueueCap), try_cancel timeouts, and the call's deadline budget
// for queued requests.
func (r *Runtime) acquire(t *sim.Thread, opts Options, deadlineAt sim.Time) error {
	if r.running < r.Contexts {
		r.running++
		r.P.M.Metrics.Gauge("push.running").Set(int64(r.running))
		return nil
	}
	if r.QueueCap > 0 && len(r.queue) >= r.QueueCap {
		// Deterministic load-shedding: the controller rejects the request
		// outright rather than letting the queue grow without bound.
		return ErrQueueFull
	}
	w := &waiter{t: t}
	if opts.Timeout > 0 {
		w.deadline = t.Now() + opts.Timeout
	}
	if deadlineAt > 0 && (w.deadline == 0 || deadlineAt < w.deadline) {
		// The budget expires first: a queued request that cannot start in
		// budget is cancelled at the budget instant, not the timeout.
		w.deadline = deadlineAt
		w.budget = true
	}
	r.queue = append(r.queue, w)
	t.Block()
	if w.cancelled {
		if w.budget {
			return ErrDeadlineExceeded
		}
		return ErrCancelled
	}
	return nil
}

// release frees the caller's user context and hands it to the next
// non-expired waiter, cancelling waiters whose deadline has passed.
func (r *Runtime) release(t *sim.Thread) {
	r.running--
	r.P.M.Metrics.Gauge("push.running").Set(int64(r.running))
	now := t.Now()
	for len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		if w.deadline > 0 && now > w.deadline {
			// The request was still queued at its deadline: try_cancel
			// succeeds and the compute side resumed at the deadline.
			w.cancelled = true
			w.t.Unblock(w.deadline)
			continue
		}
		r.running++
		r.P.M.Metrics.Gauge("push.running").Set(int64(r.running))
		w.t.Unblock(now)
		return
	}
}

// dilation models memory-pool CPU contention: with more runnable user
// contexts than physical cores, each context's work stretches by the
// oversubscription ratio plus a context-switching penalty (§7.3,
// Figure 17's diminishing returns).
func (r *Runtime) dilation() float64 {
	cores := r.P.M.Cfg.HW.MemoryPoolCores
	if r.running <= cores {
		return 1
	}
	over := float64(r.running - cores)
	return float64(r.running) / float64(cores) * (1 + r.CtxSwitchPenalty*over)
}
