package core

import (
	"teleport/internal/mem"
)

// undoJournal is the memory-kernel side's crash-consistency log for one
// pushdown call: a copy-on-first-write pre-image of every page the temporary
// context dirties. When the context dies mid-execution (an armed mid-crash
// or a deadline abort), the controller restores the pre-images before the
// compute side is told anything, so a retry — or the compute-side fallback —
// re-executes against exactly the state fn started from. Without it,
// non-idempotent pushed operators (read-modify-write accumulations) would
// double-apply their partial writes on re-execution.
type undoJournal struct {
	pre   map[mem.PageID][]byte
	order []mem.PageID // capture order, for a deterministic restore walk
}

// capture records page pg's pre-image if this call has not dirtied it yet.
// It must run before the write it guards mutates the page: EnsurePage is
// called ahead of the backing Space write, so the snapshot still sees the
// pristine bytes.
func (j *undoJournal) capture(s *mem.Space, pg mem.PageID) {
	if _, ok := j.pre[pg]; ok {
		return
	}
	if j.pre == nil {
		j.pre = make(map[mem.PageID][]byte)
	}
	j.pre[pg] = s.SnapshotPage(pg)
	j.order = append(j.order, pg)
}

// pages returns how many distinct pages the journal holds.
func (j *undoJournal) pages() int { return len(j.order) }

// rollback restores every captured pre-image in reverse capture order (a
// fixed order — never map iteration — so two same-seed runs roll back
// identically), invoking onPage for each restored page, and empties the
// journal.
func (j *undoJournal) rollback(s *mem.Space, onPage func(mem.PageID)) int {
	n := len(j.order)
	for i := n - 1; i >= 0; i-- {
		pg := j.order[i]
		s.RestorePage(pg, j.pre[pg])
		if onPage != nil {
			onPage(pg)
		}
	}
	j.pre = nil
	j.order = nil
	return n
}
