package core

import (
	"teleport/internal/mem"
)

// pagePool recycles page-sized pre-image buffers across pushdown calls so
// steady-state journal capture allocates nothing: buffers go back on the
// free list when a call rolls back or commits. A nil pool degrades to plain
// allocation (SnapshotPageInto allocates when handed a nil buffer), which
// keeps directly constructed journals in tests working unchanged.
type pagePool struct {
	free [][]byte
}

// get pops a recycled buffer, or returns nil (meaning "allocate").
func (p *pagePool) get() []byte {
	if p == nil || len(p.free) == 0 {
		return nil
	}
	n := len(p.free) - 1
	b := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	return b
}

// put returns a buffer to the free list.
func (p *pagePool) put(b []byte) {
	if p == nil || cap(b) < mem.PageSize {
		return
	}
	p.free = append(p.free, b)
}

// undoJournal is the memory-kernel side's crash-consistency log for one
// pushdown call: a copy-on-first-write pre-image of every page the temporary
// context dirties. When the context dies mid-execution (an armed mid-crash
// or a deadline abort), the controller restores the pre-images before the
// compute side is told anything, so a retry — or the compute-side fallback —
// re-executes against exactly the state fn started from. Without it,
// non-idempotent pushed operators (read-modify-write accumulations) would
// double-apply their partial writes on re-execution.
type undoJournal struct {
	pre   map[mem.PageID][]byte
	order []mem.PageID // capture order, for a deterministic restore walk
	pool  *pagePool    // optional pre-image buffer recycler (Runtime-owned)
}

// capture records page pg's pre-image if this call has not dirtied it yet.
// It must run before the write it guards mutates the page: EnsurePage is
// called ahead of the backing Space write, so the snapshot still sees the
// pristine bytes.
func (j *undoJournal) capture(s *mem.Space, pg mem.PageID) {
	if _, ok := j.pre[pg]; ok {
		return
	}
	if j.pre == nil {
		j.pre = make(map[mem.PageID][]byte)
	}
	j.pre[pg] = s.SnapshotPageInto(pg, j.pool.get())
	j.order = append(j.order, pg)
}

// pages returns how many distinct pages the journal holds.
func (j *undoJournal) pages() int { return len(j.order) }

// rollback restores every captured pre-image in reverse capture order (a
// fixed order — never map iteration — so two same-seed runs roll back
// identically), invoking onPage for each restored page, and empties the
// journal, returning its buffers to the pool.
func (j *undoJournal) rollback(s *mem.Space, onPage func(mem.PageID)) int {
	n := len(j.order)
	for i := n - 1; i >= 0; i-- {
		pg := j.order[i]
		s.RestorePage(pg, j.pre[pg])
		j.pool.put(j.pre[pg])
		if onPage != nil {
			onPage(pg)
		}
	}
	j.pre = nil
	j.order = nil
	return n
}

// discard drops the journal without restoring anything (the call committed:
// its writes stand, the pre-images are dead) and recycles the buffers.
func (j *undoJournal) discard() {
	for _, pg := range j.order {
		j.pool.put(j.pre[pg])
	}
	j.pre = nil
	j.order = nil
}
