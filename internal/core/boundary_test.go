package core

import (
	"errors"
	"testing"

	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// Boundary-condition tests for pool-outage windows, pinned to exact
// virtual-time instants with fault.NewWindowPlan. Windows are half-open
// [Down, Up): the controller is down at Down, and back at exactly Up.

// A paging stall that waits out an outage wakes at exactly the window's Up
// instant, and the plan reports the pool up at that same instant — the
// wake-up never observes a still-down controller.
func TestPoolWindowEndsExactlyAtWakeup(t *testing.T) {
	const down, up = 100 * sim.Microsecond, 200 * sim.Microsecond
	plan := fault.NewWindowPlan(fault.Window{Down: down, Up: up})
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	m.AttachFault(plan)

	th := sim.NewThread("t")
	th.AdvanceTo(150 * sim.Microsecond)
	if !m.WaitPoolUp(th) {
		t.Fatal("WaitPoolUp inside the window reported no stall")
	}
	if th.Now() != up {
		t.Fatalf("woke at %v, want exactly %v", th.Now(), up)
	}
	if _, stillDown := plan.PoolDownAt(th.Now()); stillDown {
		t.Fatal("PoolDownAt(Up) reports down: the wake-up instant must observe the pool up")
	}
	if m.PoolStalls != 1 {
		t.Fatalf("PoolStalls = %d, want 1", m.PoolStalls)
	}
	// A second wait at exactly Up is a no-op.
	if m.WaitPoolUp(th) || th.Now() != up {
		t.Fatalf("WaitPoolUp at the Up instant stalled (now %v)", th.Now())
	}
}

// The heartbeat flips exactly at the window edges: down at Down, down at
// Up-1ns, up at exactly Up.
func TestHeartbeatEdgesAtWindowBoundaries(t *testing.T) {
	const down, up = 100 * sim.Microsecond, 200 * sim.Microsecond
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	m.AttachFault(fault.NewWindowPlan(fault.Window{Down: down, Up: up}))
	rt := NewRuntime(m.NewProcess(), 1)

	for _, tc := range []struct {
		at sim.Time
		up bool
	}{
		{down - 1, true},
		{down, false},
		{up - 1, false},
		{up, true},
	} {
		if got := rt.HeartbeatAt(tc.at); got != tc.up {
			t.Fatalf("HeartbeatAt(%v) = %v, want %v", tc.at, got, tc.up)
		}
	}
}

// A pushdown issued mid-outage fails, the policy waits for the scheduled
// restart, and the retry lands at exactly the recovery instant and
// succeeds. The trace carries exactly one pool-crash and one pool-recover
// edge, the latter stamped at Up.
func TestRetryAtExactRecoveryInstant(t *testing.T) {
	const down, up = 100 * sim.Microsecond, 300 * sim.Microsecond
	p, rt := testProc(16)
	ring := trace.New(256)
	p.M.AttachTrace(ring)
	p.M.AttachFault(fault.NewWindowPlan(fault.Window{Down: down, Up: up}))

	th := sim.NewThread("t")
	a := fillVec(p, th, 64)
	th.AdvanceTo(150 * sim.Microsecond)
	var out int64
	_, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, 64, &out), Options{}, DefaultRetryThenLocal())
	if err != nil || !ran {
		t.Fatalf("policy: ran=%v err=%v, want a successful retry after the restart", ran, err)
	}
	if out != 64*63/2 {
		t.Fatalf("sum = %d, want %d", out, 64*63/2)
	}
	if rs := rt.Stats(); rs.Retries != 1 || rs.PoolDownObserved == 0 {
		t.Fatalf("Retries=%d PoolDownObserved=%d, want 1 retry after observing the outage",
			rs.Retries, rs.PoolDownObserved)
	}
	var crashes, recovers int
	var recoverAtTs sim.Time
	for _, e := range ring.Events() {
		switch e.Kind {
		case trace.KindPoolCrash:
			crashes++
		case trace.KindPoolRecover:
			recovers++
			recoverAtTs = e.At
		}
	}
	if crashes != 1 || recovers != 1 {
		t.Fatalf("pool-crash=%d pool-recover=%d, want exactly one of each", crashes, recovers)
	}
	if recoverAtTs != up {
		t.Fatalf("pool-recover stamped at %v, want exactly %v (the retry instant)", recoverAtTs, up)
	}
}

// A bare pushdown issued at exactly the recovery instant succeeds without
// ever observing the outage — no pool-crash edge, no down observation.
func TestPushdownAtExactRecoveryInstant(t *testing.T) {
	const down, up = 100 * sim.Microsecond, 300 * sim.Microsecond
	p, rt := testProc(16)
	ring := trace.New(256)
	p.M.AttachTrace(ring)
	p.M.AttachFault(fault.NewWindowPlan(fault.Window{Down: down, Up: up}))

	th := sim.NewThread("t")
	a := fillVec(p, th, 64)
	th.AdvanceTo(up)
	var out int64
	if _, err := rt.Pushdown(th, sumFunc(a, 64, &out), Options{}); err != nil {
		t.Fatalf("pushdown at the recovery instant: %v", err)
	}
	if n := countKind(ring, trace.KindPoolCrash); n != 0 {
		t.Fatalf("pool-crash events = %d, want 0 (the outage was never observed)", n)
	}
	if rs := rt.Stats(); rs.PoolDownObserved != 0 {
		t.Fatalf("PoolDownObserved = %d, want 0", rs.PoolDownObserved)
	}
	// One nanosecond earlier the same call fails.
	p2, rt2 := testProc(16)
	p2.M.AttachFault(fault.NewWindowPlan(fault.Window{Down: down, Up: up}))
	th2 := sim.NewThread("t")
	a2 := fillVec(p2, th2, 64)
	th2.AdvanceTo(up - 1)
	if _, err := rt2.Pushdown(th2, sumFunc(a2, 64, &out), Options{}); !errors.Is(err, ErrMemoryPoolDown) {
		t.Fatalf("pushdown 1ns before recovery: err = %v, want ErrMemoryPoolDown", err)
	}
}

// WaitPoolUp with no fault plan attached never stalls and never advances
// the clock.
func TestWaitPoolUpNilPlan(t *testing.T) {
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	th := sim.NewThread("t")
	th.AdvanceTo(150 * sim.Microsecond)
	if m.WaitPoolUp(th) {
		t.Fatal("WaitPoolUp stalled with no fault plan")
	}
	if th.Now() != 150*sim.Microsecond {
		t.Fatalf("WaitPoolUp advanced the clock to %v with no fault plan", th.Now())
	}
	if m.PoolStalls != 0 {
		t.Fatalf("PoolStalls = %d, want 0", m.PoolStalls)
	}
}

// A query at exactly the window's Up instant observes the pool up: no
// stall, no clock movement (half-open windows).
func TestWaitPoolUpAtExactUpBoundary(t *testing.T) {
	const down, up = 100 * sim.Microsecond, 200 * sim.Microsecond
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	m.AttachFault(fault.NewWindowPlan(fault.Window{Down: down, Up: up}))
	th := sim.NewThread("t")
	th.AdvanceTo(up)
	if m.WaitPoolUp(th) {
		t.Fatal("WaitPoolUp stalled at exactly Up")
	}
	if th.Now() != up || m.PoolStalls != 0 {
		t.Fatalf("now=%v PoolStalls=%d, want %v and 0", th.Now(), m.PoolStalls, up)
	}
}

// Back-to-back windows [100,200) + [200,300): a waiter entering the first
// window wakes at its Up instant, finds the second window already begun,
// and keeps waiting — one WaitPoolUp call rides both windows through to
// 300µs and counts as a single stall.
func TestWaitPoolUpAdjacentWindows(t *testing.T) {
	const d1, u1 = 100 * sim.Microsecond, 200 * sim.Microsecond
	const d2, u2 = 200 * sim.Microsecond, 300 * sim.Microsecond
	m := ddc.MustMachine(ddc.BaseDDC(64 * mem.PageSize))
	m.AttachFault(fault.NewWindowPlan(fault.Window{Down: d1, Up: u1}, fault.Window{Down: d2, Up: u2}))
	th := sim.NewThread("t")
	th.AdvanceTo(150 * sim.Microsecond)
	if !m.WaitPoolUp(th) {
		t.Fatal("WaitPoolUp inside the first window reported no stall")
	}
	if th.Now() != u2 {
		t.Fatalf("woke at %v, want %v (the second window's Up)", th.Now(), u2)
	}
	if m.PoolStalls != 1 {
		t.Fatalf("PoolStalls = %d, want 1 (one stall spanning both windows)", m.PoolStalls)
	}
}

// A zero-length window (Down == Up) is inert: no instant observes the pool
// down, paging never stalls, pushdowns succeed, and no crash/recover edges
// appear — but the plan still counts the window as scheduled.
func TestZeroLengthWindowIsInert(t *testing.T) {
	const at = 100 * sim.Microsecond
	plan := fault.NewWindowPlan(fault.Window{Down: at, Up: at})
	p, rt := testProc(16)
	ring := trace.New(256)
	p.M.AttachTrace(ring)
	p.M.AttachFault(plan)

	for _, ts := range []sim.Time{at - 1, at, at + 1} {
		if _, isDown := plan.PoolDownAt(ts); isDown {
			t.Fatalf("PoolDownAt(%v) reports down for a zero-length window", ts)
		}
	}

	th := sim.NewThread("t")
	a := fillVec(p, th, 64)
	th.AdvanceTo(at)
	if p.M.WaitPoolUp(th) || th.Now() != at {
		t.Fatalf("paging stalled across a zero-length window (now %v)", th.Now())
	}
	var out int64
	if _, err := rt.Pushdown(th, sumFunc(a, 64, &out), Options{}); err != nil {
		t.Fatalf("pushdown across a zero-length window: %v", err)
	}
	if out != 64*63/2 {
		t.Fatalf("sum = %d, want %d", out, 64*63/2)
	}
	if countKind(ring, trace.KindPoolCrash) != 0 || countKind(ring, trace.KindPoolRecover) != 0 {
		t.Fatal("zero-length window produced pool-crash/pool-recover trace edges")
	}
	if p.M.PoolStalls != 0 {
		t.Fatalf("PoolStalls = %d, want 0", p.M.PoolStalls)
	}
	if got := plan.Counters().PoolWindows; got != 1 {
		t.Fatalf("PoolWindows = %d, want 1 (scheduled, even though inert)", got)
	}
}
