// Package core implements TELEPORT, the paper's contribution: an OS-level
// compute-pushdown primitive for memory-disaggregated data centers (§3–§4).
//
// A user thread in the compute pool calls Pushdown(fn, opts). The runtime
// ships the call — together with a run-length-encoded list of the pages
// resident in the compute-local cache and their write permissions — to the
// memory pool's controller over one RDMA message, instantiates a temporary
// user context that borrows the caller's page table (vfork-like, §3.2), and
// executes fn next to the data. A MESI-inspired write-invalidate protocol
// (§4.1, Figures 8 and 9) keeps the compute cache and the temporary context
// coherent under the Single-Writer-Multiple-Reader invariant while
// concurrent compute threads keep running. Optional flags select the
// relaxed consistency modes of §4.2 and the strawman synchronisation
// methods the paper ablate in Figures 6 and 20.
package core

import (
	"errors"
	"fmt"

	"teleport/internal/mem"
	"teleport/internal/sim"
)

// Flags select synchronisation and consistency behaviour (the syscall's
// third parameter, §3.1).
type Flags uint32

// Flag values.
const (
	// FlagDefault uses the on-demand MESI-style coherence of §4.1.
	FlagDefault Flags = 0

	// FlagPSO relaxes write propagation: when one pool requests write
	// permission, the other pool's copy is downgraded to read-only instead
	// of removed, yielding Partial Store Ordering (§4.2).
	FlagPSO Flags = 1 << iota

	// FlagNoCoherence disables the coherence protocol entirely (§4.2's Weak
	// Ordering relaxation); the application synchronises manually with
	// SyncMem.
	FlagNoCoherence

	// FlagEagerSync is the strawman of §7.5/Figure 20: every resident page
	// is flushed before execution and re-fetched afterwards.
	FlagEagerSync

	// FlagMigrateProcess is the naive approach of §4/Figure 6: migrate the
	// whole process, flushing the entire cache before and leaving it cold
	// after.
	FlagMigrateProcess

	// FlagEvictRanges is Figure 6's per-thread variant: flush and evict
	// only Options.EvictRanges before execution (no online coherence for
	// those pages).
	FlagEvictRanges
)

// Range is a contiguous address range, used by SyncMem and FlagEvictRanges.
type Range struct {
	Base mem.Addr
	Size int64
}

// Pages calls f for every page the range overlaps.
func (r Range) Pages(f func(mem.PageID)) {
	if r.Size <= 0 {
		return
	}
	first, last := mem.PageSpan(r.Base, int(r.Size))
	for p := first; p <= last; p++ {
		f(p)
	}
}

// Options configures one pushdown call.
type Options struct {
	Flags Flags

	// Timeout bounds how long the call may sit in the memory pool's
	// workqueue before the compute side issues try_cancel (§3.2). Zero
	// blocks forever. Cancellation succeeds only while the request is
	// still queued; once running, the memory pool declines and the caller
	// waits for completion.
	Timeout sim.Time

	// ExecLimit kills pushed functions that run longer than this in the
	// memory pool ("buggy code", §3.2). Zero means no limit.
	ExecLimit sim.Time

	// Deadline is the call's virtual-time budget, measured from the attempt's
	// entry and spanning queue wait, context setup, and execution. A call
	// that cannot finish in budget aborts with ErrDeadlineExceeded instead
	// of stalling the caller; an abort mid-execution first rolls the undo
	// journal back, so the abort is Recoverable. Zero means no budget.
	// Unlike Timeout (which only cancels while queued), the deadline is
	// enforced at every phase of the call.
	Deadline sim.Time

	// EvictRanges lists the address ranges owned by the pushed computation
	// for FlagEvictRanges.
	EvictRanges []Range

	// ArgBytes is the size of the marshalled argument vector added to the
	// request message (the arg pointer's transitive closure stays in the
	// shared address space, so this is typically tiny).
	ArgBytes int
}

// Stats breaks one pushdown call into the six components of §7.5
// (Figure 19), plus protocol counters.
type Stats struct {
	PreSync    sim.Time // (1) pre-pushdown synchronisation
	Request    sim.Time // (2) request transfer over RDMA
	Queue      sim.Time // workqueue wait (part of (3) in the paper's accounting)
	CtxSetup   sim.Time // (3) temporary user context setup
	Exec       sim.Time // (4) function execution, including online sync
	OnlineSync sim.Time // (4b) the online-sync share of Exec
	Response   sim.Time // (5) response transfer
	PostSync   sim.Time // (6) post-pushdown synchronisation

	ResidentPages      int   // compute-resident pages at call time
	RollbackPages      int   // pages restored from the undo journal on abort
	RLERuns            int   // runs after §6's run-length encoding
	RequestBytes       int   // request message size (RLE or bitmap list, whichever is smaller)
	SetupInvalidations int   // Figure 8 invalidations applied at setup
	ComputeFaults      int64 // compute-pool faults served during pushdown
	MemoryFaults       int64 // temporary-context faults served
	CoherenceMsgs      int64 // coherence messages this call caused
	Contentions        int64 // concurrent-fault tiebreaks (§4.1)
}

// Total returns the call's end-to-end latency.
func (s Stats) Total() sim.Time {
	return s.PreSync + s.Request + s.Queue + s.CtxSetup + s.Exec + s.Response + s.PostSync
}

// Overhead returns the latency excluding the user function itself, the
// quantity Figure 20 plots.
func (s Stats) Overhead() sim.Time { return s.Total() - (s.Exec - s.OnlineSync) }

// String summarises the breakdown.
func (s Stats) String() string {
	return fmt.Sprintf("pre=%v req=%v queue=%v setup=%v exec=%v (sync=%v) resp=%v post=%v",
		s.PreSync, s.Request, s.Queue, s.CtxSetup, s.Exec, s.OnlineSync, s.Response, s.PostSync)
}

// Errors returned by Pushdown.
var (
	// ErrCancelled reports a queued request cancelled after Options.Timeout
	// (try_cancel succeeded); the caller is free to run fn locally or retry.
	ErrCancelled = errors.New("teleport: pushdown cancelled after timeout")

	// ErrKilled reports a pushed function killed after exceeding
	// Options.ExecLimit; the compute-side wrapper raises an abort.
	ErrKilled = errors.New("teleport: pushed function killed (exec limit exceeded)")

	// ErrMemoryPoolDown reports heartbeat loss to the memory pool: either
	// the manual SetMemoryPoolDown flag, or a crash epoch of the machine's
	// fault plan observed during the call. The pushed function has NOT run
	// when this is returned — the crash was detected before execution
	// committed — so retrying or falling back to local execution is safe.
	ErrMemoryPoolDown = errors.New("teleport: memory pool unreachable (heartbeat lost)")

	// ErrContextCrashed reports that the temporary user context crashed in
	// the memory pool before the pushed function committed (injected by the
	// machine's fault plan) — either before fn started, or mid-execution
	// after fn dirtied pages, in which case the controller rolled the
	// call's undo journal back before reporting the crash. Either way the
	// pool state is as if fn never ran; the RetryThenLocal policy re-runs a
	// context-crashed pushdown once before degrading to local execution.
	ErrContextCrashed = errors.New("teleport: pushdown context crashed in the memory pool")

	// ErrQueueFull reports that admission control shed the request: the
	// memory pool's workqueue already held Runtime.QueueCap waiters. The
	// pushed function has not run; retrying (with backoff) or running
	// locally is safe.
	ErrQueueFull = errors.New("teleport: pushdown request shed (memory-pool workqueue full)")

	// ErrDeadlineExceeded reports that the call blew its Options.Deadline
	// budget. If execution had already dirtied pages, the undo journal was
	// rolled back before this error was reported, so the pool state is as
	// if fn never ran and retrying or falling back is safe.
	ErrDeadlineExceeded = errors.New("teleport: pushdown deadline budget exceeded")

	// ErrShardDown reports that a pushdown's resident pages include one
	// whose entire replica set — primary shard plus every backup — is down
	// in a sharded memory pool, so the pool cannot serve the call's working
	// set. The pushed function has NOT run; the RetryThenLocal policy waits
	// for the earliest shard restart and retries before degrading to local
	// execution. Like every sentinel here it must be matched with
	// errors.Is, never ==.
	ErrShardDown = errors.New("teleport: memory-pool shard down (no live replica)")

	// ErrQuorumLost reports that a pushdown's resident pages include one
	// with fewer than WriteQuorum replicas reachable from the compute
	// node — crashed shards or partitioned links — so the call's writes
	// could not commit. If execution had already dirtied pages when the
	// partition hit, the undo journal was rolled back before this error
	// was reported, so retrying is safe; the RetryThenLocal policy waits
	// for the earliest scheduled link heal, mirroring ErrShardDown. Must
	// be matched with errors.Is, never ==.
	ErrQuorumLost = errors.New("teleport: write quorum unreachable (partitioned replicas)")

	// ErrNotDisaggregated reports a pushdown on a monolithic machine.
	ErrNotDisaggregated = errors.New("teleport: pushdown requires a disaggregated machine")
)

// Recoverable reports whether a pushdown error is safe to retry or absorb
// with a compute-side fallback: the pushed function is guaranteed to have
// had no observable effect — either it never ran (cancellation, heartbeat
// loss, shed, pre-commit context crash) or its partial writes were rolled
// back from the undo journal before the error was reported (mid-execution
// crash, deadline abort). ErrKilled and RemoteError do not qualify: the
// function ran to the kill point or panicked, and its effects stand.
func Recoverable(err error) bool {
	return errors.Is(err, ErrCancelled) ||
		errors.Is(err, ErrMemoryPoolDown) ||
		errors.Is(err, ErrContextCrashed) ||
		errors.Is(err, ErrQueueFull) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrShardDown) ||
		errors.Is(err, ErrQuorumLost)
}

// RemoteError wraps a panic thrown by the pushed function; it is rethrown
// to the caller just like the C++ exception tunnelling of §3.2.
type RemoteError struct {
	Value any
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("teleport: pushed function panicked: %v", e.Value)
}
