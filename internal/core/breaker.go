package core

import (
	"teleport/internal/sim"
	"teleport/internal/trace"
)

// This file implements the runtime's health-tracking circuit breaker. The
// per-call RetryThenLocal loop is memoryless: during a long outage every
// call independently burns its full retry budget before degrading. The
// breaker adds cross-call memory — after Threshold consecutive recoverable
// failures it opens and PushdownWithPolicy short-circuits straight to
// compute-side execution, sparing the retry storms; after Cooldown of
// virtual time one probe call is allowed through (half-open), and its
// outcome decides between closing the breaker and re-opening it.

// BreakerConfig configures the circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive recoverable pushdown failures
	// (including shed requests) open the breaker. Zero disables it.
	Threshold int

	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown sim.Time
}

// DefaultBreaker is the configuration NewRuntime installs: lenient enough
// that the RetryThenLocal policy's own budget (an initial attempt plus
// MaxRetries re-attempts) never opens it on one bad call, strict enough
// that a persistent outage trips after two degraded calls.
func DefaultBreaker() BreakerConfig {
	return BreakerConfig{Threshold: 5, Cooldown: 500 * sim.Microsecond}
}

// breakerState is the classic three-state machine.
type breakerState uint8

const (
	brClosed breakerState = iota
	brOpen
	brHalfOpen
)

// breakerAllow reports whether a pushdown attempt may proceed, transitioning
// open → half-open when the cooldown has elapsed. A false return means the
// caller must short-circuit to local execution.
func (r *Runtime) breakerAllow(t *sim.Thread) bool {
	if r.Breaker.Threshold <= 0 {
		return true
	}
	if r.brState != brOpen {
		return true
	}
	if t.Now()-r.brOpenedAt < r.Breaker.Cooldown {
		return false
	}
	r.brState = brHalfOpen
	r.agg.BreakerHalfOpens++
	r.P.M.Metrics.Counter("push.breaker.half-opens").Inc()
	r.P.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindBreakerHalfOpen, Who: t.Name()})
	return true
}

// breakerFailure records one recoverable pushdown failure (or shed): it
// re-opens a half-open breaker immediately (the probe failed) and opens a
// closed one once the consecutive-failure streak reaches the threshold.
func (r *Runtime) breakerFailure(t *sim.Thread) {
	if r.Breaker.Threshold <= 0 {
		return
	}
	r.brStreak++
	if r.brState == brHalfOpen || (r.brState == brClosed && r.brStreak >= r.Breaker.Threshold) {
		r.brState = brOpen
		r.brOpenedAt = t.Now()
		r.agg.BreakerOpens++
		r.P.M.Metrics.Counter("push.breaker.opens").Inc()
		r.P.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindBreakerOpen, Arg: int64(r.brStreak), Who: t.Name()})
	}
}

// breakerSuccess records one successful pushdown, resetting the streak and
// closing a half-open breaker (the probe proved the pool healthy again).
func (r *Runtime) breakerSuccess(t *sim.Thread) {
	if r.Breaker.Threshold <= 0 {
		return
	}
	r.brStreak = 0
	if r.brState != brClosed {
		r.brState = brClosed
		r.agg.BreakerCloses++
		r.P.M.Metrics.Counter("push.breaker.closes").Inc()
		r.P.M.Trace.Add(trace.Event{At: t.Now(), Kind: trace.KindBreakerClose, Who: t.Name()})
	}
}
