package core

import (
	"errors"
	"testing"

	"teleport/internal/ddc"
	"teleport/internal/fault"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// Availability acceptance tests for the sharded memory pool: with Replicas
// ≥ 2, reads and pushdowns succeed during ANY single-shard outage — zero
// fallbacks to local execution — while paying failover latency; with
// Replicas = 1 the same outage sheds the pushdown with ErrShardDown and the
// recovery policy waits for the scheduled shard restart.

// shardProc builds a K-shard, R-replica TELEPORT process with an empty
// fault plan ready for SetShardWindows.
func shardProc(t *testing.T, shards, replicas, cachePages int) (*ddc.Process, *Runtime, *fault.Plan) {
	t.Helper()
	cfg := ddc.BaseDDC(int64(cachePages) * mem.PageSize)
	cfg.PoolShards, cfg.Replicas = shards, replicas
	m := ddc.MustMachine(cfg)
	plan := fault.NewPlan(fault.Profile{Name: "avail"}, 0)
	m.AttachFault(plan)
	p := m.NewProcess()
	return p, NewRuntime(p, 1), plan
}

// With R=2, a pushdown whose resident pages stripe across all K shards
// succeeds during an outage of any single shard: no retry, no local
// fallback, correct answer.
func TestPushdownSucceedsDuringAnySingleShardOutage(t *testing.T) {
	const n = 2048 // 4 pages: the working set stripes across all 3 shards
	for s := 0; s < 3; s++ {
		p, rt, plan := shardProc(t, 3, 2, 16)
		th := sim.NewThread("t")
		a := fillVec(p, th, n)
		down := th.Now() + 10*sim.Microsecond
		plan.SetShardWindows(s, fault.Window{Down: down, Up: down + 10*sim.Millisecond})
		th.AdvanceTo(down + sim.Microsecond)

		var out int64
		_, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, n, &out), Options{}, DefaultRetryThenLocal())
		if err != nil || !ran {
			t.Fatalf("shard %d down: ran=%v err=%v, want a pushdown despite the outage", s, ran, err)
		}
		if out != int64(n)*int64(n-1)/2 {
			t.Fatalf("shard %d down: sum = %d, want %d", s, out, int64(n)*int64(n-1)/2)
		}
		if rs := rt.Stats(); rs.LocalFallbacks != 0 || rs.Retries != 0 || rs.ShardDownObserved != 0 {
			t.Fatalf("shard %d down with a live replica: stats = %+v, want no fallbacks/retries/sheds", s, rs)
		}
	}
}

// With R=2, a compute-side read of a page whose primary shard is down is
// served by the replica: it pays failover latency on top of the healthy
// fault path but never stalls out the outage window.
func TestReadFailsOverDuringShardOutage(t *testing.T) {
	const n = 2048
	elapsed := func(outage bool) (sim.Time, int64) {
		p, _, plan := shardProc(t, 3, 2, 16)
		th := sim.NewThread("t")
		a := fillVec(p, th, n)
		// A one-page compute cache forces remote faults on every page
		// transition of the scan below.
		p.ResizeCache(mem.PageSize)
		down := th.Now() + 10*sim.Microsecond
		if outage {
			plan.SetShardWindows(0, fault.Window{Down: down, Up: down + 100*sim.Millisecond})
		}
		th.AdvanceTo(down + sim.Microsecond)
		start := th.Now()
		env := p.NewEnv(th)
		var sum int64
		for i := 0; i < n; i++ {
			sum += env.ReadI64(a + mem.Addr(i*8))
		}
		if sum != int64(n)*int64(n-1)/2 {
			t.Fatalf("sum = %d, want %d", sum, int64(n)*int64(n-1)/2)
		}
		var failovers int64
		if p.M.ShardStats != nil {
			failovers = p.M.ShardStats[0].FailoverReads
			if p.M.ShardStats[0].Stalls != 0 {
				t.Fatalf("reads stalled %d times despite a live replica", p.M.ShardStats[0].Stalls)
			}
		}
		return th.Now() - start, failovers
	}
	healthy, _ := elapsed(false)
	degraded, failovers := elapsed(true)
	if failovers == 0 {
		t.Fatal("no failover reads during the shard-0 outage")
	}
	if degraded <= healthy {
		t.Fatalf("degraded scan took %v, healthy %v: failover latency was not charged", degraded, healthy)
	}
	// The outage lasts 100ms; the scan must have failed over, not waited.
	if degraded > healthy+10*sim.Millisecond {
		t.Fatalf("degraded scan took %v vs healthy %v: looks like a stall, not failover", degraded, healthy)
	}
}

// Without replication the same outage sheds the pushdown: bare Pushdown
// reports ErrShardDown (matched with errors.Is), and the retry policy waits
// for the scheduled shard restart instead of falling back to local.
func TestUnreplicatedShardOutageShedsThenRecovers(t *testing.T) {
	const n = 2048
	p, rt, plan := shardProc(t, 3, 1, 16)
	th := sim.NewThread("t")
	a := fillVec(p, th, n)
	down := th.Now() + 10*sim.Microsecond
	up := down + 5*sim.Millisecond
	plan.SetShardWindows(1, fault.Window{Down: down, Up: up})
	th.AdvanceTo(down + sim.Microsecond)

	var out int64
	if _, err := rt.Pushdown(th, sumFunc(a, n, &out), Options{}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("bare pushdown during an unreplicated shard outage: err = %v, want ErrShardDown", err)
	}
	if !Recoverable(ErrShardDown) {
		t.Fatal("ErrShardDown must be Recoverable")
	}
	if rs := rt.Stats(); rs.ShardDownObserved != 1 {
		t.Fatalf("ShardDownObserved = %d, want 1", rs.ShardDownObserved)
	}

	_, ran, err := rt.PushdownWithPolicy(th, sumFunc(a, n, &out), Options{}, DefaultRetryThenLocal())
	if err != nil || !ran {
		t.Fatalf("policy: ran=%v err=%v, want a successful retry after the shard restart", ran, err)
	}
	if th.Now() < up {
		t.Fatalf("retry succeeded at %v, before the shard restart at %v", th.Now(), up)
	}
	if out != int64(n)*int64(n-1)/2 {
		t.Fatalf("sum = %d, want %d", out, int64(n)*int64(n-1)/2)
	}
	if rs := rt.Stats(); rs.Retries != 1 || rs.LocalFallbacks != 0 {
		t.Fatalf("Retries=%d LocalFallbacks=%d, want one scheduled-wait retry and no fallback",
			rs.Retries, rs.LocalFallbacks)
	}
}
