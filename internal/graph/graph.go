// Package graph is an in-memory gather-apply-scatter graph engine in the
// style of PowerGraph (§5.2). The graph — CSR adjacency, edge weights, and
// all vertex state — lives in the process's disaggregated address space, so
// the random vertex/edge accesses of finalize, gather, and scatter flow
// through the paging model exactly as the paper describes. The engine
// separates the four phases (Finalize, Gather, Apply, Scatter) so that the
// data-intensive ones can be Teleported individually (Figure 11 pushes
// Finalize, Scatter, and Gather).
package graph

import (
	"math/rand"

	"teleport/internal/ddc"
	"teleport/internal/mem"
)

// Graph is a directed graph in CSR form held in disaggregated memory. For
// undirected algorithms (CC) the generator emits both edge directions.
type Graph struct {
	P  *ddc.Process
	NV int
	NE int

	offsets mem.Addr // int64 per vertex+1
	edges   mem.Addr // int32 destination per edge
	weights mem.Addr // int32 weight per edge
}

// GenConfig controls graph generation.
type GenConfig struct {
	// NV is the vertex count; AvgDegree the mean out-degree.
	NV        int
	AvgDegree int
	// Seed makes generation deterministic.
	Seed int64
	// Undirected mirrors every edge (needed by CC).
	Undirected bool
	// KeepRaw retains a plain-Go adjacency copy for verification.
	KeepRaw bool
}

// RawGraph is the plain-Go copy kept for tests.
type RawGraph struct {
	Adj     [][]int32
	Weights [][]int32
}

// Generate builds a power-law-ish random graph (preferential attachment on
// destinations, standing in for the paper's real-world social network [52])
// directly in the memory pool: like database loading, generation bypasses
// the compute cache.
func Generate(p *ddc.Process, cfg GenConfig) (*Graph, *RawGraph) {
	if cfg.NV <= 0 || cfg.AvgDegree <= 0 {
		panic("graph: bad GenConfig")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	adj := make([][]int32, cfg.NV)
	wts := make([][]int32, cfg.NV)
	// Preferential attachment: sample an endpoint from previously used
	// endpoints with probability 1/2, uniformly otherwise.
	pool := make([]int32, 0, cfg.NV*cfg.AvgDegree)
	for u := 0; u < cfg.NV; u++ {
		deg := 1 + r.Intn(cfg.AvgDegree*2-1)
		for k := 0; k < deg; k++ {
			var v int32
			if len(pool) > 0 && r.Intn(2) == 0 {
				v = pool[r.Intn(len(pool))]
			} else {
				v = int32(r.Intn(cfg.NV))
			}
			if int(v) == u {
				v = int32((u + 1) % cfg.NV)
			}
			w := int32(1 + r.Intn(16))
			adj[u] = append(adj[u], v)
			wts[u] = append(wts[u], w)
			pool = append(pool, v)
			if cfg.Undirected {
				adj[v] = append(adj[v], int32(u))
				wts[v] = append(wts[v], w)
			}
		}
	}
	g := FromAdjacency(p, adj, wts)
	if cfg.KeepRaw {
		return g, &RawGraph{Adj: adj, Weights: wts}
	}
	return g, nil
}

// FromAdjacency loads an explicit adjacency list into disaggregated memory.
func FromAdjacency(p *ddc.Process, adj [][]int32, wts [][]int32) *Graph {
	nv := len(adj)
	ne := 0
	for _, a := range adj {
		ne += len(a)
	}
	g := &Graph{
		P: p, NV: nv, NE: ne,
		offsets: p.Space.AllocPages(int64(nv+1)*8, "graph.offsets"),
		edges:   p.Space.AllocPages(int64(maxInt(ne, 1))*4, "graph.edges"),
		weights: p.Space.AllocPages(int64(maxInt(ne, 1))*4, "graph.weights"),
	}
	off := int64(0)
	for u := 0; u < nv; u++ {
		p.Space.WriteI64(g.offsets+mem.Addr(u*8), off)
		for k, v := range adj[u] {
			p.Space.WriteI32(g.edges+mem.Addr(off*4), v)
			w := int32(1)
			if wts != nil {
				w = wts[u][k]
			}
			p.Space.WriteI32(g.weights+mem.Addr(off*4), w)
			off++
		}
	}
	p.Space.WriteI64(g.offsets+mem.Addr(nv*8), off)
	return g
}

// Degree returns vertex u's out-degree through the paging model.
func (g *Graph) Degree(env *ddc.Env, u int) int {
	lo := env.ReadI64(g.offsets + mem.Addr(u*8))
	hi := env.ReadI64(g.offsets + mem.Addr((u+1)*8))
	return int(hi - lo)
}

// EdgeRange returns the CSR slice [lo, hi) of u's out-edges.
func (g *Graph) EdgeRange(env *ddc.Env, u int) (lo, hi int64) {
	lo = env.ReadI64(g.offsets + mem.Addr(u*8))
	hi = env.ReadI64(g.offsets + mem.Addr((u+1)*8))
	return lo, hi
}

// EdgeAt returns edge e's destination and weight.
func (g *Graph) EdgeAt(env *ddc.Env, e int64) (dst int, w int64) {
	return int(env.ReadI32(g.edges + mem.Addr(e*4))),
		int64(env.ReadI32(g.weights + mem.Addr(e*4)))
}

// Bytes returns the graph's footprint.
func (g *Graph) Bytes() int64 { return int64(g.NV+1)*8 + int64(g.NE)*8 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
